// Package ascs is a Go implementation of the Active Sampling Count
// Sketch (Dai, Desai, Heckel, Shrivastava — SIGMOD 2021): one-pass,
// sub-linear-memory identification of the large entries of a sparse
// covariance or correlation matrix with possibly trillions of entries.
//
// The package offers four layers:
//
//   - Estimator: the end-to-end covariance/correlation workflow — feed
//     samples Y^(t) ∈ R^d one at a time, retrieve the top correlated
//     pairs at the end. Hyper-parameters are derived automatically from
//     a warm-up prefix (§8.1 of the paper).
//   - Sharded: the concurrent serving form of the same workflow — the
//     pair-key space is partitioned across shard workers so ingest and
//     live top-k queries overlap, with snapshot/restore for crash
//     recovery. The ascsd daemon (cmd/ascsd) serves it over HTTP.
//   - MeanSketch: the underlying abstract problem — online sparse mean
//     estimation over arbitrary uint64 keys, with vanilla Count Sketch
//     or ASCS active sampling.
//   - SolveSchedule and the theorem bounds: the §6 theory, usable
//     standalone for sizing deployments.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package ascs

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/covstream"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// EngineKind selects the sketching engine.
type EngineKind int

const (
	// EngineASCS is the paper's active-sampling engine (default).
	EngineASCS EngineKind = iota
	// EngineCS is the vanilla Count Sketch baseline.
	EngineCS
	// EngineASketch is the Augmented Sketch baseline (§8.3).
	EngineASketch
	// EngineColdFilter is the Cold Filter baseline (§8.3; the paper skips
	// its evaluation for similarity to ASketch — included for
	// completeness).
	EngineColdFilter
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case EngineASCS:
		return "ASCS"
	case EngineCS:
		return "CS"
	case EngineASketch:
		return "ASketch"
	case EngineColdFilter:
		return "ColdFilter"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Config configures an Estimator.
type Config struct {
	// Dim is the feature dimensionality d. Required.
	Dim int
	// Samples is the total stream length T (an upper bound is fine; the
	// τ schedule and 1/T scaling are calibrated to it). Required.
	Samples int
	// Tables is the number of hash tables K (default 5, as in §8.1).
	Tables int
	// MemoryFloats is the total sketch budget M in float64 cells; the
	// per-table range is R = M/K. Required (or set Range).
	MemoryFloats int
	// Range overrides R directly when non-zero.
	Range int
	// Alpha is the assumed fraction of signal pairs (§8.1 notes the
	// choice is subjective; 0.005 is a reasonable default for sparse
	// matrices). Used to pick the signal strength u from the warm-up.
	Alpha float64
	// Engine selects the sketching algorithm (default EngineASCS).
	Engine EngineKind
	// Standardize rescales features to unit variance using the warm-up
	// prefix, so estimates approximate correlations rather than second
	// moments (§5). Default true.
	Standardize *bool
	// WarmupFraction is the prefix share used to fit standardization and
	// explore the μ̂ distribution (default 0.05 as in §8.3, with a small
	// floor so sparse pairs can recur).
	WarmupFraction float64
	// TrackCandidates bounds the retrieval candidate set for huge p
	// (default: exhaustive retrieval when p ≤ 20M, else 1<<16
	// candidates).
	TrackCandidates int
	// Seed makes the run deterministic (default 1).
	Seed uint64
}

func (c *Config) fill() error {
	if c.Dim < 2 {
		return fmt.Errorf("ascs: Dim must be ≥ 2, got %d", c.Dim)
	}
	if c.Samples < 4 {
		return fmt.Errorf("ascs: Samples must be ≥ 4, got %d", c.Samples)
	}
	if c.Tables == 0 {
		c.Tables = 5
	}
	if c.Tables < 1 || c.Tables > 64 {
		return fmt.Errorf("ascs: Tables must be in [1,64], got %d", c.Tables)
	}
	if c.Range == 0 {
		if c.MemoryFloats <= 0 {
			return fmt.Errorf("ascs: set MemoryFloats or Range")
		}
		c.Range = c.MemoryFloats / c.Tables
	}
	if c.Range < 2 {
		return fmt.Errorf("ascs: Range %d too small (memory budget under 2 cells/table)", c.Range)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.005
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("ascs: Alpha must be in (0,1), got %v", c.Alpha)
	}
	if c.Standardize == nil {
		t := true
		c.Standardize = &t
	}
	if c.WarmupFraction == 0 {
		c.WarmupFraction = 0.05
	}
	if c.WarmupFraction < 0 || c.WarmupFraction > 0.5 {
		return fmt.Errorf("ascs: WarmupFraction must be in (0, 0.5], got %v", c.WarmupFraction)
	}
	if c.TrackCandidates == 0 {
		if pairs.Count(c.Dim) > 20_000_000 {
			c.TrackCandidates = 1 << 16
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Pair is one reported feature pair with its estimated mean (the
// estimated correlation when standardization is on).
type Pair struct {
	A, B     int
	Estimate float64
}

// Estimator runs the end-to-end workflow: it buffers a warm-up prefix,
// fits standardization and the §8.1 hyper-parameters on it, replays it
// into the chosen engine, then streams the remainder one-pass.
type Estimator struct {
	cfg    Config
	warmN  int
	buf    []stream.Sample
	invStd []float64
	inner  *covstream.Estimator
	solved Schedule
	ready  bool
	seen   int

	// Post-warmup scratch: the steady-state Observe path rescales into
	// scaleBuf and sparsifies dense rows into denseIdx/denseVal instead
	// of allocating per sample (the inner estimator consumes each sample
	// synchronously, so the buffers are free again on return).
	scaleBuf []float64
	denseIdx []int
	denseVal []float64
}

// NewEstimator validates cfg and returns an empty estimator.
func NewEstimator(cfg Config) (*Estimator, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Estimator{cfg: cfg, warmN: covstream.WarmupSize(cfg.WarmupFraction, cfg.Samples)}, nil
}

// Observe feeds one sparse sample: values[i] is the value of feature
// indices[i]; indices must be strictly increasing and within [0, Dim).
// The sample is consumed before Observe returns; the caller keeps
// ownership of the slices.
func (e *Estimator) Observe(indices []int, values []float64) error {
	s := stream.Sample{Idx: indices, Val: values}
	if err := s.Validate(e.cfg.Dim); err != nil {
		return err
	}
	return e.observe(s)
}

// ObserveDense feeds one dense sample of length Dim.
func (e *Estimator) ObserveDense(row []float64) error {
	if len(row) != e.cfg.Dim {
		return fmt.Errorf("ascs: dense row has length %d, want %d", len(row), e.cfg.Dim)
	}
	// Sparsify into reusable scratch: observe either clones (warm-up
	// buffering) or consumes the sample synchronously.
	e.denseIdx, e.denseVal = e.denseIdx[:0], e.denseVal[:0]
	for i, v := range row {
		if v != 0 {
			e.denseIdx = append(e.denseIdx, i)
			e.denseVal = append(e.denseVal, v)
		}
	}
	return e.observe(stream.Sample{Idx: e.denseIdx, Val: e.denseVal})
}

// observe consumes s synchronously; it clones only while the warm-up
// prefix must be buffered.
func (e *Estimator) observe(s stream.Sample) error {
	if e.seen >= e.cfg.Samples {
		return fmt.Errorf("ascs: stream exceeds configured Samples=%d", e.cfg.Samples)
	}
	e.seen++
	if !e.ready {
		e.buf = append(e.buf, s.Clone())
		if len(e.buf) >= e.warmN || e.seen == e.cfg.Samples {
			if err := e.finishWarmup(); err != nil {
				return err
			}
		}
		return nil
	}
	return e.inner.Observe(e.scaleInto(s))
}

// finishWarmup fits standardization, derives the schedule, builds the
// engine, and replays the buffered prefix.
func (e *Estimator) finishWarmup() error {
	cfg := e.cfg
	// Standardization factors from the buffered prefix.
	e.invStd = make([]float64, cfg.Dim)
	if *cfg.Standardize {
		st, err := stream.NewStandardizer(stream.NewSliceSource(e.buf, cfg.Dim), len(e.buf), false)
		if err != nil {
			return err
		}
		copy(e.invStd, st.InvStds())
	} else {
		for i := range e.invStd {
			e.invStd[i] = 1
		}
	}
	scaled := make([]stream.Sample, len(e.buf))
	for i, s := range e.buf {
		scaled[i] = e.scale(s)
	}

	var eng sketchapi.Ingestor
	skCfg := countsketch.Config{Tables: cfg.Tables, Range: cfg.Range, Seed: cfg.Seed}
	switch cfg.Engine {
	case EngineCS:
		ms, err := countsketch.NewMeanSketch(skCfg, cfg.Samples)
		if err != nil {
			return err
		}
		eng = ms
	case EngineASketch:
		filterCap := cfg.Tables * cfg.Range / 100
		if filterCap < 8 {
			filterCap = 8
		}
		ask, err := baselines.NewASketch(skCfg, cfg.Samples, filterCap)
		if err != nil {
			return err
		}
		eng = ask
	case EngineColdFilter:
		// Layer 1 takes a quarter of the budget; saturation threshold in
		// final-mean units, anchored well below plausible signals.
		l1 := countsketch.Config{Tables: cfg.Tables, Range: maxIntAscs(cfg.Range/4, 2), Seed: cfg.Seed ^ 0x1f}
		l2 := countsketch.Config{Tables: cfg.Tables, Range: maxIntAscs(cfg.Range-l1.Range, 2), Seed: cfg.Seed}
		cf, err := baselines.NewColdFilter(l1, l2, cfg.Samples, 0.05)
		if err != nil {
			return err
		}
		eng = cf
	case EngineASCS:
		// The exploration sketch is transient; give it a roomy range so
		// the μ̂ census is not buried in collision noise at tight budgets.
		rWarm := cfg.Range
		if rWarm < 1<<16 {
			rWarm = 1 << 16
		}
		warm, err := covstream.Warmup(stream.NewSliceSource(scaled, cfg.Dim), len(scaled),
			countsketch.Config{Tables: cfg.Tables, Range: rWarm, Seed: cfg.Seed ^ 0x9c3},
			covstream.SecondMoment, 0, int64(cfg.Seed))
		if err != nil {
			return err
		}
		params := warm.ASCSParams(cfg.Alpha, cfg.Samples, cfg.Tables, cfg.Range)
		engine, hp, err := core.NewAuto(params, cfg.Seed, true)
		if err != nil {
			return err
		}
		e.solved = scheduleFrom(hp)
		eng = engine
	default:
		return fmt.Errorf("ascs: unknown engine %v", cfg.Engine)
	}

	inner, err := covstream.New(covstream.Config{
		Dim: cfg.Dim, T: cfg.Samples, Engine: eng,
		Mode: covstream.SecondMoment, TrackCandidates: cfg.TrackCandidates,
	})
	if err != nil {
		return err
	}
	for _, s := range scaled {
		if err := inner.Observe(s); err != nil {
			return err
		}
	}
	e.inner = inner
	e.buf = nil
	e.ready = true
	return nil
}

// scale returns a standardized copy of s that owns its value slice
// (warm-up replay buffers these).
func (e *Estimator) scale(s stream.Sample) stream.Sample {
	out := stream.Sample{Idx: s.Idx, Val: make([]float64, len(s.Val))}
	for i, ix := range s.Idx {
		out.Val[i] = s.Val[i] * e.invStd[ix]
	}
	return out
}

// scaleInto standardizes s into the reusable scratch buffer — the
// alloc-free steady-state path (the inner estimator consumes the sample
// synchronously and retains nothing).
func (e *Estimator) scaleInto(s stream.Sample) stream.Sample {
	if cap(e.scaleBuf) < len(s.Val) {
		e.scaleBuf = make([]float64, len(s.Val))
	}
	buf := e.scaleBuf[:len(s.Val)]
	for i, ix := range s.Idx {
		buf[i] = s.Val[i] * e.invStd[ix]
	}
	return stream.Sample{Idx: s.Idx, Val: buf}
}

func maxIntAscs(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// flushIfNeeded finalizes warm-up when the caller asks for results
// before the warm-up buffer filled (short streams).
func (e *Estimator) flushIfNeeded() error {
	if e.ready {
		return nil
	}
	if len(e.buf) == 0 {
		return fmt.Errorf("ascs: no samples observed")
	}
	return e.finishWarmup()
}

// Top returns the k pairs with the largest estimates.
func (e *Estimator) Top(k int) ([]Pair, error) {
	if err := e.flushIfNeeded(); err != nil {
		return nil, err
	}
	top, err := e.inner.Top(k)
	if err != nil {
		return nil, err
	}
	out := make([]Pair, len(top))
	for i, pe := range top {
		out[i] = Pair{A: pe.A, B: pe.B, Estimate: pe.Estimate}
	}
	return out, nil
}

// TopMagnitude returns the k pairs with the largest |estimate|, so
// strong negative correlations surface alongside positive ones.
func (e *Estimator) TopMagnitude(k int) ([]Pair, error) {
	if err := e.flushIfNeeded(); err != nil {
		return nil, err
	}
	top, err := e.inner.TopMagnitude(k)
	if err != nil {
		return nil, err
	}
	out := make([]Pair, len(top))
	for i, pe := range top {
		out[i] = Pair{A: pe.A, B: pe.B, Estimate: pe.Estimate}
	}
	return out, nil
}

// Estimate returns the current estimate for the pair (a, b) — the
// estimated correlation when standardization is on. Before the stream
// completes the estimate is scaled by t/T.
func (e *Estimator) Estimate(a, b int) (float64, error) {
	if err := e.flushIfNeeded(); err != nil {
		return 0, err
	}
	if a == b || a < 0 || b < 0 || a >= e.cfg.Dim || b >= e.cfg.Dim {
		return 0, fmt.Errorf("ascs: invalid pair (%d,%d) for Dim=%d", a, b, e.cfg.Dim)
	}
	return e.inner.EstimatePair(a, b), nil
}

// Schedule returns the solved ASCS schedule (zero value for other
// engines or before warm-up completes).
func (e *Estimator) Schedule() Schedule { return e.solved }

// Observed returns the number of samples consumed so far.
func (e *Estimator) Observed() int { return e.seen }

// MemoryBytes reports the engine's sketch footprint (0 before warm-up).
func (e *Estimator) MemoryBytes() int {
	if !e.ready {
		return 0
	}
	return e.inner.Engine().Bytes()
}
