package ascs

import (
	"fmt"
	"time"

	"repro/internal/shard"
	"repro/internal/stream"
)

// Serving-layer re-exports: the sharded estimator wraps internal/shard
// so library users get the same concurrent engine the ascsd daemon
// serves, without reaching into internal packages.
type (
	// ServingStats is a point-in-time view of a sharded estimator.
	ServingStats = shard.Stats
	// ShardStats describes one shard worker inside ServingStats.
	ShardStats = shard.ShardStats
	// Consistency selects the lane a query rides: ConsistencyFresh or
	// ConsistencyFast.
	Consistency = shard.Consistency
)

// Query lanes for ShardedConfig.QueryConsistency and the *C query
// variants.
const (
	// ConsistencyFresh: queries ride the ingest FIFO and observe every
	// batch ingested before them (the default).
	ConsistencyFresh = shard.ConsistencyFresh
	// ConsistencyFast: queries ride a bounded priority lane, served
	// ahead of queued ingest batches — bounded tail latency under
	// ingest pressure, bounded staleness (at most the in-flight queue).
	ConsistencyFast = shard.ConsistencyFast
)

// Serving-layer sentinel errors (match with errors.Is).
var (
	// ErrWarmingUp: queries arrived before the warm-up prefix completed.
	ErrWarmingUp = shard.ErrWarmingUp
	// ErrServingClosed: the sharded estimator was closed.
	ErrServingClosed = shard.ErrClosed
	// ErrHorizon: ingest would exceed the configured stream length
	// (fixed-horizon mode only; unbounded Window/DecayLambda estimators
	// never return it).
	ErrHorizon = shard.ErrHorizon
)

// ShardedConfig configures a Sharded estimator. The semantics mirror
// Config; the additional knob is Shards, the number of concurrent
// workers the pair-key space is partitioned across.
type ShardedConfig struct {
	// Dim is the feature dimensionality d. Required.
	Dim int
	// Samples is the stream horizon T. Required.
	Samples int
	// Shards is the worker count N (default 1; use ~GOMAXPROCS for
	// throughput).
	Shards int
	// Tables is the number of hash tables K per shard (default 5).
	Tables int
	// MemoryFloats is the total sketch budget in float64 cells across
	// all shards; each shard gets MemoryFloats/(Tables·Shards) buckets
	// per table. Required (or set Range).
	MemoryFloats int
	// Range overrides the per-shard buckets per table directly.
	Range int
	// Alpha is the assumed signal-pair sparsity (default 0.005).
	Alpha float64
	// Engine selects the sketching algorithm. All four engines are
	// servable (they all snapshot): EngineASCS (default), EngineCS,
	// EngineASketch, EngineColdFilter.
	Engine EngineKind
	// Standardize rescales features to unit variance from the warm-up
	// prefix (default true, as in Estimator).
	Standardize *bool
	// WarmupFraction is the prefix share buffered before the workers
	// start (default 0.05 with the same floors as Estimator).
	WarmupFraction float64
	// TrackCandidates bounds each shard's retrieval candidate set
	// (default 1<<14).
	TrackCandidates int
	// Seed makes hashing deterministic (default 1).
	Seed uint64

	// Window, when positive, serves an *unbounded* stream with a
	// sliding effective window of that many samples: the engines age
	// every observation by λ = 1 − 1/Window per step, estimates
	// approximate the window-weighted mean, stale pairs fall out of
	// top-k, and Observe never fails with ErrHorizon. Samples is
	// ignored. Mutually exclusive with DecayLambda.
	Window int
	// DecayLambda sets the per-step decay factor λ ∈ (0,1] directly
	// (the effective window is 1/(1−λ); λ = 1 serves an unbounded
	// stream with aging disabled, normalized by Samples). Mutually
	// exclusive with Window.
	DecayLambda float64

	// QueryConsistency is the default query lane (ConsistencyFresh
	// when empty). ConsistencyFast bounds query tail latency under
	// ingest pressure: queries are served ahead of queued ingest
	// batches instead of waiting behind the whole per-shard queue, and
	// may miss at most the batches still in that queue. The *C query
	// variants override it per call.
	QueryConsistency Consistency

	// FoldIdle, when positive, folds shards that have been quiet for
	// FoldIdleTicks consecutive FoldIdle intervals down to a sketch
	// 2^FoldLevels narrower, reclaiming memory on idle partitions.
	// Folded shards keep answering queries (unbiased, more collision
	// noise) and unfold transparently on their next ingest batch.
	FoldIdle time.Duration
	// FoldIdleTicks is the number of consecutive quiet FoldIdle ticks
	// before a shard folds (default 2).
	FoldIdleTicks int
	// FoldLevels is the idle-fold depth; each level halves sketch width
	// (default 3, clamped to the sketch's maximum).
	FoldLevels int
	// SnapshotFold writes snapshot blobs pre-folded by this many
	// levels: 2^SnapshotFold fewer sketch bytes per shard, with the
	// matching accuracy cost baked into the snapshot. Restored shards
	// unfold on their first ingest batch. 0 keeps full resolution.
	SnapshotFold int
}

// Sharded is the concurrent, sharded counterpart of Estimator: safe
// for concurrent Observe/ObserveBatch and query calls, with live top-k
// retrieval while the stream is still flowing and snapshot/restore for
// crash recovery. It is the library form of the ascsd daemon; see
// internal/shard for the architecture (and the §5 constraint that
// keeps each ASCS shard sequential).
type Sharded struct {
	m   *shard.Manager
	dim int
}

// NewSharded validates cfg and starts the shard workers. The mem→range
// split and warm-up sizing are the shared shard.NewFromOptions rules, so
// the library, the ascsd daemon, and the ascsload benchmark derive
// identical deployments from identical knobs.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if cfg.Dim < 2 {
		return nil, fmt.Errorf("ascs: Dim must be ≥ 2, got %d", cfg.Dim)
	}
	// Samples is the normalizer only when neither Window nor a λ<1
	// DecayLambda supplies one (λ<1 derives it from the effective
	// window; λ=1 still normalizes by Samples).
	derivesWindow := cfg.Window > 0 || (cfg.DecayLambda > 0 && cfg.DecayLambda < 1)
	if !derivesWindow && cfg.Samples < 4 {
		return nil, fmt.Errorf("ascs: Samples must be ≥ 4, got %d", cfg.Samples)
	}
	var kind shard.Kind
	switch cfg.Engine {
	case EngineASCS:
		kind = shard.KindASCS
	case EngineCS:
		kind = shard.KindCS
	case EngineASketch:
		kind = shard.KindASketch
	case EngineColdFilter:
		kind = shard.KindColdFilter
	default:
		return nil, fmt.Errorf("ascs: unknown serving engine %v", cfg.Engine)
	}
	standardize := true
	if cfg.Standardize != nil {
		standardize = *cfg.Standardize
	}
	m, err := shard.NewFromOptions(shard.ServeOptions{
		Dim:              cfg.Dim,
		Samples:          cfg.Samples,
		Shards:           cfg.Shards,
		Kind:             kind,
		Tables:           cfg.Tables,
		MemoryFloats:     cfg.MemoryFloats,
		Range:            cfg.Range,
		Seed:             cfg.Seed,
		Alpha:            cfg.Alpha,
		Standardize:      standardize,
		WarmupFraction:   cfg.WarmupFraction,
		TrackCandidates:  cfg.TrackCandidates,
		Window:           cfg.Window,
		Lambda:           cfg.DecayLambda,
		QueryConsistency: cfg.QueryConsistency,
		FoldIdle:         cfg.FoldIdle,
		FoldIdleTicks:    cfg.FoldIdleTicks,
		FoldLevels:       cfg.FoldLevels,
		SnapshotFold:     cfg.SnapshotFold,
	})
	if err != nil {
		return nil, err
	}
	return &Sharded{m: m, dim: cfg.Dim}, nil
}

// RestoreSharded rebuilds a Sharded estimator from a Snapshot directory.
func RestoreSharded(dir string) (*Sharded, error) {
	m, err := shard.Restore(dir)
	if err != nil {
		return nil, err
	}
	return &Sharded{m: m, dim: m.Dim()}, nil
}

// Sample is one sparse observation for batch ingestion: Values[i] is
// the value of feature Indices[i]; indices strictly increasing.
type Sample struct {
	Indices []int
	Values  []float64
}

// Observe feeds one sparse sample (see Estimator.Observe).
func (s *Sharded) Observe(indices []int, values []float64) error {
	return s.ObserveBatch([]Sample{{Indices: indices, Values: values}})
}

// ObserveDense feeds one dense sample of length Dim.
func (s *Sharded) ObserveDense(row []float64) error {
	if len(row) != s.dim {
		return fmt.Errorf("ascs: dense row has length %d, want %d", len(row), s.dim)
	}
	sp := stream.FromDense(row)
	return s.ObserveBatch([]Sample{{Indices: sp.Idx, Values: sp.Val}})
}

// ObserveBatch feeds a batch of sparse samples; batching amortizes the
// routing overhead and is the intended high-throughput path.
func (s *Sharded) ObserveBatch(batch []Sample) error {
	samples := make([]stream.Sample, len(batch))
	for i, b := range batch {
		samples[i] = stream.Sample{Idx: b.Indices, Val: b.Values}
	}
	_, _, err := s.m.Ingest(samples)
	return err
}

// Top returns the k pairs with the largest estimates (ErrWarmingUp
// before the warm-up prefix completes), on the configured default lane.
func (s *Sharded) Top(k int) ([]Pair, error) {
	return s.pairs(s.m.TopK(k))
}

// TopC is Top on an explicit query lane (empty = configured default).
func (s *Sharded) TopC(k int, c Consistency) ([]Pair, error) {
	return s.pairs(s.m.TopKC(k, c))
}

// TopMagnitude returns the k pairs with the largest |estimate|.
func (s *Sharded) TopMagnitude(k int) ([]Pair, error) {
	return s.pairs(s.m.TopKMagnitude(k))
}

// TopMagnitudeC is TopMagnitude on an explicit query lane.
func (s *Sharded) TopMagnitudeC(k int, c Consistency) ([]Pair, error) {
	return s.pairs(s.m.TopKMagnitudeC(k, c))
}

func (s *Sharded) pairs(ps []shard.PairEstimate, err error) ([]Pair, error) {
	if err != nil {
		return nil, err
	}
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{A: p.A, B: p.B, Estimate: p.Estimate}
	}
	return out, nil
}

// Estimate returns the current estimate for the pair (a, b), scaled by
// t/T before the stream completes, on the configured default lane.
func (s *Sharded) Estimate(a, b int) (float64, error) { return s.m.Estimate(a, b) }

// EstimateC is Estimate on an explicit query lane (empty = default).
func (s *Sharded) EstimateC(a, b int, c Consistency) (float64, error) {
	return s.m.EstimateC(a, b, c)
}

// Observed returns the number of samples ingested so far.
func (s *Sharded) Observed() int { return s.m.Step() }

// Unbounded reports whether the estimator serves an unbounded stream
// (exponential-decay mode; Observe never fails with ErrHorizon).
func (s *Sharded) Unbounded() bool { return s.m.Unbounded() }

// Window returns the effective sample window of an unbounded estimator
// (0 in fixed-horizon mode).
func (s *Sharded) Window() int { return s.m.Window() }

// Warming reports whether the warm-up prefix is still buffering.
func (s *Sharded) Warming() bool { return s.m.Warming() }

// Stats reports ingest progress and per-shard engine state on the
// configured default lane.
func (s *Sharded) Stats() (ServingStats, error) { return s.m.Stats() }

// StatsC is Stats on an explicit query lane (empty = default) — e.g. a
// fresh-ordered read that observes every batch ingested before it even
// on a fast-default deployment.
func (s *Sharded) StatsC(c Consistency) (ServingStats, error) { return s.m.StatsC(c) }

// Snapshot checkpoints all shards into dir (observing every batch
// ingested before the call); RestoreSharded resumes from it.
func (s *Sharded) Snapshot(dir string) error { return s.m.Snapshot(dir) }

// Close drains and stops the shard workers.
func (s *Sharded) Close() error { return s.m.Close() }
