package countsketch

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/sketchapi"
)

// MeanSketch adapts a Count Sketch to the Ingestor contract for online
// mean estimation (the paper's Algorithm 1): every offered value is
// inserted scaled by 1/T, so the retrieval at the end of the stream is
// the estimated mean μ̂_i. This is the "vanilla CS" baseline.
type MeanSketch struct {
	sk   *Sketch
	invT float64
	t    int

	// decay/lambda/neff implement sketchapi.Decayer: in decay mode
	// BeginStep ages the sketch by λ per step (lazily, via the sketch's
	// scale accumulator) and invT normalizes by the effective window
	// instead of a stream horizon. See the Sketch type comment.
	decay  bool
	lambda float64
	neff   float64

	// slots is the reusable slot scratch of the fused offer methods
	// (single-writer by the Ingestor contract; kept off the stack so it
	// does not escape through the hash-family interface call).
	slots [MaxTables]Slot

	// wave is the group-size state and lazily built scratch of the
	// wave-pipelined OfferPairs path (sketchapi.WaveTuner).
	wave WaveTune

	// Health telemetry: CS has no gate, so every offer is admitted mass;
	// wave groups split into the staged pure-ingest path and the
	// estimate-shape fallback (post-add estimates recompute from the
	// table per pair).
	inserts     uint64
	mass        float64
	waveGroups  uint64
	waveFbShape uint64
}

var (
	_ sketchapi.OfferEstimator = (*MeanSketch)(nil)
	_ sketchapi.RowOfferer     = (*MeanSketch)(nil)
	_ sketchapi.Decayer        = (*MeanSketch)(nil)
	_ sketchapi.WaveTuner      = (*MeanSketch)(nil)
	_ sketchapi.HealthReporter = (*MeanSketch)(nil)
	_ sketchapi.Folder         = (*MeanSketch)(nil)
	_ sketchapi.FoldedWriter   = (*MeanSketch)(nil)
)

// NewMeanSketch creates the vanilla-CS engine for a stream of exactly (or
// at most) totalSamples steps.
func NewMeanSketch(cfg Config, totalSamples int) (*MeanSketch, error) {
	if totalSamples <= 0 {
		return nil, fmt.Errorf("countsketch: totalSamples must be positive, got %d", totalSamples)
	}
	sk, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &MeanSketch{sk: sk, invT: 1 / float64(totalSamples), lambda: 1}, nil
}

// NewMeanSketchDecayed creates the vanilla-CS engine in exponential-
// decay (unbounded-stream) mode: every step ages the table by lambda
// and inserts are normalized by the window (the λ=1−1/window analogue
// of the horizon T), so the estimate converges to the λ-weighted mean
// with no horizon to exhaust. lambda = 1 keeps the arithmetic
// bit-identical to NewMeanSketch(cfg, window) while lifting the bound.
func NewMeanSketchDecayed(cfg Config, window int, lambda float64) (*MeanSketch, error) {
	if err := sketchapi.ValidateDecay(lambda); err != nil {
		return nil, err
	}
	m, err := NewMeanSketch(cfg, window)
	if err != nil {
		return nil, err
	}
	m.decay = true
	m.lambda = lambda
	return m, nil
}

// BeginStep records the current time step, applying the decay ticks of
// the steps advanced when in decay mode.
func (m *MeanSketch) BeginStep(t int) {
	if m.decay {
		if steps := t - m.t; steps > 0 {
			m.sk.Decay(sketchapi.DecayPow(m.lambda, steps))
			m.neff = sketchapi.AdvanceEffective(m.neff, m.lambda, steps)
		}
	}
	m.t = t
}

// Decaying implements sketchapi.Decayer.
func (m *MeanSketch) Decaying() bool { return m.decay }

// DecayFactor implements sketchapi.Decayer.
func (m *MeanSketch) DecayFactor() float64 { return m.lambda }

// EffectiveSamples implements sketchapi.Decayer (N_eff = t in fixed
// mode and at λ = 1).
func (m *MeanSketch) EffectiveSamples() float64 {
	if m.decay {
		return m.neff
	}
	return float64(m.t)
}

// Offer inserts x/T for key.
func (m *MeanSketch) Offer(key uint64, x float64) {
	m.inserts++
	m.mass += math.Abs(x)
	m.sk.Add(key, x*m.invT)
}

// Estimate returns the current (t/T-scaled) mean estimate.
func (m *MeanSketch) Estimate(key uint64) float64 { return m.sk.Estimate(key) }

// OfferEstimate implements sketchapi.OfferEstimator: insert and
// post-insert estimate off one Locate (the per-call path hashes twice).
func (m *MeanSketch) OfferEstimate(key uint64, x float64) (float64, bool) {
	m.inserts++
	m.mass += math.Abs(x)
	m.sk.Locate(key, &m.slots)
	m.sk.AddSlots(&m.slots, x*m.invT)
	return m.sk.EstimateSlots(&m.slots), true
}

// OfferPairs implements the batch fast path for one time step via the
// wave pipeline: each group of G pairs is hashed in one dispatch
// (LocateBatch), its K·G cells are touched so the misses overlap, and
// the inserts then run on warm lines. CS has no admission gate, so the
// per-pair insert order is replayed exactly (adds to a shared cell
// land in the same order as the scalar loop) and the result is
// bit-identical at any G with no conflict screening needed.
func (m *MeanSketch) OfferPairs(keys []uint64, xs []float64, ests []float64) {
	w, g := m.wave.Scratch(m.sk.K())
	if g <= 1 {
		m.offerPairsScalar(keys, xs, ests)
		return
	}
	for lo := 0; lo < len(keys); lo += g {
		hi := lo + g
		if hi > len(keys) {
			hi = len(keys)
		}
		var sub []float64
		if ests != nil {
			sub = ests[lo:hi]
		}
		m.offerWave(w, keys[lo:hi], xs[lo:hi], sub)
	}
}

// offerWave processes one group of ≤ G pairs — the shared wave group
// body of OfferPairs and the RowOfferer path. ests is nil or len(keys).
func (m *MeanSketch) offerWave(w *Wave, keys []uint64, xs []float64, ests []float64) {
	n := len(keys)
	m.waveGroups++
	slots := w.Slots(n)
	m.sk.LocateBatch(keys, slots)
	w.Sink += m.sk.TouchSlots(slots)
	if ests == nil {
		vs := w.Vs(n)
		for i := 0; i < n; i++ {
			vs[i] = xs[i] * m.invT
			m.mass += math.Abs(xs[i])
		}
		m.inserts += uint64(n)
		m.sk.AddSlotsBatch(slots, vs, nil, nil, nil)
		return
	}
	// The scalar contract recomputes the post-add estimate from the
	// table (not the median shift), so the estimating path replays
	// the per-pair order on the touched cells.
	m.waveFbShape++
	for i := 0; i < n; i++ {
		sl := w.At(i)
		m.inserts++
		m.mass += math.Abs(xs[i])
		m.sk.AddSlots(sl, xs[i]*m.invT)
		ests[i] = m.sk.EstimateSlots(sl)
	}
}

// OfferRow implements sketchapi.RowOfferer: one row's pairs
// (rowBase+partners[j], x[j]) with the key materialization amortized to
// one wrapping vector add per wave group, then the same group body as
// OfferPairs. Bit-identical to OfferPairs over the materialized keys
// at any group size (scalar per-pair at g ≤ 1).
func (m *MeanSketch) OfferRow(rowBase uint64, partners []uint64, x []float64, ests []float64) {
	w, g := m.wave.Scratch(m.sk.K())
	if g <= 1 {
		for j, p := range partners {
			if ests == nil {
				m.Offer(rowBase+p, x[j])
			} else {
				ests[j], _ = m.OfferEstimate(rowBase+p, x[j])
			}
		}
		return
	}
	WalkRowGroups(w, g, rowBase, partners, x, ests,
		func(keys []uint64, xs []float64, sub []float64) { m.offerWave(w, keys, xs, sub) })
}

// OfferRows implements sketchapi.RowOfferer: one sample's whole upper
// triangle in row-major order, groups packed across row boundaries.
func (m *MeanSketch) OfferRows(bases, ids []uint64, left, right []float64, ests []float64) {
	w, g := m.wave.Scratch(m.sk.K())
	if g <= 1 {
		p := 0
		for i := 0; i+1 < len(ids); i++ {
			base, li := bases[i], left[i]
			for j := i + 1; j < len(ids); j++ {
				if ests == nil {
					m.Offer(base+ids[j], li*right[j])
				} else {
					ests[p], _ = m.OfferEstimate(base+ids[j], li*right[j])
				}
				p++
			}
		}
		return
	}
	WalkRowsGroups(w, g, bases, ids, left, right, ests,
		func(keys []uint64, xs []float64, sub []float64) { m.offerWave(w, keys, xs, sub) })
}

// offerPairsScalar is the pre-wave batch loop, kept as the wave path's
// differential reference (sketchapi.WaveTuner, g = 1).
func (m *MeanSketch) offerPairsScalar(keys []uint64, xs []float64, ests []float64) {
	for i, key := range keys {
		m.inserts++
		m.mass += math.Abs(xs[i])
		m.sk.Locate(key, &m.slots)
		m.sk.AddSlots(&m.slots, xs[i]*m.invT)
		if ests != nil {
			ests[i] = m.sk.EstimateSlots(&m.slots)
		}
	}
}

// SetWaveGroup implements sketchapi.WaveTuner (g ≤ 1 = scalar loop).
// Not safe concurrently with offers.
func (m *MeanSketch) SetWaveGroup(g int) { m.wave.Set(g) }

// WaveGroup implements sketchapi.WaveTuner.
func (m *MeanSketch) WaveGroup() int { return m.wave.Group() }

// Health implements sketchapi.HealthReporter: CS has no admission
// gate, so every offer lands in ExplorationInserts/AdmittedMass and the
// gate counters stay zero. Call from the owning goroutine.
func (m *MeanSketch) Health() sketchapi.Health {
	return sketchapi.Health{
		ExplorationInserts: m.inserts,
		AdmittedMass:       m.mass,
		DecayRenorms:       m.sk.Renorms(),
		WaveGroups:         m.waveGroups,
		WaveFallbackShape:  m.waveFbShape,
	}
}

// Bytes reports the table footprint.
func (m *MeanSketch) Bytes() int { return m.sk.Bytes() }

// Name identifies the engine.
func (m *MeanSketch) Name() string { return "CS" }

// Sketch exposes the underlying Count Sketch (read-mostly; used by
// diagnostics and the ASCS warm-start path).
func (m *MeanSketch) Sketch() *Sketch { return m.sk }

// Fold implements sketchapi.Folder by folding the underlying table.
func (m *MeanSketch) Fold(levels int) error { return m.sk.Fold(levels) }

// Unfold implements sketchapi.Folder.
func (m *MeanSketch) Unfold() { m.sk.Unfold() }

// FoldLevel implements sketchapi.Folder.
func (m *MeanSketch) FoldLevel() int { return m.sk.FoldLevel() }

// MaxFoldLevels implements sketchapi.Folder.
func (m *MeanSketch) MaxFoldLevels() int { return m.sk.MaxFoldLevels() }

// Mean-sketch serialization magics: v1 is the fixed-horizon layout, v2
// appends the decay parameters (λ, N_eff) and marks the engine
// unbounded. Fixed-horizon engines keep writing v1 byte-identically.
const (
	meanMagic   = uint32(0xA5C5C501)
	meanMagicV2 = uint32(0xA5C5C502)
)

// WriteTo serializes the engine (stream length or window, step
// position, decay state, table contents) for checkpoint/resume.
func (m *MeanSketch) WriteTo(w io.Writer) (int64, error) {
	return m.writeTo(w, m.sk.WriteTo)
}

// writeTo is the shared body of WriteTo and WriteToFolded: the engine
// header followed by the sketch via writeSketch.
func (m *MeanSketch) writeTo(w io.Writer, writeSketch func(io.Writer) (int64, error)) (int64, error) {
	hdr := make([]byte, 4+16, 4+32)
	binary.LittleEndian.PutUint32(hdr[0:], meanMagic)
	// Round, don't truncate: 1/(1/T) can land one ulp below T (~7% of
	// integer T), and a truncated T-1 would silently re-normalize every
	// post-restore insert by the wrong stream length.
	total := uint64(math.Round(1 / m.invT))
	binary.LittleEndian.PutUint64(hdr[4:], total)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(m.t))
	if m.decay {
		binary.LittleEndian.PutUint32(hdr[0:], meanMagicV2)
		hdr = hdr[:4+32]
		binary.LittleEndian.PutUint64(hdr[20:], math.Float64bits(m.lambda))
		binary.LittleEndian.PutUint64(hdr[28:], math.Float64bits(m.neff))
	}
	n, err := w.Write(hdr)
	written := int64(n)
	if err != nil {
		return written, err
	}
	sn, err := writeSketch(w)
	return written + sn, err
}

// WriteToFolded implements sketchapi.FoldedWriter: the engine header is
// unchanged, the table streams pre-folded to the given level.
func (m *MeanSketch) WriteToFolded(w io.Writer, level int) (int64, error) {
	return m.writeTo(w, func(w io.Writer) (int64, error) { return m.sk.WriteToFolded(w, level) })
}

// ReadMeanSketchFrom reconstructs a MeanSketch written by WriteTo
// (either format version).
func ReadMeanSketchFrom(r io.Reader) (*MeanSketch, error) {
	hdr := make([]byte, 4+16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("countsketch: reading mean header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic != meanMagic && magic != meanMagicV2 {
		return nil, fmt.Errorf("countsketch: bad mean-sketch magic")
	}
	total := binary.LittleEndian.Uint64(hdr[4:])
	if total == 0 {
		return nil, fmt.Errorf("countsketch: corrupt stream length")
	}
	m := &MeanSketch{invT: 1 / float64(total), t: int(binary.LittleEndian.Uint64(hdr[12:])), lambda: 1}
	if magic == meanMagicV2 {
		var ext [16]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return nil, fmt.Errorf("countsketch: reading mean decay state: %w", err)
		}
		m.decay = true
		m.lambda = math.Float64frombits(binary.LittleEndian.Uint64(ext[0:]))
		m.neff = math.Float64frombits(binary.LittleEndian.Uint64(ext[8:]))
		if err := sketchapi.ValidateDecay(m.lambda); err != nil {
			return nil, fmt.Errorf("countsketch: corrupt mean decay factor: %w", err)
		}
	}
	sk, err := ReadFrom(r)
	if err != nil {
		return nil, err
	}
	m.sk = sk
	return m, nil
}
