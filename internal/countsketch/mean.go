package countsketch

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sketchapi"
)

// MeanSketch adapts a Count Sketch to the Ingestor contract for online
// mean estimation (the paper's Algorithm 1): every offered value is
// inserted scaled by 1/T, so the retrieval at the end of the stream is
// the estimated mean μ̂_i. This is the "vanilla CS" baseline.
type MeanSketch struct {
	sk   *Sketch
	invT float64
	t    int

	// slots is the reusable slot scratch of the fused offer methods
	// (single-writer by the Ingestor contract; kept off the stack so it
	// does not escape through the hash-family interface call).
	slots [MaxTables]Slot
}

var _ sketchapi.OfferEstimator = (*MeanSketch)(nil)

// NewMeanSketch creates the vanilla-CS engine for a stream of exactly (or
// at most) totalSamples steps.
func NewMeanSketch(cfg Config, totalSamples int) (*MeanSketch, error) {
	if totalSamples <= 0 {
		return nil, fmt.Errorf("countsketch: totalSamples must be positive, got %d", totalSamples)
	}
	sk, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &MeanSketch{sk: sk, invT: 1 / float64(totalSamples)}, nil
}

// BeginStep records the current time step.
func (m *MeanSketch) BeginStep(t int) { m.t = t }

// Offer inserts x/T for key.
func (m *MeanSketch) Offer(key uint64, x float64) { m.sk.Add(key, x*m.invT) }

// Estimate returns the current (t/T-scaled) mean estimate.
func (m *MeanSketch) Estimate(key uint64) float64 { return m.sk.Estimate(key) }

// OfferEstimate implements sketchapi.OfferEstimator: insert and
// post-insert estimate off one Locate (the per-call path hashes twice).
func (m *MeanSketch) OfferEstimate(key uint64, x float64) (float64, bool) {
	m.sk.Locate(key, &m.slots)
	m.sk.AddSlots(&m.slots, x*m.invT)
	return m.sk.EstimateSlots(&m.slots), true
}

// OfferPairs implements the batch fast path for one time step.
func (m *MeanSketch) OfferPairs(keys []uint64, xs []float64, ests []float64) {
	for i, key := range keys {
		m.sk.Locate(key, &m.slots)
		m.sk.AddSlots(&m.slots, xs[i]*m.invT)
		if ests != nil {
			ests[i] = m.sk.EstimateSlots(&m.slots)
		}
	}
}

// Bytes reports the table footprint.
func (m *MeanSketch) Bytes() int { return m.sk.Bytes() }

// Name identifies the engine.
func (m *MeanSketch) Name() string { return "CS" }

// Sketch exposes the underlying Count Sketch (read-mostly; used by
// diagnostics and the ASCS warm-start path).
func (m *MeanSketch) Sketch() *Sketch { return m.sk }

const meanMagic = uint32(0xA5C5C501)

// WriteTo serializes the engine (stream length, step position, table
// contents) for checkpoint/resume.
func (m *MeanSketch) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 4+16)
	binary.LittleEndian.PutUint32(hdr[0:], meanMagic)
	total := uint64(1 / m.invT)
	binary.LittleEndian.PutUint64(hdr[4:], total)
	binary.LittleEndian.PutUint64(hdr[12:], uint64(m.t))
	n, err := w.Write(hdr)
	written := int64(n)
	if err != nil {
		return written, err
	}
	sn, err := m.sk.WriteTo(w)
	return written + sn, err
}

// ReadMeanSketchFrom reconstructs a MeanSketch written by WriteTo.
func ReadMeanSketchFrom(r io.Reader) (*MeanSketch, error) {
	hdr := make([]byte, 4+16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("countsketch: reading mean header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != meanMagic {
		return nil, fmt.Errorf("countsketch: bad mean-sketch magic")
	}
	total := binary.LittleEndian.Uint64(hdr[4:])
	if total == 0 {
		return nil, fmt.Errorf("countsketch: corrupt stream length")
	}
	sk, err := ReadFrom(r)
	if err != nil {
		return nil, err
	}
	return &MeanSketch{sk: sk, invT: 1 / float64(total), t: int(binary.LittleEndian.Uint64(hdr[12:]))}, nil
}
