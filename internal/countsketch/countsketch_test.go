package countsketch

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/hashing"
)

func testCfg(r int) Config {
	return Config{Tables: 5, Range: r, Seed: 42, Hash: hashing.KindMix}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Tables: 0, Range: 10}); err == nil {
		t.Error("expected error for zero tables")
	}
	if _, err := New(Config{Tables: MaxTables + 1, Range: 10}); err == nil {
		t.Error("expected error for too many tables")
	}
	if _, err := New(Config{Tables: 3, Range: 0}); err == nil {
		t.Error("expected error for zero range")
	}
	if _, err := New(Config{Tables: 3, Range: 8, Hash: hashing.Kind(77)}); err == nil {
		t.Error("expected error for bad hash kind")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestExactRecoveryWithoutCollisions(t *testing.T) {
	// With R vastly larger than the number of keys, estimates are exact.
	s := MustNew(testCfg(1 << 16))
	vals := map[uint64]float64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		k := uint64(i)
		v := rng.NormFloat64()
		vals[k] = v
		s.Add(k, v)
	}
	for k, v := range vals {
		if got := s.Estimate(k); math.Abs(got-v) > 1e-12 {
			t.Fatalf("Estimate(%d) = %v, want %v", k, got, v)
		}
	}
}

func TestAccumulation(t *testing.T) {
	s := MustNew(testCfg(1 << 12))
	s.Add(7, 1.5)
	s.Add(7, 2.5)
	if got := s.Estimate(7); math.Abs(got-4) > 1e-12 {
		t.Errorf("accumulated estimate = %v, want 4", got)
	}
	// Negative updates cancel.
	s.Add(7, -4)
	if got := s.Estimate(7); math.Abs(got) > 1e-12 {
		t.Errorf("cancelled estimate = %v, want 0", got)
	}
}

func TestUnseenKeyNearZero(t *testing.T) {
	s := MustNew(testCfg(1 << 14))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		s.Add(uint64(i), rng.NormFloat64())
	}
	// An unseen key's estimate is zero unless it collides in ≥ K/2 tables,
	// which is vanishingly unlikely at this load factor.
	if got := s.Estimate(999999); got != 0 {
		t.Errorf("unseen key estimate = %v, want 0", got)
	}
}

func TestAddPanicsOnNonFinite(t *testing.T) {
	s := MustNew(testCfg(64))
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%v) should panic", v)
				}
			}()
			s.Add(1, v)
		}()
	}
}

func TestMedianErrorBound(t *testing.T) {
	// Heavy hitter among light noise: the median estimate must recover
	// the heavy value within the classic CS error ~ ||noise||_2/sqrt(R).
	const (
		r     = 2048
		nKeys = 20000
		heavy = 100.0
	)
	s := MustNew(testCfg(r))
	rng := rand.New(rand.NewSource(3))
	noiseL2 := 0.0
	for i := 1; i <= nKeys; i++ {
		v := rng.NormFloat64()
		noiseL2 += v * v
		s.Add(uint64(i), v)
	}
	s.Add(0, heavy)
	bound := 3 * math.Sqrt(noiseL2/float64(r))
	if got := s.Estimate(0); math.Abs(got-heavy) > bound {
		t.Errorf("heavy estimate = %v, want within %v of %v", got, bound, heavy)
	}
}

func TestLinearityOrderInvariance(t *testing.T) {
	// The sketch state depends only on the multiset of (key, value) adds.
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		keys := make([]uint64, n)
		vals := make([]float64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(30))
			vals[i] = rng.NormFloat64()
		}
		a := MustNew(testCfg(128))
		b := MustNew(testCfg(128))
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			a.Add(keys[i], vals[i])
			b.Add(keys[perm[i]], vals[perm[i]])
		}
		for k := uint64(0); k < 30; k++ {
			if math.Abs(a.Estimate(k)-b.Estimate(k)) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSplitMergeEqualsSerial(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		serial := MustNew(testCfg(256))
		shards := serial.Split(4)
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			k := uint64(rng.Intn(100))
			v := rng.NormFloat64()
			serial.Add(k, v)
			shards[rng.Intn(4)].Add(k, v)
		}
		merged := MustNew(testCfg(256))
		for _, sh := range shards {
			if err := merged.Merge(sh); err != nil {
				return false
			}
		}
		for k := uint64(0); k < 100; k++ {
			if math.Abs(serial.Estimate(k)-merged.Estimate(k)) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMergeRejectsMismatch(t *testing.T) {
	a := MustNew(testCfg(64))
	b := MustNew(testCfg(128))
	if err := a.Merge(b); err == nil {
		t.Error("expected config mismatch error")
	}
	c := MustNew(Config{Tables: 5, Range: 64, Seed: 43, Hash: hashing.KindMix})
	if err := a.Merge(c); err == nil {
		t.Error("expected seed mismatch error")
	}
}

func TestResetAndClone(t *testing.T) {
	s := MustNew(testCfg(64))
	s.Add(5, 3)
	c := s.Clone()
	s.Reset()
	if got := s.Estimate(5); got != 0 {
		t.Errorf("after Reset estimate = %v", got)
	}
	if got := c.Estimate(5); math.Abs(got-3) > 1e-12 {
		t.Errorf("clone estimate = %v, want 3", got)
	}
}

func TestScale(t *testing.T) {
	s := MustNew(testCfg(1 << 12))
	s.Add(1, 4)
	s.Scale(0.25)
	if got := s.Estimate(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("scaled estimate = %v, want 1", got)
	}
}

func TestL2NormAndBytes(t *testing.T) {
	s := MustNew(Config{Tables: 1, Range: 4, Seed: 1})
	if s.Bytes() != 32 {
		t.Errorf("Bytes = %d, want 32", s.Bytes())
	}
	s.Add(1, 3)
	if got := s.L2Norm(); math.Abs(got-3) > 1e-12 {
		t.Errorf("L2Norm = %v, want 3", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s := MustNew(testCfg(512))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		s.Add(uint64(rng.Intn(1000)), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config() != s.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", got.Config(), s.Config())
	}
	for k := uint64(0); k < 1000; k++ {
		if got.Estimate(k) != s.Estimate(k) {
			t.Fatalf("estimate mismatch at key %d", k)
		}
	}
}

func TestReadFromErrors(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := ReadFrom(bytes.NewReader(make([]byte, 36))); err == nil {
		t.Error("expected error for bad magic")
	}
	// Valid header but truncated body.
	s := MustNew(testCfg(512))
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("expected error for truncated body")
	}
}

func TestEstimateMin(t *testing.T) {
	s := MustNew(testCfg(1 << 14))
	s.Add(3, 5)
	if got := s.EstimateMin(3); math.Abs(got-5) > 1e-12 {
		t.Errorf("EstimateMin = %v, want 5", got)
	}
}

func TestMedianInPlace(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := medianInPlace(xs); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if !sort.Float64sAreSorted(xs) {
		t.Error("medianInPlace should sort")
	}
	if got := medianInPlace([]float64{2, 1}); got != 1.5 {
		t.Errorf("even median = %v, want 1.5", got)
	}
}

func TestMeanSketchLifecycle(t *testing.T) {
	m, err := NewMeanSketch(testCfg(1<<14), 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "CS" {
		t.Errorf("Name = %q", m.Name())
	}
	for tstep := 1; tstep <= 10; tstep++ {
		m.BeginStep(tstep)
		m.Offer(7, 2.0) // constant stream of 2s: mean is 2
	}
	if got := m.Estimate(7); math.Abs(got-2) > 1e-12 {
		t.Errorf("mean estimate = %v, want 2", got)
	}
	if m.Bytes() != m.Sketch().Bytes() {
		t.Error("Bytes should delegate to sketch")
	}
}

func TestNewMeanSketchValidation(t *testing.T) {
	if _, err := NewMeanSketch(testCfg(8), 0); err == nil {
		t.Error("expected error for zero samples")
	}
	if _, err := NewMeanSketch(Config{}, 10); err == nil {
		t.Error("expected error for invalid sketch config")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := MustNew(Config{Tables: 5, Range: 1 << 16, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i), 1.0)
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := MustNew(Config{Tables: 5, Range: 1 << 16, Seed: 1})
	for i := 0; i < 1000; i++ {
		s.Add(uint64(i), 1.0)
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Estimate(uint64(i % 2000))
	}
	_ = sink
}
