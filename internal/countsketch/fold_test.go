package countsketch

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/hashing"
)

// foldStream feeds n integer-valued updates derived from seed into s.
// Integer magnitudes keep every fold identity exact in float64: group
// sums and sign-composed cancellations commute with insertion order.
func foldStream(s *Sketch, seed int64, n, keys int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s.Add(uint64(rng.Intn(keys)), float64(1+rng.Intn(8)))
	}
}

// TestFoldHashCongruence pins the identity the whole fold design rests
// on: for every hash family, Range divisible by 2^L implies
// bucket(key, R>>L) == bucket(key, R) >> L — the coarse lookup lands
// exactly on the folded image of the fine cells.
func TestFoldHashCongruence(t *testing.T) {
	for _, kind := range []hashing.Kind{hashing.KindMix, hashing.KindPoly, hashing.KindPoly4, hashing.KindTabulation} {
		const R, L, k = 1024, 3, 5
		fine := MustNew(Config{Tables: k, Range: R, Seed: 99, Hash: kind})
		coarse := MustNew(Config{Tables: k, Range: R >> L, Seed: 99, Hash: kind})
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			key := rng.Uint64()
			for e := 0; e < k; e++ {
				if got, want := coarse.BucketOf(e, key), fine.BucketOf(e, key)>>L; got != want {
					t.Fatalf("%v: table %d key %d: coarse bucket %d, fine>>L %d", kind, e, key, got, want)
				}
			}
		}
	}
}

// TestFoldEqualsDirectCoarse is the core linear-map guarantee: folding a
// fine sketch by L levels yields, bit for bit, the sketch a direct
// construction at Range>>L would have built from the same stream — the
// sign hashes are range-independent and the bucket map is congruent, so
// the fold is exactly the coarse sketch's linear accumulation.
func TestFoldEqualsDirectCoarse(t *testing.T) {
	const R, k = 512, 5
	for _, level := range []int{1, 2, 4} {
		fine := MustNew(Config{Tables: k, Range: R, Seed: 5})
		coarse := MustNew(Config{Tables: k, Range: R >> level, Seed: 5})
		foldStream(fine, 11, 20_000, 3000)
		foldStream(coarse, 11, 20_000, 3000)
		if err := fine.Fold(level); err != nil {
			t.Fatal(err)
		}
		if fine.FoldLevel() != level {
			t.Fatalf("FoldLevel = %d, want %d", fine.FoldLevel(), level)
		}
		for i := range fine.w {
			if fine.w[i] != coarse.w[i] {
				t.Fatalf("level %d: cell %d differs: folded %v, direct %v", level, i, fine.w[i], coarse.w[i])
			}
		}
		for key := uint64(0); key < 3000; key++ {
			if f, c := fine.Estimate(key), coarse.Estimate(key); f != c {
				t.Fatalf("level %d: key %d: folded estimate %v, direct %v", level, key, f, c)
			}
		}
	}
}

// TestUnfoldPreservesEstimates pins unfold-by-replication: every
// estimate is bit-identical before and after Unfold, so serving never
// needs to unfold for accuracy — only ingest wants full resolution back.
func TestUnfoldPreservesEstimates(t *testing.T) {
	s := MustNew(Config{Tables: 5, Range: 256, Seed: 8})
	foldStream(s, 21, 8000, 1500)
	if err := s.Fold(3); err != nil {
		t.Fatal(err)
	}
	folded := make([]float64, 1500)
	for key := range folded {
		folded[key] = s.Estimate(uint64(key))
	}
	s.Unfold()
	if s.FoldLevel() != 0 {
		t.Fatalf("FoldLevel after Unfold = %d", s.FoldLevel())
	}
	for key, want := range folded {
		if got := s.Estimate(uint64(key)); got != want {
			t.Fatalf("key %d: estimate %v after unfold, %v before", key, got, want)
		}
	}
}

// TestRefoldCompensation drives the idle-shard lifecycle — fold, unfold,
// resume ingest, fold again — and requires the second fold to equal the
// direct coarse sketch fed the whole stream: the refold baseline
// subtracts the replication overcount exactly.
func TestRefoldCompensation(t *testing.T) {
	const R, k, level = 512, 5, 2
	s := MustNew(Config{Tables: k, Range: R, Seed: 13})
	coarse := MustNew(Config{Tables: k, Range: R >> level, Seed: 13})
	foldStream(s, 31, 10_000, 2000)
	foldStream(coarse, 31, 10_000, 2000)
	if err := s.Fold(level); err != nil {
		t.Fatal(err)
	}
	s.Unfold()
	// Second tranche lands on the unfolded (replicated) table.
	foldStream(s, 32, 10_000, 2000)
	foldStream(coarse, 32, 10_000, 2000)
	if err := s.Fold(level); err != nil {
		t.Fatal(err)
	}
	for i := range s.w {
		if s.w[i] != coarse.w[i] {
			t.Fatalf("cell %d after refold: %v, direct coarse %v", i, s.w[i], coarse.w[i])
		}
	}
}

// TestFoldBelowBaseline folds an unfolded sketch to a level finer than
// its refold baseline: the coarser history must stay replicated (one
// copy per target cell), so estimates are unchanged by the partial fold.
func TestFoldBelowBaseline(t *testing.T) {
	s := MustNew(Config{Tables: 5, Range: 256, Seed: 17})
	foldStream(s, 41, 6000, 1200)
	if err := s.Fold(3); err != nil {
		t.Fatal(err)
	}
	s.Unfold()
	want := make([]float64, 1200)
	for key := range want {
		want[key] = s.Estimate(uint64(key))
	}
	if err := s.Fold(1); err != nil {
		t.Fatal(err)
	}
	for key, w := range want {
		if got := s.Estimate(uint64(key)); got != w {
			t.Fatalf("key %d: estimate %v at level 1, %v at baseline", key, got, w)
		}
	}
	// A partial fold keeps the baseline, and WriteToFolded carries it:
	// a restored copy must fold on to the baseline's level exactly.
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Folding on down to the baseline's own level recovers the true
	// level-3 table: still the same estimates.
	for _, sk := range []*Sketch{s, r} {
		if err := sk.Fold(2); err != nil {
			t.Fatal(err)
		}
		for key, w := range want {
			if got := sk.Estimate(uint64(key)); got != w {
				t.Fatalf("key %d: estimate %v at level 3, %v at baseline", key, got, w)
			}
		}
	}
	for i := range s.w {
		if s.w[i] != r.w[i] {
			t.Fatalf("restored partial fold diverges at cell %d", i)
		}
	}
}

// TestFoldMergeCommutes: the fold is linear, so fold∘merge ≡ merge∘fold
// bit for bit — the property that lets fold-aware snapshot merge pick
// either order.
func TestFoldMergeCommutes(t *testing.T) {
	const level = 2
	mk := func() *Sketch { return MustNew(Config{Tables: 5, Range: 512, Seed: 29}) }
	a, b := mk(), mk()
	foldStream(a, 51, 9000, 1800)
	foldStream(b, 52, 9000, 1800)

	mergeThenFold := a.Clone()
	if err := mergeThenFold.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := mergeThenFold.Fold(level); err != nil {
		t.Fatal(err)
	}

	fa, fb := a.Clone(), b.Clone()
	if err := fa.Fold(level); err != nil {
		t.Fatal(err)
	}
	if err := fb.Fold(level); err != nil {
		t.Fatal(err)
	}
	if err := fa.Merge(fb); err != nil {
		t.Fatal(err)
	}
	for i := range fa.w {
		if fa.w[i] != mergeThenFold.w[i] {
			t.Fatalf("cell %d: fold∘merge %v, merge∘fold %v", i, mergeThenFold.w[i], fa.w[i])
		}
	}
}

// TestFoldMergeLevelMismatch pins the guard: merging sketches at
// different fold levels must fail loudly, not corrupt tables.
func TestFoldMergeLevelMismatch(t *testing.T) {
	a := MustNew(Config{Tables: 3, Range: 64, Seed: 3})
	b := MustNew(Config{Tables: 3, Range: 64, Seed: 3})
	if err := a.Fold(1); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across fold levels must fail")
	}
}

// TestFoldErrors covers the argument guards and the MaxFoldLevels bound.
func TestFoldErrors(t *testing.T) {
	s := MustNew(Config{Tables: 3, Range: 96, Seed: 3}) // 96 = 32·3: 5 halvings
	if got := s.MaxFoldLevels(); got != 5 {
		t.Fatalf("MaxFoldLevels(96) = %d, want 5", got)
	}
	if err := s.Fold(0); err == nil {
		t.Fatal("Fold(0) must fail")
	}
	if err := s.Fold(6); err == nil {
		t.Fatal("fold past MaxFoldLevels must fail")
	}
	if err := s.Fold(5); err != nil {
		t.Fatal(err)
	}
	if err := s.Fold(1); err == nil {
		t.Fatal("fold beyond the last level must fail")
	}
	s.Unfold()
	if s.FoldLevel() != 0 {
		t.Fatalf("FoldLevel = %d after Unfold", s.FoldLevel())
	}
}

// TestSerializeVersions pins the lowest-sufficient-version rule and all
// three round-trips: v1 for the classic unfolded scale-1 sketch (the
// on-disk bytes of existing deployments are untouched), v2 once a decay
// scale is active, v3 only for fold state.
func TestSerializeVersions(t *testing.T) {
	magicOf := func(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
	roundTrip := func(t *testing.T, s *Sketch) *Sketch {
		t.Helper()
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		r, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// v1: fresh sketch, no decay, no fold.
	s := MustNew(Config{Tables: 5, Range: 256, Seed: 44})
	foldStream(s, 61, 4000, 900)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if magicOf(buf.Bytes()) != serialMagic {
		t.Fatalf("unfolded scale-1 sketch wrote magic %#x, want v1", magicOf(buf.Bytes()))
	}
	r := roundTrip(t, s)
	for key := uint64(0); key < 900; key++ {
		if r.Estimate(key) != s.Estimate(key) {
			t.Fatalf("v1 round trip: key %d differs", key)
		}
	}

	// v2: active decay scale.
	s.Decay(0.5)
	buf.Reset()
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if magicOf(buf.Bytes()) != serialMagicV2 {
		t.Fatalf("decayed sketch wrote magic %#x, want v2", magicOf(buf.Bytes()))
	}
	r = roundTrip(t, s)
	if r.DecayScale() != s.DecayScale() {
		t.Fatalf("v2 round trip: scale %v, want %v", r.DecayScale(), s.DecayScale())
	}
	for key := uint64(0); key < 900; key++ {
		if r.Estimate(key) != s.Estimate(key) {
			t.Fatalf("v2 round trip: key %d differs", key)
		}
	}

	// v3: folded (decayed too — the fold header carries the scale).
	if err := s.Fold(2); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if magicOf(buf.Bytes()) != serialMagicV3 {
		t.Fatalf("folded sketch wrote magic %#x, want v3", magicOf(buf.Bytes()))
	}
	r = roundTrip(t, s)
	if r.FoldLevel() != 2 || r.DecayScale() != s.DecayScale() {
		t.Fatalf("v3 round trip: level %d scale %v, want 2 / %v", r.FoldLevel(), r.DecayScale(), s.DecayScale())
	}
	for key := uint64(0); key < 900; key++ {
		if r.Estimate(key) != s.Estimate(key) {
			t.Fatalf("v3 round trip: key %d differs", key)
		}
	}

	// v3 with a refold baseline: the restored sketch must refold to the
	// same table the original would.
	s.Unfold()
	r = roundTrip(t, s)
	if err := s.Fold(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Fold(2); err != nil {
		t.Fatal(err)
	}
	for i := range s.w {
		if s.w[i] != r.w[i] {
			t.Fatalf("baseline round trip: refolded cell %d differs: %v vs %v", i, s.w[i], r.w[i])
		}
	}
}

// TestWriteToFolded pins the pre-folded snapshot path: the emitted bytes
// equal fold-then-WriteTo (without mutating the source), and the blob is
// ~2^L smaller than the full form.
func TestWriteToFolded(t *testing.T) {
	const level = 2
	s := MustNew(Config{Tables: 5, Range: 1024, Seed: 77})
	foldStream(s, 71, 12_000, 2500)

	var full, folded, direct bytes.Buffer
	if _, err := s.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteToFolded(&folded, level); err != nil {
		t.Fatal(err)
	}
	if s.FoldLevel() != 0 {
		t.Fatal("WriteToFolded mutated the sketch")
	}
	c := s.Clone()
	if err := c.Fold(level); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(folded.Bytes(), direct.Bytes()) {
		t.Fatal("WriteToFolded bytes differ from fold-then-WriteTo")
	}
	if ratio := float64(full.Len()) / float64(folded.Len()); ratio < 3.9 {
		t.Fatalf("folded blob only %.2fx smaller at level %d (full %d B, folded %d B)", ratio, level, full.Len(), folded.Len())
	}

	// Clamping: a target past MaxFoldLevels writes the deepest level.
	var deep bytes.Buffer
	if _, err := s.WriteToFolded(&deep, 99); err != nil {
		t.Fatal(err)
	}
	r, err := ReadFrom(&deep)
	if err != nil {
		t.Fatal(err)
	}
	if r.FoldLevel() != s.MaxFoldLevels() {
		t.Fatalf("clamped fold level %d, want %d", r.FoldLevel(), s.MaxFoldLevels())
	}
}

// TestFoldAccuracyPerLevel quantifies the cost of folding: collision
// variance doubles per level, so the RMS error over tracked keys should
// grow roughly like 2^(L/2) and stay within a generous constant of that
// curve — folding buys 2^L memory for a bounded, predictable accuracy
// loss, it does not fail catastrophically.
func TestFoldAccuracyPerLevel(t *testing.T) {
	const R, k, keys = 2048, 5, 4000
	truth := make([]float64, keys)
	s := MustNew(Config{Tables: k, Range: R, Seed: 91})
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 60_000; i++ {
		key := rng.Intn(keys)
		v := float64(1 + rng.Intn(4))
		truth[key] += v
		s.Add(uint64(key), v)
	}
	rms := func(s *Sketch) float64 {
		sum := 0.0
		for key, want := range truth {
			d := s.Estimate(uint64(key)) - want
			sum += d * d
		}
		return math.Sqrt(sum / keys)
	}
	base := rms(s)
	prev := base
	for level := 1; level <= 4; level++ {
		if err := s.Fold(1); err != nil {
			t.Fatal(err)
		}
		e := rms(s)
		t.Logf("level %d: rms error %.3f (level 0: %.3f, bound %.3f)", level, e, base, 8*math.Ldexp(base+1, level/2+1))
		if e < prev {
			// Error must not shrink by folding (up to median noise).
			if prev-e > base {
				t.Fatalf("level %d: rms %.3f markedly below level %d's %.3f", level, e, level-1, prev)
			}
		}
		if e > 8*math.Ldexp(base+1, level/2+1) {
			t.Fatalf("level %d: rms error %.3f exceeds the 2^(L/2) growth envelope (level 0: %.3f)", level, e, base)
		}
		prev = e
	}
}
