// Package countsketch implements the Count Sketch of Charikar, Chen and
// Farach-Colton (2002): K hash tables of R buckets with ±1 sign hashes,
// supporting point updates and median-of-K point estimates. It is the
// storage substrate under every engine in this repository (vanilla CS,
// ASCS, Augmented Sketch, Cold Filter).
package countsketch

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/hashing"
)

// MaxTables bounds K so Estimate can use a fixed stack buffer.
const MaxTables = hashing.MaxTables

// Config describes the shape and hashing of a sketch.
type Config struct {
	// Tables is K, the number of independent hash tables (rows).
	Tables int
	// Range is R, the number of buckets per table.
	Range int
	// Seed derives all hash functions deterministically.
	Seed uint64
	// Hash selects the hash family (default hashing.KindMix).
	Hash hashing.Kind
}

func (c Config) validate() error {
	if c.Tables <= 0 || c.Tables > MaxTables {
		return fmt.Errorf("countsketch: Tables must be in [1,%d], got %d", MaxTables, c.Tables)
	}
	if c.Range <= 0 {
		return fmt.Errorf("countsketch: Range must be positive, got %d", c.Range)
	}
	return nil
}

// Sketch is a Count Sketch. Add and Estimate are safe for concurrent
// Estimate-only use; mutation requires external synchronization (or use
// Split/Merge for parallel ingestion — the sketch is linear).
type Sketch struct {
	cfg Config
	h   hashing.PairHasher
	w   []float64 // Tables*Range, row-major
}

// New creates an empty sketch.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h, err := hashing.New(cfg.Hash, cfg.Tables, cfg.Range, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Sketch{cfg: cfg, h: h, w: make([]float64, cfg.Tables*cfg.Range)}, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the sketch configuration.
func (s *Sketch) Config() Config { return s.cfg }

// K returns the number of tables.
func (s *Sketch) K() int { return s.cfg.Tables }

// R returns the buckets per table.
func (s *Sketch) R() int { return s.cfg.Range }

// Bytes returns the approximate heap footprint of the table array (the
// dominant cost; hash seeds are negligible except for tabulation).
func (s *Sketch) Bytes() int { return 8 * len(s.w) }

// Add folds v into the buckets of key. It panics on non-finite v: a NaN
// would silently poison every colliding estimate, so it is treated as a
// programmer error at the boundary.
func (s *Sketch) Add(key uint64, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("countsketch: non-finite update %v for key %d", v, key))
	}
	for e := 0; e < s.cfg.Tables; e++ {
		s.w[e*s.cfg.Range+s.h.Bucket(e, key)] += s.h.Sign(e, key) * v
	}
}

// Estimate returns the median-of-K estimate for key.
func (s *Sketch) Estimate(key uint64) float64 {
	var buf [MaxTables]float64
	k := s.cfg.Tables
	for e := 0; e < k; e++ {
		buf[e] = s.w[e*s.cfg.Range+s.h.Bucket(e, key)] * s.h.Sign(e, key)
	}
	return medianInPlace(buf[:k])
}

// Slot is one precomputed (table cell, sign) location of a key: Off is
// the row-major index e*R + Bucket(e, key) into the table array and Sign
// is Sign(e, key). A filled slot array is the one-hash currency of the
// fused ingest path: Locate hashes the key once, then any number of
// EstimateSlots/AddSlots calls reuse the locations without rehashing.
type Slot = hashing.Slot

// Locate fills slots[0:K] with the key's (cell, sign) locations, hashing
// the key exactly once per table (and dispatching to the hash family
// once per key). The resulting slots are valid for the sketch they came
// from as long as its configuration is unchanged (Reset/Merge/Scale keep
// them valid; they index cells, not contents).
func (s *Sketch) Locate(key uint64, slots *[MaxTables]Slot) {
	s.h.FillSlots(key, slots)
}

// EstimateSlots returns the median-of-K estimate read through
// precomputed slots. It is bit-identical to Estimate of the located key:
// the same cells are read, multiplied by the same signs, and reduced by
// the same median.
func (s *Sketch) EstimateSlots(slots *[MaxTables]Slot) float64 {
	var buf [MaxTables]float64
	k := s.cfg.Tables
	for e := 0; e < k; e++ {
		buf[e] = s.w[slots[e].Off] * slots[e].Sign
	}
	return medianInPlace(buf[:k])
}

// AddSlots folds v into the cells named by precomputed slots. It is
// bit-identical to Add of the located key (same cells, same sign
// multiplies, same non-finite guard).
func (s *Sketch) AddSlots(slots *[MaxTables]Slot, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("countsketch: non-finite update %v", v))
	}
	k := s.cfg.Tables
	for e := 0; e < k; e++ {
		s.w[slots[e].Off] += slots[e].Sign * v
	}
}

// AddSlotsWithEstimate is AddSlots(slots, v) followed by
// EstimateSlots(slots), given the pre-add estimate preEst — the
// admitted-offer step of the fused ingest path, where the gate already
// computed preEst and the caller also wants the post-add estimate.
//
// For odd K it returns preEst + v without re-reading the table, and the
// result is bit-identical to a fresh EstimateSlots: adding v moves every
// table estimate from w·s to round(w + s·v)·s = round(w·s + v) (s = ±1
// is exact and IEEE rounding is sign-symmetric), a monotone shift that
// preserves the order of the K estimates, so the median element is the
// same table's, now valued round(preEst + v) — exactly preEst + v
// computed in one float64 addition. For even K the median averages the
// two middle order statistics, the shift does not commute with that
// average's rounding, and the estimate is recomputed from the table.
func (s *Sketch) AddSlotsWithEstimate(slots *[MaxTables]Slot, v, preEst float64) float64 {
	s.AddSlots(slots, v)
	if s.cfg.Tables%2 == 1 {
		return preEst + v
	}
	return s.EstimateSlots(slots)
}

// EstimateMin returns the minimum |table estimate| with its sign, a more
// conservative alternative retrieval occasionally useful for diagnostics.
func (s *Sketch) EstimateMin(key uint64) float64 {
	best := math.Inf(1)
	val := 0.0
	for e := 0; e < s.cfg.Tables; e++ {
		v := s.w[e*s.cfg.Range+s.h.Bucket(e, key)] * s.h.Sign(e, key)
		if a := math.Abs(v); a < best {
			best = a
			val = v
		}
	}
	return val
}

// BucketOf returns the bucket index of key in table e (diagnostics: the
// theorem-validation experiments use it to detect signal-signal
// collisions, the I(i) = 1 event excluded by Theorem 2).
func (s *Sketch) BucketOf(e int, key uint64) int { return s.h.Bucket(e, key) }

// Reset zeroes the sketch contents, keeping the hash functions.
func (s *Sketch) Reset() {
	for i := range s.w {
		s.w[i] = 0
	}
}

// Clone returns a deep copy sharing no mutable state (hash functions are
// immutable and shared).
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{cfg: s.cfg, h: s.h, w: make([]float64, len(s.w))}
	copy(c.w, s.w)
	return c
}

// Split returns n empty sketches with identical hash functions, suitable
// for parallel ingestion followed by Merge (the sketch is linear: the sum
// of the tables of shards equals the table of serial ingestion).
func (s *Sketch) Split(n int) []*Sketch {
	out := make([]*Sketch, n)
	for i := range out {
		out[i] = &Sketch{cfg: s.cfg, h: s.h, w: make([]float64, len(s.w))}
	}
	return out
}

// Merge adds the contents of o into s. The two sketches must share the
// same configuration (hence the same hash functions).
func (s *Sketch) Merge(o *Sketch) error {
	if s.cfg != o.cfg {
		return fmt.Errorf("countsketch: cannot merge mismatched configs %+v vs %+v", s.cfg, o.cfg)
	}
	for i, v := range o.w {
		s.w[i] += v
	}
	return nil
}

// Scale multiplies every cell by f (the sketch is linear, so this equals
// scaling every inserted value).
func (s *Sketch) Scale(f float64) {
	for i := range s.w {
		s.w[i] *= f
	}
}

// L2Norm returns the Euclidean norm of the table contents, a cheap proxy
// for the energy stored in the sketch (used by SNR diagnostics).
func (s *Sketch) L2Norm() float64 {
	sum := 0.0
	for _, v := range s.w {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// medianInPlace sorts the small slice xs and returns its median.
func medianInPlace(xs []float64) float64 {
	n := len(xs)
	for i := 1; i < n; i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

const serialMagic = uint32(0xA5C50001)

// WriteTo serializes the sketch (config + table contents) in a stable
// little-endian binary format.
func (s *Sketch) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 4+8*4)
	binary.LittleEndian.PutUint32(hdr[0:], serialMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(s.cfg.Tables))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(s.cfg.Range))
	binary.LittleEndian.PutUint64(hdr[20:], s.cfg.Seed)
	binary.LittleEndian.PutUint64(hdr[28:], uint64(s.cfg.Hash))
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 8*len(s.w))
	for i, v := range s.w {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	n, err = w.Write(buf)
	total += int64(n)
	return total, err
}

// ReadFrom deserializes a sketch written by WriteTo.
func ReadFrom(r io.Reader) (*Sketch, error) {
	hdr := make([]byte, 4+8*4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("countsketch: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != serialMagic {
		return nil, fmt.Errorf("countsketch: bad magic")
	}
	cfg := Config{
		Tables: int(binary.LittleEndian.Uint64(hdr[4:])),
		Range:  int(binary.LittleEndian.Uint64(hdr[12:])),
		Seed:   binary.LittleEndian.Uint64(hdr[20:]),
		Hash:   hashing.Kind(binary.LittleEndian.Uint64(hdr[28:])),
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8*len(s.w))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("countsketch: reading table: %w", err)
	}
	for i := range s.w {
		s.w[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return s, nil
}
