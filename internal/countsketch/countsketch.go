// Package countsketch implements the Count Sketch of Charikar, Chen and
// Farach-Colton (2002): K hash tables of R buckets with ±1 sign hashes,
// supporting point updates and median-of-K point estimates. It is the
// storage substrate under every engine in this repository (vanilla CS,
// ASCS, Augmented Sketch, Cold Filter).
package countsketch

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"repro/internal/hashing"
	"repro/internal/sketchapi"
)

// MaxTables bounds K so Estimate can use a fixed stack buffer.
const MaxTables = hashing.MaxTables

// Config describes the shape and hashing of a sketch.
type Config struct {
	// Tables is K, the number of independent hash tables (rows).
	Tables int
	// Range is R, the number of buckets per table.
	Range int
	// Seed derives all hash functions deterministically.
	Seed uint64
	// Hash selects the hash family (default hashing.KindMix).
	Hash hashing.Kind
}

func (c Config) validate() error {
	if c.Tables <= 0 || c.Tables > MaxTables {
		return fmt.Errorf("countsketch: Tables must be in [1,%d], got %d", MaxTables, c.Tables)
	}
	if c.Range <= 0 {
		return fmt.Errorf("countsketch: Range must be positive, got %d", c.Range)
	}
	return nil
}

// Sketch is a Count Sketch. Add and Estimate are safe for concurrent
// Estimate-only use; mutation requires external synchronization (or use
// Split/Merge for parallel ingestion — the sketch is linear).
//
// # Lazy decay
//
// Exponential decay (multiplying every logical cell by λ at a step
// boundary) is implemented lazily: the logical value of cell i is
// scale·w[i], so Decay(λ) is one multiplication of the scale
// accumulator instead of an O(K·R) sweep, and there are no per-bucket
// timestamps. Inserts are divided by the scale on the way in and
// estimates multiplied by it on the way out; when the accumulator
// underflows toward the float64 floor it is folded back into the cells
// (Renormalize), which happens every ~10^5 half-lives — amortized
// noise. With scale == 1 (every non-decayed sketch, and decayed
// sketches at λ = 1) the extra multiplications are by exactly 1.0, so
// tables and estimates stay bit-identical to the pre-decay code.
type Sketch struct {
	cfg Config
	h   hashing.PairHasher
	w   []float64 // Tables*(Range>>level), row-major

	// scale is the lazy decay accumulator: logical cell = scale * w[i].
	// invScale caches 1/scale for the insert path.
	scale    float64
	invScale float64

	// renorms counts completed Renormalize sweeps (telemetry; owned by
	// the single writer, not serialized — it restarts at 0 on restore).
	renorms uint64

	// Fold state (see Fold). level is the current fold level: the live
	// table holds Range>>level buckets per row and h hashes into that
	// width. h0 is the full-resolution hasher, kept so Unfold never has
	// to rebuild (tabulation rebuilds are not free). base/baseLevel are
	// the refold compensation baseline recorded by Unfold: base is the
	// pre-unfold table (raw units, level baseLevel) whose replicated
	// image is embedded in w, so the next Fold can subtract the
	// replication overcount instead of inflating idle mass. Invariant:
	// base != nil implies level == 0 (Unfold is the only producer and
	// Fold the only consumer).
	h0        hashing.PairHasher
	level     int
	rng       int // physical buckets per row: cfg.Range >> level
	base      []float64
	baseLevel int
}

// renormFloor is the scale at which lazy decay folds into the cells:
// small enough that renormalization is rare even under aggressive λ,
// huge headroom above the ~1e-308 float64 underflow. Shared with the
// other lazy-decay accumulators (tracker, ASketch filter).
const renormFloor = sketchapi.RenormFloor

// New creates an empty sketch.
func New(cfg Config) (*Sketch, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h, err := hashing.New(cfg.Hash, cfg.Tables, cfg.Range, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Sketch{cfg: cfg, h: h, h0: h, rng: cfg.Range, w: make([]float64, cfg.Tables*cfg.Range), scale: 1, invScale: 1}, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the sketch configuration.
func (s *Sketch) Config() Config { return s.cfg }

// K returns the number of tables.
func (s *Sketch) K() int { return s.cfg.Tables }

// R returns the buckets per table.
func (s *Sketch) R() int { return s.cfg.Range }

// Bytes returns the approximate heap footprint of the table array plus
// any refold baseline (the dominant cost; hash seeds are negligible
// except for tabulation). A folded sketch reports its folded footprint.
func (s *Sketch) Bytes() int { return 8 * (len(s.w) + len(s.base)) }

// Add folds v into the buckets of key. It panics on non-finite v: a NaN
// would silently poison every colliding estimate, so it is treated as a
// programmer error at the boundary.
func (s *Sketch) Add(key uint64, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("countsketch: non-finite update %v for key %d", v, key))
	}
	v *= s.invScale
	for e := 0; e < s.cfg.Tables; e++ {
		s.w[e*s.rng+s.h.Bucket(e, key)] += s.h.Sign(e, key) * v
	}
}

// Estimate returns the median-of-K estimate for key.
func (s *Sketch) Estimate(key uint64) float64 {
	var buf [MaxTables]float64
	k := s.cfg.Tables
	for e := 0; e < k; e++ {
		buf[e] = s.w[e*s.rng+s.h.Bucket(e, key)] * s.h.Sign(e, key)
	}
	return medianInPlace(buf[:k]) * s.scale
}

// Slot is one precomputed (table cell, sign) location of a key: Off is
// the row-major index e*R + Bucket(e, key) into the table array and Sign
// is Sign(e, key). A filled slot array is the one-hash currency of the
// fused ingest path: Locate hashes the key once, then any number of
// EstimateSlots/AddSlots calls reuse the locations without rehashing.
type Slot = hashing.Slot

// Locate fills slots[0:K] with the key's (cell, sign) locations, hashing
// the key exactly once per table (and dispatching to the hash family
// once per key). The resulting slots are valid for the sketch they came
// from as long as its configuration is unchanged (Reset/Merge/Scale keep
// them valid; they index cells, not contents).
func (s *Sketch) Locate(key uint64, slots *[MaxTables]Slot) {
	s.h.FillSlots(key, slots)
}

// EstimateSlots returns the median-of-K estimate read through
// precomputed slots. It is bit-identical to Estimate of the located key:
// the same cells are read, multiplied by the same signs, and reduced by
// the same median.
func (s *Sketch) EstimateSlots(slots *[MaxTables]Slot) float64 {
	var buf [MaxTables]float64
	k := s.cfg.Tables
	for e := 0; e < k; e++ {
		buf[e] = s.w[slots[e].Off] * slots[e].Sign
	}
	return medianInPlace(buf[:k]) * s.scale
}

// EstimateSlotsWithRaw is EstimateSlots returning additionally the
// pre-scale raw median (logical estimate = raw · DecayScale()). The
// fused decayed offer path gates on the scaled estimate but shifts the
// raw median on insert (AddSlotsWithEstimateRaw), which keeps the
// odd-K post-add estimate exact — no table re-read — even while a
// decay scale is active.
func (s *Sketch) EstimateSlotsWithRaw(slots *[MaxTables]Slot) (est, raw float64) {
	var buf [MaxTables]float64
	k := s.cfg.Tables
	for e := 0; e < k; e++ {
		buf[e] = s.w[slots[e].Off] * slots[e].Sign
	}
	raw = medianInPlace(buf[:k])
	return raw * s.scale, raw
}

// AddSlots folds v into the cells named by precomputed slots. It is
// bit-identical to Add of the located key (same cells, same sign
// multiplies, same non-finite guard).
func (s *Sketch) AddSlots(slots *[MaxTables]Slot, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("countsketch: non-finite update %v", v))
	}
	v *= s.invScale
	k := s.cfg.Tables
	for e := 0; e < k; e++ {
		s.w[slots[e].Off] += slots[e].Sign * v
	}
}

// AddSlotsWithEstimate is AddSlots(slots, v) followed by
// EstimateSlots(slots), given the pre-add estimate preEst — the
// admitted-offer step of the fused ingest path, where the gate already
// computed preEst and the caller also wants the post-add estimate.
//
// For odd K it returns preEst + v without re-reading the table, and the
// result is bit-identical to a fresh EstimateSlots: adding v moves every
// table estimate from w·s to round(w + s·v)·s = round(w·s + v) (s = ±1
// is exact and IEEE rounding is sign-symmetric), a monotone shift that
// preserves the order of the K estimates, so the median element is the
// same table's, now valued round(preEst + v) — exactly preEst + v
// computed in one float64 addition. For even K the median averages the
// two middle order statistics, the shift does not commute with that
// average's rounding, and the estimate is recomputed from the table.
// Under an active decay scale (≠ 1) the shift argument no longer holds
// exactly — the insert is divided by the scale and the read multiplied
// back, two extra roundings — so the estimate is recomputed then too.
func (s *Sketch) AddSlotsWithEstimate(slots *[MaxTables]Slot, v, preEst float64) float64 {
	s.AddSlots(slots, v)
	if s.cfg.Tables%2 == 1 && s.scale == 1 {
		return preEst + v
	}
	return s.EstimateSlots(slots)
}

// AddSlotsWithEstimateRaw is the decay-scale-aware variant of
// AddSlotsWithEstimate: the caller supplies the pre-add *raw* median
// (from EstimateSlotsWithRaw) instead of the scaled estimate. The
// insert shifts every raw table estimate by round(v·invScale) — the
// exact value AddSlots folds in — so for odd K the post-add estimate
// is (raw + v·invScale)·scale, bit-identical to a fresh EstimateSlots
// by the same monotone-shift argument, at any scale. Even K recomputes.
func (s *Sketch) AddSlotsWithEstimateRaw(slots *[MaxTables]Slot, v, preRaw float64) float64 {
	s.AddSlots(slots, v)
	if s.cfg.Tables%2 == 1 {
		return (preRaw + v*s.invScale) * s.scale
	}
	return s.EstimateSlots(slots)
}

// EstimateMin returns the minimum |table estimate| with its sign, a more
// conservative alternative retrieval occasionally useful for diagnostics.
func (s *Sketch) EstimateMin(key uint64) float64 {
	best := math.Inf(1)
	val := 0.0
	for e := 0; e < s.cfg.Tables; e++ {
		v := s.w[e*s.rng+s.h.Bucket(e, key)] * s.h.Sign(e, key)
		if a := math.Abs(v); a < best {
			best = a
			val = v
		}
	}
	return val * s.scale
}

// Decay multiplies every logical cell by f ∈ (0,1] in O(1): only the
// scale accumulator moves (see the type comment). Renormalization folds
// the accumulator into the cells when it nears the float64 floor.
// Decay(1) is an exact no-op, which is what keeps λ=1 decay mode
// bit-identical to the fixed-horizon path.
func (s *Sketch) Decay(f float64) {
	if !(f > 0) || f > 1 || math.IsNaN(f) {
		panic(fmt.Sprintf("countsketch: decay factor must be in (0,1], got %v", f))
	}
	if f == 1 {
		return
	}
	s.scale *= f
	if s.scale < renormFloor {
		s.Renormalize()
		return
	}
	s.invScale = 1 / s.scale
}

// Renormalize folds the lazy decay scale into the cell contents so the
// stored values equal the logical values again (scale returns to 1).
// O(K·R); called automatically when the accumulator nears underflow,
// and by merge paths that need shards on a common scale.
func (s *Sketch) Renormalize() {
	if s.scale == 1 {
		return
	}
	for i, v := range s.w {
		s.w[i] = v * s.scale
	}
	for i, v := range s.base {
		s.base[i] = v * s.scale
	}
	s.scale, s.invScale = 1, 1
	s.renorms++
}

// Renorms returns the number of completed renormalization sweeps since
// construction (or restore) — decay maintenance telemetry.
func (s *Sketch) Renorms() uint64 { return s.renorms }

// DecayScale returns the current lazy decay accumulator (1 when no
// decay has been applied since the last renormalization).
func (s *Sketch) DecayScale() float64 { return s.scale }

// BucketOf returns the bucket index of key in table e (diagnostics: the
// theorem-validation experiments use it to detect signal-signal
// collisions, the I(i) = 1 event excluded by Theorem 2).
func (s *Sketch) BucketOf(e int, key uint64) int { return s.h.Bucket(e, key) }

// Reset zeroes the sketch contents (and any decay scale and refold
// baseline), keeping the hash functions and the current fold level.
func (s *Sketch) Reset() {
	for i := range s.w {
		s.w[i] = 0
	}
	s.scale, s.invScale = 1, 1
	s.base, s.baseLevel = nil, 0
}

// Clone returns a deep copy sharing no mutable state (hash functions are
// immutable and shared).
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{cfg: s.cfg, h: s.h, h0: s.h0, rng: s.rng, level: s.level, baseLevel: s.baseLevel, w: make([]float64, len(s.w)), scale: s.scale, invScale: s.invScale, renorms: s.renorms}
	copy(c.w, s.w)
	if s.base != nil {
		c.base = append([]float64(nil), s.base...)
	}
	return c
}

// Split returns n empty sketches with identical hash functions (and the
// same fold level), suitable for parallel ingestion followed by Merge
// (the sketch is linear: the sum of the tables of shards equals the
// table of serial ingestion).
func (s *Sketch) Split(n int) []*Sketch {
	out := make([]*Sketch, n)
	for i := range out {
		out[i] = &Sketch{cfg: s.cfg, h: s.h, h0: s.h0, rng: s.rng, level: s.level, w: make([]float64, len(s.w)), scale: s.scale, invScale: s.invScale}
	}
	return out
}

// Merge adds the contents of o into s. The two sketches must share the
// same configuration (hence the same hash functions), the same fold
// level, and the same decay scale — callers merging decayed sketches
// Renormalize both first, and callers merging mixed-resolution sketches
// Fold or Unfold to a common level first. Refold baselines are linear
// too and merge alongside the tables (they must sit at the same level
// when both sides carry one).
func (s *Sketch) Merge(o *Sketch) error {
	if s.cfg != o.cfg {
		return fmt.Errorf("countsketch: cannot merge mismatched configs %+v vs %+v", s.cfg, o.cfg)
	}
	if s.level != o.level {
		return fmt.Errorf("countsketch: cannot merge mismatched fold levels %d vs %d (Fold/Unfold to a common level first)", s.level, o.level)
	}
	if s.scale != o.scale {
		return fmt.Errorf("countsketch: cannot merge mismatched decay scales %v vs %v (Renormalize first)", s.scale, o.scale)
	}
	switch {
	case s.base != nil && o.base != nil:
		if s.baseLevel != o.baseLevel {
			return fmt.Errorf("countsketch: cannot merge mismatched refold baselines at levels %d vs %d (DropFoldBase first)", s.baseLevel, o.baseLevel)
		}
		for i, v := range o.base {
			s.base[i] += v
		}
	case o.base != nil:
		s.base = append([]float64(nil), o.base...)
		s.baseLevel = o.baseLevel
	}
	for i, v := range o.w {
		s.w[i] += v
	}
	return nil
}

// Scale multiplies every cell by f (the sketch is linear, so this equals
// scaling every inserted value). Any refold baseline scales alongside so
// compensation stays exact.
func (s *Sketch) Scale(f float64) {
	for i := range s.w {
		s.w[i] *= f
	}
	for i := range s.base {
		s.base[i] *= f
	}
}

// FoldLevel returns the current fold level: 0 is full resolution, each
// level halves the physical buckets per table.
func (s *Sketch) FoldLevel() int { return s.level }

// MaxFoldLevels returns the deepest fold level the configured range
// supports (the number of times Range divides exactly by two). It is an
// absolute level, not a remaining count: a sketch already at FoldLevel L
// can fold MaxFoldLevels()−L further.
func (s *Sketch) MaxFoldLevels() int {
	return bits.TrailingZeros64(uint64(s.cfg.Range))
}

// Fold compresses the sketch by `levels` additional halvings of the
// table width. The fold index map is congruent with the range mapping:
// every hash family buckets through fastRange(h, R) = ⌊h·R/2⁶⁴⌋, and for
// R divisible by 2ᴸ, fastRange(h, R>>L) == fastRange(h, R) >> L exactly,
// so the folded cell of a key is the sum of the 2ᴸ consecutive fine
// cells whose indices share its high bits — a key's folded lookup lands
// exactly on the folded image of its cells. Sign hashes do not depend on
// the range, so the fold is the sign-composed linear map of the
// compressed-sketch construction and estimates stay unbiased; only the
// collision noise grows (variance doubles per level). The decay scale is
// untouched (the fold operates on raw cells), which preserves the
// raw-scale identities of the fused offer paths, and the odd-K
// median-shift argument holds unchanged at the folded width.
//
// If a refold baseline from a previous Unfold is present, Fold subtracts
// the replication overcount so the result equals the true folded mass
// (idle shards that oscillate fold↔unfold do not inflate). Folding below
// the baseline's level keeps replication semantics — the coarser history
// stays replicated per sub-group, exactly as Unfold left it — and the
// baseline is retained so a later, deeper fold still compensates
// exactly; once the fold reaches the baseline's level the compensation
// is complete and the baseline is dropped.
func (s *Sketch) Fold(levels int) error {
	if levels <= 0 {
		return fmt.Errorf("countsketch: fold levels must be positive, got %d", levels)
	}
	target := s.level + levels
	if target > s.MaxFoldLevels() {
		return fmt.Errorf("countsketch: cannot fold to level %d: Range %d supports at most %d levels", target, s.cfg.Range, s.MaxFoldLevels())
	}
	nw := s.foldedImage(target)
	h, err := hashing.New(s.cfg.Hash, s.cfg.Tables, s.cfg.Range>>target, s.cfg.Seed)
	if err != nil {
		return err
	}
	s.w, s.h, s.rng, s.level = nw, h, s.cfg.Range>>target, target
	if target >= s.baseLevel {
		s.base, s.baseLevel = nil, 0
	}
	return nil
}

// foldedImage computes the table contents at the given absolute fold
// level (> s.level) without mutating the sketch, applying refold
// baseline compensation. Raw units: the decay scale is unchanged.
func (s *Sketch) foldedImage(target int) []float64 {
	k, curR, newR := s.cfg.Tables, s.rng, s.cfg.Range>>target
	group := curR / newR
	nw := make([]float64, k*newR)
	for e := 0; e < k; e++ {
		row := s.w[e*curR : (e+1)*curR]
		nrow := nw[e*newR : (e+1)*newR]
		for j := range nrow {
			sum := 0.0
			for _, v := range row[j*group : (j+1)*group] {
				sum += v
			}
			nrow[j] = sum
		}
	}
	if s.base == nil {
		return nw
	}
	// w embeds the baseline replicated 2^(baseLevel−level) times (the
	// baseline always sits at a coarser level than the live table);
	// subtract the overcount so baseline mass is counted once per
	// folded group.
	b, bR := s.baseLevel, s.cfg.Range>>s.baseLevel
	if target >= b {
		// Each target cell spans whole baseline groups: every baseline
		// cell in its span was summed 2^(b−level) times, keep it once.
		over := math.Ldexp(1, b-s.level) - 1
		span := 1 << (target - b)
		for e := 0; e < k; e++ {
			brow := s.base[e*bR : (e+1)*bR]
			nrow := nw[e*newR : (e+1)*newR]
			for j := range nrow {
				bs := 0.0
				for _, v := range brow[j*span : (j+1)*span] {
					bs += v
				}
				nrow[j] -= over * bs
			}
		}
	} else {
		// Target is finer than the baseline: each target cell sums
		// 2^(target−level) replicas of the same baseline cell; keep one.
		over := math.Ldexp(1, target-s.level) - 1
		shift := b - target
		for e := 0; e < k; e++ {
			brow := s.base[e*bR : (e+1)*bR]
			nrow := nw[e*newR : (e+1)*newR]
			for j := range nrow {
				nrow[j] -= over * brow[j>>shift]
			}
		}
	}
	return nw
}

// Unfold re-expands a folded sketch to full resolution by value
// replication: every fine cell takes the value of its folded group, so
// every estimate (and the full median reduction) is bit-identical before
// and after — no accuracy is recovered (that information was folded
// away) but ingest resumes at full resolution immediately. The
// pre-unfold table is retained as the refold compensation baseline; see
// Fold. No-op at full resolution.
func (s *Sketch) Unfold() {
	if s.level == 0 {
		return
	}
	k, curR, fullR := s.cfg.Tables, s.rng, s.cfg.Range
	nw := make([]float64, k*fullR)
	for e := 0; e < k; e++ {
		row := s.w[e*curR : (e+1)*curR]
		nrow := nw[e*fullR : (e+1)*fullR]
		for x := range nrow {
			nrow[x] = row[x>>s.level]
		}
	}
	s.base, s.baseLevel = s.w, s.level
	s.w, s.h, s.rng, s.level = nw, s.h0, fullR, 0
}

// DropFoldBase forgets the refold compensation baseline: subsequent
// folds treat the current contents — including any replicated history —
// as ground truth. Merge views that never fold again (MergedSketch) use
// it to align mixed provenance clones.
func (s *Sketch) DropFoldBase() { s.base, s.baseLevel = nil, 0 }

// L2Norm returns the Euclidean norm of the table contents, a cheap proxy
// for the energy stored in the sketch (used by SNR diagnostics).
func (s *Sketch) L2Norm() float64 {
	sum := 0.0
	for _, v := range s.w {
		sum += v * v
	}
	return math.Sqrt(sum) * s.scale
}

// medianInPlace sorts the small slice xs and returns its median.
func medianInPlace(xs []float64) float64 {
	n := len(xs)
	for i := 1; i < n; i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Serialization magics: v1 is the original config+table layout, v2
// appends the lazy decay scale, v3 carries the fold state (scale, fold
// level, refold baseline). WriteTo emits the lowest sufficient version —
// v1 whenever the scale is exactly 1 and the sketch is unfolded (every
// fixed-horizon sketch, and λ=1 decay mode), so the on-disk form of the
// classic path is byte-identical to before; only actively decayed or
// folded sketches pay a format bump. ReadFrom accepts all three.
const (
	serialMagic   = uint32(0xA5C50001)
	serialMagicV2 = uint32(0xA5C50002)
	serialMagicV3 = uint32(0xA5C50003)
)

// WriteTo serializes the sketch (config + table contents, plus the
// decay scale when one is active and the fold state when folded) in a
// stable little-endian binary format.
func (s *Sketch) WriteTo(w io.Writer) (int64, error) {
	if s.level != 0 || s.base != nil {
		return s.writeV3(w, s.level, s.w, s.baseLevel, s.base)
	}
	hdr := make([]byte, 4+8*4, 4+8*5)
	binary.LittleEndian.PutUint32(hdr[0:], serialMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(s.cfg.Tables))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(s.cfg.Range))
	binary.LittleEndian.PutUint64(hdr[20:], s.cfg.Seed)
	binary.LittleEndian.PutUint64(hdr[28:], uint64(s.cfg.Hash))
	if s.scale != 1 {
		binary.LittleEndian.PutUint32(hdr[0:], serialMagicV2)
		hdr = hdr[:4+8*5]
		binary.LittleEndian.PutUint64(hdr[36:], math.Float64bits(s.scale))
	}
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 8*len(s.w))
	for i, v := range s.w {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	n, err = w.Write(buf)
	total += int64(n)
	return total, err
}

// WriteToFolded serializes the sketch as if folded to the given absolute
// level, without mutating it: the folded image (baseline-compensated) is
// computed into a buffer of the folded size, so a full-resolution table
// is never copied. A sketch already at or beyond the target level — or a
// target beyond MaxFoldLevels — is written as-is; level 0 with no
// baseline falls through to WriteTo's v1/v2 form.
func (s *Sketch) WriteToFolded(w io.Writer, level int) (int64, error) {
	if level > s.MaxFoldLevels() {
		level = s.MaxFoldLevels()
	}
	if level <= s.level {
		return s.WriteTo(w)
	}
	if s.base != nil && level < s.baseLevel {
		// The fold stops short of the baseline: the image still embeds
		// replicated history, so the baseline must travel for deeper
		// folds after restore to compensate exactly.
		return s.writeV3(w, level, s.foldedImage(level), s.baseLevel, s.base)
	}
	return s.writeV3(w, level, s.foldedImage(level), 0, nil)
}

// writeV3 emits the v3 format: v1 header fields, then scale, fold
// level, baseline level, the (possibly folded) cells, and the baseline
// cells when present.
func (s *Sketch) writeV3(w io.Writer, level int, cells []float64, baseLevel int, base []float64) (int64, error) {
	hdr := make([]byte, 4+8*7)
	binary.LittleEndian.PutUint32(hdr[0:], serialMagicV3)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(s.cfg.Tables))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(s.cfg.Range))
	binary.LittleEndian.PutUint64(hdr[20:], s.cfg.Seed)
	binary.LittleEndian.PutUint64(hdr[28:], uint64(s.cfg.Hash))
	binary.LittleEndian.PutUint64(hdr[36:], math.Float64bits(s.scale))
	binary.LittleEndian.PutUint64(hdr[44:], uint64(level))
	binary.LittleEndian.PutUint64(hdr[52:], uint64(baseLevel))
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 8*(len(cells)+len(base)))
	for i, v := range cells {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	for i, v := range base {
		binary.LittleEndian.PutUint64(buf[8*(len(cells)+i):], math.Float64bits(v))
	}
	n, err = w.Write(buf)
	total += int64(n)
	return total, err
}

// ReadFrom deserializes a sketch written by WriteTo or WriteToFolded
// (any format version).
func ReadFrom(r io.Reader) (*Sketch, error) {
	hdr := make([]byte, 4+8*4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("countsketch: reading header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic != serialMagic && magic != serialMagicV2 && magic != serialMagicV3 {
		return nil, fmt.Errorf("countsketch: bad magic")
	}
	cfg := Config{
		Tables: int(binary.LittleEndian.Uint64(hdr[4:])),
		Range:  int(binary.LittleEndian.Uint64(hdr[12:])),
		Seed:   binary.LittleEndian.Uint64(hdr[20:]),
		Hash:   hashing.Kind(binary.LittleEndian.Uint64(hdr[28:])),
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	switch magic {
	case serialMagicV2:
		var sc [8]byte
		if _, err := io.ReadFull(r, sc[:]); err != nil {
			return nil, fmt.Errorf("countsketch: reading decay scale: %w", err)
		}
		scale := math.Float64frombits(binary.LittleEndian.Uint64(sc[:]))
		if !(scale > 0) || math.IsInf(scale, 0) {
			return nil, fmt.Errorf("countsketch: corrupt decay scale %v", scale)
		}
		s.scale, s.invScale = scale, 1/scale
	case serialMagicV3:
		var ext [24]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return nil, fmt.Errorf("countsketch: reading fold header: %w", err)
		}
		scale := math.Float64frombits(binary.LittleEndian.Uint64(ext[0:]))
		if !(scale > 0) || math.IsInf(scale, 0) {
			return nil, fmt.Errorf("countsketch: corrupt decay scale %v", scale)
		}
		level := int(binary.LittleEndian.Uint64(ext[8:]))
		baseLevel := int(binary.LittleEndian.Uint64(ext[16:]))
		if level < 0 || level > s.MaxFoldLevels() {
			return nil, fmt.Errorf("countsketch: corrupt fold level %d for Range %d", level, cfg.Range)
		}
		if baseLevel != 0 && (baseLevel <= level || baseLevel > s.MaxFoldLevels()) {
			return nil, fmt.Errorf("countsketch: corrupt refold baseline level %d (fold level %d, Range %d)", baseLevel, level, cfg.Range)
		}
		s.scale, s.invScale = scale, 1/scale
		if level > 0 {
			h, err := hashing.New(cfg.Hash, cfg.Tables, cfg.Range>>level, cfg.Seed)
			if err != nil {
				return nil, err
			}
			s.h, s.rng, s.level = h, cfg.Range>>level, level
			s.w = make([]float64, cfg.Tables*s.rng)
		}
		if baseLevel > 0 {
			s.baseLevel = baseLevel
			s.base = make([]float64, cfg.Tables*(cfg.Range>>baseLevel))
		}
	}
	buf := make([]byte, 8*(len(s.w)+len(s.base)))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("countsketch: reading table: %w", err)
	}
	for i := range s.w {
		s.w[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	for i := range s.base {
		s.base[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*(len(s.w)+i):]))
	}
	return s, nil
}
