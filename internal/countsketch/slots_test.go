package countsketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/hashing"
)

// TestSlotPathBitIdentical drives one sketch through Add/Estimate and a
// twin through Locate+AddSlots/EstimateSlots with the same seeded stream
// and requires bit-identical tables and estimates, for every hash family
// and for odd and even K (the differential safety net of the fused
// ingest refactor).
func TestSlotPathBitIdentical(t *testing.T) {
	kinds := []hashing.Kind{hashing.KindMix, hashing.KindPoly, hashing.KindPoly4, hashing.KindTabulation}
	for _, kind := range kinds {
		for _, k := range []int{1, 4, 5} {
			cfg := Config{Tables: k, Range: 512, Seed: 99, Hash: kind}
			a := MustNew(cfg)
			b := MustNew(cfg)
			rng := rand.New(rand.NewSource(7))
			var slots [MaxTables]Slot
			for i := 0; i < 5000; i++ {
				key := rng.Uint64() % 4096
				v := rng.NormFloat64() * 1e-3
				a.Add(key, v)
				b.Locate(key, &slots)
				b.AddSlots(&slots, v)
				ea := a.Estimate(key)
				eb := b.EstimateSlots(&slots)
				if math.Float64bits(ea) != math.Float64bits(eb) {
					t.Fatalf("%v K=%d: estimate mismatch at op %d: %v vs %v", kind, k, i, ea, eb)
				}
			}
			var bufA, bufB bytes.Buffer
			if _, err := a.WriteTo(&bufA); err != nil {
				t.Fatal(err)
			}
			if _, err := b.WriteTo(&bufB); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
				t.Fatalf("%v K=%d: tables diverged between Add and AddSlots paths", kind, k)
			}
		}
	}
}

// TestLocateMatchesPerTableHashes checks Locate against the per-table
// Bucket/Sign interface methods cell by cell.
func TestLocateMatchesPerTableHashes(t *testing.T) {
	for _, kind := range []hashing.Kind{hashing.KindMix, hashing.KindPoly, hashing.KindPoly4, hashing.KindTabulation} {
		cfg := Config{Tables: 6, Range: 321, Seed: 5, Hash: kind}
		s := MustNew(cfg)
		h := hashing.MustNew(kind, cfg.Tables, cfg.Range, cfg.Seed)
		rng := rand.New(rand.NewSource(3))
		var slots [MaxTables]Slot
		for i := 0; i < 2000; i++ {
			key := rng.Uint64()
			s.Locate(key, &slots)
			for e := 0; e < cfg.Tables; e++ {
				wantOff := e*cfg.Range + h.Bucket(e, key)
				wantSign := h.Sign(e, key)
				if slots[e].Off != wantOff || slots[e].Sign != wantSign {
					t.Fatalf("%v table %d key %d: slot {%d,%v}, want {%d,%v}",
						kind, e, key, slots[e].Off, slots[e].Sign, wantOff, wantSign)
				}
			}
		}
	}
}

// TestAddSlotsWithEstimate verifies the shift shortcut against a fresh
// post-add estimate, bit for bit, across odd K (shifted) and even K
// (recomputed) and many rounding-heavy values.
func TestAddSlotsWithEstimate(t *testing.T) {
	for _, k := range []int{3, 4, 5, 8} {
		cfg := Config{Tables: k, Range: 64, Seed: 12}
		s := MustNew(cfg)
		rng := rand.New(rand.NewSource(11))
		var slots [MaxTables]Slot
		for i := 0; i < 20000; i++ {
			key := rng.Uint64() % 512
			v := rng.NormFloat64() / 3
			s.Locate(key, &slots)
			pre := s.EstimateSlots(&slots)
			got := s.AddSlotsWithEstimate(&slots, v, pre)
			want := s.EstimateSlots(&slots)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("K=%d op %d: AddSlotsWithEstimate=%v, fresh estimate=%v", k, i, got, want)
			}
		}
	}
}

// TestAddSlotsNonFinitePanics keeps the Add contract on the slot path: a
// NaN would silently poison colliding estimates.
func TestAddSlotsNonFinitePanics(t *testing.T) {
	s := MustNew(Config{Tables: 3, Range: 16, Seed: 1})
	var slots [MaxTables]Slot
	s.Locate(42, &slots)
	defer func() {
		if recover() == nil {
			t.Fatal("AddSlots(NaN) did not panic")
		}
	}()
	s.AddSlots(&slots, math.NaN())
}
