package countsketch

import (
	"fmt"
	"math"
)

// WaveGroup is the default group size G of the wave-pipelined batch
// ingest path: OfferPairs implementations split a batch into groups of
// G pairs and run each group through four stages — group hashing
// (LocateBatch), a touch/prefetch pass over the K·G addressed cells
// (TouchSlots, which overlaps the DRAM misses the per-pair path pays
// one at a time), a group-wide gather of raw estimates
// (EstimateSlotsBatch), and the gate/scatter stage (AddSlotsBatch).
//
// G trades memory-level parallelism against scratch footprint: the
// touch pass issues K·G independent loads, so G must be large enough
// to saturate the core's outstanding-miss budget (~10–16 line-fill
// buffers on current x86/arm cores — reached near G·K ≈ 100), while
// the slot scratch (16 B per slot) plus the per-group estimate arrays
// stay a few KiB so the staging itself never leaves L1. G = 32 with
// the paper's K = 5 sits on that plateau; see DESIGN.md for the
// measured sweep.
const WaveGroup = 32

// MaxWaveGroup bounds tunable group sizes so scratch allocation stays
// sane. Groups larger than a few hundred pairs add no memory-level
// parallelism (the miss budget is long saturated) and only grow the
// scratch past cache. Engines clamp SetWaveGroup arguments to it.
const MaxWaveGroup = 4096

// ClampWaveGroup normalizes a SetWaveGroup argument: anything ≤ 1
// means "scalar" (returned as 1), anything above MaxWaveGroup is
// clamped to it. Shared by every engine's WaveTuner implementation.
func ClampWaveGroup(g int) int {
	if g <= 1 {
		return 1
	}
	if g > MaxWaveGroup {
		return MaxWaveGroup
	}
	return g
}

// WaveTune is the embeddable group-size state behind every engine's
// sketchapi.WaveTuner implementation: the configured group (0 = use
// the default) and the lazily (re)built Wave scratch. One definition
// so clamping, default resolution, and rebuild-on-resize cannot drift
// between the four engines.
type WaveTune struct {
	g int
	w *Wave
}

// Set clamps and records the group size (g ≤ 1 = scalar loop).
func (t *WaveTune) Set(g int) { t.g = ClampWaveGroup(g) }

// Group resolves the group size in force (the package default when
// never Set).
func (t *WaveTune) Group() int {
	if t.g == 0 {
		return WaveGroup
	}
	return t.g
}

// Scratch returns the resolved group size and, when it is > 1, the
// wave scratch for a K=k sketch — built lazily on first use (so every
// construction path, including deserialization, gets one) and rebuilt
// when the group size changed.
func (t *WaveTune) Scratch(k int) (*Wave, int) {
	g := t.Group()
	if g > 1 && (t.w == nil || t.w.Group() != g) {
		t.w = NewWave(k, g)
	}
	return t.w, g
}

// Wave is the reusable per-engine scratch of the wave-pipelined batch
// ingest path. Engines keep one Wave per sketch (single-writer by the
// Ingestor contract, like the slot buffer of the per-pair fused path)
// so the steady-state group path performs zero allocations.
//
// The slot buffer is over-allocated by MaxTables−K entries so that any
// group member's slots can also be viewed as a *[MaxTables]Slot — the
// currency of the per-pair slot methods — letting the scalar fallback
// (conflicting groups, exploration-phase inserts) reuse the already
// computed group hashes via At.
type Wave struct {
	k, g  int
	slots []Slot
	ests  []float64
	raws  []float64
	vs    []float64
	admit []bool

	// rowKeys/rowXs are the row-expansion staging of the RowOfferer
	// path (WalkRowGroups / WalkRowsGroups): per group, partner ids are
	// materialized into pair keys by one vector add of the row base,
	// and triangle increments into left·right products, so the group
	// bodies see ordinary key/x slices. L1-resident like the rest of
	// the scratch.
	rowKeys []uint64
	rowXs   []float64

	// Epoch-stamped open-addressing set over cell offsets, used by
	// Clean to detect intra-group cell sharing without clearing between
	// groups. Tiny (a few KiB) so probing stays in L1.
	scrOff   []int
	scrEpoch []uint32
	epoch    uint32

	// Sink absorbs the touch pass's load results so the compiler cannot
	// elide the prefetching reads. Never meaningful.
	Sink float64
}

// NewWave returns scratch for groups of g pairs over a K=k sketch.
// g < 2 or k outside [1, MaxTables] panics: a one-pair "group" is the
// scalar path and needs no scratch.
func NewWave(k, g int) *Wave {
	if k < 1 || k > MaxTables {
		panic(fmt.Sprintf("countsketch: NewWave tables %d outside [1,%d]", k, MaxTables))
	}
	if g < 2 || g > MaxWaveGroup {
		panic(fmt.Sprintf("countsketch: NewWave group %d outside [2,%d]", g, MaxWaveGroup))
	}
	// Screen capacity: next power of two ≥ 4·g·k keeps the load factor
	// below 1/4, so probe chains stay short.
	sc := 1
	for sc < 4*g*k {
		sc <<= 1
	}
	return &Wave{
		k: k, g: g,
		slots:    make([]Slot, (g-1)*k+MaxTables),
		ests:     make([]float64, g),
		raws:     make([]float64, g),
		vs:       make([]float64, g),
		admit:    make([]bool, g),
		rowKeys:  make([]uint64, g),
		rowXs:    make([]float64, g),
		scrOff:   make([]int, sc),
		scrEpoch: make([]uint32, sc),
	}
}

// Group returns the group size g the scratch was sized for.
func (w *Wave) Group() int { return w.g }

// Slots returns the slot buffer of a group of n ≤ g keys (n·k slots),
// ready for LocateBatch.
func (w *Wave) Slots(n int) []Slot { return w.slots[:n*w.k] }

// At views group member i's slots as the fixed-size array pointer the
// per-pair slot methods consume (valid thanks to the MaxTables
// over-allocation; only the first k entries are meaningful).
func (w *Wave) At(i int) *[MaxTables]Slot {
	return (*[MaxTables]Slot)(w.slots[i*w.k : i*w.k+MaxTables])
}

// Ests, Raws, Vs and Admit return the per-group gather/scatter scratch
// arrays truncated to n group members.
func (w *Wave) Ests(n int) []float64 { return w.ests[:n] }

// Raws returns the raw-median scratch (see Ests).
func (w *Wave) Raws(n int) []float64 { return w.raws[:n] }

// Vs returns the scaled-increment scratch (see Ests).
func (w *Wave) Vs(n int) []float64 { return w.vs[:n] }

// Admit returns the gate-decision scratch (see Ests).
func (w *Wave) Admit(n int) []bool { return w.admit[:n] }

// Clean reports whether every cell offset in slots is distinct — the
// precondition under which the gather/scatter stages are bit-identical
// to per-pair processing (no group member reads a cell another member
// writes, so evaluation order cannot matter). Groups that share a cell
// (the same key twice, or two keys colliding in some table) must take
// the per-pair fallback, which replays the exact scalar order.
//
// The set is epoch-stamped: one counter bump retires all previous
// entries, so screening costs O(len(slots)) probes into an L1-resident
// table and nothing is cleared between groups.
func (w *Wave) Clean(slots []Slot) bool {
	w.epoch++
	if w.epoch == 0 { // uint32 wrap: stale stamps would look current
		for i := range w.scrEpoch {
			w.scrEpoch[i] = 0
		}
		w.epoch = 1
	}
	mask := len(w.scrOff) - 1
	for i := range slots {
		off := slots[i].Off
		// Fibonacci multiplicative scramble: offsets are structured
		// (row-major cell indices), the table wants uniform slots.
		h := int((uint64(off)*0x9e3779b97f4a7c15)>>33) & mask
		for w.scrEpoch[h] == w.epoch {
			if w.scrOff[h] == off {
				return false
			}
			h = (h + 1) & mask
		}
		w.scrEpoch[h] = w.epoch
		w.scrOff[h] = off
	}
	return true
}

// WalkRowGroups drives one row of the RowOfferer path through an
// engine's wave pipeline: partners[lo:hi] chunks of ≤ g are expanded
// into pair keys rowBase+partner (one wrapping vector add into the
// Wave's row staging) and handed to group together with the matching
// x and ests windows. group is each engine's wave group body — the
// same body its OfferPairs path runs — so the resulting state is
// bit-identical to OfferPairs over the materialized keys, which is in
// turn pinned bit-identical to the scalar per-pair path. Shared by all
// four engines so the expansion cannot drift between them; g must be
// w.Group() (engines pass their WaveTune.Scratch results straight in).
func WalkRowGroups(w *Wave, g int, rowBase uint64, partners []uint64, x []float64, ests []float64,
	group func(keys []uint64, xs []float64, ests []float64)) {
	for lo := 0; lo < len(partners); lo += g {
		hi := lo + g
		if hi > len(partners) {
			hi = len(partners)
		}
		keys := w.rowKeys[:hi-lo]
		for i, p := range partners[lo:hi] {
			keys[i] = rowBase + p
		}
		var sub []float64
		if ests != nil {
			sub = ests[lo:hi]
		}
		group(keys, x[lo:hi], sub)
	}
}

// WalkRowsGroups drives one sample's whole upper triangle through an
// engine's wave pipeline (the OfferRows form): pairs
// (bases[i]+ids[j], left[i]·right[j]) for i < j stream in row-major
// order through the Wave's row staging, packing groups across row
// boundaries so short rows do not drain the pipeline — exactly the
// grouping OfferPairs would apply to the materialized pair sequence.
// ests is nil or m(m−1)/2 entries consumed in the same order. See
// WalkRowGroups for the group contract.
func WalkRowsGroups(w *Wave, g int, bases, ids []uint64, left, right []float64, ests []float64,
	group func(keys []uint64, xs []float64, ests []float64)) {
	m := len(ids)
	keys, xs := w.rowKeys[:g], w.rowXs[:g]
	n, epos := 0, 0
	for i := 0; i+1 < m; i++ {
		base, li := bases[i], left[i]
		for j := i + 1; j < m; j++ {
			keys[n] = base + ids[j]
			xs[n] = li * right[j]
			n++
			if n == g {
				var sub []float64
				if ests != nil {
					sub = ests[epos : epos+n]
				}
				group(keys, xs, sub)
				epos += n
				n = 0
			}
		}
	}
	if n > 0 {
		var sub []float64
		if ests != nil {
			sub = ests[epos : epos+n]
		}
		group(keys[:n], xs[:n], sub)
	}
}

// LocateBatch fills slots (length len(keys)·K, e.g. Wave.Slots) with
// the slot locations of every key — the group-hashing stage of the
// wave pipeline. It is bit-identical to per-key Locate calls while
// dispatching to the hash family once per group instead of once per
// key.
func (s *Sketch) LocateBatch(keys []uint64, slots []Slot) {
	s.h.FillSlotsBatch(keys, slots)
}

// TouchSlots reads every addressed cell once and returns the sum — the
// prefetch stage of the wave pipeline. The loads carry no dependencies
// between them, so the core's out-of-order window overlaps their cache
// misses (bounded by the outstanding-miss budget) instead of paying
// them serially inside the per-pair estimate/insert chain; by the time
// the gather and scatter stages re-read the cells they are
// cache-resident. Callers accumulate the result into Wave.Sink so the
// reads cannot be elided; the value itself is meaningless.
func (s *Sketch) TouchSlots(slots []Slot) float64 {
	sum := 0.0
	w := s.w
	for i := range slots {
		sum += w[slots[i].Off]
	}
	return sum
}

// EstimateSlotsBatch gathers the median-of-K estimates of a located
// group: for each group member i it fills raws[i] with the raw
// (pre-scale) median and ests[i] with the logical estimate
// raws[i]·DecayScale(). len(ests) selects the group size; slots must
// hold len(ests)·K slots. Each member's estimate is bit-identical to
// EstimateSlotsWithRaw through its slots.
func (s *Sketch) EstimateSlotsBatch(slots []Slot, ests, raws []float64) {
	var buf [MaxTables]float64
	k := s.cfg.Tables
	w := s.w
	for i := range ests {
		base := i * k
		for e := 0; e < k; e++ {
			buf[e] = w[slots[base+e].Off] * slots[base+e].Sign
		}
		raw := medianInPlace(buf[:k])
		raws[i] = raw
		ests[i] = raw * s.scale
	}
}

// AddSlotsBatch is the gate/scatter stage of the wave pipeline: for
// every group member i with admit[i] true (admit nil admits all) it
// folds vs[i] into the member's cells, and — when ests is non-nil —
// overwrites ests[i] with the post-add estimate derived from the
// pre-add raw median raws[i] by the same odd-K median-shift identity
// as AddSlotsWithEstimateRaw (even K recomputes from the table).
// Rejected members' ests entries are left untouched (the caller seeds
// them with the pre-add estimates from the gather stage).
//
// The scatter is bit-identical to per-pair AddSlots /
// AddSlotsWithEstimateRaw calls in group order provided the group is
// Clean (no shared cells): disjoint writes commute exactly, and each
// member's post-add estimate reads only its own cells.
func (s *Sketch) AddSlotsBatch(slots []Slot, vs []float64, admit []bool, raws, ests []float64) {
	k := s.cfg.Tables
	for i := range vs {
		if admit != nil && !admit[i] {
			continue
		}
		v := vs[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("countsketch: non-finite update %v", v))
		}
		v *= s.invScale
		base := i * k
		for e := 0; e < k; e++ {
			s.w[slots[base+e].Off] += slots[base+e].Sign * v
		}
		if ests == nil {
			continue
		}
		if k%2 == 1 {
			// v is exactly vs[i]·invScale, the value the scalar path's
			// AddSlotsWithEstimateRaw shifts the raw median by.
			ests[i] = (raws[i] + v) * s.scale
		} else {
			var buf [MaxTables]float64
			for e := 0; e < k; e++ {
				buf[e] = s.w[slots[base+e].Off] * slots[base+e].Sign
			}
			ests[i] = medianInPlace(buf[:k]) * s.scale
		}
	}
}
