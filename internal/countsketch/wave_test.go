package countsketch

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/hashing"
)

func waveKeys(n int, seed uint64) []uint64 {
	sm := hashing.NewSplitMix64(seed)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = sm.Next() % 5000 // repeats across the stream
	}
	return keys
}

func waveVals(n int, seed uint64) []float64 {
	sm := hashing.NewSplitMix64(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(int64(sm.Next()%4001)-2000) / 17.0
	}
	return xs
}

// TestLocateBatchMatchesLocate pins stage 1 against the per-key path.
func TestLocateBatchMatchesLocate(t *testing.T) {
	s := MustNew(Config{Tables: 5, Range: 1 << 10, Seed: 7})
	keys := waveKeys(67, 1)
	batch := make([]Slot, len(keys)*s.K())
	s.LocateBatch(keys, batch)
	var one [MaxTables]Slot
	for i, key := range keys {
		s.Locate(key, &one)
		for e := 0; e < s.K(); e++ {
			if batch[i*s.K()+e] != one[e] {
				t.Fatalf("key %d table %d: %+v != %+v", key, e, batch[i*s.K()+e], one[e])
			}
		}
	}
}

// TestEstimateSlotsBatchMatchesWithRaw pins the gather stage: each
// group member's (est, raw) must be bit-identical to
// EstimateSlotsWithRaw, including under an active decay scale.
func TestEstimateSlotsBatchMatchesWithRaw(t *testing.T) {
	for _, tables := range []int{4, 5} {
		for _, decay := range []float64{1, 0.5} {
			s := MustNew(Config{Tables: tables, Range: 1 << 9, Seed: 3})
			keys := waveKeys(200, 2)
			xs := waveVals(200, 3)
			for i, key := range keys {
				s.Add(key, xs[i])
			}
			s.Decay(decay)
			group := keys[:33]
			slots := make([]Slot, len(group)*tables)
			s.LocateBatch(group, slots)
			ests := make([]float64, len(group))
			raws := make([]float64, len(group))
			s.EstimateSlotsBatch(slots, ests, raws)
			var one [MaxTables]Slot
			for i, key := range group {
				s.Locate(key, &one)
				est, raw := s.EstimateSlotsWithRaw(&one)
				if est != ests[i] || raw != raws[i] {
					t.Fatalf("K=%d decay=%v key %d: batch (%v,%v) != scalar (%v,%v)",
						tables, decay, key, ests[i], raws[i], est, raw)
				}
			}
		}
	}
}

// TestAddSlotsBatchMatchesScalar pins the scatter stage on a clean
// (conflict-free) group: tables and post-add estimates must be
// bit-identical to per-pair AddSlotsWithEstimateRaw in group order, for
// odd and even K and with a decay scale active.
func TestAddSlotsBatchMatchesScalar(t *testing.T) {
	for _, tables := range []int{4, 5} {
		for _, decay := range []float64{1, 0.25} {
			a := MustNew(Config{Tables: tables, Range: 1 << 12, Seed: 11})
			b := a.Clone()
			// Distinct keys; with R=4096 and 24 keys the group is almost
			// surely clean — require it so the equivalence claim applies.
			keys := make([]uint64, 24)
			for i := range keys {
				keys[i] = uint64(1000 + i)
			}
			xs := waveVals(len(keys), 5)
			seed := waveVals(len(keys), 6)
			for i, key := range keys {
				a.Add(key, seed[i])
				b.Add(key, seed[i])
			}
			a.Decay(decay)
			b.Decay(decay)

			slots := make([]Slot, len(keys)*tables)
			a.LocateBatch(keys, slots)
			w := NewWave(tables, len(keys))
			if !w.Clean(slots) {
				t.Skipf("K=%d: group not conflict-free under this seed", tables)
			}
			ests := make([]float64, len(keys))
			raws := make([]float64, len(keys))
			a.EstimateSlotsBatch(slots, ests, raws)
			admit := make([]bool, len(keys))
			vs := make([]float64, len(keys))
			for i := range keys {
				admit[i] = i%3 != 0
				if admit[i] {
					vs[i] = xs[i]
				}
			}
			a.AddSlotsBatch(slots, vs, admit, raws, ests)

			var one [MaxTables]Slot
			for i, key := range keys {
				b.Locate(key, &one)
				est, raw := b.EstimateSlotsWithRaw(&one)
				if admit[i] {
					est = b.AddSlotsWithEstimateRaw(&one, xs[i], raw)
				}
				if est != ests[i] {
					t.Fatalf("K=%d decay=%v key %d: batch est %v != scalar %v", tables, decay, key, ests[i], est)
				}
			}
			var ba, bb bytes.Buffer
			if _, err := a.WriteTo(&ba); err != nil {
				t.Fatal(err)
			}
			if _, err := b.WriteTo(&bb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
				t.Fatalf("K=%d decay=%v: batch and scalar tables diverge", tables, decay)
			}
		}
	}
}

// TestWaveCleanDetectsSharedCells pins the conflict screen: a repeated
// key must flag the group dirty, and screening must not leak state
// between groups (epoch stamping).
func TestWaveCleanDetectsSharedCells(t *testing.T) {
	s := MustNew(Config{Tables: 5, Range: 1 << 12, Seed: 1})
	w := NewWave(s.K(), 8)
	dup := []uint64{10, 11, 12, 10} // same key twice: all K cells shared
	slots := w.Slots(len(dup))
	s.LocateBatch(dup, slots)
	if w.Clean(slots) {
		t.Fatal("duplicate key not detected as a shared cell")
	}
	// A fresh disjoint group must screen clean right after (no residue).
	uniq := []uint64{20, 21, 22, 23}
	slots = w.Slots(len(uniq))
	s.LocateBatch(uniq, slots)
	if !w.Clean(slots) {
		t.Fatal("clean group flagged dirty after a dirty one (stale screen state)")
	}
}

// TestTouchSlotsReadsEveryCell sanity-checks the prefetch pass: the
// returned sum is the plain sum of the addressed raw cells, so the
// loads demonstrably happen.
func TestTouchSlotsReadsEveryCell(t *testing.T) {
	s := MustNew(Config{Tables: 3, Range: 64, Seed: 5})
	keys := []uint64{1, 2, 3, 4}
	s.Add(keys[0], 2.5)
	slots := make([]Slot, len(keys)*s.K())
	s.LocateBatch(keys, slots)
	want := 0.0
	for _, sl := range slots {
		want += s.w[sl.Off]
	}
	if got := s.TouchSlots(slots); got != want {
		t.Fatalf("touch sum %v != %v", got, want)
	}
}

// TestMeanSketchWaveMatchesScalar drives identical streams through the
// wave OfferPairs (several group sizes) and the scalar loop, fixed and
// decayed, and requires bit-identical serialized state and estimates.
func TestMeanSketchWaveMatchesScalar(t *testing.T) {
	const T = 1 << 20
	for _, lambda := range []float64{0, 1, 0.999} {
		for _, g := range []int{2, 8, 32} {
			mkEngine := func() *MeanSketch {
				cfg := Config{Tables: 5, Range: 1 << 10, Seed: 9}
				if lambda == 0 {
					m, err := NewMeanSketch(cfg, T)
					if err != nil {
						t.Fatal(err)
					}
					return m
				}
				m, err := NewMeanSketchDecayed(cfg, T, lambda)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			scalar, wave := mkEngine(), mkEngine()
			scalar.SetWaveGroup(1)
			wave.SetWaveGroup(g)
			keys := waveKeys(3000, 21)
			xs := waveVals(3000, 22)
			se := make([]float64, 100)
			we := make([]float64, 100)
			for step, lo := 1, 0; lo < len(keys); step, lo = step+1, lo+100 {
				scalar.BeginStep(step)
				wave.BeginStep(step)
				var sd, wd []float64
				if step%2 == 0 { // alternate pure-ingest and estimating calls
					sd, wd = se, we
				}
				scalar.OfferPairs(keys[lo:lo+100], xs[lo:lo+100], sd)
				wave.OfferPairs(keys[lo:lo+100], xs[lo:lo+100], wd)
				if sd != nil {
					for i := range sd {
						if sd[i] != wd[i] {
							t.Fatalf("λ=%v g=%d step %d: est[%d] scalar %v != wave %v", lambda, g, step, i, sd[i], wd[i])
						}
					}
				}
			}
			var bs, bw bytes.Buffer
			if _, err := scalar.WriteTo(&bs); err != nil {
				t.Fatal(err)
			}
			if _, err := wave.WriteTo(&bw); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bs.Bytes(), bw.Bytes()) {
				t.Fatalf("λ=%v g=%d: serialized state diverges", lambda, g)
			}
			for k := uint64(0); k < 64; k++ {
				if a, b := scalar.Estimate(k), wave.Estimate(k); a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("λ=%v g=%d key %d: %v != %v", lambda, g, k, a, b)
				}
			}
		}
	}
}
