package countsketch

import (
	"bytes"
	"testing"
)

func TestMeanSketchSerializationRoundTrip(t *testing.T) {
	m, err := NewMeanSketch(testCfg(256), 50)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 30; step++ {
		m.BeginStep(step)
		m.Offer(uint64(step%7), float64(step))
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeanSketchFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		if got.Estimate(k) != m.Estimate(k) {
			t.Fatalf("estimate mismatch at key %d", k)
		}
	}
	// Resumed offers scale identically (same T).
	got.BeginStep(31)
	m.BeginStep(31)
	got.Offer(3, 2)
	m.Offer(3, 2)
	if got.Estimate(3) != m.Estimate(3) {
		t.Error("post-resume scaling mismatch")
	}
}

func TestReadMeanSketchFromErrors(t *testing.T) {
	if _, err := ReadMeanSketchFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadMeanSketchFrom(bytes.NewReader(make([]byte, 20))); err == nil {
		t.Error("bad magic should error")
	}
	// Valid magic, zero stream length.
	bad := make([]byte, 20)
	bad[0], bad[1], bad[2], bad[3] = 0x01, 0xC5, 0xC5, 0xA5 // little-endian magic
	if _, err := ReadMeanSketchFrom(bytes.NewReader(bad)); err == nil {
		t.Error("zero stream length should error")
	}
}
