package countsketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestLazyDecayMatchesEagerScale pins the lazy decay identity: Decay(f)
// followed by reads must equal an eager cell-wise scale by f, and
// inserts after a decay must land at full (undecayed) weight.
func TestLazyDecayMatchesEagerScale(t *testing.T) {
	cfg := Config{Tables: 5, Range: 256, Seed: 7}
	lazy, eager := MustNew(cfg), MustNew(cfg)
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = rng.Uint64() % 4096
	}
	const lambda = 0.9
	for round := 0; round < 50; round++ {
		lazy.Decay(lambda)
		eager.Scale(lambda) // eager reference: multiply every cell
		for i := 0; i < 20; i++ {
			k := keys[rng.Intn(len(keys))]
			v := rng.NormFloat64()
			lazy.Add(k, v)
			eager.Add(k, v)
		}
	}
	for _, k := range keys {
		l, e := lazy.Estimate(k), eager.Estimate(k)
		if math.Abs(l-e) > 1e-9*(1+math.Abs(e)) {
			t.Fatalf("key %d: lazy estimate %v, eager %v", k, l, e)
		}
	}
	if s := lazy.DecayScale(); s >= 1 {
		t.Fatalf("decay scale did not move: %v", s)
	}
	// Renormalization folds the scale without changing logical contents.
	before := make([]float64, len(keys))
	for i, k := range keys {
		before[i] = lazy.Estimate(k)
	}
	lazy.Renormalize()
	if s := lazy.DecayScale(); s != 1 {
		t.Fatalf("scale after Renormalize = %v, want 1", s)
	}
	for i, k := range keys {
		after := lazy.Estimate(k)
		if math.Abs(after-before[i]) > 1e-12*(1+math.Abs(before[i])) {
			t.Fatalf("key %d: estimate changed across Renormalize: %v vs %v", k, after, before[i])
		}
	}
}

// TestDecayAutoRenormalize drives the scale past the renormalization
// floor and checks estimates stay finite and correct.
func TestDecayAutoRenormalize(t *testing.T) {
	sk := MustNew(Config{Tables: 3, Range: 64, Seed: 3})
	sk.Add(11, 1)
	// 0.5^500 is far below the 1e-120 floor; renormalization must have
	// kicked in (scale restored to a sane magnitude) with the logical
	// value fully decayed toward zero.
	for i := 0; i < 500; i++ {
		sk.Decay(0.5)
	}
	if s := sk.DecayScale(); s < renormFloor {
		t.Fatalf("scale %v below the renormalization floor", s)
	}
	if est := sk.Estimate(11); est != 0 && math.Abs(est) > 1e-100 {
		t.Fatalf("estimate after 500 halvings = %v, want ~0", est)
	}
	// A fresh insert after heavy decay is at full weight.
	sk.Add(11, 2)
	if est := sk.Estimate(11); math.Abs(est-2) > 1e-9 {
		t.Fatalf("post-decay insert estimate = %v, want 2", est)
	}
}

// TestDecayLambda1BitIdentical asserts Decay(1) is an exact no-op: the
// table array, every slot-path estimate, and the serialized bytes are
// bit-identical to a sketch that never saw a Decay call.
func TestDecayLambda1BitIdentical(t *testing.T) {
	cfg := Config{Tables: 4, Range: 128, Seed: 9}
	plain, decayed := MustNew(cfg), MustNew(cfg)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		k := rng.Uint64() % 1024
		v := rng.NormFloat64()
		plain.Add(k, v)
		decayed.Decay(1)
		decayed.Add(k, v)
	}
	for i, v := range plain.w {
		if math.Float64bits(v) != math.Float64bits(decayed.w[i]) {
			t.Fatalf("cell %d diverged: %v vs %v", i, v, decayed.w[i])
		}
	}
	for k := uint64(0); k < 1024; k++ {
		if math.Float64bits(plain.Estimate(k)) != math.Float64bits(decayed.Estimate(k)) {
			t.Fatalf("estimate for key %d diverged", k)
		}
	}
	var pb, db bytes.Buffer
	if _, err := plain.WriteTo(&pb); err != nil {
		t.Fatal(err)
	}
	if _, err := decayed.WriteTo(&db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Bytes(), db.Bytes()) {
		t.Fatal("λ=1 serialized form diverged from the classic v1 bytes")
	}
}

// TestDecaySerializationRoundTrip round-trips an actively decayed
// sketch (v2 format) and checks the scale survives.
func TestDecaySerializationRoundTrip(t *testing.T) {
	sk := MustNew(Config{Tables: 5, Range: 64, Seed: 21})
	sk.Add(3, 1.5)
	sk.Decay(0.75)
	sk.Add(9, -2.25)
	var buf bytes.Buffer
	if _, err := sk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DecayScale() != sk.DecayScale() {
		t.Fatalf("scale %v survived as %v", sk.DecayScale(), got.DecayScale())
	}
	for k := uint64(0); k < 64; k++ {
		if math.Float64bits(sk.Estimate(k)) != math.Float64bits(got.Estimate(k)) {
			t.Fatalf("estimate for key %d diverged across round trip", k)
		}
	}
}

// TestMeanSketchDecayedLambda1Differential drives identical streams
// through the fixed-horizon engine and the λ=1 decayed engine and
// requires bit-identical tables, estimates, and N_eff = t, plus a
// serialized round trip that preserves decay mode.
func TestMeanSketchDecayedLambda1Differential(t *testing.T) {
	cfg := Config{Tables: 5, Range: 512, Seed: 13}
	const T = 300
	fixed, err := NewMeanSketch(cfg, T)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewMeanSketchDecayed(cfg, T, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for step := 1; step <= T; step++ {
		fixed.BeginStep(step)
		dec.BeginStep(step)
		for i := 0; i < 10; i++ {
			k := rng.Uint64() % 2048
			v := rng.NormFloat64()
			fe, _ := fixed.OfferEstimate(k, v)
			de, _ := dec.OfferEstimate(k, v)
			if math.Float64bits(fe) != math.Float64bits(de) {
				t.Fatalf("step %d: offer estimates diverged: %v vs %v", step, fe, de)
			}
		}
	}
	for i, v := range fixed.sk.w {
		if math.Float64bits(v) != math.Float64bits(dec.sk.w[i]) {
			t.Fatalf("cell %d diverged", i)
		}
	}
	if !dec.Decaying() || dec.DecayFactor() != 1 {
		t.Fatalf("decayed engine reports Decaying=%v λ=%v", dec.Decaying(), dec.DecayFactor())
	}
	if ne := dec.EffectiveSamples(); ne != T {
		t.Fatalf("N_eff = %v, want %d", ne, T)
	}
	// The decayed engine serializes as v2 and round-trips its mode.
	var buf bytes.Buffer
	if _, err := dec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeanSketchFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Decaying() || got.EffectiveSamples() != T {
		t.Fatalf("restored engine lost decay state: decaying=%v neff=%v", got.Decaying(), got.EffectiveSamples())
	}
}

// TestMeanSketchDecayHugeGapNoPanic is the regression pin for the
// λ^steps → 0 underflow: a shard idle for more than ~745 windows used
// to feed Decay an exact 0 factor and panic the worker goroutine. The
// catch-up tick must instead age the state fully and keep serving.
func TestMeanSketchDecayHugeGapNoPanic(t *testing.T) {
	const window = 60
	m, err := NewMeanSketchDecayed(Config{Tables: 3, Range: 64, Seed: 8}, window, 1-1.0/window)
	if err != nil {
		t.Fatal(err)
	}
	m.BeginStep(1)
	m.Offer(5, 100)
	// (59/60)^1e8 underflows to exactly 0 in float64.
	m.BeginStep(100_000_000)
	if est := m.Estimate(5); est != 0 && math.Abs(est) > 1e-250 {
		t.Fatalf("estimate after the gap = %v, want fully aged out", est)
	}
	m.Offer(5, 100)
	if est := m.Estimate(5); math.Abs(est-100.0/window) > 1e-9 {
		t.Fatalf("post-gap insert estimate = %v, want %v", est, 100.0/window)
	}
}

// TestMeanSketchSerializeExactWindow is the regression pin for the
// lossy uint64(1/invT) header: ~7% of integer stream lengths (93 among
// them) round-trip to T−1 under truncation, silently re-normalizing
// every post-restore insert. The serialized normalizer must survive
// bit-exactly for every T.
func TestMeanSketchSerializeExactWindow(t *testing.T) {
	cfg := Config{Tables: 3, Range: 64, Seed: 4}
	for T := 1; T <= 2000; T++ {
		m, err := NewMeanSketch(cfg, T)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMeanSketchFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.invT) != math.Float64bits(m.invT) {
			t.Fatalf("T=%d: invT %v survived as %v", T, m.invT, got.invT)
		}
	}
}

// TestMeanSketchDecayAges checks the estimator actually forgets: a key
// hammered early then abandoned decays by λ per step, while a fresh key
// reaches full weight.
func TestMeanSketchDecayAges(t *testing.T) {
	const window = 50
	lambda := 1 - 1.0/float64(window)
	dec, err := NewMeanSketchDecayed(Config{Tables: 5, Range: 1024, Seed: 1}, window, lambda)
	if err != nil {
		t.Fatal(err)
	}
	dec.BeginStep(1)
	dec.Offer(7, 100)
	peak := dec.Estimate(7)
	dec.BeginStep(1 + 3*window)
	got := dec.Estimate(7)
	want := peak * math.Pow(lambda, 3*window)
	if math.Abs(got-want) > 1e-9*math.Abs(peak) {
		t.Fatalf("after 3 windows: estimate %v, want %v (peak %v)", got, want, peak)
	}
	if got >= peak*0.1 {
		t.Fatalf("estimate %v did not age out of peak %v within 3 windows", got, peak)
	}
}
