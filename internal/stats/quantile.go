package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// The input is not modified. NaN for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return QuantileSorted(cp, q)
}

// QuantileSorted is Quantile for already-sorted input, with no copy.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentile returns the p-th percentile (p in [0,100]) of xs.
func Percentile(xs []float64, p float64) float64 { return Quantile(xs, p/100) }

// Quantiles returns the quantiles of xs at each q in qs, sorting once.
func Quantiles(xs []float64, qs []float64) []float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = QuantileSorted(cp, q)
	}
	return out
}

// EmpiricalCDF returns, for each threshold in thresholds, the fraction of
// xs that is ≤ the threshold. This builds the curves of the paper's
// Figures 1 and 2 ("y is the empirical proportion of |value| ≤ x").
func EmpiricalCDF(xs []float64, thresholds []float64) []float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		out[i] = float64(sort.SearchFloat64s(cp, math.Nextafter(t, math.Inf(1)))) / float64(len(cp))
	}
	return out
}
