package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs, or NaN when
// fewer than two observations are supplied.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns both the mean and sample standard deviation in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), w.Std()
}

// Covariance returns the unbiased sample covariance of equal-length slices
// xs and ys; NaN when lengths differ or fewer than two points.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1)
}

// Correlation returns the Pearson correlation of xs and ys; NaN when
// undefined (length mismatch, <2 points, or zero variance).
func Correlation(xs, ys []float64) float64 {
	c := Covariance(xs, ys)
	sx, sy := Std(xs), Std(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return c / (sx * sy)
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MedianInPlace sorts xs and returns its median. It avoids the copy in
// Median for hot paths that own the slice.
func MedianInPlace(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// MedianSmall computes the median of xs for small len (the K of a count
// sketch, typically ≤ 16) using insertion sort on a scratch buffer to
// avoid allocation. scratch must have capacity ≥ len(xs).
func MedianSmall(xs, scratch []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := scratch[:n]
	copy(s, xs)
	for i := 1; i < n; i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Abs returns a new slice with the absolute values of xs.
func Abs(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Abs(x)
	}
	return out
}

// MinMax returns the minimum and maximum of xs; NaNs for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
