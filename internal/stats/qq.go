package stats

import (
	"math"
	"sort"
)

// QQPoint pairs a theoretical standard-normal quantile with the matching
// sample quantile.
type QQPoint struct {
	Theoretical float64
	Sample      float64
}

// QQNormal returns QQ-plot points comparing the standardized sample xs
// against the standard normal distribution, as in the paper's Figure 4.
// The sample is standardized by its own mean and standard deviation so a
// normal sample lies on the identity line. Plot positions use the
// (i - 0.5)/n convention.
func QQNormal(xs []float64) []QQPoint {
	n := len(xs)
	if n == 0 {
		return nil
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mean, std := MeanStd(cp)
	if std == 0 || math.IsNaN(std) {
		std = 1
	}
	pts := make([]QQPoint, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		pts[i] = QQPoint{
			Theoretical: NormalQuantile(p),
			Sample:      (cp[i] - mean) / std,
		}
	}
	return pts
}

// QQDeviation summarizes how far the QQ points stray from the identity
// line in the central band of the distribution (quantiles between
// lo and hi, e.g. 0.01 and 0.99, to avoid the noisy extreme tails):
// it returns the maximum |sample - theoretical| there. Values well below
// ~0.15 for a few thousand points indicate approximate normality; the
// tests use this as the Figure 4 acceptance criterion.
func QQDeviation(pts []QQPoint, lo, hi float64) float64 {
	n := len(pts)
	maxDev := 0.0
	for i, pt := range pts {
		p := (float64(i) + 0.5) / float64(n)
		if p < lo || p > hi {
			continue
		}
		d := math.Abs(pt.Sample - pt.Theoretical)
		if d > maxDev {
			maxDev = d
		}
	}
	return maxDev
}
