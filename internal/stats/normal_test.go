package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{2.5758293035489004, 0.995},
		{-3, 0.0013498980316300933},
		{6, 0.9999999990134123},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalTailComplement(t *testing.T) {
	for _, x := range []float64{-5, -1, 0, 0.5, 2, 8} {
		if got := NormalTail(x) + NormalCDF(x); !almostEq(got, 1, 1e-12) {
			t.Errorf("Φ(%v)+tail = %v, want 1", x, got)
		}
	}
	// Deep tail has no catastrophic cancellation.
	if got := NormalTail(10); got <= 0 || got > 1e-20 {
		t.Errorf("NormalTail(10) = %v, want tiny positive", got)
	}
}

func TestNormalPDF(t *testing.T) {
	if got := NormalPDF(0); !almostEq(got, 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Errorf("NormalPDF(0) = %v", got)
	}
	if got := NormalPDF(1); !almostEq(got, 0.24197072451914337, 1e-14) {
		t.Errorf("NormalPDF(1) = %v", got)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
		{0.0013498980316300933, -3},
		{0.999, 3.090232306167813},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(NormalQuantile(p)) {
			t.Errorf("NormalQuantile(%v) should be NaN", p)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	if err := quick.Check(func(raw uint32) bool {
		p := 1e-8 + (1-2e-8)*float64(raw)/float64(math.MaxUint32)
		x := NormalQuantile(p)
		return almostEq(NormalCDF(x), p, 1e-10)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 0.001; p < 1; p += 0.001 {
		x := NormalQuantile(p)
		if x <= prev {
			t.Fatalf("quantile not strictly increasing at p=%v", p)
		}
		prev = x
	}
}
