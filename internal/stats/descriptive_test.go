package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance with n-1 = 32/7.
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := Std(xs); !almostEq(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("Std = %v", got)
	}
}

func TestEmptyAndShortInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single value should be NaN")
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
	if !math.IsNaN(Covariance([]float64{1}, []float64{1, 2})) {
		t.Error("Covariance length mismatch should be NaN")
	}
	if !math.IsNaN(Correlation([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("Correlation with zero variance should be NaN")
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", got)
	}
	if got := Covariance(xs, ys); !almostEq(got, 5, 1e-12) {
		t.Errorf("Covariance = %v, want 5", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	// Median must not modify its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median modified its input")
	}
}

func TestMedianSmallMatchesMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scratch := make([]float64, 16)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(9)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		want := Median(xs)
		got := MedianSmall(xs, scratch)
		if !almostEq(got, want, 1e-15) {
			t.Fatalf("MedianSmall = %v, want %v for %v", got, want, xs)
		}
	}
	if !math.IsNaN(MedianSmall(nil, scratch)) {
		t.Error("MedianSmall(nil) should be NaN")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-10) {
		t.Errorf("Welford mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Welford variance %v vs %v", w.Variance(), Variance(xs))
	}
	if w.Count() != 1000 {
		t.Errorf("Count = %d", w.Count())
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var all, a, b Welford
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64()
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if !almostEq(a.Mean(), all.Mean(), 1e-10) || !almostEq(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged (%v,%v) vs full (%v,%v)", a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
	// Merging empty in either direction.
	var empty Welford
	before := a
	a.Merge(empty)
	if a != before {
		t.Error("merging empty changed accumulator")
	}
	empty.Merge(a)
	if empty != a {
		t.Error("merge into empty should copy")
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) || !math.IsNaN(w.PopVariance()) {
		t.Error("zero-value Welford should report NaN statistics")
	}
	w.AddWeighted(2, 3)
	if w.Count() != 3 || w.Mean() != 2 {
		t.Errorf("AddWeighted: count=%d mean=%v", w.Count(), w.Mean())
	}
}

func TestCoMomentMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 800)
	ys := make([]float64, 800)
	var cm CoMoment
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = 0.7*xs[i] + 0.3*rng.NormFloat64()
		cm.Add(xs[i], ys[i])
	}
	if !almostEq(cm.Covariance(), Covariance(xs, ys), 1e-10) {
		t.Errorf("CoMoment covariance %v vs %v", cm.Covariance(), Covariance(xs, ys))
	}
	if cm.Count() != 800 {
		t.Errorf("Count = %d", cm.Count())
	}
	var zero CoMoment
	if !math.IsNaN(zero.Covariance()) || !math.IsNaN(zero.PopCovariance()) {
		t.Error("zero-value CoMoment should be NaN")
	}
}

func TestAbsMinMax(t *testing.T) {
	xs := []float64{-3, 1, -2}
	a := Abs(xs)
	if a[0] != 3 || a[1] != 1 || a[2] != 2 {
		t.Errorf("Abs = %v", a)
	}
	min, max := MinMax(xs)
	if min != -3 || max != 1 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Error("MinMax(nil) should be NaN")
	}
}

func TestMeanStdProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		m, s := MeanStd(xs)
		return almostEq(m, Mean(xs), 1e-9) && almostEq(s, Std(xs), 1e-9)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
