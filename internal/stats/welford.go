package stats

import "math"

// Welford accumulates count, mean and variance of a stream in a single
// numerically stable pass. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddWeighted folds x in count times (count ≥ 0); useful for sparse data
// where zeros arrive implicitly.
func (w *Welford) AddWeighted(x float64, count int64) {
	for i := int64(0); i < count; i++ {
		w.Add(x)
	}
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean (NaN before any observation).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance (NaN before two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population (n-denominator) variance.
func (w *Welford) PopVariance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into w (Chan et al. parallel variant),
// so that the result matches a single accumulator over both streams.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// CoMoment accumulates the co-moment of a paired stream (x, y) for
// streaming covariance, numerically stable. The zero value is ready.
type CoMoment struct {
	n     int64
	meanX float64
	meanY float64
	cm    float64
}

// Add folds the pair (x, y).
func (c *CoMoment) Add(x, y float64) {
	c.n++
	dx := x - c.meanX
	c.meanX += dx / float64(c.n)
	c.meanY += (y - c.meanY) / float64(c.n)
	c.cm += dx * (y - c.meanY)
}

// Count returns the number of pairs observed.
func (c *CoMoment) Count() int64 { return c.n }

// Covariance returns the unbiased sample covariance.
func (c *CoMoment) Covariance() float64 {
	if c.n < 2 {
		return math.NaN()
	}
	return c.cm / float64(c.n-1)
}

// PopCovariance returns the population (n-denominator) covariance.
func (c *CoMoment) PopCovariance() float64 {
	if c.n == 0 {
		return math.NaN()
	}
	return c.cm / float64(c.n)
}
