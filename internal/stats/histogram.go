package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi); values outside
// the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins ≤ 0 or hi ≤ lo, which indicate programmer
// error rather than data error.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// AddAll records every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of mass in bin b.
func (h *Histogram) Fraction(b int) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return float64(h.Counts[b]) / float64(h.total)
}

// BinCenter returns the midpoint of bin b.
func (h *Histogram) BinCenter(b int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(b)+0.5)
}

// String renders a compact ASCII bar chart, one line per bin.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for b, c := range h.Counts {
		bar := strings.Repeat("#", c*50/maxC)
		fmt.Fprintf(&sb, "%8.4f | %-50s %d\n", h.BinCenter(b), bar, c)
	}
	return sb.String()
}

// CDFCurve is a sampled empirical CDF: Y[i] is the fraction of the data
// with value ≤ X[i]. It backs the paper's Figure 1 and Figure 2 plots.
type CDFCurve struct {
	X []float64
	Y []float64
}

// NewCDFCurve evaluates the empirical CDF of xs at n log-spaced (when
// logScale) or linearly spaced thresholds spanning [lo, hi].
func NewCDFCurve(xs []float64, lo, hi float64, n int, logScale bool) CDFCurve {
	ts := make([]float64, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		if logScale {
			ts[i] = lo * math.Pow(hi/lo, f)
		} else {
			ts[i] = lo + (hi-lo)*f
		}
	}
	return CDFCurve{X: ts, Y: EmpiricalCDF(xs, ts)}
}

// At returns the interpolated CDF value at x (clamped to curve ends).
func (c CDFCurve) At(x float64) float64 {
	if len(c.X) == 0 {
		return math.NaN()
	}
	if x <= c.X[0] {
		return c.Y[0]
	}
	for i := 1; i < len(c.X); i++ {
		if x <= c.X[i] {
			f := (x - c.X[i-1]) / (c.X[i] - c.X[i-1])
			return c.Y[i-1]*(1-f) + c.Y[i]*f
		}
	}
	return c.Y[len(c.Y)-1]
}
