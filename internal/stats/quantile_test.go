package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if !math.IsNaN(Quantile([]float64{1, 2}, -0.1)) || !math.IsNaN(Quantile([]float64{1, 2}, 1.1)) {
		t.Error("out-of-range q should be NaN")
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	// Input must be unmodified.
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 {
		t.Error("Quantile modified input")
	}
}

func TestPercentileAndQuantiles(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 50); got != 30 {
		t.Errorf("Percentile(50) = %v", got)
	}
	qs := Quantiles(xs, []float64{0, 0.5, 1})
	if qs[0] != 10 || qs[1] != 30 || qs[2] != 50 {
		t.Errorf("Quantiles = %v", qs)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 4}
	got := EmpiricalCDF(xs, []float64{0, 1, 2, 2.5, 4, 10})
	want := []float64{0, 0.2, 0.6, 0.6, 1, 1}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Errorf("EmpiricalCDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCDFCurveMatchesUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	c := NewCDFCurve(xs, 0.05, 0.95, 10, false)
	for i, x := range c.X {
		if math.Abs(c.Y[i]-x) > 0.02 {
			t.Errorf("uniform CDF at %v = %v", x, c.Y[i])
		}
	}
	// Interpolation inside and clamping outside.
	if got := c.At(-1); got != c.Y[0] {
		t.Errorf("At below range = %v", got)
	}
	if got := c.At(2); got != c.Y[len(c.Y)-1] {
		t.Errorf("At above range = %v", got)
	}
	mid := c.At((c.X[0] + c.X[1]) / 2)
	if mid < c.Y[0] || mid > c.Y[1] {
		t.Errorf("interpolated value %v outside [%v,%v]", mid, c.Y[0], c.Y[1])
	}
}

func TestCDFCurveLogSpacing(t *testing.T) {
	xs := []float64{0.001, 0.01, 0.1, 1}
	c := NewCDFCurve(xs, 0.001, 1, 4, true)
	for i := 1; i < len(c.X); i++ {
		ratio := c.X[i] / c.X[i-1]
		if !almostEq(ratio, 10, 1e-9) {
			t.Errorf("log spacing ratio = %v, want 10", ratio)
		}
	}
	if !sort.Float64sAreSorted(c.Y) {
		t.Error("CDF values must be nondecreasing")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.AddAll([]float64{0.1, 0.3, 0.35, 0.9, -5, 5})
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	// -5 clamps to bin 0, 5 clamps to bin 3.
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 0 || h.Counts[3] != 2 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if !almostEq(h.Fraction(0), 2.0/6, 1e-12) {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
	if !almostEq(h.BinCenter(0), 0.125, 1e-12) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if len(h.String()) == 0 {
		t.Error("String should render")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid histogram args")
		}
	}()
	NewHistogram(1, 0, 4)
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if !math.IsNaN(h.Fraction(0)) {
		t.Error("Fraction of empty histogram should be NaN")
	}
}

func TestQQNormalOnGaussianData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2.5 + 7 // location/scale must not matter
	}
	pts := QQNormal(xs)
	if len(pts) != len(xs) {
		t.Fatalf("len(pts) = %d", len(pts))
	}
	if dev := QQDeviation(pts, 0.02, 0.98); dev > 0.15 {
		t.Errorf("gaussian QQ deviation = %v, want small", dev)
	}
}

func TestQQNormalDetectsHeavyTails(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 4000)
	for i := range xs {
		// Exponential data is decidedly non-normal.
		xs[i] = rng.ExpFloat64()
	}
	pts := QQNormal(xs)
	if dev := QQDeviation(pts, 0.01, 0.99); dev < 0.3 {
		t.Errorf("exponential QQ deviation = %v, want large", dev)
	}
}

func TestQQNormalEmpty(t *testing.T) {
	if QQNormal(nil) != nil {
		t.Error("QQNormal(nil) should be nil")
	}
}
