package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
)

func newTestServer(t *testing.T, cfg shard.Config, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	mgr, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(mgr, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func wireSamples(samples []stream.Sample) server.IngestRequest {
	req := server.IngestRequest{Samples: make([]server.SampleJSON, len(samples))}
	for i, s := range samples {
		req.Samples[i] = server.SampleJSON{Idx: s.Idx, Val: s.Val}
	}
	return req
}

// TestServerRoundTrip drives the full serving loop over HTTP: ingest →
// topk → snapshot → restore → identical topk.
func TestServerRoundTrip(t *testing.T) {
	const d, n = 50, 1000
	ds := dataset.Simulation(d, n, 0.015, 13)
	samples := make([]stream.Sample, n)
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}
	skCfg := countsketch.Config{Tables: 5, Range: 2048, Seed: 29}
	snapRoot := t.TempDir()
	_, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 4,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: skCfg, T: n},
	}, server.Options{SnapshotDir: snapRoot})

	for lo := 0; lo < n; lo += 200 {
		resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(samples[lo:lo+200]))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
		}
		var ir server.IngestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Accepted != 200 || ir.First != lo+1 || ir.Last != lo+200 {
			t.Fatalf("ingest response %+v at lo=%d", ir, lo)
		}
	}

	var before server.TopKResponse
	if resp := getJSON(t, ts.URL+"/v1/topk?k=10&magnitude=1", &before); resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d", resp.StatusCode)
	}
	if before.Step != n || len(before.Pairs) != 10 {
		t.Fatalf("topk response step=%d pairs=%d", before.Step, len(before.Pairs))
	}

	var est server.EstimateResponse
	top := before.Pairs[0]
	if resp := getJSON(t, fmt.Sprintf("%s/v1/estimate?i=%d&j=%d", ts.URL, top.A, top.B), &est); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}
	if est.Estimate != top.Estimate {
		t.Fatalf("estimate %v != topk estimate %v", est.Estimate, top.Estimate)
	}

	// Per-request lane overrides: with no ingest in flight both lanes
	// serve identical answers on every query endpoint.
	for _, lane := range []string{"fresh", "fast"} {
		var fest server.EstimateResponse
		url := fmt.Sprintf("%s/v1/estimate?i=%d&j=%d&consistency=%s", ts.URL, top.A, top.B, lane)
		if resp := getJSON(t, url, &fest); resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate consistency=%s status %d", lane, resp.StatusCode)
		}
		if fest.Estimate != top.Estimate {
			t.Fatalf("consistency=%s estimate %v != %v", lane, fest.Estimate, top.Estimate)
		}
		var ftop server.TopKResponse
		if resp := getJSON(t, ts.URL+"/v1/topk?k=10&magnitude=1&consistency="+lane, &ftop); resp.StatusCode != http.StatusOK {
			t.Fatalf("topk consistency=%s status %d", lane, resp.StatusCode)
		}
		if len(ftop.Pairs) != len(before.Pairs) || ftop.Pairs[0] != before.Pairs[0] {
			t.Fatalf("consistency=%s topk diverges: %+v", lane, ftop.Pairs)
		}
		if resp := getJSON(t, ts.URL+"/v1/stats?consistency="+lane, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("stats consistency=%s status %d", lane, resp.StatusCode)
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/snapshot", server.SnapshotRequest{Dir: "checkpoint-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, body)
	}
	var snap server.SnapshotResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Step != n {
		t.Fatalf("snapshot at step %d, want %d", snap.Step, n)
	}
	if snap.Dir != filepath.Join(snapRoot, "checkpoint-1") {
		t.Fatalf("snapshot resolved to %q, want it confined under %q", snap.Dir, snapRoot)
	}

	resp, body = postJSON(t, ts.URL+"/v1/restore", server.SnapshotRequest{Dir: "checkpoint-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d: %s", resp.StatusCode, body)
	}

	var after server.TopKResponse
	if resp := getJSON(t, ts.URL+"/v1/topk?k=10&magnitude=1", &after); resp.StatusCode != http.StatusOK {
		t.Fatalf("topk-after status %d", resp.StatusCode)
	}
	if len(after.Pairs) != len(before.Pairs) {
		t.Fatalf("topk after restore has %d pairs, want %d", len(after.Pairs), len(before.Pairs))
	}
	for i := range after.Pairs {
		if after.Pairs[i] != before.Pairs[i] {
			t.Fatalf("topk[%d] changed across snapshot/restore: %+v vs %+v", i, before.Pairs[i], after.Pairs[i])
		}
	}

	var st server.StatsResponse
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if st.Manager.Step != n || st.Manager.Shards != 4 {
		t.Fatalf("stats manager %+v", st.Manager)
	}
	if st.Requests["ingest"].Count != 5 || st.Requests["ingest"].Errors != 0 {
		t.Fatalf("ingest metrics %+v", st.Requests["ingest"])
	}
	if st.Requests["topk"].Count < 2 {
		t.Fatalf("topk metrics %+v", st.Requests["topk"])
	}
}

// TestServerStatusMapping covers the error envelope: 400 on malformed
// input, 503 while warming, 409 past the horizon (fixed-horizon mode;
// TestServerUnboundedDecay covers the decay-mode counterpart, which
// never 409s).
func TestServerStatusMapping(t *testing.T) {
	const d, n = 30, 400
	ds := dataset.Simulation(d, n, 0.02, 5)
	samples := make([]stream.Sample, n)
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}
	skCfg := countsketch.Config{Tables: 4, Range: 1024, Seed: 3}
	_, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 2, Warmup: 100,
		Engine: shard.EngineSpec{Kind: shard.KindASCS, Sketch: skCfg, T: n},
	}, server.Options{SnapshotDir: t.TempDir()})

	if resp, _ := postJSON(t, ts.URL+"/v1/ingest", map[string]any{"samples": []any{}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/estimate?i=zero&j=1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad estimate params: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/topk?k=2000000000", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge k: status %d, want 400", resp.StatusCode)
	}
	// Unknown query lanes are the client's fault on every endpoint.
	for _, url := range []string{"/v1/topk?k=5&consistency=eventually", "/v1/estimate?i=0&j=1&consistency=0", "/v1/stats?consistency=slow"} {
		if resp := getJSON(t, ts.URL+url, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
	// Malformed samples are the client's fault, not a 500.
	if resp, _ := postJSON(t, ts.URL+"/v1/ingest", server.IngestRequest{
		Samples: []server.SampleJSON{{Idx: []int{5, 3}, Val: []float64{1, 2}}},
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("decreasing indices: status %d, want 400", resp.StatusCode)
	}
	// Snapshot/restore paths are confined to the configured directory.
	for _, dir := range []string{"/etc/passwd-dir", "../escape", ".."} {
		if resp, _ := postJSON(t, ts.URL+"/v1/snapshot", server.SnapshotRequest{Dir: dir}); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("snapshot dir %q: status %d, want 400", dir, resp.StatusCode)
		}
	}
	// Body cap: a server with a tiny MaxBodyBytes rejects with 413.
	_, tiny := newTestServer(t, shard.Config{
		Dim: d, Shards: 1,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: skCfg, T: n},
	}, server.Options{MaxBodyBytes: 16})
	if resp, _ := postJSON(t, tiny.URL+"/v1/ingest", server.IngestRequest{
		Samples: []server.SampleJSON{{Idx: []int{0, 1}, Val: []float64{1, 2}}},
	}); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// Warming: queries 503, ingest fine.
	if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(samples[:50])); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming ingest status %d: %s", resp.StatusCode, body)
	}
	if resp := getJSON(t, ts.URL+"/v1/topk?k=5", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming topk: status %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/snapshot", server.SnapshotRequest{Dir: "early"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming snapshot: status %d, want 503", resp.StatusCode)
	}

	// Complete the stream, then overrun the horizon.
	if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(samples[50:])); resp.StatusCode != http.StatusOK {
		t.Fatalf("full ingest status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/ingest", wireSamples(samples[:10])); resp.StatusCode != http.StatusConflict {
		t.Fatalf("horizon overrun: status %d, want 409", resp.StatusCode)
	}

	// Restore from a missing snapshot must not wedge the server.
	if resp, _ := postJSON(t, ts.URL+"/v1/restore", server.SnapshotRequest{Dir: "never-written"}); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("bogus restore: status %d, want 500", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/topk?k=5", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("server wedged after failed restore: status %d", resp.StatusCode)
	}
}

// TestServerUnboundedDecay is the decay-mode counterpart of the horizon
// checks: ingest far past the window never 409s, and /v1/stats reports
// window semantics (unbounded, window, lambda, n_eff) instead of a
// misleading finite horizon.
func TestServerUnboundedDecay(t *testing.T) {
	const d, window = 30, 150
	ds := dataset.Simulation(d, 4*window, 0.02, 19)
	samples := make([]stream.Sample, len(ds.Rows))
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}
	lambda := 1 - 1.0/window
	skCfg := countsketch.Config{Tables: 4, Range: 1024, Seed: 7}
	_, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 2,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: skCfg, T: window, Lambda: lambda},
	}, server.Options{SnapshotDir: t.TempDir()})

	// 4 windows of samples: every batch lands with 200, no 409 ever.
	for lo := 0; lo < len(samples); lo += 100 {
		hi := lo + 100
		if hi > len(samples) {
			hi = len(samples)
		}
		if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(samples[lo:hi])); resp.StatusCode != http.StatusOK {
			t.Fatalf("unbounded ingest [%d,%d): status %d: %s", lo, hi, resp.StatusCode, body)
		}
	}

	var st server.StatsResponse
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	m := st.Manager
	if m.Horizon != 0 {
		t.Fatalf("stats horizon = %d for an unbounded deployment, want 0", m.Horizon)
	}
	if !m.Unbounded || m.Window != window || m.Lambda != lambda {
		t.Fatalf("stats lack window semantics: unbounded=%v window=%d lambda=%v", m.Unbounded, m.Window, m.Lambda)
	}
	if m.Step != len(samples) {
		t.Fatalf("stats step = %d, want %d", m.Step, len(samples))
	}
	if m.NEff <= 0 || m.NEff > float64(window) {
		t.Fatalf("stats n_eff = %v, want in (0,%d]", m.NEff, window)
	}

	// Snapshot/restore keeps the unbounded deployment serving.
	if resp, body := postJSON(t, ts.URL+"/v1/snapshot", server.SnapshotRequest{Dir: "ck"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/restore", server.SnapshotRequest{Dir: "ck"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(samples[:50])); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restore ingest status %d: %s", resp.StatusCode, body)
	}
}
