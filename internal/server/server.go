// Package server exposes a shard.Manager over an HTTP/JSON API — the
// front door of the ascsd daemon. The API is deliberately small and
// stream-shaped: clients POST batches of sparse samples and, at any
// point while the stream is still flowing, GET live top-k correlation
// retrievals, point estimates, and serving stats; snapshots and
// restores round out the crash-recovery story.
//
//	POST /v1/ingest    {"samples":[{"idx":[0,3],"val":[1.5,-0.2]}, ...]}
//	GET  /v1/topk?k=25[&magnitude=1][&consistency=fresh|fast]
//	GET  /v1/estimate?i=3&j=7[&consistency=fresh|fast]
//	GET  /v1/stats[?consistency=fresh|fast]
//	POST /v1/snapshot  {"dir":"name"}   (optional local name under the configured snapshot dir)
//	POST /v1/restore   {"dir":"name"}
//
// The consistency query parameter overrides the deployment's default
// query lane per request: "fresh" rides the per-shard ingest FIFO (the
// answer observes every batch ingested before it, but waits behind the
// whole queue under ingest pressure), "fast" rides the bounded
// priority lane (served ahead of queued ingest batches — bounded tail
// latency, bounded staleness). Snapshots always cut fresh.
//
// Restore swaps in a freshly restored manager atomically; requests in
// flight against the old manager complete (or observe ErrClosed →
// 503) before it is torn down.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// Options configures a Server.
type Options struct {
	// SnapshotDir is the default directory for POST /v1/snapshot and
	// /v1/restore requests that omit "dir".
	SnapshotDir string
	// MaxBatch caps the samples accepted per ingest request (default
	// 4096; oversized requests get 400).
	MaxBatch int
	// MaxBodyBytes caps the ingest request body (default 64 MiB;
	// oversized bodies get 413 before they can balloon memory).
	MaxBodyBytes int64
	// MaxTopK caps the k accepted by /v1/topk (default 10000: the
	// retrieval fan-out allocates proportionally to k·shards, so an
	// unauthenticated request must not pick it freely).
	MaxTopK int
	// TraceEvery samples 1-in-N requests for span tracing: the sampled
	// request's queue-wait / shard-apply / merge spans are collected and
	// emitted as one structured log line. 0 disables tracing entirely
	// (no per-request trace state is allocated either way for the
	// unsampled majority).
	TraceEvery int
	// TraceLogger receives the sampled span logs (default
	// slog.Default()).
	TraceLogger *slog.Logger

	// QueryTimeout bounds each query request (topk/estimate/stats) end
	// to end: past it the manager abandons the queued work race-free and
	// the request gets 503. 0 leaves queries bounded only by client
	// disconnect (the request context still cancels abandoned waits).
	QueryTimeout time.Duration
	// IngestTimeout bounds each ingest request's delivery into the
	// shard FIFOs; expiry abandons the undelivered remainder (counted)
	// and returns 503. 0 = client-disconnect bound only.
	IngestTimeout time.Duration
	// MaxTimeout caps the per-request `timeout` query parameter
	// override (default 30s) so a client cannot park requests for
	// arbitrary durations.
	MaxTimeout time.Duration
	// RestoreOverrides configures managers created by POST /v1/restore
	// (admission policy, fault injector) so a restored daemon keeps its
	// deployment knobs instead of silently reverting to the manifest's.
	RestoreOverrides shard.RestoreOverrides
}

// Server is the HTTP facade over a shard.Manager.
type Server struct {
	opts    Options
	mgr     atomic.Pointer[shard.Manager]
	mux     *http.ServeMux
	metrics *metrics
	sampler *obs.Sampler
	log     *slog.Logger
	// swapMu serializes restore swaps (and final Close) so two
	// concurrent restores cannot interleave their close/swap pairs.
	swapMu sync.Mutex

	// Robustness accounting, reconciled by the chaos harness against
	// the manager's own counters (shed requests == 429s served).
	shed429       atomic.Uint64
	deadline503   atomic.Uint64
	retryAfterSec atomic.Int64 // last Retry-After advertised, seconds

	// Tiered-serving accounting: queries that took the folded-tolerant
	// read path (?resolution=folded, or the governor degrading default
	// reads), and how many of those were answered from the top-k memo
	// without a shard fan-out.
	foldedQueries atomic.Uint64
	cacheHits     atomic.Uint64
}

// New wraps mgr. The caller keeps ownership of nothing: Close tears
// down the currently installed manager.
func New(mgr *shard.Manager, opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 4096
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	if opts.MaxTopK <= 0 {
		opts.MaxTopK = 10_000
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = 30 * time.Second
	}
	s := &Server{opts: opts, metrics: newMetrics()}
	if opts.TraceEvery > 0 {
		s.sampler = obs.NewSampler(opts.TraceEvery)
		s.log = opts.TraceLogger
		if s.log == nil {
			s.log = slog.Default()
		}
	}
	s.mgr.Store(mgr)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.instrument("ingest", s.handleIngest))
	mux.HandleFunc("GET /v1/topk", s.instrument("topk", s.handleTopK))
	mux.HandleFunc("GET /v1/estimate", s.instrument("estimate", s.handleEstimate))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("POST /v1/snapshot", s.instrument("snapshot", s.handleSnapshot))
	mux.HandleFunc("POST /v1/restore", s.instrument("restore", s.handleRestore))
	mux.Handle("GET /metrics", s.MetricsHandler())
	s.mux = mux
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager returns the currently installed manager.
func (s *Server) Manager() *shard.Manager { return s.mgr.Load() }

// Close tears down the installed manager (draining its workers).
func (s *Server) Close() error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	return s.mgr.Load().Close()
}

// httpError wraps an error with the status it should surface as.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// statusOf maps manager errors onto HTTP statuses via the sketchapi
// error taxonomy: overload class → 429 (with Retry-After, set by
// instrument), deadline class → 503, everything lifecycle-unavailable
// → 503, integrity failures → 500 (the restore failed closed; the old
// state keeps serving).
func statusOf(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, sketchapi.ErrOverload):
		return http.StatusTooManyRequests
	case errors.Is(err, sketchapi.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, shard.ErrWarmingUp), errors.Is(err, shard.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, shard.ErrHorizon):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// isDeadline reports whether err is a deadline-class failure (for the
// shed-vs-deadline split in the counters; both surface as 503).
func isDeadline(err error) bool {
	return errors.Is(err, sketchapi.ErrDeadline) || errors.Is(err, context.DeadlineExceeded)
}

// requestCtx derives a handler's context: the request context (so a
// client disconnect cancels queued work even without a configured
// timeout) bounded by def, overridable per request with
// ?timeout=DURATION up to Options.MaxTimeout.
func (s *Server) requestCtx(r *http.Request, def time.Duration) (context.Context, context.CancelFunc, error) {
	d := def
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		v, err := time.ParseDuration(raw)
		if err != nil || v <= 0 {
			return nil, nil, badRequest("invalid timeout %q", raw)
		}
		d = v
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// qtKey carries the sampled request's shard span collector through the
// handler context; handlers thread it into the manager's traced query
// variants (a nil collector is a no-op there).
type qtKey struct{}

// queryTraceFrom returns the request's span collector, or nil when the
// request is not sampled.
func queryTraceFrom(ctx context.Context) *shard.QueryTrace {
	qt, _ := ctx.Value(qtKey{}).(*shard.QueryTrace)
	return qt
}

// instrument adapts a JSON handler, recording latency and errors and
// rendering the uniform error envelope. Handlers receive w only to
// thread it into body-size limiting; instrument owns all writes.
//
// Request identity and tracing: every response echoes the caller's
// X-Request-ID (generating one when absent), so a request can be
// correlated across client and server logs. When Options.TraceEvery is
// set, 1-in-N requests additionally collect span timings — total route
// time, worst per-shard queue wait, worst on-worker apply, cross-shard
// merge — and emit them as one structured log line keyed by the
// request id.
func (s *Server) instrument(name string, fn func(w http.ResponseWriter, r *http.Request) (any, error)) http.HandlerFunc {
	em := s.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		var qt *shard.QueryTrace
		if s.sampler.Sample() {
			qt = &shard.QueryTrace{}
			r = r.WithContext(context.WithValue(r.Context(), qtKey{}, qt))
		}
		resp, err := fn(w, r)
		total := time.Since(start)
		em.observe(total, err != nil)
		w.Header().Set("Content-Type", "application/json")
		status := http.StatusOK
		if err != nil {
			status = statusOf(err)
			switch {
			case status == http.StatusTooManyRequests:
				// Advertise how long the shed producer should back off,
				// derived from queue depth × observed drain rate, clamped
				// to [1s, 60s] and whole seconds per RFC 9110 §10.2.3.
				ra := int64(math.Ceil(s.mgr.Load().RetryAfter().Seconds()))
				ra = min(max(ra, 1), 60)
				s.retryAfterSec.Store(ra)
				s.shed429.Add(1)
				w.Header().Set("Retry-After", strconv.FormatInt(ra, 10))
			case status == http.StatusServiceUnavailable && isDeadline(err):
				s.deadline503.Add(1)
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		} else {
			json.NewEncoder(w).Encode(resp)
		}
		if qt != nil {
			// One span record per stage, in request order — the trace's
			// span anatomy documented in DESIGN.md.
			tr := obs.NewTrace(id)
			tr.Span("route", total)
			tr.Span("queue_wait", qt.QueueWait)
			tr.Span("shard_apply", qt.Apply)
			tr.Span("merge", qt.Merge)
			attrs := []slog.Attr{
				slog.String("request_id", tr.ID),
				slog.String("route", name),
				slog.Int("status", status),
			}
			for _, sp := range tr.Spans() {
				attrs = append(attrs, slog.Duration(sp.Name, sp.D))
			}
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "trace", attrs...)
		}
	}
}

// SampleJSON is the wire form of one sparse sample.
type SampleJSON struct {
	Idx []int     `json:"idx"`
	Val []float64 `json:"val"`
}

// IngestRequest is the body of POST /v1/ingest.
type IngestRequest struct {
	Samples []SampleJSON `json:"samples"`
}

// IngestResponse reports the step range the batch occupies.
type IngestResponse struct {
	Accepted int  `json:"accepted"`
	First    int  `json:"first"`
	Last     int  `json:"last"`
	Warming  bool `json:"warming"`
}

// decodeBody JSON-decodes at most limit bytes of the request body into
// v: 413 past the cap, 400 on malformed JSON. Every body-carrying
// endpoint goes through it so none can balloon memory; the
// ResponseWriter lets net/http close the connection on overrun instead
// of draining the doomed upload.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				err: fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return badRequest("decoding body: %v", err)
	}
	return nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) (any, error) {
	var req IngestRequest
	if err := decodeBody(w, r, s.opts.MaxBodyBytes, &req); err != nil {
		return nil, err
	}
	if len(req.Samples) == 0 {
		return nil, badRequest("ingest body has no samples")
	}
	if len(req.Samples) > s.opts.MaxBatch {
		return nil, badRequest("batch of %d samples exceeds limit %d", len(req.Samples), s.opts.MaxBatch)
	}
	samples := make([]stream.Sample, len(req.Samples))
	for i, sj := range req.Samples {
		samples[i] = stream.Sample{Idx: sj.Idx, Val: sj.Val}
	}
	mgr := s.mgr.Load()
	ctx, cancel, err := s.requestCtx(r, s.opts.IngestTimeout)
	if err != nil {
		return nil, err
	}
	defer cancel()
	first, last, err := mgr.IngestCtx(ctx, samples)
	if err != nil {
		if errors.Is(err, shard.ErrInvalidSample) {
			return nil, badRequest("%v", err)
		}
		// Sentinels map via statusOf; anything else (e.g. a warm-up
		// schedule derivation failure) is a server-side 500, not the
		// client's fault.
		return nil, err
	}
	return IngestResponse{Accepted: len(samples), First: first, Last: last, Warming: mgr.Warming()}, nil
}

// PairJSON is the wire form of one retrieved pair.
type PairJSON struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	Key      uint64  `json:"key"`
	Estimate float64 `json:"estimate"`
}

// TopKResponse is the body of GET /v1/topk.
type TopKResponse struct {
	Step  int        `json:"step"`
	Pairs []PairJSON `json:"pairs"`
	// Resolution reports what actually served the answer: "full", or
	// "folded" when the response came from the memoized top-k or from
	// shards currently folded by the idle policy.
	Resolution string `json:"resolution,omitempty"`
	// Cached marks answers served from the manager's top-k memo
	// without a shard fan-out (folded-tolerant reads only).
	Cached bool `json:"cached,omitempty"`
}

// queryLane parses the optional consistency override ("" = the
// deployment default lane).
func queryLane(r *http.Request) (shard.Consistency, error) {
	c, err := shard.ParseConsistency(r.URL.Query().Get("consistency"))
	if err != nil {
		return "", badRequest("%v", err)
	}
	return c, nil
}

// queryResolution parses the optional ?resolution=full|folded knob
// ("" = full, except the overload governor may degrade it — see
// foldedTolerant).
func queryResolution(r *http.Request) (string, error) {
	switch v := r.URL.Query().Get("resolution"); v {
	case "", "full", "folded":
		return v, nil
	default:
		return "", badRequest("unknown resolution %q (want %q or %q)", v, "full", "folded")
	}
}

// foldedTolerant resolves the resolution knob against the overload
// governor: an explicit "folded" opts into memoized/folded answers,
// an explicit "full" always bypasses them, and the unspecified
// default follows the governor — under overload, default reads
// degrade onto the folded tier instead of adding fan-out load.
func foldedTolerant(res string, mgr *shard.Manager) bool {
	return res == "folded" || (res == "" && mgr.Degraded())
}

// swapRetry decides whether a query that failed with the closed-manager
// error should be retried: a restore can swap the manager out mid-query,
// and the error then belongs to the outgoing instance, not the
// deployment — the swapped-in survivor can serve it. Queries are
// read-only, so the retry is safe; the attempt bound keeps a swap storm
// from pinning requests.
func (s *Server) swapRetry(mgr *shard.Manager, err error, attempt int) (*shard.Manager, bool) {
	if err == nil || !errors.Is(err, shard.ErrClosed) || attempt >= 3 {
		return nil, false
	}
	if cur := s.mgr.Load(); cur != mgr {
		return cur, true
	}
	return nil, false
}

func (s *Server) handleTopK(_ http.ResponseWriter, r *http.Request) (any, error) {
	k := 25
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			return nil, badRequest("invalid k %q", raw)
		}
		if v > s.opts.MaxTopK {
			return nil, badRequest("k=%d exceeds limit %d", v, s.opts.MaxTopK)
		}
		k = v
	}
	lane, err := queryLane(r)
	if err != nil {
		return nil, err
	}
	res, err := queryResolution(r)
	if err != nil {
		return nil, err
	}
	mgr := s.mgr.Load()
	mag := r.URL.Query().Get("magnitude")
	magnitude := mag == "1" || mag == "true"
	ctx, cancel, err := s.requestCtx(r, s.opts.QueryTimeout)
	if err != nil {
		return nil, err
	}
	defer cancel()
	if foldedTolerant(res, mgr) {
		s.foldedQueries.Add(1)
	}
	var pairs []shard.PairEstimate
	var cached bool
	for attempt := 0; ; attempt++ {
		if foldedTolerant(res, mgr) {
			pairs, cached, err = mgr.TopKCachedT(ctx, k, lane, magnitude, queryTraceFrom(r.Context()))
			if cached {
				s.cacheHits.Add(1)
			}
		} else {
			pairs, err = mgr.TopKT(ctx, k, lane, magnitude, queryTraceFrom(r.Context()))
		}
		if next, ok := s.swapRetry(mgr, err, attempt); ok {
			mgr = next
			continue
		}
		break
	}
	if err != nil {
		return nil, err
	}
	resolution := "full"
	if cached || mgr.MaxShardFoldLevel() > 0 {
		resolution = "folded"
	}
	resp := TopKResponse{Step: mgr.Step(), Pairs: make([]PairJSON, len(pairs)), Resolution: resolution, Cached: cached}
	for i, p := range pairs {
		resp.Pairs[i] = PairJSON{A: p.A, B: p.B, Key: p.Key, Estimate: p.Estimate}
	}
	return resp, nil
}

// EstimateResponse is the body of GET /v1/estimate.
type EstimateResponse struct {
	I        int     `json:"i"`
	J        int     `json:"j"`
	Step     int     `json:"step"`
	Estimate float64 `json:"estimate"`
	// Resolution reports the serving tier: "folded" while any shard
	// serves at a reduced (idle-folded) table width, else "full". A
	// folded estimate is still unbiased — it reads the same cells a
	// coarser sketch would have — just with more collision noise.
	Resolution string `json:"resolution,omitempty"`
}

func (s *Server) handleEstimate(_ http.ResponseWriter, r *http.Request) (any, error) {
	q := r.URL.Query()
	i, errI := strconv.Atoi(q.Get("i"))
	j, errJ := strconv.Atoi(q.Get("j"))
	if errI != nil || errJ != nil {
		return nil, badRequest("estimate needs integer query params i and j")
	}
	lane, err := queryLane(r)
	if err != nil {
		return nil, err
	}
	res, err := queryResolution(r)
	if err != nil {
		return nil, err
	}
	mgr := s.mgr.Load()
	if foldedTolerant(res, mgr) {
		s.foldedQueries.Add(1)
	}
	ctx, cancel, err := s.requestCtx(r, s.opts.QueryTimeout)
	if err != nil {
		return nil, err
	}
	defer cancel()
	var est float64
	for attempt := 0; ; attempt++ {
		est, err = mgr.EstimateT(ctx, i, j, lane, queryTraceFrom(r.Context()))
		if next, ok := s.swapRetry(mgr, err, attempt); ok {
			mgr = next
			continue
		}
		break
	}
	if err != nil {
		if errors.Is(err, shard.ErrWarmingUp) || errors.Is(err, shard.ErrClosed) || isDeadline(err) {
			return nil, err
		}
		return nil, badRequest("%v", err)
	}
	resolution := "full"
	if mgr.MaxShardFoldLevel() > 0 {
		resolution = "folded"
	}
	return EstimateResponse{I: i, J: j, Step: mgr.Step(), Estimate: est, Resolution: resolution}, nil
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Manager  shard.Stats              `json:"manager"`
	Requests map[string]EndpointStats `json:"requests"`
}

func (s *Server) handleStats(_ http.ResponseWriter, r *http.Request) (any, error) {
	lane, err := queryLane(r)
	if err != nil {
		return nil, err
	}
	ctx, cancel, err := s.requestCtx(r, s.opts.QueryTimeout)
	if err != nil {
		return nil, err
	}
	defer cancel()
	st, err := s.mgr.Load().StatsT(ctx, lane, queryTraceFrom(r.Context()))
	if err != nil {
		return nil, err
	}
	return StatsResponse{Manager: st, Requests: s.metrics.snapshot()}, nil
}

// SnapshotRequest selects the snapshot/restore directory: empty means
// the server's configured default; otherwise a local (relative,
// non-escaping) name resolved under it. Clients never name absolute
// filesystem paths — an unauthenticated endpoint that wrote and
// garbage-collected arbitrary directories would be a remote
// file-create/delete primitive.
type SnapshotRequest struct {
	Dir string `json:"dir"`
}

// SnapshotResponse is the body of POST /v1/snapshot and /v1/restore.
type SnapshotResponse struct {
	Dir  string `json:"dir"`
	Step int    `json:"step"`
}

func (s *Server) snapshotDir(w http.ResponseWriter, r *http.Request) (string, error) {
	var req SnapshotRequest
	if r.ContentLength != 0 {
		// A directory name fits in well under a MiB; anything bigger is
		// not a snapshot request.
		if err := decodeBody(w, r, 1<<20, &req); err != nil {
			return "", err
		}
	}
	if s.opts.SnapshotDir == "" {
		return "", badRequest("snapshots are disabled: no snapshot dir configured")
	}
	if req.Dir == "" {
		return s.opts.SnapshotDir, nil
	}
	if !filepath.IsLocal(req.Dir) {
		return "", badRequest("dir %q must be a local name under the configured snapshot dir", req.Dir)
	}
	return filepath.Join(s.opts.SnapshotDir, req.Dir), nil
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) (any, error) {
	dir, err := s.snapshotDir(w, r)
	if err != nil {
		return nil, err
	}
	mgr := s.mgr.Load()
	if err := mgr.Snapshot(dir); err != nil {
		return nil, err
	}
	return SnapshotResponse{Dir: dir, Step: mgr.Step()}, nil
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) (any, error) {
	dir, err := s.snapshotDir(w, r)
	if err != nil {
		return nil, err
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	o := s.opts.RestoreOverrides
	if o.WALDir != "" {
		// The live manager's group-commit goroutine owns the WAL
		// directory until the swap completes, and two logs in one
		// directory would collide on the segment index. WAL recovery is
		// a boot-time path (ascsd -restore); the runtime swap serves the
		// snapshot as-is and the swapped-in manager runs undurably.
		slog.Warn("restore via API does not re-arm the WAL; restart the daemon for durable ingest", "wal_dir", o.WALDir)
		o.WALDir, o.WALSync, o.WALSegmentBytes = "", "", 0
	}
	restored, err := shard.RestoreWith(dir, o)
	if err != nil {
		// Fail closed: the old manager was never swapped out and keeps
		// serving; corrupt snapshots surface as 500 with the checksum
		// detail in the envelope.
		return nil, fmt.Errorf("restoring %s: %w", dir, err)
	}
	old := s.mgr.Swap(restored)
	if err := old.Close(); err != nil {
		return nil, err
	}
	return SnapshotResponse{Dir: dir, Step: restored.Step()}, nil
}
