package server

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// ringSize bounds the per-endpoint latency window the percentiles are
// computed over: recent behaviour, constant memory.
const ringSize = 4096

// endpointMetrics aggregates one route's traffic. A plain mutex is fine
// here — the cost of serving a request dwarfs a counter update, and the
// sketch hot path never touches this.
type endpointMetrics struct {
	mu     sync.Mutex
	count  uint64
	errors uint64
	sumMS  float64
	ring   [ringSize]float64
	filled int
	pos    int
}

func (em *endpointMetrics) observe(d time.Duration, isErr bool) {
	ms := float64(d) / float64(time.Millisecond)
	em.mu.Lock()
	em.count++
	if isErr {
		em.errors++
	}
	em.sumMS += ms
	em.ring[em.pos] = ms
	em.pos = (em.pos + 1) % ringSize
	if em.filled < ringSize {
		em.filled++
	}
	em.mu.Unlock()
}

// EndpointStats is the JSON view of one route's metrics. MeanMS, P50MS
// and P99MS all cover the same window — the last Window requests
// (Window ≤ 4096) — so they are mutually comparable; LifetimeMeanMS is
// the only lifetime aggregate, labeled as such. Pre-lane versions
// reported a lifetime mean next to windowed percentiles under one
// roof, which made a latency regression invisible until it had paid
// off the history.
type EndpointStats struct {
	Count          uint64  `json:"count"`
	Errors         uint64  `json:"errors"`
	Window         int     `json:"window"`
	MeanMS         float64 `json:"mean_ms"`
	LifetimeMeanMS float64 `json:"lifetime_mean_ms"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
}

func (em *endpointMetrics) snapshot() EndpointStats {
	em.mu.Lock()
	defer em.mu.Unlock()
	st := EndpointStats{Count: em.count, Errors: em.errors, Window: em.filled}
	if em.count > 0 {
		st.LifetimeMeanMS = em.sumMS / float64(em.count)
	}
	if em.filled > 0 {
		window := append([]float64(nil), em.ring[:em.filled]...)
		var sum float64
		for _, v := range window {
			sum += v
		}
		st.MeanMS = sum / float64(em.filled)
		st.P50MS = stats.Quantile(window, 0.5)
		st.P99MS = stats.Quantile(window, 0.99)
	}
	return st
}

// metrics holds one endpointMetrics per route.
type metrics struct {
	mu  sync.Mutex
	per map[string]*endpointMetrics
}

func newMetrics() *metrics {
	return &metrics{per: make(map[string]*endpointMetrics)}
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.per[name]
	if !ok {
		em = &endpointMetrics{}
		m.per[name] = em
	}
	return em
}

func (m *metrics) snapshot() map[string]EndpointStats {
	m.mu.Lock()
	names := make([]string, 0, len(m.per))
	ems := make([]*endpointMetrics, 0, len(m.per))
	for name, em := range m.per {
		names = append(names, name)
		ems = append(ems, em)
	}
	m.mu.Unlock()
	out := make(map[string]EndpointStats, len(names))
	for i, name := range names {
		out[name] = ems[i].snapshot()
	}
	return out
}
