package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// endpointMetrics aggregates one route's traffic on a lock-free
// log2-bucketed latency histogram (nanoseconds). The previous design
// kept a mutexed 4096-slot ring and copied + sorted it on every
// /v1/stats call — a scrape cost that grew with scrape *and* request
// traffic; the histogram makes observe two atomic adds and snapshot an
// alloc-free 64-slot copy (BenchmarkEndpointMetricsSnapshot pins it).
type endpointMetrics struct {
	errors atomic.Uint64
	hist   obs.Hist
}

func (em *endpointMetrics) observe(d time.Duration, isErr bool) {
	if isErr {
		em.errors.Add(1)
	}
	em.hist.Observe(int64(d))
}

// EndpointStats is the JSON view of one route's metrics, cumulative
// since process start. The mean is exact; P50MS/P99MS are read off the
// log2 histogram by linear interpolation inside the holding bucket, so
// they carry at most one-octave resolution error — the price of a
// bounded, lock-free, merge-exact representation (the same buckets are
// exposed raw on /metrics for cross-scrape rate math).
type EndpointStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// snapshot reads the histogram through the caller's scratch HistSnap
// (keeping the read path alloc-free) and derives the JSON view.
func (em *endpointMetrics) snapshot(hs *obs.HistSnap) EndpointStats {
	em.hist.Snapshot(hs)
	st := EndpointStats{Count: hs.Count, Errors: em.errors.Load()}
	if hs.Count > 0 {
		st.MeanMS = hs.Mean() / float64(time.Millisecond)
		st.P50MS = hs.Quantile(0.5) / float64(time.Millisecond)
		st.P99MS = hs.Quantile(0.99) / float64(time.Millisecond)
	}
	return st
}

// metrics holds one endpointMetrics per route. The per-route structs
// are resolved once at handler registration; the map is read-only
// afterwards, so lookups during serving take no lock (the mutex guards
// the registration window only).
type metrics struct {
	mu  sync.Mutex
	per map[string]*endpointMetrics
}

func newMetrics() *metrics {
	return &metrics{per: make(map[string]*endpointMetrics)}
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.per[name]
	if !ok {
		em = &endpointMetrics{}
		m.per[name] = em
	}
	return em
}

// names returns the registered route names, sorted — the stable
// iteration order the Prometheus exposition needs.
func (m *metrics) names() []string {
	m.mu.Lock()
	out := make([]string, 0, len(m.per))
	for name := range m.per {
		out = append(out, name)
	}
	m.mu.Unlock()
	sort.Strings(out)
	return out
}

func (m *metrics) snapshot() map[string]EndpointStats {
	var hs obs.HistSnap
	out := make(map[string]EndpointStats, len(m.per))
	for _, name := range m.names() {
		out[name] = m.endpoint(name).snapshot(&hs)
	}
	return out
}
