package server_test

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/countsketch"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
)

func resSamples(d, n int) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		a := i % (d - 2)
		out[i] = stream.Sample{Idx: []int{a, a + 1, a + 2}, Val: []float64{2, -1, 3}}
	}
	return out
}

// TestResolutionKnob pins the tiered-serving HTTP contract: the
// ?resolution knob validates, explicit folded reads ride the memoized
// path (second identical query is a cache hit), explicit full reads
// always fan out, and the response labels the tier that actually served.
func TestResolutionKnob(t *testing.T) {
	const d, n = 20, 300
	_, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 2,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 41}, T: 10_000},
	}, server.Options{})

	if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(resSamples(d, n))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}

	// Unknown resolution values are rejected.
	if resp := getJSON(t, ts.URL+"/v1/topk?k=5&resolution=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("resolution=bogus: status %d, want 400", resp.StatusCode)
	}

	// Default reads on a healthy deployment serve full resolution.
	var full server.TopKResponse
	if resp := getJSON(t, ts.URL+"/v1/topk?k=5", &full); resp.StatusCode != http.StatusOK {
		t.Fatalf("default topk status %d", resp.StatusCode)
	}
	if full.Resolution != "full" || full.Cached {
		t.Fatalf("default read: resolution=%q cached=%v, want full/false", full.Resolution, full.Cached)
	}

	// An explicit folded read opts onto the memoized tier: the first
	// warms the memo, the repeat is a cache hit with identical pairs.
	var warm, hit server.TopKResponse
	if resp := getJSON(t, ts.URL+"/v1/topk?k=5&resolution=folded", &warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("folded topk status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/topk?k=5&resolution=folded", &hit); resp.StatusCode != http.StatusOK {
		t.Fatalf("folded topk repeat status %d", resp.StatusCode)
	}
	if !hit.Cached || hit.Resolution != "folded" {
		t.Fatalf("repeat folded read: resolution=%q cached=%v, want folded/true", hit.Resolution, hit.Cached)
	}
	if len(warm.Pairs) != len(hit.Pairs) {
		t.Fatalf("memo changed the answer: %d vs %d pairs", len(warm.Pairs), len(hit.Pairs))
	}
	for i := range warm.Pairs {
		if warm.Pairs[i] != hit.Pairs[i] {
			t.Fatalf("memo pair %d differs: %+v vs %+v", i, warm.Pairs[i], hit.Pairs[i])
		}
	}

	// Explicit full bypasses the memo even when it is warm.
	var forced server.TopKResponse
	if resp := getJSON(t, ts.URL+"/v1/topk?k=5&resolution=full", &forced); resp.StatusCode != http.StatusOK {
		t.Fatalf("resolution=full status %d", resp.StatusCode)
	}
	if forced.Cached {
		t.Fatal("resolution=full served from the memo")
	}

	// Estimate carries the tier label too, and validates the knob.
	if resp := getJSON(t, ts.URL+"/v1/estimate?i=0&j=1&resolution=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("estimate resolution=bogus: status %d, want 400", resp.StatusCode)
	}
	var est server.EstimateResponse
	if resp := getJSON(t, ts.URL+"/v1/estimate?i=0&j=1&resolution=folded", &est); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}
	if est.Resolution != "full" {
		t.Fatalf("estimate resolution %q with no folded shards, want full", est.Resolution)
	}

	// The folded-tolerant traffic shows up on /metrics.
	page := scrape(t, ts.URL)
	if !strings.Contains(page, "ascs_http_folded_queries_total 3") {
		t.Errorf("folded query counter missing or wrong:\n%s", grepLine(page, "ascs_http_folded_queries_total"))
	}
	// Both folded top-k reads hit: the default full read already warmed
	// the memo (memoization is unconditional; only consulting is gated).
	if !strings.Contains(page, "ascs_topk_cache_hits_total 2") {
		t.Errorf("cache hit counter missing or wrong:\n%s", grepLine(page, "ascs_topk_cache_hits_total"))
	}
}

// TestResolutionFoldedShards pins the response label against live fold
// state: once the idle policy folds the shards, even a default read
// reports the folded tier.
func TestResolutionFoldedShards(t *testing.T) {
	const d = 20
	srv, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 2,
		Engine:        shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 43}, T: 10_000},
		FoldIdle:      5 * time.Millisecond,
		FoldIdleTicks: 1,
		FoldLevels:    2,
	}, server.Options{})

	if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(resSamples(d, 200))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Manager().MaxShardFoldLevel() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Manager().MaxShardFoldLevel() == 0 {
		t.Fatal("shards never folded")
	}

	var resp server.TopKResponse
	if r := getJSON(t, ts.URL+"/v1/topk?k=5", &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d", r.StatusCode)
	}
	if resp.Resolution != "folded" {
		t.Fatalf("topk over folded shards: resolution %q, want folded", resp.Resolution)
	}
	var est server.EstimateResponse
	if r := getJSON(t, ts.URL+"/v1/estimate?i=0&j=1", &est); r.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d", r.StatusCode)
	}
	if est.Resolution != "folded" {
		t.Fatalf("estimate over folded shards: resolution %q, want folded", est.Resolution)
	}
}

// grepLine extracts the exposition lines containing needle, for
// readable failure messages.
func grepLine(page, needle string) string {
	var out []string
	for _, line := range strings.Split(page, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
