package server_test

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
)

func promSamples(d, n int) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		a := i % (d - 2)
		out[i] = stream.Sample{Idx: []int{a, a + 1, a + 2}, Val: []float64{1, -0.5, 2}}
	}
	return out
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExposition is the golden test of the /metrics page: after
// real traffic the page must pass the internal Prometheus-format
// linter (valid comments, contiguous families, cumulative histograms,
// no duplicate series) and expose the acceptance-criteria families
// with stable names.
func TestMetricsExposition(t *testing.T) {
	const d, n = 20, 400
	_, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 3,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 5}, T: 10_000},
	}, server.Options{})

	resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(promSamples(d, n)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	if resp := getJSON(t, ts.URL+"/v1/topk?k=5&consistency=fast", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d", resp.StatusCode)
	}

	page := scrape(t, ts.URL)
	if err := obs.Lint(strings.NewReader(page)); err != nil {
		t.Fatalf("exposition fails lint: %v\npage:\n%s", err, page)
	}

	// The acceptance-criteria metrics, by their stable names.
	for _, want := range []string{
		`ascs_gate_admitted_mass_total{shard="0"}`,
		`ascs_gate_rejected_mass_total{shard="2"}`,
		`ascs_shard_queue_high_water{shard="1"}`,
		`ascs_shard_queue_depth{shard="0",lane="ingest"}`,
		`ascs_wave_fallback_total{shard="0",cause="conflict"}`,
		`ascs_shard_lane_jumps_total{shard="0"}`,
		`ascs_shard_ingest_wait_seconds_bucket{shard="0",le="+Inf"}`,
		`ascs_http_request_duration_seconds_bucket{route="ingest",le="+Inf"}`,
		`ascs_http_requests_total{route="topk"}`,
		`ascs_shard_admission_rejects_total{shard="0"}`,
		`ascs_shard_deadline_abandons_total{shard="0"}`,
		"# TYPE ascs_shed_requests_total counter",
		"# TYPE ascs_deadline_ops_total counter",
		"# TYPE ascs_deadline_queries_total counter",
		"# TYPE ascs_degraded gauge",
		"# TYPE ascs_degrade_transitions_total counter",
		"# TYPE ascs_degraded_queries_total counter",
		"# TYPE ascs_retry_after_seconds gauge",
		"# TYPE ascs_http_shed_total counter",
		"# TYPE ascs_http_deadline_exceeded_total counter",
		"# TYPE ascs_shard_apply_seconds histogram",
		"# TYPE ascs_shard_ops_total counter",
		"# TYPE ascs_shard_fold_level gauge",
		"# TYPE ascs_shard_folds_total counter",
		"# TYPE ascs_shard_unfolds_total counter",
		"# TYPE ascs_http_folded_queries_total counter",
		"# TYPE ascs_topk_cache_hits_total counter",
		"# TYPE ascs_snapshot_last_bytes gauge",
		"# TYPE ascs_snapshots_total counter",
		`ascs_shard_fold_level{shard="0"}`,
		`ascs_shard_folds_total{shard="1"}`,
		"ascs_step 400",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page is missing %q", want)
		}
	}

	// Cross-check a counter against the structured stats: the parsed
	// ops family must sum to the ops the ingest produced (3 pair ops
	// per sample).
	fams, err := obs.Parse(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams["ascs_shard_ops_total"].Sum; got != float64(3*n) {
		t.Errorf("ascs_shard_ops_total sums to %v, want %d", got, 3*n)
	}
	if fams["ascs_http_requests_total"].Sum < 2 {
		t.Errorf("http requests total %v, want ≥ 2", fams["ascs_http_requests_total"].Sum)
	}
}

// TestMetricsScrapeUnderIngest hammers /metrics while ingest and
// queries are in flight — the wait-free-scrape claim under the race
// detector. Every page must still lint.
func TestMetricsScrapeUnderIngest(t *testing.T) {
	const d = 20
	_, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 4,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 6}, T: 1 << 20},
	}, server.Options{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		batch := promSamples(d, 50)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(batch)); resp.StatusCode != http.StatusOK {
				t.Errorf("ingest status %d: %s", resp.StatusCode, body)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if resp := getJSON(t, ts.URL+"/v1/topk?k=3&consistency=fast", nil); resp.StatusCode != http.StatusOK {
				t.Errorf("topk status %d", resp.StatusCode)
				return
			}
		}
	}()
	for i := 0; i < 25; i++ {
		page := scrape(t, ts.URL)
		if err := obs.Lint(strings.NewReader(page)); err != nil {
			t.Fatalf("scrape %d fails lint under ingest: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRequestIDAndTraceSampling pins the tracing contract: every
// response carries an X-Request-ID (echoed when supplied, generated
// otherwise), and with TraceEvery=1 each request emits one structured
// span log with the four span fields.
func TestRequestIDAndTraceSampling(t *testing.T) {
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: &logMu, w: &logBuf}, nil))

	const d = 16
	_, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 2,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 3, Range: 256, Seed: 7}, T: 10_000},
	}, server.Options{TraceEvery: 1, TraceLogger: logger})

	if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(promSamples(d, 20))); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}

	// Echo: a supplied id comes back verbatim.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/topk?k=3", nil)
	req.Header.Set("X-Request-ID", "client-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-supplied-42" {
		t.Fatalf("request id not echoed: %q", got)
	}

	// Generation: an absent id yields a fresh one.
	resp = getJSON(t, ts.URL+"/v1/stats", nil)
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no X-Request-ID generated")
	}

	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logs, `"request_id":"client-supplied-42"`) {
		t.Errorf("span log missing the echoed request id:\n%s", logs)
	}
	for _, span := range []string{"route", "queue_wait", "shard_apply", "merge"} {
		if !strings.Contains(logs, `"`+span+`"`) {
			t.Errorf("span log missing %q field:\n%s", span, logs)
		}
	}
}

// lockedWriter serializes concurrent slog writes in tests.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
