package server

import (
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/shard"
)

// promPage is the pooled scratch of one /metrics scrape: the exposition
// buffer, a histogram snapshot, and the prerendered per-shard label
// strings (rebuilt only when the shard count changes, e.g. across a
// restore swap).
type promPage struct {
	expo   obs.Expo
	hs     obs.HistSnap
	labels []string
}

var promPool = sync.Pool{New: func() any { return &promPage{} }}

// shardLabels returns `shard="i"` strings for n shards, reusing the
// page's cache.
func (p *promPage) shardLabels(n int) []string {
	if len(p.labels) != n {
		p.labels = make([]string, n)
		for i := range p.labels {
			p.labels[i] = `shard="` + strconv.Itoa(i) + `"`
		}
	}
	return p.labels
}

// nsToSec converts the nanosecond histograms to seconds on exposition.
const nsToSec = 1e-9

// MetricsHandler returns the Prometheus text-format exposition handler
// for GET /metrics. The page is rebuilt per scrape from the wait-free
// telemetry surfaces — per-shard atomic Snap blocks, lock-free
// histograms, and the manager's control-plane accessors — so a scrape
// never enqueues work onto a shard worker and never waits behind
// ingest. ascsd serves it on the -debug-addr side listener; it is also
// mounted here so single-port deployments can scrape the main listener.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := promPool.Get().(*promPage)
		defer promPool.Put(p)
		e := &p.expo
		e.Reset()
		s.writeMetrics(p)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(e.B.Bytes())
	})
}

func (s *Server) writeMetrics(p *promPage) {
	e := &p.expo
	mgr := s.mgr.Load()
	n := mgr.NumShards()
	labels := p.shardLabels(n)

	// Manager-level gauges (control plane; no worker involvement).
	e.Header("ascs_step", "gauge", "Highest assigned global stream step.")
	e.Sample("ascs_step", "", float64(mgr.Step()))
	e.Header("ascs_warming", "gauge", "1 while buffering the warm-up prefix, else 0.")
	warming := 0.0
	if mgr.Warming() {
		warming = 1
	}
	e.Sample("ascs_warming", "", warming)
	e.Header("ascs_shards", "gauge", "Number of shard workers.")
	e.Sample("ascs_shards", "", float64(n))

	// Overload / degradation state (tentpole of the failure model): the
	// governor's current verdict, its flip count, and how much work was
	// refused or re-routed. ascs_shed_requests_total is the manager-side
	// twin of ascs_http_shed_total — the chaos harness asserts they agree.
	adm := mgr.AdmissionState()
	e.Header("ascs_shed_requests_total", "counter", "Ingest requests refused whole at admission (queue at bound).")
	e.Sample("ascs_shed_requests_total", "", float64(adm.ShedRequests))
	e.Header("ascs_deadline_ops_total", "counter", "Routed pair ops abandoned at the caller's deadline before shard delivery.")
	e.Sample("ascs_deadline_ops_total", "", float64(adm.DeadlineOps))
	e.Header("ascs_deadline_queries_total", "counter", "Query closures abandoned at the caller's deadline before running.")
	e.Sample("ascs_deadline_queries_total", "", float64(adm.DeadlineQueries))
	e.Header("ascs_degraded", "gauge", "1 while the overload governor routes fresh queries down the fast lane, else 0.")
	degraded := 0.0
	if adm.Degraded {
		degraded = 1
	}
	e.Sample("ascs_degraded", "", degraded)
	e.Header("ascs_degrade_transitions_total", "counter", "Overload governor state flips (either direction).")
	e.Sample("ascs_degrade_transitions_total", "", float64(adm.DegradeTransitions))
	e.Header("ascs_degraded_queries_total", "counter", "Queries the overload governor re-routed to the fast lane.")
	e.Sample("ascs_degraded_queries_total", "", float64(adm.DegradedQueries))
	e.Header("ascs_retry_after_seconds", "gauge", "Last Retry-After advertised on a 429, in seconds (0 = never shed).")
	e.Sample("ascs_retry_after_seconds", "", float64(s.retryAfterSec.Load()))
	e.Header("ascs_http_shed_total", "counter", "HTTP 429 responses served with Retry-After.")
	e.Sample("ascs_http_shed_total", "", float64(s.shed429.Load()))
	e.Header("ascs_http_deadline_exceeded_total", "counter", "HTTP 503 responses caused by request deadline expiry.")
	e.Sample("ascs_http_deadline_exceeded_total", "", float64(s.deadline503.Load()))

	// Tiered serving (foldable sketches): folded-tolerant query volume,
	// memo hits, and snapshot size observability. The per-shard fold
	// level / fold / unfold families ride the ShardDefs loop below.
	e.Header("ascs_http_folded_queries_total", "counter", "Queries served on the folded-tolerant read path (explicit resolution=folded or governor-degraded defaults).")
	e.Sample("ascs_http_folded_queries_total", "", float64(s.foldedQueries.Load()))
	e.Header("ascs_topk_cache_hits_total", "counter", "Folded-tolerant top-k queries answered from the memoized response without a shard fan-out.")
	e.Sample("ascs_topk_cache_hits_total", "", float64(s.cacheHits.Load()))
	e.Header("ascs_snapshot_last_bytes", "gauge", "Byte total of the most recent committed snapshot (0 before the first).")
	e.Sample("ascs_snapshot_last_bytes", "", float64(mgr.LastSnapshotBytes()))
	e.Header("ascs_snapshots_total", "counter", "Snapshots committed by the installed manager.")
	e.Sample("ascs_snapshots_total", "", float64(mgr.Snapshots()))

	// Durability: write-ahead-log progress plus the last boot's recovery
	// pass. The families are emitted (zeroed) even without a WAL so
	// dashboards and alerts never see a family appear out of nowhere.
	ws := mgr.WALStats()
	if ws == nil {
		ws = &shard.WALStats{}
	}
	armed := 0.0
	if ws.Armed {
		armed = 1
	}
	e.Header("ascs_wal_armed", "gauge", "1 while the write-ahead log accepts appends, 0 when off or disarmed by a write error.")
	e.Sample("ascs_wal_armed", "", armed)
	e.Header("ascs_wal_appended_bytes_total", "counter", "Bytes appended to the write-ahead log (records incl. framing).")
	e.Sample("ascs_wal_appended_bytes_total", "", float64(ws.AppendedBytes))
	e.Header("ascs_wal_records_total", "counter", "Records appended to the write-ahead log.")
	e.Sample("ascs_wal_records_total", "", float64(ws.Records))
	e.Header("ascs_wal_segments", "gauge", "Log segments currently on disk (including the active one).")
	e.Sample("ascs_wal_segments", "", float64(ws.Segments))
	e.Header("ascs_wal_fsyncs_total", "counter", "fsync calls issued by the write-ahead log.")
	e.Sample("ascs_wal_fsyncs_total", "", float64(ws.Fsyncs))
	e.Header("ascs_wal_errors_total", "counter", "Write-ahead-log append/sync failures (a nonzero value means the log disarmed).")
	e.Sample("ascs_wal_errors_total", "", float64(ws.Errors))
	e.Header("ascs_wal_truncated_segments_total", "counter", "Log segments removed because a snapshot made them redundant.")
	e.Sample("ascs_wal_truncated_segments_total", "", float64(ws.TruncatedSegments))
	e.Header("ascs_wal_last_seq", "gauge", "Highest WAL sequence number issued.")
	e.Sample("ascs_wal_last_seq", "", float64(ws.LastSeq))
	e.Header("ascs_wal_replay_records_total", "counter", "WAL records replayed through the ingest path during the last recovery.")
	e.Sample("ascs_wal_replay_records_total", "", float64(ws.Recovery.ReplayedRecords))
	e.Header("ascs_wal_replay_skipped_total", "counter", "WAL records skipped during recovery (already covered by the restored snapshot).")
	e.Sample("ascs_wal_replay_skipped_total", "", float64(ws.Recovery.SkippedRecords))
	e.Header("ascs_wal_recovery_seconds", "gauge", "Wall time of the last recovery pass (scan + replay + arming).")
	e.Sample("ascs_wal_recovery_seconds", "", ws.Recovery.DurationSeconds)

	// Chaos observability: per-kind injected-fault fire counts. Nil-safe
	// with a stable label set (all kinds, zeros included), so chaos runs
	// can assert injection actually happened from /metrics alone.
	e.Header("ascs_faults_fired_total", "counter", "Injected faults observed firing, by kind (all zero without -faults).")
	for _, fc := range s.opts.RestoreOverrides.Faults.Fired() {
		e.Sample("ascs_faults_fired_total", `kind="`+fc.Kind+`"`, float64(fc.Count))
	}

	// Per-shard counter blocks: families sharing a name (the wave
	// fallback causes) are adjacent in ShardDefs, so the header is
	// emitted once per run and every sample of the family stays
	// contiguous, as the text format requires.
	for lo := 0; lo < obs.NumShardCounters; {
		hi := lo + 1
		for hi < obs.NumShardCounters && obs.ShardDefs[hi].Name == obs.ShardDefs[lo].Name {
			hi++
		}
		def := obs.ShardDefs[lo]
		e.Header(def.Name, def.Kind.String(), def.Help)
		for slot := lo; slot < hi; slot++ {
			d := obs.ShardDefs[slot]
			for i := 0; i < n; i++ {
				lbl := labels[i]
				if d.LabelK != "" {
					lbl = lbl + "," + d.LabelK + `="` + d.LabelV + `"`
				}
				e.Sample(d.Name, lbl, mgr.Tel(i).Snap.Value(slot))
			}
		}
		lo = hi
	}

	// Instantaneous queue depths (the high-water marks above are the
	// peaks; these are the now).
	e.Header("ascs_shard_queue_depth", "gauge", "Current per-shard backlog by lane (ingest: batches; fast: closures).")
	for i := 0; i < n; i++ {
		ingest, fast := mgr.QueueDepth(i)
		e.Sample("ascs_shard_queue_depth", labels[i]+`,lane="ingest"`, float64(ingest))
		e.Sample("ascs_shard_queue_depth", labels[i]+`,lane="fast"`, float64(fast))
	}

	// Per-shard histograms.
	e.Header("ascs_shard_batch_ops", "histogram", "Applied ingest batch sizes (pair ops per batch).")
	for i := 0; i < n; i++ {
		mgr.Tel(i).BatchSize.Snapshot(&p.hs)
		e.Histogram("ascs_shard_batch_ops", labels[i], &p.hs, 1)
	}
	e.Header("ascs_shard_ingest_wait_seconds", "histogram", "Batch queue wait: enqueue to apply start.")
	for i := 0; i < n; i++ {
		mgr.Tel(i).IngestWait.Snapshot(&p.hs)
		e.Histogram("ascs_shard_ingest_wait_seconds", labels[i], &p.hs, nsToSec)
	}
	e.Header("ascs_shard_apply_seconds", "histogram", "Per-batch apply duration on the worker goroutine.")
	for i := 0; i < n; i++ {
		mgr.Tel(i).Apply.Snapshot(&p.hs)
		e.Histogram("ascs_shard_apply_seconds", labels[i], &p.hs, nsToSec)
	}
	e.Header("ascs_shard_query_wait_seconds", "histogram", "Query closure wait by lane: enqueue to run start.")
	for i := 0; i < n; i++ {
		mgr.Tel(i).FreshWait.Snapshot(&p.hs)
		e.Histogram("ascs_shard_query_wait_seconds", labels[i]+`,lane="fresh"`, &p.hs, nsToSec)
		mgr.Tel(i).FastWait.Snapshot(&p.hs)
		e.Histogram("ascs_shard_query_wait_seconds", labels[i]+`,lane="fast"`, &p.hs, nsToSec)
	}

	// HTTP route metrics, from the same histograms /v1/stats summarizes.
	routes := s.metrics.names()
	e.Header("ascs_http_requests_total", "counter", "HTTP requests served, by route.")
	for _, name := range routes {
		em := s.metrics.endpoint(name)
		em.hist.Snapshot(&p.hs)
		e.Sample("ascs_http_requests_total", `route="`+name+`"`, float64(p.hs.Count))
	}
	e.Header("ascs_http_request_errors_total", "counter", "HTTP requests that returned an error, by route.")
	for _, name := range routes {
		e.Sample("ascs_http_request_errors_total", `route="`+name+`"`, float64(s.metrics.endpoint(name).errors.Load()))
	}
	e.Header("ascs_http_request_duration_seconds", "histogram", "HTTP request duration, by route.")
	for _, name := range routes {
		s.metrics.endpoint(name).hist.Snapshot(&p.hs)
		e.Histogram("ascs_http_request_duration_seconds", `route="`+name+`"`, &p.hs, nsToSec)
	}
}
