package server_test

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
)

// TestRestoreSwapUnderLoad hammers the server with concurrent ingest
// and query traffic while the manager is swapped out by repeated
// restores. Every request must terminate with a well-formed status —
// never a connection error, torn response, or data race (this test is
// in the CI -race step) — and the server must still serve after the
// last swap. A decay-mode engine is used so continuous ingest never
// trips the fixed horizon.
func TestRestoreSwapUnderLoad(t *testing.T) {
	const d, window = 30, 200
	ds := dataset.Simulation(d, window, 0.02, 31)
	samples := make([]stream.Sample, len(ds.Rows))
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}
	snapRoot := t.TempDir()
	_, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 2,
		Engine: shard.EngineSpec{
			Kind:   shard.KindCS,
			Sketch: countsketch.Config{Tables: 4, Range: 1024, Seed: 17},
			T:      window, Lambda: 1 - 1.0/window,
		},
	}, server.Options{SnapshotDir: snapRoot})

	// Seed some state and commit the recovery point the swaps restore.
	if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(samples)); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed ingest status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/snapshot", server.SnapshotRequest{Dir: "swap-point"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, body)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}

	// Ingest load: small batches, forever. 200 is the happy path; 409
	// can appear transiently when a restore swaps in a manager whose
	// decay window bookkeeping lags the traffic — both are well-formed.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				lo := (g*17 + i*3) % (len(samples) - 4)
				resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(samples[lo:lo+4]))
				if resp.StatusCode != http.StatusOK {
					report("ingest status " + resp.Status + ": " + string(body))
					return
				}
			}
		}(g)
	}

	// Query load: topk + estimate, forever.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var top server.TopKResponse
				if resp := getJSON(t, ts.URL+"/v1/topk?k=5&magnitude=1", &top); resp.StatusCode != http.StatusOK {
					report("topk status " + resp.Status)
					return
				}
				if len(top.Pairs) == 0 {
					report("topk returned no pairs mid-swap")
					return
				}
				var est server.EstimateResponse
				if resp := getJSON(t, ts.URL+"/v1/estimate?i=0&j=1", &est); resp.StatusCode != http.StatusOK {
					report("estimate status " + resp.Status)
					return
				}
			}
		}()
	}

	// The swapper: restore the committed point repeatedly under load.
	for swap := 0; swap < 5; swap++ {
		resp, body := postJSON(t, ts.URL+"/v1/restore", server.SnapshotRequest{Dir: "swap-point"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("restore swap %d status %d: %s", swap, resp.StatusCode, body)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// The survivor serves: state is the swap point plus whatever ingest
	// landed after the last swap.
	var st server.StatsResponse
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after swaps: status %d", resp.StatusCode)
	}
	if st.Manager.Step < window {
		t.Fatalf("post-swap step %d below the snapshot point %d", st.Manager.Step, window)
	}
}

// TestRestoreChecksumFailureKeepsServing corrupts a committed snapshot
// blob and requires the restore to fail closed over HTTP — a 500 with
// the corruption named — while the old manager keeps serving with its
// state untouched: a failed swap must never take down or taint the
// survivor.
func TestRestoreChecksumFailureKeepsServing(t *testing.T) {
	const d, n = 30, 400
	ds := dataset.Simulation(d, n, 0.02, 37)
	samples := make([]stream.Sample, len(ds.Rows))
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}
	snapRoot := t.TempDir()
	_, ts := newTestServer(t, shard.Config{
		Dim: d, Shards: 2,
		Engine: shard.EngineSpec{
			Kind:   shard.KindCS,
			Sketch: countsketch.Config{Tables: 4, Range: 1024, Seed: 23},
			T:      2 * n,
		},
	}, server.Options{SnapshotDir: snapRoot})

	if resp, body := postJSON(t, ts.URL+"/v1/ingest", wireSamples(samples)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/snapshot", server.SnapshotRequest{Dir: "ck"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, body)
	}

	var before server.TopKResponse
	if resp := getJSON(t, ts.URL+"/v1/topk?k=10&magnitude=1", &before); resp.StatusCode != http.StatusOK {
		t.Fatalf("topk before: status %d", resp.StatusCode)
	}

	// Flip one byte in the first shard blob the manifest lists.
	dir := filepath.Join(snapRoot, "ck")
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Files []struct {
			Name string `json:"name"`
		} `json:"files"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if len(man.Files) == 0 {
		t.Fatal("manifest lists no files to corrupt")
	}
	blobPath := filepath.Join(dir, man.Files[0].Name)
	blob, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(blobPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/restore", server.SnapshotRequest{Dir: "ck"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt restore: status %d, want 500 (%s)", resp.StatusCode, body)
	}
	var errResp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &errResp); err != nil || errResp.Error == "" {
		t.Fatalf("corrupt restore error envelope: %q (%v)", body, err)
	}

	// Old manager survives the failed swap with identical state.
	var st server.StatsResponse
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after failed restore: status %d", resp.StatusCode)
	}
	if st.Manager.Step != n {
		t.Fatalf("step after failed restore = %d, want %d", st.Manager.Step, n)
	}
	var after server.TopKResponse
	if resp := getJSON(t, ts.URL+"/v1/topk?k=10&magnitude=1", &after); resp.StatusCode != http.StatusOK {
		t.Fatalf("topk after failed restore: status %d", resp.StatusCode)
	}
	for i := range after.Pairs {
		if after.Pairs[i] != before.Pairs[i] {
			t.Fatalf("topk[%d] changed across a FAILED restore: %+v vs %+v", i, before.Pairs[i], after.Pairs[i])
		}
	}
}
