package server

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestEndpointMetricsHistogram pins the histogram-backed stats
// contract: counts and errors are exact, the mean is exact, and the
// quantiles land within the log2 bucket holding the true value (the
// documented one-octave resolution).
func TestEndpointMetricsHistogram(t *testing.T) {
	em := &endpointMetrics{}
	for i := 0; i < 90; i++ {
		em.observe(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		em.observe(100*time.Millisecond, true)
	}
	var hs obs.HistSnap
	st := em.snapshot(&hs)
	if st.Count != 100 || st.Errors != 10 {
		t.Fatalf("count=%d errors=%d, want 100/10", st.Count, st.Errors)
	}
	wantMean := (90*1.0 + 10*100.0) / 100
	// The histogram mean is exact up to float accumulation of the raw
	// nanosecond sum.
	if st.MeanMS < wantMean*0.999 || st.MeanMS > wantMean*1.001 {
		t.Fatalf("mean %v ms, want ~%v", st.MeanMS, wantMean)
	}
	// p50 sits in 1ms's bucket [2^19, 2^20) ns ≈ [0.52, 1.05] ms; p99 in
	// 100ms's bucket [2^26, 2^27) ns ≈ [67, 134] ms.
	if st.P50MS < 0.5 || st.P50MS > 1.1 {
		t.Fatalf("p50 %v ms outside 1ms bucket", st.P50MS)
	}
	if st.P99MS < 67 || st.P99MS > 135 {
		t.Fatalf("p99 %v ms outside 100ms bucket", st.P99MS)
	}
}

// TestMetricsSnapshotStableNames pins that snapshot covers every
// registered route and names() is sorted (the exposition order).
func TestMetricsSnapshotStableNames(t *testing.T) {
	m := newMetrics()
	m.endpoint("zeta").observe(time.Millisecond, false)
	m.endpoint("alpha").observe(time.Millisecond, true)
	names := m.names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v, want sorted [alpha zeta]", names)
	}
	snap := m.snapshot()
	if snap["alpha"].Errors != 1 || snap["zeta"].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// BenchmarkEndpointMetricsSnapshot is the satellite's scrape-cost
// proof: the pre-histogram design copied and sorted a 4096-slot ring
// per endpoint per scrape; the histogram snapshot is a fixed 64-slot
// atomic copy with zero heap allocations.
func BenchmarkEndpointMetricsSnapshot(b *testing.B) {
	em := &endpointMetrics{}
	for i := 0; i < 10_000; i++ {
		em.observe(time.Duration(i)*time.Microsecond, i%97 == 0)
	}
	var hs obs.HistSnap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = em.snapshot(&hs)
	}
}

// BenchmarkEndpointMetricsObserve measures the per-request recording
// cost on the hot serving path (two atomic adds).
func BenchmarkEndpointMetricsObserve(b *testing.B) {
	em := &endpointMetrics{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.observe(time.Millisecond, false)
	}
}
