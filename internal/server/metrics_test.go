package server

import (
	"math"
	"testing"
	"time"
)

// TestEndpointMetricsWindowed pins the stats-window contract: count and
// the lifetime mean cover every request, while mean/p50/p99 cover the
// same last-ringSize window — mixing a lifetime mean with windowed
// percentiles is the bug this replaces.
func TestEndpointMetricsWindowed(t *testing.T) {
	em := &endpointMetrics{}
	// Partially filled ring first: window == count.
	for i := 0; i < 10; i++ {
		em.observe(2*time.Millisecond, false)
	}
	st := em.snapshot()
	if st.Count != 10 || st.Window != 10 {
		t.Fatalf("partial ring: count=%d window=%d, want 10/10", st.Count, st.Window)
	}
	if math.Abs(st.MeanMS-2) > 1e-9 || math.Abs(st.LifetimeMeanMS-2) > 1e-9 {
		t.Fatalf("partial ring means %v/%v, want 2/2", st.MeanMS, st.LifetimeMeanMS)
	}

	// Wrap the ring: ringSize slow 10ms observations displace the 2ms
	// ones entirely, then 100 fast 1ms ones overwrite the oldest slot
	// range again.
	for i := 0; i < ringSize; i++ {
		em.observe(10*time.Millisecond, false)
	}
	for i := 0; i < 100; i++ {
		em.observe(time.Millisecond, true)
	}
	st = em.snapshot()
	wantCount := uint64(10 + ringSize + 100)
	if st.Count != wantCount || st.Errors != 100 {
		t.Fatalf("count=%d errors=%d, want %d/100", st.Count, st.Errors, wantCount)
	}
	if st.Window != ringSize {
		t.Fatalf("window=%d after wraparound, want %d", st.Window, ringSize)
	}
	// The window holds exactly ringSize-100 tens and 100 ones; the 2ms
	// prefix must have aged out.
	wantMean := (float64(ringSize-100)*10 + 100*1) / float64(ringSize)
	if math.Abs(st.MeanMS-wantMean) > 1e-9 {
		t.Fatalf("windowed mean %v, want %v", st.MeanMS, wantMean)
	}
	wantLifetime := (10*2 + float64(ringSize)*10 + 100*1) / float64(wantCount)
	if math.Abs(st.LifetimeMeanMS-wantLifetime) > 1e-9 {
		t.Fatalf("lifetime mean %v, want %v", st.LifetimeMeanMS, wantLifetime)
	}
	if st.P50MS != 10 {
		t.Fatalf("windowed p50 %v, want 10", st.P50MS)
	}
	// A lifetime mean would sit near 10 forever; the windowed p99 and
	// mean must move once the window is dominated by recent samples.
	for i := 0; i < ringSize; i++ {
		em.observe(time.Millisecond, false)
	}
	st = em.snapshot()
	if st.MeanMS != 1 || st.P50MS != 1 || st.P99MS != 1 {
		t.Fatalf("fully recycled window stats mean=%v p50=%v p99=%v, want all 1", st.MeanMS, st.P50MS, st.P99MS)
	}
	if st.LifetimeMeanMS <= 1 {
		t.Fatalf("lifetime mean %v should still carry the slow history", st.LifetimeMeanMS)
	}
}
