package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
)

func TestEngineSerializationRoundTrip(t *testing.T) {
	hp := Hyperparams{T0: 50, Theta: 0.3, Tau0: 1e-4, T: 200}
	eng, err := NewEngine(countsketch.Config{Tables: 5, Range: 256, Seed: 9}, hp, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Drive into the sampling period so counters and τ are non-trivial.
	for step := 1; step <= 120; step++ {
		eng.BeginStep(step)
		for k := uint64(0); k < 40; k++ {
			x := rng.NormFloat64()
			if k < 4 {
				x += 1.5
			}
			eng.Offer(k, x)
		}
	}
	var buf bytes.Buffer
	if _, err := eng.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEngineFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schedule() != eng.Schedule() {
		t.Errorf("schedule mismatch: %+v vs %+v", got.Schedule(), eng.Schedule())
	}
	if got.Sampling() != eng.Sampling() {
		t.Error("sampling flag mismatch")
	}
	gf, gi, go_ := got.SampledFraction()
	ef, ei, eo := eng.SampledFraction()
	if gf != ef || gi != ei || go_ != eo {
		t.Errorf("counters mismatch: (%v,%d,%d) vs (%v,%d,%d)", gf, gi, go_, ef, ei, eo)
	}
	for k := uint64(0); k < 40; k++ {
		if got.Estimate(k) != eng.Estimate(k) {
			t.Fatalf("estimate mismatch at key %d", k)
		}
	}
	// Resuming both engines identically keeps them in lockstep.
	for step := 121; step <= 200; step++ {
		got.BeginStep(step)
		eng.BeginStep(step)
		for k := uint64(0); k < 40; k++ {
			x := float64(k%7) - 3
			got.Offer(k, x)
			eng.Offer(k, x)
		}
	}
	for k := uint64(0); k < 40; k++ {
		if got.Estimate(k) != eng.Estimate(k) {
			t.Fatalf("post-resume estimate mismatch at key %d", k)
		}
	}
}

func TestReadEngineFromErrors(t *testing.T) {
	if _, err := ReadEngineFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadEngineFrom(bytes.NewReader(make([]byte, 69))); err == nil {
		t.Error("bad magic should error")
	}
	// Valid header magic but truncated sketch body.
	hp := Hyperparams{T0: 1, Theta: 0, Tau0: 0, T: 10}
	eng, _ := NewEngine(countsketch.Config{Tables: 2, Range: 8, Seed: 1}, hp, true)
	var buf bytes.Buffer
	if _, err := eng.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadEngineFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated sketch should error")
	}
	// Corrupt schedule: T0 > T.
	full := buf.Bytes()
	bad := append([]byte(nil), full...)
	// T0 field is at offset 4..12; set it beyond T (=10).
	bad[4] = 99
	if _, err := ReadEngineFrom(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt schedule should error")
	}
}
