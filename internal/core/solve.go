package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Hyperparams is the output of Algorithm 3: the exploration length T0 and
// the threshold schedule τ(t) = Tau0 + (Theta/T)(t − T0).
type Hyperparams struct {
	// T0 is the exploration period length (samples 1..T0 are always
	// inserted).
	T0 int
	// Theta is the threshold slope θ.
	Theta float64
	// Tau0 is the initial sampling threshold τ(T0).
	Tau0 float64
	// T is the stream length the schedule was solved for.
	T int

	// EffectiveDelta is the Theorem 1 miss-probability target actually
	// achieved at T0. It equals Params.Delta when that was feasible
	// (Delta > saturation probability) and the relaxed target otherwise.
	EffectiveDelta float64
	// DeltaFeasible records whether Params.Delta exceeded the saturation
	// probability, i.e. whether Theorem 1 could honor it as stated.
	DeltaFeasible bool
	// SaturationProb echoes 1 − p0^K for reporting.
	SaturationProb float64
}

// Threshold returns τ(t) for t ≥ T0; for t < T0 it returns Tau0 (the
// schedule is only consulted during the sampling period).
func (h Hyperparams) Threshold(t int) float64 {
	if t <= h.T0 {
		return h.Tau0
	}
	return h.Tau0 + h.Theta*float64(t-h.T0)/float64(h.T)
}

// ThresholdEff is the decayed-mode threshold: the same linear ramp with
// the effective sample count N_eff(t) substituted for t and N_eff(T0)
// for T0 (the exponential-decay engines run their schedule on decayed
// mass — see core.NewEngineDecayed). Because N_eff saturates at the
// effective window W = h.T as t → ∞, τ saturates at τ(T) instead of
// growing without bound on an unbounded stream.
func (h Hyperparams) ThresholdEff(neff, neff0 float64) float64 {
	if neff <= neff0 {
		return h.Tau0
	}
	return h.Tau0 + h.Theta*(neff-neff0)/float64(h.T)
}

// relaxFraction is the fallback Φ-mass target when Delta is at or below
// the saturation probability: we then require the collision-free miss
// term Φ(·) ≤ relaxFraction, mirroring how the paper still obtains a
// small T0 when the worst-case signal-collision term dominates.
const relaxFraction = 0.01

// FindT0 returns the minimum T0 ∈ [Gamma, T] such that
// Theorem1Bound(T0, Tau0) ≤ δ (Algorithm 3 line 2), using binary search
// over the monotone tail of the bound. When δ is infeasible (≤ SP), the
// relaxed target SP + relaxFraction·p0^K is used. The achieved target is
// returned alongside T0. If even T0 = T cannot reach the target, T0 = T
// is returned with ok = false (ASCS then degenerates to vanilla CS).
func (p Params) FindT0() (t0 int, effDelta float64, ok bool) {
	sp := p.SaturationProb()
	effDelta = p.Delta
	if p.Delta <= sp {
		effDelta = sp + relaxFraction*p.P0K()
	}
	lo := p.Gamma
	if lo < 1 {
		lo = 1
	}
	// The bound is decreasing in T0 once T0 > T·τ0/u; start the bracket
	// strictly above that knee so the predicate is monotone.
	knee := int(math.Ceil(float64(p.T)*p.Tau0/p.U)) + 1
	if lo < knee {
		lo = knee
	}
	hi := p.T
	if lo > hi {
		return p.T, effDelta, false
	}
	if p.Theorem1Bound(hi, p.Tau0) > effDelta {
		return p.T, effDelta, false
	}
	if p.Theorem1Bound(lo, p.Tau0) <= effDelta {
		return lo, effDelta, true
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if p.Theorem1Bound(mid, p.Tau0) <= effDelta {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, effDelta, true
}

// FindTheta returns the maximum θ ∈ (0, U) such that
// Theorem2Bound(T0, Tau0, θ) ≤ target (Algorithm 3 line 3). Because the
// bound is not guaranteed globally monotone in θ, a coarse grid scan
// locates the feasible frontier, refined by bisection. θ = 0 (a flat
// threshold at Tau0) is returned when no positive slope is admissible.
func (p Params) FindTheta(t0 int, target float64) float64 {
	if target <= 0 {
		return 0
	}
	const grid = 512
	best := 0.0
	// Scan from above: the largest grid point satisfying the bound.
	idx := -1
	for i := grid - 1; i >= 1; i-- {
		th := p.U * float64(i) / grid
		if p.Theorem2Bound(t0, p.Tau0, th) <= target {
			idx = i
			best = th
			break
		}
	}
	if idx < 0 {
		return 0
	}
	lo := best
	hi := p.U * float64(idx+1) / grid
	for iter := 0; iter < 60 && hi-lo > 1e-12*p.U; iter++ {
		mid := (lo + hi) / 2
		if p.Theorem2Bound(t0, p.Tau0, mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// FindT0Cond returns the minimum T0 with the *collision-free* Theorem 1
// term Φ(−(√T0·u − T·τ0/√T0)/(κσ)) ≤ delta, i.e. the miss budget
// conditioned on the signal not sharing buckets with other signals
// (event B of the proof). The paper's Table 1 sweeps δ ∈ [0.05, 0.10] in
// configurations whose saturation probability exceeds those values, so
// its targets are necessarily of this conditional form.
func (p Params) FindT0Cond(delta float64) (t0 int, ok bool) {
	if delta <= 0 || delta >= 1 {
		return p.T, false
	}
	bound := func(t0 int) float64 {
		if t0 <= 0 {
			return 1
		}
		sq := math.Sqrt(float64(t0))
		z := -(sq*p.U - float64(p.T)*p.Tau0/sq) / (p.Kappa() * p.Sigma)
		return stats.NormalCDF(z)
	}
	lo := p.Gamma
	if lo < 1 {
		lo = 1
	}
	knee := int(math.Ceil(float64(p.T)*p.Tau0/p.U)) + 1
	if lo < knee {
		lo = knee
	}
	hi := p.T
	if lo > hi || bound(hi) > delta {
		return p.T, false
	}
	if bound(lo) <= delta {
		return lo, true
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if bound(mid) <= delta {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// SolveConditional is Solve with the Table-1 interpretation: T0 from the
// conditional Theorem 1 term at budget Delta, θ from Theorem 2 at budget
// DeltaStar − Delta (Theorem 2 is already conditional on I(i) = 0).
func (p Params) SolveConditional() (Hyperparams, error) {
	if err := p.Validate(); err != nil {
		return Hyperparams{}, err
	}
	t0, ok := p.FindT0Cond(p.Delta)
	h := Hyperparams{
		T0:             t0,
		Tau0:           p.Tau0,
		T:              p.T,
		EffectiveDelta: p.Delta,
		DeltaFeasible:  ok,
		SaturationProb: p.SaturationProb(),
	}
	if !ok {
		h.T0 = p.proportionalT0()
	}
	h.Theta = p.FindTheta(h.T0, p.DeltaStar-p.Delta)
	return h, nil
}

// Solve runs Algorithm 3 end to end: it determines the exploration
// length T0 from Theorem 1 and the threshold slope θ from Theorem 2, so
// the probability of missing a signal anywhere in the stream is at most
// δ* (when δ was feasible).
func (p Params) Solve() (Hyperparams, error) {
	if err := p.Validate(); err != nil {
		return Hyperparams{}, err
	}
	sp := p.SaturationProb()
	t0, effDelta, ok := p.FindT0()
	h := Hyperparams{
		T0:             t0,
		Tau0:           p.Tau0,
		T:              p.T,
		EffectiveDelta: effDelta,
		DeltaFeasible:  p.Delta > sp,
		SaturationProb: sp,
	}
	if !ok {
		// Even T0 = T cannot push the Theorem 1 bound below the target —
		// the worst-case collision analysis is hopeless at this memory.
		// Rather than silently degenerating to vanilla CS, fall back to
		// the proportional exploration Theorem 3 itself assumes
		// (T0 = cT with a fixed constant): empirically the gate still
		// raises the ingested SNR in this regime (Table 2, tight rows).
		h.T0 = p.proportionalT0()
		h.DeltaFeasible = false
		h.Theta = p.FindTheta(h.T0, p.DeltaStar-p.Delta)
		return h, nil
	}
	// Budget for the sampling period. When Delta was infeasible the paper's
	// spacing DeltaStar−Delta is preserved relative to the requested Delta.
	target := p.DeltaStar - p.Delta
	h.Theta = p.FindTheta(t0, target)
	return h, nil
}

// proportionalT0 is the Theorem 3 exploration length T0 = cT (c = 1/5),
// clamped to [Gamma, T].
func (p Params) proportionalT0() int {
	t0 := p.T / 5
	if t0 < p.Gamma {
		t0 = p.Gamma
	}
	if t0 > p.T {
		t0 = p.T
	}
	return t0
}

// String renders the schedule compactly for logs.
func (h Hyperparams) String() string {
	return fmt.Sprintf("T0=%d theta=%.6g tau0=%.3g T=%d (deltaEff=%.4g feasible=%v SP=%.4g)",
		h.T0, h.Theta, h.Tau0, h.T, h.EffectiveDelta, h.DeltaFeasible, h.SaturationProb)
}
