package core

import (
	"math"
	"testing"

	"repro/internal/countsketch"
)

// TestEngineHealthCounters drives the engine through exploration and
// sampling and checks the Health snapshot's accounting identities:
// admitted+rejected mass equals the total offered mass, gate counts
// match SampledFraction, and the wave counters see the groups.
func TestEngineHealthCounters(t *testing.T) {
	hp := Hyperparams{T: 64, T0: 8, Theta: 2}
	eng, err := NewEngine(countsketch.Config{Tables: 5, Range: 1 << 10, Seed: 7}, hp, true)
	if err != nil {
		t.Fatal(err)
	}

	const batch = 64
	keys := make([]uint64, batch)
	xs := make([]float64, batch)
	totalMass := 0.0
	for step := 1; step <= hp.T; step++ {
		eng.BeginStep(step)
		for i := range keys {
			keys[i] = uint64(i)
			xs[i] = float64(i%7) - 3
			totalMass += math.Abs(xs[i])
		}
		eng.OfferPairs(keys, xs, nil)
	}

	h := eng.Health()
	if h.ExplorationInserts != uint64(hp.T0*batch) {
		t.Errorf("ExplorationInserts = %d, want %d", h.ExplorationInserts, hp.T0*batch)
	}
	_, inserted, offered := eng.SampledFraction()
	if h.GateOffered != offered || h.GateAdmitted != inserted {
		t.Errorf("gate counters (%d,%d) disagree with SampledFraction (%d,%d)",
			h.GateOffered, h.GateAdmitted, offered, inserted)
	}
	if got := h.AdmittedMass + h.RejectedMass; math.Abs(got-totalMass) > 1e-9*totalMass {
		t.Errorf("mass split %v + %v = %v, want total %v", h.AdmittedMass, h.RejectedMass, got, totalMass)
	}
	if h.AdmittedMass <= 0 || h.RejectedMass <= 0 {
		t.Errorf("expected both admitted (%v) and rejected (%v) mass after sampling", h.AdmittedMass, h.RejectedMass)
	}
	if h.Tau <= 0 {
		t.Errorf("Tau = %v, want > 0 during sampling", h.Tau)
	}
	wantGroups := uint64(hp.T * ((batch + countsketch.WaveGroup - 1) / countsketch.WaveGroup))
	if h.WaveGroups != wantGroups {
		t.Errorf("WaveGroups = %d, want %d", h.WaveGroups, wantGroups)
	}
	// Exploration steps' groups must be attributed to the exploration
	// fallback cause.
	wantExpl := uint64(hp.T0 * ((batch + countsketch.WaveGroup - 1) / countsketch.WaveGroup))
	if h.WaveFallbackExploration != wantExpl {
		t.Errorf("WaveFallbackExploration = %d, want %d", h.WaveFallbackExploration, wantExpl)
	}
	if h.WaveFallbackShape != 0 {
		t.Errorf("ASCS pure-ingest path must not report shape fallbacks, got %d", h.WaveFallbackShape)
	}

	// The health mass accounting must be identical between the wave and
	// scalar paths (the counters ride the bit-identical ingest contract).
	eng2, err := NewEngine(countsketch.Config{Tables: 5, Range: 1 << 10, Seed: 7}, hp, true)
	if err != nil {
		t.Fatal(err)
	}
	eng2.SetWaveGroup(1)
	for step := 1; step <= hp.T; step++ {
		eng2.BeginStep(step)
		for i := range keys {
			keys[i] = uint64(i)
			xs[i] = float64(i%7) - 3
		}
		eng2.OfferPairs(keys, xs, nil)
	}
	h2 := eng2.Health()
	if h2.AdmittedMass != h.AdmittedMass || h2.RejectedMass != h.RejectedMass ||
		h2.GateOffered != h.GateOffered || h2.GateAdmitted != h.GateAdmitted {
		t.Errorf("scalar/wave health mismatch:\nwave   %+v\nscalar %+v", h, h2)
	}
}
