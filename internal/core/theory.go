// Package core implements the paper's contribution: the Active Sampling
// Count Sketch (ASCS) engine (Algorithm 2), the hyper-parameter solver
// (Algorithm 3), and the theoretical bounds of Theorems 1-3 that drive
// it, including the multi-table (K>1) approximations described in §6.
//
// The engine is generic over uint64 keys; the covariance application maps
// feature pairs onto keys (see internal/covstream).
package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Params collects the problem and sketch parameters that the theory of
// §6-7 operates on.
type Params struct {
	// P is the number of stream variables (p = d(d−1)/2 for covariance).
	P int64
	// T is the total number of samples in the stream.
	T int
	// K is the number of hash tables of the sketch.
	K int
	// R is the number of buckets per hash table.
	R int
	// U is the signal strength: the (lower bound on the) mean of signal
	// variables (§7.2 relaxation 1).
	U float64
	// Sigma is the common (or average, §7.2 relaxation 2) standard
	// deviation of the stream variables X_i.
	Sigma float64
	// Alpha is the signal sparsity: the fraction of variables with
	// non-zero mean.
	Alpha float64
	// Delta upper-bounds the probability of missing a signal at time T0
	// (Theorem 1). Values at or below the saturation probability are
	// infeasible; see Solve.
	Delta float64
	// DeltaStar upper-bounds the total probability of missing a signal
	// during the whole sampling procedure; DeltaStar − Delta budgets the
	// sampling period (Theorem 2).
	DeltaStar float64
	// Tau0 is the initial sampling threshold τ(T0) (§8.1 recommends a
	// small positive value, e.g. 1e-4 for correlation matrices).
	Tau0 float64
	// Gamma is the minimum t for which the Gaussian approximation of
	// X̄^(t) is trusted (§6.1); also the smallest admissible T0.
	Gamma int
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	switch {
	case p.P < 2:
		return fmt.Errorf("core: P must be ≥ 2, got %d", p.P)
	case p.T < 1:
		return fmt.Errorf("core: T must be ≥ 1, got %d", p.T)
	case p.K < 1 || p.K > 64:
		return fmt.Errorf("core: K must be in [1,64], got %d", p.K)
	case p.R < 2:
		return fmt.Errorf("core: R must be ≥ 2, got %d", p.R)
	case !(p.U > 0) || math.IsInf(p.U, 0):
		return fmt.Errorf("core: U must be positive and finite, got %v", p.U)
	case !(p.Sigma > 0) || math.IsInf(p.Sigma, 0):
		return fmt.Errorf("core: Sigma must be positive and finite, got %v", p.Sigma)
	case !(p.Alpha > 0) || p.Alpha >= 1:
		return fmt.Errorf("core: Alpha must be in (0,1), got %v", p.Alpha)
	case p.Tau0 < 0 || p.Tau0 >= p.U:
		return fmt.Errorf("core: Tau0 must be in [0,U), got %v (U=%v)", p.Tau0, p.U)
	case !(p.Delta > 0):
		return fmt.Errorf("core: Delta must be positive, got %v", p.Delta)
	case p.DeltaStar <= p.Delta:
		return fmt.Errorf("core: DeltaStar (%v) must exceed Delta (%v)", p.DeltaStar, p.Delta)
	case p.Gamma < 1:
		return fmt.Errorf("core: Gamma must be ≥ 1, got %d", p.Gamma)
	}
	return nil
}

// P0 returns p0 = ((R−α)/R)^{p−1}, the single-table probability that a
// given signal variable shares no bucket with another signal variable
// (Theorem 1).
func (p Params) P0() float64 {
	return math.Exp(float64(p.P-1) * math.Log1p(-p.Alpha/float64(p.R)))
}

// P0K returns p0^K, the multi-table analogue used by Algorithm 3.
func (p Params) P0K() float64 { return math.Pow(p.P0(), float64(p.K)) }

// SaturationProb returns SP = 1 − p0^K, the floor below which the
// Theorem 1 miss-probability bound cannot be pushed (§6.4). Delta must
// exceed it for Algorithm 3 to be feasible as stated.
func (p Params) SaturationProb() float64 { return 1 - p.P0K() }

// Kappa returns the collision-noise inflation factor of the estimate's
// standard deviation: κ0 = sqrt(1 + (p−1)(1−α)/(R−α)) for one table, and
// the median-of-K approximation κ = sqrt(1 + π(p−1)(1−α)/(2K(R−α))) for
// multiple tables (§6.4).
func (p Params) Kappa() float64 {
	base := float64(p.P-1) * (1 - p.Alpha) / (float64(p.R) - p.Alpha)
	if p.K == 1 {
		return math.Sqrt(1 + base)
	}
	return math.Sqrt(1 + math.Pi*base/(2*float64(p.K)))
}

// Omega returns ω (K=1) or ω1 (K>1) of Theorem 2, as printed in the
// paper: ω² = σ²(1 + (p−1)(1−α)/(T²(R−α))), with the K-table variant
// inserting the π/(2K) median factor. (The T² placement is taken verbatim
// from the paper; the correction term is negligible for the regimes of
// interest, leaving ω ≈ σ, which is what makes the Theorem 2 exponent
// dimensionally consistent with the √T0-scaled Gaussian argument.)
func (p Params) Omega() float64 {
	t2 := float64(p.T) * float64(p.T)
	base := float64(p.P-1) * (1 - p.Alpha) / (t2 * (float64(p.R) - p.Alpha))
	if p.K == 1 {
		return p.Sigma * math.Sqrt(1+base)
	}
	return p.Sigma * math.Sqrt(1+math.Pi*base/(2*float64(p.K)))
}

// Theorem1Bound returns the §6.4 upper bound on the probability that a
// signal variable's estimate falls below τ(T0) at time T0:
//
//	Φ( −(√T0·u − T·τ0/√T0) / (κσ) ) · p0^K + (1 − p0^K).
func (p Params) Theorem1Bound(t0 int, tau0 float64) float64 {
	if t0 <= 0 {
		return 1
	}
	sq := math.Sqrt(float64(t0))
	z := -(sq*p.U - float64(p.T)*tau0/sq) / (p.Kappa() * p.Sigma)
	p0k := p.P0K()
	return stats.NormalCDF(z)*p0k + (1 - p0k)
}

// Theorem2Bound returns the §6.5 upper bound on the probability that a
// signal variable that survived time T0 is omitted at some later time in
// (T0, T], for threshold slope θ:
//
//	exp( (u−θ)(τ0 − (T0/T)θ) / ω² ) · Φ( (T0(2θ−u) − τ0·T) / (√T0·ω) ).
func (p Params) Theorem2Bound(t0 int, tau0, theta float64) float64 {
	if t0 <= 0 {
		return 1
	}
	om := p.Omega()
	expArg := (p.U - theta) * (tau0 - float64(t0)/float64(p.T)*theta) / (om * om)
	phiArg := (float64(t0)*(2*theta-p.U) - tau0*float64(p.T)) / (math.Sqrt(float64(t0)) * om)
	// Guard against overflow for pathological inputs; the comparison
	// semantics (≤ target) are preserved by +Inf.
	if expArg > 700 {
		return math.Inf(1)
	}
	return math.Exp(expArg) * stats.NormalCDF(phiArg)
}

// SNRCS returns the (time-independent) signal-to-noise ratio of the
// stream ingested by vanilla CS (§7.1): α(u²+σ²)/((1−α)σ²).
func (p Params) SNRCS() float64 {
	return p.Alpha * (p.U*p.U + p.Sigma*p.Sigma) / ((1 - p.Alpha) * p.Sigma * p.Sigma)
}

// ROSNRBound returns the Theorem 3 lower bound on the ratio
// SNR_ASCS(t)/SNR_CS at time t of the sampling period:
//
//	(1 − δ*) / ( Φ(−θ(√t − √T0)/(κσ)) · p0^K + (1 − p0^K) ).
//
// Multi-table parameters substitute κ and p0^K as in §7.1.
func (p Params) ROSNRBound(t, t0 int, theta float64) float64 {
	if t < t0 {
		return math.NaN()
	}
	z := -theta * (math.Sqrt(float64(t)) - math.Sqrt(float64(t0))) / (p.Kappa() * p.Sigma)
	p0k := p.P0K()
	denom := stats.NormalCDF(z)*p0k + (1 - p0k)
	return (1 - p.DeltaStar) / denom
}

// SNRASCSBound returns the Theorem 3 lower bound on SNR_ASCS(t) itself.
func (p Params) SNRASCSBound(t, t0 int, theta float64) float64 {
	return p.ROSNRBound(t, t0, theta) * p.SNRCS()
}

// SuggestedDelta implements the §8.1 recipe δ = max(1.01·SP, 0.05).
func (p Params) SuggestedDelta() float64 {
	return math.Max(1.01*p.SaturationProb(), 0.05)
}

// WithSuggestedDeltas returns a copy with Delta set by SuggestedDelta and
// DeltaStar = Delta + 0.15 (§8.1).
func (p Params) WithSuggestedDeltas() Params {
	p.Delta = p.SuggestedDelta()
	p.DeltaStar = p.Delta + 0.15
	return p
}
