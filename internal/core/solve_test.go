package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFindT0Minimal(t *testing.T) {
	p := refParams().WithSuggestedDeltas()
	t0, eff, ok := p.FindT0()
	if !ok {
		t.Fatalf("expected feasible T0, got %v", t0)
	}
	if t0 < p.Gamma || t0 > p.T {
		t.Fatalf("T0 = %d outside [Gamma, T]", t0)
	}
	if b := p.Theorem1Bound(t0, p.Tau0); b > eff+1e-12 {
		t.Errorf("bound at T0 = %v exceeds target %v", b, eff)
	}
	if t0 > p.Gamma {
		if b := p.Theorem1Bound(t0-1, p.Tau0); b <= eff-1e-12 {
			t.Errorf("T0 not minimal: bound at T0-1 = %v already ≤ %v", b, eff)
		}
	}
}

func TestFindT0MonotoneInDelta(t *testing.T) {
	p := refParams().WithSuggestedDeltas()
	t0a, _, _ := p.FindT0()
	p2 := p
	p2.Delta = p.Delta + 0.2
	p2.DeltaStar = p2.Delta + 0.15
	t0b, _, _ := p2.FindT0()
	if t0b > t0a {
		t.Errorf("looser delta should not need longer exploration: %d > %d", t0b, t0a)
	}
}

func TestFindT0InfeasibleDeltaFallsBack(t *testing.T) {
	p := refParams()
	p.Delta = 1e-6 // far below saturation probability
	t0, eff, ok := p.FindT0()
	if !ok {
		t.Fatalf("relaxed target should be reachable, got T0=%d", t0)
	}
	sp := p.SaturationProb()
	if eff <= sp {
		t.Errorf("effective delta %v should exceed SP %v", eff, sp)
	}
	if b := p.Theorem1Bound(t0, p.Tau0); b > eff+1e-12 {
		t.Errorf("bound %v exceeds relaxed target %v", b, eff)
	}
}

func TestFindT0ExhaustedStream(t *testing.T) {
	// A weak signal and a short stream make even T0 = T insufficient.
	p := refParams().WithSuggestedDeltas()
	p.T = 50
	p.U = 0.05
	t0, _, ok := p.FindT0()
	if ok {
		t.Fatalf("expected infeasible, got T0=%d", t0)
	}
	if t0 != p.T {
		t.Errorf("infeasible search should return T, got %d", t0)
	}
}

func TestFindThetaFrontier(t *testing.T) {
	p := refParams().WithSuggestedDeltas()
	t0, effDelta, _ := p.FindT0()
	target := p.DeltaStar - p.Delta
	_ = effDelta
	theta := p.FindTheta(t0, target)
	if theta <= 0 || theta >= p.U {
		t.Fatalf("theta = %v outside (0, U)", theta)
	}
	if b := p.Theorem2Bound(t0, p.Tau0, theta); b > target+1e-9 {
		t.Errorf("bound at theta = %v exceeds target %v", b, target)
	}
	// Slightly above the frontier the bound should be violated (within
	// grid resolution).
	if b := p.Theorem2Bound(t0, p.Tau0, theta+p.U/256); b <= target {
		t.Errorf("theta not maximal: bound %v at theta+step still ≤ %v", b, target)
	}
}

func TestFindThetaMonotoneInBudget(t *testing.T) {
	p := refParams().WithSuggestedDeltas()
	t0, _, _ := p.FindT0()
	small := p.FindTheta(t0, 0.05)
	large := p.FindTheta(t0, 0.3)
	if large < small {
		t.Errorf("larger miss budget should allow steeper threshold: %v < %v", large, small)
	}
}

func TestFindThetaZeroBudget(t *testing.T) {
	p := refParams()
	if got := p.FindTheta(300, 0); got != 0 {
		t.Errorf("theta with zero budget = %v, want 0", got)
	}
	if got := p.FindTheta(300, -1); got != 0 {
		t.Errorf("theta with negative budget = %v, want 0", got)
	}
}

func TestSolveEndToEnd(t *testing.T) {
	p := refParams().WithSuggestedDeltas()
	hp, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if hp.T != p.T || hp.Tau0 != p.Tau0 {
		t.Errorf("schedule echoes wrong T/Tau0: %+v", hp)
	}
	if hp.T0 <= 0 || hp.T0 >= p.T {
		t.Errorf("T0 = %d should be interior", hp.T0)
	}
	if hp.Theta <= 0 || hp.Theta >= p.U {
		t.Errorf("Theta = %v should be in (0,U)", hp.Theta)
	}
	if !hp.DeltaFeasible {
		t.Error("suggested delta should be feasible by construction")
	}
	if !strings.Contains(hp.String(), "T0=") {
		t.Error("String should render schedule")
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	p := refParams()
	p.U = -1
	if _, err := p.Solve(); err == nil {
		t.Error("expected validation error")
	}
}

func TestSolveInfeasibleFallsBackToProportionalT0(t *testing.T) {
	p := refParams().WithSuggestedDeltas()
	p.T = 50
	p.U = 0.05
	hp, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if hp.DeltaFeasible {
		t.Error("infeasible target should be flagged")
	}
	// Theorem 3's proportional exploration, clamped to Gamma.
	want := p.T / 5
	if want < p.Gamma {
		want = p.Gamma
	}
	if hp.T0 != want {
		t.Errorf("fallback T0 = %d, want %d", hp.T0, want)
	}
	if hp.Theta < 0 || hp.Theta >= p.U {
		t.Errorf("fallback theta = %v out of range", hp.Theta)
	}
}

func TestThresholdSchedule(t *testing.T) {
	hp := Hyperparams{T0: 100, Theta: 0.5, Tau0: 1e-4, T: 1000}
	if got := hp.Threshold(50); got != 1e-4 {
		t.Errorf("threshold before T0 = %v", got)
	}
	if got := hp.Threshold(100); got != 1e-4 {
		t.Errorf("threshold at T0 = %v, want tau0", got)
	}
	if got := hp.Threshold(1000); math.Abs(got-(1e-4+0.5*900.0/1000)) > 1e-12 {
		t.Errorf("threshold at T = %v", got)
	}
	// Linearity: equal increments.
	d1 := hp.Threshold(200) - hp.Threshold(100)
	d2 := hp.Threshold(300) - hp.Threshold(200)
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("threshold not linear: %v vs %v", d1, d2)
	}
}

func TestSolvePropertyRandomParams(t *testing.T) {
	// Across random valid parameterizations, Solve must return a
	// schedule whose components satisfy the bounds they were derived
	// from.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		p := Params{
			P:     int64(1000 + rng.Intn(1_000_000)),
			T:     500 + rng.Intn(10_000),
			K:     1 + rng.Intn(10),
			R:     50 + rng.Intn(50_000),
			U:     0.1 + rng.Float64(),
			Sigma: 0.2 + 2*rng.Float64(),
			Alpha: 0.0005 + 0.02*rng.Float64(),
			Tau0:  1e-4,
			Gamma: 30,
		}
		p = p.WithSuggestedDeltas()
		if p.Tau0 >= p.U {
			p.Tau0 = p.U / 100
		}
		hp, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v (params %+v)", trial, err, p)
		}
		if hp.T0 < 1 || hp.T0 > p.T {
			t.Fatalf("trial %d: T0 = %d out of range", trial, hp.T0)
		}
		if hp.Theta < 0 || hp.Theta >= p.U {
			t.Fatalf("trial %d: theta = %v out of [0,U)", trial, hp.Theta)
		}
		if hp.T0 < p.T {
			// The Theorem 1 bound must hold at the solved T0 with the
			// effective delta — except under the proportional fallback,
			// where infeasibility is flagged instead.
			if b := p.Theorem1Bound(hp.T0, p.Tau0); hp.DeltaFeasible && b > hp.EffectiveDelta+1e-9 {
				t.Fatalf("trial %d: bound %v > effective delta %v", trial, b, hp.EffectiveDelta)
			}
			if hp.Theta > 0 {
				if b := p.Theorem2Bound(hp.T0, p.Tau0, hp.Theta); b > p.DeltaStar-p.Delta+1e-6 {
					t.Fatalf("trial %d: theorem2 bound %v > budget %v", trial, b, p.DeltaStar-p.Delta)
				}
			}
			// Threshold never exceeds tau0 + theta.
			if tEnd := hp.Threshold(p.T); tEnd > p.Tau0+hp.Theta+1e-12 {
				t.Fatalf("trial %d: final threshold %v too high", trial, tEnd)
			}
		}
	}
}
