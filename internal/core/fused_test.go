package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
)

// fusedTestEngines builds twin engines with a schedule whose sampling
// phase the seeded stream actually reaches, so both the exploration and
// the gated branches are exercised.
func fusedTestEngines(t *testing.T) (a, b *Engine) {
	t.Helper()
	cfg := countsketch.Config{Tables: 5, Range: 1 << 10, Seed: 21}
	hp := Hyperparams{T0: 50, Theta: 0.05, Tau0: 1e-4, T: 1000}
	var err error
	if a, err = NewEngine(cfg, hp, true); err != nil {
		t.Fatal(err)
	}
	if b, err = NewEngine(cfg, hp, true); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// engineBytes serializes an engine (schedule state, counters, table).
func engineBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestOfferEstimateBitIdentical replays one seeded stream through the
// per-call path (Offer via the interface, then Estimate — the pre-fusion
// covstream sequence) and through OfferEstimate, requiring bit-identical
// estimates at every step and a bit-identical serialized engine at the
// end (tables, schedule position, gate counters).
func TestOfferEstimateBitIdentical(t *testing.T) {
	a, b := fusedTestEngines(t)
	rng := rand.New(rand.NewSource(4))
	const steps, offersPerStep = 400, 32
	for step := 1; step <= steps; step++ {
		a.BeginStep(step)
		b.BeginStep(step)
		for o := 0; o < offersPerStep; o++ {
			key := rng.Uint64() % 2048
			x := rng.NormFloat64()
			if o%5 == 0 {
				x += 3 // a heavy tail keeps some keys above the gate
			}
			a.Offer(key, x)
			ea := a.Estimate(key)
			eb, _ := b.OfferEstimate(key, x)
			if math.Float64bits(ea) != math.Float64bits(eb) {
				t.Fatalf("step %d offer %d: per-call est %v, fused est %v", step, o, ea, eb)
			}
		}
	}
	if !a.Sampling() || !b.Sampling() {
		t.Fatal("stream never reached the sampling phase; gate branch untested")
	}
	fa, ia, oa := a.SampledFraction()
	fb, ib, ob := b.SampledFraction()
	if ia != ib || oa != ob || math.Float64bits(fa) != math.Float64bits(fb) {
		t.Fatalf("gate counters diverged: per-call %v (%d/%d), fused %v (%d/%d)", fa, ia, oa, fb, ib, ob)
	}
	if !bytes.Equal(engineBytes(t, a), engineBytes(t, b)) {
		t.Fatal("serialized engines diverged between per-call and fused paths")
	}
}

// TestOfferPairsBitIdentical replays the same stream through the batch
// entry point in randomized chunk sizes and requires the identical final
// engine, plus estimate parity with the per-call replay.
func TestOfferPairsBitIdentical(t *testing.T) {
	a, b := fusedTestEngines(t)
	rng := rand.New(rand.NewSource(4))
	chunkRng := rand.New(rand.NewSource(9))
	const steps, offersPerStep = 400, 32
	keys := make([]uint64, 0, offersPerStep)
	xs := make([]float64, 0, offersPerStep)
	ests := make([]float64, offersPerStep)
	for step := 1; step <= steps; step++ {
		a.BeginStep(step)
		b.BeginStep(step)
		keys, xs = keys[:0], xs[:0]
		for o := 0; o < offersPerStep; o++ {
			key := rng.Uint64() % 2048
			x := rng.NormFloat64()
			if o%5 == 0 {
				x += 3
			}
			keys = append(keys, key)
			xs = append(xs, x)
		}
		// Per-call reference, collecting the expected estimates.
		want := make([]float64, len(keys))
		for i, key := range keys {
			a.Offer(key, xs[i])
			want[i] = a.Estimate(key)
		}
		// Batched replay in random chunks, alternating nil/filled ests.
		for lo := 0; lo < len(keys); {
			hi := lo + 1 + chunkRng.Intn(offersPerStep)
			if hi > len(keys) {
				hi = len(keys)
			}
			if chunkRng.Intn(4) == 0 {
				b.OfferPairs(keys[lo:hi], xs[lo:hi], nil)
			} else {
				got := ests[:hi-lo]
				b.OfferPairs(keys[lo:hi], xs[lo:hi], got)
				for i, e := range got {
					if math.Float64bits(e) != math.Float64bits(want[lo+i]) {
						t.Fatalf("step %d offer %d: batch est %v, per-call est %v", step, lo+i, e, want[lo+i])
					}
				}
			}
			lo = hi
		}
	}
	if !bytes.Equal(engineBytes(t, a), engineBytes(t, b)) {
		t.Fatal("serialized engines diverged between per-call and batch paths")
	}
}

// TestOfferEstimateAdmitted checks the admitted flag against Admits on
// both sides of the gate.
func TestOfferEstimateAdmitted(t *testing.T) {
	eng, err := NewEngine(countsketch.Config{Tables: 5, Range: 1 << 10, Seed: 3},
		Hyperparams{T0: 1, Theta: 0, Tau0: 0.01, T: 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	eng.BeginStep(1)
	eng.Offer(7, 10) // estimate ≈ 0.1 ≥ τ
	eng.BeginStep(2)
	if got := eng.Admits(7); !got {
		t.Fatal("primed key should be admitted")
	}
	if _, admitted := eng.OfferEstimate(7, 1); !admitted {
		t.Fatal("OfferEstimate reported primed key rejected")
	}
	if _, admitted := eng.OfferEstimate(999999, 1); admitted {
		t.Fatal("OfferEstimate admitted a cold key below τ")
	}
}
