package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
)

// decayTestSchedule is a small solved-looking schedule whose sampling
// period starts early enough that the τ gate is exercised.
var decayTestSchedule = Hyperparams{T0: 40, Theta: 0.02, Tau0: 1e-4, T: 400}

// TestEngineDecayedLambda1Differential drives identical streams through
// the fixed-horizon ASCS engine and the λ=1 decayed engine: per-offer
// estimates, admission decisions, τ values, sampling counters, and the
// final estimates must be bit-identical — the λ=1 decay path is the
// fixed path.
func TestEngineDecayedLambda1Differential(t *testing.T) {
	cfg := countsketch.Config{Tables: 5, Range: 1024, Seed: 19}
	fixed, err := NewEngine(cfg, decayTestSchedule, true)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewEngineDecayed(cfg, decayTestSchedule, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	hot := []uint64{3, 17, 99, 1024}
	for step := 1; step <= decayTestSchedule.T; step++ {
		fixed.BeginStep(step)
		dec.BeginStep(step)
		if math.Float64bits(fixed.tau) != math.Float64bits(dec.tau) {
			t.Fatalf("step %d: τ diverged: %v vs %v", step, fixed.tau, dec.tau)
		}
		for i := 0; i < 12; i++ {
			var k uint64
			var v float64
			if i < len(hot) {
				k, v = hot[i], 0.5+rng.Float64() // heavy signal keys
			} else {
				k, v = rng.Uint64()%(1<<14), rng.NormFloat64()*0.01
			}
			fe, fa := fixed.OfferEstimate(k, v)
			de, da := dec.OfferEstimate(k, v)
			if fa != da || math.Float64bits(fe) != math.Float64bits(de) {
				t.Fatalf("step %d key %d: fixed (%v,%v) vs decayed (%v,%v)", step, k, fe, fa, de, da)
			}
		}
	}
	ff, fi, fo := fixed.SampledFraction()
	df, di, do := dec.SampledFraction()
	if fi != di || fo != do || math.Float64bits(ff) != math.Float64bits(df) {
		t.Fatalf("sampling counters diverged: fixed (%v,%d,%d) vs decayed (%v,%d,%d)", ff, fi, fo, df, di, do)
	}
	for k := uint64(0); k < 1<<14; k += 7 {
		if math.Float64bits(fixed.Estimate(k)) != math.Float64bits(dec.Estimate(k)) {
			t.Fatalf("final estimate for key %d diverged", k)
		}
	}
	if ne := dec.EffectiveSamples(); ne != float64(decayTestSchedule.T) {
		t.Fatalf("λ=1 N_eff = %v, want %d", ne, decayTestSchedule.T)
	}
	// ...and the stream keeps going: past-T steps are fine in decay mode
	// (the engine itself never rejected them; the serving layers do, and
	// their decay-mode gates are tested in internal/shard).
	dec.BeginStep(decayTestSchedule.T + 100)
	dec.Offer(3, 1)
}

// TestEngineDecayedThresholdSaturates checks the decayed schedule runs
// on N_eff: as t → ∞ the τ ramp converges to τ(W) instead of growing
// linearly like the fixed formula would.
func TestEngineDecayedThresholdSaturates(t *testing.T) {
	hp := decayTestSchedule
	w := float64(hp.T)
	lambda := 1 - 1/w
	dec, err := NewEngineDecayed(countsketch.Config{Tables: 3, Range: 256, Seed: 2}, hp, true, lambda)
	if err != nil {
		t.Fatal(err)
	}
	dec.BeginStep(hp.T * 50) // dozens of windows in
	neffCap := 1 / (1 - lambda)
	tauCap := hp.Tau0 + hp.Theta*(neffCap-dec.neff0)/w
	if dec.tau > tauCap+1e-12 {
		t.Fatalf("τ = %v exceeds the saturation cap %v", dec.tau, tauCap)
	}
	if dec.tau < hp.Tau0 {
		t.Fatalf("τ = %v below τ0", dec.tau)
	}
	// Deep into the stream τ must sit near the cap (within 1%), i.e. the
	// ramp saturated rather than still climbing.
	if dec.tau < tauCap*0.99 {
		t.Fatalf("τ = %v has not saturated toward %v", dec.tau, tauCap)
	}
	fixedTau := hp.Threshold(hp.T*50 - 1)
	if fixedTau <= tauCap {
		t.Fatalf("test vacuous: fixed τ %v did not outgrow the cap %v", fixedTau, tauCap)
	}
	if ne := dec.EffectiveSamples(); math.Abs(ne-neffCap) > 1e-6*neffCap {
		t.Fatalf("N_eff = %v, want ≈ %v after many windows", ne, neffCap)
	}
}

// TestEngineDecayedSerializationRoundTrip snapshots a decayed engine
// mid-stream, restores it, and continues both in lockstep — estimates
// and admissions must stay bit-identical.
func TestEngineDecayedSerializationRoundTrip(t *testing.T) {
	hp := decayTestSchedule
	lambda := 1 - 1/float64(hp.T)
	orig, err := NewEngineDecayed(countsketch.Config{Tables: 5, Range: 512, Seed: 23}, hp, true, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for step := 1; step <= 150; step++ {
		orig.BeginStep(step)
		for i := 0; i < 8; i++ {
			orig.Offer(rng.Uint64()%4096, rng.NormFloat64())
		}
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadEngineFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Decaying() || restored.DecayFactor() != lambda {
		t.Fatalf("restored engine lost decay mode: decaying=%v λ=%v", restored.Decaying(), restored.DecayFactor())
	}
	if restored.EffectiveSamples() != orig.EffectiveSamples() {
		t.Fatalf("N_eff diverged across restore: %v vs %v", restored.EffectiveSamples(), orig.EffectiveSamples())
	}
	for step := 151; step <= 400; step++ {
		orig.BeginStep(step)
		restored.BeginStep(step)
		if math.Float64bits(orig.tau) != math.Float64bits(restored.tau) {
			t.Fatalf("step %d: τ diverged after restore", step)
		}
		for i := 0; i < 8; i++ {
			k, v := rng.Uint64()%4096, rng.NormFloat64()
			oe, oa := orig.OfferEstimate(k, v)
			re, ra := restored.OfferEstimate(k, v)
			if oa != ra || math.Float64bits(oe) != math.Float64bits(re) {
				t.Fatalf("step %d: restored engine diverged", step)
			}
		}
	}
}
