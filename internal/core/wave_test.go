package core

import (
	"bytes"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/hashing"
)

// waveStream builds a stream whose keys repeat heavily (so ASCS admits
// real signal and groups regularly contain the same key twice, forcing
// the conflict-screen fallback) and whose values are signed and varied.
func waveStream(n int, seed uint64) (keys []uint64, xs []float64) {
	sm := hashing.NewSplitMix64(seed)
	keys = make([]uint64, n)
	xs = make([]float64, n)
	for i := range keys {
		r := sm.Next()
		if r%4 == 0 {
			keys[i] = r % 23 // hot signal keys, frequent intra-group repeats
			xs[i] = 1e5 + float64(r%100)
		} else {
			keys[i] = 1000 + r%4000 // noise tail
			xs[i] = float64(int64(r%2001)-1000) / 3.0
		}
		if r%7 == 0 {
			xs[i] = -xs[i]
		}
	}
	return keys, xs
}

func newWaveEngine(t *testing.T, lambda float64, group int) *Engine {
	t.Helper()
	cfg := countsketch.Config{Tables: 5, Range: 1 << 10, Seed: 5}
	hp := Hyperparams{T0: 4, Theta: 0.05, Tau0: 1e-6, T: 1 << 16}
	var (
		e   *Engine
		err error
	)
	if lambda == 0 {
		e, err = NewEngine(cfg, hp, true)
	} else {
		e, err = NewEngineDecayed(cfg, hp, true, lambda)
	}
	if err != nil {
		t.Fatal(err)
	}
	e.SetWaveGroup(group)
	return e
}

// TestOfferPairsWaveMatchesScalar is the engine-level differential pin
// of the wave pipeline: identical streams through wave OfferPairs
// (several group sizes) and the scalar fused loop must produce
// bit-identical serialized state (tables, schedule position, counters —
// hence the same τ ramp) and bit-identical per-offer estimates, across
// fixed-horizon and decay modes (λ = 1 and λ < 1) and across both the
// estimating and pure-ingest call shapes. The stream crosses T0 inside
// a batch and repeats keys within groups, so the exploration path, the
// gather/scatter path, and the conflict-screen fallback all execute.
func TestOfferPairsWaveMatchesScalar(t *testing.T) {
	for _, lambda := range []float64{0, 1, 0.9995} {
		for _, g := range []int{2, 5, 32, 64} {
			scalar := newWaveEngine(t, lambda, 1)
			wave := newWaveEngine(t, lambda, g)
			keys, xs := waveStream(6000, 77)
			se := make([]float64, 150)
			we := make([]float64, 150)
			for step, lo := 1, 0; lo < len(keys); step, lo = step+1, lo+150 {
				scalar.BeginStep(step)
				wave.BeginStep(step)
				var sd, wd []float64
				if step%3 != 0 {
					sd, wd = se, we
				}
				scalar.OfferPairs(keys[lo:lo+150], xs[lo:lo+150], sd)
				wave.OfferPairs(keys[lo:lo+150], xs[lo:lo+150], wd)
				if sd != nil {
					for i := range sd {
						if sd[i] != wd[i] {
							t.Fatalf("λ=%v g=%d step %d offer %d: scalar est %v != wave %v",
								lambda, g, step, i, sd[i], wd[i])
						}
					}
				}
			}
			sf, si, so := scalar.SampledFraction()
			wf, wi, wo := wave.SampledFraction()
			if si != wi || so != wo || sf != wf {
				t.Fatalf("λ=%v g=%d: counters diverge: scalar %v/%d/%d wave %v/%d/%d",
					lambda, g, sf, si, so, wf, wi, wo)
			}
			var bs, bw bytes.Buffer
			if _, err := scalar.WriteTo(&bs); err != nil {
				t.Fatal(err)
			}
			if _, err := wave.WriteTo(&bw); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bs.Bytes(), bw.Bytes()) {
				t.Fatalf("λ=%v g=%d: serialized engine state diverges", lambda, g)
			}
		}
	}
}

// TestWaveGroupTuning pins the WaveTuner surface: default group,
// clamping, and the scalar setting.
func TestWaveGroupTuning(t *testing.T) {
	e := newWaveEngine(t, 0, 0)
	e.SetWaveGroup(0)
	if got := e.WaveGroup(); got != 1 {
		t.Fatalf("SetWaveGroup(0) → %d, want 1 (scalar)", got)
	}
	e.SetWaveGroup(1 << 30)
	if got := e.WaveGroup(); got != countsketch.MaxWaveGroup {
		t.Fatalf("oversize group not clamped: %d", got)
	}
	f, err := NewEngine(countsketch.Config{Tables: 5, Range: 64, Seed: 1},
		Hyperparams{T0: 1, Theta: 0, Tau0: 1e-9, T: 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.WaveGroup(); got != countsketch.WaveGroup {
		t.Fatalf("default group %d, want %d", got, countsketch.WaveGroup)
	}
}

// TestWaveSurvivesRestore pins that a deserialized engine (whose wave
// scratch is rebuilt lazily on first OfferPairs) continues
// bit-identically to the original on the wave path.
func TestWaveSurvivesRestore(t *testing.T) {
	orig := newWaveEngine(t, 1, 32)
	keys, xs := waveStream(4000, 13)
	half := len(keys) / 2
	step := 1
	for lo := 0; lo < half; step, lo = step+1, lo+100 {
		orig.BeginStep(step)
		orig.OfferPairs(keys[lo:lo+100], xs[lo:lo+100], nil)
	}
	var snap bytes.Buffer
	if _, err := orig.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadEngineFrom(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for lo := half; lo < len(keys); step, lo = step+1, lo+100 {
		orig.BeginStep(step)
		restored.BeginStep(step)
		orig.OfferPairs(keys[lo:lo+100], xs[lo:lo+100], nil)
		restored.OfferPairs(keys[lo:lo+100], xs[lo:lo+100], nil)
	}
	var bo, br bytes.Buffer
	if _, err := orig.WriteTo(&bo); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.WriteTo(&br); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bo.Bytes(), br.Bytes()) {
		t.Fatal("restored engine diverges from original on the wave path")
	}
}
