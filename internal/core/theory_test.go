package core

import (
	"math"
	"testing"
)

// refParams is a small but realistic parameterization (p/R = 20, as in
// the paper's §8.3 experiments).
func refParams() Params {
	return Params{
		P: 499500, T: 6000, K: 5, R: 25000,
		U: 0.5, Sigma: 1, Alpha: 0.005,
		Delta: 0.05, DeltaStar: 0.2, Tau0: 1e-4, Gamma: 30,
	}
}

func TestValidate(t *testing.T) {
	good := refParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mut := []func(*Params){
		func(p *Params) { p.P = 1 },
		func(p *Params) { p.T = 0 },
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.K = 65 },
		func(p *Params) { p.R = 1 },
		func(p *Params) { p.U = 0 },
		func(p *Params) { p.U = math.Inf(1) },
		func(p *Params) { p.Sigma = 0 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Alpha = 1 },
		func(p *Params) { p.Tau0 = -0.1 },
		func(p *Params) { p.Tau0 = 0.6 },
		func(p *Params) { p.Delta = 0 },
		func(p *Params) { p.DeltaStar = 0.05 },
		func(p *Params) { p.Gamma = 0 },
	}
	for i, m := range mut {
		p := refParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted invalid params %+v", i, p)
		}
	}
}

func TestP0AndSaturation(t *testing.T) {
	p := refParams()
	p0 := p.P0()
	if p0 <= 0 || p0 >= 1 {
		t.Fatalf("P0 = %v, want in (0,1)", p0)
	}
	// Closed form check: (1 - α/R)^(P-1).
	want := math.Pow(1-p.Alpha/float64(p.R), float64(p.P-1))
	if math.Abs(p0-want) > 1e-9 {
		t.Errorf("P0 = %v, want %v", p0, want)
	}
	if got := p.P0K(); math.Abs(got-math.Pow(p0, 5)) > 1e-12 {
		t.Errorf("P0K = %v", got)
	}
	if got := p.SaturationProb(); math.Abs(got-(1-p.P0K())) > 1e-12 {
		t.Errorf("SaturationProb = %v", got)
	}
	// More signals (bigger alpha) => more collisions => smaller p0.
	denser := p
	denser.Alpha = 0.05
	if denser.P0() >= p0 {
		t.Error("P0 should decrease with alpha")
	}
	// More buckets => fewer collisions => larger p0.
	wider := p
	wider.R = 10 * p.R
	if wider.P0() <= p0 {
		t.Error("P0 should increase with R")
	}
}

func TestKappa(t *testing.T) {
	p := refParams()
	p.K = 1
	base := float64(p.P-1) * (1 - p.Alpha) / (float64(p.R) - p.Alpha)
	if got, want := p.Kappa(), math.Sqrt(1+base); math.Abs(got-want) > 1e-12 {
		t.Errorf("kappa(K=1) = %v, want %v", got, want)
	}
	p.K = 5
	if got, want := p.Kappa(), math.Sqrt(1+math.Pi*base/10); math.Abs(got-want) > 1e-12 {
		t.Errorf("kappa(K=5) = %v, want %v", got, want)
	}
	// The median of K>=2 tables concentrates: kappa should shrink with K.
	p4 := p
	p4.K = 4
	p8 := p
	p8.K = 8
	if !(p8.Kappa() < p4.Kappa()) {
		t.Error("kappa should decrease with K")
	}
}

func TestOmegaNearSigma(t *testing.T) {
	p := refParams()
	if om := p.Omega(); math.Abs(om-p.Sigma) > 1e-3 {
		t.Errorf("omega = %v, expected ≈ sigma = %v (paper's T² damping)", om, p.Sigma)
	}
	p.K = 1
	if om := p.Omega(); !(om >= p.Sigma) {
		t.Errorf("omega(K=1) = %v, want ≥ sigma", om)
	}
}

func TestTheorem1BoundShape(t *testing.T) {
	p := refParams()
	sp := p.SaturationProb()
	prev := 2.0
	for _, t0 := range []int{30, 100, 300, 1000, 3000, 6000} {
		b := p.Theorem1Bound(t0, p.Tau0)
		if b < sp-1e-12 || b > 1+1e-12 {
			t.Fatalf("bound(%d) = %v outside [SP=%v, 1]", t0, b, sp)
		}
		if b > prev+1e-12 {
			t.Fatalf("bound not decreasing at T0=%d: %v > %v", t0, b, prev)
		}
		prev = b
	}
	// Larger tau0 makes missing more likely.
	if p.Theorem1Bound(500, 1e-3) < p.Theorem1Bound(500, 1e-4) {
		t.Error("bound should increase with tau0")
	}
	if got := p.Theorem1Bound(0, p.Tau0); got != 1 {
		t.Errorf("bound at T0=0 = %v, want 1", got)
	}
}

func TestTheorem2BoundShape(t *testing.T) {
	p := refParams()
	t0 := 300
	// Very small slopes are almost never missed; slopes near u are.
	small := p.Theorem2Bound(t0, p.Tau0, 0.01*p.U)
	big := p.Theorem2Bound(t0, p.Tau0, 0.99*p.U)
	if small > 0.05 {
		t.Errorf("bound at tiny theta = %v, want near 0", small)
	}
	if big < 0.5 {
		t.Errorf("bound at theta≈u = %v, want large", big)
	}
	if got := p.Theorem2Bound(0, p.Tau0, 0.1); got != 1 {
		t.Errorf("bound at T0=0 = %v, want 1", got)
	}
}

func TestSNRCS(t *testing.T) {
	p := refParams()
	want := p.Alpha * (p.U*p.U + 1) / (1 - p.Alpha)
	if got := p.SNRCS(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SNRCS = %v, want %v", got, want)
	}
}

func TestROSNRBound(t *testing.T) {
	p := refParams()
	hp, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if hp.Theta <= 0 {
		t.Fatalf("expected positive theta, got %v (hp=%v)", hp.Theta, hp)
	}
	// At t = T0 the ratio bound is (1-δ*)/(Φ(0)p0K + 1-p0K) < 1; it must
	// rise monotonically toward (1-δ*)/(1-p0K).
	prev := 0.0
	for _, tt := range []int{hp.T0, hp.T0 + 500, hp.T0 + 2000, p.T} {
		r := p.ROSNRBound(tt, hp.T0, hp.Theta)
		if r < prev-1e-12 {
			t.Fatalf("ROSNR bound decreasing at t=%d: %v < %v", tt, r, prev)
		}
		prev = r
	}
	limit := (1 - p.DeltaStar) / p.SaturationProb()
	if prev > limit+1e-9 {
		t.Errorf("ROSNR bound %v exceeds limit %v", prev, limit)
	}
	if !math.IsNaN(p.ROSNRBound(10, 100, hp.Theta)) {
		t.Error("ROSNR before T0 should be NaN")
	}
	if got := p.SNRASCSBound(p.T, hp.T0, hp.Theta); math.Abs(got-prev*p.SNRCS()) > 1e-9 {
		t.Errorf("SNRASCSBound = %v", got)
	}
}

func TestSuggestedDelta(t *testing.T) {
	p := refParams()
	sp := p.SaturationProb()
	want := 1.01 * sp
	if want < 0.05 {
		want = 0.05
	}
	if got := p.SuggestedDelta(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SuggestedDelta = %v, want %v", got, want)
	}
	q := p.WithSuggestedDeltas()
	if q.Delta != p.SuggestedDelta() || math.Abs(q.DeltaStar-q.Delta-0.15) > 1e-12 {
		t.Errorf("WithSuggestedDeltas = (%v, %v)", q.Delta, q.DeltaStar)
	}
}
