package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/countsketch"
	"repro/internal/sketchapi"
)

// Engine serialization magics: v1 is the fixed-horizon layout, v2
// appends the exponential-decay state (λ, N_eff at the current and
// previous step). Fixed-horizon engines keep writing v1
// byte-identically; decayed engines — including λ = 1 unbounded mode,
// whose semantics must survive a restore — write v2.
const (
	engineMagic   = uint32(0xA5C5E001)
	engineMagicV2 = uint32(0xA5C5E002)
)

// WriteTo serializes the engine — schedule, step position, counters,
// decay state and the underlying sketch — so a long sketching job can
// be checkpointed and resumed (or shipped for offline retrieval).
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	return e.writeTo(w, e.sk.WriteTo)
}

// WriteToFolded implements sketchapi.FoldedWriter: identical engine
// header, sketch streamed pre-folded to the given level.
func (e *Engine) WriteToFolded(w io.Writer, level int) (int64, error) {
	return e.writeTo(w, func(w io.Writer) (int64, error) { return e.sk.WriteToFolded(w, level) })
}

func (e *Engine) writeTo(w io.Writer, writeSketch func(io.Writer) (int64, error)) (int64, error) {
	hdr := make([]byte, 4+8*8+1, 4+8*11+1)
	binary.LittleEndian.PutUint32(hdr[0:], engineMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(e.hp.T0))
	binary.LittleEndian.PutUint64(hdr[12:], math.Float64bits(e.hp.Theta))
	binary.LittleEndian.PutUint64(hdr[20:], math.Float64bits(e.hp.Tau0))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(e.hp.T))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(e.t))
	binary.LittleEndian.PutUint64(hdr[44:], e.offeredSampling)
	binary.LittleEndian.PutUint64(hdr[52:], e.insertedSampling)
	binary.LittleEndian.PutUint64(hdr[60:], math.Float64bits(e.tau))
	if e.absolute {
		hdr[68] = 1
	}
	if e.decay {
		binary.LittleEndian.PutUint32(hdr[0:], engineMagicV2)
		hdr = hdr[:4+8*11+1]
		binary.LittleEndian.PutUint64(hdr[69:], math.Float64bits(e.lambda))
		binary.LittleEndian.PutUint64(hdr[77:], math.Float64bits(e.neff))
		binary.LittleEndian.PutUint64(hdr[85:], math.Float64bits(e.prevNeff))
	}
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	sn, err := writeSketch(w)
	return total + sn, err
}

// ReadEngineFrom reconstructs an engine serialized by WriteTo (either
// format version). The caller resumes by continuing BeginStep/Offer
// from the recorded step.
func ReadEngineFrom(r io.Reader) (*Engine, error) {
	hdr := make([]byte, 4+8*8+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("core: reading engine header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic != engineMagic && magic != engineMagicV2 {
		return nil, fmt.Errorf("core: bad engine magic")
	}
	e := &Engine{
		hp: Hyperparams{
			T0:    int(binary.LittleEndian.Uint64(hdr[4:])),
			Theta: math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:])),
			Tau0:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[20:])),
			T:     int(binary.LittleEndian.Uint64(hdr[28:])),
		},
		t:                int(binary.LittleEndian.Uint64(hdr[36:])),
		offeredSampling:  binary.LittleEndian.Uint64(hdr[44:]),
		insertedSampling: binary.LittleEndian.Uint64(hdr[52:]),
		tau:              math.Float64frombits(binary.LittleEndian.Uint64(hdr[60:])),
		absolute:         hdr[68] == 1,
		lambda:           1,
	}
	if magic == engineMagicV2 {
		var ext [24]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return nil, fmt.Errorf("core: reading engine decay state: %w", err)
		}
		e.decay = true
		e.lambda = math.Float64frombits(binary.LittleEndian.Uint64(ext[0:]))
		e.neff = math.Float64frombits(binary.LittleEndian.Uint64(ext[8:]))
		e.prevNeff = math.Float64frombits(binary.LittleEndian.Uint64(ext[16:]))
		if err := sketchapi.ValidateDecay(e.lambda); err != nil {
			return nil, fmt.Errorf("core: corrupt engine decay factor: %w", err)
		}
	}
	sk, err := countsketch.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	e.sk = sk
	if e.hp.T <= 0 || e.hp.T0 < 0 || e.hp.T0 > e.hp.T {
		return nil, fmt.Errorf("core: corrupt schedule %+v", e.hp)
	}
	e.invT = 1 / float64(e.hp.T)
	e.sampling = e.t > e.hp.T0
	if e.decay {
		e.neff0 = sketchapi.AdvanceEffective(0, e.lambda, e.hp.T0)
	}
	return e, nil
}
