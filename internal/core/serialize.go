package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/countsketch"
)

const engineMagic = uint32(0xA5C5E001)

// WriteTo serializes the engine — schedule, step position, counters and
// the underlying sketch — so a long sketching job can be checkpointed
// and resumed (or shipped for offline retrieval).
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 4+8*8+1)
	binary.LittleEndian.PutUint32(hdr[0:], engineMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(e.hp.T0))
	binary.LittleEndian.PutUint64(hdr[12:], math.Float64bits(e.hp.Theta))
	binary.LittleEndian.PutUint64(hdr[20:], math.Float64bits(e.hp.Tau0))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(e.hp.T))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(e.t))
	binary.LittleEndian.PutUint64(hdr[44:], e.offeredSampling)
	binary.LittleEndian.PutUint64(hdr[52:], e.insertedSampling)
	binary.LittleEndian.PutUint64(hdr[60:], math.Float64bits(e.tau))
	if e.absolute {
		hdr[68] = 1
	}
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	sn, err := e.sk.WriteTo(w)
	return total + sn, err
}

// ReadEngineFrom reconstructs an engine serialized by WriteTo. The
// caller resumes by continuing BeginStep/Offer from the recorded step.
func ReadEngineFrom(r io.Reader) (*Engine, error) {
	hdr := make([]byte, 4+8*8+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("core: reading engine header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != engineMagic {
		return nil, fmt.Errorf("core: bad engine magic")
	}
	sk, err := countsketch.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		sk: sk,
		hp: Hyperparams{
			T0:    int(binary.LittleEndian.Uint64(hdr[4:])),
			Theta: math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:])),
			Tau0:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[20:])),
			T:     int(binary.LittleEndian.Uint64(hdr[28:])),
		},
		t:                int(binary.LittleEndian.Uint64(hdr[36:])),
		offeredSampling:  binary.LittleEndian.Uint64(hdr[44:]),
		insertedSampling: binary.LittleEndian.Uint64(hdr[52:]),
		tau:              math.Float64frombits(binary.LittleEndian.Uint64(hdr[60:])),
		absolute:         hdr[68] == 1,
	}
	if e.hp.T <= 0 || e.hp.T0 < 0 || e.hp.T0 > e.hp.T {
		return nil, fmt.Errorf("core: corrupt schedule %+v", e.hp)
	}
	e.invT = 1 / float64(e.hp.T)
	e.sampling = e.t > e.hp.T0
	return e, nil
}
