package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/countsketch"
)

func TestNewEngineValidation(t *testing.T) {
	cfg := countsketch.Config{Tables: 5, Range: 64, Seed: 1}
	cases := []Hyperparams{
		{T0: 10, Theta: 0.1, T: 0},
		{T0: -1, Theta: 0.1, T: 100},
		{T0: 101, Theta: 0.1, T: 100},
		{T0: 10, Theta: -0.1, T: 100},
		{T0: 10, Theta: math.NaN(), T: 100},
	}
	for i, hp := range cases {
		if _, err := NewEngine(cfg, hp, true); err == nil {
			t.Errorf("case %d: expected error for %+v", i, hp)
		}
	}
	if _, err := NewEngine(countsketch.Config{}, Hyperparams{T0: 1, T: 10}, true); err == nil {
		t.Error("expected sketch config error")
	}
}

func TestEngineExplorationInsertsEverything(t *testing.T) {
	eng, err := NewEngine(countsketch.Config{Tables: 5, Range: 1 << 14, Seed: 3},
		Hyperparams{T0: 10, Theta: 0.5, Tau0: 0.01, T: 10}, true)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 10; step++ {
		eng.BeginStep(step)
		eng.Offer(1, 1.0)  // mean 1
		eng.Offer(2, -0.5) // mean -0.5
	}
	if got := eng.Estimate(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("estimate(1) = %v, want 1", got)
	}
	if got := eng.Estimate(2); math.Abs(got+0.5) > 1e-12 {
		t.Errorf("estimate(2) = %v, want -0.5", got)
	}
	if eng.Sampling() {
		t.Error("engine should never have entered sampling")
	}
	if frac, _, _ := eng.SampledFraction(); !math.IsNaN(frac) {
		t.Errorf("SampledFraction with no sampling offers = %v, want NaN", frac)
	}
}

func TestEngineSamplingGate(t *testing.T) {
	// T=100, T0=50; during exploration key A accumulates a large positive
	// estimate and key B stays at zero. During sampling, A passes the
	// gate and B does not.
	hp := Hyperparams{T0: 50, Theta: 0.0, Tau0: 0.05, T: 100}
	eng, err := NewEngine(countsketch.Config{Tables: 5, Range: 1 << 14, Seed: 4}, hp, true)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 50; step++ {
		eng.BeginStep(step)
		eng.Offer(10, 1.0) // estimate reaches 50/100 = 0.5 ≥ 0.05
		// key 20 receives nothing: estimate 0 < 0.05
	}
	eng.BeginStep(51)
	if !eng.Sampling() {
		t.Fatal("should be sampling after T0")
	}
	if !eng.Admits(10) {
		t.Error("strong key should pass the gate")
	}
	if eng.Admits(20) {
		t.Error("zero key should be filtered")
	}
	eng.Offer(10, 1.0)
	eng.Offer(20, 1.0)
	frac, inserted, offered := eng.SampledFraction()
	if offered != 2 || inserted != 1 || frac != 0.5 {
		t.Errorf("counters = (%v, %d, %d)", frac, inserted, offered)
	}
	// The filtered key's estimate is unchanged (still ≈ 0).
	if got := eng.Estimate(20); math.Abs(got) > 1e-9 {
		t.Errorf("filtered key estimate = %v, want 0", got)
	}
}

func TestEngineAbsoluteVsOneSided(t *testing.T) {
	hp := Hyperparams{T0: 10, Theta: 0, Tau0: 0.05, T: 20}
	mk := func(absolute bool) *Engine {
		eng, err := NewEngine(countsketch.Config{Tables: 5, Range: 1 << 14, Seed: 5}, hp, absolute)
		if err != nil {
			t.Fatal(err)
		}
		for step := 1; step <= 10; step++ {
			eng.BeginStep(step)
			eng.Offer(7, -1.0) // strongly negative mean
		}
		eng.BeginStep(11)
		return eng
	}
	if !mk(true).Admits(7) {
		t.Error("two-sided gate should admit strong negative keys")
	}
	if mk(false).Admits(7) {
		t.Error("one-sided gate should filter negative keys")
	}
}

func TestEngineThresholdRises(t *testing.T) {
	hp := Hyperparams{T0: 10, Theta: 1.0, Tau0: 0.0, T: 100}
	eng, err := NewEngine(countsketch.Config{Tables: 5, Range: 1 << 14, Seed: 6}, hp, true)
	if err != nil {
		t.Fatal(err)
	}
	// Key with final-mean estimate 0.3 after exploration: estimate after
	// t steps of value 3.0 is 3t/T.
	for step := 1; step <= 10; step++ {
		eng.BeginStep(step)
		eng.Offer(1, 3.0)
	}
	// At step 31, τ(30) = (30-10)/100 = 0.20; estimate is 0.30 → admitted.
	eng.BeginStep(31)
	if !eng.Admits(1) {
		t.Error("key should pass while threshold low")
	}
	// At step 61, τ(60) = 0.50 > 0.30 → filtered.
	eng.BeginStep(61)
	if eng.Admits(1) {
		t.Error("key should be filtered once threshold surpasses estimate")
	}
}

func TestNewAuto(t *testing.T) {
	p := refParams().WithSuggestedDeltas()
	eng, hp, err := NewAuto(p, 99, true)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Schedule() != hp {
		t.Error("engine schedule should match returned hyperparams")
	}
	if eng.Name() != "ASCS" {
		t.Errorf("Name = %q", eng.Name())
	}
	if eng.Bytes() != eng.Sketch().Bytes() {
		t.Error("Bytes should delegate")
	}
	bad := p
	bad.U = -1
	if _, _, err := NewAuto(bad, 99, true); err == nil {
		t.Error("expected solve error")
	}
}

// TestASCSBeatsCSIntegration reproduces the paper's headline effect on
// the abstract sparse-mean problem: with tight memory and noisy
// background, ASCS recovers the signal set far more precisely than
// vanilla CS from the identical stream.
func TestASCSBeatsCSIntegration(t *testing.T) {
	const (
		p       = 2000
		nsig    = 20
		T       = 3000
		u       = 0.5
		bgStd   = 0.05 // weak non-zero background means (the §7.2 regime)
		tables  = 5
		buckets = 100 // p/R = 20 variables per bucket
	)
	rng := rand.New(rand.NewSource(42))
	mu := make([]float64, p)
	for i := 0; i < nsig; i++ {
		mu[i] = u + 0.5*rng.Float64() // signals in [0.5, 1.0]
	}
	for i := nsig; i < p; i++ {
		mu[i] = bgStd * rng.NormFloat64()
	}

	params := Params{
		P: p, T: T, K: tables, R: buckets,
		U: u, Sigma: 1, Alpha: float64(nsig) / p,
		Tau0: 1e-4, Gamma: 30,
	}
	params = params.WithSuggestedDeltas()
	ascs, hp, err := NewAuto(params, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if hp.T0 >= T/2 {
		t.Fatalf("exploration too long for the test to be meaningful: %+v", hp)
	}
	cs, err := countsketch.NewMeanSketch(countsketch.Config{Tables: tables, Range: buckets, Seed: 7}, T)
	if err != nil {
		t.Fatal(err)
	}

	xs := make([]float64, p)
	for step := 1; step <= T; step++ {
		for i := 0; i < p; i++ {
			xs[i] = mu[i] + rng.NormFloat64()
		}
		ascs.BeginStep(step)
		cs.BeginStep(step)
		for i := 0; i < p; i++ {
			key := uint64(i)
			ascs.Offer(key, xs[i])
			cs.Offer(key, xs[i])
		}
	}

	precisionAt := func(est func(uint64) float64) float64 {
		type kv struct {
			k uint64
			v float64
		}
		all := make([]kv, p)
		for i := 0; i < p; i++ {
			all[i] = kv{uint64(i), est(uint64(i))}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].v > all[b].v })
		hit := 0
		for _, e := range all[:nsig] {
			if e.k < nsig {
				hit++
			}
		}
		return float64(hit) / nsig
	}

	pASCS := precisionAt(ascs.Estimate)
	pCS := precisionAt(cs.Estimate)
	t.Logf("precision@%d: ASCS=%.2f CS=%.2f (schedule %v)", nsig, pASCS, pCS, hp)
	if pASCS < pCS {
		t.Errorf("ASCS precision %.2f below CS %.2f", pASCS, pCS)
	}
	if pASCS < 0.7 {
		t.Errorf("ASCS precision %.2f too low", pASCS)
	}
	// The active sampler must actually be filtering: the admitted
	// fraction during sampling should be well below one.
	frac, _, _ := ascs.SampledFraction()
	if !(frac < 0.5) {
		t.Errorf("sampled fraction = %v, expected < 0.5", frac)
	}
}

func TestEngineExplorationOnlyEqualsCS(t *testing.T) {
	// With T0 = T the engine never samples; with the same seed its
	// estimates must be bit-identical to vanilla CS.
	const T = 120
	hp := Hyperparams{T0: T, Theta: 0, Tau0: 1e-4, T: T}
	cfg := countsketch.Config{Tables: 5, Range: 128, Seed: 44}
	eng, err := NewEngine(cfg, hp, true)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := countsketch.NewMeanSketch(cfg, T)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for step := 1; step <= T; step++ {
		eng.BeginStep(step)
		cs.BeginStep(step)
		for k := uint64(0); k < 300; k++ {
			x := rng.NormFloat64()
			eng.Offer(k, x)
			cs.Offer(k, x)
		}
	}
	for k := uint64(0); k < 300; k++ {
		if eng.Estimate(k) != cs.Estimate(k) {
			t.Fatalf("degenerate ASCS diverges from CS at key %d", k)
		}
	}
}
