package core

import (
	"fmt"
	"math"

	"repro/internal/countsketch"
	"repro/internal/sketchapi"
)

// Engine is the Active Sampling Count Sketch of Algorithm 2. During the
// exploration period (steps 1..T0) every offered value is inserted into
// the underlying count sketch. During the sampling period (steps
// T0+1..T) a value for key i is inserted only when the current estimate
// μ̂_i^{(t−1)} clears the threshold τ(t−1), which rises linearly with t.
// Filtering the low-estimate (overwhelmingly noise) keys shrinks the
// collision mass in the buckets and raises the SNR of what the sketch
// stores (Theorem 3).
type Engine struct {
	sk   *countsketch.Sketch
	hp   Hyperparams
	invT float64

	t        int
	tau      float64 // τ(t−1), the gate for the current step
	sampling bool
	// Absolute selects the two-sided gate |μ̂| ≥ τ of Theorems 1–2; when
	// false only positive estimates pass (Algorithm 2 as written).
	absolute bool

	// Exponential-decay (unbounded-stream) mode, sketchapi.Decayer: the
	// sketch ages by λ per step (lazily) and the schedule runs on the
	// effective sample count N_eff(t) = (1−λ^t)/(1−λ) instead of t —
	// hp.T is then the effective window W the schedule was solved for,
	// not a horizon. neff/prevNeff track N_eff at the current and
	// previous step; neff0 is N_eff(T0), the sampling-period origin of
	// the decayed threshold ramp. At λ = 1 every quantity reduces to its
	// fixed-horizon counterpart exactly and the classic τ formula is
	// used verbatim, so the two modes are bit-identical.
	decay    bool
	lambda   float64
	neff     float64
	prevNeff float64
	neff0    float64

	offeredSampling  uint64
	insertedSampling uint64

	// Health telemetry (sketchapi.HealthReporter): exploration-period
	// insert count, Σ|x| mass split by gate outcome (raw offered values,
	// pre-1/T), and wave-pipeline staging counters. Owned single-writer
	// by the ingest path like every other engine counter.
	explorationInserts uint64
	admittedMass       float64
	rejectedMass       float64
	waveGroups         uint64
	waveFbConflict     uint64
	waveFbExploration  uint64

	// slots is the reusable slot scratch of the fused ingest path. Offer
	// mutates engine state, so the Ingestor contract already makes the
	// offer methods single-writer; keeping the buffer here (instead of on
	// the stack) stops it escaping through the hash-family interface
	// call.
	slots [countsketch.MaxTables]countsketch.Slot

	// wave is the group-size state and lazily built scratch of the
	// wave-pipelined OfferPairs path (sketchapi.WaveTuner).
	wave countsketch.WaveTune
}

var (
	_ sketchapi.OfferEstimator = (*Engine)(nil)
	_ sketchapi.RowOfferer     = (*Engine)(nil)
	_ sketchapi.Decayer        = (*Engine)(nil)
	_ sketchapi.WaveTuner      = (*Engine)(nil)
	_ sketchapi.HealthReporter = (*Engine)(nil)
	_ sketchapi.Folder         = (*Engine)(nil)
	_ sketchapi.FoldedWriter   = (*Engine)(nil)
)

// NewEngine builds an ASCS engine over a fresh count sketch with the
// given shape and the solved schedule hp. absolute selects the two-sided
// threshold test (recommended; matches the theorems).
func NewEngine(cfg countsketch.Config, hp Hyperparams, absolute bool) (*Engine, error) {
	if hp.T <= 0 {
		return nil, fmt.Errorf("core: schedule has non-positive T (%d)", hp.T)
	}
	if hp.T0 < 0 || hp.T0 > hp.T {
		return nil, fmt.Errorf("core: T0 (%d) outside [0,T=%d]", hp.T0, hp.T)
	}
	if hp.Theta < 0 || math.IsNaN(hp.Theta) {
		return nil, fmt.Errorf("core: invalid theta %v", hp.Theta)
	}
	sk, err := countsketch.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{sk: sk, hp: hp, invT: 1 / float64(hp.T), absolute: absolute, lambda: 1}, nil
}

// NewEngineDecayed builds an ASCS engine in exponential-decay
// (unbounded-stream) mode: hp is a schedule solved for T = W, the
// effective window round(1/(1−λ)), and the engine substitutes the
// decayed effective sample count N_eff(t) for t in the threshold ramp,
// so τ saturates at τ(W) instead of growing without bound. λ = 1
// disables aging (and leaves N_eff = t) while still serving an
// unbounded stream — bit-identical to the fixed-horizon engine over
// any shared prefix.
func NewEngineDecayed(cfg countsketch.Config, hp Hyperparams, absolute bool, lambda float64) (*Engine, error) {
	if err := sketchapi.ValidateDecay(lambda); err != nil {
		return nil, err
	}
	e, err := NewEngine(cfg, hp, absolute)
	if err != nil {
		return nil, err
	}
	e.decay = true
	e.lambda = lambda
	e.neff0 = sketchapi.AdvanceEffective(0, lambda, hp.T0)
	return e, nil
}

// NewAuto solves Algorithm 3 for params and builds the engine, pairing
// the sketch shape (params.K, params.R) with the schedule.
func NewAuto(params Params, seed uint64, absolute bool) (*Engine, Hyperparams, error) {
	hp, err := params.Solve()
	if err != nil {
		return nil, Hyperparams{}, err
	}
	eng, err := NewEngine(countsketch.Config{Tables: params.K, Range: params.R, Seed: seed}, hp, absolute)
	if err != nil {
		return nil, Hyperparams{}, err
	}
	return eng, hp, nil
}

// BeginStep advances the engine to time step t (1-based, non-decreasing)
// and precomputes the gate τ(t−1). In decay mode it also applies the
// aging ticks of the steps advanced (one lazy O(1) sketch decay) and
// moves the effective sample count forward.
func (e *Engine) BeginStep(t int) {
	if e.decay {
		if steps := t - e.t; steps > 0 {
			e.prevNeff = sketchapi.AdvanceEffective(e.neff, e.lambda, steps-1)
			e.neff = e.prevNeff*e.lambda + 1
			e.sk.Decay(sketchapi.DecayPow(e.lambda, steps))
		}
	}
	e.t = t
	if t > e.hp.T0 {
		e.sampling = true
		if e.decay && e.lambda != 1 {
			e.tau = e.hp.ThresholdEff(e.prevNeff, e.neff0)
		} else {
			e.tau = e.hp.Threshold(t - 1)
		}
	}
}

// passes is the τ gate of Algorithm 2 applied to a current estimate:
// two-sided |μ̂| ≥ τ when absolute, one-sided μ̂ ≥ τ otherwise. Every
// admission decision (Admits and both fused offer paths) routes through
// this one predicate.
func (e *Engine) passes(est float64) bool {
	if e.absolute {
		return math.Abs(est) >= e.tau
	}
	return est >= e.tau
}

// Admits reports whether an observation for key would be inserted at the
// current step, without inserting anything. Exploration admits all keys.
func (e *Engine) Admits(key uint64) bool {
	if !e.sampling {
		return true
	}
	return e.passes(e.sk.Estimate(key))
}

// Offer presents X_i^{(t)} = x for key i and inserts x/T if the gate
// passes (Algorithm 2 lines 6 and 10–12). The gate estimate and the
// insertion share one Locate: the key is hashed once, not twice.
func (e *Engine) Offer(key uint64, x float64) {
	e.sk.Locate(key, &e.slots)
	e.offerSlots(&e.slots, x)
}

// offerSlots runs the gate-then-insert step against precomputed slots
// and reports whether the observation was absorbed.
func (e *Engine) offerSlots(slots *[countsketch.MaxTables]countsketch.Slot, x float64) bool {
	if !e.sampling {
		e.explorationInserts++
		e.admittedMass += math.Abs(x)
		e.sk.AddSlots(slots, x*e.invT)
		return true
	}
	e.offeredSampling++
	pass := e.passes(e.sk.EstimateSlots(slots))
	if pass {
		e.insertedSampling++
		e.admittedMass += math.Abs(x)
		e.sk.AddSlots(slots, x*e.invT)
	} else {
		e.rejectedMass += math.Abs(x)
	}
	return pass
}

// offerEstimateSlots is offerSlots plus the post-offer estimate, reusing
// the slots for every read so nothing is rehashed. The gate reads the
// estimate with its raw median so an admitted insert can shift the
// median in place of a table re-read — exact at any decay scale.
func (e *Engine) offerEstimateSlots(slots *[countsketch.MaxTables]countsketch.Slot, x float64) (float64, bool) {
	if !e.sampling {
		e.explorationInserts++
		e.admittedMass += math.Abs(x)
		e.sk.AddSlots(slots, x*e.invT)
		return e.sk.EstimateSlots(slots), true
	}
	e.offeredSampling++
	est, raw := e.sk.EstimateSlotsWithRaw(slots)
	pass := e.passes(est)
	if pass {
		e.insertedSampling++
		e.admittedMass += math.Abs(x)
		est = e.sk.AddSlotsWithEstimateRaw(slots, x*e.invT, raw)
	} else {
		e.rejectedMass += math.Abs(x)
	}
	return est, pass
}

// OfferEstimate implements sketchapi.OfferEstimator: one Locate serves
// the τ gate, the insertion, and the returned post-offer estimate (the
// per-call path hashes the key up to three times for the same state).
func (e *Engine) OfferEstimate(key uint64, x float64) (float64, bool) {
	e.sk.Locate(key, &e.slots)
	return e.offerEstimateSlots(&e.slots, x)
}

// OfferPairs implements the batch fast path for one time step. It runs
// the wave pipeline: the batch is split into groups of G pairs
// (SetWaveGroup; default countsketch.WaveGroup) and each group is
// staged — group hashing, a touch/prefetch pass that overlaps the K·G
// table-cell misses, a group-wide gather of gate estimates, then the τ
// decisions and the scatter of admitted inserts. Groups whose pairs
// share a table cell (the same key twice, or a cross-key bucket
// collision) fall back to the exact per-pair order on the
// already-touched cells, so the resulting state and estimates are
// bit-identical to the scalar fused path at any G.
func (e *Engine) OfferPairs(keys []uint64, xs []float64, ests []float64) {
	w, g := e.wave.Scratch(e.sk.K())
	if g <= 1 {
		e.offerPairsScalar(keys, xs, ests)
		return
	}
	for lo := 0; lo < len(keys); lo += g {
		hi := lo + g
		if hi > len(keys) {
			hi = len(keys)
		}
		var sub []float64
		if ests != nil {
			sub = ests[lo:hi]
		}
		e.offerWave(w, keys[lo:hi], xs[lo:hi], sub)
	}
}

// offerPairsScalar is the pre-wave batch loop: the per-pair fused path
// with dispatch amortized — the wave path's differential reference.
func (e *Engine) offerPairsScalar(keys []uint64, xs []float64, ests []float64) {
	if ests == nil {
		for i, key := range keys {
			e.sk.Locate(key, &e.slots)
			e.offerSlots(&e.slots, xs[i])
		}
		return
	}
	for i, key := range keys {
		e.sk.Locate(key, &e.slots)
		ests[i], _ = e.offerEstimateSlots(&e.slots, xs[i])
	}
}

// offerWave processes one group of ≤ G pairs through the staged
// pipeline. ests is nil or len(keys).
func (e *Engine) offerWave(w *countsketch.Wave, keys []uint64, xs []float64, ests []float64) {
	n := len(keys)
	e.waveGroups++
	slots := w.Slots(n)
	e.sk.LocateBatch(keys, slots)    // stage 1: group hashing
	w.Sink += e.sk.TouchSlots(slots) // stage 2: overlap the misses
	fallback := false
	if !e.sampling { // stage 2b: conflict screen (with cause telemetry)
		e.waveFbExploration++
		fallback = true
	} else if !w.Clean(slots) {
		e.waveFbConflict++
		fallback = true
	}
	if fallback {
		// Exploration inserts every pair (post-add estimates recompute
		// from the table, exactly as the scalar path does), and a group
		// with intra-group cell sharing must replay the scalar order so
		// later gates observe earlier inserts. Either way the cells are
		// touched, so the per-pair loop runs on warm lines.
		for i := 0; i < n; i++ {
			sl := w.At(i)
			if ests == nil {
				e.offerSlots(sl, xs[i])
			} else {
				ests[i], _ = e.offerEstimateSlots(sl, xs[i])
			}
		}
		return
	}
	// Stage 3: gather every gate estimate (with its raw median) before
	// any insert — exact, because the screen proved the group touches
	// pairwise-disjoint cells.
	gests, raws := w.Ests(n), w.Raws(n)
	e.sk.EstimateSlotsBatch(slots, gests, raws)
	// Stage 4: τ decisions, then scatter the admitted inserts.
	vs, admit := w.Vs(n), w.Admit(n)
	admitted := 0
	for i := 0; i < n; i++ {
		pass := e.passes(gests[i])
		admit[i] = pass
		if pass {
			vs[i] = xs[i] * e.invT
			admitted++
			e.admittedMass += math.Abs(xs[i])
		} else {
			e.rejectedMass += math.Abs(xs[i])
		}
	}
	e.offeredSampling += uint64(n)
	e.insertedSampling += uint64(admitted)
	if ests == nil {
		e.sk.AddSlotsBatch(slots, vs, admit, nil, nil)
		return
	}
	// Rejected pairs answer their pre-add estimate, admitted ones the
	// raw-median shift — the exact per-pair contract.
	copy(ests, gests)
	e.sk.AddSlotsBatch(slots, vs, admit, raws, ests)
}

// OfferRow implements sketchapi.RowOfferer: the τ-gated ingest of one
// row's pairs (rowBase+partners[j], x[j]) with the key materialization
// amortized — per wave group one wrapping vector add of the shared row
// base replaces per-pair key arithmetic, and the groups then run the
// same staged body as OfferPairs. Bit-identical to OfferPairs over the
// materialized keys at any group size (scalar per-pair at g ≤ 1).
func (e *Engine) OfferRow(rowBase uint64, partners []uint64, x []float64, ests []float64) {
	w, g := e.wave.Scratch(e.sk.K())
	if g <= 1 {
		for j, p := range partners {
			e.sk.Locate(rowBase+p, &e.slots)
			if ests == nil {
				e.offerSlots(&e.slots, x[j])
			} else {
				ests[j], _ = e.offerEstimateSlots(&e.slots, x[j])
			}
		}
		return
	}
	countsketch.WalkRowGroups(w, g, rowBase, partners, x, ests,
		func(keys []uint64, xs []float64, sub []float64) { e.offerWave(w, keys, xs, sub) })
}

// OfferRows implements sketchapi.RowOfferer: one sample's whole upper
// triangle in row-major order, with pair keys and left·right increments
// expanded inside the wave staging and groups packed across row
// boundaries. See OfferRow for the equivalence contract.
func (e *Engine) OfferRows(bases, ids []uint64, left, right []float64, ests []float64) {
	w, g := e.wave.Scratch(e.sk.K())
	if g <= 1 {
		p := 0
		for i := 0; i+1 < len(ids); i++ {
			base, li := bases[i], left[i]
			for j := i + 1; j < len(ids); j++ {
				e.sk.Locate(base+ids[j], &e.slots)
				if ests == nil {
					e.offerSlots(&e.slots, li*right[j])
				} else {
					ests[p], _ = e.offerEstimateSlots(&e.slots, li*right[j])
				}
				p++
			}
		}
		return
	}
	countsketch.WalkRowsGroups(w, g, bases, ids, left, right, ests,
		func(keys []uint64, xs []float64, sub []float64) { e.offerWave(w, keys, xs, sub) })
}

// SetWaveGroup implements sketchapi.WaveTuner: it sets the wave group
// size G of OfferPairs (g ≤ 1 selects the scalar per-pair loop). State
// and estimates are bit-identical at any setting; only the staging
// changes. Not safe concurrently with offers.
func (e *Engine) SetWaveGroup(g int) { e.wave.Set(g) }

// WaveGroup implements sketchapi.WaveTuner.
func (e *Engine) WaveGroup() int { return e.wave.Group() }

// Estimate returns the current estimate μ̂_i^{(t)} (which is the final
// mean estimate after the stream completes).
func (e *Engine) Estimate(key uint64) float64 { return e.sk.Estimate(key) }

// Bytes reports the sketch footprint.
func (e *Engine) Bytes() int { return e.sk.Bytes() }

// Name identifies the engine.
func (e *Engine) Name() string { return "ASCS" }

// Sketch exposes the underlying count sketch (diagnostics, serialization).
func (e *Engine) Sketch() *countsketch.Sketch { return e.sk }

// Fold implements sketchapi.Folder by folding the underlying table; the
// τ gate and schedule state are width-independent and carry over.
func (e *Engine) Fold(levels int) error { return e.sk.Fold(levels) }

// Unfold implements sketchapi.Folder.
func (e *Engine) Unfold() { e.sk.Unfold() }

// FoldLevel implements sketchapi.Folder.
func (e *Engine) FoldLevel() int { return e.sk.FoldLevel() }

// MaxFoldLevels implements sketchapi.Folder.
func (e *Engine) MaxFoldLevels() int { return e.sk.MaxFoldLevels() }

// Schedule returns the threshold schedule in force.
func (e *Engine) Schedule() Hyperparams { return e.hp }

// Sampling reports whether the engine has entered the sampling period.
func (e *Engine) Sampling() bool { return e.sampling }

// Decaying implements sketchapi.Decayer.
func (e *Engine) Decaying() bool { return e.decay }

// DecayFactor implements sketchapi.Decayer (1 in fixed-horizon mode).
func (e *Engine) DecayFactor() float64 { return e.lambda }

// EffectiveSamples implements sketchapi.Decayer (N_eff = t in fixed
// mode and at λ = 1).
func (e *Engine) EffectiveSamples() float64 {
	if e.decay {
		return e.neff
	}
	return float64(e.t)
}

// SampledFraction returns the fraction of offers during the sampling
// period that passed the gate, and the raw counts. A healthy run filters
// the vast majority of (noise) offers.
func (e *Engine) SampledFraction() (frac float64, inserted, offered uint64) {
	if e.offeredSampling == 0 {
		return math.NaN(), 0, 0
	}
	return float64(e.insertedSampling) / float64(e.offeredSampling), e.insertedSampling, e.offeredSampling
}

// Health implements sketchapi.HealthReporter. Call from the goroutine
// that owns the engine (the counters are unsynchronized by design).
func (e *Engine) Health() sketchapi.Health {
	return sketchapi.Health{
		ExplorationInserts:      e.explorationInserts,
		GateOffered:             e.offeredSampling,
		GateAdmitted:            e.insertedSampling,
		AdmittedMass:            e.admittedMass,
		RejectedMass:            e.rejectedMass,
		Tau:                     e.tau,
		DecayRenorms:            e.sk.Renorms(),
		WaveGroups:              e.waveGroups,
		WaveFallbackConflict:    e.waveFbConflict,
		WaveFallbackExploration: e.waveFbExploration,
	}
}
