package wavetest

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/hashing"
	"repro/internal/sketchapi"
)

// driveStream feeds a seed-derived stream of n offers into e, in
// variable batches with occasional step gaps (so decayed engines tick
// across holes). Values are integer multiples of 1/8 so linear-map
// identities stay exact in float64.
func driveStream(e engine, seed uint64, n int) {
	sm := hashing.NewSplitMix64(seed)
	keys := make([]uint64, n)
	xs := make([]float64, n)
	for i := range keys {
		r := sm.Next()
		keys[i] = r % 600
		xs[i] = float64(int64(r%2001)-1000) / 8.0
	}
	step := 1
	for lo := 0; lo < n; {
		hi := lo + 1 + int(sm.Next()%97)
		if hi > n {
			hi = n
		}
		e.BeginStep(step)
		e.OfferPairs(keys[lo:hi], xs[lo:hi], nil)
		lo = hi
		step += 1 + int(sm.Next()%3)
	}
}

// foldLambdas is the decay grid every fold property is checked under:
// fixed horizon, λ=1 (unbounded, no aging), and a real sliding window.
var foldLambdas = []float64{0, 1, 0.999}

// TestFoldUnfoldPreservesEstimates pins the serving contract on all
// four engines under every decay mode: folding changes estimates only
// by collision noise (quantified in TestFoldAccuracyDegradesGracefully),
// while Unfold restores full-width tables with every estimate
// bit-identical to its folded value — queries never need an unfold.
func TestFoldUnfoldPreservesEstimates(t *testing.T) {
	for kind := 0; kind < 4; kind++ {
		for _, lambda := range foldLambdas {
			e := buildEngine(t, kind, lambda)
			driveStream(e, uint64(100+kind), 3000)

			f, ok := e.(sketchapi.Folder)
			if !ok {
				t.Fatalf("kind %d does not implement sketchapi.Folder", kind)
			}
			if err := f.Fold(2); err != nil {
				t.Fatal(err)
			}
			if f.FoldLevel() != 2 {
				t.Fatalf("kind %d λ=%v: FoldLevel = %d after Fold(2)", kind, lambda, f.FoldLevel())
			}
			folded := make([]float64, 600)
			for key := range folded {
				folded[key] = e.Estimate(uint64(key))
			}
			f.Unfold()
			if f.FoldLevel() != 0 {
				t.Fatalf("kind %d λ=%v: FoldLevel = %d after Unfold", kind, lambda, f.FoldLevel())
			}
			for key, want := range folded {
				if got := e.Estimate(uint64(key)); got != want {
					t.Fatalf("kind %d λ=%v key %d: estimate %v after unfold, %v folded",
						kind, lambda, key, got, want)
				}
			}
			// Ingest resumes at full resolution after the unfold.
			driveStream(e, uint64(200+kind), 500)
		}
	}
}

// TestFoldedWriteRoundTrip pins serialization v3 across the engines:
// WriteToFolded must produce a restorable blob whose estimates equal the
// in-memory folded engine's, and the blob must shrink by about 2^L on
// the dominant sketch payload.
func TestFoldedWriteRoundTrip(t *testing.T) {
	const level = 2
	for kind := 0; kind < 4; kind++ {
		for _, lambda := range foldLambdas {
			e := buildEngine(t, kind, lambda)
			driveStream(e, uint64(300+kind), 3000)

			var full, folded bytes.Buffer
			if _, err := e.WriteTo(&full); err != nil {
				t.Fatal(err)
			}
			fw, ok := e.(sketchapi.FoldedWriter)
			if !ok {
				t.Fatalf("kind %d does not implement sketchapi.FoldedWriter", kind)
			}
			if _, err := fw.WriteToFolded(&folded, level); err != nil {
				t.Fatal(err)
			}
			if e.(sketchapi.Folder).FoldLevel() != 0 {
				t.Fatalf("kind %d: WriteToFolded mutated the engine", kind)
			}
			if ratio := float64(full.Len()) / float64(folded.Len()); ratio < 2 {
				t.Errorf("kind %d λ=%v: folded blob only %.2fx smaller at level %d (%d B vs %d B)",
					kind, lambda, ratio, level, full.Len(), folded.Len())
			}

			// The restored folded engine serves the folded estimates.
			if err := e.(sketchapi.Folder).Fold(level); err != nil {
				t.Fatal(err)
			}
			r := restoreEngine(t, kind, folded.Bytes())
			if got := r.(sketchapi.Folder).FoldLevel(); got != level {
				t.Fatalf("kind %d λ=%v: restored fold level %d, want %d", kind, lambda, got, level)
			}
			for key := uint64(0); key < 600; key++ {
				if got, want := r.Estimate(key), e.Estimate(key); got != want {
					t.Fatalf("kind %d λ=%v key %d: restored estimate %v, folded %v",
						kind, lambda, key, got, want)
				}
			}
		}
	}
}

// TestFoldAccuracyDegradesGracefully quantifies the fold's accuracy
// cost at the engine level: against the uncompressed engine's estimates,
// the RMS deviation introduced by L fold levels must stay within the
// 2^(L/2) collision-noise envelope scaled by the engine's own level-0
// noise floor — folding trades memory for bounded extra noise, on every
// engine and decay mode.
func TestFoldAccuracyDegradesGracefully(t *testing.T) {
	for kind := 0; kind < 4; kind++ {
		for _, lambda := range foldLambdas {
			ref := buildEngine(t, kind, lambda)
			driveStream(ref, uint64(500+kind), 4000)
			refEst := make([]float64, 600)
			var energy float64
			for key := range refEst {
				refEst[key] = ref.Estimate(uint64(key))
				energy += refEst[key] * refEst[key]
			}
			// The engine's own noise scale: RMS estimate magnitude. A
			// fold of L levels shrinks the table 2^L; the collision
			// variance it adds is ~2^L times the level-0 collision
			// variance, which is itself well under the signal energy.
			scale := math.Sqrt(energy/float64(len(refEst))) + 1e-9

			f := ref.(sketchapi.Folder)
			prev := 0.0
			for level := 1; level <= 3; level++ {
				if err := f.Fold(1); err != nil {
					t.Fatal(err)
				}
				var sum float64
				for key, want := range refEst {
					d := ref.Estimate(uint64(key)) - want
					sum += d * d
				}
				rms := math.Sqrt(sum / float64(len(refEst)))
				bound := scale * math.Ldexp(1, (level+1)/2+1)
				t.Logf("kind %d λ=%v level %d: rms fold deviation %.4f (signal rms %.4f, bound %.4f)",
					kind, lambda, level, rms, scale, bound)
				if rms > bound {
					t.Errorf("kind %d λ=%v level %d: fold deviation %.4f exceeds envelope %.4f",
						kind, lambda, level, rms, bound)
				}
				if rms+1e-12 < prev/4 {
					t.Errorf("kind %d λ=%v level %d: deviation %.4f collapsed below level %d's %.4f — fold accounting suspect",
						kind, lambda, level, rms, level-1, prev)
				}
				prev = rms
			}
		}
	}
}

// runFoldDifferential is the fuzz body: one seed-derived stream, one
// engine folded and unfolded mid-stream, against an untouched twin fed
// the identical stream. After the fold/unfold detour both must end at
// the same fold level, and — because Unfold is estimate-preserving and
// ingest after Unfold lands on full-width tables — the detoured engine's
// estimates must track the twin's within the fold's collision noise,
// never NaN/Inf, and its serialized state must restore cleanly.
func runFoldDifferential(t *testing.T, seed uint64, kind, levels, n int) {
	kind = kind % 4
	if n < 64 {
		n = 64
	}
	if n > 4096 {
		n = 4096
	}
	plain := buildEngine(t, kind, 0)
	detour := buildEngine(t, kind, 0)
	f := detour.(sketchapi.Folder)
	if levels < 1 {
		levels = 1
	}
	if max := f.MaxFoldLevels(); levels > max {
		levels = max
	}

	driveStream(plain, seed, n)
	driveStream(detour, seed, n)
	if err := f.Fold(levels); err != nil {
		t.Fatal(err)
	}
	f.Unfold()
	driveStream(plain, seed+1, n/2)
	driveStream(detour, seed+1, n/2)

	for key := uint64(0); key < 600; key++ {
		p, d := plain.Estimate(key), detour.Estimate(key)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("kind %d seed %d: non-finite estimate %v for key %d after fold detour", kind, seed, d, key)
		}
		// The detour loses resolution on the first tranche only; a
		// wildly diverging estimate means fold bookkeeping corrupted
		// the table rather than adding bounded collision noise.
		if diff := math.Abs(p - d); diff > 1e6 {
			t.Fatalf("kind %d seed %d: key %d estimate diverged: plain %v, fold-detour %v", kind, seed, key, p, d)
		}
	}
	var buf bytes.Buffer
	if _, err := detour.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := restoreEngine(t, kind, buf.Bytes())
	for key := uint64(0); key < 600; key++ {
		if got, want := r.Estimate(key), detour.Estimate(key); got != want {
			t.Fatalf("kind %d seed %d: restored estimate %v != live %v for key %d", kind, seed, got, want, key)
		}
	}
}

// FuzzFoldDifferential fuzzes the fold/unfold detour across engine
// kinds, fold depths and stream shapes.
func FuzzFoldDifferential(f *testing.F) {
	f.Add(uint64(1), 0, 1, 512)
	f.Add(uint64(2), 1, 2, 1024)
	f.Add(uint64(3), 2, 3, 768)
	f.Add(uint64(4), 3, 2, 512)
	f.Fuzz(func(t *testing.T, seed uint64, kind, levels, n int) {
		runFoldDifferential(t, seed, kind, levels, n)
	})
}

// TestFoldDifferentialSeeded replays a seeded grid of the fuzz cases on
// every ordinary `go test` run (and under -race in CI).
func TestFoldDifferentialSeeded(t *testing.T) {
	for kind := 0; kind < 4; kind++ {
		for _, levels := range []int{1, 3} {
			runFoldDifferential(t, uint64(2000+kind), kind, levels, 1500)
		}
	}
}
