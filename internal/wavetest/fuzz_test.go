// Package wavetest holds the cross-engine differential fuzz harness of
// the wave-pipelined batch ingest path: random key/value streams are
// driven through wave-grouped and scalar OfferPairs on all four engines
// (CS, ASCS, ASketch, Cold Filter), fixed-horizon and decayed, and the
// serialized engine states must be bit-identical. It lives outside the
// engine packages because it imports all of them.
package wavetest

import (
	"bytes"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/hashing"
	"repro/internal/sketchapi"
)

// engine bundles a Snapshotter with the fast-path interfaces the
// harness needs (RowOfferer doubles as the compile-time pin that every
// engine — including every restored engine — carries the row path).
type engine interface {
	sketchapi.Snapshotter
	sketchapi.OfferEstimator
	sketchapi.RowOfferer
	sketchapi.WaveTuner
}

const fuzzT = 1 << 12

// buildEngine constructs engine kind ∈ [0,4) with decay mode lambda
// (0 = fixed horizon). Shapes are small so fuzzing covers many streams
// and collisions are frequent (exercising the conflict screen).
func buildEngine(t testing.TB, kind int, lambda float64) engine {
	t.Helper()
	cfg := countsketch.Config{Tables: 5, Range: 256, Seed: 17}
	var (
		e   engine
		err error
	)
	switch kind {
	case 0:
		if lambda == 0 {
			e, err = countsketch.NewMeanSketch(cfg, fuzzT)
		} else {
			e, err = countsketch.NewMeanSketchDecayed(cfg, fuzzT, lambda)
		}
	case 1:
		hp := core.Hyperparams{T0: 3, Theta: 0.05, Tau0: 1e-6, T: fuzzT}
		if lambda == 0 {
			e, err = core.NewEngine(cfg, hp, true)
		} else {
			e, err = core.NewEngineDecayed(cfg, hp, true, lambda)
		}
	case 2:
		if lambda == 0 {
			e, err = baselines.NewASketch(cfg, fuzzT, 5)
		} else {
			e, err = baselines.NewASketchDecayed(cfg, fuzzT, 5, lambda)
		}
	default:
		l1 := countsketch.Config{Tables: 3, Range: 64, Seed: 18}
		if lambda == 0 {
			e, err = baselines.NewColdFilter(l1, cfg, fuzzT, 0.05)
		} else {
			e, err = baselines.NewColdFilterDecayed(l1, cfg, fuzzT, 0.05, lambda)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runDifferential drives one fuzz case: the same derived stream through
// a wave-grouped engine and its scalar twin, comparing per-offer
// estimates and final serialized state bit for bit.
func runDifferential(t *testing.T, seed uint64, kind, group int, lambda float64, n int) {
	kind = kind % 4
	if group < 2 {
		group = 2
	}
	if group > 128 {
		group = 128
	}
	if n < 1 {
		n = 1
	}
	if n > 4096 {
		n = 4096
	}
	scalar := buildEngine(t, kind, lambda)
	wave := buildEngine(t, kind, lambda)
	scalar.SetWaveGroup(1)
	wave.SetWaveGroup(group)

	sm := hashing.NewSplitMix64(seed)
	keys := make([]uint64, n)
	xs := make([]float64, n)
	for i := range keys {
		r := sm.Next()
		// Key universe small enough that intra-group repeats and bucket
		// collisions are routine.
		keys[i] = r % 600
		xs[i] = float64(int64(r%20001)-10000) / 13.0
	}
	se := make([]float64, n)
	we := make([]float64, n)
	step := 1
	for lo := 0; lo < n; {
		// Variable batch sizes (1..97) so group boundaries land
		// everywhere relative to batch boundaries.
		bs := 1 + int(sm.Next()%97)
		hi := lo + bs
		if hi > n {
			hi = n
		}
		scalar.BeginStep(step)
		wave.BeginStep(step)
		var sd, wd []float64
		if sm.Next()%2 == 0 {
			sd, wd = se[lo:hi], we[lo:hi]
		}
		scalar.OfferPairs(keys[lo:hi], xs[lo:hi], sd)
		wave.OfferPairs(keys[lo:hi], xs[lo:hi], wd)
		if sd != nil {
			for i := range sd {
				if sd[i] != wd[i] {
					t.Fatalf("kind=%d λ=%v g=%d: est[%d] scalar %v != wave %v",
						kind, lambda, group, lo+i, sd[i], wd[i])
				}
			}
		}
		lo = hi
		// Occasionally skip steps so decay ticks cover gaps.
		step += 1 + int(sm.Next()%3)
	}
	var sb, wb bytes.Buffer
	if _, err := scalar.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := wave.WriteTo(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), wb.Bytes()) {
		t.Fatalf("kind=%d λ=%v g=%d seed=%d: serialized state diverges", kind, lambda, group, seed)
	}
}

// FuzzWaveVsScalar is the fuzz entry point: engine kind, wave group,
// decay selector and stream seed all come from the fuzzer. decaySel
// maps onto {fixed, λ=1, λ=0.999, λ=0.95}.
func FuzzWaveVsScalar(f *testing.F) {
	f.Add(uint64(1), 0, 32, uint8(0), 500)
	f.Add(uint64(2), 1, 32, uint8(1), 500)
	f.Add(uint64(3), 2, 8, uint8(2), 300)
	f.Add(uint64(4), 3, 5, uint8(3), 300)
	f.Add(uint64(5), 1, 64, uint8(2), 1000)
	f.Fuzz(func(t *testing.T, seed uint64, kind, group int, decaySel uint8, n int) {
		lambdas := []float64{0, 1, 0.999, 0.95}
		runDifferential(t, seed, kind, group, lambdas[decaySel%4], n)
	})
}

// TestWaveVsScalarSeeded replays a seeded grid of the fuzz cases in
// every ordinary `go test` run (and under -race in CI), so the
// differential coverage does not depend on anyone running the fuzzer.
func TestWaveVsScalarSeeded(t *testing.T) {
	for kind := 0; kind < 4; kind++ {
		for _, lambda := range []float64{0, 1, 0.999} {
			for _, g := range []int{2, 32} {
				runDifferential(t, uint64(1000+kind), kind, g, lambda, 1500)
			}
		}
	}
}
