// Row-path differentials: OfferRow/OfferRows must be bit-identical to
// OfferPairs over caller-materialized keys on all four engines, at any
// wave group size (including the scalar g=1 path), fixed-horizon and
// decayed, and on engines restored from a snapshot mid-stream.
package wavetest

import (
	"bytes"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/hashing"
)

// restoreEngine round-trips a snapshot through the kind's reader and
// returns the reconstructed engine. The returned value must satisfy
// the full engine interface — including RowOfferer — or this fails to
// compile, which is the satellite's compile-time half.
func restoreEngine(t *testing.T, kind int, data []byte) engine {
	t.Helper()
	r := bytes.NewReader(data)
	var (
		e   engine
		err error
	)
	switch kind % 4 {
	case 0:
		e, err = countsketch.ReadMeanSketchFrom(r)
	case 1:
		e, err = core.ReadEngineFrom(r)
	case 2:
		e, err = baselines.ReadASketchFrom(r)
	default:
		e, err = baselines.ReadColdFilterFrom(r)
	}
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func compareStates(t *testing.T, label string, a, b engine) {
	t.Helper()
	var ab, bb bytes.Buffer
	if _, err := a.WriteTo(&ab); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatalf("%s: serialized state diverges", label)
	}
}

// runRowDifferential drives the same derived stream through OfferRow on
// one engine and OfferPairs (keys materialized as rowBase+partner, with
// the same wrapping-add semantics) on its twin.
func runRowDifferential(t *testing.T, seed uint64, kind, group int, lambda float64, rows int) {
	kind = kind % 4
	if group < 1 {
		group = 1
	}
	if group > 128 {
		group = 128
	}
	if rows < 1 {
		rows = 1
	}
	if rows > 400 {
		rows = 400
	}
	pair := buildEngine(t, kind, lambda)
	row := buildEngine(t, kind, lambda)
	pair.SetWaveGroup(group)
	row.SetWaveGroup(group)

	sm := hashing.NewSplitMix64(seed)
	var (
		partners, keys []uint64
		xs, pe, re     []float64
	)
	step := 1
	for r := 0; r < rows; r++ {
		m := 1 + int(sm.Next()%45)
		base := sm.Next() % 500
		if sm.Next()%8 == 0 {
			// Wrap-around base: pairs.RowBase(0, d) is the two's
			// complement of -1, so rowBase+partner must wrap mod 2^64.
			base = ^uint64(0)
		}
		partners, keys = partners[:0], keys[:0]
		xs = xs[:0]
		for j := 0; j < m; j++ {
			p := sm.Next() % 100
			partners = append(partners, p)
			keys = append(keys, base+p)
			xs = append(xs, float64(int64(sm.Next()%20001)-10000)/13.0)
		}
		pair.BeginStep(step)
		row.BeginStep(step)
		var pd, rd []float64
		if sm.Next()%2 == 0 {
			pe = append(pe[:0], xs...)
			re = append(re[:0], xs...)
			pd, rd = pe, re
		}
		pair.OfferPairs(keys, xs, pd)
		row.OfferRow(base, partners, xs, rd)
		if pd != nil {
			for i := range pd {
				if pd[i] != rd[i] {
					t.Fatalf("kind=%d λ=%v g=%d row=%d: est[%d] pairs %v != row %v",
						kind, lambda, group, r, i, pd[i], rd[i])
				}
			}
		}
		step += 1 + int(sm.Next()%3)
	}
	compareStates(t, "row vs pairs", pair, row)
}

// runRowsDifferential drives random upper triangles through OfferRows
// on one engine and the materialized row-major pair expansion through a
// single OfferPairs call on the twin, so wave-group packing across row
// boundaries is identical by construction and must stay bit-identical.
func runRowsDifferential(t *testing.T, seed uint64, kind, group int, lambda float64, samples int) {
	kind = kind % 4
	if group < 1 {
		group = 1
	}
	if group > 128 {
		group = 128
	}
	if samples < 1 {
		samples = 1
	}
	if samples > 200 {
		samples = 200
	}
	pair := buildEngine(t, kind, lambda)
	row := buildEngine(t, kind, lambda)
	pair.SetWaveGroup(group)
	row.SetWaveGroup(group)

	sm := hashing.NewSplitMix64(seed)
	var (
		ids, bases, keys        []uint64
		left, right, xs, pe, re []float64
	)
	step := 1
	for s := 0; s < samples; s++ {
		m := 2 + int(sm.Next()%24)
		ids, right = ids[:0], right[:0]
		for j := 0; j < m; j++ {
			ids = append(ids, sm.Next()%80)
			right = append(right, float64(int64(sm.Next()%2001)-1000)/7.0)
		}
		// Contract: bases and left need only m-1 entries.
		bases, left = bases[:0], left[:0]
		for i := 0; i+1 < m; i++ {
			bases = append(bases, sm.Next()%300)
			left = append(left, float64(int64(sm.Next()%2001)-1000)/9.0)
		}
		keys, xs = keys[:0], xs[:0]
		for i := 0; i+1 < m; i++ {
			for j := i + 1; j < m; j++ {
				keys = append(keys, bases[i]+ids[j])
				xs = append(xs, left[i]*right[j])
			}
		}
		pair.BeginStep(step)
		row.BeginStep(step)
		var pd, rd []float64
		if sm.Next()%2 == 0 {
			pe = append(pe[:0], xs...)
			re = append(re[:0], xs...)
			pd, rd = pe, re
		}
		pair.OfferPairs(keys, xs, pd)
		row.OfferRows(bases, ids, left, right, rd)
		if pd != nil {
			for i := range pd {
				if pd[i] != rd[i] {
					t.Fatalf("kind=%d λ=%v g=%d sample=%d: est[%d] pairs %v != rows %v",
						kind, lambda, group, s, i, pd[i], rd[i])
				}
			}
		}
		step += 1 + int(sm.Next()%3)
	}
	compareStates(t, "rows vs pairs", pair, row)
}

// FuzzRowVsPairs fuzzes both row entry points against materialized
// OfferPairs across kinds, group sizes (incl. scalar) and decay modes.
func FuzzRowVsPairs(f *testing.F) {
	f.Add(uint64(1), 0, 32, uint8(0), 60)
	f.Add(uint64(2), 1, 1, uint8(1), 60)
	f.Add(uint64(3), 2, 8, uint8(2), 40)
	f.Add(uint64(4), 3, 5, uint8(3), 40)
	f.Add(uint64(5), 1, 64, uint8(2), 100)
	f.Fuzz(func(t *testing.T, seed uint64, kind, group int, decaySel uint8, n int) {
		lambdas := []float64{0, 1, 0.999, 0.95}
		runRowDifferential(t, seed, kind, group, lambdas[decaySel%4], n)
		runRowsDifferential(t, seed^0x5bd1e995, kind, group, lambdas[decaySel%4], n/2+1)
	})
}

// TestRowVsPairsSeeded replays a seeded grid in every ordinary test run
// so row-path coverage does not depend on the fuzzer.
func TestRowVsPairsSeeded(t *testing.T) {
	for kind := 0; kind < 4; kind++ {
		for _, lambda := range []float64{0, 1, 0.999, 0.95} {
			for _, g := range []int{1, 2, 32} {
				runRowDifferential(t, uint64(2000+kind), kind, g, lambda, 200)
				runRowsDifferential(t, uint64(3000+kind), kind, g, lambda, 80)
			}
		}
	}
}

// TestRowOffererRestored streams rows, snapshots the row-path engine,
// restores it from bytes and continues via OfferRow — the restored
// engine must lazily rebuild its wave scratch and stay bit-identical to
// an uninterrupted twin fed through OfferPairs.
func TestRowOffererRestored(t *testing.T) {
	for kind := 0; kind < 4; kind++ {
		for _, lambda := range []float64{0, 0.999} {
			pair := buildEngine(t, kind, lambda)
			row := buildEngine(t, kind, lambda)
			pair.SetWaveGroup(32)
			row.SetWaveGroup(32)

			sm := hashing.NewSplitMix64(uint64(7000 + kind))
			var partners, keys []uint64
			var xs []float64
			step := 1
			feed := func(rows int) {
				for r := 0; r < rows; r++ {
					m := 1 + int(sm.Next()%45)
					base := sm.Next() % 500
					partners, keys = partners[:0], keys[:0]
					xs = xs[:0]
					for j := 0; j < m; j++ {
						p := sm.Next() % 100
						partners = append(partners, p)
						keys = append(keys, base+p)
						xs = append(xs, float64(int64(sm.Next()%20001)-10000)/13.0)
					}
					pair.BeginStep(step)
					row.BeginStep(step)
					pair.OfferPairs(keys, xs, nil)
					row.OfferRow(base, partners, xs, nil)
					step += 1 + int(sm.Next()%3)
				}
			}
			feed(50)

			var snap bytes.Buffer
			if _, err := row.WriteTo(&snap); err != nil {
				t.Fatal(err)
			}
			row = restoreEngine(t, kind, snap.Bytes())
			row.SetWaveGroup(32)

			feed(50)
			compareStates(t, "restored row engine", pair, row)
		}
	}
}
