// Package wal is the segment-based write-ahead log of the serving
// stack: an append-only record log that makes ingest durable between
// snapshots, so a crashed daemon restarts with at most the unsynced
// suffix of the stream lost instead of everything since the last
// checkpoint.
//
// # Layout
//
// A log is a directory of fixed-name segments (wal-%08d.seg, index
// monotonic). Each segment opens with a 16-byte header — magic,
// version, and the deployment's dim/shards so a replay into a
// mismatched configuration fails closed instead of corrupting engine
// state — followed by length-prefixed records:
//
//	uint32 payload length | uint32 CRC32C | uint64 sequence | payload
//
// The CRC32C (Castagnoli, the same polynomial as the snapshot blobs)
// covers the sequence number and the payload, so a torn or bit-flipped
// record can never replay. Sequence numbers are assigned by the caller
// and must be unique and monotone per producing shard; the log itself
// only requires them to be trackable (per-segment maxima drive
// truncation).
//
// # Durability model
//
// Appends go through one writer goroutine owned by the caller (the
// shard manager's group-commit loop); the log is not otherwise
// concurrency-safe for Append/Sync/Flush. SyncBatch fsyncs after every
// coalesced append group (RPO ≈ 0: an acknowledged group survives power
// loss), SyncInterval fsyncs on a timer (RPO ≤ the interval), SyncOff
// never fsyncs explicitly (RPO = whatever the OS had written back).
// Rotation always fsyncs the finished segment, whatever the policy, so
// loss is confined to the active segment. TruncateThrough deletes
// closed segments made redundant by a snapshot and is safe to call
// concurrently with appends (it never touches the active segment).
//
// # Recovery
//
// Scan walks the segments in order, validates every record's CRC, and
// hands the payloads to the caller. Damage in the newest segment is a
// torn tail — the expected signature of a crash mid-write — and is
// truncated at the first bad record (Repair physically trims the
// file). Damage in any earlier segment cannot be explained by a single
// crash and fails closed with ErrCorrupt: a log with a hole in the
// middle must not replay the records after the hole. The one
// exception is a segment shorter than its own header — the residue of
// a crash inside segment creation, before the header fsync — which by
// construction holds no committed records: it is skipped wherever it
// sits, and removed when repairing, so it can never strand a later
// boot.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/sketchapi"
)

// ErrCorrupt classifies mid-log integrity damage: a record that fails
// its CRC (or a malformed segment) anywhere but the tail of the newest
// segment. It wraps sketchapi.ErrCorrupt, like the snapshot layer's
// fail-closed errors.
var ErrCorrupt = fmt.Errorf("wal: corrupt log: %w", sketchapi.ErrCorrupt)

const (
	segMagic   = uint32(0x41574C31) // "AWL1"
	segVersion = 1
	// headerSize is the segment header: magic, version, dim, shards.
	headerSize = 16
	// recHdrSize is the per-record frame: length, CRC32C, sequence.
	recHdrSize = 16
	segPat     = "wal-%08d.seg"
	// maxRecordBytes rejects absurd length prefixes before allocating:
	// a record this large is framing damage, not data.
	maxRecordBytes = 1 << 30
)

// DefaultSegmentBytes is the rotation threshold when Options leaves it
// zero.
const DefaultSegmentBytes = 64 << 20

// DefaultSyncInterval is the fsync cadence of the literal "interval"
// sync spec.
const DefaultSyncInterval = 100 * time.Millisecond

// castagnoli matches the snapshot layer's CRC32C table (hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects the fsync policy of the append path.
type SyncMode int

const (
	// SyncBatch fsyncs after every coalesced append group (group
	// commit): an acknowledged group is durable. The default.
	SyncBatch SyncMode = iota
	// SyncInterval fsyncs on a timer: loss is bounded by the interval.
	SyncInterval
	// SyncOff never fsyncs explicitly: loss is bounded only by OS
	// writeback. Rotation still fsyncs the finished segment.
	SyncOff
)

// String returns the flag form of the mode ("batch", "interval", "off").
func (m SyncMode) String() string {
	switch m {
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return "batch"
	}
}

// ParseSync maps the -wal-sync flag grammar onto a mode: "batch" (or
// empty), "off", "interval" (the default 100ms cadence), or any
// positive duration for an explicit cadence.
func ParseSync(s string) (SyncMode, time.Duration, error) {
	switch s {
	case "", "batch":
		return SyncBatch, 0, nil
	case "off":
		return SyncOff, 0, nil
	case "interval":
		return SyncInterval, DefaultSyncInterval, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: sync policy %q (want batch, off, interval, or a positive duration)", s)
	}
	return SyncInterval, d, nil
}

// Meta pins the deployment shape into every segment header: a replay
// only proceeds when the recovering configuration matches the one that
// wrote the log.
type Meta struct {
	Dim    int
	Shards int
}

// Options configures Open.
type Options struct {
	// Dir is the log directory (created if needed). Required.
	Dir string
	// SegmentBytes is the rotation threshold (default 64 MiB; minimum
	// 4 KiB so tests can force rotation cheaply).
	SegmentBytes int64
	// Meta is embedded in every segment header and validated on Scan.
	Meta Meta
	// Faults wires the chaos injector into the write path (walwrite
	// byte-budget failures, waltorn tail truncation on Close). Nil in
	// production.
	Faults *faults.Injector
}

// segInfo records one closed segment for truncation decisions.
type segInfo struct {
	index  uint64
	path   string
	maxSeq uint64
	bytes  int64
}

// Stats is a point-in-time scrape of the log's counters, safe to read
// from any goroutine.
type Stats struct {
	// Segments counts live segment files, including the active one.
	Segments int
	// AppendedBytes / Records / Fsyncs / Errors are cumulative since
	// Open.
	AppendedBytes uint64
	Records       uint64
	Fsyncs        uint64
	Errors        uint64
	// TruncatedSegments counts segments removed by TruncateThrough.
	TruncatedSegments uint64
}

// Log is an open write-ahead log. Append/Flush/Sync/Close belong to a
// single writer goroutine; TruncateThrough and Stats are safe from any
// goroutine.
type Log struct {
	dir      string
	segBytes int64
	meta     Meta
	faults   *faults.Injector

	// mu guards the closed-segment list and rotation against a
	// concurrent TruncateThrough (the snapshot goroutine).
	mu   sync.Mutex
	segs []segInfo

	f           *os.File
	bw          *bufio.Writer
	activeIdx   uint64
	activePath  string
	activeBytes int64
	activeMax   uint64 // max sequence appended to the active segment
	lastRecLen  int64  // frame+payload bytes of the last appended record

	appendedBytes atomic.Uint64
	records       atomic.Uint64
	fsyncs        atomic.Uint64
	errs          atomic.Uint64
	truncated     atomic.Uint64
}

// Open creates (or reopens) the log at opts.Dir and starts a fresh
// active segment after the newest existing one — recovery never
// appends into a possibly-torn file. Existing segments are walked for
// their per-segment maximum sequence numbers (the truncation index);
// run Scan first when their contents must replay.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Dir is required")
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < 4096 {
		return nil, fmt.Errorf("wal: SegmentBytes must be ≥ 4096, got %d", opts.SegmentBytes)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: log dir: %w", err)
	}
	files, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: opts.Dir, segBytes: opts.SegmentBytes, meta: opts.Meta, faults: opts.Faults}
	next := uint64(1)
	for i, sf := range files {
		maxSeq, _, _, err := walkSegment(sf.path, opts.Meta, i == len(files)-1, nil)
		if err != nil {
			return nil, err
		}
		l.segs = append(l.segs, segInfo{index: sf.index, path: sf.path, maxSeq: maxSeq, bytes: fileSize(sf.path)})
		next = sf.index + 1
	}
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	return l, nil
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// openSegment starts a new active segment and writes its header, made
// durable (flush + fsync + dir sync) before the segment is usable: a
// segment that exists on disk always carries a complete header, so a
// crash between boot and the first append can leave at worst a
// headerless file that holds no committed records — which Scan
// tolerates and removes — never a permanently "corrupt" log. The
// caller must not hold mu.
func (l *Log) openSegment(index uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf(segPat, index))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(path)
		return err
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(l.meta.Dim))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(l.meta.Shards))
	bw := bufio.NewWriterSize(l.faults.WALWriter(f), 1<<18)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	l.fsyncs.Add(1)
	syncDir(l.dir)
	l.f, l.bw = f, bw
	l.activeIdx, l.activePath = index, path
	l.activeBytes = headerSize
	l.activeMax, l.lastRecLen = 0, 0
	return nil
}

// Append writes one record. It rotates first when the active segment
// is already past the threshold — records never split across segments.
// The payload is copied into the OS before Append returns only per the
// caller's Flush/Sync discipline.
func (l *Log) Append(seq uint64, payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d byte bound", len(payload), maxRecordBytes)
	}
	if l.activeBytes > headerSize && l.activeBytes+recHdrSize+int64(len(payload)) > l.segBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	sum := crc32.Update(0, castagnoli, hdr[8:16])
	sum = crc32.Update(sum, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:], sum)
	if _, err := l.bw.Write(hdr[:]); err != nil {
		l.errs.Add(1)
		return err
	}
	if _, err := l.bw.Write(payload); err != nil {
		l.errs.Add(1)
		return err
	}
	rec := int64(recHdrSize + len(payload))
	l.activeBytes += rec
	l.lastRecLen = rec
	if seq > l.activeMax {
		l.activeMax = seq
	}
	l.appendedBytes.Add(uint64(rec))
	l.records.Add(1)
	return nil
}

// Flush pushes buffered bytes to the OS without fsync (the sync=off /
// interval steady state).
func (l *Log) Flush() error {
	if err := l.bw.Flush(); err != nil {
		l.errs.Add(1)
		return err
	}
	return nil
}

// Sync flushes and fsyncs the active segment (one group commit).
func (l *Log) Sync() error {
	if err := l.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.errs.Add(1)
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

// rotate retires the active segment (flushed and fsynced, whatever the
// sync policy — loss stays confined to the active segment) and opens
// the next one.
func (l *Log) rotate() error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.errs.Add(1)
		return err
	}
	l.mu.Lock()
	l.segs = append(l.segs, segInfo{index: l.activeIdx, path: l.activePath, maxSeq: l.activeMax, bytes: l.activeBytes})
	next := l.activeIdx + 1
	l.mu.Unlock()
	return l.openSegment(next)
}

// TruncateThrough deletes closed segments whose every record is at or
// below seq — the snapshot layer calls it with the committed
// manifest's covering sequence number. The active segment is never
// touched. Returns how many segments were removed; removal errors are
// best-effort (a leftover costs disk, never correctness).
func (l *Log) TruncateThrough(seq uint64) int {
	l.mu.Lock()
	keep := l.segs[:0]
	var gone []segInfo
	for _, s := range l.segs {
		if s.maxSeq <= seq {
			gone = append(gone, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.segs = keep
	l.mu.Unlock()
	for _, s := range gone {
		os.Remove(s.path)
	}
	if len(gone) > 0 {
		l.truncated.Add(uint64(len(gone)))
		syncDir(l.dir)
	}
	return len(gone)
}

// Close flushes, fsyncs, and closes the active segment. The injector's
// waltorn fault then chops the tail of the last record — the on-disk
// state an OS crash mid-write leaves — so recovery's torn-tail
// truncation is testable without pulling power.
func (l *Log) Close() error {
	err := l.Sync()
	cerr := l.f.Close()
	if err == nil {
		err = cerr
	}
	// Order matters: WALTorn() counts itself as fired, so it must not be
	// consulted when there is no record to tear (empty active segment) —
	// the fired counter would claim an injection that never happened.
	if l.lastRecLen > 0 && l.faults.WALTorn() {
		os.Truncate(l.activePath, l.activeBytes-l.lastRecLen/2)
	}
	return err
}

// Stats scrapes the log counters (any goroutine).
func (l *Log) Stats() Stats {
	l.mu.Lock()
	n := len(l.segs) + 1
	l.mu.Unlock()
	return Stats{
		Segments:          n,
		AppendedBytes:     l.appendedBytes.Load(),
		Records:           l.records.Load(),
		Fsyncs:            l.fsyncs.Load(),
		Errors:            l.errs.Load(),
		TruncatedSegments: l.truncated.Load(),
	}
}

// CountError lets the owning group-commit loop account append/sync
// failures it swallowed while disarming (the log stays open but
// unused; serving continues with durability degraded loudly).
func (l *Log) CountError() { l.errs.Add(1) }

// ScanResult summarizes one recovery pass.
type ScanResult struct {
	// Records and MaxSeq cover every valid record handed to fn.
	Records uint64
	MaxSeq  uint64
	// Segments walked (including empty ones).
	Segments int
	// Torn reports a truncated tail in the newest segment; TornBytes is
	// how many trailing bytes were discarded there.
	Torn      bool
	TornBytes int64
}

// Scan replays every valid record to fn in log order, enforcing the
// recovery contract: CRC damage in the newest segment truncates the
// tail there (physically, when repair is set — so a later scan starts
// clean); damage anywhere earlier fails closed with ErrCorrupt. A
// segment shorter than its own header holds no committed records
// (openSegment fsyncs the header before any append) and is skipped in
// any position — and removed when repair is set, never truncated to an
// empty file that a later boot would misread as corruption. A non-nil
// error from fn aborts the scan.
func Scan(dir string, meta Meta, repair bool, fn func(seq uint64, payload []byte) error) (ScanResult, error) {
	var res ScanResult
	files, err := listSegments(dir)
	if err != nil {
		return res, err
	}
	res.Segments = len(files)
	for i, sf := range files {
		last := i == len(files)-1
		maxSeq, n, validLen, err := walkSegment(sf.path, meta, last, fn)
		res.Records += n
		if maxSeq > res.MaxSeq {
			res.MaxSeq = maxSeq
		}
		if err != nil {
			return res, err
		}
		if validLen < headerSize {
			// The segment never got a complete header (a crash inside
			// openSegment, before its fsync): it holds no committed
			// records. Remove it rather than truncating — a zero-byte
			// segment left behind would sit mid-log after the next Open
			// creates a newer one, and an empty file must never read as
			// corruption.
			if size := fileSize(sf.path); last && size > 0 {
				res.Torn = true
				res.TornBytes = size
			}
			if repair {
				if rerr := os.Remove(sf.path); rerr != nil && !os.IsNotExist(rerr) {
					return res, fmt.Errorf("wal: removing headerless segment %s: %w", sf.path, rerr)
				}
				syncDir(dir)
			}
			continue
		}
		if last {
			if size := fileSize(sf.path); size > validLen {
				res.Torn = true
				res.TornBytes = size - validLen
				if repair {
					if terr := os.Truncate(sf.path, validLen); terr != nil {
						return res, fmt.Errorf("wal: truncating torn tail of %s: %w", sf.path, terr)
					}
				}
			}
		}
	}
	return res, nil
}

type segFile struct {
	index uint64
	path  string
}

// listSegments returns the log's segments sorted by index.
func listSegments(dir string) ([]segFile, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	files := make([]segFile, 0, len(matches))
	for _, path := range matches {
		var idx uint64
		if _, err := fmt.Sscanf(filepath.Base(path), segPat, &idx); err != nil {
			return nil, fmt.Errorf("wal: unrecognized segment name %q: %w", filepath.Base(path), ErrCorrupt)
		}
		files = append(files, segFile{index: idx, path: path})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].index < files[j].index })
	for i := 1; i < len(files); i++ {
		if files[i].index == files[i-1].index {
			return nil, fmt.Errorf("wal: duplicate segment index %d: %w", files[i].index, ErrCorrupt)
		}
	}
	return files, nil
}

// walkSegment reads one segment, validating the header and every
// record frame. fn, when non-nil, receives each valid record (and its
// CRC is verified); with fn nil the payloads are skipped unverified —
// the cheap pass Open uses to rebuild the truncation index. A damaged
// record is tolerated only when last is true: the walk stops there and
// validLen reports the clean prefix. Damage in a non-last segment
// returns ErrCorrupt. A segment shorter than its header is tolerated
// in any position (validLen 0: it holds no committed records).
func walkSegment(path string, meta Meta, last bool, fn func(seq uint64, payload []byte) error) (maxSeq, records uint64, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<18)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// Fewer than headerSize bytes: a crash inside openSegment, before
		// the header fsync. openSegment makes the header durable before
		// any append, so such a segment holds no committed records and is
		// safe to skip wherever it sits in the log — including mid-log,
		// where a boot sequence of crash-before-first-append followed by
		// a clean Open leaves it. Scan removes it under repair.
		return 0, 0, 0, nil
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != segMagic {
		return 0, 0, 0, fmt.Errorf("wal: bad magic in %s: %w", filepath.Base(path), ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != segVersion {
		return 0, 0, 0, fmt.Errorf("wal: unsupported segment version %d in %s", v, filepath.Base(path))
	}
	if d, s := int(binary.LittleEndian.Uint32(hdr[8:])), int(binary.LittleEndian.Uint32(hdr[12:])); d != meta.Dim || s != meta.Shards {
		return 0, 0, 0, fmt.Errorf("wal: segment %s written for dim=%d shards=%d, recovering config has dim=%d shards=%d: %w",
			filepath.Base(path), d, s, meta.Dim, meta.Shards, ErrCorrupt)
	}
	validLen = headerSize
	var rec [recHdrSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return maxSeq, records, validLen, nil
			}
			// A partial frame header: torn tail (last) or a hole (fail
			// closed).
			if last {
				return maxSeq, records, validLen, nil
			}
			return maxSeq, records, validLen, fmt.Errorf("wal: short record frame in %s: %w", filepath.Base(path), ErrCorrupt)
		}
		size := binary.LittleEndian.Uint32(rec[0:])
		want := binary.LittleEndian.Uint32(rec[4:])
		seq := binary.LittleEndian.Uint64(rec[8:])
		if size > maxRecordBytes {
			if last {
				return maxSeq, records, validLen, nil
			}
			return maxSeq, records, validLen, fmt.Errorf("wal: absurd record length %d in %s: %w", size, filepath.Base(path), ErrCorrupt)
		}
		if fn == nil {
			// Index-only pass: skip the payload without CRC verification.
			if _, err := br.Discard(int(size)); err != nil {
				if last {
					return maxSeq, records, validLen, nil
				}
				return maxSeq, records, validLen, fmt.Errorf("wal: short record body in %s: %w", filepath.Base(path), ErrCorrupt)
			}
		} else {
			if cap(payload) < int(size) {
				payload = make([]byte, size)
			}
			payload = payload[:size]
			if _, err := io.ReadFull(br, payload); err != nil {
				if last {
					return maxSeq, records, validLen, nil
				}
				return maxSeq, records, validLen, fmt.Errorf("wal: short record body in %s: %w", filepath.Base(path), ErrCorrupt)
			}
			sum := crc32.Update(0, castagnoli, rec[8:16])
			sum = crc32.Update(sum, castagnoli, payload)
			if sum != want {
				if last {
					return maxSeq, records, validLen, nil
				}
				return maxSeq, records, validLen, fmt.Errorf("wal: record crc32c %08x, frame says %08x in %s: %w",
					sum, want, filepath.Base(path), ErrCorrupt)
			}
			if err := fn(seq, payload); err != nil {
				return maxSeq, records, validLen, err
			}
		}
		records++
		if seq > maxSeq {
			maxSeq = seq
		}
		validLen += recHdrSize + int64(size)
	}
}

// syncDir fsyncs a directory so unlinks within it are durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
