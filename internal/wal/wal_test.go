package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sketchapi"
)

var testMeta = Meta{Dim: 16, Shards: 2}

func openTest(t *testing.T, dir string, segBytes int64) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, SegmentBytes: segBytes, Meta: testMeta})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// collect scans dir and returns the records in log order.
func collect(t *testing.T, dir string, repair bool) (ScanResult, []uint64, [][]byte) {
	t.Helper()
	var seqs []uint64
	var payloads [][]byte
	res, err := Scan(dir, testMeta, repair, func(seq uint64, p []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return res, seqs, payloads
}

func payload(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, "padding-to-make-it-nontrivial"))
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	const n = 100
	for i := 1; i <= n; i++ {
		if err := l.Append(uint64(i), payload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := l.Stats()
	if st.Records != n {
		t.Fatalf("Stats.Records = %d, want %d", st.Records, n)
	}
	if st.Fsyncs == 0 {
		t.Fatal("Stats.Fsyncs = 0 after Sync")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res, seqs, payloads := collect(t, dir, false)
	if res.Records != n || res.MaxSeq != n || res.Torn {
		t.Fatalf("scan = %+v, want %d records, maxSeq %d, not torn", res, n, n)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, seq)
		}
		if string(payloads[i]) != string(payload(i+1)) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 4096)
	const n = 400 // ~60 bytes each: forces several rotations at 4 KiB
	for i := 1; i <= n; i++ {
		if err := l.Append(uint64(i), payload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("Segments = %d, want several after rotation", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res, seqs, _ := collect(t, dir, false)
	if res.Records != n || res.MaxSeq != n {
		t.Fatalf("scan = %+v, want %d records", res, n)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d (rotation reordered?)", i, seq)
		}
	}

	// Reopen starts a fresh segment — never appends into a possibly-torn
	// file — and the old records still scan.
	l2 := openTest(t, dir, 4096)
	if err := l2.Append(n+1, payload(n+1)); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res2, _, _ := collect(t, dir, false)
	if res2.Records != n+1 || res2.MaxSeq != n+1 {
		t.Fatalf("scan after reopen = %+v, want %d records", res2, n+1)
	}
	if res2.Segments <= res.Segments {
		t.Fatalf("reopen did not add a segment: %d -> %d", res.Segments, res2.Segments)
	}
}

func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	for i := 1; i <= 10; i++ {
		if err := l.Append(uint64(i), payload(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Chop into the last record: the on-disk state a crash mid-write
	// leaves behind.
	seg := filepath.Join(dir, fmt.Sprintf(segPat, 1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	res, seqs, _ := collect(t, dir, false)
	if res.Records != 9 || !res.Torn || res.TornBytes == 0 {
		t.Fatalf("scan = %+v, want 9 records and a torn tail", res)
	}
	if seqs[len(seqs)-1] != 9 {
		t.Fatalf("last surviving seq = %d, want 9", seqs[len(seqs)-1])
	}

	// repair physically trims the tail: the next scan starts clean.
	if res, _, _ = collect(t, dir, true); !res.Torn {
		t.Fatalf("repair scan should still report the tear: %+v", res)
	}
	res2, _, _ := collect(t, dir, false)
	if res2.Torn || res2.Records != 9 {
		t.Fatalf("post-repair scan = %+v, want clean 9 records", res2)
	}
}

func TestMidLogCorruptionFailsClosed(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 4096)
	const n = 400 // forces rotation: damage will sit in a non-last segment
	for i := 1; i <= n; i++ {
		if err := l.Append(uint64(i), payload(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip one payload byte in the first segment.
	seg := filepath.Join(dir, fmt.Sprintf(segPat, 1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+recHdrSize+4] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Scan(dir, testMeta, true, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, sketchapi.ErrCorrupt) {
		t.Fatalf("Scan of mid-log damage = %v, want ErrCorrupt", err)
	}
}

func TestMetaMismatchFailsClosed(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	if err := l.Append(1, payload(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := Scan(dir, Meta{Dim: 17, Shards: 2}, false, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Scan with mismatched meta = %v, want ErrCorrupt", err)
	}
	if _, err := Open(Options{Dir: dir, Meta: Meta{Dim: 17, Shards: 2}}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with mismatched meta = %v, want ErrCorrupt", err)
	}
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 4096)
	const n = 400
	for i := 1; i <= n; i++ {
		if err := l.Append(uint64(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	closed := l.Stats().Segments - 1
	if closed < 2 {
		t.Fatalf("need ≥ 2 closed segments, have %d", closed)
	}
	if got := l.TruncateThrough(0); got != 0 {
		t.Fatalf("TruncateThrough(0) removed %d segments", got)
	}
	removed := l.TruncateThrough(uint64(n))
	if removed != closed {
		t.Fatalf("TruncateThrough removed %d segments, want all %d closed", removed, closed)
	}
	if st := l.Stats(); st.Segments != 1 || st.TruncatedSegments != uint64(closed) {
		t.Fatalf("post-truncate stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the records in the (former) active segment survive, and their
	// sequences are all above the truncation point... of the closed set.
	res, seqs, _ := collect(t, dir, false)
	if res.Records == 0 || res.Records >= n {
		t.Fatalf("scan after truncate = %+v", res)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("surviving records not contiguous: %d then %d", seqs[i-1], seqs[i])
		}
	}
	if res.MaxSeq != n {
		t.Fatalf("MaxSeq = %d, want %d", res.MaxSeq, n)
	}
}

func TestParseSync(t *testing.T) {
	cases := []struct {
		in       string
		mode     SyncMode
		interval time.Duration
		err      bool
	}{
		{"", SyncBatch, 0, false},
		{"batch", SyncBatch, 0, false},
		{"off", SyncOff, 0, false},
		{"interval", SyncInterval, DefaultSyncInterval, false},
		{"250ms", SyncInterval, 250 * time.Millisecond, false},
		{"2s", SyncInterval, 2 * time.Second, false},
		{"-1s", 0, 0, true},
		{"0", 0, 0, true},
		{"sometimes", 0, 0, true},
	}
	for _, c := range cases {
		mode, interval, err := ParseSync(c.in)
		if (err != nil) != c.err {
			t.Fatalf("ParseSync(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && (mode != c.mode || interval != c.interval) {
			t.Fatalf("ParseSync(%q) = %v/%v, want %v/%v", c.in, mode, interval, c.mode, c.interval)
		}
	}
}

// TestHeaderDurableAtOpen pins the crash window between boot and the
// first append: the active segment's header must be on disk the moment
// Open returns, so a SIGKILLed process that never appended leaves a
// complete (empty) segment behind, not a zero-byte file.
func TestHeaderDurableAtOpen(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	defer l.Close()
	seg := filepath.Join(dir, fmt.Sprintf(segPat, 1))
	if size := fileSize(seg); size < headerSize {
		t.Fatalf("active segment holds %d bytes before any flush, want ≥ %d (header not durable)", size, headerSize)
	}
}

// TestHeaderlessSegmentNeverBricksTheLog pins the zero-byte-segment
// landmine: a segment shorter than its header is skipped wherever it
// sits — in particular mid-log, where two boots push it once Open
// creates a newer segment — and a repairing Scan removes it.
func TestHeaderlessSegmentNeverBricksTheLog(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	for i := 1; i <= 5; i++ {
		if err := l.Append(uint64(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash artifact: a headerless newest segment.
	empty := filepath.Join(dir, fmt.Sprintf(segPat, 2))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Boot 1 appends past it: the husk is now mid-log.
	l2 := openTest(t, dir, 1<<20)
	if err := l2.Append(6, payload(6)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// Boot 2: every record still scans; mid-log emptiness is not damage.
	res, seqs, _ := collect(t, dir, false)
	if res.Records != 6 || res.MaxSeq != 6 {
		t.Fatalf("scan around headerless segment = %+v, want 6 records", res)
	}
	if seqs[len(seqs)-1] != 6 {
		t.Fatalf("last seq = %d, want 6", seqs[len(seqs)-1])
	}
	// Repair removes the husk (never truncates it into a fresh landmine),
	// and the log stays openable.
	collect(t, dir, true)
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		t.Fatalf("repair left the headerless segment behind: %v", err)
	}
	l3 := openTest(t, dir, 1<<20)
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	res2, _, _ := collect(t, dir, false)
	if res2.Records != 6 {
		t.Fatalf("post-repair scan = %+v, want 6 records", res2)
	}
}

// TestTornHeaderRepairRemoves pins the repair of a newest segment whose
// header itself is torn: the file is removed outright — truncating it
// to zero bytes would recreate the mid-log landmine on the next boot.
func TestTornHeaderRepairRemoves(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, 1<<20)
	for i := 1; i <= 3; i++ {
		if err := l.Append(uint64(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, fmt.Sprintf(segPat, 2))
	if err := os.WriteFile(torn, []byte{0x41, 0x57, 0x4C, 0x31, 0x01, 0x00, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	res, _, _ := collect(t, dir, true)
	if res.Records != 3 || !res.Torn || res.TornBytes != 7 {
		t.Fatalf("repair scan = %+v, want 3 records and a 7-byte tear", res)
	}
	if fi, err := os.Stat(torn); err == nil {
		t.Fatalf("torn-header segment still on disk with %d bytes, want removed", fi.Size())
	}
	res2, _, _ := collect(t, dir, false)
	if res2.Torn || res2.Records != 3 {
		t.Fatalf("post-repair scan = %+v, want clean 3 records", res2)
	}
}

func TestEmptyDirScans(t *testing.T) {
	dir := t.TempDir()
	res, err := Scan(dir, testMeta, true, func(uint64, []byte) error { return nil })
	if err != nil || res.Records != 0 || res.Segments != 0 {
		t.Fatalf("Scan of empty dir = %+v, %v", res, err)
	}
}

// TestWALTornFaultNotCountedWhenEmpty pins the fired-counter ordering
// in Close: with no record in the active segment there is nothing to
// tear, so the waltorn fault must not be consulted — a fired count
// would claim an injection that never happened, and chaos assertions
// key off that counter.
func TestWALTornFaultNotCountedWhenEmpty(t *testing.T) {
	in, err := faults.Parse("waltorn")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Meta: testMeta, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range in.Fired() {
		if f.Kind == "waltorn" && f.Count != 0 {
			t.Fatalf("waltorn counted %d fires with nothing to tear", f.Count)
		}
	}

	// With a record present the fault both fires and counts.
	dir2 := t.TempDir()
	l2, err := Open(Options{Dir: dir2, Meta: testMeta, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(1, payload(1)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	var counted bool
	for _, f := range in.Fired() {
		if f.Kind == "waltorn" && f.Count == 1 {
			counted = true
		}
	}
	if !counted {
		t.Fatalf("waltorn fire with a record present not counted: %+v", in.Fired())
	}
	res, _, _ := collect(t, dir2, false)
	if !res.Torn {
		t.Fatal("waltorn fault did not tear the tail")
	}
}
