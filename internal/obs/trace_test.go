package obs

import (
	"context"
	"testing"
	"time"
)

func TestRequestIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}

func TestTraceSpansAndNilSafety(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Span("route", time.Millisecond) // must not panic
	if s := nilTrace.Spans(); s != nil {
		t.Fatalf("nil trace Spans = %v, want nil", s)
	}

	tr := NewTrace("abc-1")
	tr.Span("route", 2*time.Millisecond)
	tr.Span("queue_wait", time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "route" || spans[1].D != time.Millisecond {
		t.Fatalf("unexpected spans %v", spans)
	}
	// Overflow past MaxSpans is dropped, not panicking.
	for i := 0; i < 2*MaxSpans; i++ {
		tr.Span("x", 1)
	}
	if len(tr.Spans()) != MaxSpans {
		t.Fatalf("span cap not enforced: %d", len(tr.Spans()))
	}
}

func TestSampler(t *testing.T) {
	if NewSampler(0).Sample() {
		t.Fatal("every=0 sampler must never sample")
	}
	var none *Sampler
	if none.Sample() {
		t.Fatal("nil sampler must never sample")
	}
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 100; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("1-in-4 sampler hit %d/100, want 25", hits)
	}
}

func TestTraceContext(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context trace = %v, want nil", got)
	}
	tr := NewTrace("id-1")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatal("trace did not round-trip through context")
	}
}

func TestSnapFloatAndMax(t *testing.T) {
	var s Snap
	s.StoreFloat(ShardAdmittedMass, 3.5)
	if got := s.LoadFloat(ShardAdmittedMass); got != 3.5 {
		t.Fatalf("LoadFloat = %v, want 3.5", got)
	}
	if got := s.Value(ShardAdmittedMass); got != 3.5 {
		t.Fatalf("Value(float slot) = %v, want 3.5", got)
	}
	s.Store(ShardOps, 7)
	if got := s.Value(ShardOps); got != 7 {
		t.Fatalf("Value(int slot) = %v, want 7", got)
	}
	s.Max(ShardQueueHighWater, 5)
	s.Max(ShardQueueHighWater, 3)
	s.Max(ShardQueueHighWater, 9)
	if got := s.Load(ShardQueueHighWater); got != 9 {
		t.Fatalf("Max high-water = %d, want 9", got)
	}
}

func TestShardDefsComplete(t *testing.T) {
	seenFamily := map[string]int{}
	for i, d := range ShardDefs {
		if d.Name == "" || d.Help == "" {
			t.Fatalf("slot %d has empty Name/Help", i)
		}
		if last, ok := seenFamily[d.Name]; ok && last != i-1 {
			t.Fatalf("family %q not contiguous in ShardDefs (slots %d and %d)", d.Name, last, i)
		}
		seenFamily[d.Name] = i
		if (d.LabelK == "") != (d.LabelV == "") {
			t.Fatalf("slot %d has half a label", i)
		}
	}
}
