package obs

import (
	"strings"
	"testing"
)

// TestExpoLintRoundTrip renders a page with every primitive the real
// /metrics handler uses and requires the internal linter to accept it.
func TestExpoLintRoundTrip(t *testing.T) {
	var e Expo
	e.Header("ascs_demo_total", "counter", "A demo counter.")
	e.Sample("ascs_demo_total", `shard="0"`, 41)
	e.Sample("ascs_demo_total", `shard="1"`, 1.5)
	e.Header("ascs_wave_fallback_total", "counter", "Fallbacks by cause.")
	e.Sample("ascs_wave_fallback_total", `cause="conflict"`, 2)
	e.Sample("ascs_wave_fallback_total", `cause="shape"`, 0)
	e.Header("ascs_demo_gauge", "gauge", "A demo gauge.")
	e.Sample("ascs_demo_gauge", "", -3.25)

	var h Hist
	for _, v := range []int64{50, 900, 900, 1 << 20} {
		h.Observe(v)
	}
	var s HistSnap
	h.Snapshot(&s)
	e.Header("ascs_demo_seconds", "histogram", "A demo duration histogram.")
	e.Histogram("ascs_demo_seconds", `endpoint="topk"`, &s, 1e-9)

	page := e.B.String()
	if err := Lint(strings.NewReader(page)); err != nil {
		t.Fatalf("Lint rejected Expo output: %v\npage:\n%s", err, page)
	}
	for _, want := range []string{
		"# TYPE ascs_demo_total counter",
		`ascs_demo_total{shard="0"} 41`,
		`ascs_wave_fallback_total{cause="conflict"} 2`,
		`ascs_demo_seconds_bucket{endpoint="topk",le="+Inf"} 4`,
		`ascs_demo_seconds_count{endpoint="topk"} 4`,
	} {
		if !strings.Contains(page, want+"\n") {
			t.Errorf("page missing %q\npage:\n%s", want, page)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":     "ascs_x_total 1\n",
		"bad name":    "# TYPE 9bad counter\n9bad 1\n",
		"dup series":  "# TYPE a_total counter\na_total{x=\"1\"} 1\na_total{x=\"1\"} 2\n",
		"interleaved": "# TYPE a_total counter\na_total 1\n# TYPE b_total counter\nb_total 1\n# TYPE a_total counter\na_total{x=\"2\"} 1\n",
		"bad value":   "# TYPE a_total counter\na_total one\n",
		"bad TYPE":    "# TYPE a_total chart\na_total 1\n",
		"non-cumulative histogram": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"+Inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
		"unquoted label": "# TYPE a_total counter\na_total{x=1} 1\n",
	}
	for name, page := range cases {
		if err := Lint(strings.NewReader(page)); err == nil {
			t.Errorf("%s: Lint accepted malformed page:\n%s", name, page)
		}
	}
}

func TestLintAcceptsWellFormed(t *testing.T) {
	page := "# HELP go_goroutines Number of goroutines.\n" +
		"# TYPE go_goroutines gauge\n" +
		"go_goroutines 12\n" +
		"# TYPE h histogram\n" +
		"h_bucket{le=\"0.5\"} 2\n" +
		"h_bucket{le=\"+Inf\"} 7\n" +
		"h_sum 3.5\n" +
		"h_count 7\n"
	if err := Lint(strings.NewReader(page)); err != nil {
		t.Fatalf("Lint rejected well-formed page: %v", err)
	}
}

func TestParseFamilies(t *testing.T) {
	page := "# TYPE ascs_shard_ops_total counter\n" +
		"ascs_shard_ops_total{shard=\"0\"} 10\n" +
		"ascs_shard_ops_total{shard=\"1\"} 32\n" +
		"# TYPE ascs_shard_queue_high_water gauge\n" +
		"ascs_shard_queue_high_water{shard=\"0\"} 3\n" +
		"ascs_shard_queue_high_water{shard=\"1\"} 7\n"
	fams, err := Parse(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams["ascs_shard_ops_total"].Sum; got != 42 {
		t.Errorf("ops sum = %v, want 42", got)
	}
	if got := fams["ascs_shard_queue_high_water"].Max; got != 7 {
		t.Errorf("queue HW max = %v, want 7", got)
	}
	if got := fams["ascs_shard_ops_total"].Count; got != 2 {
		t.Errorf("ops sample count = %v, want 2", got)
	}
}
