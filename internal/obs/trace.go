package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"strconv"
	"sync/atomic"
	"time"
)

// Request tracing is deliberately minimal: a propagated ID, a handful
// of named span durations collected as the request crosses layers
// (route → queue-wait → shard-apply → merge), and a sampler deciding
// which requests get a structured log line. No spans are allocated for
// unsampled requests — the hot path cost of an unsampled request is one
// atomic add in the sampler and a context lookup.

// idEntropy is a per-process random prefix so request IDs from
// different daemon instances do not collide; idSeq disambiguates within
// the process.
var (
	idEntropy = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	idSeq atomic.Uint64
)

// NewRequestID returns a process-unique request identifier of the form
// <entropy16hex>-<seq>. Callers propagate it via X-Request-ID.
func NewRequestID() string {
	n := idSeq.Add(1)
	buf := make([]byte, 0, 16+1+20)
	buf = strconv.AppendUint(buf, idEntropy, 16)
	buf = append(buf, '-')
	buf = strconv.AppendUint(buf, n, 10)
	return string(buf)
}

// MaxSpans bounds the spans recorded per trace; a request crosses a
// fixed number of layers, so overflow indicates a bug and is dropped.
const MaxSpans = 8

// SpanTiming is one named duration inside a request.
type SpanTiming struct {
	Name string
	D    time.Duration
}

// Trace collects span timings for one sampled request. It is carried in
// the request context; layers call Span as they finish their stage.
// A nil *Trace is a valid no-op receiver, so call sites never branch on
// sampling.
type Trace struct {
	ID    string
	Start time.Time
	spans [MaxSpans]SpanTiming
	n     int
}

// NewTrace starts a trace for a sampled request.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, Start: time.Now()}
}

// Span records one named duration; no-op on a nil trace or overflow.
func (t *Trace) Span(name string, d time.Duration) {
	if t == nil || t.n >= MaxSpans {
		return
	}
	t.spans[t.n] = SpanTiming{Name: name, D: d}
	t.n++
}

// Spans returns the recorded timings in record order.
func (t *Trace) Spans() []SpanTiming {
	if t == nil {
		return nil
	}
	return t.spans[:t.n]
}

// Sampler admits every Nth request for tracing. every ≤ 0 disables
// sampling entirely (Sample always false). Safe for concurrent use.
type Sampler struct {
	every int64
	n     atomic.Int64
}

// NewSampler returns a 1-in-every sampler (0 or negative: never).
func NewSampler(every int) *Sampler { return &Sampler{every: int64(every)} }

// Sample reports whether this request should be traced.
func (s *Sampler) Sample() bool {
	if s == nil || s.every <= 0 {
		return false
	}
	return s.n.Add(1)%s.every == 0
}

type traceKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the request's trace, or nil when unsampled —
// which every Trace method accepts.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
