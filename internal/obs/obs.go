// Package obs is the zero-dependency telemetry subsystem of the
// serving stack: hot-path-safe counters and histograms, Prometheus
// text-format exposition, a format linter for that exposition, and
// lightweight request tracing (IDs, spans, sampling).
//
// # Hot-path safety
//
// Nothing in this package takes a lock on an ingest or query path, and
// nothing on a steady-state path allocates. The two primitives follow
// the two ownership regimes of the serving stack:
//
//   - Single-writer counters. A shard worker owns its counters as plain
//     fields (or the engine owns them; see sketchapi.Health) and
//     mutates them without synchronization — the worker goroutine is
//     the only writer, exactly like the sketch tables themselves. At
//     batch boundaries the worker publishes an atomic snapshot into a
//     Snap block, which scrapers read wait-free: a /metrics scrape
//     never enqueues anything into a worker and never waits behind
//     ingest. Values from one Snap are each individually consistent
//     but may straddle a batch boundary as a set — fine for
//     monitoring, by design.
//
//   - Concurrent histograms. Request latencies are observed by many
//     HTTP handler goroutines at once, so Hist buckets are atomic
//     adds on a fixed array: lock-free, allocation-free, and mergeable
//     (bucket-wise sums), replacing the mutex-ringed latency window
//     the server used to keep.
//
// The exposition side (Expo, Lint) is scrape-time only and deliberately
// boring: build the page into a caller-owned buffer, validate it in
// tests and CI with the same linter operators would run.
package obs

import (
	"math"
	"sync/atomic"
)

// Kind distinguishes Prometheus metric types in counter definitions.
type Kind uint8

const (
	// Counter is a monotonically non-decreasing cumulative value.
	Counter Kind = iota
	// Gauge is a point-in-time value that can move both ways.
	Gauge
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	if k == Gauge {
		return "gauge"
	}
	return "counter"
}

// Def names one slot of a Snap block for exposition: the Prometheus
// family name, its type, help text, an optional fixed extra label (the
// wave-fallback cause), and whether the slot stores float64 bits
// instead of an integer count.
type Def struct {
	Name string
	Kind Kind
	Help string
	// LabelK/LabelV, when non-empty, add a fixed label to every sample
	// of this slot (several slots may share one family name, e.g. the
	// wave fallback causes; such slots must be adjacent in the def
	// table so the family header is emitted once).
	LabelK, LabelV string
	// Float marks slots whose uint64 payload is math.Float64bits.
	Float bool
}

// Shard counter slots: the per-shard unsynchronized counter block the
// worker publishes into its Snap at batch boundaries. Indices into
// ShardDefs and every ShardTel.Snap.
const (
	// ShardBatches counts applied ingest batches.
	ShardBatches = iota
	// ShardOps counts applied pair increments.
	ShardOps
	// ShardLaneJumps counts fast-lane closures served ahead of queued
	// ingest (the priority lane actually jumping the FIFO).
	ShardLaneJumps
	// ShardQueueHighWater is the deepest ingest FIFO backlog observed
	// at enqueue time (batches).
	ShardQueueHighWater
	// ShardFastQueueHighWater is the deepest priority-lane backlog
	// observed at enqueue time.
	ShardFastQueueHighWater
	// ShardGateOffered counts sampling-period offers presented to the
	// admission gate.
	ShardGateOffered
	// ShardGateAdmitted counts sampling-period offers the gate passed.
	ShardGateAdmitted
	// ShardExplorationInserts counts exploration-period inserts (the
	// gate admits everything before T0).
	ShardExplorationInserts
	// ShardAdmittedMass accumulates Σ|x| over inserted offers (float).
	ShardAdmittedMass
	// ShardRejectedMass accumulates Σ|x| over gated-out offers (float).
	ShardRejectedMass
	// ShardGateTau is the current τ gate threshold (float gauge).
	ShardGateTau
	// ShardNEff is the effective sample count N_eff (float gauge;
	// decay-mode deployments only).
	ShardNEff
	// ShardDecayRenorms counts lazy-decay renormalization sweeps.
	ShardDecayRenorms
	// ShardWaveGroups counts wave-pipeline groups staged.
	ShardWaveGroups
	// ShardWaveFallbackConflict counts groups replayed per-pair because
	// two group members shared a table cell.
	ShardWaveFallbackConflict
	// ShardWaveFallbackExploration counts groups replayed per-pair
	// because the engine was still in its exploration period.
	ShardWaveFallbackExploration
	// ShardWaveFallbackShape counts groups replayed per-pair because
	// the engine's contract recomputes estimates from the table
	// (estimating CS shapes, filter engines).
	ShardWaveFallbackShape
	// ShardTrackerPruned counts candidate-tracker evictions (top-k
	// churn: keys pruned to keep the tracker bounded).
	ShardTrackerPruned
	// ShardAdmissionRejects counts ingest requests shed at admission
	// because THIS shard's queue crossed the bound (the shard that
	// triggered the 429). Sender-side multi-writer: updated with
	// Snap.Add, never Stored by the worker's publish.
	ShardAdmissionRejects
	// ShardDeadlineAbandons counts operations (queued batches or query
	// closures) abandoned at their caller's deadline while waiting for
	// this shard. Sender-side multi-writer, like ShardAdmissionRejects.
	ShardDeadlineAbandons
	// ShardTracked is the current candidate-tracker size (gauge).
	ShardTracked
	// ShardStep is the highest step the shard has applied (gauge).
	ShardStep
	// ShardEngineBytes is the engine's memory footprint (gauge).
	ShardEngineBytes
	// ShardFoldLevel is the engine's current fold level (gauge): 0 at
	// full resolution, L after the idle policy halved the table width
	// L times.
	ShardFoldLevel
	// ShardFolds counts idle-policy folds applied by the worker.
	ShardFolds
	// ShardUnfolds counts ingest-triggered unfolds (a fold/unfold pair
	// is one full elasticity cycle).
	ShardUnfolds
	// ShardWALLastSeq is the highest write-ahead-log sequence number the
	// shard has teed to the group-commit writer (gauge; 0 when the WAL
	// is not armed).
	ShardWALLastSeq

	// NumShardCounters sizes the per-shard Snap block.
	NumShardCounters
)

// ShardDefs names every shard counter slot for exposition. Slots
// sharing a family name (the wave fallback causes) are adjacent.
var ShardDefs = [NumShardCounters]Def{
	ShardBatches:            {Name: "ascs_shard_ingest_batches_total", Kind: Counter, Help: "Ingest batches applied by the shard worker."},
	ShardOps:                {Name: "ascs_shard_ops_total", Kind: Counter, Help: "Pair increments applied by the shard worker."},
	ShardLaneJumps:          {Name: "ascs_shard_lane_jumps_total", Kind: Counter, Help: "Fast-lane queries served ahead of queued ingest batches."},
	ShardQueueHighWater:     {Name: "ascs_shard_queue_high_water", Kind: Gauge, Help: "Deepest ingest FIFO backlog observed at enqueue (batches)."},
	ShardFastQueueHighWater: {Name: "ascs_shard_fast_queue_high_water", Kind: Gauge, Help: "Deepest priority-lane backlog observed at enqueue."},
	ShardGateOffered:        {Name: "ascs_gate_offered_total", Kind: Counter, Help: "Sampling-period offers presented to the admission gate."},
	ShardGateAdmitted:       {Name: "ascs_gate_admitted_total", Kind: Counter, Help: "Sampling-period offers the admission gate passed."},
	ShardExplorationInserts: {Name: "ascs_exploration_inserts_total", Kind: Counter, Help: "Exploration-period inserts (pre-T0, gate admits all)."},
	ShardAdmittedMass:       {Name: "ascs_gate_admitted_mass_total", Kind: Counter, Help: "Sum of |x| over inserted offers.", Float: true},
	ShardRejectedMass:       {Name: "ascs_gate_rejected_mass_total", Kind: Counter, Help: "Sum of |x| over gated-out offers.", Float: true},
	ShardGateTau:            {Name: "ascs_gate_tau", Kind: Gauge, Help: "Current ASCS admission threshold tau.", Float: true},
	ShardNEff:               {Name: "ascs_shard_n_eff", Kind: Gauge, Help: "Effective sample count N_eff (decay mode).", Float: true},
	ShardDecayRenorms:       {Name: "ascs_decay_renormalizations_total", Kind: Counter, Help: "Lazy-decay scale renormalization sweeps."},
	ShardWaveGroups:         {Name: "ascs_wave_groups_total", Kind: Counter, Help: "Wave-pipeline groups staged by the batch ingest path."},
	ShardWaveFallbackConflict: {Name: "ascs_wave_fallback_total", Kind: Counter, Help: "Wave groups replayed per-pair, by cause.",
		LabelK: "cause", LabelV: "conflict"},
	ShardWaveFallbackExploration: {Name: "ascs_wave_fallback_total", Kind: Counter, Help: "Wave groups replayed per-pair, by cause.",
		LabelK: "cause", LabelV: "exploration"},
	ShardWaveFallbackShape: {Name: "ascs_wave_fallback_total", Kind: Counter, Help: "Wave groups replayed per-pair, by cause.",
		LabelK: "cause", LabelV: "shape"},
	ShardTrackerPruned:    {Name: "ascs_topk_tracker_pruned_total", Kind: Counter, Help: "Candidate-tracker evictions (top-k churn)."},
	ShardAdmissionRejects: {Name: "ascs_shard_admission_rejects_total", Kind: Counter, Help: "Ingest requests shed because this shard's queue crossed the admission bound."},
	ShardDeadlineAbandons: {Name: "ascs_shard_deadline_abandons_total", Kind: Counter, Help: "Operations abandoned at their deadline while queued for this shard."},
	ShardTracked:          {Name: "ascs_topk_tracked", Kind: Gauge, Help: "Candidate keys currently tracked."},
	ShardStep:             {Name: "ascs_shard_step", Kind: Gauge, Help: "Highest stream step applied by the shard."},
	ShardEngineBytes:      {Name: "ascs_shard_engine_bytes", Kind: Gauge, Help: "Engine memory footprint in bytes."},
	ShardFoldLevel:        {Name: "ascs_shard_fold_level", Kind: Gauge, Help: "Current sketch fold level (0 = full resolution)."},
	ShardFolds:            {Name: "ascs_shard_folds_total", Kind: Counter, Help: "Idle-policy sketch folds applied by the shard worker."},
	ShardUnfolds:          {Name: "ascs_shard_unfolds_total", Kind: Counter, Help: "Ingest-triggered sketch unfolds back to full resolution."},
	ShardWALLastSeq:       {Name: "ascs_shard_wal_last_seq", Kind: Gauge, Help: "Highest WAL sequence number teed by the shard (0 when the WAL is off)."},
}

// Snap is the atomically readable mirror of a single-writer counter
// block: the owner publishes with Store/StoreFloat/Max, scrapers read
// with Load/LoadFloat. Publishing a whole block is a plain loop of
// atomic stores — no locks, no allocation.
type Snap [NumShardCounters]atomic.Uint64

// Store publishes an integer counter slot.
func (s *Snap) Store(i int, v uint64) { s[i].Store(v) }

// StoreFloat publishes a float64 slot (as IEEE bits).
func (s *Snap) StoreFloat(i int, v float64) { s[i].Store(math.Float64bits(v)) }

// Add atomically increments slot i by v. For multi-writer slots
// (admission rejects, deadline abandons) that senders bump directly —
// such slots must never also be Stored by the worker's publish, or the
// store would clobber concurrent adds.
func (s *Snap) Add(i int, v uint64) { s[i].Add(v) }

// Max raises slot i to at least v (high-water marks; any goroutine may
// call it, so it CASes instead of assuming single-writer ownership).
func (s *Snap) Max(i int, v uint64) {
	for {
		cur := s[i].Load()
		if v <= cur || s[i].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load reads an integer slot.
func (s *Snap) Load(i int) uint64 { return s[i].Load() }

// LoadFloat reads a float64 slot.
func (s *Snap) LoadFloat(i int) float64 { return math.Float64frombits(s[i].Load()) }

// Value reads slot i in exposition units: the stored float for Float
// slots, the integer count otherwise.
func (s *Snap) Value(i int) float64 {
	if ShardDefs[i].Float {
		return s.LoadFloat(i)
	}
	return float64(s[i].Load())
}

// ShardTel is one shard's published telemetry: the counter Snap plus
// the worker-owned latency/size histograms. The worker writes, anyone
// reads; no locks anywhere.
type ShardTel struct {
	Snap Snap
	// BatchSize distributes applied ingest batch sizes (ops/batch).
	BatchSize Hist
	// IngestWait distributes batch queue waits (enqueue → apply start),
	// in nanoseconds — shard queue pressure as latency.
	IngestWait Hist
	// FreshWait distributes fresh-lane query waits (enqueue → run), ns.
	FreshWait Hist
	// FastWait distributes fast-lane query waits (enqueue → run), ns.
	FastWait Hist
	// Apply distributes per-batch apply durations, ns.
	Apply Hist
}
