package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of every Hist: one bucket per
// power of two of the observed value, which covers the full non-negative
// int64 range (64 ns histograms span <1ns to ~292 years).
const HistBuckets = 64

// Hist is a lock-free log2-bucketed histogram. Observe is a single
// atomic add (plus one for the sum): safe from any number of goroutines,
// no allocation, no lock — the replacement for the server's mutex-ringed
// latency window and the primitive behind every worker-owned latency and
// batch-size distribution.
//
// Bucket i counts observations v with bits.Len64(v) == i, i.e.
// v ∈ [2^(i-1), 2^i - 1]; bucket 0 counts v ≤ 0. The upper bound of
// bucket i is therefore 2^i - 1 (inclusive), exposed by BucketUpper.
// The coarse (≤2× relative error) buckets are the price of a wait-free
// hot path; quantiles interpolate linearly within a bucket.
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket i; the last
// bucket is unbounded (+Inf).
func BucketUpper(i int) float64 {
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i) - 1)
}

// Observe records one value (durations in nanoseconds, sizes in units).
func (h *Hist) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot captures a point-in-time copy into dst (reused across
// scrapes; no allocation). Concurrent Observes may land in some buckets
// and not others — each bucket is individually consistent, which is all
// a monitoring scrape needs.
func (h *Hist) Snapshot(dst *HistSnap) {
	var count uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		dst.Buckets[i] = c
		count += c
	}
	dst.Count = count
	dst.Sum = h.sum.Load()
}

// HistSnap is a plain (non-atomic) histogram snapshot: mergeable across
// shards and queryable for quantiles.
type HistSnap struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     int64
}

// Reset zeroes the snapshot for reuse.
func (s *HistSnap) Reset() { *s = HistSnap{} }

// Merge adds other's counts into s (bucket-wise). Because buckets are
// fixed powers of two, merging never re-bins: bucket boundaries
// round-trip exactly through any merge order.
func (s *HistSnap) Merge(other *HistSnap) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Mean returns the average observed value, or 0 when empty.
func (s *HistSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (q ∈ [0,1]) by linear
// interpolation within the containing bucket. Empty snapshots return 0.
func (s *HistSnap) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i := range s.Buckets {
		c := float64(s.Buckets[i])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := BucketUpper(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / c
			}
			return lo + frac*(hi+1-lo)
		}
		cum += c
	}
	return BucketUpper(HistBuckets - 1)
}
