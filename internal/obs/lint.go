package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-format (0.0.4) exposition page: the
// internal checker CI runs against ascsd's /metrics and the golden test
// runs against the handler. It checks:
//
//   - HELP/TYPE comment syntax and known TYPE keywords;
//   - metric and label name character sets;
//   - every sample belongs to a family whose TYPE precedes it;
//   - families are contiguous (no interleaving after another family);
//   - no duplicate series (same name + label set);
//   - parseable sample values;
//   - histogram shape: cumulative non-decreasing buckets, a le="+Inf"
//     bucket equal to _count, and _sum/_count present.
//
// It is deliberately a subset validator — it accepts any page real
// Prometheus would, and rejects the malformations this codebase could
// plausibly produce.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	types := map[string]string{}   // family → TYPE
	closed := map[string]bool{}    // family → a different family started after it
	var current string             // family of the last sample/header
	seen := map[string]bool{}      // full series (name+labels) → emitted
	hists := map[string]*histAcc{} // histogram family → shape accumulator

	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			family, typ, err := parseComment(text)
			if err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			if family == "" {
				continue // free-form comment
			}
			if closed[family] {
				return fmt.Errorf("line %d: family %q reopened after another family", line, family)
			}
			if current != "" && current != family {
				closed[current] = true
			}
			current = family
			if typ != "" {
				if old, ok := types[family]; ok && old != typ {
					return fmt.Errorf("line %d: family %q TYPE changed %q -> %q", line, family, old, typ)
				}
				types[family] = typ
			}
			continue
		}

		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		family := familyOf(name, types)
		if types[family] == "" {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", line, name)
		}
		if closed[family] {
			return fmt.Errorf("line %d: family %q interleaved after another family", line, family)
		}
		if current != "" && current != family {
			closed[current] = true
		}
		current = family

		series := name + "{" + canonLabels(labels) + "}"
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", line, series)
		}
		seen[series] = true

		if types[family] == "histogram" {
			h := hists[family+"{"+canonLabels(stripLe(labels))+"}"]
			if h == nil {
				h = &histAcc{lastCum: -1}
				hists[family+"{"+canonLabels(stripLe(labels))+"}"] = h
			}
			if err := h.add(name, family, labels, value); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for series, h := range hists {
		if err := h.finish(series); err != nil {
			return err
		}
	}
	return nil
}

// histAcc accumulates one histogram series' shape checks.
type histAcc struct {
	lastCum  float64 // cumulative monotonicity; -1 = none yet
	infCum   float64
	count    float64
	hasInf   bool
	hasCount bool
	hasSum   bool
}

func (h *histAcc) add(name, family string, labels []label, value float64) error {
	switch {
	case strings.HasSuffix(name, "_bucket"):
		le := ""
		for _, l := range labels {
			if l.k == "le" {
				le = l.v
			}
		}
		if le == "" {
			return fmt.Errorf("histogram %s bucket without le label", family)
		}
		bound, err := parsePromFloat(le)
		if err != nil {
			return fmt.Errorf("histogram %s bad le %q: %v", family, le, err)
		}
		if h.lastCum >= 0 && value < h.lastCum {
			return fmt.Errorf("histogram %s buckets not cumulative at le=%q (%v < %v)", family, le, value, h.lastCum)
		}
		h.lastCum = value
		if math.IsInf(bound, 1) {
			h.hasInf = true
			h.infCum = value
		}
	case strings.HasSuffix(name, "_count"):
		h.hasCount = true
		h.count = value
	case strings.HasSuffix(name, "_sum"):
		h.hasSum = true
	default:
		return fmt.Errorf("histogram family %s has stray sample %s", family, name)
	}
	return nil
}

func (h *histAcc) finish(series string) error {
	if !h.hasInf {
		return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", series)
	}
	if !h.hasCount || !h.hasSum {
		return fmt.Errorf("histogram %s missing _sum or _count", series)
	}
	if h.infCum != h.count {
		return fmt.Errorf("histogram %s +Inf bucket %v != _count %v", series, h.infCum, h.count)
	}
	return nil
}

// familyOf strips a histogram sample suffix when its base family has a
// histogram TYPE; plain metrics are their own family.
func familyOf(name string, types map[string]string) string {
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func parseComment(text string) (family, typ string, err error) {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 {
		return "", "", nil
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 4 || !validName(fields[2]) {
			return "", "", fmt.Errorf("malformed HELP comment %q", text)
		}
		return fields[2], "", nil
	case "TYPE":
		if len(fields) != 4 || !validName(fields[2]) {
			return "", "", fmt.Errorf("malformed TYPE comment %q", text)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return "", "", fmt.Errorf("unknown TYPE %q", fields[3])
		}
		return fields[2], fields[3], nil
	}
	return "", "", nil
}

type label struct{ k, v string }

// parseSample splits `name{labels} value [timestamp]`.
func parseSample(text string) (string, []label, float64, error) {
	rest := text
	brace := strings.IndexByte(rest, '{')
	var name string
	var labels []label
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", text)
		}
		var err error
		labels, err = parseLabels(rest[brace+1 : end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample without value: %q", text)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", text)
	}
	v, err := parsePromFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, v, nil
}

func parseLabels(s string) ([]label, error) {
	var out []label
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		k := s[:eq]
		if !validLabelName(k) {
			return nil, fmt.Errorf("invalid label name %q", k)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value after %q", k)
		}
		s = s[1:]
		var v strings.Builder
		for {
			if len(s) == 0 {
				return nil, fmt.Errorf("unterminated label value for %q", k)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return nil, fmt.Errorf("dangling escape in label %q", k)
				}
				switch s[0] {
				case '"', '\\':
					v.WriteByte(s[0])
				case 'n':
					v.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[0], k)
				}
				s = s[1:]
				continue
			}
			v.WriteByte(c)
		}
		out = append(out, label{k, v.String()})
		if s != "" {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

func canonLabels(labels []label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.k + "=" + l.v
	}
	// Insertion sort: label sets here are tiny.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

func stripLe(labels []label) []label {
	out := labels[:0:0]
	for _, l := range labels {
		if l.k != "le" {
			out = append(out, l)
		}
	}
	return out
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Families parses an exposition page into per-family aggregates: the
// sum of all plain samples per family name, and (for convenience when
// diffing scrapes) the max. Histogram families aggregate their _sum and
// _count. ascsload uses this to turn two scrapes into counter deltas.
type Families map[string]FamilyAgg

// FamilyAgg summarizes one family's samples on a page.
type FamilyAgg struct {
	Sum   float64
	Max   float64
	Count int
}

// Parse reads an exposition page into family aggregates. It assumes a
// well-formed page (run Lint first when provenance is untrusted);
// malformed lines are skipped rather than failing a bench run.
func Parse(r io.Reader) (Families, error) {
	fams := Families{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		name, _, value, err := parseSample(text)
		if err != nil {
			continue
		}
		agg := fams[name]
		agg.Sum += value
		if agg.Count == 0 || value > agg.Max {
			agg.Max = value
		}
		agg.Count++
		fams[name] = agg
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}
