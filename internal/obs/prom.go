package obs

import (
	"bytes"
	"math"
	"strconv"
)

// Expo builds a Prometheus text-format (version 0.0.4) exposition page
// into a caller-owned buffer. It is scrape-time machinery: handlers pool
// the buffer, and the page is rebuilt from atomic snapshots on each
// scrape.
//
// Usage contract: call Header once per family (before any of its
// samples), then Sample/Histogram lines. Label strings are prerendered
// by the caller (e.g. `shard="3"`) so the hot shard loop does no
// formatting beyond the value itself.
type Expo struct {
	B bytes.Buffer
}

// Reset clears the page for reuse.
func (e *Expo) Reset() { e.B.Reset() }

// Header emits the # HELP / # TYPE preamble for a family.
func (e *Expo) Header(name, typ, help string) {
	e.B.WriteString("# HELP ")
	e.B.WriteString(name)
	e.B.WriteByte(' ')
	e.B.WriteString(help)
	e.B.WriteByte('\n')
	e.B.WriteString("# TYPE ")
	e.B.WriteString(name)
	e.B.WriteByte(' ')
	e.B.WriteString(typ)
	e.B.WriteByte('\n')
}

// writeFloat appends v in Prometheus notation (+Inf/-Inf/NaN spellings).
func (e *Expo) writeFloat(v float64) {
	switch {
	case math.IsInf(v, 1):
		e.B.WriteString("+Inf")
	case math.IsInf(v, -1):
		e.B.WriteString("-Inf")
	case math.IsNaN(v):
		e.B.WriteString("NaN")
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		e.B.Write(strconv.AppendInt(e.scratch(), int64(v), 10))
	default:
		e.B.Write(strconv.AppendFloat(e.scratch(), v, 'g', -1, 64))
	}
}

// scratch returns a zero-length slice backed by a small stack array;
// strconv appends into it and the result is copied into the buffer.
func (e *Expo) scratch() []byte { return make([]byte, 0, 24) }

// Sample emits one sample line: name{labels} value. labels is the raw
// comma-joined pair list without braces ("" for none).
func (e *Expo) Sample(name, labels string, value float64) {
	e.B.WriteString(name)
	if labels != "" {
		e.B.WriteByte('{')
		e.B.WriteString(labels)
		e.B.WriteByte('}')
	}
	e.B.WriteByte(' ')
	e.writeFloat(value)
	e.B.WriteByte('\n')
}

// Histogram emits the cumulative-bucket series for one histogram
// snapshot: non-empty buckets plus the mandatory le="+Inf" bucket, then
// _sum and _count. scale converts stored units to exposition units
// (1e-9 for ns→s; 1 for counts). labels is the base label list for the
// series ("" for none); the le label is appended to it.
//
// Empty buckets are elided (except +Inf) to keep pages small — the
// cumulative encoding loses nothing by it.
func (e *Expo) Histogram(name, labels string, s *HistSnap, scale float64) {
	var cum uint64
	for i := 0; i < HistBuckets-1; i++ {
		c := s.Buckets[i]
		if c == 0 {
			continue
		}
		cum += c
		e.bucketLine(name, labels, BucketUpper(i)*scale, cum)
	}
	e.bucketLine(name, labels, math.Inf(1), s.Count)

	e.B.WriteString(name)
	e.B.WriteString("_sum")
	if labels != "" {
		e.B.WriteByte('{')
		e.B.WriteString(labels)
		e.B.WriteByte('}')
	}
	e.B.WriteByte(' ')
	e.writeFloat(float64(s.Sum) * scale)
	e.B.WriteByte('\n')

	e.B.WriteString(name)
	e.B.WriteString("_count")
	if labels != "" {
		e.B.WriteByte('{')
		e.B.WriteString(labels)
		e.B.WriteByte('}')
	}
	e.B.WriteByte(' ')
	e.writeFloat(float64(s.Count))
	e.B.WriteByte('\n')
}

func (e *Expo) bucketLine(name, labels string, le float64, cum uint64) {
	e.B.WriteString(name)
	e.B.WriteString("_bucket{")
	if labels != "" {
		e.B.WriteString(labels)
		e.B.WriteByte(',')
	}
	e.B.WriteString(`le="`)
	e.writeFloat(le)
	e.B.WriteString(`"} `)
	e.writeFloat(float64(cum))
	e.B.WriteByte('\n')
}
