package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistBucketBoundaries pins the log2 binning contract: v lands in
// bucket bits.Len64(v), whose inclusive upper bound is 2^i - 1.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		// The value must not exceed its bucket's upper bound, and must
		// exceed the previous bucket's bound.
		if up := BucketUpper(c.want); float64(c.v) > up {
			t.Errorf("v=%d above BucketUpper(%d)=%v", c.v, c.want, up)
		}
		if c.want > 0 && c.v > 0 {
			if prev := BucketUpper(c.want - 1); float64(c.v) <= prev {
				t.Errorf("v=%d not above BucketUpper(%d)=%v", c.v, c.want-1, prev)
			}
		}
	}
	if !math.IsInf(BucketUpper(HistBuckets-1), 1) {
		t.Fatalf("last bucket must be +Inf, got %v", BucketUpper(HistBuckets-1))
	}
}

// TestHistMergeRoundTrip is the satellite-mandated check: bucket
// boundaries round-trip through merge — observing a value set into one
// histogram equals observing disjoint subsets into several histograms
// and merging their snapshots, bucket for bucket, in any merge order.
func TestHistMergeRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 1, 2, 3, 5, 8, 13, 100, 1023, 1024, 1025, 1 << 20, 1 << 41, math.MaxInt64 / 2}

	var whole Hist
	parts := make([]Hist, 3)
	for i, v := range vals {
		whole.Observe(v)
		parts[i%3].Observe(v)
	}

	var want, got, tmp HistSnap
	whole.Snapshot(&want)

	// Merge in two different orders; both must match the whole.
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}} {
		got.Reset()
		for _, i := range order {
			parts[i].Snapshot(&tmp)
			got.Merge(&tmp)
		}
		if got != want {
			t.Fatalf("merge order %v: merged snapshot differs from whole\n got %+v\nwant %+v", order, got, want)
		}
	}
	if got.Count != uint64(len(vals)) {
		t.Fatalf("Count = %d, want %d", got.Count, len(vals))
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	var s HistSnap
	h.Snapshot(&s)
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}

	// 1000 observations of 100 (bucket 7: [64,127]): every quantile
	// must land inside that bucket.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	h.Snapshot(&s)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		v := s.Quantile(q)
		if v < 64 || v > 128 {
			t.Errorf("Quantile(%v) = %v, want within bucket [64,128]", q, v)
		}
	}
	if m := s.Mean(); m != 100 {
		t.Errorf("Mean = %v, want 100", m)
	}

	// Skewed mixture: p50 below the tail bucket, p99 inside it.
	var h2 Hist
	for i := 0; i < 99; i++ {
		h2.Observe(10)
	}
	for i := 0; i < 901; i++ {
		h2.Observe(1 << 20)
	}
	h2.Snapshot(&s)
	if p01 := s.Quantile(0.05); p01 > 16 {
		t.Errorf("Quantile(0.05) = %v, want ≤ 16", p01)
	}
	if p99 := s.Quantile(0.99); p99 < 1<<19 {
		t.Errorf("Quantile(0.99) = %v, want ≥ 2^19", p99)
	}
}

// TestHistConcurrent exercises Observe/Snapshot under the race
// detector and checks no observations are lost once writers stop.
func TestHistConcurrent(t *testing.T) {
	var h Hist
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		var s HistSnap
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot(&s)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	var s HistSnap
	h.Snapshot(&s)
	if s.Count != writers*per {
		t.Fatalf("Count = %d, want %d", s.Count, writers*per)
	}
}

func TestHistObserveAllocs(t *testing.T) {
	var h Hist
	var s HistSnap
	if a := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); a != 0 {
		t.Fatalf("Observe allocates %v/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { h.Snapshot(&s) }); a != 0 {
		t.Fatalf("Snapshot allocates %v/op, want 0", a)
	}
}
