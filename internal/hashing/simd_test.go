package hashing

import (
	"testing"
)

// fillGoRef runs the portable reference kernel for a family's seeds —
// the oracle every architecture kernel must match bit for bit.
func fillGoRef(f *mixFamily, keys []uint64) []Slot {
	slots := make([]Slot, len(keys)*f.tables)
	mixFillSlotsBatchGo(keys, slots, f.bucketSeeds, f.signSeeds, f.rng)
	return slots
}

// TestMixFillSlotsBatchMatchesReference compares the dispatched
// FillSlotsBatch (the AVX2 kernel on capable amd64 hosts, the portable
// loop elsewhere and under -tags purego) against the pure-Go reference
// across table counts, ranges (including non-powers of two and one past
// the 2^32 vector-fastRange guard), and batch lengths that exercise the
// quad loop plus every tail size.
func TestMixFillSlotsBatchMatchesReference(t *testing.T) {
	t.Logf("cpu features: avx2=%v bmi2=%v", cpuAVX2, cpuBMI2)
	sm := NewSplitMix64(0xfeedface)
	ranges := []int{1, 2, 7, 256, 1 << 14, 1<<31 - 1}
	for _, k := range []int{1, 2, 3, 5, 8, 11} {
		for _, r := range ranges {
			f := newMixFamily(k, r, sm.Next())
			for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 31, 32, 33, 64, 67} {
				keys := make([]uint64, n)
				for i := range keys {
					switch i % 3 {
					case 0:
						keys[i] = sm.Next()
					case 1:
						keys[i] = uint64(i) // small structured keys
					default:
						keys[i] = ^uint64(0) - uint64(i)
					}
				}
				want := fillGoRef(f, keys)
				got := make([]Slot, n*k)
				f.FillSlotsBatch(keys, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("K=%d R=%d n=%d: slot %d = %+v, reference %+v", k, r, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestMixFillSlotsBatchHugeRange pins the dispatcher's R ≥ 2^32 guard:
// the vector fastRange is only exact below 2^32, so such ranges must
// take the portable kernel (and still agree with it, trivially).
func TestMixFillSlotsBatchHugeRange(t *testing.T) {
	if intSize := 32 << (^uint(0) >> 63); intSize < 64 {
		t.Skip("range beyond 2^32 needs 64-bit int")
	}
	f := &mixFamily{
		bucketSeeds: []uint64{0xdeadbeefcafef00d, 0x0123456789abcdef},
		signSeeds:   []uint64{0x1111111111111111, 0x2222222222222223},
		tables:      2,
		rng:         1 << 33,
	}
	keys := []uint64{0, 1, ^uint64(0), 0x9e3779b97f4a7c15, 42, 43, 44, 45, 46}
	want := fillGoRef(f, keys)
	got := make([]Slot, len(keys)*2)
	f.FillSlotsBatch(keys, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %+v, reference %+v", i, got[i], want[i])
		}
	}
}

// FuzzMixFillSlotsBatch fuzzes the kernel-vs-reference equivalence over
// seeds, shapes, and key contents.
func FuzzMixFillSlotsBatch(f *testing.F) {
	f.Add(uint64(1), uint64(99), 5, 1<<14)
	f.Add(uint64(0), uint64(0), 1, 1)
	f.Add(^uint64(0), uint64(7), 8, 3)
	f.Fuzz(func(t *testing.T, seed, keyseed uint64, k, r int) {
		k = 1 + abs(k)%MaxTables
		r = 1 + abs(r)%(1<<20)
		fam := newMixFamily(k, r, seed)
		sm := NewSplitMix64(keyseed)
		n := int(sm.Next() % 70)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = sm.Next() >> (sm.Next() % 64) // mixed magnitudes
		}
		want := fillGoRef(fam, keys)
		got := make([]Slot, n*k)
		fam.FillSlotsBatch(keys, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("K=%d R=%d n=%d: slot %d = %+v, reference %+v", k, r, n, i, got[i], want[i])
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Avoid MinInt overflow by folding to a fixed positive value.
		if v == -v {
			return 1
		}
		return -v
	}
	return v
}
