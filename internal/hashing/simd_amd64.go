//go:build amd64 && !purego

package hashing

// cpuAVX2 / cpuBMI2 record the runtime CPU-feature detection that gates
// the assembly kernels (CPUID + XGETBV; see cpu_amd64.s). BMI2 is not
// required by any kernel today — it is detected so benchmarks can record
// the host's capability next to AVX2 (CPUFeatures).
var cpuAVX2, cpuBMI2 = detectFeatures()

// mixFillSlotsBatch dispatches the mix family's batch slot fill: quads
// of keys go through the AVX2 kernel, the ≤ 3 remaining keys (and every
// key when AVX2 is absent) through the portable reference.
//
// The vector fastRange computes hi64(h·R) with two 32×32-bit products,
// which is exact only for R < 2^32 (any practical table: 2^32 buckets
// is a 32 GiB table). Larger ranges — and the purego build — take the
// reference kernel unconditionally.
func mixFillSlotsBatch(keys []uint64, slots []Slot, bseeds, sseeds []uint64, rng uint64) {
	if cpuAVX2 && rng < 1<<32 && len(keys) >= 4 {
		q := len(keys) &^ 3
		k := len(bseeds)
		mixFillSlotsAVX2(keys[:q], slots[:q*k], bseeds, sseeds, rng)
		keys = keys[q:]
		slots = slots[q*k:]
	}
	mixFillSlotsBatchGo(keys, slots, bseeds, sseeds, rng)
}

// mixFillSlotsAVX2 fills slots for len(keys) keys (a multiple of 4,
// ≥ 4) across K = len(bseeds) tables, bit-identically to
// mixFillSlotsBatchGo. Requires AVX2 and rng < 2^32. Implemented in
// slotfill_amd64.s.
//
//go:noescape
func mixFillSlotsAVX2(keys []uint64, slots []Slot, bseeds, sseeds []uint64, rng uint64)

// cpuid executes CPUID with the given leaf/subleaf. Implemented in
// cpu_amd64.s.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE). Implemented in cpu_amd64.s.
func xgetbv0() (eax, edx uint32)

// detectFeatures checks for AVX2 (including the OS XMM/YMM state-save
// support the kernels rely on) and BMI2.
func detectFeatures() (avx2, bmi2 bool) {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false, false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	_, b7, _, _ := cpuid(7, 0)
	bmi2 = b7&(1<<8) != 0
	if c1&osxsave == 0 || c1&avx == 0 {
		return false, bmi2
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM state on context
	// switch. Without them, executing the kernels would corrupt other
	// threads' registers.
	xl, _ := xgetbv0()
	if xl&0x6 != 0x6 {
		return false, bmi2
	}
	return b7&(1<<5) != 0, bmi2
}
