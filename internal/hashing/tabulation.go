package hashing

// tabulationFamily implements simple tabulation hashing: the 8 bytes of
// the key each index a table of random 64-bit words which are XORed
// together. Simple tabulation is 3-wise independent and enjoys
// Chernoff-style concentration for many hashing applications
// (Patrascu & Thorup 2012), making it a strong choice for sketches.
type tabulationFamily struct {
	// tab[e][byteIdx][byteVal] for the bucket hash; sign uses bit 63 of an
	// independently seeded second tabulation.
	bucketTab [][8][256]uint64
	signTab   [][8][256]uint64
	tables    int
	rng       uint64
}

func newTabulationFamily(tables, rng int, seed uint64) *tabulationFamily {
	sm := NewSplitMix64(seed)
	f := &tabulationFamily{
		bucketTab: make([][8][256]uint64, tables),
		signTab:   make([][8][256]uint64, tables),
		tables:    tables,
		rng:       uint64(rng),
	}
	for e := 0; e < tables; e++ {
		for b := 0; b < 8; b++ {
			for v := 0; v < 256; v++ {
				f.bucketTab[e][b][v] = sm.Next()
				f.signTab[e][b][v] = sm.Next()
			}
		}
	}
	return f
}

func (f *tabulationFamily) Tables() int { return f.tables }
func (f *tabulationFamily) Range() int  { return int(f.rng) }

func tabulate(tab *[8][256]uint64, key uint64) uint64 {
	var h uint64
	for b := 0; b < 8; b++ {
		h ^= tab[b][byte(key>>(8*b))]
	}
	return h
}

func (f *tabulationFamily) Bucket(e int, key uint64) int {
	return int(fastRange(tabulate(&f.bucketTab[e], key), f.rng))
}

func (f *tabulationFamily) Sign(e int, key uint64) float64 {
	if tabulate(&f.signTab[e], key)>>63 == 1 {
		return 1
	}
	return -1
}

// FillSlotsBatch decomposes each key into its bytes once (instead of
// once per table) and keeps the tabulation-table walk of FillSlots;
// each key's slots are filled exactly as FillSlots fills them.
func (f *tabulationFamily) FillSlotsBatch(keys []uint64, slots []Slot) {
	k := f.tables
	if len(slots) != len(keys)*k {
		panic("hashing: FillSlotsBatch slot buffer has wrong length")
	}
	r := int(f.rng)
	for i, key := range keys {
		var kb [8]byte
		for b := 0; b < 8; b++ {
			kb[b] = byte(key >> (8 * b))
		}
		out := slots[i*k : i*k+k]
		off := 0
		for e := 0; e < k; e++ {
			bt, st := &f.bucketTab[e], &f.signTab[e]
			var hb, hs uint64
			for b := 0; b < 8; b++ {
				hb ^= bt[b][kb[b]]
				hs ^= st[b][kb[b]]
			}
			s := float64(-1)
			if hs>>63 == 1 {
				s = 1
			}
			out[e] = Slot{Off: off + int(fastRange(hb, f.rng)), Sign: s}
			off += r
		}
	}
}

// FillSlots walks the key's bytes once per table, XORing bucket and sign
// table entries in the same pass.
func (f *tabulationFamily) FillSlots(key uint64, slots *[MaxTables]Slot) {
	r := int(f.rng)
	off := 0
	for e := 0; e < f.tables; e++ {
		bt, st := &f.bucketTab[e], &f.signTab[e]
		var hb, hs uint64
		for b := 0; b < 8; b++ {
			v := byte(key >> (8 * b))
			hb ^= bt[b][v]
			hs ^= st[b][v]
		}
		s := float64(-1)
		if hs>>63 == 1 {
			s = 1
		}
		slots[e] = Slot{Off: off + int(fastRange(hb, f.rng)), Sign: s}
		off += r
	}
}
