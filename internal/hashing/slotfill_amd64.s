//go:build amd64 && !purego

#include "textflag.h"

// mixFillSlotsAVX2 — the AVX2 kernel of the mix family's batch slot
// fill. Four keys per iteration, tables in the inner loop; must stay
// bit-identical to mixFillSlotsBatchGo (the simd differential tests and
// the -race CI step compare them on random shapes). The contract it
// preserves, per key i and table e:
//
//	h      = Mix64(key ^ bucketSeeds[e])
//	bucket = hi64(h * R)                      (Lemire fastRange)
//	off    = e*R + bucket                     (row-major cell index)
//	sign   = Mix64(key*signSeeds[e] + bucketSeeds[e])&1 == 1 ? +1.0 : -1.0
//	slots[i*K+e] = {off int64, sign float64}  (16 bytes, Off first)
//
// AVX2 has no 64-bit low multiply (VPMULLQ is AVX-512), so Mix64's two
// multiplies and key*signSeed are synthesized from three VPMULUDQ
// 32×32→64 products each: lo64(a·b) = alo·blo + ((ahi·blo + alo·bhi)
// << 32). fastRange exploits R < 2^32 (the Go dispatcher guarantees
// it): hi64(h·R) = (hhi·R + (hlo·R >> 32)) >> 32 with two VPMULUDQ —
// exact, since hhi·R + (hlo·R >> 32) < 2^64. The ±1.0 sign needs no
// blend: ∓1.0 differ only in the IEEE sign bit, so
// sign = 0x3FF0000000000000 | ((bit62^... (h&1)^1) << 63).
//
// len(keys) must be a nonzero multiple of 4 and K = len(bseeds) ≥ 1.

// MUL64C: v = lo64(v * c) for a constant broadcast pair (c, chi=c>>32):
// t1 = vlo·clo, t2 = vhi·clo, t3 = vlo·chi, v = t1 + ((t2+t3) << 32).
#define MUL64C(v, c, chi, t1, t2, t3) \
	VPMULUDQ c, v, t1    \
	VPSRLQ   $32, v, t2  \
	VPMULUDQ c, t2, t2   \
	VPMULUDQ chi, v, t3  \
	VPADDQ   t3, t2, t2  \
	VPSLLQ   $32, t2, t2 \
	VPADDQ   t2, t1, v

// MIX64: v = Mix64(v). Clobbers t1,t2,t3; uses the global constant
// registers Y15/Y14 (first multiplier) and Y13/Y12 (second).
#define MIX64(v, t1, t2, t3) \
	VPSRLQ $30, v, t1 \
	VPXOR  t1, v, v   \
	MUL64C(v, Y15, Y14, t1, t2, t3) \
	VPSRLQ $27, v, t1 \
	VPXOR  t1, v, v   \
	MUL64C(v, Y13, Y12, t1, t2, t3) \
	VPSRLQ $31, v, t1 \
	VPXOR  t1, v, v

DATA mixconsts<>+0(SB)/8, $0xbf58476d1ce4e5b9  // Mix64 multiplier 1
DATA mixconsts<>+8(SB)/8, $0x00000000bf58476d  // ... high 32 bits
DATA mixconsts<>+16(SB)/8, $0x94d049bb133111eb // Mix64 multiplier 2
DATA mixconsts<>+24(SB)/8, $0x0000000094d049bb // ... high 32 bits
DATA mixconsts<>+32(SB)/8, $0x3ff0000000000000 // float64(+1.0) bits
DATA mixconsts<>+40(SB)/8, $0x0000000000000001 // qword 1
GLOBL mixconsts<>(SB), RODATA|NOPTR, $48

// func mixFillSlotsAVX2(keys []uint64, slots []Slot, bseeds, sseeds []uint64, rng uint64)
TEXT ·mixFillSlotsAVX2(SB), NOSPLIT, $0-104
	MOVQ keys_base+0(FP), SI
	MOVQ keys_len+8(FP), CX
	SHRQ $2, CX                   // key quads
	JZ   done
	MOVQ slots_base+24(FP), R12   // slot cursor of the quad's first key
	MOVQ bseeds_base+48(FP), R8
	MOVQ bseeds_len+56(FP), R10   // K
	MOVQ sseeds_base+72(FP), R9
	MOVQ R10, R11
	SHLQ $4, R11                  // K*16 = one key's slot stride in bytes

	// Constant registers for the whole call.
	MOVQ         rng+96(FP), AX
	MOVQ         AX, X11
	VPBROADCASTQ X11, Y11             // R (both fastRange multiplier and off stride)
	VPBROADCASTQ mixconsts<>+0(SB), Y15
	VPBROADCASTQ mixconsts<>+8(SB), Y14
	VPBROADCASTQ mixconsts<>+16(SB), Y13
	VPBROADCASTQ mixconsts<>+24(SB), Y12
	VPBROADCASTQ mixconsts<>+32(SB), Y10 // +1.0
	VPBROADCASTQ mixconsts<>+40(SB), Y9  // 1

quadloop:
	VMOVDQU (SI), Y8              // 4 keys
	VPXOR   Y7, Y7, Y7            // off accumulator e*R, starts 0
	MOVQ    R12, R13              // store cursor, keys 0/1 of the quad
	LEAQ    (R12)(R11*2), R14     // store cursor, keys 2/3 of the quad
	XORQ    R15, R15              // table index e

tableloop:
	// Bucket hash: h = Mix64(key ^ bs[e]); off = e*R + hi64(h*R).
	VPBROADCASTQ (R8)(R15*8), Y0  // bs
	VPXOR        Y0, Y8, Y1
	MIX64(Y1, Y2, Y3, Y4)
	VPSRLQ   $32, Y1, Y2
	VPMULUDQ Y11, Y2, Y2          // hhi·R
	VPMULUDQ Y11, Y1, Y3          // hlo·R
	VPSRLQ   $32, Y3, Y3
	VPADDQ   Y3, Y2, Y2
	VPSRLQ   $32, Y2, Y2          // bucket
	VPADDQ   Y7, Y2, Y2           // off = e*R + bucket

	// Sign hash: s = Mix64(key*ss[e] + bs[e]).
	VPBROADCASTQ (R9)(R15*8), Y1  // ss
	VPSRLQ       $32, Y1, Y3      // ss high halves
	VPMULUDQ     Y1, Y8, Y4       // klo·sslo
	VPSRLQ       $32, Y8, Y5
	VPMULUDQ     Y1, Y5, Y5       // khi·sslo
	VPMULUDQ     Y3, Y8, Y6       // klo·sshi
	VPADDQ       Y6, Y5, Y5
	VPSLLQ       $32, Y5, Y5
	VPADDQ       Y5, Y4, Y4       // key*ss
	VPADDQ       Y0, Y4, Y4       // + bs
	MIX64(Y4, Y1, Y3, Y5)
	VPAND  Y9, Y4, Y4             // parity bit
	VPXOR  Y9, Y4, Y4             // 0 if odd (+1.0), 1 if even (−1.0)
	VPSLLQ $63, Y4, Y4
	VPOR   Y10, Y4, Y4            // ±1.0

	// Interleave {off, sign} per key and scatter the four 16-byte slots
	// (stride K*16 between consecutive keys' slot rows).
	VPUNPCKLQDQ  Y4, Y2, Y1       // [off0 s0 | off2 s2]
	VPUNPCKHQDQ  Y4, Y2, Y3       // [off1 s1 | off3 s3]
	VMOVDQU      X1, (R13)
	VMOVDQU      X3, (R13)(R11*1)
	VEXTRACTI128 $1, Y1, X1
	VEXTRACTI128 $1, Y3, X3
	VMOVDQU      X1, (R14)
	VMOVDQU      X3, (R14)(R11*1)

	VPADDQ Y11, Y7, Y7            // e*R += R
	ADDQ   $16, R13
	ADDQ   $16, R14
	INCQ   R15
	CMPQ   R15, R10
	JLT    tableloop

	ADDQ $32, SI
	LEAQ (R12)(R11*4), R12        // next quad's slot rows
	DECQ CX
	JNZ  quadloop

done:
	VZEROUPPER
	RET
