// Package hashing provides the hash-function substrates used by the count
// sketch family: per-table bucket hashes h_e : keys -> {0..R-1} and sign
// hashes s_e : keys -> {-1,+1}.
//
// Three families are implemented, all seedable and deterministic:
//
//   - Mix: splitmix64-style avalanche mixing (fast, excellent empirical
//     uniformity; the default).
//   - Poly: degree-k polynomial hashing over the Mersenne prime 2^61-1,
//     giving true k-wise independence (k=2 matches the pairwise
//     independence assumed by the Count Sketch analysis).
//   - Tabulation: 8x8-bit tabulation hashing (3-wise independent, strong
//     concentration properties).
//
// All families implement PairHasher, the interface the sketches consume.
package hashing

import "fmt"

// MaxTables bounds the table count K so hot paths can use fixed stack
// buffers (the count sketch re-exports it).
const MaxTables = 64

// Slot is one precomputed hash location of a key: Off is the row-major
// cell index e*Range + Bucket(e, key) and Sign is Sign(e, key). Filled
// slot arrays are the one-hash currency of the fused ingest path.
type Slot struct {
	Off  int
	Sign float64
}

// PairHasher supplies, for each of Tables() independent hash tables, a
// bucket hash into [0, Range()) and a +-1 sign hash.
type PairHasher interface {
	// Bucket returns the bucket index of key in table e, in [0, Range()).
	Bucket(e int, key uint64) int
	// Sign returns the sign hash of key in table e: exactly -1 or +1.
	Sign(e int, key uint64) float64
	// FillSlots fills slots[e] = {e*Range() + Bucket(e, key), Sign(e, key)}
	// for every table e in one call — the slot-fill loop of the fused
	// ingest path. The results are exactly those of the per-table
	// methods; fusing them devirtualizes the loop (one interface call
	// per key instead of 2K) and lets families that share work between
	// the two hashes (polynomial key reduction, tabulation byte walks)
	// compute it once.
	FillSlots(key uint64, slots *[MaxTables]Slot)
	// FillSlotsBatch fills slots[i*Tables()+e] with the slot FillSlots
	// would produce for keys[i] and table e, for every key — the group
	// hashing stage of the wave-pipelined ingest path. len(slots) must
	// be len(keys)*Tables(). The results are bit-identical to per-key
	// FillSlots calls; batching hoists the one remaining interface
	// dispatch and the family's table-pointer loads out of the per-key
	// loop.
	FillSlotsBatch(keys []uint64, slots []Slot)
	// Tables returns the number of independent tables K.
	Tables() int
	// Range returns the number of buckets per table R.
	Range() int
}

// Kind selects a hash family.
type Kind int

const (
	// KindMix selects the splitmix64 mixing family.
	KindMix Kind = iota
	// KindPoly selects pairwise-independent polynomial hashing.
	KindPoly
	// KindPoly4 selects 4-wise independent polynomial hashing.
	KindPoly4
	// KindTabulation selects tabulation hashing.
	KindTabulation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindMix:
		return "mix"
	case KindPoly:
		return "poly2"
	case KindPoly4:
		return "poly4"
	case KindTabulation:
		return "tabulation"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New constructs a PairHasher of the given kind with tables tables of
// rng buckets each, seeded deterministically from seed.
func New(kind Kind, tables, rng int, seed uint64) (PairHasher, error) {
	if tables <= 0 {
		return nil, fmt.Errorf("hashing: tables must be positive, got %d", tables)
	}
	if rng <= 0 {
		return nil, fmt.Errorf("hashing: range must be positive, got %d", rng)
	}
	switch kind {
	case KindMix:
		return newMixFamily(tables, rng, seed), nil
	case KindPoly:
		return newPolyFamily(tables, rng, seed, 2), nil
	case KindPoly4:
		return newPolyFamily(tables, rng, seed, 4), nil
	case KindTabulation:
		return newTabulationFamily(tables, rng, seed), nil
	default:
		return nil, fmt.Errorf("hashing: unknown kind %v", kind)
	}
}

// MustNew is New but panics on error; for use with compile-time-correct
// arguments in tests and examples.
func MustNew(kind Kind, tables, rng int, seed uint64) PairHasher {
	h, err := New(kind, tables, rng, seed)
	if err != nil {
		panic(err)
	}
	return h
}
