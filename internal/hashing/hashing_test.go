package hashing

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

var allKinds = []Kind{KindMix, KindPoly, KindPoly4, KindTabulation}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(KindMix, 0, 10, 1); err == nil {
		t.Error("expected error for zero tables")
	}
	if _, err := New(KindMix, 3, 0, 1); err == nil {
		t.Error("expected error for zero range")
	}
	if _, err := New(Kind(99), 3, 10, 1); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindMix: "mix", KindPoly: "poly2", KindPoly4: "poly4", KindTabulation: "tabulation"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind string = %q", Kind(42).String())
	}
}

func TestDeterminism(t *testing.T) {
	for _, kind := range allKinds {
		h1 := MustNew(kind, 4, 101, 7)
		h2 := MustNew(kind, 4, 101, 7)
		for key := uint64(0); key < 500; key++ {
			for e := 0; e < 4; e++ {
				if h1.Bucket(e, key) != h2.Bucket(e, key) {
					t.Fatalf("%v: bucket not deterministic at key %d table %d", kind, key, e)
				}
				if h1.Sign(e, key) != h2.Sign(e, key) {
					t.Fatalf("%v: sign not deterministic at key %d table %d", kind, key, e)
				}
			}
		}
	}
}

func TestSeedChangesHash(t *testing.T) {
	for _, kind := range allKinds {
		h1 := MustNew(kind, 1, 1<<20, 1)
		h2 := MustNew(kind, 1, 1<<20, 2)
		same := 0
		const n = 2000
		for key := uint64(0); key < n; key++ {
			if h1.Bucket(0, key) == h2.Bucket(0, key) {
				same++
			}
		}
		// With 2^20 buckets, matching more than a handful of 2000 keys
		// means the seed is being ignored.
		if same > 20 {
			t.Errorf("%v: %d/%d collisions across different seeds", kind, same, n)
		}
	}
}

func TestBucketInRange(t *testing.T) {
	for _, kind := range allKinds {
		for _, r := range []int{1, 2, 3, 17, 1024, 100003} {
			h := MustNew(kind, 3, r, 42)
			if h.Range() != r {
				t.Fatalf("%v: Range() = %d, want %d", kind, h.Range(), r)
			}
			for key := uint64(0); key < 1000; key++ {
				for e := 0; e < 3; e++ {
					b := h.Bucket(e, key)
					if b < 0 || b >= r {
						t.Fatalf("%v: bucket %d out of range [0,%d)", kind, b, r)
					}
				}
			}
		}
	}
}

func TestSignIsPlusMinusOne(t *testing.T) {
	for _, kind := range allKinds {
		h := MustNew(kind, 3, 64, 9)
		for key := uint64(0); key < 2000; key++ {
			for e := 0; e < 3; e++ {
				s := h.Sign(e, key)
				if s != 1 && s != -1 {
					t.Fatalf("%v: sign = %v, want ±1", kind, s)
				}
			}
		}
	}
}

// TestBucketUniformity runs a chi-square goodness-of-fit test against the
// uniform distribution. The 99.9% critical value for chi-square with
// r-1 = 63 degrees of freedom is ~103.4; allow generous slack.
func TestBucketUniformity(t *testing.T) {
	const r = 64
	const n = 64000
	for _, kind := range allKinds {
		h := MustNew(kind, 2, r, 12345)
		for e := 0; e < 2; e++ {
			counts := make([]int, r)
			for key := uint64(0); key < n; key++ {
				counts[h.Bucket(e, key)]++
			}
			expected := float64(n) / r
			chi2 := 0.0
			for _, c := range counts {
				d := float64(c) - expected
				chi2 += d * d / expected
			}
			if chi2 > 130 {
				t.Errorf("%v table %d: chi-square %.1f too large for uniformity", kind, e, chi2)
			}
		}
	}
}

func TestSignBalance(t *testing.T) {
	const n = 40000
	for _, kind := range allKinds {
		h := MustNew(kind, 2, 64, 99)
		for e := 0; e < 2; e++ {
			sum := 0.0
			for key := uint64(0); key < n; key++ {
				sum += h.Sign(e, key)
			}
			// Mean of n ±1 variables should be within ~4/sqrt(n).
			if math.Abs(sum/n) > 4/math.Sqrt(n) {
				t.Errorf("%v table %d: sign bias %.4f", kind, e, sum/n)
			}
		}
	}
}

// TestTableIndependence checks that bucket assignments in different tables
// are (empirically) uncorrelated: the collision rate of (Bucket(0,k),
// Bucket(1,k)) pairs should match r^-1 for each coordinate independently.
func TestTableIndependence(t *testing.T) {
	const r = 32
	const n = 32000
	for _, kind := range allKinds {
		h := MustNew(kind, 2, r, 5)
		joint := make([]int, r*r)
		for key := uint64(0); key < n; key++ {
			joint[h.Bucket(0, key)*r+h.Bucket(1, key)]++
		}
		expected := float64(n) / (r * r)
		chi2 := 0.0
		for _, c := range joint {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// df = r*r-1 = 1023; 99.99% critical value ≈ 1180.
		if chi2 > 1250 {
			t.Errorf("%v: joint chi-square %.1f suggests dependent tables", kind, chi2)
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip close to half the output bits.
	const trials = 2000
	sm := NewSplitMix64(77)
	totalFlips := 0
	for i := 0; i < trials; i++ {
		x := sm.Next()
		bit := uint(sm.Next() % 64)
		diff := Mix64(x) ^ Mix64(x^(1<<bit))
		totalFlips += popcount(diff)
	}
	avg := float64(totalFlips) / trials
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average %.2f bits, want near 32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a contiguous range.
	seen := make(map[uint64]uint64, 100000)
	for x := uint64(0); x < 100000; x++ {
		h := Mix64(x)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d", prev, x)
		}
		seen[h] = x
	}
}

func TestMulMod61AgainstBigInt(t *testing.T) {
	p := new(big.Int).SetUint64(mersenne61)
	sm := NewSplitMix64(31)
	for i := 0; i < 5000; i++ {
		a := sm.Next() % mersenne61
		b := sm.Next() % mersenne61
		got := mulMod61(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Fatalf("mulMod61(%d,%d) = %d, want %d", a, b, got, want.Uint64())
		}
	}
}

func TestMulMod61Properties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	// Commutativity.
	if err := quick.Check(func(a, b uint64) bool {
		a %= mersenne61
		b %= mersenne61
		return mulMod61(a, b) == mulMod61(b, a)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Identity.
	if err := quick.Check(func(a uint64) bool {
		a %= mersenne61
		return mulMod61(a, 1) == a
	}, cfg); err != nil {
		t.Error(err)
	}
	// Result in range.
	if err := quick.Check(func(a, b uint64) bool {
		return mulMod61(a%mersenne61, b%mersenne61) < mersenne61
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestAddMod61(t *testing.T) {
	if got := addMod61(mersenne61-1, 1); got != 0 {
		t.Errorf("addMod61(p-1,1) = %d, want 0", got)
	}
	if got := addMod61(5, 7); got != 12 {
		t.Errorf("addMod61(5,7) = %d, want 12", got)
	}
}

func TestPolyEvalKnown(t *testing.T) {
	// f(x) = 3 + 2x + x^2 at x=5 is 38.
	coef := []uint64{3, 2, 1}
	if got := polyEval(coef, 5); got != 38 {
		t.Errorf("polyEval = %d, want 38", got)
	}
}

func TestFastRangeBounds(t *testing.T) {
	if err := quick.Check(func(h uint64) bool {
		return fastRange(h, 17) < 17
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	if fastRange(0, 100) != 0 {
		t.Error("fastRange(0, n) should be 0")
	}
	if fastRange(^uint64(0), 100) != 99 {
		t.Error("fastRange(max, 100) should be 99")
	}
}

func TestSplitMix64Sequence(t *testing.T) {
	// Known-answer: first outputs for seed 0 from the reference splitmix64.
	sm := NewSplitMix64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x6c45d188009454f}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestReduceKeyInField(t *testing.T) {
	if err := quick.Check(func(k uint64) bool {
		return reduceKey(k) < mersenne61
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBucketMix(b *testing.B)        { benchBucket(b, KindMix) }
func BenchmarkBucketPoly2(b *testing.B)      { benchBucket(b, KindPoly) }
func BenchmarkBucketPoly4(b *testing.B)      { benchBucket(b, KindPoly4) }
func BenchmarkBucketTabulation(b *testing.B) { benchBucket(b, KindTabulation) }

func benchBucket(b *testing.B, kind Kind) {
	h := MustNew(kind, 5, 1<<20, 42)
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += h.Bucket(i%5, uint64(i))
	}
	_ = sink
}
