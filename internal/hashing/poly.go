package hashing

import "math/bits"

// mersenne61 is the Mersenne prime 2^61 - 1, the field over which the
// polynomial hash family operates. Arithmetic mod a Mersenne prime only
// needs shifts and adds, which keeps k-wise independent hashing fast.
const mersenne61 = (1 << 61) - 1

func mul64(a, b uint64) (hi, lo uint64) { return bits.Mul64(a, b) }

// mulMod61 returns a*b mod 2^61-1 for a, b < 2^61.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo; reduce using 2^61 ≡ 1.
	res := (lo & mersenne61) + (lo >> 61) + (hi << 3 & mersenne61) + (hi >> 58)
	res = (res & mersenne61) + (res >> 61)
	if res >= mersenne61 {
		res -= mersenne61
	}
	return res
}

// addMod61 returns a+b mod 2^61-1 for a, b < 2^61-1.
func addMod61(a, b uint64) uint64 {
	s := a + b
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// polyEval evaluates the polynomial with coefficients coef (degree
// len(coef)-1, constant term first) at x, all mod 2^61-1.
func polyEval(coef []uint64, x uint64) uint64 {
	// Horner's rule, highest coefficient first.
	acc := coef[len(coef)-1]
	for i := len(coef) - 2; i >= 0; i-- {
		acc = addMod61(mulMod61(acc, x), coef[i])
	}
	return acc
}

// polyFamily provides k-wise independent bucket and sign hashes per table
// using independent random polynomials of degree k-1 over GF(2^61-1).
type polyFamily struct {
	bucketCoef [][]uint64 // per table
	signCoef   [][]uint64
	tables     int
	rng        uint64
}

func newPolyFamily(tables, rng int, seed uint64, k int) *polyFamily {
	sm := NewSplitMix64(seed)
	draw := func() uint64 {
		for {
			v := sm.Next() & mersenne61
			if v < mersenne61 {
				return v
			}
		}
	}
	f := &polyFamily{
		bucketCoef: make([][]uint64, tables),
		signCoef:   make([][]uint64, tables),
		tables:     tables,
		rng:        uint64(rng),
	}
	for e := 0; e < tables; e++ {
		bc := make([]uint64, k)
		sc := make([]uint64, k)
		for j := 0; j < k; j++ {
			bc[j] = draw()
			sc[j] = draw()
		}
		// Leading coefficients nonzero keeps the polynomial degree exact.
		if bc[k-1] == 0 {
			bc[k-1] = 1
		}
		if sc[k-1] == 0 {
			sc[k-1] = 1
		}
		f.bucketCoef[e] = bc
		f.signCoef[e] = sc
	}
	return f
}

func (f *polyFamily) Tables() int { return f.tables }
func (f *polyFamily) Range() int  { return int(f.rng) }

// reduceKey folds an arbitrary uint64 key into the field. Keys >= 2^61-1
// are first mixed so distinct keys stay distinguishable with overwhelming
// probability.
func reduceKey(key uint64) uint64 {
	v := key & mersenne61
	if key >= mersenne61 {
		v = Mix64(key) & mersenne61
	}
	if v >= mersenne61 {
		v -= mersenne61
	}
	return v
}

func (f *polyFamily) Bucket(e int, key uint64) int {
	h := polyEval(f.bucketCoef[e], reduceKey(key))
	return int(fastRange(h<<3, f.rng)) // shift to use full 64-bit width
}

func (f *polyFamily) Sign(e int, key uint64) float64 {
	h := polyEval(f.signCoef[e], reduceKey(key))
	if h&1 == 1 {
		return 1
	}
	return -1
}

// FillSlotsBatch performs the field reduction once per key and hoists
// the coefficient-slice headers out of the per-key loop; each key's
// slots are filled exactly as FillSlots fills them.
func (f *polyFamily) FillSlotsBatch(keys []uint64, slots []Slot) {
	k := f.tables
	if len(slots) != len(keys)*k {
		panic("hashing: FillSlotsBatch slot buffer has wrong length")
	}
	r := int(f.rng)
	bcoef, scoef := f.bucketCoef, f.signCoef
	for i, key := range keys {
		x := reduceKey(key)
		out := slots[i*k : i*k+k]
		off := 0
		for e := 0; e < k; e++ {
			b := int(fastRange(polyEval(bcoef[e], x)<<3, f.rng))
			s := float64(-1)
			if polyEval(scoef[e], x)&1 == 1 {
				s = 1
			}
			out[e] = Slot{Off: off + b, Sign: s}
			off += r
		}
	}
}

// FillSlots shares the field reduction of the key across all 2K
// polynomial evaluations.
func (f *polyFamily) FillSlots(key uint64, slots *[MaxTables]Slot) {
	x := reduceKey(key)
	r := int(f.rng)
	off := 0
	for e := 0; e < f.tables; e++ {
		b := int(fastRange(polyEval(f.bucketCoef[e], x)<<3, f.rng))
		s := float64(-1)
		if polyEval(f.signCoef[e], x)&1 == 1 {
			s = 1
		}
		slots[e] = Slot{Off: off + b, Sign: s}
		off += r
	}
}
