package hashing

// Mix64 applies a splitmix64-style finalizer to x. It is a bijection on
// uint64 with strong avalanche behaviour: flipping any input bit flips
// each output bit with probability close to 1/2.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SplitMix64 is a tiny deterministic PRNG used to derive seeds. The zero
// value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next pseudo-random value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mixFamily hashes by mixing the key with a per-table random seed. The
// bucket uses the high bits via fixed-point multiplication (Lemire's
// fast-range) and the sign uses an independent second mix.
type mixFamily struct {
	bucketSeeds []uint64
	signSeeds   []uint64
	tables      int
	rng         uint64
}

func newMixFamily(tables, rng int, seed uint64) *mixFamily {
	sm := NewSplitMix64(seed)
	f := &mixFamily{
		bucketSeeds: make([]uint64, tables),
		signSeeds:   make([]uint64, tables),
		tables:      tables,
		rng:         uint64(rng),
	}
	for e := 0; e < tables; e++ {
		f.bucketSeeds[e] = sm.Next()
		f.signSeeds[e] = sm.Next() | 1 // odd, so multiplication is a bijection
	}
	return f
}

func (f *mixFamily) Tables() int { return f.tables }
func (f *mixFamily) Range() int  { return int(f.rng) }

func (f *mixFamily) Bucket(e int, key uint64) int {
	h := Mix64(key ^ f.bucketSeeds[e])
	return int(fastRange(h, f.rng))
}

func (f *mixFamily) Sign(e int, key uint64) float64 {
	h := Mix64(key*f.signSeeds[e] + f.bucketSeeds[e])
	if h&1 == 1 {
		return 1
	}
	return -1
}

func (f *mixFamily) FillSlots(key uint64, slots *[MaxTables]Slot) {
	r := int(f.rng)
	off := 0
	for e := 0; e < f.tables; e++ {
		bs := f.bucketSeeds[e]
		b := int(fastRange(Mix64(key^bs), f.rng))
		s := float64(-1)
		if Mix64(key*f.signSeeds[e]+bs)&1 == 1 {
			s = 1
		}
		slots[e] = Slot{Off: off + b, Sign: s}
		off += r
	}
}

// FillSlotsBatch hoists the seed-slice loads out of the per-key loop;
// each key's slots are filled exactly as FillSlots fills them. The
// inner loop dispatches to an architecture kernel (AVX2 on amd64 when
// the CPU has it; see slotfill_amd64.s) that is bit-identical to the
// portable reference mixFillSlotsBatchGo.
func (f *mixFamily) FillSlotsBatch(keys []uint64, slots []Slot) {
	k := f.tables
	if len(slots) != len(keys)*k {
		panic("hashing: FillSlotsBatch slot buffer has wrong length")
	}
	mixFillSlotsBatch(keys, slots, f.bucketSeeds, f.signSeeds, f.rng)
}

// mixFillSlotsBatchGo is the portable reference kernel of the mix
// family's batch slot fill: for every keys[i] and table e it stores
// slots[i*K+e] = {e*R + fastRange(Mix64(key^bs[e]), R),
// sign(Mix64(key*ss[e]+bs[e]))}. The AVX2 kernel must match it bit for
// bit (the simd differential tests pin this); K = len(bseeds) =
// len(sseeds) ≥ 1 and len(slots) = len(keys)·K are the caller's
// invariants.
func mixFillSlotsBatchGo(keys []uint64, slots []Slot, bseeds, sseeds []uint64, rng uint64) {
	k := len(bseeds)
	r := int(rng)
	for i, key := range keys {
		out := slots[i*k : i*k+k]
		off := 0
		for e := 0; e < k; e++ {
			bs := bseeds[e]
			b := int(fastRange(Mix64(key^bs), rng))
			s := float64(-1)
			if Mix64(key*sseeds[e]+bs)&1 == 1 {
				s = 1
			}
			out[e] = Slot{Off: off + b, Sign: s}
			off += r
		}
	}
}

// fastRange maps a uniform 64-bit hash onto [0, n) without modulo bias
// beyond the negligible 2^-64 rounding, using the high 64 bits of the
// 128-bit product (Lemire 2016).
func fastRange(h, n uint64) uint64 {
	hi, _ := mul64(h, n)
	return hi
}
