package hashing

// CPUFeatures reports the instruction-set extensions the slot-fill
// kernels detected at startup, as lowercase tags ("avx2", "bmi2").
// Empty on architectures or builds (purego) without assembly kernels —
// the benchmark reports record it next to the CPU model so BENCH file
// numbers carry the code path that produced them.
func CPUFeatures() []string {
	var fs []string
	if cpuAVX2 {
		fs = append(fs, "avx2")
	}
	if cpuBMI2 {
		fs = append(fs, "bmi2")
	}
	return fs
}
