//go:build !amd64 || purego

package hashing

// No assembly kernels on this build (non-amd64, or the purego tag): the
// portable reference is the only implementation and no CPU features are
// claimed.
var cpuAVX2, cpuBMI2 = false, false

func mixFillSlotsBatch(keys []uint64, slots []Slot, bseeds, sseeds []uint64, rng uint64) {
	mixFillSlotsBatchGo(keys, slots, bseeds, sseeds, rng)
}
