package hashing

import "testing"

// TestFillSlotsBatchMatchesFillSlots pins the group-hashing stage of
// the wave pipeline: FillSlotsBatch must produce bit-identical slots to
// per-key FillSlots for every family.
func TestFillSlotsBatchMatchesFillSlots(t *testing.T) {
	const tables, rng = 7, 1 << 10
	kinds := []Kind{KindMix, KindPoly, KindPoly4, KindTabulation}
	sm := NewSplitMix64(99)
	keys := make([]uint64, 129) // deliberately not a multiple of anything
	for i := range keys {
		switch i % 3 {
		case 0:
			keys[i] = sm.Next()
		case 1:
			keys[i] = uint64(i) // small structured keys
		default:
			keys[i] = mersenne61 + uint64(i) // above the poly field
		}
	}
	for _, kind := range kinds {
		h := MustNew(kind, tables, rng, 42)
		batch := make([]Slot, len(keys)*tables)
		h.FillSlotsBatch(keys, batch)
		var one [MaxTables]Slot
		for i, key := range keys {
			h.FillSlots(key, &one)
			for e := 0; e < tables; e++ {
				got := batch[i*tables+e]
				if got != one[e] {
					t.Fatalf("%v: key %d table %d: batch slot %+v != scalar %+v", kind, key, e, got, one[e])
				}
			}
		}
	}
}

// TestFillSlotsBatchLengthGuard pins the misuse panic: a slot buffer of
// the wrong length is a programmer error, not silent corruption.
func TestFillSlotsBatchLengthGuard(t *testing.T) {
	h := MustNew(KindMix, 3, 64, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short slot buffer")
		}
	}()
	h.FillSlotsBatch(make([]uint64, 4), make([]Slot, 11))
}
