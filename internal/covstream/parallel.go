package covstream

import (
	"fmt"
	"sync"

	"repro/internal/countsketch"
	"repro/internal/pairs"
	"repro/internal/stream"
)

// ParallelSecondMoment ingests the samples into a vanilla Count Sketch
// using `workers` goroutines and returns the merged sketch scaled as a
// mean estimator (estimates are Σ ya·yb / T for every pair).
//
// Correctness rests on the sketch's linearity: each worker owns a table
// shard with identical hash functions, and the sum of the shards equals
// serial ingestion regardless of sample order. Only the vanilla engine
// parallelizes this way — ASCS's gate reads the evolving global sketch,
// which is inherently sequential (§5's sampling is an online decision).
func ParallelSecondMoment(samples []stream.Sample, dim int, cfg countsketch.Config, workers int) (*countsketch.Sketch, error) {
	if dim < 2 {
		return nil, fmt.Errorf("covstream: dim must be ≥ 2")
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("covstream: no samples")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(samples) {
		workers = len(samples)
	}
	master, err := countsketch.New(cfg)
	if err != nil {
		return nil, err
	}
	shards := master.Split(workers)
	invT := 1 / float64(len(samples))

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sk := shards[w]
			for si := w; si < len(samples); si += workers {
				s := samples[si]
				if err := s.Validate(dim); err != nil {
					errs[w] = err
					return
				}
				for i := 0; i+1 < len(s.Idx); i++ {
					rowBase := pairs.RowBase(s.Idx[i], dim)
					ya := s.Val[i]
					// ya·yb·invT in that order: bit-identical to the
					// serial path (offer ya·yb, engine scales by 1/T).
					for j := i + 1; j < len(s.Idx); j++ {
						sk.Add(uint64(rowBase+int64(s.Idx[j])), ya*s.Val[j]*invT)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, sh := range shards {
		if err := master.Merge(sh); err != nil {
			return nil, err
		}
	}
	return master, nil
}
