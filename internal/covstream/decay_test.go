package covstream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// decayStream builds a deterministic sparse stream with a few planted
// heavy pairs.
func decayStream(dim, n int, seed int64) []stream.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stream.Sample, n)
	for i := range out {
		row := make([]float64, dim)
		// Planted signal: features 0 and 1 co-occur strongly.
		if rng.Float64() < 0.8 {
			v := 1 + rng.Float64()
			row[0], row[1] = v, v*0.9
		}
		for j := 2; j < dim; j++ {
			if rng.Float64() < 0.3 {
				row[j] = rng.NormFloat64() * 0.2
			}
		}
		out[i] = stream.FromDense(row)
	}
	return out
}

// TestDecayedLambda1DifferentialAllEngines is the acceptance pin: for
// each of the four engines, a λ=1 decay-mode estimator is bit-identical
// (estimates over every pair key, and Top/TopMagnitude output) to the
// fixed-horizon estimator over the same stream — while also accepting
// samples past T, which the fixed path must reject.
func TestDecayedLambda1DifferentialAllEngines(t *testing.T) {
	const dim, T = 24, 200
	samples := decayStream(dim, T+40, 97)
	skCfg := countsketch.Config{Tables: 5, Range: 2048, Seed: 12}
	l1Cfg := countsketch.Config{Tables: 3, Range: 256, Seed: 18}
	schedule := core.Hyperparams{T0: 30, Theta: 0.05, Tau0: 1e-4, T: T}

	build := func(name string, decayed bool) sketchapi.Ingestor {
		switch name {
		case "CS":
			if decayed {
				e, err := countsketch.NewMeanSketchDecayed(skCfg, T, 1)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			e, err := countsketch.NewMeanSketch(skCfg, T)
			if err != nil {
				t.Fatal(err)
			}
			return e
		case "ASCS":
			if decayed {
				e, err := core.NewEngineDecayed(skCfg, schedule, true, 1)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			e, err := core.NewEngine(skCfg, schedule, true)
			if err != nil {
				t.Fatal(err)
			}
			return e
		case "ASketch":
			if decayed {
				e, err := baselines.NewASketchDecayed(skCfg, T, 8, 1)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			e, err := baselines.NewASketch(skCfg, T, 8)
			if err != nil {
				t.Fatal(err)
			}
			return e
		case "ColdFilter":
			if decayed {
				e, err := baselines.NewColdFilterDecayed(l1Cfg, skCfg, T, 0.01, 1)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			e, err := baselines.NewColdFilter(l1Cfg, skCfg, T, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		t.Fatalf("unknown engine %q", name)
		return nil
	}

	for _, name := range []string{"CS", "ASCS", "ASketch", "ColdFilter"} {
		fixed, err := New(Config{
			Dim: dim, T: T, Engine: build(name, false),
			Mode: SecondMoment, TrackCandidates: 1 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := New(Config{
			Dim: dim, T: T, Engine: build(name, true),
			Mode: SecondMoment, TrackCandidates: 1 << 10, Decay: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples[:T] {
			if err := fixed.Observe(s); err != nil {
				t.Fatal(err)
			}
			if err := dec.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
		p := pairs.Count(dim)
		for key := uint64(0); key < uint64(p); key++ {
			fe := fixed.Engine().Estimate(key)
			de := dec.Engine().Estimate(key)
			if math.Float64bits(fe) != math.Float64bits(de) {
				t.Fatalf("%s key %d: fixed %v vs λ=1 decayed %v", name, key, fe, de)
			}
		}
		for _, magnitude := range []bool{false, true} {
			var ft, dt []PairEstimate
			var err error
			if magnitude {
				ft, err = fixed.TopMagnitude(10)
			} else {
				ft, err = fixed.Top(10)
			}
			if err != nil {
				t.Fatal(err)
			}
			if magnitude {
				dt, err = dec.TopMagnitude(10)
			} else {
				dt, err = dec.Top(10)
			}
			if err != nil {
				t.Fatal(err)
			}
			for i := range ft {
				if ft[i] != dt[i] {
					t.Fatalf("%s magnitude=%v rank %d: %+v vs %+v", name, magnitude, i, ft[i], dt[i])
				}
			}
		}
		// The fixed path is exhausted at T; the decayed path keeps going.
		if err := fixed.Observe(samples[T]); err == nil {
			t.Fatalf("%s: fixed estimator accepted a sample past T", name)
		}
		for _, s := range samples[T:] {
			if err := dec.Observe(s); err != nil {
				t.Fatalf("%s: decayed estimator rejected sample past T: %v", name, err)
			}
		}
		if got := dec.Steps(); got != len(samples) {
			t.Fatalf("%s: decayed estimator at step %d, want %d", name, got, len(samples))
		}
	}
}

// TestDecayConfigValidation pins the driver/engine decay-mode agreement
// checks.
func TestDecayConfigValidation(t *testing.T) {
	skCfg := countsketch.Config{Tables: 3, Range: 64, Seed: 1}
	fixedEng, err := countsketch.NewMeanSketch(skCfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	decEng, err := countsketch.NewMeanSketchDecayed(skCfg, 100, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dim: 4, T: 100, Engine: fixedEng, Decay: 0.99}); err == nil {
		t.Fatal("decay config over a fixed engine must be rejected")
	}
	if _, err := New(Config{Dim: 4, T: 100, Engine: decEng}); err == nil {
		t.Fatal("fixed config over a decayed engine must be rejected")
	}
	if _, err := New(Config{Dim: 4, T: 100, Engine: decEng, Decay: 0.5}); err == nil {
		t.Fatal("mismatched λ must be rejected")
	}
	if _, err := New(Config{Dim: 4, T: 100, Engine: decEng, Decay: 0.99}); err != nil {
		t.Fatalf("matched decay config rejected: %v", err)
	}
}
