package covstream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
	"repro/internal/topk"
)

// WarmupResult carries the data-driven hyper-parameter inputs of §8.1: a
// vanilla count sketch is run over a prefix of the stream to obtain an
// approximate pair-mean vector μ̂, whose percentiles give the signal
// strength u (the (1−α) percentile) and the initial threshold τ(T0) (a
// low percentile for covariance mode), plus σ estimated as the root mean
// square of the increments (§7.2 relaxation 2).
//
// Percentiles are taken over the full p-dimensional μ̂ vector: pairs that
// never co-occurred in the warm-up have estimate zero (up to collision
// noise), so it suffices to census the estimates of the pairs actually
// offered and rank them against p — that is what makes the recipe work
// at Table 2 scale, where p is in the billions and signals occupy a
// ~1e-6 fraction. When even the distinct offered pairs exceed the census
// budget, a bottom-k (KMV) sampler keeps a *uniform* subsample of them
// and ranks are rescaled by the estimated distinct count, so the
// percentiles remain unbiased instead of silently dropping late keys.
type WarmupResult struct {
	// Seen holds the estimates of the censused distinct pairs, sorted
	// descending. It is the full seen set below the census cap, and a
	// uniform sample of it above.
	Seen []float64
	// P is the total number of pairs p = d(d−1)/2.
	P int64
	// DistinctSeen estimates how many distinct pairs were offered during
	// warm-up (exact below the census cap).
	DistinctSeen float64
	// Sigma is the estimated common standard deviation of the pair
	// variables X_i, including their implicit zeros.
	Sigma float64
	// SamplesUsed is the number of warm-up samples consumed.
	SamplesUsed int
}

// Percentile returns the q-percentile (q in [0,100]) of the full μ̂
// vector: ranks inside the (possibly sampled) seen census return its
// values, rescaled by the sampling fraction; the vast middle of
// never-offered pairs returns zero.
func (w WarmupResult) Percentile(q float64) float64 {
	if w.P <= 0 {
		return math.NaN()
	}
	rank := (1 - q/100) * float64(w.P-1) // 0 = largest of all p values
	if rank < 0 {
		rank = 0
	}
	nSample := len(w.Seen)
	if nSample == 0 {
		return 0
	}
	scale := 1.0
	if w.DistinctSeen > float64(nSample) {
		scale = w.DistinctSeen / float64(nSample)
	}
	nPosSample := sort.Search(nSample, func(i int) bool { return w.Seen[i] <= 0 })
	nPosAll := float64(nPosSample) * scale
	unseen := float64(w.P) - w.DistinctSeen
	if unseen < 0 {
		unseen = 0
	}
	switch {
	case rank < nPosAll:
		idx := int(rank / scale)
		if idx >= nPosSample {
			idx = nPosSample - 1
		}
		return w.Seen[idx]
	case rank < nPosAll+unseen:
		return 0 // the unseen mass sits between the positive and negative tails
	default:
		idx := nPosSample + int((rank-nPosAll-unseen)/scale)
		if idx >= nSample {
			idx = nSample - 1
		}
		return w.Seen[idx]
	}
}

// SignalStrength returns u = the (1−alpha) percentile of μ̂ (§8.1),
// i.e. approximately the ⌈α·p⌉-th largest warm-up estimate.
func (w WarmupResult) SignalStrength(alpha float64) float64 {
	return w.Percentile(100 * (1 - alpha))
}

// WarmupSize is the shared warm-up sizing rule (§8.1): a fraction of
// the stream with a floor of 4 samples, raised to 200 on long streams
// so sparse pairs can recur during the prefix. The batch Estimator,
// the sharded serving constructor, and the daemons all size their
// warm-up prefixes through this one rule.
func WarmupSize(fraction float64, samples int) int {
	n := int(fraction * float64(samples))
	if n < 4 {
		n = 4
	}
	if sparseFloor := 200; n < sparseFloor && samples/2 >= sparseFloor {
		n = sparseFloor
	}
	return n
}

// ASCSParams assembles the §8.1 data-driven solver inputs for an ASCS
// schedule over a stream of T samples sketched with K tables × R
// buckets: u is the (1−alpha) percentile of the warm-up census with a
// 0.75 safety margin (§7.2 wants a *lower bound* on the signal
// strength; the warm-up percentile is a noisy point estimate whose
// rank statistics skew high on sparse streams, and Figure 6 shows ASCS
// is robust to under-stating u — smaller u just means longer
// exploration and a gentler threshold), floored at 10·τ₀; σ comes from
// the census; the miss-probability budgets are the suggested defaults.
// Both the end-to-end Estimator and the sharded serving layer derive
// their schedules through this one recipe.
func (w WarmupResult) ASCSParams(alpha float64, T, K, R int) core.Params {
	const tau0 = 1e-4
	u := 0.75 * w.SignalStrength(alpha)
	if u < 10*tau0 {
		u = 10 * tau0
	}
	return core.Params{
		P: w.P, T: T, K: K, R: R,
		U: u, Sigma: w.Sigma, Alpha: alpha, Tau0: tau0, Gamma: 30,
	}.WithSuggestedDeltas()
}

// warmupProbe accumulates Σx² (for σ) and a distinct-key census (for the
// percentiles) while delegating to the warm-up sketch.
type warmupProbe struct {
	inner   sketchapi.Ingestor
	sumX2   float64
	n       int64
	sampler *topk.BottomK
}

func (s *warmupProbe) BeginStep(t int)             { s.inner.BeginStep(t) }
func (s *warmupProbe) Estimate(key uint64) float64 { return s.inner.Estimate(key) }
func (s *warmupProbe) Bytes() int                  { return s.inner.Bytes() }
func (s *warmupProbe) Name() string                { return s.inner.Name() }
func (s *warmupProbe) Offer(key uint64, x float64) {
	s.sumX2 += x * x
	s.n++
	s.sampler.Offer(key)
	s.inner.Offer(key, x)
}

// Warmup runs a vanilla CS over the first warmupN samples of src (§8.1:
// "we can spend some samples to explore the distribution of μ").
// maxSeen caps the census memory (default 5M keys); beyond it the census
// degrades gracefully to a uniform subsample.
func Warmup(src stream.Source, warmupN int, cfg countsketch.Config, mode Mode, maxSeen int, seed int64) (WarmupResult, error) {
	if warmupN < 1 {
		return WarmupResult{}, fmt.Errorf("covstream: warmupN must be ≥ 1")
	}
	if maxSeen < 1 {
		maxSeen = 5_000_000
	}
	dim := src.Dim()
	ms, err := countsketch.NewMeanSketch(cfg, warmupN)
	if err != nil {
		return WarmupResult{}, err
	}
	probe := &warmupProbe{inner: ms, sampler: topk.NewBottomK(maxSeen, uint64(seed)^0xB077)}
	est, err := New(Config{Dim: dim, T: warmupN, Engine: probe, Mode: mode})
	if err != nil {
		return WarmupResult{}, err
	}
	n, err := est.Run(stream.NewLimit(src, warmupN))
	if err != nil {
		return WarmupResult{}, err
	}
	if n == 0 {
		return WarmupResult{}, fmt.Errorf("covstream: warm-up stream was empty")
	}

	keys := probe.sampler.Keys()
	seen := make([]float64, 0, len(keys))
	for _, key := range keys {
		seen = append(seen, ms.Estimate(key))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(seen)))

	p := pairs.Count(dim)
	distinct := probe.sampler.DistinctEstimate()
	if distinct > float64(p) {
		distinct = float64(p)
	}
	// σ² ≈ mean of X² over all p·n pair-observations; offers cover only
	// the non-zero increments, the remainder contribute zeros.
	sigma := 0.0
	if probe.n > 0 {
		sigma = math.Sqrt(probe.sumX2 / (float64(p) * float64(n)))
	}
	if sigma == 0 {
		sigma = 1e-12 // degenerate all-zero prefix; keep downstream finite
	}
	return WarmupResult{Seen: seen, P: p, DistinctSeen: distinct, Sigma: sigma, SamplesUsed: n}, nil
}
