package covstream

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// pairOnlyShim embeds the OfferEstimator interface, so it exposes the
// fused pair path but not OfferRow/OfferRows — the estimator must fall
// back to the buffered pair loop.
type pairOnlyShim struct{ sketchapi.OfferEstimator }

// pairRecorder additionally records the length of every OfferPairs
// flush, to pin flush boundaries against row boundaries.
type pairRecorder struct {
	sketchapi.OfferEstimator
	calls []int
}

func (r *pairRecorder) OfferPairs(keys []uint64, xs, ests []float64) {
	r.calls = append(r.calls, len(keys))
	r.OfferEstimator.OfferPairs(keys, xs, ests)
}

func denseSamples(seed int64, n, dim int, density float64) []stream.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stream.Sample, n)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			if rng.Float64() < density {
				row[j] = rng.NormFloat64()
			}
		}
		out[i] = stream.FromDense(row)
	}
	return out
}

// TestRowPathMatchesPairPath streams identical samples through a
// row-path estimator and a twin whose engine is shimmed down to the
// pair path, for every engine kind, both modes, tracked and exhaustive
// retrieval — serialized engines and Top rankings must be bit-identical.
func TestRowPathMatchesPairPath(t *testing.T) {
	const dim, T = 40, 120
	samples := denseSamples(99, T, dim, 0.5)
	modes := []struct {
		mode   Mode
		adjust bool
	}{{SecondMoment, false}, {Centered, false}, {Centered, true}}
	for _, m := range modes {
		for _, track := range []int{0, 64} {
			for name, pair := range fusedEngines(t, T) {
				row, err := New(Config{Dim: dim, T: T, Engine: pair[0], Mode: m.mode, Adjustment: m.adjust, TrackCandidates: track})
				if err != nil {
					t.Fatal(err)
				}
				if row.row == nil {
					t.Fatalf("%s: engine does not expose the row path", name)
				}
				fe, ok := pair[1].(sketchapi.OfferEstimator)
				if !ok {
					t.Fatalf("%s: engine lacks OfferEstimator", name)
				}
				pairEst, err := New(Config{Dim: dim, T: T, Engine: pairOnlyShim{fe}, Mode: m.mode, Adjustment: m.adjust, TrackCandidates: track})
				if err != nil {
					t.Fatal(err)
				}
				if pairEst.row != nil {
					t.Fatal("shim leaked the row path; differential test is vacuous")
				}
				for _, s := range samples {
					if err := row.Observe(s); err != nil {
						t.Fatal(err)
					}
					if err := pairEst.Observe(s); err != nil {
						t.Fatal(err)
					}
				}
				rt, err := row.TopMagnitude(10)
				if err != nil {
					t.Fatal(err)
				}
				pt, err := pairEst.TopMagnitude(10)
				if err != nil {
					t.Fatal(err)
				}
				if len(rt) != len(pt) {
					t.Fatalf("%s mode=%v track=%d: top lengths %d vs %d", name, m.mode, track, len(rt), len(pt))
				}
				for i := range rt {
					if rt[i] != pt[i] {
						t.Fatalf("%s mode=%v adjust=%v track=%d rank %d: row %+v, pair %+v",
							name, m.mode, m.adjust, track, i, rt[i], pt[i])
					}
				}
				var rb, pb bytes.Buffer
				if _, err := pair[0].(sketchapi.Snapshotter).WriteTo(&rb); err != nil {
					t.Fatal(err)
				}
				if _, err := pair[1].(sketchapi.Snapshotter).WriteTo(&pb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rb.Bytes(), pb.Bytes()) {
					t.Fatalf("%s mode=%v adjust=%v track=%d: serialized engines diverged", name, m.mode, m.adjust, track)
				}
			}
		}
	}
}

// TestFlushPairsRowAligned pins the flush-boundary fix: the buffered
// fallback must flush only at row boundaries, never mid-row. Samples
// are dense enough that the pair buffer crosses pairBatch in the middle
// of a row, so the pre-fix behavior (flush at exactly pairBatch) and
// the fixed behavior (flush at the first row end at or past pairBatch)
// produce different call sizes.
func TestFlushPairsRowAligned(t *testing.T) {
	const dim, T = 200, 3
	samples := denseSamples(7, T, dim, 1)
	pair := fusedEngines(t, T)["CS"]
	rec := &pairRecorder{OfferEstimator: pair[0].(sketchapi.OfferEstimator)}
	est, err := New(Config{Dim: dim, T: T, Engine: rec, Mode: SecondMoment})
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	sawOvershoot := false
	for _, s := range samples {
		m := len(s.Idx)
		buf := 0
		for i := 0; i+1 < m; i++ {
			buf += m - 1 - i
			if buf >= pairBatch {
				if buf > pairBatch {
					sawOvershoot = true
				}
				want = append(want, buf)
				buf = 0
			}
		}
		if buf > 0 {
			want = append(want, buf)
		}
		if err := est.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	if !sawOvershoot {
		t.Fatal("test samples never overshoot pairBatch at a row boundary; regression test is vacuous")
	}
	if len(rec.calls) != len(want) {
		t.Fatalf("flush count %d, want %d (calls %v, want %v)", len(rec.calls), len(want), rec.calls, want)
	}
	for i := range want {
		if rec.calls[i] != want[i] {
			t.Fatalf("flush %d has %d pairs, want row-aligned %d", i, rec.calls[i], want[i])
		}
	}
}

// TestRowPathDenseFallback drives a sample dense enough that the
// tracked row path would need more than maxRowEsts estimate slots, so
// the estimator must take the buffered fallback — and still match a
// pair-shimmed twin bit for bit (including the estimate scratch growing
// past pairBatch for row-aligned batches).
func TestRowPathDenseFallback(t *testing.T) {
	const dim, T = 1500, 2
	if p := dim * (dim - 1) / 2; p <= maxRowEsts {
		t.Fatalf("dim %d gives only %d pairs; fallback not exercised", dim, p)
	}
	samples := denseSamples(11, T, dim, 1)
	pair := fusedEngines(t, T)["ASCS"]
	row, err := New(Config{Dim: dim, T: T, Engine: pair[0], Mode: SecondMoment, TrackCandidates: 16})
	if err != nil {
		t.Fatal(err)
	}
	fe := pair[1].(sketchapi.OfferEstimator)
	pairEst, err := New(Config{Dim: dim, T: T, Engine: pairOnlyShim{fe}, Mode: SecondMoment, TrackCandidates: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := row.Observe(s); err != nil {
			t.Fatal(err)
		}
		if err := pairEst.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	var rb, pb bytes.Buffer
	if _, err := pair[0].(sketchapi.Snapshotter).WriteTo(&rb); err != nil {
		t.Fatal(err)
	}
	if _, err := pair[1].(sketchapi.Snapshotter).WriteTo(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb.Bytes(), pb.Bytes()) {
		t.Fatal("dense fallback diverged from pair path")
	}
}
