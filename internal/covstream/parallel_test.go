package covstream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/pairs"
	"repro/internal/stream"
)

func parallelFixture(n, d int, seed int64) []stream.Sample {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]stream.Sample, n)
	for i := range samples {
		row := make([]float64, d)
		for j := range row {
			if rng.Float64() < 0.4 {
				row[j] = rng.NormFloat64()
			}
		}
		samples[i] = stream.FromDense(row)
	}
	return samples
}

func TestParallelSecondMomentMatchesSerial(t *testing.T) {
	const d, n = 24, 300
	samples := parallelFixture(n, d, 5)
	cfg := countsketch.Config{Tables: 5, Range: 512, Seed: 7}

	// Serial reference through the estimator.
	ms, err := countsketch.NewMeanSketch(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(Config{Dim: d, T: n, Engine: ms, Mode: SecondMoment})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Run(stream.NewSliceSource(samples, d)); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3, 8} {
		par, err := ParallelSecondMoment(samples, d, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		p := pairs.Count(d)
		for idx := int64(0); idx < p; idx++ {
			a := ms.Estimate(uint64(idx))
			b := par.Estimate(uint64(idx))
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("workers=%d: pair %d estimate %v vs %v", workers, idx, a, b)
			}
		}
	}
}

func TestParallelSecondMomentErrors(t *testing.T) {
	cfg := countsketch.Config{Tables: 2, Range: 16, Seed: 1}
	if _, err := ParallelSecondMoment(nil, 5, cfg, 2); err == nil {
		t.Error("no samples should error")
	}
	if _, err := ParallelSecondMoment(parallelFixture(3, 4, 1), 1, cfg, 2); err == nil {
		t.Error("tiny dim should error")
	}
	if _, err := ParallelSecondMoment(parallelFixture(3, 4, 1), 4, countsketch.Config{}, 2); err == nil {
		t.Error("bad sketch config should error")
	}
	// Invalid sample surfaces from a worker.
	bad := []stream.Sample{{Idx: []int{9}, Val: []float64{1}}}
	if _, err := ParallelSecondMoment(bad, 4, cfg, 2); err == nil {
		t.Error("invalid sample should error")
	}
	// Workers clamped to sample count and to ≥ 1.
	if _, err := ParallelSecondMoment(parallelFixture(2, 4, 2), 4, cfg, 99); err != nil {
		t.Errorf("excess workers should clamp: %v", err)
	}
	if _, err := ParallelSecondMoment(parallelFixture(2, 4, 2), 4, cfg, 0); err != nil {
		t.Errorf("zero workers should clamp: %v", err)
	}
}

func BenchmarkParallelSecondMoment(b *testing.B) {
	const d, n = 64, 512
	samples := parallelFixture(n, d, 9)
	cfg := countsketch.Config{Tables: 5, Range: 1 << 12, Seed: 3}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "serial", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ParallelSecondMoment(samples, d, cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
