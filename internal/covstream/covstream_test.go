package covstream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/matrix"
	"repro/internal/pairs"
	"repro/internal/stream"
)

// bigCS returns a collision-free CS engine (huge R) for exactness tests.
func bigCS(t *testing.T, total int) *countsketch.MeanSketch {
	t.Helper()
	ms, err := countsketch.NewMeanSketch(countsketch.Config{Tables: 5, Range: 1 << 16, Seed: 5}, total)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestNewValidation(t *testing.T) {
	eng := bigCS(t, 10)
	bad := []Config{
		{Dim: 1, T: 10, Engine: eng},
		{Dim: 5, T: 0, Engine: eng},
		{Dim: 5, T: 10},
		{Dim: 5, T: 10, Engine: eng, Mode: Mode(9)},
		{Dim: 5, T: 10, Engine: eng, Mode: SecondMoment, Adjustment: true},
		{Dim: 5, T: 10, Engine: eng, Mode: Centered, MeanCutoff: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestModeString(t *testing.T) {
	if SecondMoment.String() != "second-moment" || Centered.String() != "centered" {
		t.Error("mode strings wrong")
	}
	if Mode(7).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestObserveRejectsBadSamples(t *testing.T) {
	e, err := New(Config{Dim: 4, T: 5, Engine: bigCS(t, 5), Mode: SecondMoment})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(stream.Sample{Idx: []int{9}, Val: []float64{1}}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := e.Observe(stream.Sample{Idx: []int{0}, Val: []float64{math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestObserveRejectsOverrun(t *testing.T) {
	e, _ := New(Config{Dim: 3, T: 2, Engine: bigCS(t, 2), Mode: SecondMoment})
	s := stream.Sample{Idx: []int{0, 1}, Val: []float64{1, 1}}
	if err := e.Observe(s); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(s); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(s); err == nil {
		t.Error("third sample should exceed T=2")
	}
	if e.Steps() != 2 {
		t.Errorf("Steps = %d", e.Steps())
	}
}

func TestSecondMomentMatchesExactEYaYb(t *testing.T) {
	// With a collision-free sketch, the estimate of pair (a,b) equals
	// (1/T)·Σ ya·yb exactly.
	const d, T = 8, 200
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			if rng.Float64() < 0.5 { // sparse
				rows[i][j] = rng.NormFloat64()
			}
		}
	}
	eng := bigCS(t, T)
	e, err := New(Config{Dim: d, T: T, Engine: eng, Mode: SecondMoment})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(stream.NewMatrixSource(rows)); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			want := 0.0
			for _, r := range rows {
				want += r[a] * r[b]
			}
			want /= T
			if got := e.EstimatePair(a, b); math.Abs(got-want) > 1e-12 {
				t.Fatalf("pair (%d,%d): %v vs %v", a, b, got, want)
			}
			// Argument order must not matter.
			if got := e.EstimatePair(b, a); math.Abs(got-want) > 1e-12 {
				t.Fatalf("pair (%d,%d) swapped: %v", b, a, got)
			}
		}
	}
}

func TestCenteredWithAdjustmentMatchesExactCovariance(t *testing.T) {
	// The §4 claim: with the adjustment term, the accumulated sum equals
	// Σ(ya−ȳa(T))(yb−ȳb(T)) exactly, i.e. T times the population
	// covariance of the observed rows.
	const d, T = 6, 150
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() + 0.5 // non-zero means matter here
		}
	}
	eng := bigCS(t, T)
	e, err := New(Config{Dim: d, T: T, Engine: eng, Mode: Centered, Adjustment: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(stream.NewMatrixSource(rows)); err != nil {
		t.Fatal(err)
	}
	cov, err := matrix.ExactCovariance(rows)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			// Population covariance (n denominator) vs sample (n-1).
			want := cov.At(a, b) * float64(T-1) / float64(T)
			if got := e.EstimatePair(a, b); math.Abs(got-want) > 1e-9 {
				t.Fatalf("pair (%d,%d): %v vs %v", a, b, got, want)
			}
		}
	}
}

func TestCenteredWithoutAdjustmentClose(t *testing.T) {
	// Without the adjustment the result is approximate but close once
	// t is large (§4: "the adjustment is very small and almost
	// negligible").
	const d, T = 5, 800
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() + 1
		}
	}
	eng := bigCS(t, T)
	e, _ := New(Config{Dim: d, T: T, Engine: eng, Mode: Centered})
	if _, err := e.Run(stream.NewMatrixSource(rows)); err != nil {
		t.Fatal(err)
	}
	cov, _ := matrix.ExactCovariance(rows)
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			want := cov.At(a, b) * float64(T-1) / float64(T)
			if got := e.EstimatePair(a, b); math.Abs(got-want) > 0.05 {
				t.Fatalf("pair (%d,%d): %v vs %v", a, b, got, want)
			}
		}
	}
}

func TestTopExhaustive(t *testing.T) {
	// Plant one strong pair; Top(1) must find it.
	const d, T = 10, 300
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		z := rng.NormFloat64()
		rows[i][2] = z
		rows[i][7] = 0.95*z + 0.31*rng.NormFloat64()
		for j := 0; j < d; j++ {
			if j != 2 && j != 7 {
				rows[i][j] = rng.NormFloat64()
			}
		}
	}
	eng := bigCS(t, T)
	e, _ := New(Config{Dim: d, T: T, Engine: eng, Mode: SecondMoment})
	if _, err := e.Run(stream.NewMatrixSource(rows)); err != nil {
		t.Fatal(err)
	}
	top, err := e.Top(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].A != 2 || top[0].B != 7 {
		t.Fatalf("Top = %+v", top)
	}
	if top[0].Key != pairs.Key(2, 7, d) {
		t.Error("key mismatch")
	}
	if _, err := e.Top(0); err == nil {
		t.Error("Top(0) should error")
	}
}

func TestTopWithTrackerMatchesExhaustive(t *testing.T) {
	const d, T = 40, 400
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		z := rng.NormFloat64()
		// Three strong pairs.
		rows[i][0] = z
		rows[i][1] = 0.9*z + 0.44*rng.NormFloat64()
		z2 := rng.NormFloat64()
		rows[i][10] = z2
		rows[i][11] = 0.85*z2 + 0.53*rng.NormFloat64()
		for j := 0; j < d; j++ {
			if rows[i][j] == 0 && j > 1 && (j < 10 || j > 11) {
				rows[i][j] = rng.NormFloat64()
			}
		}
	}
	run := func(trackCap int) []PairEstimate {
		eng := bigCS(t, T)
		e, _ := New(Config{Dim: d, T: T, Engine: eng, Mode: SecondMoment, TrackCandidates: trackCap})
		if _, err := e.Run(stream.NewMatrixSource(rows)); err != nil {
			t.Fatal(err)
		}
		top, err := e.Top(3)
		if err != nil {
			t.Fatal(err)
		}
		return top
	}
	exhaustive := run(0)
	tracked := run(200)
	if len(exhaustive) != 3 || len(tracked) != 3 {
		t.Fatalf("lengths %d/%d", len(exhaustive), len(tracked))
	}
	for i := range exhaustive {
		if exhaustive[i].Key != tracked[i].Key {
			t.Errorf("rank %d: exhaustive %v vs tracked %v", i, exhaustive[i], tracked[i])
		}
	}
}

func TestTopRefusesHugeExhaustive(t *testing.T) {
	eng := bigCS(t, 10)
	e, _ := New(Config{Dim: 100000, T: 10, Engine: eng, Mode: SecondMoment, MaxExhaustivePairs: 1000})
	if _, err := e.Top(5); err == nil {
		t.Error("expected exhaustive-limit error")
	}
	if _, err := e.RankedKeys(); err == nil {
		t.Error("RankedKeys should also refuse")
	}
}

func TestRankedKeysOrder(t *testing.T) {
	const d, T = 6, 100
	rng := rand.New(rand.NewSource(6))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	eng := bigCS(t, T)
	e, _ := New(Config{Dim: d, T: T, Engine: eng, Mode: SecondMoment})
	if _, err := e.Run(stream.NewMatrixSource(rows)); err != nil {
		t.Fatal(err)
	}
	keys, err := e.RankedKeys()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(keys)) != pairs.Count(d) {
		t.Fatalf("len = %d", len(keys))
	}
	prev := math.Inf(1)
	for _, k := range keys {
		v := eng.Estimate(k)
		if v > prev+1e-12 {
			t.Fatal("RankedKeys not descending")
		}
		prev = v
	}
}

func TestWarmupPercentiles(t *testing.T) {
	// A dataset with one dominant pair: the top percentile of warm-up
	// estimates must be near that pair's second moment.
	const d, T = 12, 400
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		z := rng.NormFloat64()
		rows[i][0] = z
		rows[i][1] = z
		rows[i][2] = z // features 0,1,2 identical: 3 signal pairs
		for j := 3; j < d; j++ {
			rows[i][j] = rng.NormFloat64() * 0.3
		}
	}
	w, err := Warmup(stream.NewMatrixSource(rows), 300,
		countsketch.Config{Tables: 5, Range: 1 << 14, Seed: 9}, SecondMoment, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.SamplesUsed != 300 {
		t.Errorf("SamplesUsed = %d", w.SamplesUsed)
	}
	// Pair (0,1) has E[YaYb] = 1; everything else ~ 0.
	top := w.Percentile(100)
	if top < 0.7 {
		t.Errorf("top percentile = %v, want near 1", top)
	}
	med := w.Percentile(50)
	if math.Abs(med) > 0.1 {
		t.Errorf("median = %v, want near 0", med)
	}
	// With 3 signal pairs among 66, choosing α just below 3/66 places the
	// (1−α) percentile inside the signal block (§8.1's recipe).
	if u := w.SignalStrength(2.0 / 66); u < 0.5 {
		t.Errorf("signal strength = %v", u)
	}
	if w.Sigma <= 0 {
		t.Errorf("sigma = %v", w.Sigma)
	}
}

func TestWarmupErrors(t *testing.T) {
	if _, err := Warmup(stream.NewMatrixSource(nil), 0, countsketch.Config{Tables: 5, Range: 8}, SecondMoment, 0, 1); err == nil {
		t.Error("warmupN=0 should error")
	}
	if _, err := Warmup(stream.NewMatrixSource(nil), 10, countsketch.Config{}, SecondMoment, 0, 1); err == nil {
		t.Error("bad sketch config should error")
	}
	empty := stream.NewMatrixSource([][]float64{})
	if _, err := Warmup(empty, 10, countsketch.Config{Tables: 5, Range: 8}, SecondMoment, 0, 1); err == nil {
		t.Error("empty stream should error")
	}
}

func TestWarmupSeenCensusCapped(t *testing.T) {
	// maxSeen caps the distinct-key census memory.
	const d, T = 60, 50
	rng := rand.New(rand.NewSource(8))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	w, err := Warmup(stream.NewMatrixSource(rows), T,
		countsketch.Config{Tables: 5, Range: 1 << 12, Seed: 2}, SecondMoment, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Seen) != 500 {
		t.Errorf("census size = %d, want 500 (capped)", len(w.Seen))
	}
	// Census must be sorted descending.
	for i := 1; i < len(w.Seen); i++ {
		if w.Seen[i] > w.Seen[i-1] {
			t.Fatal("census not sorted descending")
		}
	}
}

func TestWarmupPercentileRanksAgainstFullP(t *testing.T) {
	// A sparse stream over a large dimension: only a handful of pairs
	// ever co-occur, yet percentiles rank against all p pairs, with the
	// unseen middle at zero.
	const d = 2000 // p ≈ 2M
	samples := make([]stream.Sample, 100)
	for i := range samples {
		samples[i] = stream.Sample{Idx: []int{5, 9}, Val: []float64{1, 1}}
	}
	w, err := Warmup(stream.NewSliceSource(samples, d), 100,
		countsketch.Config{Tables: 5, Range: 1 << 12, Seed: 4}, SecondMoment, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Seen) != 1 {
		t.Fatalf("seen = %d, want 1", len(w.Seen))
	}
	if got := w.Percentile(100); math.Abs(got-1) > 1e-9 {
		t.Errorf("top percentile = %v, want 1", got)
	}
	if got := w.Percentile(50); got != 0 {
		t.Errorf("median = %v, want 0 (unseen mass)", got)
	}
	// u at α matching one pair out of p: the single seen estimate.
	alpha := 1.0 / float64(w.P)
	if got := w.SignalStrength(alpha); math.Abs(got-1) > 1e-9 {
		t.Errorf("signal strength = %v, want 1", got)
	}
}

func TestCenteredSparseZeroSkipWithCutoff(t *testing.T) {
	// Sparse stream with zero-mean features: with a generous MeanCutoff
	// the n_u set stays empty and only non-zero pairs are formed, but the
	// covariance of co-occurring features is still recovered.
	const d, T = 20, 600
	rng := rand.New(rand.NewSource(9))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		if rng.Float64() < 0.5 {
			z := rng.NormFloat64()
			rows[i][3] = z
			rows[i][4] = z
		}
	}
	eng := bigCS(t, T)
	e, _ := New(Config{Dim: d, T: T, Engine: eng, Mode: Centered, MeanCutoff: 10})
	if _, err := e.Run(stream.NewMatrixSource(rows)); err != nil {
		t.Fatal(err)
	}
	// E[(ya-ma)(yb-mb)] over co-firing samples only ≈ E[z²]·P(fire); the
	// estimate must be clearly positive and the top pair.
	top, err := e.Top(1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].A != 3 || top[0].B != 4 {
		t.Errorf("top = %+v", top[0])
	}
}

func TestWarmupSaturatedCensusStaysUnbiased(t *testing.T) {
	// Dense stream with many distinct pairs; cap the census well below
	// the distinct count and compare percentiles against the exact
	// (uncapped) census.
	const d, T = 80, 60 // p = 3160 distinct pairs, all seen
	rng := rand.New(rand.NewSource(12))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	cfg := countsketch.Config{Tables: 5, Range: 1 << 13, Seed: 3}
	full, err := Warmup(stream.NewMatrixSource(rows), T, cfg, SecondMoment, 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Warmup(stream.NewMatrixSource(rows), T, cfg, SecondMoment, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Seen) != 500 {
		t.Fatalf("capped census size = %d", len(capped.Seen))
	}
	// Distinct estimate within KMV error of the true 3160.
	if math.Abs(capped.DistinctSeen-3160)/3160 > 0.25 {
		t.Errorf("DistinctSeen = %.0f, want ≈ 3160", capped.DistinctSeen)
	}
	// Central percentiles agree within sampling error (the estimate
	// distribution is roughly N(0, 1/T), so compare at ±0.05 absolute).
	for _, q := range []float64{75, 50, 25} {
		a, c := full.Percentile(q), capped.Percentile(q)
		if math.Abs(a-c) > 0.08 {
			t.Errorf("percentile %v: full %v vs capped %v", q, a, c)
		}
	}
}

func TestTopMagnitudeWithAndWithoutTracker(t *testing.T) {
	const d, T = 20, 400
	rng := rand.New(rand.NewSource(31))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		z := rng.NormFloat64()
		rows[i][2] = z
		rows[i][5] = -z // perfect negative correlation
		for j := 0; j < d; j++ {
			if j != 2 && j != 5 {
				rows[i][j] = rng.NormFloat64()
			}
		}
	}
	for _, track := range []int{0, 100} {
		eng := bigCS(t, T)
		e, _ := New(Config{Dim: d, T: T, Engine: eng, Mode: SecondMoment, TrackCandidates: track})
		if _, err := e.Run(stream.NewMatrixSource(rows)); err != nil {
			t.Fatal(err)
		}
		top, err := e.TopMagnitude(1)
		if err != nil {
			t.Fatal(err)
		}
		if top[0].A != 2 || top[0].B != 5 {
			t.Fatalf("track=%d: TopMagnitude = %+v", track, top[0])
		}
		if top[0].Estimate >= 0 {
			t.Fatalf("track=%d: estimate lost its sign: %v", track, top[0].Estimate)
		}
	}
}
