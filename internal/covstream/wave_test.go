package covstream

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// TestWaveMatchesScalarThroughEstimator pins the wave pipeline at the
// covstream layer: the row-base pair enumeration flushes through
// OfferPairs, so an estimator over a wave-grouped engine must produce
// bit-identical top-k, estimates, and serialized engine state to one
// over the same engine forced onto the scalar batch loop — fixed and
// decayed (λ = 1 and λ < 1), with candidate tracking on.
func TestWaveMatchesScalarThroughEstimator(t *testing.T) {
	const dim, T = 48, 200
	rng := rand.New(rand.NewSource(456))
	samples := make([]stream.Sample, T)
	for i := range samples {
		row := make([]float64, dim)
		for j := range row {
			if rng.Float64() < 0.5 {
				row[j] = rng.NormFloat64()
			}
		}
		row[7] = row[11]*0.95 + 0.05*rng.NormFloat64()
		samples[i] = stream.FromDense(row)
	}
	skCfg := countsketch.Config{Tables: 5, Range: 512, Seed: 12}
	hp := core.Hyperparams{T0: T / 8, Theta: 0.05, Tau0: 1e-4, T: T}
	for _, lambda := range []float64{0, 1, 0.995} {
		build := func() *core.Engine {
			var (
				eng *core.Engine
				err error
			)
			if lambda == 0 {
				eng, err = core.NewEngine(skCfg, hp, true)
			} else {
				eng, err = core.NewEngineDecayed(skCfg, hp, true, lambda)
			}
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}
		scalarEng, waveEng := build(), build()
		scalarEng.SetWaveGroup(1)
		// Default wave group: exactly what production estimators run.
		cfg := Config{Dim: dim, T: T, Mode: SecondMoment, TrackCandidates: 64}
		if lambda != 0 {
			cfg.Decay = lambda
		}
		scfg, wcfg := cfg, cfg
		scfg.Engine, wcfg.Engine = scalarEng, waveEng
		scalar, err := New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := New(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			if err := scalar.Observe(s); err != nil {
				t.Fatal(err)
			}
			if err := wave.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
		st, err := scalar.TopMagnitude(10)
		if err != nil {
			t.Fatal(err)
		}
		wt, err := wave.TopMagnitude(10)
		if err != nil {
			t.Fatal(err)
		}
		if len(st) != len(wt) {
			t.Fatalf("λ=%v: top lengths %d vs %d", lambda, len(st), len(wt))
		}
		for i := range st {
			if st[i] != wt[i] {
				t.Fatalf("λ=%v rank %d: scalar %+v != wave %+v", lambda, i, st[i], wt[i])
			}
		}
		var bs, bw bytes.Buffer
		if _, err := sketchapi.Snapshotter(scalarEng).WriteTo(&bs); err != nil {
			t.Fatal(err)
		}
		if _, err := sketchapi.Snapshotter(waveEng).WriteTo(&bw); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bs.Bytes(), bw.Bytes()) {
			t.Fatalf("λ=%v: serialized engines diverge", lambda)
		}
	}
}
