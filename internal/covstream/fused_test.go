package covstream

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// slowShim hides an engine's fast path so the estimator falls back to
// the per-call Offer+Estimate sequence — the pre-fusion hot path, kept
// reachable exactly so this differential test can compare against it.
type slowShim struct{ inner sketchapi.Ingestor }

func (s slowShim) BeginStep(t int)             { s.inner.BeginStep(t) }
func (s slowShim) Offer(key uint64, x float64) { s.inner.Offer(key, x) }
func (s slowShim) Estimate(key uint64) float64 { return s.inner.Estimate(key) }
func (s slowShim) Bytes() int                  { return s.inner.Bytes() }
func (s slowShim) Name() string                { return s.inner.Name() }

// fusedEngines builds a same-seeded engine pair of each kind.
func fusedEngines(t *testing.T, T int) map[string][2]sketchapi.Ingestor {
	t.Helper()
	out := make(map[string][2]sketchapi.Ingestor)
	mk := func(name string, build func() sketchapi.Ingestor) {
		out[name] = [2]sketchapi.Ingestor{build(), build()}
	}
	skCfg := countsketch.Config{Tables: 5, Range: 512, Seed: 77}
	mk("CS", func() sketchapi.Ingestor {
		ms, err := countsketch.NewMeanSketch(skCfg, T)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	})
	mk("ASCS", func() sketchapi.Ingestor {
		eng, err := core.NewEngine(skCfg, core.Hyperparams{T0: T / 8, Theta: 0.05, Tau0: 1e-4, T: T}, true)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	})
	mk("ASketch", func() sketchapi.Ingestor {
		a, err := baselines.NewASketch(skCfg, T, 8)
		if err != nil {
			t.Fatal(err)
		}
		return a
	})
	mk("ColdFilter", func() sketchapi.Ingestor {
		cf, err := baselines.NewColdFilter(
			countsketch.Config{Tables: 5, Range: 128, Seed: 78},
			countsketch.Config{Tables: 5, Range: 512, Seed: 77}, T, 0.002)
		if err != nil {
			t.Fatal(err)
		}
		return cf
	})
	return out
}

// TestFusedPathMatchesPerCall streams identical seeded samples through a
// fast-path estimator and a per-call (shimmed) twin for every engine and
// both retrieval regimes (tracked candidates and exhaustive), requiring
// identical Top/TopMagnitude rankings and estimates, bit for bit — and
// bit-identical serialized engines where the engine serializes.
func TestFusedPathMatchesPerCall(t *testing.T) {
	const dim, T = 48, 240
	rng := rand.New(rand.NewSource(123))
	samples := make([]stream.Sample, T)
	for i := range samples {
		row := make([]float64, dim)
		for j := range row {
			if rng.Float64() < 0.4 {
				row[j] = rng.NormFloat64()
			}
		}
		// A correlated pair so retrieval has real signal.
		row[3] = row[5]*0.9 + 0.1*rng.NormFloat64()
		samples[i] = stream.FromDense(row)
	}
	for _, track := range []int{0, 64} {
		for name, pair := range fusedEngines(t, T) {
			fast, err := New(Config{Dim: dim, T: T, Engine: pair[0], Mode: SecondMoment, TrackCandidates: track})
			if err != nil {
				t.Fatal(err)
			}
			if track > 0 && fast.fast == nil {
				t.Fatalf("%s: engine does not expose the fused fast path", name)
			}
			slow, err := New(Config{Dim: dim, T: T, Engine: slowShim{pair[1]}, Mode: SecondMoment, TrackCandidates: track})
			if err != nil {
				t.Fatal(err)
			}
			if slow.fast != nil {
				t.Fatal("shim leaked the fast path; differential test is vacuous")
			}
			for _, s := range samples {
				if err := fast.Observe(s); err != nil {
					t.Fatal(err)
				}
				if err := slow.Observe(s); err != nil {
					t.Fatal(err)
				}
			}
			for _, magnitude := range []bool{false, true} {
				var ft, st []PairEstimate
				var err error
				if magnitude {
					ft, err = fast.TopMagnitude(10)
				} else {
					ft, err = fast.Top(10)
				}
				if err != nil {
					t.Fatal(err)
				}
				if magnitude {
					st, err = slow.TopMagnitude(10)
				} else {
					st, err = slow.Top(10)
				}
				if err != nil {
					t.Fatal(err)
				}
				if len(ft) != len(st) {
					t.Fatalf("%s track=%d: top lengths %d vs %d", name, track, len(ft), len(st))
				}
				for i := range ft {
					if ft[i] != st[i] {
						t.Fatalf("%s track=%d magnitude=%v rank %d: fused %+v, per-call %+v",
							name, track, magnitude, i, ft[i], st[i])
					}
				}
			}
			p := pairs.Count(dim)
			for key := uint64(0); key < uint64(p); key += 37 {
				ef := pair[0].Estimate(key)
				es := pair[1].Estimate(key)
				if math.Float64bits(ef) != math.Float64bits(es) {
					t.Fatalf("%s track=%d key %d: fused est %v, per-call est %v", name, track, key, ef, es)
				}
			}
			if fw, ok := pair[0].(sketchapi.Snapshotter); ok {
				var fb, sb bytes.Buffer
				if _, err := fw.WriteTo(&fb); err != nil {
					t.Fatal(err)
				}
				if _, err := pair[1].(sketchapi.Snapshotter).WriteTo(&sb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fb.Bytes(), sb.Bytes()) {
					t.Fatalf("%s track=%d: serialized engines diverged", name, track)
				}
			}
		}
	}
}

// TestFusedCenteredMatchesPerCall covers the Centered mode pair loop
// (row-base incremental keys, adjustment term) with the ASCS engine.
func TestFusedCenteredMatchesPerCall(t *testing.T) {
	const dim, T = 32, 160
	rng := rand.New(rand.NewSource(321))
	samples := make([]stream.Sample, T)
	for i := range samples {
		row := make([]float64, dim)
		for j := range row {
			if rng.Float64() < 0.5 {
				row[j] = rng.NormFloat64() + 0.3
			}
		}
		samples[i] = stream.FromDense(row)
	}
	for _, adjust := range []bool{false, true} {
		pairEng := fusedEngines(t, T)["ASCS"]
		fast, err := New(Config{Dim: dim, T: T, Engine: pairEng[0], Mode: Centered, Adjustment: adjust, TrackCandidates: 32})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := New(Config{Dim: dim, T: T, Engine: slowShim{pairEng[1]}, Mode: Centered, Adjustment: adjust, TrackCandidates: 32})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			if err := fast.Observe(s); err != nil {
				t.Fatal(err)
			}
			if err := slow.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
		ft, err := fast.TopMagnitude(8)
		if err != nil {
			t.Fatal(err)
		}
		st, err := slow.TopMagnitude(8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ft {
			if ft[i] != st[i] {
				t.Fatalf("adjust=%v rank %d: fused %+v, per-call %+v", adjust, i, ft[i], st[i])
			}
		}
		var fb, sb bytes.Buffer
		if _, err := pairEng[0].(sketchapi.Snapshotter).WriteTo(&fb); err != nil {
			t.Fatal(err)
		}
		if _, err := pairEng[1].(sketchapi.Snapshotter).WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fb.Bytes(), sb.Bytes()) {
			t.Fatalf("adjust=%v: serialized engines diverged", adjust)
		}
	}
}
