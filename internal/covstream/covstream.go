// Package covstream turns a stream of samples Y^(t) ∈ R^d into the pair
// stream X ∈ R^p that the sketching engines consume (§3-§5 of the
// paper): it enumerates feature pairs per sample, forms the covariance
// increments (either the E[YaYb] second-moment approximation of §5 or
// the exactly-centered update of §4 with its adjustment term), skips
// zero features, and retrieves the top estimated pairs at the end —
// exhaustively for small p, via a bounded candidate tracker for the
// trillion-entry regime of Table 2.
package covstream

import (
	"fmt"
	"math"

	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
	"repro/internal/topk"
)

// Mode selects how pair increments are formed.
type Mode int

const (
	// SecondMoment inserts x = ya·yb, the paper's §5 approximation
	// Cov(Ya,Yb) ≈ E[YaYb], exact for zero-mean (e.g. standardized)
	// features and the only mode where zero-skipping is lossless.
	SecondMoment Mode = iota
	// Centered inserts x = (ya − ȳa)(yb − ȳb) using running feature
	// means (§4), optionally with the adjustment term that makes the
	// accumulated sum exactly the centered co-moment at every step.
	Centered
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case SecondMoment:
		return "second-moment"
	case Centered:
		return "centered"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config configures an Estimator.
type Config struct {
	// Dim is the feature dimensionality d.
	Dim int
	// T is the stream length the engine was built for.
	T int
	// Engine is the sketching engine (CS, ASCS, ASketch, ColdFilter).
	Engine sketchapi.Ingestor
	// Mode selects the increment formula.
	Mode Mode
	// Adjustment enables the §4 adjustment term (Centered mode only).
	Adjustment bool
	// MeanCutoff (Centered mode): zero-valued features whose running
	// |mean| exceeds this are still paired (the paper's n_u set). Zero
	// keeps strict zero-skipping.
	MeanCutoff float64
	// TrackCandidates, when positive, maintains a bounded candidate set
	// of keys offered to the engine (capacity TrackCandidates) so Top
	// works when p is too large to enumerate.
	TrackCandidates int
	// MaxExhaustivePairs caps exhaustive retrieval (default 20M).
	MaxExhaustivePairs int64
	// Decay, when in (0,1], runs the estimator in exponential-decay
	// (unbounded-stream) mode: Observe no longer rejects samples past T
	// (T is then the effective window the engine normalizes by, not a
	// horizon) and the candidate tracker ages by Decay per step so
	// stale candidates sink. The engine must have been constructed in
	// decay mode with the same λ (e.g. countsketch.NewMeanSketchDecayed,
	// core.NewEngineDecayed); it applies its own table decay inside
	// BeginStep. Zero keeps the classic fixed-horizon behavior.
	Decay float64
}

// PairEstimate is one retrieved pair with its estimated mean.
type PairEstimate struct {
	A, B     int
	Key      uint64
	Estimate float64
}

// pairBatch is the flush threshold of the batched pair-offer buffers:
// large enough to amortize interface dispatch across an OfferPairs call,
// small enough that the key/increment/estimate scratch stays
// cache-resident. Flushes happen only on row boundaries, so a buffer may
// exceed it by up to one row before draining.
const pairBatch = 2048

// maxRowEsts caps the per-sample estimate scratch of the tracked row
// path (OfferRows needs m(m−1)/2 estimate slots for a sample with m
// active features). Denser samples fall back to the row-aligned
// pair-buffer path, which flushes in bounded batches.
const maxRowEsts = 1 << 20

// Estimator drives an engine over a sample stream.
type Estimator struct {
	cfg   Config
	t     int
	means []float64 // running feature means (Centered mode)
	prev  []float64 // scratch: previous means during an update
	track *topk.Tracker
	fast  sketchapi.OfferEstimator // non-nil when Engine supports the fused path
	row   sketchapi.RowOfferer     // non-nil when Engine supports the row path

	active []int // scratch: active feature indices of current sample
	vals   []float64
	keys   []uint64  // scratch: batched pair keys awaiting flush
	xs     []float64 // scratch: matching increments
	ests   []float64 // scratch: post-offer estimates (tracked runs)

	rowBases []uint64  // scratch: per-row pair bases of current sample
	rowIDs   []uint64  // scratch: active feature ids as uint64
	rowLeft  []float64 // scratch: row factors (Centered mode)
	rowRight []float64 // scratch: partner factors (Centered mode)
	rowEsts  []float64 // scratch: OfferRows estimates (tracked runs)
}

// New validates cfg and builds an estimator.
func New(cfg Config) (*Estimator, error) {
	if cfg.Dim < 2 {
		return nil, fmt.Errorf("covstream: Dim must be ≥ 2, got %d", cfg.Dim)
	}
	if cfg.T < 1 {
		return nil, fmt.Errorf("covstream: T must be ≥ 1, got %d", cfg.T)
	}
	if cfg.Engine == nil {
		return nil, fmt.Errorf("covstream: Engine is required")
	}
	if cfg.Mode != SecondMoment && cfg.Mode != Centered {
		return nil, fmt.Errorf("covstream: unknown mode %v", cfg.Mode)
	}
	if cfg.Adjustment && cfg.Mode != Centered {
		return nil, fmt.Errorf("covstream: Adjustment requires Centered mode")
	}
	if cfg.MeanCutoff < 0 {
		return nil, fmt.Errorf("covstream: MeanCutoff must be ≥ 0")
	}
	if cfg.MaxExhaustivePairs == 0 {
		cfg.MaxExhaustivePairs = 20_000_000
	}
	if cfg.Decay != 0 {
		if err := sketchapi.ValidateDecay(cfg.Decay); err != nil {
			return nil, fmt.Errorf("covstream: %w", err)
		}
	}
	// Decay mode must agree between the driver and the engine: a decayed
	// engine under a fixed-horizon estimator (or vice versa) would mix
	// window-normalized tables with horizon bookkeeping silently.
	dec, _ := cfg.Engine.(sketchapi.Decayer)
	engineDecaying := dec != nil && dec.Decaying()
	if cfg.Decay != 0 && !engineDecaying {
		return nil, fmt.Errorf("covstream: Decay=%v but engine %s is not in decay mode", cfg.Decay, cfg.Engine.Name())
	}
	if cfg.Decay == 0 && engineDecaying {
		return nil, fmt.Errorf("covstream: engine %s is in decay mode (λ=%v) but Config.Decay is unset", cfg.Engine.Name(), dec.DecayFactor())
	}
	if cfg.Decay != 0 && dec.DecayFactor() != cfg.Decay {
		return nil, fmt.Errorf("covstream: Config.Decay=%v disagrees with engine λ=%v", cfg.Decay, dec.DecayFactor())
	}
	e := &Estimator{cfg: cfg}
	if cfg.Mode == Centered {
		e.means = make([]float64, cfg.Dim)
		e.prev = make([]float64, cfg.Dim)
	}
	if cfg.TrackCandidates > 0 {
		e.track = topk.NewTracker(cfg.TrackCandidates)
	}
	if f, ok := cfg.Engine.(sketchapi.OfferEstimator); ok {
		e.fast = f
	}
	if r, ok := cfg.Engine.(sketchapi.RowOfferer); ok {
		e.row = r
	}
	e.keys = make([]uint64, 0, pairBatch)
	e.xs = make([]float64, 0, pairBatch)
	if e.fast != nil && e.track != nil {
		// Only the fast+tracked flush branch reads the estimates.
		e.ests = make([]float64, pairBatch)
	}
	return e, nil
}

// Steps returns the number of samples observed so far.
func (e *Estimator) Steps() int { return e.t }

// Engine returns the underlying engine.
func (e *Estimator) Engine() sketchapi.Ingestor { return e.cfg.Engine }

// Observe feeds one sample.
func (e *Estimator) Observe(s stream.Sample) error {
	if err := s.Validate(e.cfg.Dim); err != nil {
		return err
	}
	// Decay mode serves unbounded streams: there is no horizon to
	// exhaust, T is only the window normalizer.
	if e.cfg.Decay == 0 && e.t >= e.cfg.T {
		return fmt.Errorf("covstream: stream exceeds configured T=%d", e.cfg.T)
	}
	e.t++
	e.cfg.Engine.BeginStep(e.t)
	if e.cfg.Decay != 0 && e.track != nil {
		e.track.Decay(e.cfg.Decay)
	}
	switch e.cfg.Mode {
	case SecondMoment:
		e.observeSecondMoment(s)
	case Centered:
		e.observeCentered(s)
	}
	return nil
}

func (e *Estimator) observeSecondMoment(s stream.Sample) {
	// x = ya·yb over non-zero pairs only: zeros contribute nothing. For
	// fixed a the pair keys of increasing b are base + b (pairs.Index is
	// row-major), so the whole sample is a set of rows sharing one base
	// each — exactly the RowOfferer triangle shape: ids are the active
	// features, left = right = their values.
	idx, val := s.Idx, s.Val
	d := e.cfg.Dim
	if e.row != nil && len(idx) > 1 {
		e.rowIDs = e.rowIDs[:0]
		e.rowBases = e.rowBases[:0]
		for i, ix := range idx {
			e.rowIDs = append(e.rowIDs, uint64(ix))
			if i+1 < len(idx) {
				e.rowBases = append(e.rowBases, uint64(pairs.RowBase(ix, d)))
			}
		}
		if e.observeRows(e.rowBases, e.rowIDs, val, val) {
			return
		}
	}
	for i := 0; i+1 < len(idx); i++ {
		rowBase := pairs.RowBase(idx[i], d)
		ya := val[i]
		for j := i + 1; j < len(idx); j++ {
			e.bufferPair(uint64(rowBase+int64(idx[j])), ya*val[j])
		}
		e.flushRowAligned()
	}
	e.flushPairs()
}

// observeRows feeds one sample's upper triangle through the engine's
// row path. It reports false when the tracked estimate scratch would
// exceed maxRowEsts, in which case the caller must run the buffered
// pair path instead.
func (e *Estimator) observeRows(bases, ids []uint64, left, right []float64) bool {
	m := len(ids)
	if e.track == nil {
		e.row.OfferRows(bases, ids, left, right, nil)
		return true
	}
	p := m * (m - 1) / 2
	if p > maxRowEsts {
		return false
	}
	if cap(e.rowEsts) < p {
		e.rowEsts = make([]float64, p)
	}
	ests := e.rowEsts[:p]
	e.row.OfferRows(bases, ids, left, right, ests)
	n := 0
	for i := 0; i+1 < m; i++ {
		base := bases[i]
		for j := i + 1; j < m; j++ {
			e.track.Offer(base+ids[j], math.Abs(ests[n]))
			n++
		}
	}
	return true
}

func (e *Estimator) observeCentered(s stream.Sample) {
	d := e.cfg.Dim
	copy(e.prev, e.means)
	// Update running means over all features (zeros implicit).
	tf := float64(e.t)
	for j := 0; j < d; j++ {
		e.means[j] *= (tf - 1) / tf
	}
	for i, ix := range s.Idx {
		e.means[ix] += s.Val[i] / tf
	}
	// Active set: non-zero features plus heavy-mean features (n_u).
	e.active = e.active[:0]
	e.vals = e.vals[:0]
	si := 0
	for j := 0; j < d; j++ {
		v := 0.0
		if si < len(s.Idx) && s.Idx[si] == j {
			v = s.Val[si]
			si++
		}
		if v != 0 || math.Abs(e.means[j]) > e.cfg.MeanCutoff || (e.cfg.MeanCutoff == 0 && e.means[j] != 0) {
			e.active = append(e.active, j)
			e.vals = append(e.vals, v)
		}
	}
	// Both factors of the centered increment are row- or sample-constant:
	// x = (ya − pa)·(yb − ȳb(t)) with pa fixed per row and ȳb(t) fixed
	// per sample — so the triangle factors into left[i]·right[j] and fits
	// the RowOfferer shape exactly (the products are formed in the same
	// order with the same operands, so they are bit-identical).
	m := len(e.active)
	if e.row != nil && m > 1 {
		e.rowIDs, e.rowBases = e.rowIDs[:0], e.rowBases[:0]
		e.rowLeft, e.rowRight = e.rowLeft[:0], e.rowRight[:0]
		for i, a := range e.active {
			e.rowIDs = append(e.rowIDs, uint64(a))
			e.rowRight = append(e.rowRight, e.vals[i]-e.means[a])
			if i+1 < m {
				e.rowBases = append(e.rowBases, uint64(pairs.RowBase(a, d)))
				pa := e.means[a]
				if e.cfg.Adjustment {
					// Exact telescoping of §4: the paper's adjustment
					// makes Σ_k X^(k) equal Σ_k (ya(k)−ȳa(t))(yb(k)−ȳb(t))
					// at every t. The closed form of that difference is
					// the Welford co-moment update (one pre-update mean,
					// one post-update mean):
					// S(t)−S(t−1) = (ya−ȳa(t−1))·(yb−ȳb(t)).
					pa = e.prev[a]
				}
				e.rowLeft = append(e.rowLeft, e.vals[i]-pa)
			}
		}
		if e.observeRows(e.rowBases, e.rowIDs, e.rowLeft, e.rowRight) {
			return
		}
	}
	for i := 0; i+1 < m; i++ {
		a := e.active[i]
		rowBase := pairs.RowBase(a, d)
		var ya, pa float64
		if e.cfg.Adjustment {
			ya, pa = e.vals[i], e.prev[a]
		} else {
			// The paper's approximation: drop the adjustment and use
			// the current means on both sides.
			ya, pa = e.vals[i], e.means[a]
		}
		for j := i + 1; j < m; j++ {
			b := e.active[j]
			x := (ya - pa) * (e.vals[j] - e.means[b])
			e.bufferPair(uint64(rowBase+int64(b)), x)
		}
		e.flushRowAligned()
	}
	e.flushPairs()
}

// bufferPair queues one pair increment for the current step. It never
// flushes on its own: flushes must land on row boundaries (a row split
// across two OfferPairs calls would split its wave groups differently
// than the row path does), so the observe loops call flushRowAligned at
// the end of each row instead.
func (e *Estimator) bufferPair(key uint64, x float64) {
	e.keys = append(e.keys, key)
	e.xs = append(e.xs, x)
}

// flushRowAligned drains the pair buffer when it has reached the batch
// threshold. Called only at row boundaries, so batches may exceed
// pairBatch by up to one row but never split a row.
func (e *Estimator) flushRowAligned() {
	if len(e.keys) >= pairBatch {
		e.flushPairs()
	}
}

// flushPairs drains the queued pair increments: one OfferPairs call on
// the fused fast path (the engine hashes each key exactly once, and the
// candidate tracker reuses the gate/insert estimates instead of
// re-hashing), or per-call Offer+Estimate for engines without it.
func (e *Estimator) flushPairs() {
	keys, xs := e.keys, e.xs
	if len(keys) == 0 {
		return
	}
	switch {
	case e.fast != nil && e.track != nil:
		if cap(e.ests) < len(keys) {
			// Row-aligned batches can overshoot pairBatch by one row.
			e.ests = make([]float64, len(keys))
		}
		ests := e.ests[:len(keys)]
		e.fast.OfferPairs(keys, xs, ests)
		for i, key := range keys {
			e.track.Offer(key, math.Abs(ests[i]))
		}
	case e.fast != nil:
		e.fast.OfferPairs(keys, xs, nil)
	default:
		eng := e.cfg.Engine
		for i, key := range keys {
			eng.Offer(key, xs[i])
			if e.track != nil {
				e.track.Offer(key, math.Abs(eng.Estimate(key)))
			}
		}
	}
	e.keys = keys[:0]
	e.xs = xs[:0]
}

// Run drains src through Observe, returning the number of samples
// processed.
func (e *Estimator) Run(src stream.Source) (int, error) {
	n := 0
	for {
		s, ok := src.Next()
		if !ok {
			return n, nil
		}
		if err := e.Observe(s); err != nil {
			return n, err
		}
		n++
	}
}

// EstimatePair returns the engine's estimate for the pair (a, b).
func (e *Estimator) EstimatePair(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	return e.cfg.Engine.Estimate(pairs.Key(a, b, e.cfg.Dim))
}

// Top returns the k pairs with the largest estimates (by signed value).
// With candidate tracking enabled the candidates are rescored with the
// final estimates; otherwise all p pairs are scanned (p must not exceed
// MaxExhaustivePairs).
func (e *Estimator) Top(k int) ([]PairEstimate, error) {
	return e.top(k, func(v float64) float64 { return v })
}

// TopMagnitude returns the k pairs with the largest |estimate| — strong
// negative correlations rank alongside positive ones (the two-sided
// ASCS gate of Theorems 1–2 retains both). Estimates keep their sign.
func (e *Estimator) TopMagnitude(k int) ([]PairEstimate, error) {
	return e.top(k, math.Abs)
}

func (e *Estimator) top(k int, rank func(float64) float64) ([]PairEstimate, error) {
	if k < 1 {
		return nil, fmt.Errorf("covstream: k must be ≥ 1")
	}
	d := e.cfg.Dim
	var items []topk.Item
	if e.track != nil {
		items = e.track.Top(k, func(key uint64) float64 { return rank(e.cfg.Engine.Estimate(key)) })
	} else {
		p := pairs.Count(d)
		if p > e.cfg.MaxExhaustivePairs {
			return nil, fmt.Errorf("covstream: %d pairs exceed exhaustive limit %d; enable TrackCandidates", p, e.cfg.MaxExhaustivePairs)
		}
		h := topk.NewHeap(k)
		for idx := int64(0); idx < p; idx++ {
			key := uint64(idx)
			h.Push(key, rank(e.cfg.Engine.Estimate(key)))
		}
		items = h.SortedDesc()
	}
	out := make([]PairEstimate, len(items))
	for i, it := range items {
		a, b := pairs.Decode(int64(it.Key), d)
		out[i] = PairEstimate{A: a, B: b, Key: it.Key, Estimate: e.cfg.Engine.Estimate(it.Key)}
	}
	return out, nil
}

// RankedKeys returns all p pair keys ordered by descending estimate
// (exhaustive retrieval; intended for small p where F1-style evaluation
// needs a full ranking).
func (e *Estimator) RankedKeys() ([]uint64, error) {
	p := pairs.Count(e.cfg.Dim)
	if p > e.cfg.MaxExhaustivePairs {
		return nil, fmt.Errorf("covstream: %d pairs exceed exhaustive limit", p)
	}
	h := topk.NewHeap(int(p))
	for idx := int64(0); idx < p; idx++ {
		h.Push(uint64(idx), e.cfg.Engine.Estimate(uint64(idx)))
	}
	items := h.SortedDesc()
	keys := make([]uint64, len(items))
	for i, it := range items {
		keys[i] = it.Key
	}
	return keys, nil
}
