package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/pairs"
	"repro/internal/stream"
)

// PairRef names a feature pair (A < B).
type PairRef struct {
	A, B int
}

// Key returns the pair's linear index as a sketch key.
func (p PairRef) Key(d int) uint64 { return pairs.Key(p.A, p.B, d) }

// URLConfig parameterizes the URL-like workload of Table 2: extremely
// sparse binary features where groups of near-duplicate features
// (tokens of the same host/path) co-fire, creating correlation-≈1 signal
// pairs, on top of sparse background firing.
type URLConfig struct {
	// Dim is the feature dimensionality.
	Dim int
	// GroupSize is the number of co-firing features per group.
	GroupSize int
	// Groups is the number of co-firing groups (Groups*GroupSize ≤ Dim).
	Groups int
	// ActiveGroups is how many groups fire per sample.
	ActiveGroups int
	// FireProb is the probability each member of an active group fires.
	FireProb float64
	// BackgroundNZ is the expected number of extra random features per
	// sample.
	BackgroundNZ int
	// Seed drives generation.
	Seed int64
}

// DefaultURLConfig returns a laptop-scale stand-in for the paper's URL
// dataset (d = 10^6, nz ≈ 120 there), preserving the structure at a
// configurable dimension. Background firing is kept an order of
// magnitude rarer than group firing so that within-group correlations
// stay near one, as in the original data's near-duplicate URL tokens.
func DefaultURLConfig(dim int, seed int64) URLConfig {
	bg := dim / 250
	if bg < 2 {
		bg = 2
	}
	return URLConfig{
		Dim:          dim,
		GroupSize:    3,
		Groups:       dim / 3,
		ActiveGroups: 12,
		FireProb:     0.95,
		BackgroundNZ: bg,
		Seed:         seed,
	}
}

// Validate checks the configuration.
func (c URLConfig) Validate() error {
	switch {
	case c.Dim < 4:
		return fmt.Errorf("dataset: url Dim too small (%d)", c.Dim)
	case c.GroupSize < 2:
		return fmt.Errorf("dataset: url GroupSize must be ≥ 2")
	case c.Groups < 1 || c.Groups*c.GroupSize > c.Dim:
		return fmt.Errorf("dataset: url Groups*GroupSize (%d) must fit in Dim (%d)", c.Groups*c.GroupSize, c.Dim)
	case c.ActiveGroups < 1 || c.ActiveGroups > c.Groups:
		return fmt.Errorf("dataset: url ActiveGroups out of range")
	case c.FireProb <= 0 || c.FireProb > 1:
		return fmt.Errorf("dataset: url FireProb out of (0,1]")
	case c.BackgroundNZ < 0:
		return fmt.Errorf("dataset: url BackgroundNZ negative")
	}
	return nil
}

// SignalPairs lists the within-group pairs (the planted heavy
// correlations).
func (c URLConfig) SignalPairs() []PairRef {
	var out []PairRef
	for g := 0; g < c.Groups; g++ {
		base := g * c.GroupSize
		for i := 0; i < c.GroupSize; i++ {
			for j := i + 1; j < c.GroupSize; j++ {
				out = append(out, PairRef{base + i, base + j})
			}
		}
	}
	return out
}

// NewSource returns a fresh n-sample source (deterministic in Seed).
func (c URLConfig) NewSource(n int) (stream.Source, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	left := n
	return stream.NewFuncSource(c.Dim, func() (stream.Sample, bool) {
		if left <= 0 {
			return stream.Sample{}, false
		}
		left--
		var s stream.Sample
		seen := map[int]bool{}
		for a := 0; a < c.ActiveGroups; a++ {
			g := rng.Intn(c.Groups)
			base := g * c.GroupSize
			for m := 0; m < c.GroupSize; m++ {
				if rng.Float64() < c.FireProb {
					seen[base+m] = true
				}
			}
		}
		for b := 0; b < c.BackgroundNZ; b++ {
			seen[rng.Intn(c.Dim)] = true
		}
		for ix := range seen {
			s.Idx = append(s.Idx, ix)
			s.Val = append(s.Val, 1)
		}
		stream.SortSampleInPlace(&s)
		return s, true
	}), nil
}

// DNAConfig parameterizes the DNA k-mer workload: reads of length
// ReadLen over {A,C,G,T} are generated with planted motifs; each read
// becomes a sparse sample of k-mer counts over d = 4^K features. K-mers
// belonging to the same motif co-occur, giving correlation-≈1 signal
// pairs — the paper's own dataset is generated the same way
// (c=1, k=12, L=200, seed=42), here at reduced k.
type DNAConfig struct {
	// K is the k-mer length; the dimensionality is 4^K.
	K int
	// ReadLen is the read length L.
	ReadLen int
	// Motifs is the number of planted motifs.
	Motifs int
	// MotifLen is each motif's length (≥ K).
	MotifLen int
	// MotifProb is the probability a read carries a motif.
	MotifProb float64
	// Seed drives generation (the paper uses seed = 42).
	Seed int64
}

// DefaultDNAConfig mirrors the paper's recipe at reduced k.
func DefaultDNAConfig(k int, seed int64) DNAConfig {
	return DNAConfig{K: k, ReadLen: 200, Motifs: 50, MotifLen: k + 8, MotifProb: 0.35, Seed: seed}
}

// Dim returns 4^K.
func (c DNAConfig) Dim() int {
	d := 1
	for i := 0; i < c.K; i++ {
		d *= 4
	}
	return d
}

// Validate checks the configuration.
func (c DNAConfig) Validate() error {
	switch {
	case c.K < 2 || c.K > 12:
		return fmt.Errorf("dataset: dna K must be in [2,12], got %d", c.K)
	case c.MotifLen < c.K:
		return fmt.Errorf("dataset: dna MotifLen (%d) must be ≥ K (%d)", c.MotifLen, c.K)
	case c.ReadLen < c.MotifLen:
		return fmt.Errorf("dataset: dna ReadLen (%d) must be ≥ MotifLen (%d)", c.ReadLen, c.MotifLen)
	case c.Motifs < 1:
		return fmt.Errorf("dataset: dna Motifs must be ≥ 1")
	case c.MotifProb < 0 || c.MotifProb > 1:
		return fmt.Errorf("dataset: dna MotifProb out of [0,1]")
	}
	return nil
}

// motifs materializes the motif base strings deterministically.
func (c DNAConfig) motifs() [][]byte {
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5f5f))
	out := make([][]byte, c.Motifs)
	for i := range out {
		m := make([]byte, c.MotifLen)
		for j := range m {
			m[j] = byte(rng.Intn(4))
		}
		out[i] = m
	}
	return out
}

// kmerCodes returns the distinct k-mer codes of a base string.
func kmerCodes(bases []byte, k int) []int {
	if len(bases) < k {
		return nil
	}
	mask := 1
	for i := 0; i < k; i++ {
		mask *= 4
	}
	mask-- // 4^k - 1
	code := 0
	seen := map[int]bool{}
	var out []int
	for i, b := range bases {
		code = (code*4 + int(b)) & mask
		if i >= k-1 && !seen[code] {
			seen[code] = true
			out = append(out, code)
		}
	}
	return out
}

// SignalPairs lists pairs of distinct k-mers that co-occur within a
// planted motif.
func (c DNAConfig) SignalPairs() []PairRef {
	var out []PairRef
	dedup := map[[2]int]bool{}
	for _, m := range c.motifs() {
		codes := kmerCodes(m, c.K)
		for i := 0; i < len(codes); i++ {
			for j := i + 1; j < len(codes); j++ {
				a, b := codes[i], codes[j]
				if a > b {
					a, b = b, a
				}
				if a == b || dedup[[2]int{a, b}] {
					continue
				}
				dedup[[2]int{a, b}] = true
				out = append(out, PairRef{a, b})
			}
		}
	}
	return out
}

// NewSource returns a fresh n-read source of k-mer count samples.
func (c DNAConfig) NewSource(n int) (stream.Source, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	motifs := c.motifs()
	left := n
	read := make([]byte, c.ReadLen)
	return stream.NewFuncSource(c.Dim(), func() (stream.Sample, bool) {
		if left <= 0 {
			return stream.Sample{}, false
		}
		left--
		for i := range read {
			read[i] = byte(rng.Intn(4))
		}
		if rng.Float64() < c.MotifProb {
			m := motifs[rng.Intn(len(motifs))]
			pos := rng.Intn(c.ReadLen - c.MotifLen + 1)
			copy(read[pos:], m)
		}
		counts := map[int]int{}
		mask := c.Dim() - 1
		code := 0
		for i, b := range read {
			code = (code*4 + int(b)) & mask
			if i >= c.K-1 {
				counts[code]++
			}
		}
		var s stream.Sample
		for ix, cnt := range counts {
			s.Idx = append(s.Idx, ix)
			s.Val = append(s.Val, float64(cnt))
		}
		stream.SortSampleInPlace(&s)
		return s, true
	}), nil
}
