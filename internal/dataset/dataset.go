// Package dataset provides the synthetic workloads of the reproduction.
//
// The paper evaluates on LIBSVM datasets (gisette, epsilon, cifar10,
// rcv1, sector; Table 3), two trillion-scale datasets (URL, DNA k-mer;
// Table 2) and a simulation model (§6.2). The module being offline, each
// is replaced by a seeded generator matched on the statistics ASCS is
// sensitive to: dimensionality, sample sparsity, the correlation
// spectrum (Figure 1), the mean/std profile (Figure 2) and planted
// signal structure. The DNA k-mer dataset is itself synthetic in the
// paper (reads are generated, then k-mer counted), so that generator is
// a direct scaled-down reimplementation rather than a stand-in.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/matrix"
	"repro/internal/pairs"
	"repro/internal/stream"
)

// Dataset is a materialized small-scale dataset with exact ground truth,
// used by the §8.3 experiments (Tables 3-6, Figures 1-6).
type Dataset struct {
	// Name identifies the workload ("simulation", "gisette-like", ...).
	Name string
	// Dim is the feature dimensionality d.
	Dim int
	// Alpha is the suggested signal sparsity for ASCS (Table 3).
	Alpha float64
	// Rows holds the materialized samples (Samples × Dim).
	Rows [][]float64
	// TrueCorr is the ground-truth correlation matrix: the population
	// matrix when known analytically (simulation), otherwise the exact
	// empirical correlation of Rows, computed lazily by Corr.
	trueCorr *matrix.Sym
}

// Samples returns the number of materialized rows.
func (ds *Dataset) Samples() int { return len(ds.Rows) }

// Source returns a fresh one-pass source over the rows.
func (ds *Dataset) Source() stream.Source { return stream.NewMatrixSource(ds.Rows) }

// Corr returns the ground-truth correlation matrix, computing the exact
// empirical correlation of Rows on first use when no analytic truth was
// attached.
func (ds *Dataset) Corr() (*matrix.Sym, error) {
	if ds.trueCorr != nil {
		return ds.trueCorr, nil
	}
	c, err := matrix.ExactCorrelation(ds.Rows)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", ds.Name, err)
	}
	ds.trueCorr = c
	return c, nil
}

// CorrOf returns the ground-truth correlation of the pair with linear
// index idx.
func (ds *Dataset) CorrOf(idx int64) (float64, error) {
	c, err := ds.Corr()
	if err != nil {
		return 0, err
	}
	a, b := pairs.Decode(idx, ds.Dim)
	return c.At(a, b), nil
}

// AvgNNZ returns the average number of non-zeros per row.
func (ds *Dataset) AvgNNZ() float64 {
	if len(ds.Rows) == 0 {
		return 0
	}
	total := 0
	for _, r := range ds.Rows {
		for _, v := range r {
			if v != 0 {
				total++
			}
		}
	}
	return float64(total) / float64(len(ds.Rows))
}

// Bootstrap returns a new dataset whose rows are sampled with
// replacement from ds (the paper's device for replicating "gisette" in
// §6.2 and §7.3). The ground-truth correlation remains that of ds.
func (ds *Dataset) Bootstrap(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = ds.Rows[rng.Intn(len(ds.Rows))]
	}
	return &Dataset{
		Name:     ds.Name + "-boot",
		Dim:      ds.Dim,
		Alpha:    ds.Alpha,
		Rows:     rows,
		trueCorr: ds.trueCorr,
	}
}

// Scale selects the size of generated datasets: tests and benches use
// Small; cmd/experiments can run closer to paper scale.
type Scale struct {
	// Dim is the number of features (the paper restricts to 1000).
	Dim int
	// Samples is the stream length.
	Samples int
}

// SmallScale is sized for unit tests and CI: seconds, not minutes.
func SmallScale() Scale { return Scale{Dim: 300, Samples: 2000} }

// MediumScale is sized for local experiment runs.
func MediumScale() Scale { return Scale{Dim: 500, Samples: 4000} }

// PaperScale matches §8.3 (1000 features; samples capped at 6000).
func PaperScale() Scale { return Scale{Dim: 1000, Samples: 6000} }

// ByName builds one of the five small-scale datasets of Table 3 by name.
func ByName(name string, sc Scale, seed int64) (*Dataset, error) {
	switch name {
	case "simulation":
		return Simulation(sc.Dim, sc.Samples, 0.005, seed), nil
	case "gisette":
		return GisetteLike(sc, seed), nil
	case "epsilon":
		return EpsilonLike(sc, seed), nil
	case "cifar10":
		return CIFAR10Like(sc, seed), nil
	case "rcv1":
		return RCV1Like(sc, seed), nil
	case "sector":
		return SectorLike(sc, seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// SmallNames lists the five Table 3 workloads (plus the simulation).
func SmallNames() []string {
	return []string{"gisette", "epsilon", "cifar10", "rcv1", "sector"}
}
