package dataset

import (
	"math"
	"testing"

	"repro/internal/matrix"
	"repro/internal/stream"
)

func TestSimulationStructure(t *testing.T) {
	const (
		d     = 200
		n     = 500
		alpha = 0.01
	)
	ds := Simulation(d, n, alpha, 1)
	if ds.Dim != d || ds.Samples() != n || ds.Name != "simulation" {
		t.Fatalf("metadata = %s %d %d", ds.Name, ds.Dim, ds.Samples())
	}
	corr, err := ds.Corr()
	if err != nil {
		t.Fatal(err)
	}
	// Signal pairs near the target count, all in [0.5, 1]; diagonal 1.
	p := float64(d) * (d - 1) / 2
	target := alpha * p
	got := SimulationSignalPairs(ds)
	if math.Abs(float64(got)-target) > 0.5*target {
		t.Errorf("signal pairs = %d, target ≈ %.0f", got, target)
	}
	for i := 0; i < d; i++ {
		if corr.At(i, i) != 1 {
			t.Fatalf("diag[%d] = %v", i, corr.At(i, i))
		}
		for j := i + 1; j < d; j++ {
			c := corr.At(i, j)
			if c != 0 && (c < 0.5-1e-12 || c > 1) {
				t.Fatalf("signal corr[%d,%d] = %v outside [0.5,1]", i, j, c)
			}
		}
	}
	// Population truth must be PSD.
	if !matrix.IsPSD(corr, 1e-8) {
		t.Error("simulation correlation not PSD")
	}
}

func TestSimulationEmpiricalMatchesPopulation(t *testing.T) {
	ds := Simulation(100, 4000, 0.02, 2)
	pop := ds.trueCorr
	emp, err := matrix.ExactCorrelation(ds.Rows)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical correlations concentrate around population values:
	// sampling error ~ 1/sqrt(n) ≈ 0.016; allow 5 sigma.
	maxErr := 0.0
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if e := math.Abs(emp.At(i, j) - pop.At(i, j)); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 0.12 {
		t.Errorf("max |empirical - population| = %v", maxErr)
	}
}

func TestSimulationDeterministic(t *testing.T) {
	a := Simulation(50, 20, 0.02, 7)
	b := Simulation(50, 20, 0.02, 7)
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("same seed should reproduce identical data")
			}
		}
	}
	c := Simulation(50, 20, 0.02, 8)
	if a.Rows[0][0] == c.Rows[0][0] {
		t.Error("different seeds should differ")
	}
}

func TestByNameAllDatasets(t *testing.T) {
	sc := Scale{Dim: 120, Samples: 300}
	for _, name := range append(SmallNames(), "simulation") {
		ds, err := ByName(name, sc, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Dim != sc.Dim || ds.Samples() != sc.Samples {
			t.Errorf("%s: wrong shape %dx%d", name, ds.Samples(), ds.Dim)
		}
		if ds.Alpha <= 0 || ds.Alpha >= 1 {
			t.Errorf("%s: alpha = %v", name, ds.Alpha)
		}
		if _, err := ds.Corr(); err != nil {
			t.Errorf("%s: Corr: %v", name, err)
		}
	}
	if _, err := ByName("nope", sc, 3); err == nil {
		t.Error("unknown name should error")
	}
}

func TestSmallDatasetsHaveStrongAndWeakPairs(t *testing.T) {
	// Every Table-3-like dataset must present the Figure 1 shape: most
	// pairs weakly correlated, a non-trivial head of strong pairs.
	sc := Scale{Dim: 150, Samples: 1200}
	for _, name := range SmallNames() {
		ds, err := ByName(name, sc, 5)
		if err != nil {
			t.Fatal(err)
		}
		corr, err := ds.Corr()
		if err != nil {
			t.Fatal(err)
		}
		strong, weak, total := 0, 0, 0
		for i := 0; i < ds.Dim; i++ {
			for j := i + 1; j < ds.Dim; j++ {
				c := math.Abs(corr.At(i, j))
				total++
				if c > 0.4 {
					strong++
				}
				if c < 0.2 {
					weak++
				}
			}
		}
		if strong < 10 {
			t.Errorf("%s: only %d strong pairs", name, strong)
		}
		if float64(weak)/float64(total) < 0.8 {
			t.Errorf("%s: weak fraction %.2f, want sparse spectrum", name, float64(weak)/float64(total))
		}
	}
}

func TestSparseDatasetsAreSparse(t *testing.T) {
	sc := Scale{Dim: 200, Samples: 400}
	for _, name := range []string{"rcv1", "sector"} {
		ds, _ := ByName(name, sc, 1)
		if nnz := ds.AvgNNZ(); nnz > float64(sc.Dim)/3 {
			t.Errorf("%s: avg nnz %.1f too dense for a text-like dataset", name, nnz)
		}
	}
	// Dense datasets should be dense.
	eps, _ := ByName("epsilon", sc, 1)
	if nnz := eps.AvgNNZ(); nnz < float64(sc.Dim)*0.95 {
		t.Errorf("epsilon: avg nnz %.1f should be dense", nnz)
	}
}

func TestBootstrap(t *testing.T) {
	ds := Simulation(30, 100, 0.05, 4)
	boot := ds.Bootstrap(250, 9)
	if boot.Samples() != 250 || boot.Dim != 30 {
		t.Fatalf("bootstrap shape %dx%d", boot.Samples(), boot.Dim)
	}
	// Bootstrap rows must come from the original row set (same backing
	// arrays are fine).
	orig := map[*float64]bool{}
	for _, r := range ds.Rows {
		orig[&r[0]] = true
	}
	for _, r := range boot.Rows {
		if !orig[&r[0]] {
			t.Fatal("bootstrap row not drawn from original rows")
		}
	}
	// Ground truth is inherited.
	bc, err := boot.Corr()
	if err != nil {
		t.Fatal(err)
	}
	oc, _ := ds.Corr()
	if bc.At(0, 1) != oc.At(0, 1) {
		t.Error("bootstrap should inherit the base ground truth")
	}
}

func TestDatasetSourceRoundTrip(t *testing.T) {
	ds := Simulation(20, 15, 0.05, 3)
	src := ds.Source()
	if src.Dim() != 20 {
		t.Errorf("Dim = %d", src.Dim())
	}
	n := len(stream.Drain(src))
	if n != 15 {
		t.Errorf("source yielded %d", n)
	}
}

func TestCorrOf(t *testing.T) {
	ds := Simulation(10, 50, 0.1, 2)
	c, err := ds.Corr()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.CorrOf(0) // pair (0,1)
	if err != nil {
		t.Fatal(err)
	}
	if got != c.At(0, 1) {
		t.Errorf("CorrOf(0) = %v, want %v", got, c.At(0, 1))
	}
}

func TestURLConfigValidation(t *testing.T) {
	good := DefaultURLConfig(600, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []URLConfig{
		{Dim: 2},
		{Dim: 100, GroupSize: 1, Groups: 10, ActiveGroups: 1, FireProb: 0.5},
		{Dim: 100, GroupSize: 3, Groups: 40, ActiveGroups: 1, FireProb: 0.5},
		{Dim: 100, GroupSize: 3, Groups: 10, ActiveGroups: 0, FireProb: 0.5},
		{Dim: 100, GroupSize: 3, Groups: 10, ActiveGroups: 1, FireProb: 0},
		{Dim: 100, GroupSize: 3, Groups: 10, ActiveGroups: 1, FireProb: 0.5, BackgroundNZ: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestURLSourceShape(t *testing.T) {
	cfg := DefaultURLConfig(600, 11)
	src, err := cfg.NewSource(200)
	if err != nil {
		t.Fatal(err)
	}
	samples := stream.Drain(src)
	if len(samples) != 200 {
		t.Fatalf("yielded %d", len(samples))
	}
	totalNNZ := 0
	for _, s := range samples {
		if err := s.Validate(cfg.Dim); err != nil {
			t.Fatalf("invalid sample: %v", err)
		}
		totalNNZ += s.NNZ()
		for _, v := range s.Val {
			if v != 1 {
				t.Fatal("URL values must be binary")
			}
		}
	}
	avg := float64(totalNNZ) / 200
	// Expected ≈ ActiveGroups*GroupSize*FireProb + BackgroundNZ ≈ 61.
	if avg < 30 || avg > 90 {
		t.Errorf("avg nnz = %.1f outside expected band", avg)
	}
	// Deterministic by seed.
	src2, _ := cfg.NewSource(200)
	s2 := stream.Drain(src2)
	for i := range s2 {
		if len(s2[i].Idx) != len(samples[i].Idx) {
			t.Fatal("same seed should reproduce stream")
		}
	}
}

func TestURLSignalPairsCoFire(t *testing.T) {
	cfg := DefaultURLConfig(300, 13)
	sig := cfg.SignalPairs()
	wantPairs := cfg.Groups * cfg.GroupSize * (cfg.GroupSize - 1) / 2
	if len(sig) != wantPairs {
		t.Fatalf("signal pairs = %d, want %d", len(sig), wantPairs)
	}
	// Empirically: conditioned on A firing, B fires far more often than
	// the background rate.
	src, _ := cfg.NewSource(3000)
	pr := sig[0]
	bothCount, aCount := 0, 0
	for {
		s, ok := src.Next()
		if !ok {
			break
		}
		d := s.Dense(cfg.Dim)
		if d[pr.A] != 0 {
			aCount++
			if d[pr.B] != 0 {
				bothCount++
			}
		}
	}
	if aCount == 0 {
		t.Fatal("signal feature never fired")
	}
	if frac := float64(bothCount) / float64(aCount); frac < 0.5 {
		t.Errorf("co-fire fraction %.2f, want strong", frac)
	}
}

func TestDNAConfigValidation(t *testing.T) {
	good := DefaultDNAConfig(5, 42)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []DNAConfig{
		{K: 1, ReadLen: 100, Motifs: 2, MotifLen: 10, MotifProb: 0.5},
		{K: 13, ReadLen: 100, Motifs: 2, MotifLen: 20, MotifProb: 0.5},
		{K: 5, ReadLen: 100, Motifs: 2, MotifLen: 4, MotifProb: 0.5},
		{K: 5, ReadLen: 8, Motifs: 2, MotifLen: 10, MotifProb: 0.5},
		{K: 5, ReadLen: 100, Motifs: 0, MotifLen: 10, MotifProb: 0.5},
		{K: 5, ReadLen: 100, Motifs: 2, MotifLen: 10, MotifProb: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if got := (DNAConfig{K: 3}).Dim(); got != 64 {
		t.Errorf("Dim = %d, want 64", got)
	}
}

func TestDNASourceCountsKmers(t *testing.T) {
	cfg := DefaultDNAConfig(4, 42)
	src, err := cfg.NewSource(100)
	if err != nil {
		t.Fatal(err)
	}
	samples := stream.Drain(src)
	if len(samples) != 100 {
		t.Fatalf("yielded %d", len(samples))
	}
	for _, s := range samples {
		if err := s.Validate(cfg.Dim()); err != nil {
			t.Fatalf("invalid sample: %v", err)
		}
		// Total k-mer count equals windows per read.
		total := 0.0
		for _, v := range s.Val {
			total += v
		}
		if int(total) != cfg.ReadLen-cfg.K+1 {
			t.Fatalf("total count = %v, want %d", total, cfg.ReadLen-cfg.K+1)
		}
	}
}

func TestDNASignalPairsCoOccur(t *testing.T) {
	// K must be large enough that background hits of a given k-mer are
	// rare relative to motif occurrences (the paper's k=12 regime).
	cfg := DNAConfig{K: 7, ReadLen: 200, Motifs: 10, MotifLen: 15, MotifProb: 0.5, Seed: 42}
	sig := cfg.SignalPairs()
	if len(sig) == 0 {
		t.Fatal("no signal pairs")
	}
	for _, pr := range sig {
		if pr.A >= pr.B || pr.B >= cfg.Dim() {
			t.Fatalf("invalid pair %+v", pr)
		}
	}
	// Motif k-mers co-occur: when A appears, B should usually appear too.
	src, _ := cfg.NewSource(2000)
	pr := sig[0]
	both, aOnly := 0, 0
	for {
		s, ok := src.Next()
		if !ok {
			break
		}
		hasA, hasB := false, false
		for _, ix := range s.Idx {
			if ix == pr.A {
				hasA = true
			}
			if ix == pr.B {
				hasB = true
			}
		}
		if hasA {
			if hasB {
				both++
			} else {
				aOnly++
			}
		}
	}
	if both == 0 {
		t.Fatal("motif pair never co-occurred")
	}
	if frac := float64(both) / float64(both+aOnly); frac < 0.5 {
		t.Errorf("co-occurrence fraction %.2f too low", frac)
	}
}

func TestKmerCodes(t *testing.T) {
	// bases ACGT = 0,1,2,3; k=2 over [0,1,2] gives codes 0*4+1=1, 1*4+2=6.
	got := kmerCodes([]byte{0, 1, 2}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 6 {
		t.Errorf("kmerCodes = %v", got)
	}
	if kmerCodes([]byte{0}, 2) != nil {
		t.Error("short input should give nil")
	}
	// Duplicates reported once.
	got = kmerCodes([]byte{0, 0, 0}, 2)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("dedup failed: %v", got)
	}
}

func TestPairRefKey(t *testing.T) {
	pr := PairRef{2, 5}
	if pr.Key(10) == 0 && (pr.A != 0 || pr.B != 1) {
		t.Error("Key should match pairs.Key")
	}
}
