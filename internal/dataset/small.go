package dataset

import (
	"math"
	"math/rand"
)

// factorSpec parameterizes the latent-factor generator behind the
// gisette/epsilon/cifar10-like datasets: features load on disjoint
// latent modules (planted strong correlations), a weak global factor
// gives every pair a small background correlation (the continuous
// spectrum of Figure 1), and optional zero-inflation / heavy tails match
// the marginal shape of the original data.
type factorSpec struct {
	name       string
	alpha      float64 // Table 3 suggested sparsity
	nModules   int
	moduleMin  int
	moduleMax  int
	loadingLo  float64
	loadingHi  float64
	background float64 // loading std on the weak global factor
	zeroProb   float64 // zero-inflation probability
	heavyTail  float64 // >1 stretches tails: v = sign(g)·|g|^heavyTail
	valueShift float64 // non-zero feature mean offset
}

func (fs factorSpec) generate(sc Scale, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d, n := sc.Dim, sc.Samples

	// Assign module memberships over a prefix of the features.
	type member struct {
		module int
		w      float64
	}
	members := make([]member, d)
	for j := range members {
		members[j] = member{module: -1}
	}
	feat := 0
	for mIdx := 0; mIdx < fs.nModules && feat < d/2; mIdx++ {
		size := fs.moduleMin
		if fs.moduleMax > fs.moduleMin {
			size += rng.Intn(fs.moduleMax - fs.moduleMin + 1)
		}
		for s := 0; s < size && feat < d/2; s++ {
			members[feat] = member{
				module: mIdx,
				w:      fs.loadingLo + (fs.loadingHi-fs.loadingLo)*rng.Float64(),
			}
			feat++
		}
	}
	bg := make([]float64, d)
	for j := range bg {
		bg[j] = fs.background * rng.NormFloat64()
	}

	rows := make([][]float64, n)
	factors := make([]float64, fs.nModules)
	for t := 0; t < n; t++ {
		row := make([]float64, d)
		for mIdx := range factors {
			factors[mIdx] = rng.NormFloat64()
		}
		global := rng.NormFloat64()
		for j := 0; j < d; j++ {
			v := bg[j] * global
			noiseVar := 1 - bg[j]*bg[j]
			if mb := members[j]; mb.module >= 0 {
				v += mb.w * factors[mb.module]
				noiseVar -= mb.w * mb.w
			}
			if noiseVar < 0.05 {
				noiseVar = 0.05
			}
			v += math.Sqrt(noiseVar) * rng.NormFloat64()
			if fs.heavyTail > 1 {
				v = math.Copysign(math.Pow(math.Abs(v), fs.heavyTail), v)
			}
			if fs.zeroProb > 0 && rng.Float64() < fs.zeroProb {
				v = 0
			} else {
				v += fs.valueShift
			}
			row[j] = v
		}
		rows[t] = row
	}
	return &Dataset{Name: fs.name, Dim: d, Alpha: fs.alpha, Rows: rows}
}

// GisetteLike mirrors the gisette workload: dense-ish heavy-tailed
// features with many strongly-correlated module pairs (handwritten-digit
// pixel derivatives co-vary) and α = 2% (Table 3).
func GisetteLike(sc Scale, seed int64) *Dataset {
	return factorSpec{
		name:       "gisette",
		alpha:      0.02,
		nModules:   sc.Dim / 12,
		moduleMin:  3,
		moduleMax:  6,
		loadingLo:  0.75,
		loadingHi:  0.98,
		background: 0.12,
		zeroProb:   0.35,
		heavyTail:  1.3,
	}.generate(sc, seed)
}

// EpsilonLike mirrors epsilon: dense normalized features, a broad band
// of moderate correlations, α = 10%.
func EpsilonLike(sc Scale, seed int64) *Dataset {
	return factorSpec{
		name:       "epsilon",
		alpha:      0.10,
		nModules:   sc.Dim / 25,
		moduleMin:  8,
		moduleMax:  14,
		loadingLo:  0.45,
		loadingHi:  0.9,
		background: 0.18,
		zeroProb:   0,
		heavyTail:  1,
	}.generate(sc, seed)
}

// CIFAR10Like mirrors cifar10 pixels: a smooth AR(1) random field gives
// neighbouring features geometrically decaying correlation; selecting a
// random feature subset (as the paper selects 1000 of 3072 pixels)
// produces a continuous correlation spectrum with a strong head.
// α = 10%.
func CIFAR10Like(sc Scale, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d, n := sc.Dim, sc.Samples
	const rho = 0.88
	// Features live on a lattice 3× larger; pick d sorted positions.
	latticeLen := 3 * d
	positions := rng.Perm(latticeLen)[:d]
	// Sort positions ascending so nearby features remain nearby.
	for i := 1; i < len(positions); i++ {
		for j := i; j > 0 && positions[j-1] > positions[j]; j-- {
			positions[j-1], positions[j] = positions[j], positions[j-1]
		}
	}
	rows := make([][]float64, n)
	chain := make([]float64, latticeLen)
	scale := math.Sqrt(1 - rho*rho)
	for t := 0; t < n; t++ {
		chain[0] = rng.NormFloat64()
		for i := 1; i < latticeLen; i++ {
			chain[i] = rho*chain[i-1] + scale*rng.NormFloat64()
		}
		row := make([]float64, d)
		for j, pos := range positions {
			row[j] = chain[pos]
		}
		rows[t] = row
	}
	return &Dataset{Name: "cifar10", Dim: d, Alpha: 0.10, Rows: rows}
}

// topicSpec parameterizes the sparse text-like generator behind
// rcv1/sector: documents draw a handful of topics; each topic owns a
// disjoint word set whose members co-occur, producing correlated term
// pairs, with power-law document lengths and tf-style values.
type topicSpec struct {
	name         string
	alpha        float64
	nTopics      int
	wordsPer     int
	topicsPerDoc int
	wordFireProb float64
	bgWords      int
}

func (ts topicSpec) generate(sc Scale, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d, n := sc.Dim, sc.Samples
	rows := make([][]float64, n)
	nTopics := ts.nTopics
	if nTopics*ts.wordsPer > d {
		nTopics = d / ts.wordsPer
	}
	tf := func() float64 { return math.Log1p(float64(1 + rng.Intn(5))) }
	for t := 0; t < n; t++ {
		row := make([]float64, d)
		for k := 0; k < ts.topicsPerDoc; k++ {
			topic := rng.Intn(nTopics)
			base := topic * ts.wordsPer
			for w := 0; w < ts.wordsPer; w++ {
				if rng.Float64() < ts.wordFireProb {
					row[base+w] = tf()
				}
			}
		}
		for b := 0; b < ts.bgWords; b++ {
			row[rng.Intn(d)] = tf()
		}
		rows[t] = row
	}
	return &Dataset{Name: ts.name, Dim: d, Alpha: ts.alpha, Rows: rows}
}

// RCV1Like mirrors rcv1: very sparse tf values, topical co-occurrence,
// α = 0.5%.
func RCV1Like(sc Scale, seed int64) *Dataset {
	return topicSpec{
		name:         "rcv1",
		alpha:        0.005,
		nTopics:      sc.Dim / 15,
		wordsPer:     6,
		topicsPerDoc: 3,
		wordFireProb: 0.8,
		bgWords:      sc.Dim / 12,
	}.generate(sc, seed)
}

// SectorLike mirrors sector: sparser still, smaller topics, α = 0.5%.
func SectorLike(sc Scale, seed int64) *Dataset {
	return topicSpec{
		name:         "sector",
		alpha:        0.005,
		nTopics:      sc.Dim / 10,
		wordsPer:     4,
		topicsPerDoc: 2,
		wordFireProb: 0.85,
		bgWords:      sc.Dim / 20,
	}.generate(sc, seed)
}
