package dataset

import (
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// Simulation builds the paper's §6.2 simulation model: a Gaussian
// dataset whose correlation matrix is sparse, with a proportion alpha of
// the d(d−1)/2 pairs carrying signal correlations distributed over
// [0.5, 1] and every other pair exactly zero.
//
// Construction: features are grouped into disjoint modules sharing a
// latent factor; feature j in module b is x_j = w_j z_b + √(1−w_j²) ε_j
// with loadings w_j ∈ [√0.5, 1], so within-module pairs have correlation
// w_a·w_b ∈ [0.5, 1] (varying per pair, as in the paper) and
// cross-module pairs are independent. The population correlation matrix
// is attached as analytic ground truth.
func Simulation(d, n int, alpha float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	p := float64(d) * float64(d-1) / 2
	targetPairs := alpha * p

	// Choose the module size m so the modules fit in at most half the
	// features: modules of size m yield m(m−1)/2 signal pairs each.
	m := 3
	for {
		pairsPer := float64(m*(m-1)) / 2
		blocks := targetPairs / pairsPer
		if float64(m)*blocks <= float64(d)/2 || m >= d/2 {
			break
		}
		m++
	}
	pairsPer := m * (m - 1) / 2
	nBlocks := int(math.Round(targetPairs / float64(pairsPer)))
	if nBlocks < 1 {
		nBlocks = 1
	}
	if nBlocks*m > d {
		nBlocks = d / m
	}

	// Loadings per feature in a module: w ∈ [√0.5, 1] ⇒ pair corr ≥ 0.5.
	wLo := math.Sqrt(0.5)
	loadings := make([]float64, nBlocks*m)
	for i := range loadings {
		loadings[i] = wLo + (1-wLo)*rng.Float64()
	}

	// Population correlation ground truth.
	corr := matrix.NewSym(d)
	for i := 0; i < d; i++ {
		corr.Set(i, i, 1)
	}
	for b := 0; b < nBlocks; b++ {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				fa, fb := b*m+i, b*m+j
				corr.Set(fa, fb, loadings[b*m+i]*loadings[b*m+j])
			}
		}
	}

	rows := make([][]float64, n)
	for t := 0; t < n; t++ {
		row := make([]float64, d)
		for b := 0; b < nBlocks; b++ {
			z := rng.NormFloat64()
			for i := 0; i < m; i++ {
				w := loadings[b*m+i]
				row[b*m+i] = w*z + math.Sqrt(1-w*w)*rng.NormFloat64()
			}
		}
		for j := nBlocks * m; j < d; j++ {
			row[j] = rng.NormFloat64()
		}
		rows[t] = row
	}

	return &Dataset{
		Name:     "simulation",
		Dim:      d,
		Alpha:    alpha,
		Rows:     rows,
		trueCorr: corr,
	}
}

// SimulationSignalPairs returns the number of planted signal pairs in a
// simulation built with the same parameters (for test assertions).
func SimulationSignalPairs(ds *Dataset) int {
	c := ds.trueCorr
	count := 0
	for i := 0; i < ds.Dim; i++ {
		for j := i + 1; j < ds.Dim; j++ {
			if c.At(i, j) != 0 {
				count++
			}
		}
	}
	return count
}
