// Package sketchapi defines the minimal contract shared by all sketching
// engines in this repository: vanilla Count Sketch, ASCS, Augmented
// Sketch, and Cold Filter. The covariance streaming layer drives any of
// them interchangeably, which is how the paper's head-to-head comparisons
// (§8) are orchestrated.
package sketchapi

import "io"

// Ingestor consumes a stream of (key, increment) observations indexed by
// a time step t = 1..T and answers point estimates of the per-key mean.
//
// The contract mirrors the paper's setup: at each time t the stream
// carries values X_i^{(t)} for a subset of keys i; engines internally
// scale by 1/T so that the estimate for key i after step t equals
// (t/T)·X̄_i^{(t)} and, at t = T, the estimated mean μ̂_i.
type Ingestor interface {
	// BeginStep announces the 1-based time step of the observations that
	// follow. Steps must be non-decreasing. Engines use it to advance
	// sampling thresholds (ASCS) or other schedules.
	BeginStep(t int)
	// Offer presents the observation X_i^{(t)} = x for key i = key.
	// Engines decide whether and how to absorb it.
	Offer(key uint64, x float64)
	// Estimate returns the engine's current estimate of μ_i scaled by
	// t/T (so it is the final-mean estimate once the stream completes).
	Estimate(key uint64) float64
	// Bytes reports the engine's approximate memory footprint.
	Bytes() int
	// Name identifies the engine in reports ("CS", "ASCS", ...).
	Name() string
}

// OfferEstimator is the fused ingest fast path: every engine in this
// repository hashes an offered key to the same table cells whether it is
// gating (ASCS τ test, Cold Filter saturation test), inserting, or
// answering the estimate the retrieval tracker scores candidates with —
// so one locate can serve all three. The per-call contract is exact
// equivalence: OfferEstimate(key, x) leaves the engine in the bit-same
// state as Offer(key, x) and returns the bit-same value a subsequent
// Estimate(key) would, while hashing the key once instead of up to three
// times. All four engines (CS MeanSketch, ASCS core.Engine, ASketch,
// ColdFilter) implement it; covstream and the serving shards prefer it
// when present and fall back to Offer+Estimate otherwise.
type OfferEstimator interface {
	Ingestor
	// OfferEstimate presents X_i^{(t)} = x for key i and returns the
	// engine's post-offer estimate for the key, plus whether the
	// observation was absorbed (false only when an admission gate — the
	// ASCS τ test — rejected it; engines without a gate always absorb).
	OfferEstimate(key uint64, x float64) (est float64, admitted bool)
	// OfferPairs is the batch form for one time step: it offers every
	// (keys[i], xs[i]) in order, amortizing interface dispatch and
	// keeping the slot buffer hot. When ests is non-nil it must have
	// len(keys) and is filled with the per-offer post-estimates, exactly
	// as len(keys) OfferEstimate calls would produce them; nil skips the
	// estimates (pure ingest).
	OfferPairs(keys []uint64, xs []float64, ests []float64)
}

// Snapshotter is an Ingestor whose full state (schedule position,
// counters, table contents) can be serialized for checkpoint/resume.
// The CS and ASCS engines implement it; the serving layer
// (internal/shard) requires it for crash recovery, and engines that do
// not serialize (ASketch, Cold Filter) are rejected there at
// construction time rather than failing on the first snapshot.
type Snapshotter interface {
	Ingestor
	// WriteTo serializes the engine in a self-describing binary format.
	WriteTo(w io.Writer) (int64, error)
}
