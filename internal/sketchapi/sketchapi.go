// Package sketchapi defines the minimal contract shared by all sketching
// engines in this repository: vanilla Count Sketch, ASCS, Augmented
// Sketch, and Cold Filter. The covariance streaming layer drives any of
// them interchangeably, which is how the paper's head-to-head comparisons
// (§8) are orchestrated.
package sketchapi

import (
	"fmt"
	"io"
	"math"
)

// Ingestor consumes a stream of (key, increment) observations indexed by
// a time step t = 1..T and answers point estimates of the per-key mean.
//
// The contract mirrors the paper's setup: at each time t the stream
// carries values X_i^{(t)} for a subset of keys i; engines internally
// scale by 1/T so that the estimate for key i after step t equals
// (t/T)·X̄_i^{(t)} and, at t = T, the estimated mean μ̂_i.
type Ingestor interface {
	// BeginStep announces the 1-based time step of the observations that
	// follow. Steps must be non-decreasing. Engines use it to advance
	// sampling thresholds (ASCS) or other schedules.
	BeginStep(t int)
	// Offer presents the observation X_i^{(t)} = x for key i = key.
	// Engines decide whether and how to absorb it.
	Offer(key uint64, x float64)
	// Estimate returns the engine's current estimate of μ_i scaled by
	// t/T (so it is the final-mean estimate once the stream completes).
	Estimate(key uint64) float64
	// Bytes reports the engine's approximate memory footprint.
	Bytes() int
	// Name identifies the engine in reports ("CS", "ASCS", ...).
	Name() string
}

// OfferEstimator is the fused ingest fast path: every engine in this
// repository hashes an offered key to the same table cells whether it is
// gating (ASCS τ test, Cold Filter saturation test), inserting, or
// answering the estimate the retrieval tracker scores candidates with —
// so one locate can serve all three. The per-call contract is exact
// equivalence: OfferEstimate(key, x) leaves the engine in the bit-same
// state as Offer(key, x) and returns the bit-same value a subsequent
// Estimate(key) would, while hashing the key once instead of up to three
// times. All four engines (CS MeanSketch, ASCS core.Engine, ASketch,
// ColdFilter) implement it; covstream and the serving shards prefer it
// when present and fall back to Offer+Estimate otherwise.
type OfferEstimator interface {
	Ingestor
	// OfferEstimate presents X_i^{(t)} = x for key i and returns the
	// engine's post-offer estimate for the key, plus whether the
	// observation was absorbed (false only when an admission gate — the
	// ASCS τ test — rejected it; engines without a gate always absorb).
	OfferEstimate(key uint64, x float64) (est float64, admitted bool)
	// OfferPairs is the batch form for one time step: it offers every
	// (keys[i], xs[i]) in order, amortizing interface dispatch and
	// keeping the slot buffer hot. When ests is non-nil it must have
	// len(keys) and is filled with the per-offer post-estimates, exactly
	// as len(keys) OfferEstimate calls would produce them; nil skips the
	// estimates (pure ingest).
	OfferPairs(keys []uint64, xs []float64, ests []float64)
}

// RowOfferer is the row-level ingest fast path: covariance streams
// offer pairs row by row — a sample with nonzero features a < b₁ < b₂ …
// contributes, for each row feature a, the pair keys rowBase(a) + b for
// every later feature b — so the natural batch unit is the row (and the
// whole sample), not the pair. A RowOfferer receives the shared row
// base and the partner list once and expands the pair keys internally
// (a vector add per group) straight into its wave pipeline, instead of
// the caller enumerating keys into an intermediate pair buffer.
//
// The contract is exact equivalence: OfferRow(rowBase, partners, x,
// ests) leaves the engine in the bit-same state as OfferPairs(keys, x,
// ests) with keys[j] = rowBase + partners[j] (a wrapping uint64 add —
// pairs.RowBase(0, d) is the two's complement of −1, and base+partner
// wraps back to the intended pair index), and fills ests identically.
// All four engines implement it; covstream and the shard workers prefer
// it when present.
type RowOfferer interface {
	OfferEstimator
	// OfferRow offers partner j of one row as the pair
	// (rowBase+partners[j], x[j]), in order. x must have len(partners);
	// ests is nil (pure ingest) or len(partners), filled with the
	// per-offer post-estimates exactly as OfferEstimate would return
	// them.
	OfferRow(rowBase uint64, partners []uint64, x []float64, ests []float64)
	// OfferRows offers one sample's whole upper triangle: for each row
	// i in [0, len(ids)-1), every pair (bases[i]+ids[j], left[i]*right[j])
	// for j in (i, len(ids)), in row-major order — equivalent to the
	// corresponding OfferRow sequence with the caller's per-pair
	// increments materialized as left[i]·right[j], but letting the
	// engine pack wave groups across row boundaries so short rows do
	// not drain the pipeline. bases[i] is the row base of ids[i] and is
	// read only for i < len(ids)-1 (the last id is only ever a partner),
	// so len(bases) and len(left) need only be len(ids)-1; right must
	// have len(ids). ests is nil or holds m(m−1)/2 entries (m =
	// len(ids)) in the same row-major pair order.
	OfferRows(bases, ids []uint64, left, right []float64, ests []float64)
}

// WaveTuner exposes the group size G of an engine's wave-pipelined
// OfferPairs path (staged group ingest: group hashing → cell
// touch/prefetch → gather → gate/scatter; see countsketch.WaveGroup
// for the G rationale). All four engines implement it. g ≤ 1 selects
// the scalar per-pair loop — the wave path's differential reference,
// and the "batch" arm of the ingest benchmarks. Both settings produce
// bit-identical engine state and estimates; the knob trades
// memory-level parallelism against scratch footprint only.
//
// SetWaveGroup is not safe for concurrent use with offers; set it
// before ingest starts (the differential tests and benches do).
type WaveTuner interface {
	Ingestor
	// SetWaveGroup sets the group size G (clamped to a sane maximum);
	// g ≤ 1 disables grouping.
	SetWaveGroup(g int)
	// WaveGroup returns the group size in force (1 = scalar).
	WaveGroup() int
}

// Decayer is the unbounded-stream capability: an engine constructed in
// exponential-decay mode ages every absorbed observation by a factor
// λ ∈ (0,1] per time step, so the estimate for key i converges to the
// λ-weighted mean Σ_k λ^{t−k}·X_i^{(k)} / N_eff(t) instead of the
// fixed-horizon mean — the stream no longer needs a horizon T at all.
// λ = 1 keeps the fixed-horizon arithmetic bit-for-bit (nothing ages)
// while still declaring the engine unbounded, which is what lets the
// differential tests pin the decay path against the classic one.
//
// All four engines implement Decayer; engines built by the classic
// constructors report Decaying() == false and behave exactly as before.
type Decayer interface {
	Ingestor
	// Decaying reports whether the engine runs in exponential-decay
	// (unbounded-stream) mode.
	Decaying() bool
	// DecayFactor returns the per-step decay factor λ (1 when the engine
	// is not decaying, or is unbounded with aging disabled).
	DecayFactor() float64
	// EffectiveSamples returns N_eff(t) = Σ_{k=1..t} λ^{t−k} =
	// (1−λ^t)/(1−λ), the decayed mass the current estimates are built
	// from. It equals t exactly when λ = 1 (and in fixed-horizon mode)
	// and saturates at the effective window W = 1/(1−λ) as t → ∞.
	EffectiveSamples() float64
}

// AdvanceEffective advances an effective-sample count by `steps` decayed
// steps (N ← λ·N + 1 per step), using the closed form
// N·λ^s + (1−λ^s)/(1−λ) so skipped steps cost one Pow, not a loop.
// λ = 1 reduces to N + steps exactly (pure float additions of integers),
// which is what keeps the λ=1 schedule bit-identical to the fixed one.
func AdvanceEffective(neff, lambda float64, steps int) float64 {
	if steps <= 0 {
		return neff
	}
	if lambda == 1 {
		return neff + float64(steps)
	}
	f := lambda
	if steps > 1 {
		f = math.Pow(lambda, float64(steps))
	}
	return neff*f + (1-f)/(1-lambda)
}

// RenormFloor is the shared lazy-decay renormalization floor: when a
// scale accumulator (sketch cells, tracker scores, the ASketch filter)
// drops below it, the owner folds the scale into the stored values.
// One constant so the lazy-decay implementations cannot drift apart.
const RenormFloor = 1e-120

// minDecayFactor floors DecayPow against float64 underflow: λ^steps
// rounds to exactly 0 once steps exceeds ~745 effective windows (for
// any λ), and a zero factor is not a valid scale multiplier. At
// 1e-300 the stored mass folds to (sub)normal zero on the next
// renormalization anyway, so the clamp only removes the panic, not
// any observable mass.
const minDecayFactor = 1e-300

// DecayPow returns λ^steps clamped away from underflow, keeping the
// two hot cases (λ = 1, a single step) free of math.Pow — the
// per-sample decay tick of every engine and shard worker routes
// through it.
func DecayPow(lambda float64, steps int) float64 {
	if lambda == 1 || steps <= 0 {
		return 1
	}
	if steps == 1 {
		return lambda
	}
	f := math.Pow(lambda, float64(steps))
	if f < minDecayFactor {
		// A long-idle engine catching up on a huge step gap: fully aged
		// out, but the factor must stay a positive number.
		f = minDecayFactor
	}
	return f
}

// EffectiveWindow returns W = 1/(1−λ), the asymptotic effective sample
// count of decay factor λ (Inf at λ = 1: nothing ages out).
func EffectiveWindow(lambda float64) float64 {
	if lambda >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - lambda)
}

// WindowLambda inverts EffectiveWindow: the decay factor whose effective
// window is w samples, λ = 1 − 1/w.
func WindowLambda(w float64) float64 { return 1 - 1/w }

// ValidateDecay checks a decay factor: λ must be in (0,1] and finite.
// It is the one shared guard every decayed constructor routes through.
func ValidateDecay(lambda float64) error {
	if !(lambda > 0) || lambda > 1 || math.IsNaN(lambda) {
		return fmt.Errorf("sketchapi: decay factor must be in (0,1], got %v", lambda)
	}
	return nil
}

// Health is an engine's self-reported operating state for telemetry:
// admission-gate activity and the mass (Σ|x| of raw offered values,
// before any 1/T or decay scaling) it admitted versus rejected, the
// gate position, decay maintenance, and wave-pipeline staging counts.
// All counters are cumulative since construction; engines without a
// given mechanism leave its fields zero (e.g. CS has no gate, so every
// offer contributes to AdmittedMass and the Gate* counts stay 0).
//
// The struct is a plain value snapshot: engines own the underlying
// counters single-writer on their ingest path (no atomics — the
// Ingestor contract already serializes mutation) and Health() copies
// them out. Callers needing a coherent read must call it from the
// goroutine that owns the engine (the shard workers do).
type Health struct {
	// ExplorationInserts counts pre-T0 inserts (gate admits all).
	ExplorationInserts uint64
	// GateOffered / GateAdmitted count sampling-period gate decisions.
	GateOffered  uint64
	GateAdmitted uint64
	// AdmittedMass / RejectedMass accumulate Σ|x| by gate outcome.
	AdmittedMass float64
	RejectedMass float64
	// Tau is the current admission threshold (0 for ungated engines and
	// during exploration).
	Tau float64
	// DecayRenorms counts lazy-decay renormalization sweeps.
	DecayRenorms uint64
	// WaveGroups counts groups staged by the wave-pipelined OfferPairs
	// path; the WaveFallback* counters split out groups that replayed
	// the scalar per-pair order, by cause: an intra-group cell conflict,
	// the exploration period, or an estimate-shape contract that must
	// recompute from the table per pair.
	WaveGroups              uint64
	WaveFallbackConflict    uint64
	WaveFallbackExploration uint64
	WaveFallbackShape       uint64
}

// HealthReporter is implemented by engines that expose Health. All four
// engines in this repository do; the serving layer publishes the
// snapshot per shard and /metrics aggregates it.
type HealthReporter interface {
	Ingestor
	Health() Health
}

// Snapshotter is an Ingestor whose full state (schedule position,
// counters, table contents) can be serialized for checkpoint/resume.
// All four engines (CS, ASCS, ASketch, Cold Filter) implement it, which
// is what makes every engine servable: the serving layer
// (internal/shard) requires it for crash recovery.
type Snapshotter interface {
	Ingestor
	// WriteTo serializes the engine in a self-describing binary format.
	WriteTo(w io.Writer) (int64, error)
}

// Folder is the elastic-memory capability: an engine whose sketch tables
// can be compressed in place by the sign-composed linear fold map
// (countsketch.Fold) and re-expanded by value replication. Folding
// halves the table width per level, trading collision noise (variance
// doubles per level) for memory; unfolding restores full-resolution
// ingest with estimates bit-identical across the transition. All four
// engines implement Folder; the serving layer uses it to fold idle
// shards in place and to write pre-folded snapshots.
//
// Fold/Unfold are mutations and follow the Ingestor synchronization
// contract (single writer); the shard workers call them only between
// batches, so the ingest hot path never observes a mid-fold table.
type Folder interface {
	Ingestor
	// Fold compresses the tables by `levels` additional width halvings.
	// It fails if the configured range does not divide by 2^levels more
	// times (see MaxFoldLevels).
	Fold(levels int) error
	// Unfold re-expands to full resolution by value replication; no-op
	// when already unfolded.
	Unfold()
	// FoldLevel returns the current fold level (0 = full resolution).
	FoldLevel() int
	// MaxFoldLevels returns the deepest absolute fold level supported by
	// the engine's table geometry (for multi-table engines, the
	// shallowest of the layers).
	MaxFoldLevels() int
}

// FoldedWriter is implemented by engines that can serialize their state
// as if folded to a target level without mutating the live tables — the
// pre-folded snapshot path. Engines clamp the level to MaxFoldLevels.
type FoldedWriter interface {
	Snapshotter
	// WriteToFolded serializes like WriteTo with the sketch tables folded
	// to the given absolute level.
	WriteToFolded(w io.Writer, level int) (int64, error)
}
