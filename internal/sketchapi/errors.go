package sketchapi

import "errors"

// Error taxonomy shared by every layer of the serving stack. The
// categories below are the *classes* transports branch on — a layer
// wraps them into richer sentinels (e.g. shard.ErrQueueFull wraps
// ErrOverload) so callers can match either the specific condition or
// the class with errors.Is. Keeping the taxonomy here, one package
// below both shard and server, is what lets the HTTP status mapping
// and the load generator's accounting agree on what an error *means*
// without importing each other.
var (
	// ErrOverload classifies resource-exhaustion rejections: the work
	// was refused (not queued, not partially applied) because a bounded
	// resource was at capacity. The correct client response is to back
	// off and retry; transports surface it as HTTP 429 + Retry-After.
	ErrOverload = errors.New("overloaded")

	// ErrDeadline classifies deadline/cancellation terminations: the
	// caller's context expired before the work completed. The request
	// terminated within its budget by construction — the system sheds
	// the wait, not the invariant. Transports surface it as HTTP 503.
	ErrDeadline = errors.New("deadline exceeded")

	// ErrCorrupt classifies integrity failures: persisted state that
	// fails its checksum or structural validation. Loading must fail
	// closed — serving corrupt sketch state silently is the one failure
	// mode a monitoring stack cannot see.
	ErrCorrupt = errors.New("corrupt state")
)
