package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/stream"
)

func TestMeanTrueScore(t *testing.T) {
	ranked := []uint64{5, 2, 9}
	score := func(k uint64) float64 { return float64(k) }
	if got := MeanTrueScore(ranked, 2, score); got != 3.5 {
		t.Errorf("MeanTrueScore = %v, want 3.5", got)
	}
	if got := MeanTrueScore(ranked, 10, score); math.Abs(got-16.0/3) > 1e-12 {
		t.Errorf("clamped MeanTrueScore = %v", got)
	}
	if !math.IsNaN(MeanTrueScore(nil, 3, score)) {
		t.Error("empty ranked should be NaN")
	}
}

func TestMaxF1PerfectRanking(t *testing.T) {
	// Signals ranked first: F1 = 1 at the boundary.
	ranked := []uint64{1, 2, 3, 10, 11, 12}
	isSig := func(k uint64) bool { return k < 4 }
	if got := MaxF1(ranked, 3, isSig); got != 1 {
		t.Errorf("MaxF1 = %v, want 1", got)
	}
}

func TestMaxF1Interleaved(t *testing.T) {
	// Ranking: S N S N. Signals total = 2.
	ranked := []uint64{1, 100, 2, 101}
	isSig := func(k uint64) bool { return k < 10 }
	// Prefixes: F1 = 2/3, 1/2, 4/5, 2/3 → max 0.8.
	if got := MaxF1(ranked, 2, isSig); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("MaxF1 = %v, want 0.8", got)
	}
}

func TestMaxF1Degenerate(t *testing.T) {
	if !math.IsNaN(MaxF1(nil, 2, func(uint64) bool { return true })) {
		t.Error("empty ranking should be NaN")
	}
	if !math.IsNaN(MaxF1([]uint64{1}, 0, func(uint64) bool { return true })) {
		t.Error("zero signals should be NaN")
	}
	// No signals in ranking → best F1 is 0.
	if got := MaxF1([]uint64{5, 6}, 2, func(uint64) bool { return false }); got != 0 {
		t.Errorf("MaxF1 with no hits = %v", got)
	}
}

func TestPrecisionRecallAt(t *testing.T) {
	ranked := []uint64{1, 100, 2, 101}
	isSig := func(k uint64) bool { return k < 10 }
	p, r := PrecisionRecallAt(ranked, 3, 2, isSig)
	if math.Abs(p-2.0/3) > 1e-12 || r != 1 {
		t.Errorf("P/R = %v/%v", p, r)
	}
	p, r = PrecisionRecallAt(ranked, 0, 2, isSig)
	if !math.IsNaN(p) || !math.IsNaN(r) {
		t.Error("k=0 should be NaN")
	}
}

func TestTopTrueKeys(t *testing.T) {
	universe := []uint64{0, 1, 2, 3, 4}
	score := func(k uint64) float64 { return float64(k % 3) } // scores 0,1,2,0,1
	top := TopTrueKeys(universe, 2, score)
	if len(top) != 2 || !top[2] || !top[1] {
		t.Errorf("TopTrueKeys = %v", top)
	}
	all := TopTrueKeys(universe, 99, score)
	if len(all) != 5 {
		t.Errorf("clamped size = %d", len(all))
	}
}

func TestFractionSizesAndLabels(t *testing.T) {
	sizes := FractionSizes(1000, 0.1)
	// αp = 100 → sizes 1,5,10,25,50,100.
	want := []int{1, 5, 10, 25, 50, 100}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("sizes[%d] = %d, want %d", i, sizes[i], want[i])
		}
	}
	tiny := FractionSizes(10, 0.01)
	for _, s := range tiny {
		if s < 1 {
			t.Error("sizes must clamp to ≥ 1")
		}
	}
	if FractionLabel(1) != "αp" || FractionLabel(0.05) != "0.05·αp" {
		t.Errorf("labels: %q %q", FractionLabel(1), FractionLabel(0.05))
	}
}

func TestSNRProbeMeasuresPlainCS(t *testing.T) {
	// For vanilla CS everything is admitted: the measured ratio over a
	// window equals Σ signal²/Σ noise² of the offered values.
	ms, err := countsketch.NewMeanSketch(countsketch.Config{Tables: 3, Range: 64, Seed: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewSNRProbe(ms, func(k uint64) bool { return k == 0 }, 5)
	for step := 1; step <= 10; step++ {
		probe.BeginStep(step)
		probe.Offer(0, 2) // signal: energy 4 per step
		probe.Offer(1, 1) // noise: energy 1 per step
	}
	pts := probe.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	for _, pt := range pts {
		if math.Abs(pt.SNR-4) > 1e-12 {
			t.Errorf("SNR = %v, want 4", pt.SNR)
		}
	}
	if pts[0].T != 5 || pts[1].T != 10 {
		t.Errorf("window ends = %d,%d", pts[0].T, pts[1].T)
	}
	if probe.Name() != "CS" || probe.Bytes() != ms.Bytes() {
		t.Error("probe should forward Name/Bytes")
	}
	if probe.Estimate(0) != ms.Estimate(0) {
		t.Error("probe should forward Estimate")
	}
}

type gateEngine struct {
	*countsketch.MeanSketch
	allow map[uint64]bool
}

func (g *gateEngine) Admits(key uint64) bool { return g.allow[key] }

func TestSNRProbeRespectsAdmits(t *testing.T) {
	ms, _ := countsketch.NewMeanSketch(countsketch.Config{Tables: 3, Range: 64, Seed: 1}, 4)
	g := &gateEngine{MeanSketch: ms, allow: map[uint64]bool{0: true}}
	probe := NewSNRProbe(g, func(k uint64) bool { return k == 0 }, 4)
	for step := 1; step <= 4; step++ {
		probe.BeginStep(step)
		probe.Offer(0, 1) // admitted signal
		probe.Offer(1, 9) // blocked noise: must not count
	}
	pts := probe.Points()
	if len(pts) != 1 {
		t.Fatalf("points = %v", pts)
	}
	// Noise sum is zero → ratio undefined (NaN), because nothing noisy
	// was admitted.
	if !math.IsNaN(pts[0].SNR) {
		t.Errorf("SNR = %v, want NaN (no admitted noise)", pts[0].SNR)
	}
}

func TestExactPairCorrAgainstDense(t *testing.T) {
	// Cross-check the streaming pair correlation against the full matrix
	// computed densely.
	const d, n = 12, 800
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		z := rng.NormFloat64()
		rows[i][0] = z
		rows[i][1] = 0.8*z + 0.6*rng.NormFloat64()
		for j := 2; j < d; j++ {
			if rng.Float64() < 0.6 {
				rows[i][j] = rng.NormFloat64()
			}
		}
	}
	prs := []dataset.PairRef{{A: 0, B: 1}, {A: 2, B: 3}, {A: 5, B: 9}}
	got, err := ExactPairCorr(stream.NewMatrixSource(rows), prs)
	if err != nil {
		t.Fatal(err)
	}
	// Dense reference.
	for _, pr := range prs {
		var xs, ys []float64
		for _, r := range rows {
			xs = append(xs, r[pr.A])
			ys = append(ys, r[pr.B])
		}
		mx, my := mean(xs), mean(ys)
		var cov, vx, vy float64
		for i := range xs {
			cov += (xs[i] - mx) * (ys[i] - my)
			vx += (xs[i] - mx) * (xs[i] - mx)
			vy += (ys[i] - my) * (ys[i] - my)
		}
		want := cov / math.Sqrt(vx*vy)
		if math.Abs(got[pr]-want) > 1e-9 {
			t.Errorf("pair %+v: %v vs %v", pr, got[pr], want)
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestExactPairCorrErrors(t *testing.T) {
	if _, err := ExactPairCorr(stream.NewMatrixSource(nil), []dataset.PairRef{{A: 0, B: 1}}); err == nil {
		t.Error("empty stream should error")
	}
	if _, err := ExactPairCorr(stream.NewMatrixSource([][]float64{{1}, {2}}), []dataset.PairRef{{A: 1, B: 0}}); err == nil {
		t.Error("invalid pair should error")
	}
}

func TestExactPairCorrZeroVariance(t *testing.T) {
	rows := [][]float64{{1, 1}, {1, 2}, {1, 3}}
	got, err := ExactPairCorr(stream.NewMatrixSource(rows), []dataset.PairRef{{A: 0, B: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got[dataset.PairRef{A: 0, B: 1}] != 0 {
		t.Error("zero-variance feature should give 0, not NaN")
	}
}
