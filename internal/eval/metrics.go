// Package eval implements the paper's performance metrics (§3): the mean
// true correlation of the top reported pairs, the max-F1 score for
// signal recovery (Figure 6), precision/recall, the measured SNR(t)
// series of §7 (Figure 5), and exact second-pass correlation of a small
// pair set for the Table 2 scale where the full matrix cannot exist.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// MeanTrueScore returns the average of trueScore over the top-k keys of
// ranked (which must already be sorted by descending estimate). This is
// the paper's "mean correlation of top fraction" metric (Tables 2, 4, 5).
func MeanTrueScore(ranked []uint64, k int, trueScore func(uint64) float64) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k <= 0 {
		return math.NaN()
	}
	s := 0.0
	for _, key := range ranked[:k] {
		s += trueScore(key)
	}
	return s / float64(k)
}

// MaxF1 scans the prefixes of ranked (sorted by descending estimate) and
// returns the maximum F1 score against the signal set of size
// totalSignals, where isSignal labels keys. This is the y-axis of
// Figure 6 ("the maximum F1 score achieved").
func MaxF1(ranked []uint64, totalSignals int, isSignal func(uint64) bool) float64 {
	if totalSignals <= 0 || len(ranked) == 0 {
		return math.NaN()
	}
	best := 0.0
	hits := 0
	for i, key := range ranked {
		if isSignal(key) {
			hits++
		}
		prec := float64(hits) / float64(i+1)
		rec := float64(hits) / float64(totalSignals)
		if prec+rec > 0 {
			if f1 := 2 * prec * rec / (prec + rec); f1 > best {
				best = f1
			}
		}
		// Early exit: even perfect precision ahead cannot beat best once
		// the maximum achievable F1 drops below it.
		if rec == 1 {
			break
		}
	}
	return best
}

// PrecisionRecallAt returns precision and recall of the top-k prefix.
func PrecisionRecallAt(ranked []uint64, k, totalSignals int, isSignal func(uint64) bool) (prec, rec float64) {
	if k > len(ranked) {
		k = len(ranked)
	}
	if k <= 0 || totalSignals <= 0 {
		return math.NaN(), math.NaN()
	}
	hits := 0
	for _, key := range ranked[:k] {
		if isSignal(key) {
			hits++
		}
	}
	return float64(hits) / float64(k), float64(hits) / float64(totalSignals)
}

// TopTrueKeys returns the n keys with the largest trueScore among all of
// universe, defining the ground-truth signal set for F1 evaluation
// (Figure 6 labels its x-axis with "the number of the top signal
// correlations").
func TopTrueKeys(universe []uint64, n int, trueScore func(uint64) float64) map[uint64]bool {
	type kv struct {
		k uint64
		v float64
	}
	all := make([]kv, len(universe))
	for i, k := range universe {
		all[i] = kv{k, trueScore(k)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if n > len(all) {
		n = len(all)
	}
	out := make(map[uint64]bool, n)
	for _, e := range all[:n] {
		out[e.k] = true
	}
	return out
}

// Fractions are the paper's Table 4 evaluation points: top fraction·αp.
var Fractions = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1.0}

// FractionSizes converts the Table 4 fractions into concrete top-k sizes
// for a universe of p pairs with sparsity alpha, clamping to ≥ 1.
func FractionSizes(p int64, alpha float64) []int {
	out := make([]int, len(Fractions))
	for i, f := range Fractions {
		k := int(f * alpha * float64(p))
		if k < 1 {
			k = 1
		}
		out[i] = k
	}
	return out
}

// FractionLabel renders a Table 4 row label such as "0.05·αp".
func FractionLabel(f float64) string {
	if f == 1 {
		return "αp"
	}
	return fmt.Sprintf("%g·αp", f)
}
