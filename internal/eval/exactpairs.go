package eval

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/stream"
)

// ExactPairCorr computes the exact empirical Pearson correlation of the
// requested pairs over a (re-generated) stream — the second pass the
// Table 2 evaluation needs when the full correlation matrix is far too
// large to materialize. Memory is O(#features involved + #pairs).
func ExactPairCorr(src stream.Source, prs []dataset.PairRef) (map[dataset.PairRef]float64, error) {
	feat := map[int]int{} // feature -> slot
	for _, pr := range prs {
		if pr.A >= pr.B {
			return nil, fmt.Errorf("eval: invalid pair %+v", pr)
		}
		for _, f := range []int{pr.A, pr.B} {
			if _, ok := feat[f]; !ok {
				feat[f] = len(feat)
			}
		}
	}
	sum := make([]float64, len(feat))
	sumSq := make([]float64, len(feat))
	prodSum := make([]float64, len(prs))
	cur := make([]float64, len(feat))
	n := 0
	for {
		s, ok := src.Next()
		if !ok {
			break
		}
		n++
		for i := range cur {
			cur[i] = 0
		}
		for i, ix := range s.Idx {
			if slot, ok := feat[ix]; ok {
				cur[slot] = s.Val[i]
				sum[slot] += s.Val[i]
				sumSq[slot] += s.Val[i] * s.Val[i]
			}
		}
		for i, pr := range prs {
			va := cur[feat[pr.A]]
			if va == 0 {
				continue
			}
			if vb := cur[feat[pr.B]]; vb != 0 {
				prodSum[i] += va * vb
			}
		}
	}
	if n < 2 {
		return nil, fmt.Errorf("eval: need ≥ 2 samples, got %d", n)
	}
	out := make(map[dataset.PairRef]float64, len(prs))
	nf := float64(n)
	for i, pr := range prs {
		sa := feat[pr.A]
		sb := feat[pr.B]
		ma := sum[sa] / nf
		mb := sum[sb] / nf
		va := sumSq[sa]/nf - ma*ma
		vb := sumSq[sb]/nf - mb*mb
		if va <= 0 || vb <= 0 {
			out[pr] = 0
			continue
		}
		cov := prodSum[i]/nf - ma*mb
		out[pr] = cov / math.Sqrt(va*vb)
	}
	return out, nil
}
