package eval

import (
	"math"

	"repro/internal/sketchapi"
)

// SNRPoint is one measured point of the §7.1 SNR(t) series: the ratio
// E‖X_S‖²/E‖X_N‖² over the window of samples ending at T.
type SNRPoint struct {
	T   int
	SNR float64
}

// admitter is implemented by engines that gate insertions (ASCS); other
// engines ingest everything.
type admitter interface {
	Admits(key uint64) bool
}

// SNRProbe wraps an engine and measures the signal-to-noise ratio of the
// stream the engine actually ingests, using ground-truth signal labels.
// For gating engines only admitted offers count (X_S^(t), X_N^(t) of
// §7.1); for vanilla CS every offer counts, reproducing SNR_CS.
type SNRProbe struct {
	inner    sketchapi.Ingestor
	isSignal func(key uint64) bool
	every    int

	t        int
	winStart int
	sumSig   float64
	sumNoise float64
	points   []SNRPoint
}

var _ sketchapi.Ingestor = (*SNRProbe)(nil)

// NewSNRProbe wraps inner, emitting one SNR point per `every` samples.
func NewSNRProbe(inner sketchapi.Ingestor, isSignal func(uint64) bool, every int) *SNRProbe {
	if every < 1 {
		every = 1
	}
	return &SNRProbe{inner: inner, isSignal: isSignal, every: every, winStart: 1}
}

// BeginStep flushes the window when due and forwards the step.
func (p *SNRProbe) BeginStep(t int) {
	if t > p.winStart && (t-p.winStart)%p.every == 0 {
		p.flush(t - 1)
		p.winStart = t
	}
	p.t = t
	p.inner.BeginStep(t)
}

func (p *SNRProbe) flush(endT int) {
	ratio := math.NaN()
	if p.sumNoise > 0 {
		ratio = p.sumSig / p.sumNoise
	}
	p.points = append(p.points, SNRPoint{T: endT, SNR: ratio})
	p.sumSig, p.sumNoise = 0, 0
}

// Offer accounts the admitted energy and forwards.
func (p *SNRProbe) Offer(key uint64, x float64) {
	admit := true
	if a, ok := p.inner.(admitter); ok {
		admit = a.Admits(key)
	}
	if admit {
		if p.isSignal(key) {
			p.sumSig += x * x
		} else {
			p.sumNoise += x * x
		}
	}
	p.inner.Offer(key, x)
}

// Estimate forwards to the engine.
func (p *SNRProbe) Estimate(key uint64) float64 { return p.inner.Estimate(key) }

// Bytes forwards to the engine.
func (p *SNRProbe) Bytes() int { return p.inner.Bytes() }

// Name forwards to the engine.
func (p *SNRProbe) Name() string { return p.inner.Name() }

// Points returns the completed windows, closing the current window if it
// has any mass.
func (p *SNRProbe) Points() []SNRPoint {
	if p.sumSig > 0 || p.sumNoise > 0 {
		p.flush(p.t)
		p.winStart = p.t + 1
	}
	return p.points
}
