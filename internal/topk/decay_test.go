package topk

import (
	"math"
	"testing"
)

// TestTrackerDecayAges checks lazy aging: a once-hot key that stops
// being offered sinks below fresh offers and is pruned out.
func TestTrackerDecayAges(t *testing.T) {
	tr := NewTracker(4)
	tr.Offer(100, 10) // the old heavy hitter
	for i := 0; i < 200; i++ {
		tr.Decay(0.9)
		tr.Offer(uint64(i), 1) // fresh modest candidates
	}
	// 10·0.9^200 ≈ 7e-9 ≪ 1: key 100 must have pruned away.
	for _, it := range tr.Top(tr.Len(), nil) {
		if it.Key == 100 {
			t.Fatalf("aged-out key 100 still tracked with score %v", it.Score)
		}
	}
}

// TestTrackerDecayLogicalScores checks Each/Top report logical
// (decayed) units and that renormalization preserves them.
func TestTrackerDecayLogicalScores(t *testing.T) {
	tr := NewTracker(8)
	tr.Offer(1, 8)
	tr.Decay(0.5)
	tr.Offer(2, 8)
	want := map[uint64]float64{1: 4, 2: 8}
	check := func() {
		got := map[uint64]float64{}
		tr.Each(func(k uint64, s float64) { got[k] = s })
		for k, w := range want {
			if math.Abs(got[k]-w) > 1e-12 {
				t.Fatalf("key %d: logical score %v, want %v", k, got[k], w)
			}
		}
		top := tr.Top(2, nil)
		if top[0].Key != 2 || math.Abs(top[0].Score-8) > 1e-12 {
			t.Fatalf("top entry %+v, want key 2 score 8", top[0])
		}
	}
	check()
	// Drive the scale past the renormalization floor; logical values
	// must survive the fold (up to the decayed magnitudes themselves).
	tr2 := NewTracker(8)
	tr2.Offer(1, 1)
	for i := 0; i < 90; i++ {
		tr2.Decay(0.05)
	}
	tr2.Offer(2, 1)
	top := tr2.Top(1, nil)
	if top[0].Key != 2 || math.Abs(top[0].Score-1) > 1e-12 {
		t.Fatalf("post-renormalization top %+v, want key 2 score 1", top[0])
	}
}

// TestTrackerDecayIdentity checks Decay(1) changes nothing, bitwise.
func TestTrackerDecayIdentity(t *testing.T) {
	tr := NewTracker(4)
	tr.Offer(9, 3.25)
	tr.Decay(1)
	tr.Offer(11, 1.5)
	got := map[uint64]float64{}
	tr.Each(func(k uint64, s float64) { got[k] = s })
	if math.Float64bits(got[9]) != math.Float64bits(3.25) || math.Float64bits(got[11]) != math.Float64bits(1.5) {
		t.Fatalf("Decay(1) perturbed scores: %v", got)
	}
}
