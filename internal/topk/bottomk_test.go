package topk

import (
	"math"
	"testing"
)

func TestBottomKBelowCapacityKeepsAll(t *testing.T) {
	b := NewBottomK(100, 1)
	for k := uint64(0); k < 50; k++ {
		b.Offer(k)
		b.Offer(k) // duplicates are idempotent
	}
	if b.Len() != 50 {
		t.Fatalf("Len = %d, want 50", b.Len())
	}
	if b.Saturated() {
		t.Error("should not be saturated")
	}
	if got := b.DistinctEstimate(); got != 50 {
		t.Errorf("DistinctEstimate = %v, want exact 50", got)
	}
	seen := map[uint64]bool{}
	for _, k := range b.Keys() {
		seen[k] = true
	}
	if len(seen) != 50 {
		t.Errorf("keys not distinct: %d", len(seen))
	}
}

func TestBottomKDeterministicSample(t *testing.T) {
	mk := func() []uint64 {
		b := NewBottomK(32, 7)
		for k := uint64(0); k < 10000; k++ {
			b.Offer(k)
		}
		return b.Keys()
	}
	a, c := mk(), mk()
	am := map[uint64]bool{}
	for _, k := range a {
		am[k] = true
	}
	for _, k := range c {
		if !am[k] {
			t.Fatal("sample not deterministic")
		}
	}
	if len(a) != 32 {
		t.Fatalf("sample size %d", len(a))
	}
}

func TestBottomKOrderInvariant(t *testing.T) {
	// The retained set depends only on the key set, not offer order.
	fwd := NewBottomK(16, 3)
	rev := NewBottomK(16, 3)
	const n = 5000
	for k := uint64(0); k < n; k++ {
		fwd.Offer(k)
		rev.Offer(n - 1 - k)
	}
	fm := map[uint64]bool{}
	for _, k := range fwd.Keys() {
		fm[k] = true
	}
	for _, k := range rev.Keys() {
		if !fm[k] {
			t.Fatal("sample depends on offer order")
		}
	}
}

func TestBottomKDistinctEstimateAccuracy(t *testing.T) {
	// KMV with k=512 has relative error ~ 1/sqrt(k) ≈ 4.4%; allow 20%.
	const distinct = 200000
	b := NewBottomK(512, 9)
	for k := uint64(0); k < distinct; k++ {
		b.Offer(k)
	}
	est := b.DistinctEstimate()
	if math.Abs(est-distinct)/distinct > 0.2 {
		t.Errorf("DistinctEstimate = %.0f, want ≈ %d", est, distinct)
	}
}

func TestBottomKUniformity(t *testing.T) {
	// Keys 0..9999: a bottom-1000 sample should cover low and high
	// halves roughly equally (the hash decorrelates key value from
	// priority).
	b := NewBottomK(1000, 11)
	for k := uint64(0); k < 10000; k++ {
		b.Offer(k)
	}
	low := 0
	for _, k := range b.Keys() {
		if k < 5000 {
			low++
		}
	}
	if low < 400 || low > 600 {
		t.Errorf("low-half count = %d, want ≈ 500", low)
	}
}

func TestBottomKCapacityClamp(t *testing.T) {
	b := NewBottomK(0, 1)
	b.Offer(1)
	b.Offer(2)
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}
