// Package topk provides bounded top-k selection utilities: a one-shot
// min-heap for selecting the k largest-scored keys from a scan, and an
// updatable bounded tracker used to keep retrieval candidates when the
// pair universe is too large to enumerate (Table 2 scale).
package topk

import (
	"sort"

	"repro/internal/sketchapi"
)

// Item pairs a key with a score.
type Item struct {
	Key   uint64
	Score float64
}

// Heap selects the k items with the largest scores from a stream of
// Push calls. The zero value is unusable; construct with NewHeap.
type Heap struct {
	k     int
	items []Item // min-heap ordered by Score
}

// NewHeap returns a selector for the k largest scores (k ≥ 1). The
// initial capacity reservation is bounded: k is a retention limit, not
// a promise of k pushes, so a huge k must not preallocate huge memory.
func NewHeap(k int) *Heap {
	if k < 1 {
		k = 1
	}
	reserve := k
	if reserve > 4096 {
		reserve = 4096
	}
	return &Heap{k: k, items: make([]Item, 0, reserve)}
}

// Push offers an item; it is retained only if it ranks in the current
// top k.
func (h *Heap) Push(key uint64, score float64) {
	if len(h.items) < h.k {
		h.items = append(h.items, Item{key, score})
		h.up(len(h.items) - 1)
		return
	}
	if score <= h.items[0].Score {
		return
	}
	h.items[0] = Item{key, score}
	h.down(0)
}

// Len returns the number of retained items (≤ k).
func (h *Heap) Len() int { return len(h.items) }

// Min returns the smallest retained score (the admission bar once full).
func (h *Heap) Min() (Item, bool) {
	if len(h.items) == 0 {
		return Item{}, false
	}
	return h.items[0], true
}

// SortedDesc returns the retained items ordered by descending score,
// consuming nothing (the heap remains valid).
func (h *Heap) SortedDesc() []Item {
	out := append([]Item(nil), h.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Score <= h.items[i].Score {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].Score < h.items[small].Score {
			small = l
		}
		if r < n && h.items[r].Score < h.items[small].Score {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}

// Tracker is a bounded map from key to latest score that retains
// (approximately) the highest-scored keys seen. Scores may be updated;
// when the tracker exceeds twice its capacity it prunes to the capacity
// highest scores. It backs candidate retrieval for huge pair universes,
// where keys that ever pass the ASCS gate are the only plausible heavy
// hitters.
//
// For exponential-decay serving the tracker supports O(1) aging: Decay
// multiplies every retained score by a factor lazily (a global scale,
// exactly like the count sketch's lazy decay), so candidates that stop
// being offered sink relative to fresh ones and eventually prune out —
// admitted pairs age out of top-k instead of squatting forever.
type Tracker struct {
	cap    int
	scores map[uint64]float64 // raw scores; logical score = raw · scale

	scale float64 // lazy decay accumulator
	inv   float64 // 1/scale, applied on Offer

	pruned uint64 // cumulative keys evicted by prune (churn telemetry)
}

// trackerRenormFloor is the shared lazy-decay renormalization floor:
// fold the lazy scale into the raw scores before it underflows.
const trackerRenormFloor = sketchapi.RenormFloor

// NewTracker returns a tracker retaining roughly capacity keys (≥ 1).
func NewTracker(capacity int) *Tracker {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracker{cap: capacity, scores: make(map[uint64]float64, 2*capacity), scale: 1, inv: 1}
}

// Offer records (or refreshes) the score for key.
func (t *Tracker) Offer(key uint64, score float64) {
	t.scores[key] = score * t.inv
	if len(t.scores) > 2*t.cap {
		t.prune()
	}
}

// Decay multiplies every retained score by f ∈ (0,1] in O(1) via the
// lazy scale accumulator. Decay(1) is an exact no-op; relative order of
// retained scores never changes, only their weight against future
// offers.
func (t *Tracker) Decay(f float64) {
	if f == 1 {
		return
	}
	t.scale *= f
	if t.scale < trackerRenormFloor {
		for k, v := range t.scores {
			t.scores[k] = v * t.scale
		}
		t.scale, t.inv = 1, 1
		return
	}
	t.inv = 1 / t.scale
}

// Len returns the number of tracked keys.
func (t *Tracker) Len() int { return len(t.scores) }

// Capacity returns the configured retention target.
func (t *Tracker) Capacity() int { return t.cap }

// Each invokes fn for every tracked (key, score) entry in unspecified
// order, with scores in logical (decayed) units (serialization and
// diagnostics; do not mutate during iteration).
func (t *Tracker) Each(fn func(key uint64, score float64)) {
	for k, s := range t.scores {
		fn(k, s*t.scale)
	}
}

// Keys returns the tracked keys in unspecified order.
func (t *Tracker) Keys() []uint64 {
	out := make([]uint64, 0, len(t.scores))
	for k := range t.scores {
		out = append(out, k)
	}
	return out
}

// Top returns the k highest-scored tracked keys, rescored by rescore if
// non-nil (e.g. the final sketch estimates), in descending order.
// Without a rescore the retained scores are reported in logical
// (decayed) units.
func (t *Tracker) Top(k int, rescore func(uint64) float64) []Item {
	h := NewHeap(k)
	for key, sc := range t.scores {
		if rescore != nil {
			sc = rescore(key)
		} else {
			sc *= t.scale
		}
		h.Push(key, sc)
	}
	return h.SortedDesc()
}

func (t *Tracker) prune() {
	h := NewHeap(t.cap)
	for key, sc := range t.scores {
		h.Push(key, sc)
	}
	kept := h.SortedDesc()
	t.pruned += uint64(len(t.scores) - len(kept))
	t.scores = make(map[uint64]float64, 2*t.cap)
	for _, it := range kept {
		t.scores[it.Key] = it.Score
	}
}

// Pruned returns the cumulative number of keys evicted by pruning —
// the top-k churn signal: how many once-admitted candidates have been
// displaced by fresher or heavier ones.
func (t *Tracker) Pruned() uint64 { return t.pruned }
