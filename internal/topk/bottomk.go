package topk

import "repro/internal/hashing"

// BottomK maintains a uniform sample of the *distinct* keys offered to
// it, using the classic bottom-k (KMV) construction: a key is retained
// iff its hashed priority ranks among the k smallest seen. Duplicate
// offers of a key are idempotent, the sample is deterministic given the
// seed, and the k-th smallest priority yields an unbiased estimate of
// the number of distinct keys. The warm-up census uses it so percentile
// ranks stay unbiased when the distinct pair universe exceeds memory.
type BottomK struct {
	k    int
	seed uint64
	// items is a max-heap on priority so the largest retained priority
	// is evictable in O(log k).
	items []bottomKItem
	pos   map[uint64]struct{}
}

type bottomKItem struct {
	key      uint64
	priority uint64
}

// NewBottomK returns a sampler retaining at most k distinct keys (k ≥ 1).
func NewBottomK(k int, seed uint64) *BottomK {
	if k < 1 {
		k = 1
	}
	return &BottomK{k: k, seed: seed, pos: make(map[uint64]struct{}, k)}
}

// Offer presents a key (idempotently).
func (b *BottomK) Offer(key uint64) {
	if _, ok := b.pos[key]; ok {
		return
	}
	pr := hashing.Mix64(key ^ b.seed)
	if len(b.items) < b.k {
		b.pos[key] = struct{}{}
		b.items = append(b.items, bottomKItem{key, pr})
		b.up(len(b.items) - 1)
		return
	}
	if pr >= b.items[0].priority {
		return
	}
	delete(b.pos, b.items[0].key)
	b.pos[key] = struct{}{}
	b.items[0] = bottomKItem{key, pr}
	b.down(0)
}

// Len returns the number of retained keys.
func (b *BottomK) Len() int { return len(b.items) }

// Keys returns the retained keys (unordered).
func (b *BottomK) Keys() []uint64 {
	out := make([]uint64, len(b.items))
	for i, it := range b.items {
		out[i] = it.key
	}
	return out
}

// Saturated reports whether the sampler has evicted (i.e. the sample is
// a strict subset of the distinct keys seen).
func (b *BottomK) Saturated() bool { return len(b.items) == b.k }

// DistinctEstimate estimates the number of distinct keys offered. Below
// saturation it is exact; at saturation it uses the KMV estimator
// (k−1)·2^64/maxPriority.
func (b *BottomK) DistinctEstimate() float64 {
	if !b.Saturated() {
		return float64(len(b.items))
	}
	maxPr := b.items[0].priority
	if maxPr == 0 {
		return float64(len(b.items))
	}
	return float64(b.k-1) * (18446744073709551616.0 / float64(maxPr))
}

func (b *BottomK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if b.items[parent].priority >= b.items[i].priority {
			return
		}
		b.items[parent], b.items[i] = b.items[i], b.items[parent]
		i = parent
	}
}

func (b *BottomK) down(i int) {
	n := len(b.items)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && b.items[l].priority > b.items[big].priority {
			big = l
		}
		if r < n && b.items[r].priority > b.items[big].priority {
			big = r
		}
		if big == i {
			return
		}
		b.items[i], b.items[big] = b.items[big], b.items[i]
		i = big
	}
}
