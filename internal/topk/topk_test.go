package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapSelectsTopK(t *testing.T) {
	h := NewHeap(3)
	scores := []float64{5, 1, 9, 3, 7, 2}
	for i, s := range scores {
		h.Push(uint64(i), s)
	}
	got := h.SortedDesc()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Score != 9 || got[1].Score != 7 || got[2].Score != 5 {
		t.Errorf("top3 = %v", got)
	}
	if got[0].Key != 2 || got[1].Key != 4 || got[2].Key != 0 {
		t.Errorf("keys = %v", got)
	}
}

func TestHeapFewerThanK(t *testing.T) {
	h := NewHeap(10)
	h.Push(1, 1)
	h.Push(2, 2)
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
	got := h.SortedDesc()
	if len(got) != 2 || got[0].Key != 2 {
		t.Errorf("items = %v", got)
	}
	m, ok := h.Min()
	if !ok || m.Score != 1 {
		t.Errorf("Min = %v, %v", m, ok)
	}
}

func TestHeapEmptyMin(t *testing.T) {
	h := NewHeap(2)
	if _, ok := h.Min(); ok {
		t.Error("Min of empty heap should report !ok")
	}
	if len(h.SortedDesc()) != 0 {
		t.Error("SortedDesc of empty should be empty")
	}
}

func TestHeapZeroCapacityClamped(t *testing.T) {
	h := NewHeap(0)
	h.Push(1, 1)
	h.Push(2, 2)
	if h.Len() != 1 {
		t.Errorf("clamped heap Len = %d, want 1", h.Len())
	}
}

func TestHeapMatchesSortProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		scores := make([]float64, n)
		h := NewHeap(k)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			h.Push(uint64(i), scores[i])
		}
		sorted := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		got := h.SortedDesc()
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Score != sorted[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrackerRetainsHighScores(t *testing.T) {
	tr := NewTracker(10)
	for i := 0; i < 1000; i++ {
		tr.Offer(uint64(i), float64(i))
	}
	if tr.Len() > 20 {
		t.Errorf("tracker grew to %d, cap*2 = 20", tr.Len())
	}
	top := tr.Top(5, nil)
	if len(top) != 5 || top[0].Key != 999 || top[4].Key != 995 {
		t.Errorf("top = %v", top)
	}
	if tr.Capacity() != 10 {
		t.Errorf("Capacity = %d", tr.Capacity())
	}
}

func TestTrackerUpdatesScore(t *testing.T) {
	tr := NewTracker(4)
	tr.Offer(1, 1)
	tr.Offer(1, 100)
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1 (update, not insert)", tr.Len())
	}
	top := tr.Top(1, nil)
	if top[0].Score != 100 {
		t.Errorf("score = %v, want 100", top[0].Score)
	}
}

func TestTrackerRescore(t *testing.T) {
	tr := NewTracker(4)
	tr.Offer(1, 1)
	tr.Offer(2, 2)
	top := tr.Top(2, func(k uint64) float64 { return -float64(k) })
	if top[0].Key != 1 {
		t.Errorf("rescored top = %v", top)
	}
}

func TestTrackerKeys(t *testing.T) {
	tr := NewTracker(4)
	tr.Offer(7, 1)
	tr.Offer(9, 2)
	keys := tr.Keys()
	if len(keys) != 2 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestTrackerCapacityClamp(t *testing.T) {
	tr := NewTracker(0)
	tr.Offer(1, 1)
	if tr.Capacity() != 1 {
		t.Errorf("Capacity = %d, want 1", tr.Capacity())
	}
}

func TestTrackerPruneKeepsBest(t *testing.T) {
	tr := NewTracker(5)
	// Interleave so pruning happens multiple times; the final top-5 by
	// last-offered score must survive.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		tr.Offer(uint64(rng.Intn(100)), rng.Float64())
	}
	// Now give keys 90..94 dominant scores.
	for k := uint64(90); k < 95; k++ {
		tr.Offer(k, 10+float64(k))
	}
	top := tr.Top(5, nil)
	for _, it := range top {
		if it.Key < 90 || it.Key > 94 {
			t.Errorf("dominant key missing from top: %v", top)
			break
		}
	}
}

func BenchmarkHeapPush(b *testing.B) {
	h := NewHeap(1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		h.Push(uint64(i), rng.Float64())
	}
}
