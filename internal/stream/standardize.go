package stream

import (
	"fmt"

	"repro/internal/stats"
)

// Standardizer rescales features to unit standard deviation (and
// optionally zero mean) using statistics fitted on a prefix of the
// stream, as the paper does when estimating correlation rather than
// covariance matrices. Scale-only mode preserves sparsity (zeros stay
// zero), matching the paper's E[YaYb] approximation for features whose
// mean/std is negligible (§5, Figure 2); centering is available for
// dense workloads.
type Standardizer struct {
	src      Source
	center   bool
	fitN     int
	buffered []Sample
	mean     []float64
	invStd   []float64
	fitted   bool
	pos      int
}

// NewStandardizer wraps src, fitting per-feature mean/std on the first
// fitN samples (which are then replayed, standardized, before the rest
// of the stream). center selects mean subtraction in addition to
// unit-variance scaling; note centering densifies sparse samples and is
// applied only to stored coordinates (use dense sources for exact
// centering).
func NewStandardizer(src Source, fitN int, center bool) (*Standardizer, error) {
	if fitN < 2 {
		return nil, fmt.Errorf("stream: standardizer needs fitN ≥ 2, got %d", fitN)
	}
	return &Standardizer{src: src, fitN: fitN, center: center}, nil
}

func (st *Standardizer) fit() {
	d := st.src.Dim()
	accs := make([]stats.Welford, d)
	for len(st.buffered) < st.fitN {
		s, ok := st.src.Next()
		if !ok {
			break
		}
		st.buffered = append(st.buffered, s)
		// Sparse-aware accumulation: zeros are implicit.
		for i, ix := range s.Idx {
			accs[ix].Add(s.Val[i])
		}
	}
	n := int64(len(st.buffered))
	st.mean = make([]float64, d)
	st.invStd = make([]float64, d)
	for j := 0; j < d; j++ {
		// Fold the implicit zeros into the moments.
		zeros := n - accs[j].Count()
		var w stats.Welford
		w = accs[j]
		for z := int64(0); z < zeros; z++ {
			w.Add(0)
		}
		st.mean[j] = 0
		if w.Count() > 0 {
			st.mean[j] = w.Mean()
		}
		sd := w.Std()
		if sd > 0 {
			st.invStd[j] = 1 / sd
		} // zero-variance features are zeroed out (uninformative)
	}
	st.fitted = true
}

// Next implements Source.
func (st *Standardizer) Next() (Sample, bool) {
	if !st.fitted {
		st.fit()
	}
	var s Sample
	if st.pos < len(st.buffered) {
		s = st.buffered[st.pos]
		st.pos++
	} else {
		var ok bool
		s, ok = st.src.Next()
		if !ok {
			return Sample{}, false
		}
	}
	return st.apply(s), true
}

func (st *Standardizer) apply(s Sample) Sample {
	out := Sample{Idx: append([]int(nil), s.Idx...), Val: make([]float64, len(s.Val))}
	for i, ix := range s.Idx {
		v := s.Val[i]
		if st.center {
			v -= st.mean[ix]
		}
		out.Val[i] = v * st.invStd[ix]
	}
	return out
}

// Dim implements Source.
func (st *Standardizer) Dim() int { return st.src.Dim() }

// Means returns the fitted feature means (fitting on demand).
func (st *Standardizer) Means() []float64 {
	if !st.fitted {
		st.fit()
	}
	return st.mean
}

// InvStds returns the fitted reciprocal standard deviations (zero for
// zero-variance features).
func (st *Standardizer) InvStds() []float64 {
	if !st.fitted {
		st.fit()
	}
	return st.invStd
}
