package stream

import "math/rand"

// Shuffler is the buffered streaming shuffle of §3: real-world data may
// arrive in a correlated order, so a buffer of pending samples is kept
// and each emission draws a uniformly random buffer slot, which is then
// refilled from the upstream source. With a buffer as large as the
// stream this is a full Fisher-Yates shuffle; smaller buffers trade
// memory for mixing radius.
type Shuffler struct {
	src Source
	buf []Sample
	rng *rand.Rand
}

// NewShuffler wraps src with a buffer of size bufSize (≥ 1), seeded
// deterministically.
func NewShuffler(src Source, bufSize int, seed int64) *Shuffler {
	if bufSize < 1 {
		bufSize = 1
	}
	sh := &Shuffler{src: src, rng: rand.New(rand.NewSource(seed))}
	sh.buf = make([]Sample, 0, bufSize)
	for len(sh.buf) < bufSize {
		s, ok := src.Next()
		if !ok {
			break
		}
		sh.buf = append(sh.buf, s)
	}
	return sh
}

// Next implements Source.
func (sh *Shuffler) Next() (Sample, bool) {
	if len(sh.buf) == 0 {
		return Sample{}, false
	}
	i := sh.rng.Intn(len(sh.buf))
	out := sh.buf[i]
	if nxt, ok := sh.src.Next(); ok {
		sh.buf[i] = nxt
	} else {
		last := len(sh.buf) - 1
		sh.buf[i] = sh.buf[last]
		sh.buf = sh.buf[:last]
	}
	return out, true
}

// Dim implements Source.
func (sh *Shuffler) Dim() int { return sh.src.Dim() }
