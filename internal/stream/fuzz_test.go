package stream

import (
	"strings"
	"testing"
)

// FuzzParseLIBSVMLine checks the parser never panics and that every
// accepted line yields a structurally valid sample.
func FuzzParseLIBSVMLine(f *testing.F) {
	seeds := []string{
		"1 1:0.5 3:2",
		"-1 2:1",
		"0",
		"1 1:0 2:3",
		"x 1:1",
		"1 0:1",
		"1 4:1",
		"1 2:1 1:1",
		"1 a:1",
		"1 1:x",
		"1 :1",
		"1 21",
		"1 1:1e308 2:-1e308",
		"  1   5:0.25  ",
		"1 1:NaN",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		const dim = 8
		s, _, err := ParseLIBSVMLine(line, dim)
		if err != nil {
			return
		}
		if verr := s.Validate(dim); verr != nil {
			t.Fatalf("accepted line %q produced invalid sample: %v", line, verr)
		}
	})
}

// FuzzLIBSVMRoundTrip writes an accepted sample back out and re-parses
// it, expecting identical coordinates.
func FuzzLIBSVMRoundTrip(f *testing.F) {
	f.Add("1 1:0.5 3:2")
	f.Add("0")
	f.Fuzz(func(t *testing.T, line string) {
		const dim = 16
		s, label, err := ParseLIBSVMLine(line, dim)
		if err != nil {
			return
		}
		var sb strings.Builder
		w := NewLIBSVMWriter(&sb)
		if err := w.Write(label, s); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		s2, label2, err := ParseLIBSVMLine(strings.TrimSpace(sb.String()), dim)
		if err != nil {
			t.Fatalf("round trip of %q failed to parse: %v", sb.String(), err)
		}
		if label2 != label || len(s2.Idx) != len(s.Idx) {
			t.Fatalf("round trip mismatch: %q -> %q", line, sb.String())
		}
		for i := range s.Idx {
			if s.Idx[i] != s2.Idx[i] || s.Val[i] != s2.Val[i] {
				t.Fatalf("coordinate mismatch at %d", i)
			}
		}
	})
}
