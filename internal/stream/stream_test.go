package stream

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSampleValidate(t *testing.T) {
	good := Sample{Idx: []int{0, 3, 5}, Val: []float64{1, 2, 3}}
	if err := good.Validate(6); err != nil {
		t.Errorf("valid sample rejected: %v", err)
	}
	bad := []Sample{
		{Idx: []int{0, 1}, Val: []float64{1}},        // length mismatch
		{Idx: []int{1, 1}, Val: []float64{1, 2}},     // not increasing
		{Idx: []int{2, 1}, Val: []float64{1, 2}},     // decreasing
		{Idx: []int{-1}, Val: []float64{1}},          // negative index
		{Idx: []int{6}, Val: []float64{1}},           // out of range
		{Idx: []int{0}, Val: []float64{math.NaN()}},  // NaN
		{Idx: []int{0}, Val: []float64{math.Inf(1)}}, // Inf
	}
	for i, s := range bad {
		if err := s.Validate(6); err == nil {
			t.Errorf("bad sample %d accepted", i)
		}
	}
}

func TestDenseFromDenseRoundTrip(t *testing.T) {
	row := []float64{0, 1.5, 0, -2, 0}
	s := FromDense(row)
	if s.NNZ() != 2 {
		t.Errorf("NNZ = %d", s.NNZ())
	}
	back := s.Dense(5)
	for i := range row {
		if back[i] != row[i] {
			t.Errorf("round trip mismatch at %d: %v vs %v", i, back[i], row[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	s := Sample{Idx: []int{1}, Val: []float64{2}}
	c := s.Clone()
	c.Val[0] = 9
	if s.Val[0] != 2 {
		t.Error("Clone shares storage")
	}
}

func TestSliceSource(t *testing.T) {
	ss := NewSliceSource([]Sample{{Idx: []int{0}, Val: []float64{1}}, {}}, 3)
	if ss.Dim() != 3 || ss.Len() != 2 {
		t.Errorf("Dim/Len = %d/%d", ss.Dim(), ss.Len())
	}
	n := 0
	for {
		_, ok := ss.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("drained %d samples", n)
	}
	ss.Reset()
	if _, ok := ss.Next(); !ok {
		t.Error("Reset should rewind")
	}
}

func TestMatrixSource(t *testing.T) {
	m := NewMatrixSource([][]float64{{1, 0}, {0, 2}})
	if m.Dim() != 2 {
		t.Errorf("Dim = %d", m.Dim())
	}
	s, ok := m.Next()
	if !ok || s.NNZ() != 1 || s.Idx[0] != 0 {
		t.Errorf("first sample = %+v", s)
	}
	m.Reset()
	s2, _ := m.Next()
	if s2.Idx[0] != 0 {
		t.Error("Reset failed")
	}
	empty := NewMatrixSource(nil)
	if empty.Dim() != 0 {
		t.Error("empty matrix Dim should be 0")
	}
	if _, ok := empty.Next(); ok {
		t.Error("empty matrix should yield nothing")
	}
}

func TestLimit(t *testing.T) {
	samples := make([]Sample, 10)
	l := NewLimit(NewSliceSource(samples, 1), 3)
	if l.Dim() != 1 {
		t.Errorf("Dim = %d", l.Dim())
	}
	n := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("Limit yielded %d", n)
	}
}

func TestFuncSourceAndDrain(t *testing.T) {
	i := 0
	f := NewFuncSource(4, func() (Sample, bool) {
		if i >= 5 {
			return Sample{}, false
		}
		i++
		return Sample{Idx: []int{0}, Val: []float64{float64(i)}}, true
	})
	if f.Dim() != 4 {
		t.Errorf("Dim = %d", f.Dim())
	}
	all := Drain(f)
	if len(all) != 5 || all[4].Val[0] != 5 {
		t.Errorf("Drain = %v", all)
	}
}

func TestSortSampleInPlace(t *testing.T) {
	s := Sample{Idx: []int{5, 1, 5, 3}, Val: []float64{1, 2, 4, 3}}
	SortSampleInPlace(&s)
	if len(s.Idx) != 3 {
		t.Fatalf("Idx = %v", s.Idx)
	}
	if s.Idx[0] != 1 || s.Idx[1] != 3 || s.Idx[2] != 5 {
		t.Errorf("Idx = %v", s.Idx)
	}
	if s.Val[2] != 5 { // duplicates summed: 1+4
		t.Errorf("Val = %v", s.Val)
	}
	if err := s.Validate(6); err != nil {
		t.Errorf("sorted sample invalid: %v", err)
	}
}

func TestShufflerIsPermutation(t *testing.T) {
	samples := make([]Sample, 100)
	for i := range samples {
		samples[i] = Sample{Idx: []int{0}, Val: []float64{float64(i)}}
	}
	sh := NewShuffler(NewSliceSource(samples, 1), 32, 7)
	if sh.Dim() != 1 {
		t.Errorf("Dim = %d", sh.Dim())
	}
	var got []float64
	for {
		s, ok := sh.Next()
		if !ok {
			break
		}
		got = append(got, s.Val[0])
	}
	if len(got) != 100 {
		t.Fatalf("shuffler yielded %d samples", len(got))
	}
	sorted := append([]float64(nil), got...)
	sort.Float64s(sorted)
	for i, v := range sorted {
		if v != float64(i) {
			t.Fatalf("not a permutation: sorted[%d] = %v", i, v)
		}
	}
	// And it actually shuffles (identity is astronomically unlikely).
	identity := true
	for i, v := range got {
		if v != float64(i) {
			identity = false
			break
		}
	}
	if identity {
		t.Error("shuffler produced identity order")
	}
}

func TestShufflerDeterministicBySeed(t *testing.T) {
	mk := func(seed int64) []float64 {
		samples := make([]Sample, 50)
		for i := range samples {
			samples[i] = Sample{Idx: []int{0}, Val: []float64{float64(i)}}
		}
		sh := NewShuffler(NewSliceSource(samples, 1), 16, seed)
		var out []float64
		for {
			s, ok := sh.Next()
			if !ok {
				break
			}
			out = append(out, s.Val[0])
		}
		return out
	}
	a, b := mk(3), mk(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give same order")
		}
	}
}

func TestShufflerTinyBuffer(t *testing.T) {
	samples := make([]Sample, 5)
	sh := NewShuffler(NewSliceSource(samples, 1), 0, 1) // clamped to 1
	if got := len(Drain(sh)); got != 5 {
		t.Errorf("yielded %d", got)
	}
}

func TestStandardizerScaleOnly(t *testing.T) {
	// Feature 0 has std 2, feature 1 std 0.5; after scaling both have
	// unit std over the whole stream.
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 0.5}
	}
	st, err := NewStandardizer(NewMatrixSource(rows), 200, false)
	if err != nil {
		t.Fatal(err)
	}
	var v0, v1 []float64
	for {
		s, ok := st.Next()
		if !ok {
			break
		}
		d := s.Dense(2)
		v0 = append(v0, d[0])
		v1 = append(v1, d[1])
	}
	if len(v0) != 400 {
		t.Fatalf("standardizer dropped samples: %d", len(v0))
	}
	std := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		s := 0.0
		for _, x := range xs {
			s += (x - m) * (x - m)
		}
		return math.Sqrt(s / float64(len(xs)-1))
	}
	if got := std(v0); math.Abs(got-1) > 0.15 {
		t.Errorf("feature 0 std after scaling = %v", got)
	}
	if got := std(v1); math.Abs(got-1) > 0.15 {
		t.Errorf("feature 1 std after scaling = %v", got)
	}
}

func TestStandardizerCenter(t *testing.T) {
	rows := [][]float64{{10, 1}, {12, 1}, {14, 1}, {16, 1}}
	st, err := NewStandardizer(NewMatrixSource(rows), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	n := 0
	for {
		s, ok := st.Next()
		if !ok {
			break
		}
		sum += s.Dense(2)[0]
		n++
	}
	if n != 4 || math.Abs(sum) > 1e-9 {
		t.Errorf("centered feature sum = %v over %d", sum, n)
	}
	// Zero-variance feature 1 is scaled to zero, not NaN.
	if st.InvStds()[1] != 0 {
		t.Errorf("zero-variance invStd = %v", st.InvStds()[1])
	}
	if st.Means()[0] != 13 {
		t.Errorf("mean = %v", st.Means()[0])
	}
}

func TestStandardizerSparseZeros(t *testing.T) {
	// Sparse feature: nonzero in half the samples. The fitted std must
	// account for the implicit zeros.
	samples := []Sample{
		{Idx: []int{0}, Val: []float64{2}},
		{},
		{Idx: []int{0}, Val: []float64{2}},
		{},
	}
	st, err := NewStandardizer(NewSliceSource(samples, 1), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	// Values {2,0,2,0}: mean 1, sample std sqrt(4/3) ≈ 1.1547.
	want := 1 / math.Sqrt(4.0/3.0)
	if got := st.InvStds()[0]; math.Abs(got-want) > 1e-9 {
		t.Errorf("invStd = %v, want %v", got, want)
	}
}

func TestStandardizerValidation(t *testing.T) {
	if _, err := NewStandardizer(NewMatrixSource(nil), 1, false); err == nil {
		t.Error("expected error for fitN < 2")
	}
}
