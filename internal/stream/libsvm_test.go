package stream

import (
	"bytes"
	"strings"
	"testing"
)

func TestLIBSVMReaderBasic(t *testing.T) {
	in := strings.NewReader("1 1:0.5 3:2\n-1 2:1\n\n# comment\n0\n")
	r := NewLIBSVMReader(in, 3)
	if r.Dim() != 3 {
		t.Errorf("Dim = %d", r.Dim())
	}
	s1, ok := r.Next()
	if !ok || s1.NNZ() != 2 || s1.Idx[0] != 0 || s1.Idx[1] != 2 || s1.Val[1] != 2 {
		t.Fatalf("sample 1 = %+v ok=%v", s1, ok)
	}
	s2, ok := r.Next()
	if !ok || s2.NNZ() != 1 || s2.Idx[0] != 1 {
		t.Fatalf("sample 2 = %+v", s2)
	}
	s3, ok := r.Next() // "0" line: label only, empty sample
	if !ok || s3.NNZ() != 0 {
		t.Fatalf("sample 3 = %+v ok=%v", s3, ok)
	}
	if _, ok := r.Next(); ok {
		t.Error("expected end of stream")
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
	labels := r.Labels()
	if len(labels) != 3 || labels[0] != 1 || labels[1] != -1 || labels[2] != 0 {
		t.Errorf("labels = %v", labels)
	}
}

func TestLIBSVMReaderErrors(t *testing.T) {
	cases := []string{
		"x 1:1\n",     // bad label
		"1 0:1\n",     // index below 1
		"1 4:1\n",     // index beyond dim
		"1 2:1 1:1\n", // not increasing
		"1 a:1\n",     // bad index
		"1 1:x\n",     // bad value
		"1 :1\n",      // missing index
		"1 21\n",      // missing colon
	}
	for _, c := range cases {
		r := NewLIBSVMReader(strings.NewReader(c), 3)
		if _, ok := r.Next(); ok {
			t.Errorf("input %q should fail", c)
			continue
		}
		if r.Err() == nil {
			t.Errorf("input %q should record an error", c)
		}
	}
}

func TestLIBSVMZeroValuesDropped(t *testing.T) {
	r := NewLIBSVMReader(strings.NewReader("1 1:0 2:3\n"), 3)
	s, ok := r.Next()
	if !ok || s.NNZ() != 1 || s.Idx[0] != 1 {
		t.Errorf("sample = %+v", s)
	}
}

func TestLIBSVMWriteReadRoundTrip(t *testing.T) {
	samples := []Sample{
		{Idx: []int{0, 2}, Val: []float64{0.5, -1.25}},
		{},
		{Idx: []int{1}, Val: []float64{3}},
	}
	labels := []float64{1, -1, 0}
	var buf bytes.Buffer
	w := NewLIBSVMWriter(&buf)
	for i, s := range samples {
		if err := w.Write(labels[i], s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewLIBSVMReader(&buf, 3)
	got := Drain(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != 3 {
		t.Fatalf("round trip %d samples", len(got))
	}
	for i := range samples {
		if len(got[i].Idx) != len(samples[i].Idx) {
			t.Fatalf("sample %d NNZ mismatch", i)
		}
		for j := range samples[i].Idx {
			if got[i].Idx[j] != samples[i].Idx[j] || got[i].Val[j] != samples[i].Val[j] {
				t.Fatalf("sample %d coordinate %d mismatch", i, j)
			}
		}
	}
	gl := r.Labels()
	for i := range labels {
		if gl[i] != labels[i] {
			t.Errorf("label %d = %v", i, gl[i])
		}
	}
}
