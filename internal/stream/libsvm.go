package stream

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LIBSVMReader streams samples from LIBSVM-format text: each line is
//
//	<label> <index>:<value> <index>:<value> ...
//
// with 1-based indices, which are converted to 0-based. The label is
// retained per sample (covariance estimation ignores it, but the format
// is preserved for round-trips).
type LIBSVMReader struct {
	sc     *bufio.Scanner
	dim    int
	line   int
	err    error
	labels []float64
}

// NewLIBSVMReader reads from r; dim is the (known) feature
// dimensionality d. Lines whose indices exceed dim produce an error.
func NewLIBSVMReader(r io.Reader, dim int) *LIBSVMReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &LIBSVMReader{sc: sc, dim: dim}
}

// Next implements Source. On malformed input it stops the stream and
// records the error, retrievable via Err.
func (l *LIBSVMReader) Next() (Sample, bool) {
	for l.err == nil && l.sc.Scan() {
		l.line++
		text := strings.TrimSpace(l.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		s, label, err := ParseLIBSVMLine(text, l.dim)
		if err != nil {
			l.err = fmt.Errorf("stream: line %d: %w", l.line, err)
			return Sample{}, false
		}
		l.labels = append(l.labels, label)
		return s, true
	}
	if l.err == nil {
		l.err = l.sc.Err()
	}
	return Sample{}, false
}

// Dim implements Source.
func (l *LIBSVMReader) Dim() int { return l.dim }

// Err returns the first error encountered, if any.
func (l *LIBSVMReader) Err() error { return l.err }

// Labels returns the labels of the samples read so far.
func (l *LIBSVMReader) Labels() []float64 { return l.labels }

// ParseLIBSVMLine parses one LIBSVM line into a sample and its label.
func ParseLIBSVMLine(text string, dim int) (Sample, float64, error) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Sample{}, 0, fmt.Errorf("empty line")
	}
	label, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Sample{}, 0, fmt.Errorf("bad label %q: %w", fields[0], err)
	}
	var s Sample
	prev := -1
	for _, f := range fields[1:] {
		colon := strings.IndexByte(f, ':')
		if colon <= 0 {
			return Sample{}, 0, fmt.Errorf("bad feature token %q", f)
		}
		idx1, err := strconv.Atoi(f[:colon])
		if err != nil {
			return Sample{}, 0, fmt.Errorf("bad feature index in %q: %w", f, err)
		}
		v, err := strconv.ParseFloat(f[colon+1:], 64)
		if err != nil {
			return Sample{}, 0, fmt.Errorf("bad feature value in %q: %w", f, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Sample{}, 0, fmt.Errorf("non-finite feature value in %q", f)
		}
		ix := idx1 - 1
		if ix < 0 || ix >= dim {
			return Sample{}, 0, fmt.Errorf("feature index %d outside [1,%d]", idx1, dim)
		}
		if ix <= prev {
			return Sample{}, 0, fmt.Errorf("feature indices not increasing at %q", f)
		}
		prev = ix
		if v == 0 {
			continue
		}
		s.Idx = append(s.Idx, ix)
		s.Val = append(s.Val, v)
	}
	return s, label, nil
}

// LIBSVMWriter writes samples in LIBSVM format (1-based indices).
type LIBSVMWriter struct {
	w *bufio.Writer
}

// NewLIBSVMWriter wraps w.
func NewLIBSVMWriter(w io.Writer) *LIBSVMWriter {
	return &LIBSVMWriter{w: bufio.NewWriter(w)}
}

// Write emits one sample with the given label.
func (l *LIBSVMWriter) Write(label float64, s Sample) error {
	if _, err := fmt.Fprintf(l.w, "%g", label); err != nil {
		return err
	}
	for i, ix := range s.Idx {
		if _, err := fmt.Fprintf(l.w, " %d:%g", ix+1, s.Val[i]); err != nil {
			return err
		}
	}
	return l.w.WriteByte('\n')
}

// Flush flushes buffered output.
func (l *LIBSVMWriter) Flush() error { return l.w.Flush() }
