// Package stream models the online data layer of the reproduction:
// sparse samples, one-pass sources, the buffered shuffler the paper
// prescribes for de-correlating stored data (§3), LIBSVM file I/O, and a
// prefix-fitted standardizer for correlation workloads.
package stream

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one observation Y^(t) in sparse form: Idx lists the feature
// indices with non-zero values, Val the matching values. Indices are
// strictly increasing. Features absent from Idx are zero.
type Sample struct {
	Idx []int
	Val []float64
}

// NNZ returns the number of stored non-zeros.
func (s Sample) NNZ() int { return len(s.Idx) }

// Validate checks structural invariants against dimension d.
func (s Sample) Validate(d int) error {
	if len(s.Idx) != len(s.Val) {
		return fmt.Errorf("stream: index/value length mismatch (%d vs %d)", len(s.Idx), len(s.Val))
	}
	prev := -1
	for i, ix := range s.Idx {
		if ix <= prev {
			return fmt.Errorf("stream: indices not strictly increasing at position %d", i)
		}
		if ix < 0 || ix >= d {
			return fmt.Errorf("stream: index %d out of range [0,%d)", ix, d)
		}
		if math.IsNaN(s.Val[i]) || math.IsInf(s.Val[i], 0) {
			return fmt.Errorf("stream: non-finite value %v at index %d", s.Val[i], ix)
		}
		prev = ix
	}
	return nil
}

// Dense materializes the sample as a length-d vector.
func (s Sample) Dense(d int) []float64 {
	out := make([]float64, d)
	for i, ix := range s.Idx {
		out[ix] = s.Val[i]
	}
	return out
}

// FromDense builds a sparse sample from a dense row, dropping zeros.
func FromDense(row []float64) Sample {
	var s Sample
	for i, v := range row {
		if v != 0 {
			s.Idx = append(s.Idx, i)
			s.Val = append(s.Val, v)
		}
	}
	return s
}

// Clone deep-copies the sample.
func (s Sample) Clone() Sample {
	return Sample{Idx: append([]int(nil), s.Idx...), Val: append([]float64(nil), s.Val...)}
}

// Source yields samples one at a time; the stream ends when ok is false.
// Dim reports the feature dimensionality d.
type Source interface {
	Next() (s Sample, ok bool)
	Dim() int
}

// SliceSource replays a fixed slice of samples.
type SliceSource struct {
	samples []Sample
	dim     int
	pos     int
}

// NewSliceSource wraps samples of dimension dim.
func NewSliceSource(samples []Sample, dim int) *SliceSource {
	return &SliceSource{samples: samples, dim: dim}
}

// Next implements Source.
func (s *SliceSource) Next() (Sample, bool) {
	if s.pos >= len(s.samples) {
		return Sample{}, false
	}
	out := s.samples[s.pos]
	s.pos++
	return out, true
}

// Dim implements Source.
func (s *SliceSource) Dim() int { return s.dim }

// Reset rewinds to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of samples.
func (s *SliceSource) Len() int { return len(s.samples) }

// MatrixSource streams the rows of a dense matrix as sparse samples.
type MatrixSource struct {
	rows [][]float64
	pos  int
}

// NewMatrixSource wraps rows (all the same length).
func NewMatrixSource(rows [][]float64) *MatrixSource { return &MatrixSource{rows: rows} }

// Next implements Source.
func (m *MatrixSource) Next() (Sample, bool) {
	if m.pos >= len(m.rows) {
		return Sample{}, false
	}
	s := FromDense(m.rows[m.pos])
	m.pos++
	return s, true
}

// Dim implements Source.
func (m *MatrixSource) Dim() int {
	if len(m.rows) == 0 {
		return 0
	}
	return len(m.rows[0])
}

// Reset rewinds to the first row.
func (m *MatrixSource) Reset() { m.pos = 0 }

// Limit caps a source at n samples.
type Limit struct {
	src  Source
	left int
}

// NewLimit wraps src to yield at most n samples.
func NewLimit(src Source, n int) *Limit { return &Limit{src: src, left: n} }

// Next implements Source.
func (l *Limit) Next() (Sample, bool) {
	if l.left <= 0 {
		return Sample{}, false
	}
	l.left--
	return l.src.Next()
}

// Dim implements Source.
func (l *Limit) Dim() int { return l.src.Dim() }

// FuncSource adapts a generator function to a Source.
type FuncSource struct {
	fn  func() (Sample, bool)
	dim int
}

// NewFuncSource wraps fn producing samples of dimension dim.
func NewFuncSource(dim int, fn func() (Sample, bool)) *FuncSource {
	return &FuncSource{fn: fn, dim: dim}
}

// Next implements Source.
func (f *FuncSource) Next() (Sample, bool) { return f.fn() }

// Dim implements Source.
func (f *FuncSource) Dim() int { return f.dim }

// Drain consumes src fully and returns the samples (for tests and small
// datasets).
func Drain(src Source) []Sample {
	var out []Sample
	for {
		s, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, s)
	}
}

// SortSampleInPlace restores the strictly-increasing index invariant of a
// sample whose coordinates were assembled out of order, summing duplicate
// indices.
func SortSampleInPlace(s *Sample) {
	type pair struct {
		ix int
		v  float64
	}
	ps := make([]pair, len(s.Idx))
	for i := range s.Idx {
		ps[i] = pair{s.Idx[i], s.Val[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].ix < ps[j].ix })
	s.Idx = s.Idx[:0]
	s.Val = s.Val[:0]
	for _, p := range ps {
		n := len(s.Idx)
		if n > 0 && s.Idx[n-1] == p.ix {
			s.Val[n-1] += p.v
			continue
		}
		s.Idx = append(s.Idx, p.ix)
		s.Val = append(s.Val, p.v)
	}
}
