package shard

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/countsketch"
	"repro/internal/stream"
)

// newFoldManager builds a small CS manager (no warm-up) whose fold
// behavior the tests below drive directly.
func newFoldManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	cfg.Dim = 24
	if cfg.Engine.Kind == "" {
		cfg.Engine = EngineSpec{
			Kind:   KindCS,
			Sketch: countsketch.Config{Tables: 3, Range: 1024, Seed: 31},
			T:      100_000,
		}
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func foldSamples(n int) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		a := i % 21
		out[i] = stream.Sample{Idx: []int{a, a + 1, a + 2}, Val: []float64{1, -2, 3}}
	}
	return out
}

// waitFoldLevel polls the published per-shard fold levels until the
// manager-wide max reaches want (or the deadline passes).
func waitFoldLevel(t *testing.T, m *Manager, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.MaxShardFoldLevel() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("fold level never reached %d (at %d)", want, m.MaxShardFoldLevel())
}

// TestIdleFoldPolicy drives the elastic-memory lifecycle end to end:
// quiet shards fold after the configured idle ticks, folded shards keep
// answering queries, and the first ingest batch unfolds them.
func TestIdleFoldPolicy(t *testing.T) {
	m := newFoldManager(t, Config{
		Shards:        2,
		FoldIdle:      5 * time.Millisecond,
		FoldIdleTicks: 1,
		FoldLevels:    2,
	})
	if _, _, err := m.Ingest(foldSamples(200)); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	before, err := m.TopKMagnitude(5)
	if err != nil {
		t.Fatal(err)
	}

	// Idle: both shards must fold to level 2.
	waitFoldLevel(t, m, 2)

	// Folded shards still serve; unfold-by-replication means the folded
	// estimates are exactly what post-unfold estimates will be.
	folded, err := m.TopKMagnitude(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(folded) != len(before) {
		t.Fatalf("folded top-k returned %d pairs, want %d", len(folded), len(before))
	}
	for i, p := range folded {
		if math.IsNaN(p.Estimate) || math.IsInf(p.Estimate, 0) {
			t.Fatalf("folded top-k[%d] non-finite: %+v", i, p)
		}
	}

	// Ingest unfolds on the first batch; the published level returns to 0.
	if _, _, err := m.Ingest(foldSamples(50)); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := m.MaxShardFoldLevel(); got != 0 {
		t.Fatalf("fold level %d after ingest, want 0", got)
	}

	st, err := m.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var folds, unfolds uint64
	for _, sh := range st.PerShard {
		folds += sh.Health.Folds
		unfolds += sh.Health.Unfolds
	}
	if folds == 0 || unfolds == 0 {
		t.Fatalf("fold lifecycle counters: folds=%d unfolds=%d, want both > 0", folds, unfolds)
	}
}

// TestSnapshotFoldShrink pins the headline economy: a SnapshotFold=2
// deployment writes snapshots at least 2× smaller than the full-
// resolution form of the same state, the folded snapshot restores, and
// the restored manager unfolds on its first ingest batch.
func TestSnapshotFoldShrink(t *testing.T) {
	const fold = 2
	full := newFoldManager(t, Config{Shards: 2})
	folded := newFoldManager(t, Config{Shards: 2, SnapshotFold: fold})
	for _, m := range []*Manager{full, folded} {
		if _, _, err := m.Ingest(foldSamples(300)); err != nil {
			t.Fatal(err)
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	fullDir, foldDir := t.TempDir(), t.TempDir()
	if err := full.Snapshot(fullDir); err != nil {
		t.Fatal(err)
	}
	if err := folded.Snapshot(foldDir); err != nil {
		t.Fatal(err)
	}
	fb, pb := full.LastSnapshotBytes(), folded.LastSnapshotBytes()
	if fb == 0 || pb == 0 {
		t.Fatalf("snapshot byte gauges unset: full=%d folded=%d", fb, pb)
	}
	if ratio := float64(fb) / float64(pb); ratio < 2 {
		t.Fatalf("SnapshotFold=%d shrink only %.2fx (full %d B, folded %d B), want ≥ 2x", fold, ratio, fb, pb)
	}
	if full.Snapshots() != 1 || folded.Snapshots() != 1 {
		t.Fatalf("snapshot counters: %d / %d, want 1 / 1", full.Snapshots(), folded.Snapshots())
	}

	restored, err := Restore(foldDir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.MaxShardFoldLevel(); got != fold {
		t.Fatalf("restored fold level %d, want %d", got, fold)
	}
	// The folded restore serves, and the first ingest unfolds it.
	if _, err := restored.TopKMagnitude(5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := restored.Ingest(foldSamples(50)); err != nil {
		t.Fatal(err)
	}
	if err := restored.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := restored.MaxShardFoldLevel(); got != 0 {
		t.Fatalf("restored manager still folded at level %d after ingest", got)
	}
	if restored.Step() != full.Step()+50 {
		t.Fatalf("restored Step = %d, want %d", restored.Step(), full.Step()+50)
	}
}

// TestTelemetryBaselinePersistence is the satellite-1 contract: the
// manifest carries the cumulative telemetry baselines, a restored
// manager resumes them (monotonic counters across restore), and a
// second snapshot never reports less than the first.
func TestTelemetryBaselinePersistence(t *testing.T) {
	m := newFoldManager(t, Config{Shards: 2})
	if _, _, err := m.Ingest(foldSamples(200)); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	// Manager-level robustness counters: set directly (driving real
	// sheds needs a parked worker; the persistence contract is the same).
	m.shedRequests.Store(7)
	m.deadlineOps.Store(11)
	m.deadlineQueries.Store(3)

	dir := t.TempDir()
	if err := m.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Telemetry *telemetryBaseline `json:"telemetry"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if man.Telemetry == nil {
		t.Fatal("manifest carries no telemetry baseline block")
	}
	if man.Telemetry.ShedRequests != 7 || man.Telemetry.DeadlineOps != 11 || man.Telemetry.DeadlineQueries != 3 {
		t.Fatalf("manifest baselines %+v, want shed=7 deadlineOps=11 deadlineQueries=3", man.Telemetry)
	}
	var batches uint64
	for _, sb := range man.Telemetry.Shards {
		batches += sb.Batches
	}
	if batches == 0 {
		t.Fatal("manifest shard baselines carry no applied batches")
	}

	restored, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	adm := restored.AdmissionState()
	if adm.ShedRequests != 7 || adm.DeadlineOps != 11 || adm.DeadlineQueries != 3 {
		t.Fatalf("restored admission counters %+v, want the snapshotted baselines", adm)
	}

	// Monotonicity: more traffic, second snapshot, baselines only grow.
	if _, _, err := restored.Ingest(foldSamples(100)); err != nil {
		t.Fatal(err)
	}
	if err := restored.Flush(); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := restored.Snapshot(dir2); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(filepath.Join(dir2, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man2 struct {
		Telemetry *telemetryBaseline `json:"telemetry"`
	}
	if err := json.Unmarshal(raw2, &man2); err != nil {
		t.Fatal(err)
	}
	var batches2 uint64
	for _, sb := range man2.Telemetry.Shards {
		batches2 += sb.Batches
	}
	if batches2 <= batches {
		t.Fatalf("batch baseline not monotonic across restore: %d then %d", batches, batches2)
	}
}

// TestFoldPolicyIngestAllocFree pins the elastic-memory acceptance
// bar: arming the idle-fold policy must cost the steady-state ingest
// path nothing — the routing path stays allocation-free with the fold
// ticker live (a long idle window keeps it from firing mid-measure;
// the armed-policy bookkeeping, the quiet-tick reset and the
// unfold-on-ingest check, is what this measures).
func TestFoldPolicyIngestAllocFree(t *testing.T) {
	m := newFoldManager(t, Config{
		Shards:        2,
		FoldIdle:      time.Hour,
		FoldIdleTicks: 2,
		FoldLevels:    3,
	})
	batch := foldSamples(8)
	for i := 0; i < 50; i++ {
		if _, _, err := m.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := m.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	})
	// Same allowance as TestRouteStagingReuse: the routing path itself
	// is allocation-free; the slack absorbs worker-side noise that
	// AllocsPerRun's global counters pick up.
	if avg > 3 {
		t.Fatalf("fold-policy ingest steady state allocates %.1f times per call, want 0", avg)
	}
}

// TestTopKMemo pins the estimate cache: a repeated folded-tolerant
// top-k is served from the memo, and any ingest or flush invalidates it.
func TestTopKMemo(t *testing.T) {
	m := newFoldManager(t, Config{Shards: 2})
	if _, _, err := m.Ingest(foldSamples(200)); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first, cached, err := m.TopKCachedT(ctx, 5, "", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first query reported cached")
	}
	second, cached, err := m.TopKCachedT(ctx, 5, "", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("repeat query missed the memo")
	}
	if len(first) != len(second) {
		t.Fatalf("memo result differs: %d vs %d pairs", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("memo pair %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}

	// A different shape misses.
	if _, cached, err = m.TopKCachedT(ctx, 3, "", true, nil); err != nil || cached {
		t.Fatalf("k=3 after k=5: cached=%v err=%v, want fresh fan-out", cached, err)
	}

	// Ingest invalidates.
	if _, _, err := m.Ingest(foldSamples(30)); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, cached, err = m.TopKCachedT(ctx, 3, "", true, nil); err != nil || cached {
		t.Fatalf("post-ingest query: cached=%v err=%v, want invalidated", cached, err)
	}
	if _, cached, err = m.TopKCachedT(ctx, 3, "", true, nil); err != nil || !cached {
		t.Fatalf("repeat after rewarm: cached=%v err=%v, want hit", cached, err)
	}

	// Flush invalidates even with no new samples.
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, cached, err = m.TopKCachedT(ctx, 3, "", true, nil); err != nil || cached {
		t.Fatalf("post-flush query: cached=%v err=%v, want invalidated", cached, err)
	}

	// The plain uncached path must never report a memo hit but still
	// warm the memo for folded-tolerant readers.
	if _, err := m.TopKMagnitude(7); err != nil {
		t.Fatal(err)
	}
	if _, cached, err = m.TopKCachedT(ctx, 7, "", true, nil); err != nil || !cached {
		t.Fatalf("memo not warmed by the uncached path: cached=%v err=%v", cached, err)
	}
}
