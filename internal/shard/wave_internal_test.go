package shard

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// setWaveGroup flips every worker engine's wave group on its own
// goroutine (exec), so the change is ordered with ingest like any other
// fresh-lane closure.
func setWaveGroup(t *testing.T, m *Manager, g int) {
	t.Helper()
	err := m.execAll(context.Background(), ConsistencyFresh, nil, func(w *worker) {
		w.fast.(sketchapi.WaveTuner).SetWaveGroup(g)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardWaveMatchesScalar pins the wave pipeline at the serving
// layer: a manager whose shard engines run wave-grouped OfferPairs
// (the default apply path) must produce bit-identical merged sketches,
// top-k, and op counts to one forced onto the scalar batch loop —
// fixed-horizon and unbounded (λ = 1 and λ < 1).
func TestShardWaveMatchesScalar(t *testing.T) {
	const dim, T = 40, 400
	rng := rand.New(rand.NewSource(99))
	samples := make([]stream.Sample, 160)
	for i := range samples {
		row := make([]float64, dim)
		for j := range row {
			if rng.Float64() < 0.6 {
				row[j] = rng.NormFloat64()
			}
		}
		row[2] = row[9]*0.9 + 0.1*rng.NormFloat64()
		samples[i] = stream.FromDense(row)
	}
	for _, lambda := range []float64{0, 1, 0.999} {
		build := func() *Manager {
			spec := EngineSpec{
				Kind:     KindASCS,
				Sketch:   countsketch.Config{Tables: 5, Range: 1 << 10, Seed: 3},
				T:        T,
				Schedule: core.Hyperparams{T0: 20, Theta: 0.05, Tau0: 1e-5, T: T},
				Lambda:   lambda,
			}
			m, err := New(Config{Dim: dim, Shards: 3, Engine: spec})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		scalar, wave := build(), build()
		defer scalar.Close()
		defer wave.Close()
		setWaveGroup(t, scalar, 1)
		for lo := 0; lo < len(samples); lo += 32 {
			hi := lo + 32
			if hi > len(samples) {
				hi = len(samples)
			}
			if _, _, err := scalar.Ingest(samples[lo:hi]); err != nil {
				t.Fatal(err)
			}
			if _, _, err := wave.Ingest(samples[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if err := scalar.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := wave.Flush(); err != nil {
			t.Fatal(err)
		}
		st, err := scalar.TopKMagnitude(12)
		if err != nil {
			t.Fatal(err)
		}
		wt, err := wave.TopKMagnitude(12)
		if err != nil {
			t.Fatal(err)
		}
		if len(st) != len(wt) {
			t.Fatalf("λ=%v: top-k lengths %d vs %d", lambda, len(st), len(wt))
		}
		for i := range st {
			if st[i] != wt[i] {
				t.Fatalf("λ=%v rank %d: scalar %+v != wave %+v", lambda, i, st[i], wt[i])
			}
		}
		ss, err := scalar.MergedSketch()
		if err != nil {
			t.Fatal(err)
		}
		ws, err := wave.MergedSketch()
		if err != nil {
			t.Fatal(err)
		}
		var bs, bw bytes.Buffer
		if _, err := ss.WriteTo(&bs); err != nil {
			t.Fatal(err)
		}
		if _, err := ws.WriteTo(&bw); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bs.Bytes(), bw.Bytes()) {
			t.Fatalf("λ=%v: merged shard sketches diverge", lambda)
		}
		sst, err := scalar.Stats()
		if err != nil {
			t.Fatal(err)
		}
		wst, err := wave.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if sst.Ops != wst.Ops {
			t.Fatalf("λ=%v: op counts diverge: %d vs %d", lambda, sst.Ops, wst.Ops)
		}
	}
}

// TestRouteStagingReuse pins the Ingest staging-buffer bugfix: after a
// warm-up round has populated the freelists, further Ingest calls must
// recycle their op buffers instead of growing fresh ones per call.
func TestRouteStagingReuse(t *testing.T) {
	const dim = 32
	m, err := New(Config{Dim: dim, Shards: 2, Engine: EngineSpec{
		Kind:   KindCS,
		Sketch: countsketch.Config{Tables: 5, Range: 1 << 10, Seed: 1},
		T:      1 << 30,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	rng := rand.New(rand.NewSource(7))
	row := make([]float64, dim)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	batch := []stream.Sample{stream.FromDense(row)}
	// Warm the freelists and the worker scratch.
	for i := 0; i < 50; i++ {
		if _, _, err := m.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := m.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	})
	// The routing path itself must be allocation-free; the small
	// allowance absorbs worker-side noise (tracker map growth on first
	// sightings) that AllocsPerRun's global counters pick up.
	if avg > 3 {
		t.Fatalf("Ingest steady state allocates %.1f times per call; staging buffers are not being reused", avg)
	}
}
