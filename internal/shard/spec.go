package shard

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/covstream"
	"repro/internal/faults"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// Kind names a serving engine. Only engines that implement
// sketchapi.Snapshotter are servable — crash recovery is part of the
// serving contract — and all four engines now do.
type Kind string

const (
	// KindCS is the vanilla Count Sketch engine.
	KindCS Kind = "CS"
	// KindASCS is the paper's active-sampling engine.
	KindASCS Kind = "ASCS"
	// KindASketch is the Augmented Sketch baseline (§8.3).
	KindASketch Kind = "ASketch"
	// KindColdFilter is the Cold Filter baseline (§8.3).
	KindColdFilter Kind = "ColdFilter"
)

var zeroSchedule core.Hyperparams

// EngineSpec is a fully serializable description of a per-shard engine.
// Every shard is built from the same spec: identical sketch shape,
// seed, and hash family — that shared hashing is what makes the
// fan-out/merge query path (MergedSketch) exact for the CS engine.
type EngineSpec struct {
	// Kind selects the engine.
	Kind Kind `json:"kind"`
	// Sketch is the per-shard sketch shape and hashing.
	Sketch countsketch.Config `json:"sketch"`
	// T is the stream horizon (global sample count the 1/T scaling and
	// the τ schedule are calibrated to).
	T int `json:"t"`
	// Schedule is the solved ASCS schedule (ignored for KindCS). Zero
	// with KindASCS means "derive from the warm-up prefix".
	Schedule core.Hyperparams `json:"schedule"`
	// OneSided selects the one-sided ASCS gate μ̂ ≥ τ (default is the
	// two-sided |μ̂| ≥ τ of Theorems 1–2).
	OneSided bool `json:"one_sided,omitempty"`

	// Lambda, when in (0,1], switches the deployment to exponential-
	// decay (unbounded-stream) mode: there is no horizon — T is
	// reinterpreted as the effective window W the engines normalize by
	// (typically W = round(1/(1−λ))) — engines age their tables by λ per
	// step, trackers age their candidate scores, and Ingest never
	// returns ErrHorizon. λ = 1 serves an unbounded stream with aging
	// disabled, bit-identical to the fixed-horizon engines over any
	// prefix. Zero keeps the classic fixed-horizon deployment.
	Lambda float64 `json:"lambda,omitempty"`

	// FilterCap (KindASketch) is the exact-filter slot count; zero
	// derives max(8, Tables·Range/100), the same rule as the batch
	// pipeline.
	FilterCap int `json:"filter_cap,omitempty"`
	// CFThreshold (KindColdFilter) is the layer-1 saturation threshold
	// in final-mean units; zero derives the batch pipeline default 0.05.
	CFThreshold float64 `json:"cf_threshold,omitempty"`
	// L1Sketch (KindColdFilter) is the layer-1 sketch shape; zero
	// derives a quarter of Sketch's range (Sketch then keeps the rest
	// for layer 2), the same split as the batch pipeline.
	L1Sketch countsketch.Config `json:"l1_sketch,omitempty"`
}

// decaying reports whether the spec describes an unbounded
// (exponential-decay) deployment.
func (sp EngineSpec) decaying() bool { return sp.Lambda != 0 }

// validate checks the spec; scheduleRequired is false while the
// schedule may still be derived from a warm-up prefix.
func (sp EngineSpec) validate(scheduleRequired bool) error {
	switch sp.Kind {
	case KindCS, KindASCS, KindASketch, KindColdFilter:
	default:
		return fmt.Errorf("shard: unknown engine kind %q (want %q, %q, %q or %q)",
			sp.Kind, KindCS, KindASCS, KindASketch, KindColdFilter)
	}
	if sp.T < 1 {
		return fmt.Errorf("shard: engine horizon/window T must be ≥ 1, got %d", sp.T)
	}
	if sp.Lambda != 0 {
		if err := sketchapi.ValidateDecay(sp.Lambda); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
	}
	if sp.Kind == KindASCS && scheduleRequired && sp.Schedule == zeroSchedule {
		return fmt.Errorf("shard: ASCS spec has no schedule")
	}
	if sp.FilterCap < 0 {
		return fmt.Errorf("shard: FilterCap must be ≥ 0, got %d", sp.FilterCap)
	}
	if sp.CFThreshold < 0 {
		return fmt.Errorf("shard: CFThreshold must be ≥ 0, got %v", sp.CFThreshold)
	}
	return nil
}

// sketcher is the table-access facet shared by both servable engines,
// used by the merge path.
type sketcher interface {
	Sketch() *countsketch.Sketch
}

// filterCap resolves the KindASketch exact-filter size (same derivation
// as the batch pipeline).
func (sp EngineSpec) filterCap() int {
	if sp.FilterCap > 0 {
		return sp.FilterCap
	}
	cap := sp.Sketch.Tables * sp.Sketch.Range / 100
	if cap < 8 {
		cap = 8
	}
	return cap
}

// coldFilterLayers resolves the KindColdFilter layer shapes and
// saturation threshold: explicit L1Sketch/CFThreshold when set, else
// the batch pipeline's quarter-budget split and 0.05 threshold.
func (sp EngineSpec) coldFilterLayers() (l1, l2 countsketch.Config, thresh float64) {
	l1 = sp.L1Sketch
	l2 = sp.Sketch
	if l1 == (countsketch.Config{}) {
		l1 = countsketch.Config{Tables: sp.Sketch.Tables, Range: max(sp.Sketch.Range/4, 2), Seed: sp.Sketch.Seed ^ 0x1f}
		l2.Range = max(sp.Sketch.Range-l1.Range, 2)
	}
	thresh = sp.CFThreshold
	if thresh == 0 {
		thresh = 0.05
	}
	return l1, l2, thresh
}

// build constructs one engine from the spec: the fixed-horizon
// constructor, or the decayed (unbounded) one when Lambda is set.
func (sp EngineSpec) build() (sketchapi.Snapshotter, error) {
	switch sp.Kind {
	case KindCS:
		if sp.decaying() {
			return countsketch.NewMeanSketchDecayed(sp.Sketch, sp.T, sp.Lambda)
		}
		return countsketch.NewMeanSketch(sp.Sketch, sp.T)
	case KindASCS:
		if sp.decaying() {
			return core.NewEngineDecayed(sp.Sketch, sp.Schedule, !sp.OneSided, sp.Lambda)
		}
		return core.NewEngine(sp.Sketch, sp.Schedule, !sp.OneSided)
	case KindASketch:
		if sp.decaying() {
			return baselines.NewASketchDecayed(sp.Sketch, sp.T, sp.filterCap(), sp.Lambda)
		}
		return baselines.NewASketch(sp.Sketch, sp.T, sp.filterCap())
	case KindColdFilter:
		l1, l2, thresh := sp.coldFilterLayers()
		if sp.decaying() {
			return baselines.NewColdFilterDecayed(l1, l2, sp.T, thresh, sp.Lambda)
		}
		return baselines.NewColdFilter(l1, l2, sp.T, thresh)
	default:
		return nil, fmt.Errorf("shard: unknown engine kind %q", sp.Kind)
	}
}

// ServeOptions describes a serving deployment in operator-level terms —
// total memory across all shards, a warm-up fraction — and is the single
// translation into a shard.Config. The mem→range split, engine-kind
// defaults, and warm-up sizing rules live here so the entry points that
// build managers (ascs.NewSharded, the ascsd daemon, the ascsload
// benchmark) cannot drift apart.
type ServeOptions struct {
	// Dim is the feature dimensionality d. Required.
	Dim int
	// Samples is the stream horizon T. Required.
	Samples int
	// Shards is the worker count N (default 1).
	Shards int
	// Kind selects the engine (default KindASCS).
	Kind Kind
	// Tables is the hash-table count K per shard sketch (default 5).
	Tables int
	// MemoryFloats is the total sketch budget in float64 cells across
	// all shards; each shard gets MemoryFloats/(Tables·Shards) buckets
	// per table. Required unless Range is set.
	MemoryFloats int
	// Range overrides the per-shard buckets per table directly.
	Range int
	// Seed makes hashing deterministic (default 1).
	Seed uint64
	// Alpha is the assumed signal-pair sparsity for the warm-up solver
	// (shard.Config defaults it to 0.005).
	Alpha float64
	// Standardize rescales features to unit variance from the warm-up
	// prefix.
	Standardize bool
	// WarmupFraction sizes the warm-up prefix via covstream.WarmupSize
	// (default 0.05) when Warmup is zero and a warm-up is needed.
	WarmupFraction float64
	// Warmup overrides the warm-up prefix length directly.
	Warmup int
	// TrackCandidates bounds each shard's retrieval candidate set
	// (shard.Config defaults it to 1<<14).
	TrackCandidates int
	// QueueLen and FlushOps tune the ingest pipeline (shard.Config
	// defaults: 64 batches, 4096 ops).
	QueueLen, FlushOps int
	// OneSided selects the one-sided ASCS gate.
	OneSided bool
	// QueryConsistency is the default query lane: ConsistencyFresh
	// (queries ride the ingest FIFO and observe every prior batch — the
	// default) or ConsistencyFast (bounded priority lane: queries jump
	// queued ingest batches for bounded tail latency at the cost of
	// bounded staleness). Per-query overrides are available either way.
	QueryConsistency Consistency

	// Window, when positive, serves an unbounded stream with a sliding
	// effective window of that many samples: λ = 1 − 1/Window, the
	// engines normalize by Window instead of a horizon, and Samples is
	// ignored (warm-up sizing uses the window). Mutually exclusive with
	// Lambda.
	Window int
	// Lambda, when in (0,1], sets the decay factor directly; the
	// effective window is round(1/(1−λ)) (λ = 1: unbounded with aging
	// disabled, normalized by Samples). Mutually exclusive with Window.
	Lambda float64

	// Admission selects the ingest admission policy: AdmitBlock
	// (default), AdmitShed, or AdmitDegrade — see the AdmissionPolicy
	// docs for the semantics.
	Admission AdmissionPolicy
	// ShedHighWater, DegradeHigh, DegradeLow tune the admission bound
	// and governor hysteresis (shard.Config defaults: 1.0, 0.8, 0.3).
	ShedHighWater, DegradeHigh, DegradeLow float64

	// FoldIdle enables the idle-shard fold policy: a shard with no
	// ingest for FoldIdleTicks consecutive FoldIdle intervals folds its
	// sketch in place (FoldLevels width halvings), unfolding on the
	// first ingest batch. Zero disables. See shard.Config for details.
	FoldIdle time.Duration
	// FoldIdleTicks and FoldLevels tune the policy (shard.Config
	// defaults: 2 ticks, 3 levels clamped to the engine maximum).
	FoldIdleTicks, FoldLevels int
	// SnapshotFold, when positive, streams snapshot sketch blobs
	// pre-folded to that fold level (up to 2^L× fewer bytes on disk).
	SnapshotFold int

	// WALDir arms the write-ahead log under that directory; WALSync and
	// WALSegmentBytes tune it (shard.Config defaults: "batch", 64 MiB).
	// Empty disables durability, as before.
	WALDir  string
	WALSync string
	// WALSegmentBytes caps each log segment before rotation.
	WALSegmentBytes int64

	// Faults wires the deterministic chaos injector (nil in
	// production).
	Faults *faults.Injector
}

// NewFromOptions applies the shared derivation rules and starts a
// Manager: engines needing no warm-up (CS without standardization) start
// immediately, ASCS derives its schedule from the sized warm-up prefix.
// Window/Lambda switch the deployment to unbounded exponential-decay
// serving; the window↔λ coupling lives here so every entry point (the
// library, the ascsd daemon, the ascsload benchmark) derives it
// identically.
func NewFromOptions(o ServeOptions) (*Manager, error) {
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Tables == 0 {
		o.Tables = 5
	}
	if o.Kind == "" {
		o.Kind = KindASCS
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Window != 0 && o.Lambda != 0 {
		return nil, fmt.Errorf("shard: set Window or Lambda, not both")
	}
	if o.Window < 0 {
		return nil, fmt.Errorf("shard: Window must be positive, got %d", o.Window)
	}
	if o.Window > 0 {
		if o.Window < 4 {
			return nil, fmt.Errorf("shard: Window must be ≥ 4 samples, got %d", o.Window)
		}
		o.Lambda = sketchapi.WindowLambda(float64(o.Window))
		o.Samples = o.Window
	} else if o.Lambda != 0 {
		if err := sketchapi.ValidateDecay(o.Lambda); err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		if o.Lambda < 1 {
			// The effective window replaces the horizon as the engines'
			// normalizer and as the warm-up sizing basis.
			w := int(sketchapi.EffectiveWindow(o.Lambda) + 0.5)
			if w < 4 {
				return nil, fmt.Errorf("shard: Lambda=%v has an effective window of %d samples; use a factor closer to 1", o.Lambda, w)
			}
			o.Samples = w
		}
		// λ = 1: unbounded with aging disabled; Samples stays the
		// normalizer, exactly matching the fixed-horizon arithmetic.
	}
	if o.Range == 0 {
		if o.MemoryFloats <= 0 {
			return nil, fmt.Errorf("shard: set MemoryFloats or Range")
		}
		if o.Tables < 1 || o.Shards < 1 {
			return nil, fmt.Errorf("shard: Tables (%d) and Shards (%d) must be ≥ 1", o.Tables, o.Shards)
		}
		o.Range = o.MemoryFloats / (o.Tables * o.Shards)
	}
	if o.Range < 2 {
		return nil, fmt.Errorf("shard: per-shard range %d too small (raise MemoryFloats or lower Shards/Tables)", o.Range)
	}
	if fr := o.WarmupFraction; fr != 0 && (fr < 0 || fr > 0.5) {
		return nil, fmt.Errorf("shard: WarmupFraction must be in (0, 0.5], got %v", fr)
	}
	// Pass an explicit Warmup through even when the engine needs none:
	// New rejects it there, so a misconfigured flag fails fast instead
	// of being silently dropped.
	warm := o.Warmup
	if o.Kind == KindASCS || o.Standardize {
		if warm == 0 {
			fr := o.WarmupFraction
			if fr == 0 {
				fr = 0.05
			}
			warm = covstream.WarmupSize(fr, o.Samples)
		}
		if o.Lambda == 0 && warm >= o.Samples {
			return nil, fmt.Errorf("shard: Samples=%d leaves no room after the %d-sample warm-up prefix; increase Samples", o.Samples, warm)
		}
	}
	return New(Config{
		Dim:    o.Dim,
		Shards: o.Shards,
		Engine: EngineSpec{
			Kind:     o.Kind,
			Sketch:   countsketch.Config{Tables: o.Tables, Range: o.Range, Seed: o.Seed},
			T:        o.Samples,
			OneSided: o.OneSided,
			Lambda:   o.Lambda,
		},
		Warmup:           warm,
		Alpha:            o.Alpha,
		Standardize:      o.Standardize,
		QueueLen:         o.QueueLen,
		FlushOps:         o.FlushOps,
		TrackCandidates:  o.TrackCandidates,
		QueryConsistency: o.QueryConsistency,
		Admission:        o.Admission,
		ShedHighWater:    o.ShedHighWater,
		DegradeHigh:      o.DegradeHigh,
		DegradeLow:       o.DegradeLow,
		FoldIdle:         o.FoldIdle,
		FoldIdleTicks:    o.FoldIdleTicks,
		FoldLevels:       o.FoldLevels,
		SnapshotFold:     o.SnapshotFold,
		WALDir:           o.WALDir,
		WALSync:          o.WALSync,
		WALSegmentBytes:  o.WALSegmentBytes,
		Faults:           o.Faults,
	})
}

// AutoSpec derives an ASCS EngineSpec from a warm-up prefix, reusing
// the batch pipeline's §8.1 recipe (covstream.Warmup + ASCSParams) but
// solving the schedule for the *per-shard* sub-problem: key-space
// partitioning puts only ~p/shards variables into each R-bucket
// sketch, so the collision mass — and hence the solved exploration
// length and threshold slope — is that of the smaller universe.
func AutoSpec(samples []stream.Sample, dim, shards, horizon int, sk countsketch.Config, alpha float64) (EngineSpec, error) {
	if len(samples) == 0 {
		return EngineSpec{}, fmt.Errorf("shard: empty warm-up prefix")
	}
	if shards < 1 {
		shards = 1
	}
	// Roomy transient exploration sketch, as in the batch Estimator: the
	// μ̂ census must not be buried in collision noise at tight budgets.
	warmCfg := sk
	if warmCfg.Range < 1<<16 {
		warmCfg.Range = 1 << 16
	}
	warmCfg.Seed ^= 0x9c3
	warm, err := covstream.Warmup(stream.NewSliceSource(samples, dim), len(samples),
		warmCfg, covstream.SecondMoment, 0, int64(sk.Seed))
	if err != nil {
		return EngineSpec{}, err
	}
	params := warm.ASCSParams(alpha, horizon, sk.Tables, sk.Range)
	perShard := (pairs.Count(dim) + int64(shards) - 1) / int64(shards)
	if perShard < 2 {
		perShard = 2
	}
	params.P = perShard
	params = params.WithSuggestedDeltas()
	hp, err := params.Solve()
	if err != nil {
		return EngineSpec{}, fmt.Errorf("shard: solving warm-up schedule: %w", err)
	}
	return EngineSpec{Kind: KindASCS, Sketch: sk, T: horizon, Schedule: hp}, nil
}

// deriveSpec turns the buffered warm-up prefix into the final engine
// spec (and standardization factors when requested). Called under mu.
func (m *Manager) deriveSpec() (EngineSpec, []float64, error) {
	var invStd []float64
	samples := m.wbuf
	if m.cfg.Standardize {
		st, err := stream.NewStandardizer(stream.NewSliceSource(samples, m.cfg.Dim), len(samples), false)
		if err != nil {
			return EngineSpec{}, nil, err
		}
		invStd = append([]float64(nil), st.InvStds()...)
		scaled := make([]stream.Sample, len(samples))
		for i, s := range samples {
			out := stream.Sample{Idx: s.Idx, Val: make([]float64, len(s.Val))}
			for j, ix := range s.Idx {
				out.Val[j] = s.Val[j] * invStd[ix]
			}
			scaled[i] = out
		}
		samples = scaled
	}
	spec := m.cfg.Engine
	if spec.Kind == KindASCS && spec.Schedule == zeroSchedule {
		derived, err := AutoSpec(samples, m.cfg.Dim, m.cfg.Shards, spec.T, spec.Sketch, m.cfg.Alpha)
		if err != nil {
			return EngineSpec{}, nil, err
		}
		derived.OneSided = spec.OneSided
		// Decay mode survives schedule derivation: the solved schedule is
		// for T = the effective window, which is exactly what AutoSpec
		// received as the horizon.
		derived.Lambda = spec.Lambda
		spec = derived
	}
	return spec, invStd, nil
}
