package shard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/covstream"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// Kind names a serving engine. Only engines that implement
// sketchapi.Snapshotter are servable: crash recovery is part of the
// serving contract, so ASketch and Cold Filter (no serialization) are
// library-only baselines.
type Kind string

const (
	// KindCS is the vanilla Count Sketch engine.
	KindCS Kind = "CS"
	// KindASCS is the paper's active-sampling engine.
	KindASCS Kind = "ASCS"
)

var zeroSchedule core.Hyperparams

// EngineSpec is a fully serializable description of a per-shard engine.
// Every shard is built from the same spec: identical sketch shape,
// seed, and hash family — that shared hashing is what makes the
// fan-out/merge query path (MergedSketch) exact for the CS engine.
type EngineSpec struct {
	// Kind selects the engine.
	Kind Kind `json:"kind"`
	// Sketch is the per-shard sketch shape and hashing.
	Sketch countsketch.Config `json:"sketch"`
	// T is the stream horizon (global sample count the 1/T scaling and
	// the τ schedule are calibrated to).
	T int `json:"t"`
	// Schedule is the solved ASCS schedule (ignored for KindCS). Zero
	// with KindASCS means "derive from the warm-up prefix".
	Schedule core.Hyperparams `json:"schedule"`
	// OneSided selects the one-sided ASCS gate μ̂ ≥ τ (default is the
	// two-sided |μ̂| ≥ τ of Theorems 1–2).
	OneSided bool `json:"one_sided,omitempty"`
}

// validate checks the spec; scheduleRequired is false while the
// schedule may still be derived from a warm-up prefix.
func (sp EngineSpec) validate(scheduleRequired bool) error {
	switch sp.Kind {
	case KindCS, KindASCS:
	default:
		return fmt.Errorf("shard: unknown engine kind %q (want %q or %q)", sp.Kind, KindCS, KindASCS)
	}
	if sp.T < 1 {
		return fmt.Errorf("shard: engine horizon T must be ≥ 1, got %d", sp.T)
	}
	if sp.Kind == KindASCS && scheduleRequired && sp.Schedule == zeroSchedule {
		return fmt.Errorf("shard: ASCS spec has no schedule")
	}
	return nil
}

// sketcher is the table-access facet shared by both servable engines,
// used by the merge path.
type sketcher interface {
	Sketch() *countsketch.Sketch
}

// build constructs one engine from the spec.
func (sp EngineSpec) build() (sketchapi.Snapshotter, error) {
	switch sp.Kind {
	case KindCS:
		return countsketch.NewMeanSketch(sp.Sketch, sp.T)
	case KindASCS:
		return core.NewEngine(sp.Sketch, sp.Schedule, !sp.OneSided)
	default:
		return nil, fmt.Errorf("shard: unknown engine kind %q", sp.Kind)
	}
}

// ServeOptions describes a serving deployment in operator-level terms —
// total memory across all shards, a warm-up fraction — and is the single
// translation into a shard.Config. The mem→range split, engine-kind
// defaults, and warm-up sizing rules live here so the entry points that
// build managers (ascs.NewSharded, the ascsd daemon, the ascsload
// benchmark) cannot drift apart.
type ServeOptions struct {
	// Dim is the feature dimensionality d. Required.
	Dim int
	// Samples is the stream horizon T. Required.
	Samples int
	// Shards is the worker count N (default 1).
	Shards int
	// Kind selects the engine (default KindASCS).
	Kind Kind
	// Tables is the hash-table count K per shard sketch (default 5).
	Tables int
	// MemoryFloats is the total sketch budget in float64 cells across
	// all shards; each shard gets MemoryFloats/(Tables·Shards) buckets
	// per table. Required unless Range is set.
	MemoryFloats int
	// Range overrides the per-shard buckets per table directly.
	Range int
	// Seed makes hashing deterministic (default 1).
	Seed uint64
	// Alpha is the assumed signal-pair sparsity for the warm-up solver
	// (shard.Config defaults it to 0.005).
	Alpha float64
	// Standardize rescales features to unit variance from the warm-up
	// prefix.
	Standardize bool
	// WarmupFraction sizes the warm-up prefix via covstream.WarmupSize
	// (default 0.05) when Warmup is zero and a warm-up is needed.
	WarmupFraction float64
	// Warmup overrides the warm-up prefix length directly.
	Warmup int
	// TrackCandidates bounds each shard's retrieval candidate set
	// (shard.Config defaults it to 1<<14).
	TrackCandidates int
	// QueueLen and FlushOps tune the ingest pipeline (shard.Config
	// defaults: 64 batches, 4096 ops).
	QueueLen, FlushOps int
	// OneSided selects the one-sided ASCS gate.
	OneSided bool
}

// NewFromOptions applies the shared derivation rules and starts a
// Manager: engines needing no warm-up (CS without standardization) start
// immediately, ASCS derives its schedule from the sized warm-up prefix.
func NewFromOptions(o ServeOptions) (*Manager, error) {
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Tables == 0 {
		o.Tables = 5
	}
	if o.Kind == "" {
		o.Kind = KindASCS
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Range == 0 {
		if o.MemoryFloats <= 0 {
			return nil, fmt.Errorf("shard: set MemoryFloats or Range")
		}
		if o.Tables < 1 || o.Shards < 1 {
			return nil, fmt.Errorf("shard: Tables (%d) and Shards (%d) must be ≥ 1", o.Tables, o.Shards)
		}
		o.Range = o.MemoryFloats / (o.Tables * o.Shards)
	}
	if o.Range < 2 {
		return nil, fmt.Errorf("shard: per-shard range %d too small (raise MemoryFloats or lower Shards/Tables)", o.Range)
	}
	if fr := o.WarmupFraction; fr != 0 && (fr < 0 || fr > 0.5) {
		return nil, fmt.Errorf("shard: WarmupFraction must be in (0, 0.5], got %v", fr)
	}
	// Pass an explicit Warmup through even when the engine needs none:
	// New rejects it there, so a misconfigured flag fails fast instead
	// of being silently dropped.
	warm := o.Warmup
	if o.Kind == KindASCS || o.Standardize {
		if warm == 0 {
			fr := o.WarmupFraction
			if fr == 0 {
				fr = 0.05
			}
			warm = covstream.WarmupSize(fr, o.Samples)
		}
		if warm >= o.Samples {
			return nil, fmt.Errorf("shard: Samples=%d leaves no room after the %d-sample warm-up prefix; increase Samples", o.Samples, warm)
		}
	}
	return New(Config{
		Dim:    o.Dim,
		Shards: o.Shards,
		Engine: EngineSpec{
			Kind:     o.Kind,
			Sketch:   countsketch.Config{Tables: o.Tables, Range: o.Range, Seed: o.Seed},
			T:        o.Samples,
			OneSided: o.OneSided,
		},
		Warmup:          warm,
		Alpha:           o.Alpha,
		Standardize:     o.Standardize,
		QueueLen:        o.QueueLen,
		FlushOps:        o.FlushOps,
		TrackCandidates: o.TrackCandidates,
	})
}

// AutoSpec derives an ASCS EngineSpec from a warm-up prefix, reusing
// the batch pipeline's §8.1 recipe (covstream.Warmup + ASCSParams) but
// solving the schedule for the *per-shard* sub-problem: key-space
// partitioning puts only ~p/shards variables into each R-bucket
// sketch, so the collision mass — and hence the solved exploration
// length and threshold slope — is that of the smaller universe.
func AutoSpec(samples []stream.Sample, dim, shards, horizon int, sk countsketch.Config, alpha float64) (EngineSpec, error) {
	if len(samples) == 0 {
		return EngineSpec{}, fmt.Errorf("shard: empty warm-up prefix")
	}
	if shards < 1 {
		shards = 1
	}
	// Roomy transient exploration sketch, as in the batch Estimator: the
	// μ̂ census must not be buried in collision noise at tight budgets.
	warmCfg := sk
	if warmCfg.Range < 1<<16 {
		warmCfg.Range = 1 << 16
	}
	warmCfg.Seed ^= 0x9c3
	warm, err := covstream.Warmup(stream.NewSliceSource(samples, dim), len(samples),
		warmCfg, covstream.SecondMoment, 0, int64(sk.Seed))
	if err != nil {
		return EngineSpec{}, err
	}
	params := warm.ASCSParams(alpha, horizon, sk.Tables, sk.Range)
	perShard := (pairs.Count(dim) + int64(shards) - 1) / int64(shards)
	if perShard < 2 {
		perShard = 2
	}
	params.P = perShard
	params = params.WithSuggestedDeltas()
	hp, err := params.Solve()
	if err != nil {
		return EngineSpec{}, fmt.Errorf("shard: solving warm-up schedule: %w", err)
	}
	return EngineSpec{Kind: KindASCS, Sketch: sk, T: horizon, Schedule: hp}, nil
}

// deriveSpec turns the buffered warm-up prefix into the final engine
// spec (and standardization factors when requested). Called under mu.
func (m *Manager) deriveSpec() (EngineSpec, []float64, error) {
	var invStd []float64
	samples := m.wbuf
	if m.cfg.Standardize {
		st, err := stream.NewStandardizer(stream.NewSliceSource(samples, m.cfg.Dim), len(samples), false)
		if err != nil {
			return EngineSpec{}, nil, err
		}
		invStd = append([]float64(nil), st.InvStds()...)
		scaled := make([]stream.Sample, len(samples))
		for i, s := range samples {
			out := stream.Sample{Idx: s.Idx, Val: make([]float64, len(s.Val))}
			for j, ix := range s.Idx {
				out.Val[j] = s.Val[j] * invStd[ix]
			}
			scaled[i] = out
		}
		samples = scaled
	}
	spec := m.cfg.Engine
	if spec.Kind == KindASCS && spec.Schedule == zeroSchedule {
		derived, err := AutoSpec(samples, m.cfg.Dim, m.cfg.Shards, spec.T, spec.Sketch, m.cfg.Alpha)
		if err != nil {
			return EngineSpec{}, nil, err
		}
		derived.OneSided = spec.OneSided
		spec = derived
	}
	return spec, invStd, nil
}
