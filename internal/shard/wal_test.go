package shard

import (
	"errors"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/stream"
	"repro/internal/wal"
)

// newWALManager builds the small CS manager the WAL tests drive; cfg
// carries the WAL knobs (and any fold policy) of the scenario.
func newWALManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	cfg.Dim = 24
	if cfg.Engine.Kind == "" {
		cfg.Engine = EngineSpec{
			Kind:   KindCS,
			Sketch: countsketch.Config{Tables: 3, Range: 1024, Seed: 31},
			T:      100_000,
		}
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// walSamples produces a deterministic varied stream: distinct rows and
// magnitudes so a lost or duplicated replay batch shifts the sums.
func walSamples(n, seed int) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		a := (i + seed) % 21
		v := float64(1 + (i+seed)%7)
		out[i] = stream.Sample{Idx: []int{a, a + 1, a + 2}, Val: []float64{v, -2 * v, 3}}
	}
	return out
}

// ingestAll drives samples through in small batches and drains.
func ingestAll(t *testing.T, m *Manager, samples []stream.Sample) {
	t.Helper()
	for lo := 0; lo < len(samples); lo += 50 {
		hi := min(lo+50, len(samples))
		if _, _, err := m.Ingest(samples[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
}

// requireSameState asserts two managers agree bit-for-bit on step and
// on the full top-k surface.
func requireSameState(t *testing.T, want, got *Manager) {
	t.Helper()
	if ws, gs := want.Step(), got.Step(); ws != gs {
		t.Fatalf("Step: want %d, got %d", ws, gs)
	}
	wTop, err := want.TopKMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	gTop, err := got.TopKMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(wTop) != len(gTop) {
		t.Fatalf("topk lengths differ: %d vs %d", len(wTop), len(gTop))
	}
	for i := range wTop {
		if wTop[i] != gTop[i] {
			t.Fatalf("topk[%d] differs: %+v vs %+v", i, wTop[i], gTop[i])
		}
	}
	for _, p := range wTop {
		we, err := want.EstimateKey(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		ge, err := got.EstimateKey(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		if we != ge {
			t.Fatalf("estimate for key %d differs: %v vs %v", p.Key, we, ge)
		}
	}
}

// TestWALPayloadRoundTrip pins the record format: the shard-side
// encoding preserves batch boundaries, run structure, and values
// exactly, and structural damage fails with ErrCorrupt.
func TestWALPayloadRoundTrip(t *testing.T) {
	b := &rowBatch{}
	b.add(3, 17, 9, 1.5)
	b.add(3, 17, 11, -2.25)
	b.add(7, 18, 2, 0.125)
	b.add(3, 19, 9, 4)

	enc := appendWALPayload(nil, 1, b)
	var dec rowBatch
	sh, maxT, err := decodeWALPayload(enc, 2, &dec)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sh != 1 || maxT != 19 {
		t.Fatalf("decode = shard %d maxT %d, want 1/19", sh, maxT)
	}
	if len(dec.hdrs) != len(b.hdrs) || len(dec.prt) != len(b.prt) {
		t.Fatalf("decoded shape %d/%d, want %d/%d", len(dec.hdrs), len(dec.prt), len(b.hdrs), len(b.prt))
	}
	for i := range b.hdrs {
		if dec.hdrs[i] != b.hdrs[i] {
			t.Fatalf("hdr[%d] = %+v, want %+v", i, dec.hdrs[i], b.hdrs[i])
		}
	}
	for i := range b.prt {
		if dec.prt[i] != b.prt[i] || dec.xs[i] != b.xs[i] {
			t.Fatalf("pair[%d] = (%d,%v), want (%d,%v)", i, dec.prt[i], dec.xs[i], b.prt[i], b.xs[i])
		}
	}

	// Structural damage: truncated payload and out-of-range shard id.
	var junk rowBatch
	if _, _, err := decodeWALPayload(enc[:len(enc)-3], 2, &junk); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("truncated payload decode = %v, want ErrCorrupt", err)
	}
	if _, _, err := decodeWALPayload(enc, 1, &junk); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("out-of-range shard decode = %v, want ErrCorrupt", err)
	}
}

// TestWALFullReplayBitIdentical is the tentpole invariant at manager
// scope: run a stream through a WAL-armed manager, tear it down, boot a
// fresh manager on the same log, and require state bit-identical to a
// clean run of the same stream.
func TestWALFullReplayBitIdentical(t *testing.T) {
	samples := walSamples(1200, 3)

	clean := newWALManager(t, Config{})
	ingestAll(t, clean, samples)

	walDir := t.TempDir()
	armed := newWALManager(t, Config{WALDir: walDir, WALSync: "off"})
	ingestAll(t, armed, samples)
	ws := armed.WALStats()
	if ws == nil || !ws.Armed || ws.LastSeq == 0 {
		t.Fatalf("armed manager WAL stats = %+v", ws)
	}
	if err := armed.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := newWALManager(t, Config{WALDir: walDir, WALSync: "off"})
	if err := recovered.Flush(); err != nil {
		t.Fatal(err)
	}
	rs := recovered.WALStats()
	if rs == nil || rs.Recovery.ReplayedRecords == 0 || rs.Recovery.ReplayedRecords != rs.Recovery.MaxSeq {
		t.Fatalf("recovery stats = %+v, want full replay", rs)
	}
	if !rs.Armed {
		t.Fatal("recovered manager must re-arm the WAL")
	}
	requireSameState(t, clean, recovered)

	// The recovered manager keeps logging: new ingest lands above the
	// replayed sequence range.
	ingestAll(t, recovered, walSamples(100, 9))
	if s := recovered.WALStats(); s.LastSeq <= rs.Recovery.MaxSeq {
		t.Fatalf("post-recovery LastSeq %d did not advance past replayed max %d", s.LastSeq, rs.Recovery.MaxSeq)
	}
}

// TestWALSnapshotTailReplayBitIdentical runs the full ASCS recovery
// sequence: snapshot mid-stream (which records WAL coverage and
// truncates covered segments), keep ingesting, crash, then restore the
// snapshot and replay only the uncovered tail. Batch boundaries in the
// log make the replayed gate decisions identical to the original run's.
func TestWALSnapshotTailReplayBitIdentical(t *testing.T) {
	const (
		d      = 50
		n      = 1400
		shards = 3
		cut    = 700
	)
	ds := dataset.Simulation(d, n, 0.015, 31)
	samples := make([]stream.Sample, n)
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}
	cfg := Config{
		Dim: d, Shards: shards, Warmup: 150, Standardize: true, Alpha: 0.01,
		Engine: EngineSpec{Kind: KindASCS, Sketch: countsketch.Config{Tables: 5, Range: 2048, Seed: 23}, T: n},
	}

	clean, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	ingestAll(t, clean, samples)

	walDir, snapDir := t.TempDir(), t.TempDir()
	wcfg := cfg
	wcfg.WALDir, wcfg.WALSync = walDir, "off"
	armed, err := New(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer armed.Close()
	ingestAll(t, armed, samples[:cut])
	if err := armed.Snapshot(snapDir); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, armed, samples[cut:])
	if err := armed.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := RestoreWith(snapDir, RestoreOverrides{WALDir: walDir, WALSync: "off"})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if err := recovered.Flush(); err != nil {
		t.Fatal(err)
	}
	rs := recovered.WALStats()
	if rs == nil || rs.Recovery.ReplayedRecords == 0 {
		t.Fatalf("recovery stats = %+v, want a replayed tail", rs)
	}
	if rs.Recovery.SkippedRecords == 0 && rs.Recovery.MaxSeq == rs.Recovery.ReplayedRecords {
		t.Log("note: snapshot truncation removed all covered records; nothing skipped")
	}
	requireSameState(t, clean, recovered)
}

// TestWALRecoveryConcurrent boots a recovered manager and immediately
// hammers it with concurrent ingest and queries while the replay drains
// — the -race run of this test is the point.
func TestWALRecoveryConcurrent(t *testing.T) {
	walDir, snapDir := t.TempDir(), t.TempDir()
	seedMgr := newWALManager(t, Config{WALDir: walDir, WALSync: "off"})
	ingestAll(t, seedMgr, walSamples(400, 1))
	if err := seedMgr.Snapshot(snapDir); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, seedMgr, walSamples(400, 2))
	if err := seedMgr.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := RestoreWith(snapDir, RestoreOverrides{WALDir: walDir, WALSync: "off"})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, _, err := m.Ingest(walSamples(20, 100+g*20+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := m.TopKMagnitude(5); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.EstimateKey(uint64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Step(), 800+3*20*20; got != want {
		t.Fatalf("Step after concurrent recovery = %d, want %d", got, want)
	}
}

// TestWALReplayRacesIdleFold arms an aggressive idle-fold policy on the
// recovering manager: the fold ticker can fold a shard before (or
// between) replayed batches, and the ingest path's unfold-on-apply must
// restore full resolution first. The end state matches a clean run.
func TestWALReplayRacesIdleFold(t *testing.T) {
	samples := walSamples(1000, 5)
	foldCfg := Config{
		FoldIdle:      time.Millisecond,
		FoldIdleTicks: 1,
		FoldLevels:    2,
	}

	clean := newWALManager(t, foldCfg)
	ingestAll(t, clean, samples)

	walDir := t.TempDir()
	cfg := foldCfg
	cfg.WALDir, cfg.WALSync = walDir, "off"
	armed := newWALManager(t, cfg)
	ingestAll(t, armed, samples)
	if err := armed.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := newWALManager(t, cfg)
	// Let the fold ticker fire a few times against the replaying state.
	time.Sleep(20 * time.Millisecond)
	if err := recovered.Flush(); err != nil {
		t.Fatal(err)
	}
	// Replay applied into a still-folded table would alias buckets and be
	// off by factors; matching estimates to within summation-order noise
	// (fold/unfold cycles happen at different instants across the two
	// runs, reordering float adds) proves every batch unfolded first.
	ingestAll(t, clean, walSamples(50, 6))
	ingestAll(t, recovered, walSamples(50, 6))
	if cs, rs := clean.Step(), recovered.Step(); cs != rs {
		t.Fatalf("Step: clean %d, recovered %d", cs, rs)
	}
	top, err := clean.TopKMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range top {
		ce, err := clean.EstimateKey(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		re, err := recovered.EstimateKey(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(ce - re); diff > 1e-9 {
			t.Fatalf("estimate for key %d off by %g: %v vs %v", p.Key, diff, ce, re)
		}
	}
}

// TestWALWriteFaultDisarms starves the WAL writer with a byte budget:
// the group-commit loop must disarm loudly while ingest and queries
// keep serving — durability degrades, availability does not.
func TestWALWriteFaultDisarms(t *testing.T) {
	in, err := faults.Parse("walwrite=256")
	if err != nil {
		t.Fatal(err)
	}
	m := newWALManager(t, Config{WALDir: t.TempDir(), WALSync: "off", Faults: in})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := m.Ingest(walSamples(100, 2)); err != nil {
			t.Fatal(err)
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
		ws := m.WALStats()
		if !ws.Armed {
			if ws.Errors == 0 || ws.LastError == "" {
				t.Fatalf("disarmed without error accounting: %+v", ws)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("WAL never disarmed under walwrite fault: %+v", ws)
		}
	}
	// Serving continues after the disarm.
	if _, _, err := m.Ingest(walSamples(100, 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopKMagnitude(5); err != nil {
		t.Fatal(err)
	}
	fired := in.Fired()
	var walFires uint64
	for _, f := range fired {
		if f.Kind == "walwrite" {
			walFires = f.Count
		}
	}
	if walFires == 0 {
		t.Fatalf("walwrite fault never counted as fired: %+v", fired)
	}
}

// TestWALTruncationAfterSnapshot pins segment GC: once a snapshot
// covers the log, the closed segments behind the cover are deleted.
func TestWALTruncationAfterSnapshot(t *testing.T) {
	walDir, snapDir := t.TempDir(), t.TempDir()
	m := newWALManager(t, Config{WALDir: walDir, WALSync: "off", WALSegmentBytes: 4096})
	for i := 0; i < 20; i++ {
		ingestAll(t, m, walSamples(200, i))
	}
	before := m.WALStats()
	if before.Segments < 3 {
		t.Fatalf("need several segments before snapshot, have %d", before.Segments)
	}
	if err := m.Snapshot(snapDir); err != nil {
		t.Fatal(err)
	}
	after := m.WALStats()
	if after.TruncatedSegments == 0 || after.Segments >= before.Segments {
		t.Fatalf("snapshot did not truncate covered segments: before %+v after %+v", before, after)
	}
}

// TestWALWarmingFailsClosedOnExistingLog: a warming manager cannot
// replay (the warm-up buffer is not reconstructible from the log), so
// booting one over a non-empty WAL directory must refuse.
func TestWALWarmingFailsClosedOnExistingLog(t *testing.T) {
	walDir := t.TempDir()
	m := newWALManager(t, Config{WALDir: walDir, WALSync: "off"})
	ingestAll(t, m, walSamples(200, 1))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{
		Dim: 24, Shards: 2, Warmup: 50, Standardize: true, Alpha: 0.01,
		Engine: EngineSpec{Kind: KindASCS, Sketch: countsketch.Config{Tables: 3, Range: 1024, Seed: 31}, T: 100_000},
		WALDir: walDir, WALSync: "off",
	})
	if err == nil {
		t.Fatal("warming manager over a non-empty WAL must fail closed")
	}
}

// TestWALConfigDriftFailsClosed pins the config pin: the segment
// headers carry only dim/shards, so wal-config.json must catch a
// restart whose flags describe a different engine — replaying the log
// there would silently produce state matching neither the old
// deployment nor a clean new one. An identically-configured restart
// still replays, and an empty log tolerates any config change.
func TestWALConfigDriftFailsClosed(t *testing.T) {
	walDir := t.TempDir()
	base := Config{WALDir: walDir, WALSync: "off"}
	m := newWALManager(t, base)
	ingestAll(t, m, walSamples(300, 1))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	drifted := Config{
		Dim: 24, Shards: 2,
		Engine: EngineSpec{Kind: KindCS, Sketch: countsketch.Config{Tables: 3, Range: 1024, Seed: 31}, T: 60_000},
		WALDir: walDir, WALSync: "off",
	}
	if _, err := New(drifted); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("replay under a drifted engine config = %v, want fail-closed ErrCorrupt", err)
	}

	// The same flags still recover the state.
	same := newWALManager(t, base)
	if got, want := same.Step(), 300; got != want {
		t.Fatalf("replayed Step = %d, want %d", got, want)
	}
	if err := same.Close(); err != nil {
		t.Fatal(err)
	}

	// A config change over an emptied log is a legitimate redeploy: the
	// pin rewrites instead of failing.
	if err := os.RemoveAll(walDir); err != nil {
		t.Fatal(err)
	}
	m2, err := New(drifted)
	if err != nil {
		t.Fatalf("fresh WAL dir with new config: %v", err)
	}
	ingestAll(t, m2, walSamples(100, 2))
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, err := New(drifted)
	if err != nil {
		t.Fatalf("matching restart after repin: %v", err)
	}
	if got, want := m3.Step(), 100; got != want {
		t.Fatalf("replayed Step after repin = %d, want %d", got, want)
	}
	if err := m3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALArmedIngestAllocFree pins the tee cost: with the WAL armed the
// steady-state routing path stays allocation-free — the tee is a value
// send and the log goroutine owns all encode scratch.
func TestWALArmedIngestAllocFree(t *testing.T) {
	m := newWALManager(t, Config{WALDir: t.TempDir(), WALSync: "off"})
	batch := walSamples(8, 0)
	for i := 0; i < 50; i++ {
		if _, _, err := m.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := m.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	})
	// Same allowance as TestFoldPolicyIngestAllocFree: the routing path
	// itself is allocation-free; the slack absorbs worker-side noise the
	// global counters pick up.
	if avg > 3 {
		t.Fatalf("WAL-armed ingest steady state allocates %.1f times per call, want 0", avg)
	}
}
