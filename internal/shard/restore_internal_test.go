package shard

import (
	"testing"

	"repro/internal/countsketch"
	"repro/internal/stream"
)

// TestRestoreKeepsFusedPath is the regression pin for a silent perf
// cliff: Restore must wire the fused OfferPairs path (worker.fast)
// exactly as Manager.start does, or every restored deployment falls
// back to the pre-fusion per-op ingest sequence for the rest of its
// life.
func TestRestoreKeepsFusedPath(t *testing.T) {
	m, err := New(Config{
		Dim: 10,
		Engine: EngineSpec{
			Kind:   KindCS,
			Sketch: countsketch.Config{Tables: 3, Range: 64, Seed: 1},
			T:      100,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, w := range m.workers {
		if w.fast == nil {
			t.Fatal("fresh manager worker lacks the fused path (test setup broken)")
		}
	}
	if _, _, err := m.Ingest([]stream.Sample{{Idx: []int{0, 1}, Val: []float64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := m.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, w := range r.workers {
		if w.fast == nil {
			t.Fatalf("restored worker %d lost the fused OfferPairs path", i)
		}
	}
}
