// Package shard is the serving layer of the reproduction: it partitions
// the pair-key space across N shard workers so a long-running process
// can ingest sample streams continuously and answer live top-k
// correlation queries while the stream is still flowing — the "active"
// regime the paper motivates, as opposed to the one-shot batch runs of
// the cmd/ binaries.
//
// # Architecture
//
// Each worker owns one sketching engine (a sketchapi.Snapshotter: the
// vanilla CS MeanSketch or the ASCS core.Engine) plus a bounded
// candidate tracker, and runs a single goroutine draining one FIFO
// channel of messages. Ingest enumerates the feature pairs of each
// sample, routes every (key, increment) to the shard owning that key
// (a mixed hash of the pair key modulo N), and sends batched ops down
// the owning worker's channel. Because a key's entire history lands on
// exactly one worker, applied in arrival order by one goroutine, the
// hot path needs no locks at all — no sync.RWMutex around the sketch —
// and the ASCS admission gate remains a *sequential* per-key decision,
// which is exactly the paper's §5 constraint (the gate at step t reads
// the estimate produced by steps 1..t−1; it cannot be replayed out of
// order). Sharding by key is what makes ASCS parallelizable at all:
// sample-level parallelism (covstream.ParallelSecondMoment) works only
// for the linear CS engine.
//
// Queries (point estimate, top-k, stats, snapshot) are closures
// executed on the owning worker's goroutine, so they observe a
// consistent engine state without synchronization. Each worker owns
// two channels: the ingest FIFO and a bounded priority lane for
// read-only query closures. Which lane a query rides is the
// Consistency knob: ConsistencyFresh sends it down the ingest FIFO —
// the query observes every batch enqueued before it and is totally
// ordered with ingest (the classic semantics; Flush, snapshots, and
// the differential tests always use this lane) — while ConsistencyFast
// sends it down the priority lane, which the worker drains ahead of
// queued ingest batches: the query waits only for the message in
// flight instead of the whole queue, at the cost of bounded staleness
// (it may miss up to QueueLen enqueued-but-unapplied batches). Both
// lanes execute on the worker goroutine, so either way a query sees a
// batch-boundary-consistent engine state and the hot path stays
// lock-free. Top-k fans out to all shards and merges the per-shard
// candidates through one bounded heap.
//
// # Linearity
//
// All shards share one countsketch.Config (hence identical hash
// functions), so the Count Sketch's linearity — the property behind
// Sketch.Split/Merge — gives a strong equivalence for the CS engine:
// since every key is inserted into exactly one shard, the cell-wise
// sum of the shard tables (MergedSketch) equals the table produced by
// serial single-sketch ingestion of the same stream, up to
// floating-point summation order. The shard tests assert this. For
// ASCS the tables merge the same way but the admission gates were
// evaluated against per-shard (lower-noise) estimates, so the merged
// sketch is a valid — typically slightly better-filtered — ASCS state
// rather than a bit-identical replay of the serial run.
//
// # Steps, horizon, and unbounded (decayed) serving
//
// The manager assigns a global 1-based step to every ingested sample
// and engines scale inserts by 1/T exactly as in the batch pipeline.
// Concurrent Ingest calls are applied in an arbitrary interleaving;
// workers monotonize the step sequence they announce to their engine
// so the Ingestor contract (non-decreasing steps) holds under any
// interleaving.
//
// In the classic fixed-horizon deployment the stream horizon T is
// fixed at construction and ingest beyond it is rejected with
// ErrHorizon. An EngineSpec with Lambda set instead serves an
// *unbounded* stream: T is reinterpreted as the effective window
// W ≈ 1/(1−λ), every engine ages its tables by λ per step (a lazy O(1)
// scale bump inside BeginStep, on the worker goroutine — still
// lock-free), each worker ages its candidate tracker at the same batch
// boundary so admitted pairs fall out of top-k once they stop
// arriving, and ErrHorizon is never returned. λ = 1 disables aging but
// keeps the unbounded semantics, bit-identical to the fixed engines
// over any prefix — the differential tests pin that equivalence.
//
// The ingest call that completes the warm-up prefix derives the
// schedule, starts the workers, then replays the buffered prefix in
// bounded chunks *without* holding the control mutex: queries proceed
// during the replay (observing a per-shard-consistent mid-replay
// state) instead of stalling for its duration. Concurrent ingest and
// snapshots still wait for the replay to finish — the solved ASCS
// exploration window T0 can be shorter than the warm-up prefix, so a
// later-step op overtaking prefix ops into a shard FIFO would replay
// gate decisions out of order.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/countsketch"
	"repro/internal/faults"
	"repro/internal/hashing"
	"repro/internal/obs"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
	"repro/internal/topk"
	"repro/internal/wal"
)

// Sentinel errors returned by Manager operations.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("shard: manager is closed")
	// ErrWarmingUp is returned by queries while the manager is still
	// buffering its warm-up prefix (auto-tuned ASCS configurations).
	ErrWarmingUp = errors.New("shard: still warming up (ingest more samples)")
	// ErrHorizon is returned when ingest would exceed the configured
	// stream horizon T. Unbounded (decay-mode) deployments never return
	// it — there is no horizon to exceed.
	ErrHorizon = errors.New("shard: stream exceeds configured horizon T")
	// ErrInvalidSample wraps sample-validation failures, so transports
	// can blame the producer (4xx) rather than the service (5xx) —
	// warm-up derivation failures, by contrast, are server-side.
	ErrInvalidSample = errors.New("shard: invalid sample")
)

// Consistency selects the lane a query rides to its shard worker.
type Consistency string

const (
	// ConsistencyFresh routes the query through the shard's ingest
	// FIFO: it observes every batch enqueued before it, totally ordered
	// with ingest. Under ingest pressure it waits behind the whole
	// queue (up to QueueLen batches). The default.
	ConsistencyFresh Consistency = "fresh"
	// ConsistencyFast routes the query down the bounded priority lane:
	// the worker serves it ahead of queued ingest batches, so it waits
	// only for the message currently being applied. The price is
	// bounded staleness — the answer may miss batches that were
	// enqueued but not yet applied (at most the in-flight queue depth).
	ConsistencyFast Consistency = "fast"
)

// ParseConsistency maps the wire/flag form onto a Consistency; the
// empty string means "use the deployment default".
func ParseConsistency(s string) (Consistency, error) {
	switch c := Consistency(s); c {
	case "", ConsistencyFresh, ConsistencyFast:
		return c, nil
	default:
		return "", fmt.Errorf("shard: unknown consistency %q (want %q or %q)", s, ConsistencyFresh, ConsistencyFast)
	}
}

// Config configures a Manager.
type Config struct {
	// Dim is the feature dimensionality d. Required.
	Dim int
	// Shards is the number of shard workers N (default 1).
	Shards int
	// Engine describes the per-shard engine. For KindASCS with a zero
	// Schedule the schedule is auto-derived from a warm-up prefix
	// (Warmup must be positive).
	Engine EngineSpec
	// Warmup, when positive, buffers that many leading samples to derive
	// the ASCS schedule (and standardization) before the workers start.
	Warmup int
	// Alpha is the assumed signal-pair sparsity used by the warm-up
	// solver (default 0.005, as in the batch Estimator).
	Alpha float64
	// Standardize rescales features to unit variance using the warm-up
	// prefix so estimates approximate correlations (requires Warmup).
	Standardize bool
	// QueueLen is the per-shard channel depth in batches (default 64).
	QueueLen int
	// FlushOps is the op-count at which a per-shard ingest batch is
	// flushed to its worker (default 4096).
	FlushOps int
	// TrackCandidates bounds each shard's retrieval candidate set
	// (default 1<<14). Serving retrieval is always candidate-tracked:
	// at trillion-pair scale the universe cannot be enumerated.
	TrackCandidates int
	// InvStd, when non-nil, fixes the per-feature scaling factors
	// directly (length Dim); used by Restore and by callers that fitted
	// standardization elsewhere.
	InvStd []float64
	// QueryConsistency is the default lane for queries that do not pick
	// one explicitly (default ConsistencyFresh, the classic FIFO
	// semantics). Flush, snapshots, and MergedSketch always run fresh
	// regardless — they are barriers, not queries.
	QueryConsistency Consistency

	// Admission selects what ingest does when a shard FIFO is at its
	// bound: AdmitBlock (default — classic backpressure), AdmitShed
	// (fail fast with ErrQueueFull), or AdmitDegrade (shed + the
	// overload governor re-routing fresh queries to the fast lane).
	Admission AdmissionPolicy
	// ShedHighWater is the FIFO fill fraction at which shed/degrade
	// refuse ingest (default 1.0: a full queue). Lower values shed
	// earlier, trading peak throughput for headroom.
	ShedHighWater float64
	// DegradeHigh / DegradeLow are the governor's hysteresis thresholds
	// as FIFO fill fractions (defaults 0.8 and 0.3): fresh queries
	// degrade to the fast lane above High and recover below Low.
	DegradeHigh, DegradeLow float64

	// FoldIdle, when positive, enables the idle-shard fold policy: a
	// worker whose engine has applied no ingest for FoldIdleTicks
	// consecutive FoldIdle intervals folds its sketch in place (halving
	// the table width FoldLevels times), releasing memory pressure while
	// the shard is cold; the first ingest batch to arrive unfolds it
	// back to full resolution before any increment lands. The check is
	// tick-driven on the worker goroutine — the ingest hot path pays one
	// branch per batch, nothing per pair. Requires an engine that
	// implements sketchapi.Folder (all four kinds do). Zero disables.
	FoldIdle time.Duration
	// FoldIdleTicks is how many consecutive quiet FoldIdle intervals
	// precede a fold (default 2: one full interval of observed silence,
	// since the first tick after the last batch may be partial).
	FoldIdleTicks int
	// FoldLevels is how many width halvings an idle fold applies
	// (default 3, clamped to the engine's MaxFoldLevels).
	FoldLevels int
	// SnapshotFold, when positive, streams snapshot sketch blobs
	// pre-folded to that absolute fold level (clamped per engine to its
	// maximum): up to 2^L× fewer sketch bytes on disk. Restored shards
	// serve at the folded resolution until their first ingest batch
	// unfolds them. Zero snapshots at live resolution.
	SnapshotFold int

	// WALDir, when non-empty, arms the write-ahead log: every applied
	// ingest batch is teed to a group-commit writer under this directory,
	// and construction replays any log tail past the restored snapshot's
	// coverage before serving (see internal/wal and wal.go in this
	// package). Empty runs without durability, exactly as before.
	WALDir string
	// WALSync is the log's durability policy: "batch" (default — one
	// fsync per coalesced commit group), "interval" or an explicit
	// duration (periodic fsync; RPO = the interval), or "off" (OS page
	// cache only; RPO = whatever the kernel had not written back).
	WALSync string
	// WALSegmentBytes caps each log segment before rotation (default
	// 64 MiB; minimum 4 KiB). Snapshots truncate segments their manifest
	// coverage makes redundant.
	WALSegmentBytes int64

	// Faults, when non-nil, wires the deterministic fault injector into
	// the workers and the snapshot path. Test/chaos use only; never
	// serialized.
	Faults *faults.Injector
}

func (c *Config) fill() error {
	if c.Dim < 2 {
		return fmt.Errorf("shard: Dim must be ≥ 2, got %d", c.Dim)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 || c.Shards > 1024 {
		return fmt.Errorf("shard: Shards must be in [1,1024], got %d", c.Shards)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.005
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("shard: Alpha must be in (0,1), got %v", c.Alpha)
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 64
	}
	if c.FlushOps <= 0 {
		c.FlushOps = 4096
	}
	if c.TrackCandidates <= 0 {
		c.TrackCandidates = 1 << 14
	}
	if c.InvStd != nil && len(c.InvStd) != c.Dim {
		return fmt.Errorf("shard: InvStd has length %d, want %d", len(c.InvStd), c.Dim)
	}
	if c.QueryConsistency == "" {
		c.QueryConsistency = ConsistencyFresh
	}
	if _, err := ParseConsistency(string(c.QueryConsistency)); err != nil {
		return err
	}
	if c.Admission == "" {
		c.Admission = AdmitBlock
	}
	if _, err := ParseAdmission(string(c.Admission)); err != nil {
		return err
	}
	if c.ShedHighWater == 0 {
		c.ShedHighWater = 1.0
	}
	if c.ShedHighWater <= 0 || c.ShedHighWater > 1 {
		return fmt.Errorf("shard: ShedHighWater must be in (0,1], got %v", c.ShedHighWater)
	}
	if c.DegradeHigh == 0 {
		c.DegradeHigh = 0.8
	}
	if c.DegradeLow == 0 {
		c.DegradeLow = 0.3
	}
	if c.DegradeLow <= 0 || c.DegradeHigh > 1 || c.DegradeLow >= c.DegradeHigh {
		return fmt.Errorf("shard: governor thresholds must satisfy 0 < DegradeLow < DegradeHigh ≤ 1, got low=%v high=%v",
			c.DegradeLow, c.DegradeHigh)
	}
	if c.FoldIdle < 0 {
		return fmt.Errorf("shard: FoldIdle must be ≥ 0, got %v", c.FoldIdle)
	}
	if c.FoldIdleTicks == 0 {
		c.FoldIdleTicks = 2
	}
	if c.FoldIdleTicks < 1 {
		return fmt.Errorf("shard: FoldIdleTicks must be ≥ 1, got %d", c.FoldIdleTicks)
	}
	if c.FoldLevels == 0 {
		c.FoldLevels = 3
	}
	if c.FoldLevels < 1 {
		return fmt.Errorf("shard: FoldLevels must be ≥ 1, got %d", c.FoldLevels)
	}
	if c.SnapshotFold < 0 {
		return fmt.Errorf("shard: SnapshotFold must be ≥ 0, got %d", c.SnapshotFold)
	}
	if c.WALDir == "" {
		if c.WALSync != "" {
			return fmt.Errorf("shard: WALSync %q has no effect without WALDir", c.WALSync)
		}
		if c.WALSegmentBytes != 0 {
			return fmt.Errorf("shard: WALSegmentBytes has no effect without WALDir")
		}
		return nil
	}
	if _, _, err := wal.ParseSync(c.WALSync); err != nil {
		return err
	}
	if c.WALSegmentBytes == 0 {
		c.WALSegmentBytes = wal.DefaultSegmentBytes
	}
	if c.WALSegmentBytes < 4096 {
		return fmt.Errorf("shard: WALSegmentBytes must be ≥ 4096, got %d", c.WALSegmentBytes)
	}
	return nil
}

// rowHdr describes one run of routed pair increments sharing a row
// base and a step: the run's pair keys are base + prt[i] (a wrapping
// uint64 add), its increments xs[i]. RowBase is strictly monotone in
// the row feature for a fixed Dim and the step distinguishes samples,
// so (base, t) identifies a row run unambiguously.
type rowHdr struct {
	base uint64
	t    int
	n    int
}

// rowBatch is the routed ingest unit: a columnar batch of pair
// increments grouped into row runs. Shipping (base, partners, xs) runs
// instead of flat (key, x) ops keeps the row structure intact across
// the channel, so the worker can feed each run straight into the
// engine's OfferRow fast path (the engine materializes the keys as a
// vector add inside its wave pipeline) — and it is smaller on the wire:
// one base per run instead of a full key per pair.
type rowBatch struct {
	hdrs []rowHdr
	prt  []uint64  // partner ids, Σ hdrs[i].n entries, run-contiguous
	xs   []float64 // pre-multiplied increments, same length as prt
}

// add appends one pair increment, extending the current run when the
// (base, step) pair matches and opening a new run otherwise.
func (b *rowBatch) add(base uint64, t int, partner uint64, x float64) {
	if n := len(b.hdrs); n == 0 || b.hdrs[n-1].base != base || b.hdrs[n-1].t != t {
		b.hdrs = append(b.hdrs, rowHdr{base: base, t: t})
	}
	b.hdrs[len(b.hdrs)-1].n++
	b.prt = append(b.prt, partner)
	b.xs = append(b.xs, x)
}

// pairs returns the number of pair increments staged in the batch.
func (b *rowBatch) pairs() int { return len(b.prt) }

// reset empties the batch for freelist reuse, keeping capacity.
func (b *rowBatch) reset() *rowBatch {
	b.hdrs, b.prt, b.xs = b.hdrs[:0], b.prt[:0], b.xs[:0]
	return b
}

// msg is the unit consumed by a worker: either an ingest batch (ops)
// or a control/query closure (fn). The ingest FIFO carries both kinds
// — one ordered channel is what makes fresh queries and snapshots
// totally ordered with ingest; the priority lane carries closures only.
// enq is the enqueue timestamp, observed by the worker into the
// queue-wait histograms (closures self-time; batches use this field).
type msg struct {
	ops *rowBatch
	fn  func()
	enq time.Time
}

// worker owns one engine. All fields below qch are touched only by the
// worker goroutine (or inside closures it executes) — never locked.
type worker struct {
	id int
	// ch is the ingest FIFO: batches plus fresh-lane closures, applied
	// strictly in enqueue order.
	ch chan msg
	// qch is the bounded priority lane: query closures the run loop
	// drains ahead of queued ingest batches, so a fast-lane query's
	// wait is the message in flight, not the queue depth.
	qch   chan msg
	eng   sketchapi.Snapshotter
	fast  sketchapi.OfferEstimator // non-nil when eng supports the fused path
	row   sketchapi.RowOfferer     // non-nil when eng supports the row path
	track *topk.Tracker
	lastT int
	ops   uint64

	// Telemetry. tel is the shard's published counter block (may be nil
	// in unit tests that build workers by hand); health and decayer cache
	// the engine's optional interfaces so publish does not re-assert per
	// batch. batches and laneJumps are plain single-writer counters — the
	// worker goroutine owns them and copies them into tel.Snap with
	// atomic stores at message boundaries (see publish).
	tel       *obs.ShardTel
	health    sketchapi.HealthReporter
	decayer   sketchapi.Decayer
	batches   uint64
	laneJumps uint64

	// free is the manager's batch freelist: applied ingest batches are
	// returned here so route can reuse them instead of growing fresh
	// ones per call (the worker is the only goroutine that knows when a
	// batch is done).
	free chan *rowBatch

	// Durability tee (nil-disabled). When wal is non-nil the worker
	// hands each *applied* batch to the group-commit log goroutine —
	// stamped with the next global sequence number from walGlobal —
	// instead of recycling it; the log goroutine returns it to the
	// freelist after encoding. walLast is the worker's highest teed
	// sequence, captured into snapshot manifests as that shard's WAL
	// coverage (worker-goroutine-owned, like everything above).
	wal       chan<- walItem
	walGlobal *atomic.Uint64
	walLast   uint64

	// faults is the optional chaos injector (nil in production: every
	// hook is nil-safe, so the hot path pays one branch per batch).
	faults *faults.Injector

	// Fold policy (idle-shard memory elasticity). folder caches the
	// engine's sketchapi.Folder facet (nil when unsupported); foldTick
	// delivers the idle checks (nil when the policy is off, so its
	// select case never fires); foldLevels/foldTicks are the resolved
	// policy knobs. folded marks an engine currently serving at reduced
	// resolution — set by an idle fold or by restoring a pre-folded
	// snapshot, cleared by the unconditional unfold at the top of apply.
	// quiet counts consecutive idle ticks, tickOps the op count at the
	// previous tick. folds/unfolds are published counters.
	folder     sketchapi.Folder
	foldTicker *time.Ticker
	foldTick   <-chan time.Time
	foldLevels int
	foldTicks  int
	folded     bool
	quiet      int
	tickOps    uint64
	folds      uint64
	unfolds    uint64

	// lambda is the per-step decay factor of unbounded deployments
	// (0 = fixed-horizon). The engine ages itself inside BeginStep; the
	// worker additionally ages its candidate tracker at the same step
	// boundary — both are lazy O(1) scale bumps on the worker goroutine,
	// so the hot path stays lock-free and allocation-free.
	lambda float64

	// Scratch for the batched fast paths, reused across apply calls
	// (keys only for engines without OfferRow; ests for the tracker).
	keys []uint64
	ests []float64
}

// wire attaches the telemetry block and caches the engine's optional
// telemetry interfaces. Called before the worker goroutine starts (or
// with the worker quiescent), then publishes once so restored state
// (ops, step) is visible to scrapes before the first batch lands.
func (w *worker) wire(tel *obs.ShardTel) {
	w.tel = tel
	if h, ok := w.eng.(sketchapi.HealthReporter); ok {
		w.health = h
	}
	if d, ok := w.eng.(sketchapi.Decayer); ok && d.Decaying() {
		w.decayer = d
	}
	w.publish()
}

// publish copies the worker-owned counters and the engine's health
// snapshot into the shard's atomic telemetry block. Called on the
// worker goroutine at message boundaries: every store is a plain
// atomic.Uint64.Store, so the cost is ~25 uncontended stores per batch
// (4096 ops) and zero allocations — scrapers read the slots wait-free
// without ever enqueuing onto this goroutine.
func (w *worker) publish() {
	tel := w.tel
	if tel == nil {
		return
	}
	s := &tel.Snap
	s.Store(obs.ShardBatches, w.batches)
	s.Store(obs.ShardOps, w.ops)
	s.Store(obs.ShardLaneJumps, w.laneJumps)
	s.Store(obs.ShardStep, uint64(w.lastT))
	s.Store(obs.ShardTracked, uint64(w.track.Len()))
	s.Store(obs.ShardTrackerPruned, w.track.Pruned())
	s.Store(obs.ShardEngineBytes, uint64(w.eng.Bytes()))
	if w.health != nil {
		h := w.health.Health()
		s.Store(obs.ShardGateOffered, h.GateOffered)
		s.Store(obs.ShardGateAdmitted, h.GateAdmitted)
		s.Store(obs.ShardExplorationInserts, h.ExplorationInserts)
		s.StoreFloat(obs.ShardAdmittedMass, h.AdmittedMass)
		s.StoreFloat(obs.ShardRejectedMass, h.RejectedMass)
		s.StoreFloat(obs.ShardGateTau, h.Tau)
		s.Store(obs.ShardDecayRenorms, h.DecayRenorms)
		s.Store(obs.ShardWaveGroups, h.WaveGroups)
		s.Store(obs.ShardWaveFallbackConflict, h.WaveFallbackConflict)
		s.Store(obs.ShardWaveFallbackExploration, h.WaveFallbackExploration)
		s.Store(obs.ShardWaveFallbackShape, h.WaveFallbackShape)
	}
	if w.decayer != nil {
		s.StoreFloat(obs.ShardNEff, w.decayer.EffectiveSamples())
	}
	if w.folder != nil {
		s.Store(obs.ShardFoldLevel, uint64(w.folder.FoldLevel()))
		s.Store(obs.ShardFolds, w.folds)
		s.Store(obs.ShardUnfolds, w.unfolds)
	}
	if w.wal != nil {
		s.Store(obs.ShardWALLastSeq, w.walLast)
	}
}

// foldSetup caches the engine's fold capability and arms the idle
// ticker when the policy is enabled. Called before the worker
// goroutine starts (construction and restore), like wire.
func (w *worker) foldSetup(idle time.Duration, ticks, levels int) {
	f, ok := w.eng.(sketchapi.Folder)
	if !ok {
		return
	}
	w.folder = f
	// A restored pre-folded snapshot starts life folded: the first
	// ingest batch unfolds it exactly like a policy fold.
	w.folded = f.FoldLevel() > 0
	if idle <= 0 {
		return
	}
	if max := f.MaxFoldLevels(); levels > max {
		levels = max
	}
	if levels <= 0 {
		return
	}
	w.foldLevels = levels
	w.foldTicks = ticks
	w.foldTicker = time.NewTicker(idle)
	w.foldTick = w.foldTicker.C
}

// foldIdleCheck runs on the worker goroutine at each fold-policy
// tick: a tick with no ops applied since the previous one counts as
// quiet, and foldTicks consecutive quiet ticks fold the engine in
// place. Queries keep being served (at the folded resolution) —
// folding trades accuracy headroom for memory, never availability.
func (w *worker) foldIdleCheck() {
	if w.folded {
		return
	}
	if w.ops != w.tickOps {
		w.tickOps = w.ops
		w.quiet = 0
		return
	}
	w.quiet++
	if w.quiet < w.foldTicks {
		return
	}
	w.quiet = 0
	// The only fold error is a target past MaxFoldLevels, which
	// foldSetup's clamp rules out; guard anyway so a future engine
	// cannot wedge the worker.
	if err := w.folder.Fold(w.foldLevels); err == nil {
		w.folded = true
		w.folds++
	}
}

// beginStep announces a step advance to the engine and applies the
// tracker's decay ticks for the steps skipped.
func (w *worker) beginStep(t int) {
	if w.lambda != 0 {
		w.track.Decay(sketchapi.DecayPow(w.lambda, t-w.lastT))
	}
	w.lastT = t
	w.eng.BeginStep(t)
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	if w.foldTicker != nil {
		defer w.foldTicker.Stop()
	}
	// Local copies go nil once their channel closes and drains; a nil
	// channel blocks its select case, which is exactly the retirement
	// semantics wanted here.
	ch, qch := w.ch, w.qch
	for ch != nil || qch != nil {
		// Priority pass: serve the fast-lane queries already queued at
		// the pass start before the next ingest FIFO message. Queries
		// and batches alike run on this goroutine, so both lanes observe
		// batch-boundary-consistent engine state; the lanes differ only
		// in what a query waits behind. The pass is bounded by the
		// backlog sampled once — queries arriving mid-pass wait for the
		// next message boundary — so a sustained stream of fast queries
		// cannot starve ingest: at least one FIFO message progresses
		// between passes.
	drain:
		for n := len(qch); qch != nil && n > 0; n-- {
			select {
			case m, ok := <-qch:
				if !ok {
					qch = nil
				} else {
					m.fn()
					w.publish()
				}
			default:
				break drain
			}
		}
		if ch == nil && qch == nil {
			// The pass may have retired the last live channel; reaching
			// the select below with both nil would block forever.
			break
		}
		select {
		case m, ok := <-ch:
			if !ok {
				ch = nil
				continue
			}
			if m.fn != nil {
				m.fn()
				w.publish()
				continue
			}
			w.applyBatch(m)
			if w.wal != nil {
				// Durability tee: the applied batch rides to the group-commit
				// log goroutine, which recycles it after encoding. The
				// blocking send is deliberate backpressure — a log that
				// cannot keep up slows ingest instead of losing data — and
				// costs no allocation, preserving the 0 allocs/pair bound.
				seq := w.walGlobal.Add(1)
				w.walLast = seq
				w.wal <- walItem{seq: seq, sh: w.id, b: m.ops}
			} else {
				// Batch applied: recycle its staging buffer (drop it when
				// the freelist is full — bounded memory beats retention).
				select {
				case w.free <- m.ops.reset():
				default:
				}
			}
			w.publish()
		case m, ok := <-qch:
			if !ok {
				qch = nil
				continue
			}
			m.fn()
			w.publish()
		case <-w.foldTick:
			// Idle-fold policy tick (nil channel — never taken — when the
			// policy is off). Runs on the worker goroutine like everything
			// else that touches the engine.
			w.foldIdleCheck()
			w.publish()
		}
	}
}

// applyBatch applies one ingest batch, observing queue wait, apply
// time, and batch size into the shard histograms (two time.Now calls
// per ~4096-op batch — noise next to the sketch work, and no
// allocations either way).
func (w *worker) applyBatch(m msg) {
	w.faults.BeforeApply(w.id)
	if w.tel == nil {
		w.apply(m.ops)
		w.batches++
		return
	}
	w.tel.IngestWait.Observe(int64(time.Since(m.enq)))
	start := time.Now()
	w.apply(m.ops)
	w.tel.Apply.Observe(int64(time.Since(start)))
	w.tel.BatchSize.Observe(int64(m.ops.pairs()))
	w.batches++
}

func (w *worker) apply(b *rowBatch) {
	if w.folded {
		// First ingest after an idle fold (or a folded-snapshot restore):
		// resume full resolution before any increment lands. Deliberately
		// unconditional on the policy so restored pre-folded snapshots
		// heal themselves; the steady-state hot path pays this one branch
		// per batch and nothing per pair.
		w.folder.Unfold()
		w.folded = false
		w.unfolds++
	}
	o := 0
	for _, h := range b.hdrs {
		prt := b.prt[o : o+h.n]
		xs := b.xs[o : o+h.n]
		o += h.n
		if h.t > w.lastT {
			w.beginStep(h.t)
		}
		switch {
		case w.row != nil:
			// Row fast path: the engine expands base+partner keys inside
			// its wave pipeline; the tracker reuses the per-offer
			// estimates (one locate serves gate, insert, and score) and
			// re-derives each key with the same wrapping add.
			if cap(w.ests) < h.n {
				w.ests = make([]float64, h.n)
			}
			ests := w.ests[:h.n]
			w.row.OfferRow(h.base, prt, xs, ests)
			for i, p := range prt {
				w.track.Offer(h.base+p, math.Abs(ests[i]))
			}
		case w.fast != nil:
			// Fused pair path for engines without OfferRow: materialize
			// the run's keys into worker scratch and push one OfferPairs.
			keys := w.keys[:0]
			for _, p := range prt {
				keys = append(keys, h.base+p)
			}
			if cap(w.ests) < h.n {
				w.ests = make([]float64, h.n)
			}
			ests := w.ests[:h.n]
			w.fast.OfferPairs(keys, xs, ests)
			for i, key := range keys {
				w.track.Offer(key, math.Abs(ests[i]))
			}
			w.keys = keys
		default:
			for i, p := range prt {
				key := h.base + p
				w.eng.Offer(key, xs[i])
				// Same candidate policy as the batch retrieval path
				// (covstream): score by the current |estimate| and rescore
				// at query time, so keys the gate keeps admitting stay hot.
				w.track.Offer(key, math.Abs(w.eng.Estimate(key)))
			}
		}
		w.ops += uint64(h.n)
	}
}

// kv is a per-shard query result: a candidate key with its signed
// estimate at the shard's current step.
type kv struct {
	key uint64
	est float64
}

// localTop returns the shard's k best candidates under rank.
func (w *worker) localTop(k int, rank func(float64) float64) []kv {
	items := w.track.Top(k, func(key uint64) float64 { return rank(w.eng.Estimate(key)) })
	out := make([]kv, len(items))
	for i, it := range items {
		out[i] = kv{key: it.Key, est: w.eng.Estimate(it.Key)}
	}
	return out
}

// Manager partitions the pair-key space across shard workers and fronts
// ingest, query, and snapshot traffic for all of them.
type Manager struct {
	cfg Config

	// mu guards lifecycle and step assignment only — the control plane.
	// The data plane (sketch access) is lock-free by construction: each
	// sketch is confined to its worker goroutine.
	mu      sync.Mutex
	t       int
	closed  bool
	warming bool
	// replaying is set while the warm-up-completing ingest routes the
	// buffered prefix with mu released; replayCond wakes the waiters
	// (concurrent ingest, snapshots) when it finishes. Queries do not
	// wait — serving them during the replay is the point.
	replaying  bool
	replayCond *sync.Cond
	wbuf       []stream.Sample
	invStd     []float64
	spec       EngineSpec

	sendWG   sync.WaitGroup // in-flight channel sends, for safe Close
	workerWG sync.WaitGroup
	workers  []*worker

	// tels holds one telemetry block per shard, allocated at
	// construction (before the workers exist) so /metrics scrapes are
	// answerable during warm-up and never touch the control mutex: the
	// slice itself is immutable after New/Restore and every slot is
	// atomics all the way down.
	tels []*obs.ShardTel

	// opFree / bufFree recycle the per-shard ingest staging: opFree
	// holds row batches (returned by workers after apply), bufFree
	// holds the per-call shard-indexed buffer tables. Both are bounded
	// channels used as lock-free freelists — an empty freelist
	// allocates, a full one drops — so steady-state Ingest performs no
	// per-call staging allocations while memory stays bounded.
	opFree  chan *rowBatch
	bufFree chan []*rowBatch

	// Robustness layer. shedAt is the precomputed FIFO depth (batches)
	// at which shed/degrade refuse ingest; gov is the hysteretic
	// overload governor (non-nil only under AdmitDegrade); faults is the
	// optional chaos injector. The counters are the manager-level view
	// the chaos harness reconciles against the HTTP layer's 429/503
	// accounting.
	shedAt          int
	gov             *governor
	faults          *faults.Injector
	shedRequests    atomic.Uint64
	deadlineOps     atomic.Uint64
	deadlineQueries atomic.Uint64

	// Estimate caching, first slice: the most recent top-k response is
	// memoized per (k, lane, rank) and re-served — without a shard
	// fan-out — to queries that opted into it (the folded-resolution
	// read path), as long as the epoch is unchanged. The epoch advances
	// whenever served state may move: an ingest step assignment, a
	// flush barrier, a warm-up replay. Restores start a fresh manager,
	// so the zero (invalid) memo covers them.
	cacheEpoch atomic.Uint64
	cacheMu    sync.Mutex
	cacheTopK  topkMemo

	// Snapshot observability: byte total of the last committed
	// snapshot and the count of successful snapshots (scraped by the
	// daemon's /metrics; pre-folded snapshots show as smaller totals).
	lastSnapshotBytes atomic.Uint64
	snapshotsTotal    atomic.Uint64

	// Durability layer (nil/zero when WALDir is unset). wlog owns the
	// segment log and its group-commit goroutine; walSeq issues the
	// global record sequence numbers the workers stamp at tee time.
	wlog   *walState
	walSeq atomic.Uint64
}

// topkMemo is the memoized top-k response. res is shared with every
// caller the memo served — read-only by contract.
type topkMemo struct {
	valid     bool
	k         int
	lane      Consistency
	magnitude bool
	epoch     uint64
	res       []PairEstimate
}

// New validates cfg and starts the shard workers (immediately, or after
// the warm-up prefix for auto-tuned configurations).
func New(cfg Config) (*Manager, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	needSchedule := cfg.Engine.Kind == KindASCS && cfg.Engine.Schedule == zeroSchedule
	if err := cfg.Engine.validate(!needSchedule); err != nil {
		return nil, err
	}
	needWarm := needSchedule || cfg.Standardize
	if needWarm && cfg.Warmup < 4 {
		return nil, fmt.Errorf("shard: engine %q with auto schedule (or Standardize) requires Warmup ≥ 4", cfg.Engine.Kind)
	}
	if !needWarm && cfg.Warmup > 0 {
		return nil, fmt.Errorf("shard: Warmup has no effect for engine %q with a fixed schedule and no Standardize; set it to 0", cfg.Engine.Kind)
	}
	if !cfg.Engine.decaying() && cfg.Warmup >= cfg.Engine.T {
		return nil, fmt.Errorf("shard: Warmup (%d) must be below the horizon T (%d)", cfg.Warmup, cfg.Engine.T)
	}
	m := &Manager{cfg: cfg, spec: cfg.Engine, invStd: cfg.InvStd}
	m.replayCond = sync.NewCond(&m.mu)
	m.tels = make([]*obs.ShardTel, cfg.Shards)
	for i := range m.tels {
		m.tels[i] = &obs.ShardTel{}
	}
	m.initAdmission()
	// A few recycled op buffers per shard covers steady-state routing
	// (route stages at most one buffer per shard at a time; workers
	// return them promptly). Deliberately much smaller than
	// Shards×QueueLen: a saturation burst's extra buffers drop to GC
	// instead of pinning worst-case staging memory for the manager's
	// lifetime.
	m.opFree = make(chan *rowBatch, 4*cfg.Shards)
	m.bufFree = make(chan []*rowBatch, 8)
	if needWarm {
		m.warming = true
		if cfg.WALDir != "" {
			// The log must be empty (no workers exist to replay into);
			// setupWAL fails closed otherwise. start() arms the workers
			// when the warm-up completes.
			if err := m.setupWAL(nil, false); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	if err := m.start(cfg.Engine); err != nil {
		return nil, err
	}
	if cfg.WALDir != "" {
		// Workers are live: replay any existing log through their FIFOs
		// (a fresh manager covers nothing, so every record replays), then
		// arm the tees behind the replayed batches.
		if err := m.setupWAL(nil, false); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// start builds the workers from spec and launches their goroutines.
// Callers hold mu or have exclusive access (construction).
func (m *Manager) start(spec EngineSpec) error {
	if m.wlog != nil {
		// Warm-up completion arms a log that was opened (empty) at New,
		// before the schedule existed: pin the derived spec the engines
		// will actually run before the first record can be teed.
		if err := writeWALConfig(m.cfg.WALDir, walConfig{Dim: m.cfg.Dim, Shards: m.cfg.Shards, Engine: spec}); err != nil {
			return err
		}
	}
	workers := make([]*worker, m.cfg.Shards)
	for i := range workers {
		eng, err := spec.build()
		if err != nil {
			return err
		}
		w := &worker{
			id:     i,
			ch:     make(chan msg, m.cfg.QueueLen),
			qch:    make(chan msg, m.cfg.QueueLen),
			eng:    eng,
			track:  topk.NewTracker(m.cfg.TrackCandidates),
			lambda: spec.Lambda,
			free:   m.opFree,
			faults: m.faults,
		}
		if f, ok := eng.(sketchapi.OfferEstimator); ok {
			w.fast = f
		}
		if r, ok := eng.(sketchapi.RowOfferer); ok {
			w.row = r
		}
		w.foldSetup(m.cfg.FoldIdle, m.cfg.FoldIdleTicks, m.cfg.FoldLevels)
		if m.wlog != nil {
			// Warm-up completion: the log was opened (empty) at New; arm
			// the tee before the goroutine starts.
			w.wal = m.wlog.ch
			w.walGlobal = &m.walSeq
		}
		w.wire(m.tels[i])
		workers[i] = w
	}
	m.spec = spec
	m.workers = workers
	m.workerWG.Add(len(workers))
	for _, w := range workers {
		go w.run(&m.workerWG)
	}
	return nil
}

// shardOf routes a pair key to its owning shard. The mix decorrelates
// the routing from the structured linear pair index (and from the
// sketch hashes, which mix against per-table seeds).
func (m *Manager) shardOf(key uint64) int {
	return int(hashing.Mix64(key) % uint64(m.cfg.Shards))
}

// Dim returns the configured feature dimensionality.
func (m *Manager) Dim() int { return m.cfg.Dim }

// Horizon returns the stream horizon T, or 0 when the deployment is
// unbounded (decay mode) — an unbounded stream has no horizon, and
// reporting the window here would masquerade as one. Use Window for
// the decayed-serving analogue.
func (m *Manager) Horizon() int {
	if m.cfg.Engine.decaying() {
		return 0
	}
	return m.cfg.Engine.T
}

// Window returns the effective sample window W of an unbounded
// (decay-mode) deployment — the mass the estimates are normalized by,
// W ≈ 1/(1−λ) — and 0 for fixed-horizon deployments.
func (m *Manager) Window() int {
	if m.cfg.Engine.decaying() {
		return m.cfg.Engine.T
	}
	return 0
}

// Unbounded reports whether the deployment serves an unbounded stream
// (exponential-decay mode).
func (m *Manager) Unbounded() bool { return m.cfg.Engine.decaying() }

// DecayFactor returns the per-step decay factor λ of an unbounded
// deployment (0 for fixed-horizon ones).
func (m *Manager) DecayFactor() float64 { return m.cfg.Engine.Lambda }

// Step returns the highest assigned global step.
func (m *Manager) Step() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.warming {
		return len(m.wbuf)
	}
	return m.t
}

// Warming reports whether the manager is still buffering its warm-up
// prefix.
func (m *Manager) Warming() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.warming
}

// Ingest feeds a batch of samples, assigning them consecutive global
// steps. It returns the step range [first, last] they occupy. Safe for
// concurrent use; concurrent batches interleave in an arbitrary order.
func (m *Manager) Ingest(samples []stream.Sample) (first, last int, err error) {
	return m.IngestCtx(context.Background(), samples)
}

// IngestCtx is Ingest bounded by a context: if ctx expires while a full
// shard FIFO is blocking delivery, the remaining ops are abandoned
// (counted in ascs_shard_deadline_abandons_total) and ErrDeadline is
// returned — the batches delivered before expiry stay applied, the one
// partial-delivery case in the API. Under the shed/degrade admission
// policies a request arriving while any shard FIFO is at its bound is
// refused whole with ErrQueueFull before any step is assigned, so a
// backed-off retry replays cleanly.
func (m *Manager) IngestCtx(ctx context.Context, samples []stream.Sample) (first, last int, err error) {
	if len(samples) == 0 {
		return 0, 0, nil
	}
	for i := range samples {
		if err := samples[i].Validate(m.cfg.Dim); err != nil {
			return 0, 0, fmt.Errorf("%w %d: %v", ErrInvalidSample, i, err)
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, 0, ErrClosed
	}
	if m.warming {
		return m.ingestWarming(samples) // releases mu
	}
	if m.replaying {
		// A warm-up replay is routing the buffered prefix with mu
		// released. Later steps must not overtake prefix ops into a
		// shard FIFO (the solved T0 may be shorter than the prefix, so
		// the gate would replay out of order); wait it out. Queries do
		// not take this wait.
		m.awaitReplay()
		if m.closed {
			m.mu.Unlock()
			return 0, 0, ErrClosed
		}
	}
	if m.cfg.Admission != AdmitBlock {
		// Admission front door: all-or-nothing, before step assignment.
		// A handful of channel length reads under mu — no allocation, so
		// the pinned 0 allocs/op steady-state ingest bound holds with
		// shedding enabled.
		if sh := m.overfullShard(); sh >= 0 {
			m.mu.Unlock()
			m.tels[sh].Snap.Add(obs.ShardAdmissionRejects, 1)
			m.shedRequests.Add(1)
			return 0, 0, fmt.Errorf("shard %d at depth ≥ %d: %w", sh, m.shedAt, ErrQueueFull)
		}
	}
	if !m.cfg.Engine.decaying() && m.t+len(samples) > m.cfg.Engine.T {
		m.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: step %d + %d samples > T=%d", ErrHorizon, m.t, len(samples), m.cfg.Engine.T)
	}
	base := m.t + 1
	m.t += len(samples)
	m.cacheEpoch.Add(1)
	m.sendWG.Add(1)
	m.mu.Unlock()
	defer m.sendWG.Done()
	if err := m.route(ctx, samples, base); err != nil {
		return base, base + len(samples) - 1, err
	}
	return base, base + len(samples) - 1, nil
}

// awaitReplay blocks (releasing mu while waiting) until no warm-up
// replay is in flight. The caller holds mu and still holds it on
// return; it must re-check closed afterwards.
func (m *Manager) awaitReplay() {
	for m.replaying {
		m.replayCond.Wait()
	}
}

// replayChunk bounds one route call of the warm-up replay: small enough
// that the replaying goroutine cannot monopolize the shard FIFOs in one
// burst, large enough to amortize the routing pass.
const replayChunk = 256

// ingestWarming buffers samples (called with mu held; releases it):
// crossing the warm-up threshold derives the engine spec, starts the
// workers, and replays the buffered prefix as steps 1..len(buf) in
// bounded chunks with mu released, so queries are served during the
// replay instead of stalling behind it.
func (m *Manager) ingestWarming(samples []stream.Sample) (first, last int, err error) {
	if !m.cfg.Engine.decaying() && len(m.wbuf)+len(samples) > m.cfg.Engine.T {
		m.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: warm-up buffer %d + %d samples > T=%d", ErrHorizon, len(m.wbuf), len(samples), m.cfg.Engine.T)
	}
	first = len(m.wbuf) + 1
	for _, s := range samples {
		m.wbuf = append(m.wbuf, s.Clone())
	}
	last = len(m.wbuf)
	if len(m.wbuf) < m.cfg.Warmup {
		m.mu.Unlock()
		return first, last, nil
	}
	// On derivation/start failure, roll this call's samples back out of
	// the buffer: the client sees an error and will resend them, and
	// keeping a copy would replay them twice on the retry.
	spec, invStd, err := m.deriveSpec()
	if err != nil {
		m.wbuf = m.wbuf[:first-1]
		m.mu.Unlock()
		return 0, 0, err
	}
	if m.cfg.Standardize {
		m.invStd = invStd
	}
	if err := m.start(spec); err != nil {
		m.wbuf = m.wbuf[:first-1]
		m.mu.Unlock()
		return 0, 0, err
	}
	m.warming = false
	m.t = len(m.wbuf)
	buf := m.wbuf
	m.wbuf = nil
	m.replaying = true
	// Hold the send guard across the replay so Close drains it before
	// closing the worker channels.
	m.sendWG.Add(1)
	m.mu.Unlock()

	for lo := 0; lo < len(buf); lo += replayChunk {
		hi := lo + replayChunk
		if hi > len(buf) {
			hi = len(buf)
		}
		// The replay rides Background: a warm-up prefix is never shed or
		// deadline-abandoned (route cannot fail without a Done channel).
		m.route(context.Background(), buf[lo:hi], 1+lo)
	}
	m.sendWG.Done()

	m.mu.Lock()
	m.replaying = false
	m.cacheEpoch.Add(1)
	m.replayCond.Broadcast()
	m.mu.Unlock()
	return first, last, nil
}

// batchChunk is how many staging batches getBatch carves out of one
// set of backing slabs when the freelist runs dry. Chunking keeps the
// routing path at well under one allocation per shipped batch even
// when the appliers lag route (e.g. a single-CPU box under a tight
// ingest loop starves the freelist): ~4 allocations buy batchChunk
// batches and the spares seed the freelist.
const batchChunk = 8

// batchHdrCap is the initial per-batch run-header capacity. A batch
// whose pairs span more runs grows its hdrs slice on demand (and keeps
// the larger capacity through the freelist).
const batchHdrCap = 64

// getBatch returns an empty staging batch with pair capacity FlushOps,
// recycled from an applied batch when one is available.
func (m *Manager) getBatch() *rowBatch {
	select {
	case b := <-m.opFree:
		return b
	default:
	}
	f := m.cfg.FlushOps
	bs := make([]rowBatch, batchChunk)
	hdrs := make([]rowHdr, batchChunk*batchHdrCap)
	prt := make([]uint64, batchChunk*f)
	xs := make([]float64, batchChunk*f)
	for i := range bs {
		// Three-index slices wall each batch off from its slab
		// neighbors: an append past capacity reallocates privately
		// instead of clobbering the next batch.
		bs[i] = rowBatch{
			hdrs: hdrs[i*batchHdrCap : i*batchHdrCap : (i+1)*batchHdrCap],
			prt:  prt[i*f : i*f : (i+1)*f],
			xs:   xs[i*f : i*f : (i+1)*f],
		}
	}
	for i := 1; i < batchChunk; i++ {
		select {
		case m.opFree <- &bs[i]:
		default:
		}
	}
	return &bs[0]
}

// getBufs returns a zeroed shard-indexed staging table for one route
// call; putBufs returns it (entries already shipped or nil).
func (m *Manager) getBufs() []*rowBatch {
	select {
	case b := <-m.bufFree:
		return b
	default:
		return make([]*rowBatch, m.cfg.Shards)
	}
}

func (m *Manager) putBufs(bufs []*rowBatch) {
	for i := range bufs {
		bufs[i] = nil
	}
	select {
	case m.bufFree <- bufs:
	default:
	}
}

// route enumerates the pair increments of samples (whose global steps
// are base, base+1, ...), bins them by owning shard as row runs, and
// ships batches. The per-shard staging buffers are recycled through the
// manager freelists (workers return each batch after applying it), so
// steady-state routing re-slices nothing: a batch's pair capacity is
// always FlushOps and the flush check fires exactly at capacity — a
// run crossing the flush boundary continues as a fresh run in the next
// batch, which the worker applies identically (OfferRow call splits
// never change engine state). When ctx expires mid-route the staged
// remainder is abandoned (counted) and ErrDeadline propagates.
func (m *Manager) route(ctx context.Context, samples []stream.Sample, base int) error {
	bufs := m.getBufs()
	var scaled []float64
	for k := range samples {
		s := samples[k]
		t := base + k
		idx, val := s.Idx, s.Val
		if m.invStd != nil {
			scaled = scaled[:0]
			for i, ix := range idx {
				scaled = append(scaled, val[i]*m.invStd[ix])
			}
			val = scaled
		}
		for i := 0; i+1 < len(idx); i++ {
			// Row-major pair keys: partners of idx[i] are rowBase + idx[j],
			// a pure increment instead of per-pair Index arithmetic. The
			// base and partner travel separately so the worker can feed
			// OfferRow; shardOf still sees the full key, keeping the
			// key-partitioned routing semantics intact.
			rowBase := uint64(pairs.RowBase(idx[i], m.cfg.Dim))
			ya := val[i]
			for j := i + 1; j < len(idx); j++ {
				p := uint64(idx[j])
				sh := m.shardOf(rowBase + p)
				b := bufs[sh]
				if b == nil {
					b = m.getBatch()
					bufs[sh] = b
				}
				b.add(rowBase, t, p, ya*val[j])
				if b.pairs() >= m.cfg.FlushOps {
					if err := m.ship(ctx, sh, b); err != nil {
						bufs[sh] = nil
						m.abandon(bufs)
						return err
					}
					bufs[sh] = nil
				}
			}
		}
	}
	for sh, b := range bufs {
		if b != nil && b.pairs() > 0 {
			if err := m.ship(ctx, sh, b); err != nil {
				bufs[sh] = nil
				m.abandon(bufs)
				return err
			}
			bufs[sh] = nil
		}
	}
	m.putBufs(bufs)
	return nil
}

// abandon accounts and recycles staged-but-unshipped batches after a
// mid-route deadline: every pair that never reached its shard is
// counted against that shard's deadline-abandon slot so the books
// reconcile (applied + abandoned = routed).
func (m *Manager) abandon(bufs []*rowBatch) {
	for sh, b := range bufs {
		if b != nil && b.pairs() > 0 {
			m.tels[sh].Snap.Add(obs.ShardDeadlineAbandons, uint64(b.pairs()))
			m.deadlineOps.Add(uint64(b.pairs()))
			select {
			case m.opFree <- b.reset():
			default:
			}
		}
	}
	m.putBufs(bufs)
}

// ship delivers one staged batch to its shard worker, stamping the
// enqueue time and racking the ingest-queue high-water mark. The
// high-water is CAS-raised on the *sender* side — concurrent Ingest
// calls all observe the depth they helped create, so the mark reflects
// peak pressure rather than whatever depth a later scrape happens to
// see. A context with a deadline bounds the blocking send; the chaos
// injector (when wired) may drop the batch or deliver it twice.
func (m *Manager) ship(ctx context.Context, sh int, b *rowBatch) error {
	if in := m.faults; in != nil {
		d := in.Deliver(sh)
		if d.Drop {
			select {
			case m.opFree <- b.reset():
			default:
			}
			return nil
		}
		if d.Dup {
			// The worker recycles applied batches through the freelist,
			// so the duplicate must be a private copy.
			dup := &rowBatch{
				hdrs: append([]rowHdr(nil), b.hdrs...),
				prt:  append([]uint64(nil), b.prt...),
				xs:   append([]float64(nil), b.xs...),
			}
			if err := m.send(ctx, sh, dup); err != nil {
				return err
			}
		}
	}
	return m.send(ctx, sh, b)
}

// send performs the (possibly deadline-bounded) channel send of one
// batch. context.Background()'s Done channel is nil, so the production
// library path keeps the plain blocking send — no select overhead.
func (m *Manager) send(ctx context.Context, sh int, b *rowBatch) error {
	w := m.workers[sh]
	if done := ctx.Done(); done != nil {
		select {
		case w.ch <- msg{ops: b, enq: time.Now()}:
		case <-done:
			m.tels[sh].Snap.Add(obs.ShardDeadlineAbandons, uint64(b.pairs()))
			m.deadlineOps.Add(uint64(b.pairs()))
			return fmt.Errorf("ingest to shard %d abandoned %d ops: %w", sh, b.pairs(), ErrDeadline)
		}
	} else {
		w.ch <- msg{ops: b, enq: time.Now()}
	}
	m.tels[sh].Snap.Max(obs.ShardQueueHighWater, uint64(len(w.ch)))
	return nil
}

// lane resolves a per-call consistency override against the deployment
// default (empty override → Config.QueryConsistency, itself defaulted
// to fresh by fill). Under AdmitDegrade the overload governor may
// re-route a fresh query to the fast lane while pressure is high —
// bounded staleness instead of a queue wait; Flush, snapshots, and
// MergedSketch bypass lane() entirely, so barriers are never degraded.
func (m *Manager) lane(c Consistency) Consistency {
	if c == "" {
		c = m.cfg.QueryConsistency
	}
	if c == ConsistencyFresh && m.gov != nil && m.gov.degradeNow(m.pressure()) {
		return ConsistencyFast
	}
	return c
}

// QueryConsistency returns the deployment's default query lane.
func (m *Manager) QueryConsistency() Consistency { return m.cfg.QueryConsistency }

// QueryTrace collects per-request span timings for one query: how long
// the closure waited in its lane, how long it ran on the worker
// goroutine, and how long the cross-shard merge took. Fan-out queries
// record the *maximum* wait and apply across shards — the shard on the
// critical path is the one the caller actually waited behind. Pass nil
// to skip tracing (the accounting is a mutex tap per shard, so it is
// reserved for sampled requests, not the steady query path).
type QueryTrace struct {
	mu        sync.Mutex
	QueueWait time.Duration
	Apply     time.Duration
	Merge     time.Duration
}

// note folds one shard's wait/apply pair into the trace (max-merge).
func (tr *QueryTrace) note(wait, apply time.Duration) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if wait > tr.QueueWait {
		tr.QueueWait = wait
	}
	if apply > tr.Apply {
		tr.Apply = apply
	}
	tr.mu.Unlock()
}

// noteMerge records the cross-shard merge duration.
func (tr *QueryTrace) noteMerge(d time.Duration) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.Merge = d
	tr.mu.Unlock()
}

// exec runs fn on the shard's worker goroutine and waits for it. On the
// fresh lane FIFO order means fn observes every batch enqueued before
// it; on the fast lane the worker serves fn ahead of queued batches.
// The wait and run times land in the shard's lane histograms (and in
// tr when non-nil); fast-lane executions count as lane jumps.
//
// A context with a deadline bounds both phases: the enqueue (a full
// lane refuses within the deadline instead of blocking forever) and the
// wait for a stalled worker. Abandonment is race-free by construction:
// caller and worker settle ownership of the closure through one
// CompareAndSwap on claimed, so either the worker runs fn to completion
// (and exec waits for it — results stay safe to read) or the worker
// provably never runs it (and exec returns ErrDeadline). fn never runs
// concurrently with an exec return.
func (m *Manager) exec(ctx context.Context, sh int, c Consistency, tr *QueryTrace, fn func(w *worker)) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if m.warming {
		m.mu.Unlock()
		return ErrWarmingUp
	}
	m.sendWG.Add(1)
	m.mu.Unlock()
	defer m.sendWG.Done()
	done := make(chan struct{})
	var claimed atomic.Bool
	w := m.workers[sh]
	fast := c == ConsistencyFast
	enq := time.Now()
	wrapped := msg{fn: func() {
		// Runs on the worker goroutine: the plain-counter bump and the
		// histogram observes follow the same single-writer/atomic rules
		// as the ingest path.
		if !claimed.CompareAndSwap(false, true) {
			// The caller abandoned at its deadline; fn must not run (it
			// would race the caller's result variables).
			close(done)
			return
		}
		wait := time.Since(enq)
		if w.tel != nil {
			if fast {
				w.laneJumps++
				w.tel.FastWait.Observe(int64(wait))
			} else {
				w.tel.FreshWait.Observe(int64(wait))
			}
		}
		start := time.Now()
		fn(w)
		tr.note(wait, time.Since(start))
		close(done)
	}}
	cdone := ctx.Done()
	lane := w.ch
	hw := obs.ShardQueueHighWater
	if fast {
		lane = w.qch
		hw = obs.ShardFastQueueHighWater
	}
	if cdone == nil {
		lane <- wrapped
	} else {
		select {
		case lane <- wrapped:
		case <-cdone:
			m.noteQueryDeadline(sh)
			return fmt.Errorf("query enqueue to shard %d: %w", sh, ErrDeadline)
		}
	}
	if w.tel != nil {
		w.tel.Snap.Max(hw, uint64(len(lane)))
	}
	if cdone == nil {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-cdone:
		if claimed.CompareAndSwap(false, true) {
			// Won the claim: the worker will skip fn when it reaches the
			// message, so returning now cannot race the caller's results.
			m.noteQueryDeadline(sh)
			return fmt.Errorf("query on shard %d: %w", sh, ErrDeadline)
		}
		// The worker claimed fn first — it is running right now. Wait it
		// out (it finishes promptly) so the caller's results are whole.
		<-done
		return nil
	}
}

// noteQueryDeadline accounts one query closure abandoned at its
// deadline against its shard and the manager totals.
func (m *Manager) noteQueryDeadline(sh int) {
	m.tels[sh].Snap.Add(obs.ShardDeadlineAbandons, 1)
	m.deadlineQueries.Add(1)
}

// execAll runs fn concurrently on every worker and waits for all. exec
// errors are lifecycle states shared by every shard (closed, warming)
// or the caller's own deadline, so the first one stands for all of
// them.
func (m *Manager) execAll(ctx context.Context, c Consistency, tr *QueryTrace, fn func(w *worker)) error {
	errs := make([]error, m.cfg.Shards)
	var wg sync.WaitGroup
	wg.Add(m.cfg.Shards)
	for i := 0; i < m.cfg.Shards; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = m.exec(ctx, i, c, tr, fn)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush blocks until every shard has applied all ingest enqueued before
// the call (a per-shard barrier, used before snapshots and by tests).
// It always rides the fresh lane — a barrier that could jump the queue
// would not be one.
func (m *Manager) Flush() error {
	m.cacheEpoch.Add(1)
	return m.execAll(context.Background(), ConsistencyFresh, nil, func(*worker) {})
}

// EstimateKey returns the current estimate for a pair key, answered by
// the owning shard on the deployment's default lane (scaled by t/T
// before the stream completes, exactly as in the batch pipeline).
func (m *Manager) EstimateKey(key uint64) (float64, error) {
	return m.EstimateKeyC(key, "")
}

// EstimateKeyC is EstimateKey on an explicit lane (empty = default).
func (m *Manager) EstimateKeyC(key uint64, c Consistency) (float64, error) {
	return m.EstimateKeyT(context.Background(), key, c, nil)
}

// EstimateKeyT is EstimateKeyC with deadline propagation and optional
// span tracing: ctx bounds the queue wait (expiry returns ErrDeadline,
// the answer is abandoned race-free) and when tr is non-nil the queue
// wait and on-worker apply time land in it.
func (m *Manager) EstimateKeyT(ctx context.Context, key uint64, c Consistency, tr *QueryTrace) (float64, error) {
	if key >= uint64(pairs.Count(m.cfg.Dim)) {
		return 0, fmt.Errorf("shard: key %d out of range for Dim=%d", key, m.cfg.Dim)
	}
	var est float64
	err := m.exec(ctx, m.shardOf(key), m.lane(c), tr, func(w *worker) { est = w.eng.Estimate(key) })
	return est, err
}

// Estimate returns the current estimate for the feature pair (a, b) on
// the deployment's default lane.
func (m *Manager) Estimate(a, b int) (float64, error) {
	return m.EstimateC(a, b, "")
}

// EstimateC is Estimate on an explicit lane (empty = default).
func (m *Manager) EstimateC(a, b int, c Consistency) (float64, error) {
	return m.EstimateT(context.Background(), a, b, c, nil)
}

// EstimateT is EstimateC with deadline propagation and optional span
// tracing.
func (m *Manager) EstimateT(ctx context.Context, a, b int, c Consistency, tr *QueryTrace) (float64, error) {
	if a > b {
		a, b = b, a
	}
	if a < 0 || a == b || b >= m.cfg.Dim {
		return 0, fmt.Errorf("shard: invalid pair (%d,%d) for Dim=%d", a, b, m.cfg.Dim)
	}
	return m.EstimateKeyT(ctx, pairs.Key(a, b, m.cfg.Dim), c, tr)
}

// PairEstimate is one retrieved pair with its estimated mean.
type PairEstimate struct {
	A, B     int
	Key      uint64
	Estimate float64
}

// TopK returns the k pairs with the largest (signed) estimates,
// fanning the query out to every shard on the deployment's default
// lane and merging the candidates.
func (m *Manager) TopK(k int) ([]PairEstimate, error) {
	return m.TopKC(k, "")
}

// TopKC is TopK on an explicit lane (empty = default).
func (m *Manager) TopKC(k int, c Consistency) ([]PairEstimate, error) {
	res, _, err := m.topK(context.Background(), k, c, nil, false, false)
	return res, err
}

// TopKT is TopKC with deadline propagation and optional span tracing:
// ctx bounds the fan-out (any shard missing the deadline fails the
// query with ErrDeadline) and the per-shard critical path (max
// wait/apply) and heap-merge time land in tr.
func (m *Manager) TopKT(ctx context.Context, k int, c Consistency, magnitude bool, tr *QueryTrace) ([]PairEstimate, error) {
	res, _, err := m.topK(ctx, k, c, tr, magnitude, false)
	return res, err
}

// TopKCachedT is TopKT for callers that tolerate the memoized
// response (the folded-resolution read path): a memo hit skips the
// shard fan-out entirely and the second return reports it. The result
// slice may be shared across callers — treat it as read-only.
func (m *Manager) TopKCachedT(ctx context.Context, k int, c Consistency, magnitude bool, tr *QueryTrace) ([]PairEstimate, bool, error) {
	return m.topK(ctx, k, c, tr, magnitude, true)
}

// TopKMagnitude ranks by |estimate| so strong negative correlations
// surface alongside positive ones.
func (m *Manager) TopKMagnitude(k int) ([]PairEstimate, error) {
	return m.TopKMagnitudeC(k, "")
}

// TopKMagnitudeC is TopKMagnitude on an explicit lane (empty = default).
func (m *Manager) TopKMagnitudeC(k int, c Consistency) ([]PairEstimate, error) {
	res, _, err := m.topK(context.Background(), k, c, nil, true, false)
	return res, err
}

func (m *Manager) topK(ctx context.Context, k int, c Consistency, tr *QueryTrace, magnitude, cached bool) ([]PairEstimate, bool, error) {
	if k < 1 {
		return nil, false, fmt.Errorf("shard: k must be ≥ 1")
	}
	lane := m.lane(c)
	// The epoch is read before the fan-out: a concurrent ingest during
	// the fan-out leaves the memo stamped with an already-stale epoch,
	// so the next cached read misses — conservative, never stale-beyond-
	// epoch.
	epoch := m.cacheEpoch.Load()
	if cached {
		m.cacheMu.Lock()
		memo := m.cacheTopK
		m.cacheMu.Unlock()
		if memo.valid && memo.epoch == epoch && memo.k == k && memo.lane == lane && memo.magnitude == magnitude {
			return memo.res, true, nil
		}
	}
	rank := func(v float64) float64 { return v }
	if magnitude {
		rank = math.Abs
	}
	locals := make([][]kv, m.cfg.Shards)
	var mu sync.Mutex
	err := m.execAll(ctx, lane, tr, func(w *worker) {
		l := w.localTop(k, rank)
		mu.Lock()
		locals[w.id] = l
		mu.Unlock()
	})
	if err != nil {
		return nil, false, err
	}
	mergeStart := time.Now()
	h := topk.NewHeap(k)
	hint := k * m.cfg.Shards
	if hint > 1<<16 {
		hint = 1 << 16
	}
	ests := make(map[uint64]float64, hint)
	for _, l := range locals {
		for _, c := range l {
			ests[c.key] = c.est
			h.Push(c.key, rank(c.est))
		}
	}
	items := h.SortedDesc()
	out := make([]PairEstimate, len(items))
	for i, it := range items {
		a, b := pairs.Decode(int64(it.Key), m.cfg.Dim)
		out[i] = PairEstimate{A: a, B: b, Key: it.Key, Estimate: ests[it.Key]}
	}
	tr.noteMerge(time.Since(mergeStart))
	// Memoize unconditionally (not just for cached callers): a full-
	// resolution query warming the memo is exactly what lets a later
	// degraded read skip its fan-out. One mutexed struct copy per
	// top-k query — nowhere near the ingest hot path.
	m.cacheMu.Lock()
	m.cacheTopK = topkMemo{valid: true, k: k, lane: lane, magnitude: magnitude, epoch: epoch, res: out}
	m.cacheMu.Unlock()
	return out, false, nil
}

// MergedSketch returns the cell-wise sum of all shard sketches. For the
// CS engine this equals the sketch of serial single-engine ingestion
// (linearity: every key lives in exactly one shard and the hash
// functions are shared); see the package comment for ASCS semantics.
// The two filter baselines split key mass across exact side structures,
// so their tables alone are not the engine state and merging them is
// refused. Decayed shards may sit at different steps (hence different
// lazy decay scales); each clone is renormalized onto scale 1 before
// the merge, which preserves its logical contents exactly.
func (m *Manager) MergedSketch() (*countsketch.Sketch, error) {
	switch m.cfg.Engine.Kind {
	case KindCS, KindASCS:
	default:
		return nil, fmt.Errorf("shard: engine %q does not expose a mergeable sketch (mass lives outside the table)", m.cfg.Engine.Kind)
	}
	clones := make([]*countsketch.Sketch, m.cfg.Shards)
	var mu sync.Mutex
	// Always fresh: the merge is an equivalence artifact (tests, tools),
	// and its contract is "every batch enqueued before the call".
	err := m.execAll(context.Background(), ConsistencyFresh, nil, func(w *worker) {
		c := w.eng.(sketcher).Sketch().Clone()
		c.Renormalize()
		// An idle-folded shard merges at full resolution: unfolding the
		// clone replicates its cells back to full width (estimates are
		// preserved exactly), and the fold-history baseline is dropped —
		// it only matters for future re-folds, which a merge view never
		// performs.
		if c.FoldLevel() > 0 {
			c.Unfold()
		}
		c.DropFoldBase()
		mu.Lock()
		clones[w.id] = c
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	merged := clones[0]
	for _, c := range clones[1:] {
		if err := merged.Merge(c); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// ShardHealth is the structured superset of the /metrics shard gauges
// exposed through /v1/stats: the engine's sketch-health counters plus
// the worker's pressure marks. Counts are cumulative since construction
// (telemetry is not serialized; they restart at 0 after Restore).
type ShardHealth struct {
	Batches   uint64 `json:"batches"`
	LaneJumps uint64 `json:"lane_jumps"`
	// QueueHighWater / FastQueueHighWater are the peak backlogs observed
	// at enqueue time (batches resp. closures), not the instantaneous
	// depths reported by Queue/FastQueue.
	QueueHighWater     uint64 `json:"queue_high_water"`
	FastQueueHighWater uint64 `json:"fast_queue_high_water"`
	// Gate/mass accounting — see sketchapi.Health for the semantics.
	GateOffered             uint64  `json:"gate_offered"`
	GateAdmitted            uint64  `json:"gate_admitted"`
	ExplorationInserts      uint64  `json:"exploration_inserts"`
	AdmittedMass            float64 `json:"admitted_mass"`
	RejectedMass            float64 `json:"rejected_mass"`
	Tau                     float64 `json:"tau,omitempty"`
	DecayRenorms            uint64  `json:"decay_renorms,omitempty"`
	WaveGroups              uint64  `json:"wave_groups"`
	WaveFallbackConflict    uint64  `json:"wave_fallback_conflict"`
	WaveFallbackExploration uint64  `json:"wave_fallback_exploration"`
	WaveFallbackShape       uint64  `json:"wave_fallback_shape"`
	TrackerPruned           uint64  `json:"tracker_pruned"`
	// Folds / Unfolds count idle-policy folds and ingest-triggered
	// unfolds since construction (or the snapshot baseline).
	Folds   uint64 `json:"folds,omitempty"`
	Unfolds uint64 `json:"unfolds,omitempty"`
}

// ShardStats describes one shard worker.
type ShardStats struct {
	Shard   int    `json:"shard"`
	Engine  string `json:"engine"`
	Step    int    `json:"step"`
	Ops     uint64 `json:"ops"`
	Bytes   int    `json:"bytes"`
	Tracked int    `json:"tracked"`
	Queue   int    `json:"queue"`
	// FastQueue is the priority-lane backlog (queries waiting to jump
	// the ingest FIFO).
	FastQueue int `json:"fast_queue,omitempty"`
	// NEff is the shard engine's effective sample count (decay mode;
	// saturates at the window W as the stream runs on).
	NEff float64 `json:"n_eff,omitempty"`
	// FoldLevel is the engine's current fold level: 0 at full
	// resolution, L after an idle fold halved the table width L times.
	FoldLevel int `json:"fold_level,omitempty"`
	// Health carries the sketch-health and pressure telemetry.
	Health ShardHealth `json:"health"`
}

// Stats is a point-in-time view of the manager.
type Stats struct {
	Dim    int `json:"dim"`
	Shards int `json:"shards"`
	// Horizon is the fixed stream horizon T, and 0 for unbounded
	// (decay-mode) deployments — see Unbounded/Window/Lambda, which
	// carry the window semantics instead of a misleading finite T.
	Horizon   int     `json:"horizon"`
	Unbounded bool    `json:"unbounded,omitempty"`
	Window    int     `json:"window,omitempty"`
	Lambda    float64 `json:"lambda,omitempty"`
	// NEff is the largest per-shard effective sample count (decay mode).
	NEff    float64 `json:"n_eff,omitempty"`
	Step    int     `json:"step"`
	Warming bool    `json:"warming"`
	Engine  string  `json:"engine"`
	// QueryConsistency is the deployment's default query lane
	// ("fresh" or "fast"); per-request overrides are not reflected here.
	QueryConsistency string `json:"query_consistency"`
	Ops              uint64 `json:"ops"`
	Bytes            int    `json:"bytes"`
	// AdmittedMass / RejectedMass aggregate the per-shard gate mass
	// split (Σ|x| of raw offered values): the admitted fraction is the
	// live signal the ROADMAP's drift-trigger work wants to watch.
	AdmittedMass float64      `json:"admitted_mass,omitempty"`
	RejectedMass float64      `json:"rejected_mass,omitempty"`
	PerShard     []ShardStats `json:"per_shard,omitempty"`
	// Admission is the robustness layer's state: policy, shed/deadline
	// counts, governor status, and the current Retry-After estimate.
	Admission AdmissionState `json:"admission"`
	// WAL is the durability layer's status — log progress plus the last
	// boot's recovery pass — or absent when the deployment runs without
	// a write-ahead log.
	WAL *WALStats `json:"wal,omitempty"`
}

// Stats reports ingest progress and per-shard engine state on the
// deployment's default lane. It is answerable during warm-up (with
// zeroed shard entries).
func (m *Manager) Stats() (Stats, error) {
	return m.StatsC("")
}

// StatsC is Stats on an explicit lane (empty = default).
func (m *Manager) StatsC(c Consistency) (Stats, error) {
	return m.StatsT(context.Background(), c, nil)
}

// StatsT is StatsC with deadline propagation and optional span tracing.
func (m *Manager) StatsT(ctx context.Context, c Consistency, tr *QueryTrace) (Stats, error) {
	m.mu.Lock()
	st := Stats{
		Dim:              m.cfg.Dim,
		Shards:           m.cfg.Shards,
		Step:             m.t,
		Warming:          m.warming,
		Engine:           string(m.cfg.Engine.Kind),
		QueryConsistency: string(m.cfg.QueryConsistency),
	}
	if m.cfg.Engine.decaying() {
		st.Unbounded = true
		st.Window = m.cfg.Engine.T
		st.Lambda = m.cfg.Engine.Lambda
	} else {
		st.Horizon = m.cfg.Engine.T
	}
	if m.warming {
		st.Step = len(m.wbuf)
		m.mu.Unlock()
		st.Admission = m.AdmissionState()
		st.WAL = m.WALStats()
		return st, nil
	}
	m.mu.Unlock()
	per := make([]ShardStats, m.cfg.Shards)
	var mu sync.Mutex
	err := m.execAll(ctx, m.lane(c), tr, func(w *worker) {
		s := ShardStats{
			Shard:     w.id,
			Engine:    w.eng.Name(),
			Step:      w.lastT,
			Ops:       w.ops,
			Bytes:     w.eng.Bytes(),
			Tracked:   w.track.Len(),
			Queue:     len(w.ch),
			FastQueue: len(w.qch),
		}
		s.Health = ShardHealth{
			Batches:       w.batches,
			LaneJumps:     w.laneJumps,
			TrackerPruned: w.track.Pruned(),
		}
		if w.tel != nil {
			s.Health.QueueHighWater = w.tel.Snap.Load(obs.ShardQueueHighWater)
			s.Health.FastQueueHighWater = w.tel.Snap.Load(obs.ShardFastQueueHighWater)
		}
		if w.health != nil {
			h := w.health.Health()
			s.Health.GateOffered = h.GateOffered
			s.Health.GateAdmitted = h.GateAdmitted
			s.Health.ExplorationInserts = h.ExplorationInserts
			s.Health.AdmittedMass = h.AdmittedMass
			s.Health.RejectedMass = h.RejectedMass
			s.Health.Tau = h.Tau
			s.Health.DecayRenorms = h.DecayRenorms
			s.Health.WaveGroups = h.WaveGroups
			s.Health.WaveFallbackConflict = h.WaveFallbackConflict
			s.Health.WaveFallbackExploration = h.WaveFallbackExploration
			s.Health.WaveFallbackShape = h.WaveFallbackShape
		}
		if d, ok := w.eng.(sketchapi.Decayer); ok && d.Decaying() {
			s.NEff = d.EffectiveSamples()
		}
		if w.folder != nil {
			s.FoldLevel = w.folder.FoldLevel()
			s.Health.Folds = w.folds
			s.Health.Unfolds = w.unfolds
		}
		mu.Lock()
		per[w.id] = s
		mu.Unlock()
	})
	if err != nil {
		return Stats{}, err
	}
	for _, s := range per {
		st.Ops += s.Ops
		st.Bytes += s.Bytes
		if s.NEff > st.NEff {
			st.NEff = s.NEff
		}
		st.AdmittedMass += s.Health.AdmittedMass
		st.RejectedMass += s.Health.RejectedMass
	}
	st.PerShard = per
	st.Admission = m.AdmissionState()
	st.WAL = m.WALStats()
	return st, nil
}

// NumShards returns the shard count.
func (m *Manager) NumShards() int { return m.cfg.Shards }

// MaxShardFoldLevel reports the highest published fold level across
// shards — 0 when every engine serves at full resolution. It reads
// the wait-free telemetry blocks, so it never enqueues onto a worker
// (the level it reports is the last published one, like any scrape).
func (m *Manager) MaxShardFoldLevel() int {
	level := 0
	for _, tel := range m.tels {
		if l := int(tel.Snap.Load(obs.ShardFoldLevel)); l > level {
			level = l
		}
	}
	return level
}

// Tel returns shard i's telemetry block. The block is atomics all the
// way down and the backing slice is immutable after construction, so
// scrapers read it wait-free — a /metrics scrape never enqueues onto a
// worker and never touches the control mutex.
func (m *Manager) Tel(i int) *obs.ShardTel { return m.tels[i] }

// QueueDepth reports shard i's instantaneous ingest and fast-lane
// backlogs without enqueuing anything. During warm-up (no workers yet)
// both are zero. It takes the control mutex briefly — never a worker's
// queue — so a scrape cannot stall behind ingest.
func (m *Manager) QueueDepth(i int) (ingest, fast int) {
	m.mu.Lock()
	ws := m.workers
	m.mu.Unlock()
	if ws == nil {
		return 0, 0
	}
	return len(ws[i].ch), len(ws[i].qch)
}

// Close drains in-flight operations, stops the workers, and marks the
// manager unusable. It is idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.sendWG.Wait()
	for _, w := range m.workers {
		close(w.ch)
		close(w.qch)
	}
	m.workerWG.Wait()
	// Workers are gone — no tee sender remains — so the group-commit
	// loop can drain, final-sync, and retire.
	m.closeWAL()
	return nil
}
