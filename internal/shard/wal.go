package shard

// Durable ingest: the shard layer's write-ahead-log threading. Workers
// tee every *applied* ingest batch — the recycled rowBatch itself, no
// copy — to a single group-commit goroutine, which encodes the batch
// in PR 8's columnar row-run layout, appends it to the segment log
// (internal/wal), fsyncs per the configured policy, and only then
// returns the batch to the staging freelist. The hot path's cost is
// one channel send per batch (a small value struct: zero allocations),
// and the sequence numbers the workers stamp at tee time give every
// shard a strictly increasing subsequence in the log — the property
// replay depends on.
//
// Recovery inverts the tee: restore the newest valid snapshot, scan
// the log (torn tails truncate, mid-log damage fails closed), and feed
// every record past the snapshot's per-shard coverage back through the
// worker FIFOs as ordinary ingest batches. Because records preserve
// exact batch boundaries, the replayed per-shard apply sequence is the
// one the crashed process ran — ASCS gate decisions and all — so the
// recovered tables are bit-identical to a clean run over the durable
// prefix.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// walItem is one applied batch in flight to the group-commit loop.
type walItem struct {
	seq uint64
	sh  int
	b   *rowBatch
}

// walState owns the log handle and the group-commit goroutine.
type walState struct {
	log      *wal.Log
	mode     wal.SyncMode
	interval time.Duration

	// ch carries applied batches from the workers; closed by Close
	// after the workers exit. The blocking send is the backpressure:
	// a log that cannot keep up slows ingest instead of losing data.
	ch   chan walItem
	done chan struct{}
	// free is the manager's staging freelist; the loop returns each
	// batch there after encoding it.
	free chan *rowBatch

	// enc is the loop-owned encode scratch, reused per record.
	enc []byte

	// armed flips false when a write error disarms the log: serving
	// continues, durability is degraded loudly (metrics + stats).
	armed atomic.Bool

	errMu   sync.Mutex
	lastErr string

	// recovery is written once during setup, read-only after.
	recovery WALRecovery
}

// WALRecovery reports what one boot's recovery pass did.
type WALRecovery struct {
	// ReplayedRecords/ReplayedOps count the WAL records (and their pair
	// increments) fed back through the worker FIFOs; SkippedRecords
	// were at or below the restored snapshot's coverage.
	ReplayedRecords uint64 `json:"replayed_records"`
	ReplayedOps     uint64 `json:"replayed_ops"`
	SkippedRecords  uint64 `json:"skipped_records"`
	// MaxSeq is the highest sequence number scanned; fresh appends
	// resume above it.
	MaxSeq uint64 `json:"max_seq"`
	// Torn reports a truncated tail in the newest segment (the expected
	// crash signature); TornBytes is how much was discarded there.
	Torn      bool  `json:"torn,omitempty"`
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// DurationSeconds is the wall time of scan + replay + arming.
	DurationSeconds float64 `json:"duration_seconds"`
}

// WALStats is the live durability status served through /v1/stats and
// scraped into the ascs_wal_* metric families.
type WALStats struct {
	Armed             bool        `json:"armed"`
	Sync              string      `json:"sync"`
	LastSeq           uint64      `json:"last_seq"`
	Segments          int         `json:"segments"`
	AppendedBytes     uint64      `json:"appended_bytes"`
	Records           uint64      `json:"records"`
	Fsyncs            uint64      `json:"fsyncs"`
	Errors            uint64      `json:"errors"`
	TruncatedSegments uint64      `json:"truncated_segments"`
	LastError         string      `json:"last_error,omitempty"`
	Recovery          WALRecovery `json:"recovery"`
}

// WALStats returns the log's serving status, or nil when the
// deployment runs without a WAL.
func (m *Manager) WALStats() *WALStats {
	ws := m.wlog
	if ws == nil {
		return nil
	}
	ls := ws.log.Stats()
	ws.errMu.Lock()
	lastErr := ws.lastErr
	ws.errMu.Unlock()
	return &WALStats{
		Armed:             ws.armed.Load(),
		Sync:              ws.mode.String(),
		LastSeq:           m.walSeq.Load(),
		Segments:          ls.Segments,
		AppendedBytes:     ls.AppendedBytes,
		Records:           ls.Records,
		Fsyncs:            ls.Fsyncs,
		Errors:            ls.Errors,
		TruncatedSegments: ls.TruncatedSegments,
		LastError:         lastErr,
		Recovery:          ws.recovery,
	}
}

// walConfigName is the config pin: a JSON record of the engine-
// affecting configuration the deployment that writes the log actually
// runs, written into the WAL directory when the tee arms (after
// warm-up derivation, so the pinned schedule is the one the engines
// use). The segment headers pin only dim/shards — this file pins the
// rest, so a replay into a differently-configured engine (changed
// window, decay, schedule, sketch shape, engine kind) fails closed
// instead of silently producing state that matches neither the old
// deployment nor a clean new one.
const walConfigName = "wal-config.json"

// walConfig is the pinned configuration. EngineSpec is all scalars, so
// the struct is ==-comparable and survives a JSON round trip exactly.
type walConfig struct {
	Dim    int        `json:"dim"`
	Shards int        `json:"shards"`
	Engine EngineSpec `json:"engine"`
}

// loadWALConfig reads the pin, returning nil (no error) when no pin
// has ever been written.
func loadWALConfig(dir string) (*walConfig, error) {
	b, err := os.ReadFile(filepath.Join(dir, walConfigName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: reading WAL config pin: %w", err)
	}
	var c walConfig
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("shard: WAL config pin undecodable: %v: %w", err, wal.ErrCorrupt)
	}
	return &c, nil
}

// writeWALConfig pins the running configuration (tmp + rename, fsynced
// like the snapshot manifest). Called before the tee arms, so a log
// that holds records always has the pin that wrote them.
func writeWALConfig(dir string, c walConfig) error {
	body, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding WAL config pin: %w", err)
	}
	tmp := filepath.Join(dir, walConfigName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(body, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, walConfigName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// setupWAL scans the configured log directory, replays any tail past
// the snapshot coverage through the worker FIFOs, opens a fresh active
// segment, and starts the group-commit loop. Called single-threaded at
// the end of construction (New or RestoreWith), before the manager is
// reachable by any other goroutine.
//
// cover is the restored snapshot's per-shard coverage (nil for a fresh
// manager: every record replays); restored distinguishes "fresh
// manager, zero coverage is correct" from "restored from a pre-WAL
// snapshot whose overlap with the log is unknown" — the latter fails
// closed when the log holds records. A manager still buffering its
// warm-up prefix has no workers to replay into, so any record is fatal
// there too; an empty (or brand-new) log arms when the workers start.
func (m *Manager) setupWAL(cover []uint64, restored bool) error {
	mode, interval, err := wal.ParseSync(m.cfg.WALSync)
	if err != nil {
		return err
	}
	meta := wal.Meta{Dim: m.cfg.Dim, Shards: m.cfg.Shards}
	// The pin that wrote any existing records; loaded before the scan so
	// the first record can be checked against the configuration this
	// manager actually runs (m.spec: the manifest's engine when
	// restored, the flag-built one for a fresh manager).
	pin, err := loadWALConfig(m.cfg.WALDir)
	if err != nil {
		return err
	}
	pinChecked := false
	cur := walConfig{Dim: m.cfg.Dim, Shards: m.cfg.Shards, Engine: m.spec}
	start := time.Now()
	var rec WALRecovery
	noCover := cover == nil
	if noCover {
		cover = make([]uint64, m.cfg.Shards)
	}
	// perShardLast tracks the highest sequence applied per shard across
	// snapshot coverage and replay: it seeds each worker's walLast so
	// the next snapshot's coverage stays monotone, and it enforces the
	// per-shard ordering invariant over the scanned records.
	perShardLast := append([]uint64(nil), cover...)
	lastScanned := make([]uint64, m.cfg.Shards)
	maxT := 0
	scanRes, err := wal.Scan(m.cfg.WALDir, meta, true, func(seq uint64, payload []byte) error {
		if m.warming {
			return fmt.Errorf("shard: WAL at %s holds records but this deployment is still warming up; restore the covering snapshot or point the WAL at a fresh directory: %w",
				m.cfg.WALDir, wal.ErrCorrupt)
		}
		if restored && noCover {
			return fmt.Errorf("shard: WAL at %s holds records but the restored snapshot predates WAL coverage; its overlap with the log is unknown: %w",
				m.cfg.WALDir, wal.ErrCorrupt)
		}
		if !pinChecked {
			pinChecked = true
			if pin == nil {
				return fmt.Errorf("shard: WAL at %s holds records but no config pin (%s); the log cannot be matched to a deployment configuration: %w",
					m.cfg.WALDir, walConfigName, wal.ErrCorrupt)
			}
			if *pin != cur {
				return fmt.Errorf("shard: WAL at %s was written under a different engine configuration (pinned %+v, running %+v); replaying it would produce state matching neither deployment — restore the covering snapshot with matching flags, or point -wal-dir at a fresh directory: %w",
					m.cfg.WALDir, pin.Engine, cur.Engine, wal.ErrCorrupt)
			}
		}
		b := m.getBatch()
		sh, t, err := decodeWALPayload(payload, m.cfg.Shards, b)
		if err != nil {
			m.recycleBatch(b)
			return err
		}
		if seq <= lastScanned[sh] {
			m.recycleBatch(b)
			return fmt.Errorf("shard: WAL sequence %d for shard %d not after %d: %w", seq, sh, lastScanned[sh], wal.ErrCorrupt)
		}
		lastScanned[sh] = seq
		if seq <= cover[sh] {
			// The snapshot already contains this batch's effect.
			rec.SkippedRecords++
			m.recycleBatch(b)
			return nil
		}
		perShardLast[sh] = seq
		if t > maxT {
			maxT = t
		}
		rec.ReplayedRecords++
		rec.ReplayedOps += uint64(b.pairs())
		// Normal ingest delivery: the worker applies the batch through
		// the same OfferRow path (unfolding first if an idle fold or a
		// folded snapshot left the engine coarse), then recycles it —
		// the tee is not armed yet, so replay never re-logs itself.
		m.workers[sh].ch <- msg{ops: b, enq: time.Now()}
		return nil
	})
	if err != nil {
		return err
	}
	l, err := wal.Open(wal.Options{
		Dir:          m.cfg.WALDir,
		SegmentBytes: m.cfg.WALSegmentBytes,
		Meta:         meta,
		Faults:       m.faults,
	})
	if err != nil {
		return err
	}
	if !m.warming {
		// Pin the running configuration before the tee can arm. A warming
		// manager defers this to start(): its schedule is not derived yet,
		// and nothing can be teed until the workers exist.
		if err := writeWALConfig(m.cfg.WALDir, cur); err != nil {
			return err
		}
	}
	// Fresh sequences resume above everything ever covered or logged.
	seq := scanRes.MaxSeq
	for _, c := range cover {
		if c > seq {
			seq = c
		}
	}
	m.walSeq.Store(seq)
	ws := &walState{
		log:      l,
		mode:     mode,
		interval: interval,
		ch:       make(chan walItem, walQueueLen(m.cfg.Shards)),
		done:     make(chan struct{}),
		free:     m.opFree,
	}
	ws.armed.Store(true)
	m.wlog = ws
	go ws.loop()
	if !m.warming {
		// Advance the global step past the replayed tail, then arm the
		// tee on each worker's own goroutine via the ingest FIFO: the
		// closure runs after every replayed batch, so arming can neither
		// race the replay nor re-log it.
		m.mu.Lock()
		if maxT > m.t {
			m.t = maxT
		}
		m.mu.Unlock()
		err := m.execAll(context.Background(), ConsistencyFresh, nil, func(w *worker) {
			w.wal = ws.ch
			w.walGlobal = &m.walSeq
			w.walLast = perShardLast[w.id]
			w.publish()
		})
		if err != nil {
			return err
		}
	}
	rec.MaxSeq = scanRes.MaxSeq
	rec.Torn = scanRes.Torn
	rec.TornBytes = scanRes.TornBytes
	rec.DurationSeconds = time.Since(start).Seconds()
	ws.recovery = rec
	return nil
}

// recycleBatch returns a staging batch to the freelist (dropping it
// when full, like every other recycle point).
func (m *Manager) recycleBatch(b *rowBatch) {
	select {
	case m.opFree <- b.reset():
	default:
	}
}

// closeWAL retires the group-commit loop and the log. Called by Close
// after the workers have exited (no sender remains).
func (m *Manager) closeWAL() {
	ws := m.wlog
	if ws == nil {
		return
	}
	close(ws.ch)
	<-ws.done
	ws.log.Close()
}

// walQueueLen sizes the tee channel: deep enough that a group commit
// coalesces many batches under load, bounded so a stuck disk turns
// into ingest backpressure instead of unbounded buffering.
func walQueueLen(shards int) int {
	if n := 4 * shards; n > 64 {
		return n
	}
	return 64
}

// loop is the group-commit goroutine: it blocks for one batch, drains
// whatever else is queued (the commit group), encodes and appends each
// record, recycles the batches, and syncs per the policy. A write
// error disarms the log — remaining and future batches are recycled
// unwritten, serving continues, and the failure is visible in
// WALStats/metrics rather than fatal to ingest.
func (ws *walState) loop() {
	defer close(ws.done)
	var tickC <-chan time.Time
	if ws.mode == wal.SyncInterval {
		tick := time.NewTicker(ws.interval)
		defer tick.Stop()
		tickC = tick.C
	}
	failed := false
	pending := make([]walItem, 0, 64)
	for {
		select {
		case it, ok := <-ws.ch:
			if !ok {
				return
			}
			pending = append(pending[:0], it)
		coalesce:
			for {
				select {
				case it, ok := <-ws.ch:
					if !ok {
						break coalesce
					}
					pending = append(pending, it)
				default:
					break coalesce
				}
			}
			for _, it := range pending {
				if !failed {
					ws.enc = appendWALPayload(ws.enc[:0], it.sh, it.b)
					if err := ws.log.Append(it.seq, ws.enc); err != nil {
						failed = true
						ws.disarm(err)
					}
				}
				select {
				case ws.free <- it.b.reset():
				default:
				}
			}
			if failed {
				continue
			}
			var err error
			if ws.mode == wal.SyncBatch {
				err = ws.log.Sync()
			} else {
				err = ws.log.Flush()
			}
			if err != nil {
				failed = true
				ws.disarm(err)
			}
		case <-tickC:
			if !failed {
				if err := ws.log.Sync(); err != nil {
					failed = true
					ws.disarm(err)
				}
			}
		}
	}
}

func (ws *walState) disarm(err error) {
	ws.armed.Store(false)
	ws.errMu.Lock()
	ws.lastErr = err.Error()
	ws.errMu.Unlock()
}

// appendWALPayload encodes one routed batch in the columnar row-run
// layout (little-endian): shard, run headers (base, step, length), the
// partner column, the increment column. Appending onto the reusable
// scratch keeps the loop allocation-free at steady state.
func appendWALPayload(dst []byte, sh int, b *rowBatch) []byte {
	dst = le32(dst, uint32(sh))
	dst = le32(dst, uint32(len(b.hdrs)))
	for _, h := range b.hdrs {
		dst = le64(dst, h.base)
		dst = le64(dst, uint64(int64(h.t)))
		dst = le32(dst, uint32(h.n))
	}
	dst = le32(dst, uint32(len(b.prt)))
	for _, p := range b.prt {
		dst = le64(dst, p)
	}
	for _, x := range b.xs {
		dst = le64(dst, math.Float64bits(x))
	}
	return dst
}

// decodeWALPayload parses one record back into a staging batch,
// validating the structure a CRC cannot: a record that passed its
// checksum but decodes inconsistently is corruption and fails closed.
// Returns the owning shard and the record's highest step.
func decodeWALPayload(p []byte, shards int, b *rowBatch) (sh, maxT int, err error) {
	bad := func(what string) (int, int, error) {
		return 0, 0, fmt.Errorf("shard: WAL record %s: %w", what, wal.ErrCorrupt)
	}
	if len(p) < 8 {
		return bad("too short")
	}
	sh = int(binary.LittleEndian.Uint32(p[0:]))
	nh := int(binary.LittleEndian.Uint32(p[4:]))
	if sh < 0 || sh >= shards {
		return bad(fmt.Sprintf("names shard %d of %d", sh, shards))
	}
	p = p[8:]
	if len(p) < nh*20+4 {
		return bad("truncated run headers")
	}
	total := 0
	for i := 0; i < nh; i++ {
		base := binary.LittleEndian.Uint64(p[0:])
		t := int(int64(binary.LittleEndian.Uint64(p[8:])))
		n := int(binary.LittleEndian.Uint32(p[16:]))
		p = p[20:]
		if t < 1 || n < 1 {
			return bad(fmt.Sprintf("run with step %d length %d", t, n))
		}
		if maxT < t {
			maxT = t
		}
		total += n
		b.hdrs = append(b.hdrs, rowHdr{base: base, t: t, n: n})
	}
	np := int(binary.LittleEndian.Uint32(p[0:]))
	p = p[4:]
	if np != total {
		return bad(fmt.Sprintf("pair count %d != run total %d", np, total))
	}
	if len(p) != np*16 {
		return bad("column length mismatch")
	}
	for i := 0; i < np; i++ {
		b.prt = append(b.prt, binary.LittleEndian.Uint64(p[i*8:]))
	}
	p = p[np*8:]
	for i := 0; i < np; i++ {
		b.xs = append(b.xs, math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:])))
	}
	return sh, maxT, nil
}

func le32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
