package shard

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/pairs"
	"repro/internal/stream"
)

// laneSamples builds n deterministic sparse samples of dimensionality d
// with 3 nonzeros each, so every sample contributes exactly 3 pair ops.
func laneSamples(d, n int) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		a := i % (d - 2)
		out[i] = stream.Sample{Idx: []int{a, a + 1, a + 2}, Val: []float64{1, 2, 3}}
	}
	return out
}

// newLaneManager builds a 1-shard CS manager whose route emits one
// FIFO message per Ingest call (3 ops < FlushOps), so the test can
// count queued batches exactly.
func newLaneManager(t *testing.T, lane Consistency) *Manager {
	t.Helper()
	m, err := New(Config{
		Dim: 16,
		Engine: EngineSpec{
			Kind:   KindCS,
			Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 9},
			T:      10_000,
		},
		QueueLen:         64,
		FlushOps:         8,
		QueryConsistency: lane,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestFastLaneJumpsSaturatedQueue is the deterministic priority proof:
// with the worker gated and its ingest FIFO saturated with queued
// batches, a fast-lane query is served before any of them, while a
// fresh query enqueued behind them observes every one. This is the
// bounded-wait guarantee the lane exists for — without it the query
// would wait behind up to QueueLen batches.
func TestFastLaneJumpsSaturatedQueue(t *testing.T) {
	const queued = 20
	m := newLaneManager(t, ConsistencyFresh)
	w := m.workers[0]

	// Gate the worker inside a control message so everything enqueued
	// next stays queued until the test releases it.
	gate := make(chan struct{})
	w.ch <- msg{fn: func() { <-gate }}

	samples := laneSamples(m.cfg.Dim, queued)
	for i := range samples {
		if _, _, err := m.Ingest(samples[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	wantOps := uint64(3 * queued)

	// The fast query is enqueued while the FIFO holds all batches; the
	// fresh query lands on the FIFO after them. Both record the ops the
	// worker had applied when they ran.
	fastOps := make(chan uint64, 1)
	w.qch <- msg{fn: func() { fastOps <- w.ops }}
	freshOps := make(chan uint64, 1)
	go func() {
		if err := m.exec(context.Background(), 0, ConsistencyFresh, nil, func(w *worker) { freshOps <- w.ops }); err != nil {
			t.Error(err)
		}
	}()

	close(gate)
	if got := <-fastOps; got != 0 {
		t.Fatalf("fast-lane query ran after %d ops; want 0 (served ahead of all queued batches)", got)
	}
	if got := <-freshOps; got != wantOps {
		t.Fatalf("fresh query observed %d ops, want all %d enqueued before it", got, wantOps)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.ops != wantOps {
		t.Fatalf("worker applied %d ops, want %d", w.ops, wantOps)
	}
}

// TestFreshOverrideOnFastDefault pins that a deployment defaulting to
// the fast lane still honors an explicit fresh override: the fresh
// query observes every batch enqueued before it even while the FIFO is
// saturated, and Flush remains a true barrier.
func TestFreshOverrideOnFastDefault(t *testing.T) {
	const queued = 12
	m := newLaneManager(t, ConsistencyFast)
	w := m.workers[0]

	gate := make(chan struct{})
	w.ch <- msg{fn: func() { <-gate }}
	samples := laneSamples(m.cfg.Dim, queued)
	for i := range samples {
		if _, _, err := m.Ingest(samples[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	wantOps := uint64(3 * queued)

	type obs struct {
		ops  uint64
		lane string
	}
	results := make(chan obs, 2)
	// Default lane (fast) — may legally miss every queued batch.
	go func() {
		if err := m.exec(context.Background(), 0, m.lane(""), nil, func(w *worker) { results <- obs{w.ops, "fast"} }); err != nil {
			t.Error(err)
		}
	}()
	// Explicit fresh override — must see all of them.
	go func() {
		if err := m.exec(context.Background(), 0, m.lane(ConsistencyFresh), nil, func(w *worker) { results <- obs{w.ops, "fresh"} }); err != nil {
			t.Error(err)
		}
	}()

	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.lane == "fresh" && r.ops != wantOps {
			t.Fatalf("fresh override observed %d ops, want %d", r.ops, wantOps)
		}
		if r.lane == "fast" && r.ops > wantOps {
			t.Fatalf("fast query observed %d ops, more than the %d enqueued", r.ops, wantOps)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.ops != wantOps {
		t.Fatalf("Flush barrier left %d ops applied, want %d", w.ops, wantOps)
	}
}

// TestLaneDoesNotTouchIngestState drives one stream through a
// fresh-default manager (the pre-lane execution model) and a
// fast-default manager hammered with fast queries throughout, for both
// the fixed-horizon and the λ=1 decay execution paths. Every estimate
// must be bit-identical and Stats must reconcile: the lane changes only
// what a query waits behind, never the engine state — re-proving the
// FIFO ordering guarantees (decay ticks on batch boundaries, fresh
// total order) under the two-channel worker loop. Run with -race this
// is also the priority-lane concurrency proof.
func TestLaneDoesNotTouchIngestState(t *testing.T) {
	const d, T = 30, 600
	ds := dataset.Simulation(d, T, 0.02, 37)
	samples := make([]stream.Sample, len(ds.Rows))
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}
	for _, lambda := range []float64{0, 1} {
		spec := EngineSpec{
			Kind:   KindCS,
			Sketch: countsketch.Config{Tables: 4, Range: 1024, Seed: 31},
			T:      T,
			Lambda: lambda,
		}
		fresh, err := New(Config{Dim: d, Shards: 2, Engine: spec, FlushOps: 64, TrackCandidates: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := New(Config{Dim: d, Shards: 2, Engine: spec, FlushOps: 64,
			TrackCandidates: 1 << 12, QueryConsistency: ConsistencyFast})
		if err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var qwg sync.WaitGroup
		for q := 0; q < 2; q++ {
			qwg.Add(1)
			go func() {
				defer qwg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := fast.TopKMagnitude(5); err != nil {
						t.Error(err)
						return
					}
					if _, err := fast.EstimateKey(1); err != nil {
						t.Error(err)
						return
					}
					if _, err := fast.Stats(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		for lo := 0; lo < T; lo += 50 {
			if _, _, err := fresh.Ingest(samples[lo : lo+50]); err != nil {
				t.Fatal(err)
			}
			if _, _, err := fast.Ingest(samples[lo : lo+50]); err != nil {
				t.Fatal(err)
			}
		}
		close(stop)
		qwg.Wait()
		if err := fresh.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := fast.Flush(); err != nil {
			t.Fatal(err)
		}

		for key := uint64(0); key < uint64(pairs.Count(d)); key++ {
			fe, err := fresh.EstimateKey(key)
			if err != nil {
				t.Fatal(err)
			}
			// Explicit fresh read from the fast-default manager: post-
			// Flush both lanes must agree anyway, but the equivalence
			// claim is about state, not lane timing.
			ge, err := fast.EstimateKeyC(key, ConsistencyFresh)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(fe) != math.Float64bits(ge) {
				t.Fatalf("λ=%v key %d: fresh-default %v vs fast-default %v", lambda, key, fe, ge)
			}
		}
		fs, err := fresh.Stats()
		if err != nil {
			t.Fatal(err)
		}
		gs, err := fast.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if fs.Ops != gs.Ops || fs.Step != gs.Step {
			t.Fatalf("λ=%v stats diverge: fresh ops=%d step=%d vs fast ops=%d step=%d",
				lambda, fs.Ops, fs.Step, gs.Ops, gs.Step)
		}
		if gs.QueryConsistency != string(ConsistencyFast) || fs.QueryConsistency != string(ConsistencyFresh) {
			t.Fatalf("stats lanes: fresh=%q fast=%q", fs.QueryConsistency, gs.QueryConsistency)
		}
		fresh.Close()
		fast.Close()
	}
}

// TestSnapshotBarrierUnaffectedByLane snapshots a fast-default manager
// while fast queries are in flight: the cut must still observe every
// batch ingested before the call (fresh barrier), and the restored
// manager must keep the lane default and serve identical answers.
func TestSnapshotBarrierUnaffectedByLane(t *testing.T) {
	const d, n = 24, 500
	ds := dataset.Simulation(d, n, 0.03, 41)
	samples := make([]stream.Sample, len(ds.Rows))
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}
	m, err := New(Config{
		Dim: d, Shards: 2,
		Engine: EngineSpec{
			Kind:   KindCS,
			Sketch: countsketch.Config{Tables: 4, Range: 1024, Seed: 43},
			T:      n,
		},
		QueryConsistency: ConsistencyFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.Ingest(samples); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := m.TopKMagnitude(5); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	dir := t.TempDir()
	if err := m.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	close(stop)
	qwg.Wait()

	r, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.QueryConsistency(); got != ConsistencyFast {
		t.Fatalf("restored lane default = %q, want %q", got, ConsistencyFast)
	}
	if r.Step() != n {
		t.Fatalf("snapshot cut at step %d, want %d (barrier must observe all prior ingest)", r.Step(), n)
	}
	want, err := m.TopKMagnitudeC(10, ConsistencyFresh)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.TopKMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("topk[%d] diverges across snapshot/restore: %+v vs %+v", i, want[i], got[i])
		}
	}
}

// TestConsistencyValidation covers the knob's input surface.
func TestConsistencyValidation(t *testing.T) {
	if _, err := ParseConsistency("eventually"); err == nil {
		t.Fatal("ParseConsistency accepted an unknown lane")
	}
	for _, ok := range []string{"", "fresh", "fast"} {
		if _, err := ParseConsistency(ok); err != nil {
			t.Fatalf("ParseConsistency(%q): %v", ok, err)
		}
	}
	_, err := New(Config{
		Dim: 8,
		Engine: EngineSpec{
			Kind:   KindCS,
			Sketch: countsketch.Config{Tables: 2, Range: 64, Seed: 1},
			T:      100,
		},
		QueryConsistency: Consistency("eventually"),
	})
	if err == nil {
		t.Fatal("New accepted an unknown QueryConsistency")
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrWarmingUp) {
		t.Fatalf("unexpected sentinel: %v", err)
	}
}
