package shard_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/shard"
)

// TestSnapshotRestoreRoundTrip checkpoints a live manager mid-stream,
// continues the original, restores a twin from disk, feeds it the same
// remainder, and requires bit-identical estimates and retrievals: the
// restored worker state (engine tables, schedule position, candidate
// tracker) is exactly the serialized one, and the op routing is
// deterministic, so the two histories coincide.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	const (
		d      = 50
		n      = 1400
		shards = 3
		cut    = 700
	)
	ds := dataset.Simulation(d, n, 0.015, 31)
	samples := samplesOf(ds)
	skCfg := countsketch.Config{Tables: 5, Range: 2048, Seed: 23}

	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: shards, Warmup: 150, Standardize: true, Alpha: 0.01,
		Engine: shard.EngineSpec{Kind: shard.KindASCS, Sketch: skCfg, T: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, _, err := mgr.Ingest(samples[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := mgr.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}

	restored, err := shard.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Step() != cut {
		t.Fatalf("restored Step = %d, want %d", restored.Step(), cut)
	}
	if restored.Warming() {
		t.Fatal("restored manager must not be warming")
	}

	// Continue both histories with the identical remainder.
	for _, m := range []*shard.Manager{mgr, restored} {
		if _, _, err := m.Ingest(samples[cut:]); err != nil {
			t.Fatal(err)
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	origTop, err := mgr.TopKMagnitude(15)
	if err != nil {
		t.Fatal(err)
	}
	restTop, err := restored.TopKMagnitude(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(origTop) != len(restTop) {
		t.Fatalf("topk lengths differ: %d vs %d", len(origTop), len(restTop))
	}
	for i := range origTop {
		if origTop[i] != restTop[i] {
			t.Fatalf("topk[%d] differs: %+v vs %+v", i, origTop[i], restTop[i])
		}
	}
	for _, p := range origTop {
		oe, err := mgr.EstimateKey(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		re, err := restored.EstimateKey(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		if oe != re {
			t.Fatalf("estimate for key %d differs: %v vs %v", p.Key, oe, re)
		}
	}

	origStats, err := mgr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	restStats, err := restored.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if origStats.Ops != restStats.Ops || origStats.Step != restStats.Step {
		t.Fatalf("stats diverge: %+v vs %+v", origStats, restStats)
	}
}

// TestSnapshotCrashSafety simulates a crash mid-snapshot: blobs from an
// aborted snapshot (plus a stale manifest temp file) must not disturb
// the committed recovery point, and the next successful snapshot must
// garbage-collect them.
func TestSnapshotCrashSafety(t *testing.T) {
	const d, n, shards = 30, 600, 2
	ds := dataset.Simulation(d, n, 0.02, 17)
	samples := samplesOf(ds)
	skCfg := countsketch.Config{Tables: 4, Range: 1024, Seed: 7}
	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: shards,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: skCfg, T: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, _, err := mgr.Ingest(samples[:300]); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := mgr.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	// A later snapshot that died partway: truncated blob under a new id,
	// manifest temp file never renamed.
	for _, junk := range []string{"shard-0000-00000000deadbeef.bin", "manifest.json.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := shard.Restore(dir)
	if err != nil {
		t.Fatalf("restore ignored the committed manifest: %v", err)
	}
	if restored.Step() != 300 {
		t.Fatalf("restored Step = %d, want 300", restored.Step())
	}
	restored.Close()

	// The next successful snapshot garbage-collects the aborted blob.
	if _, _, err := mgr.Ingest(samples[300:400]); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-0000-00000000deadbeef.bin")); !os.IsNotExist(err) {
		t.Fatalf("aborted blob not garbage-collected (stat err: %v)", err)
	}
	restored2, err := shard.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored2.Close()
	if restored2.Step() != 400 {
		t.Fatalf("second restore Step = %d, want 400", restored2.Step())
	}
}

// TestRestoreErrors covers unrecoverable snapshot directories.
func TestRestoreErrors(t *testing.T) {
	if _, err := shard.Restore(t.TempDir()); err == nil {
		t.Fatal("restore of empty dir should fail (no manifest)")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Restore(dir); err == nil {
		t.Fatal("restore of corrupt manifest should fail")
	}
}
