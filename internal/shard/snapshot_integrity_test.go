package shard_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/shard"
	"repro/internal/sketchapi"
)

// snapshotFixture ingests a short stream into a fresh 2-shard manager
// and snapshots it, returning the manager and the snapshot dir.
func snapshotFixture(t *testing.T, in *faults.Injector) (*shard.Manager, string) {
	t.Helper()
	const d, n = 30, 500
	ds := dataset.Simulation(d, n, 0.02, 19)
	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: 2, Faults: in,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 4, Range: 1024, Seed: 3}, T: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	if _, _, err := mgr.Ingest(samplesOf(ds)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := mgr.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	return mgr, dir
}

// manifestFiles reads the per-shard blob list out of the committed
// manifest, so tests can corrupt a specific shard file.
func manifestFiles(t *testing.T, dir string) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Files []struct {
			Name string `json:"name"`
		} `json:"files"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range man.Files {
		names = append(names, f.Name)
	}
	return names
}

// TestRestoreChecksumFailsClosed flips a single byte in one shard blob
// and requires restore to fail with the named corruption error — the
// CRC32C pre-pass must catch silent bit rot before any state is
// deserialized. A truncated blob must fail the same way.
func TestRestoreChecksumFailsClosed(t *testing.T) {
	_, dir := snapshotFixture(t, nil)
	names := manifestFiles(t, dir)
	if len(names) != 2 {
		t.Fatalf("manifest lists %d files, want 2", len(names))
	}

	// Control: the intact snapshot restores.
	ctrl, err := shard.Restore(dir)
	if err != nil {
		t.Fatalf("intact restore: %v", err)
	}
	ctrl.Close()

	// Bit flip in the middle of shard 0's blob.
	path := filepath.Join(dir, names[0])
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x01
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Restore(dir); !errors.Is(err, shard.ErrSnapshotCorrupt) {
		t.Fatalf("bit-flipped restore: got %v, want ErrSnapshotCorrupt", err)
	} else if !errors.Is(err, sketchapi.ErrCorrupt) {
		t.Fatalf("ErrSnapshotCorrupt must wrap sketchapi.ErrCorrupt (got %v)", err)
	}

	// Truncation (fsync lost the tail) must also fail closed.
	if err := os.WriteFile(path, blob[:len(blob)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Restore(dir); !errors.Is(err, shard.ErrSnapshotCorrupt) {
		t.Fatalf("truncated restore: got %v, want ErrSnapshotCorrupt", err)
	}

	// Repair and restore again: the failure was the data, not the dir.
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	repaired, err := shard.Restore(dir)
	if err != nil {
		t.Fatalf("repaired restore: %v", err)
	}
	repaired.Close()
}

// TestRestorePreChecksumManifest strips the files section from the
// manifest — the shape every snapshot written before per-file CRCs had
// — and requires restore to still succeed: integrity verification is
// skipped, not demanded, for old snapshots.
func TestRestorePreChecksumManifest(t *testing.T) {
	mgr, dir := snapshotFixture(t, nil)
	manPath := filepath.Join(dir, "manifest.json")
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man map[string]json.RawMessage
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if _, ok := man["files"]; !ok {
		t.Fatal("fixture manifest has no files section to strip")
	}
	delete(man, "files")
	stripped, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, stripped, 0o644); err != nil {
		t.Fatal(err)
	}
	restored, err := shard.Restore(dir)
	if err != nil {
		t.Fatalf("pre-checksum manifest restore: %v", err)
	}
	defer restored.Close()
	if restored.Step() != mgr.Step() {
		t.Fatalf("restored Step = %d, want %d", restored.Step(), mgr.Step())
	}
}

// TestTornManifestFailsClosed commits a torn (truncated JSON) manifest
// through the real rename path via fault injection and requires restore
// to fail with the corruption error, never to serve half a recovery
// point.
func TestTornManifestFailsClosed(t *testing.T) {
	in, err := faults.Parse("torn")
	if err != nil {
		t.Fatal(err)
	}
	_, dir := snapshotFixture(t, in)
	if _, err := shard.Restore(dir); !errors.Is(err, shard.ErrSnapshotCorrupt) {
		t.Fatalf("torn manifest restore: got %v, want ErrSnapshotCorrupt", err)
	}
}

// TestSnapshotWriteFaultKeepsCommittedPoint injects blob write and
// fsync errors into a later snapshot of the same directory: the
// snapshot must fail loudly, and the previously committed recovery
// point must keep restoring (the failed attempt never reaches the
// manifest rename).
func TestSnapshotWriteFaultKeepsCommittedPoint(t *testing.T) {
	mgr, dir := snapshotFixture(t, nil)
	step := mgr.Step()

	for _, spec := range []string{"snapwrite=256", "fsyncerr"} {
		in, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		faulty, err := shard.RestoreWith(dir, shard.RestoreOverrides{Faults: in})
		if err != nil {
			t.Fatalf("restore before %s: %v", spec, err)
		}
		if err := faulty.Snapshot(dir); !errors.Is(err, faults.ErrInjected) {
			faulty.Close()
			t.Fatalf("snapshot under %s: got %v, want ErrInjected", spec, err)
		}
		faulty.Close()

		restored, err := shard.Restore(dir)
		if err != nil {
			t.Fatalf("committed point lost after failed %s snapshot: %v", spec, err)
		}
		if restored.Step() != step {
			t.Fatalf("committed point moved after failed %s snapshot: step %d, want %d", spec, restored.Step(), step)
		}
		restored.Close()
	}
}
