package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sketchapi"
	"repro/internal/topk"
)

// Snapshot layout: a directory holding one self-describing binary blob
// per shard (engine state via the internal/core and internal/countsketch
// serializers, plus the candidate tracker) and a manifest.json. Each
// Snapshot call gets a fresh snapshot id; its shard blobs carry the id
// in their name, and the manifest — committed last via write-temp-then-
// rename, which is atomic — is the sole pointer to the id that counts.
// A crash mid-snapshot therefore leaves the previous manifest intact
// and pointing at the previous, complete blob set: periodic snapshots
// into one directory never destroy the last good recovery point.
// Blobs from superseded or aborted snapshots are garbage-collected on
// the next successful Snapshot.

const (
	manifestName = "manifest.json"
	shardFilePat = "shard-%04d-%016x.bin"
	// manifestVersion is the classic fixed-horizon layout;
	// manifestVersionV2 marks unbounded (decay-mode) deployments, whose
	// engine blobs carry decay state — pre-decay readers refuse them
	// instead of silently serving a decayed sketch with horizon
	// semantics. Fixed deployments keep writing v1.
	manifestVersion   = 1
	manifestVersionV2 = 2
	shardMagic        = uint32(0xA5C5DA7A)
)

// snapshotMu serializes every Snapshot and Restore in the process,
// across Manager instances: a restore swap hands the periodic
// snapshotter a new manager mid-flight, and two interleaved snapshots
// into one directory could otherwise commit a manifest whose blobs the
// competing snapshot's GC already removed (or GC blobs out from under
// a concurrent Restore). Snapshots are rare; a coarse process-wide
// lock is the simple correct choice. Cross-process exclusion is the
// operator's job (one daemon per snapshot directory).
var snapshotMu sync.Mutex

// castagnoli is the CRC32C polynomial table used for snapshot file
// checksums (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// shardFileInfo records one shard blob's integrity facts in the
// manifest: its base name, byte length, and CRC32C over the whole file.
// Restore re-hashes each blob and refuses a mismatch with
// ErrSnapshotCorrupt — a truncated or bit-flipped sketch must fail
// closed, never load.
type shardFileInfo struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
}

type manifest struct {
	Version         int        `json:"version"`
	SnapshotID      uint64     `json:"snapshot_id"`
	Dim             int        `json:"dim"`
	Shards          int        `json:"shards"`
	Step            int        `json:"step"`
	Alpha           float64    `json:"alpha"`
	QueueLen        int        `json:"queue_len"`
	FlushOps        int        `json:"flush_ops"`
	TrackCandidates int        `json:"track_candidates"`
	InvStd          []float64  `json:"inv_std,omitempty"`
	Engine          EngineSpec `json:"engine"`
	// QueryConsistency is the deployment's default query lane; absent
	// in pre-lane snapshots, which restore as "fresh" (the semantics
	// they were written under).
	QueryConsistency Consistency `json:"query_consistency,omitempty"`
	// Admission is the deployment's ingest admission policy; absent in
	// pre-robustness snapshots, which restore as "block" (the semantics
	// they were written under).
	Admission AdmissionPolicy `json:"admission,omitempty"`
	// Files, indexed by shard, carries per-blob checksums. Absent in
	// pre-checksum manifests, which restore without verification (they
	// have nothing to verify against).
	Files []shardFileInfo `json:"files,omitempty"`
	// FoldIdle/FoldIdleTicks/FoldLevels record the snapshotting
	// deployment's idle-fold policy so a restore continues it, and
	// SnapshotFold the fold level the sketch blobs were streamed at
	// (the blobs are self-describing either way — restore reads the
	// level from the sketch header, not from here). All absent in
	// pre-fold manifests, which restore with the policy off.
	FoldIdle      time.Duration `json:"fold_idle,omitempty"`
	FoldIdleTicks int           `json:"fold_idle_ticks,omitempty"`
	FoldLevels    int           `json:"fold_levels,omitempty"`
	SnapshotFold  int           `json:"snapshot_fold,omitempty"`
	// Telemetry carries the cumulative counter baselines at snapshot
	// time, so a restored manager's counters resume monotonically
	// instead of restarting at zero. Absent in pre-baseline manifests.
	Telemetry *telemetryBaseline `json:"telemetry,omitempty"`
	// WAL records the write-ahead-log coverage of this snapshot: per
	// shard, the highest log sequence whose effect the shard blob
	// contains. Recovery replays only records above their shard's
	// coverage; log truncation may discard segments wholly at or below
	// the minimum. Absent when the snapshotting deployment ran without
	// a WAL — restoring such a snapshot against a non-empty log fails
	// closed (the overlap is unknowable).
	WAL *walManifest `json:"wal,omitempty"`
}

// walManifest is the manifest's WAL-coverage block. Cover is indexed
// by shard; Seq is the minimum (the log-truncation horizon), kept as a
// convenience for operators reading the JSON.
type walManifest struct {
	Seq   uint64   `json:"seq"`
	Cover []uint64 `json:"cover"`
}

// shardBaseline is one shard's cumulative counter baseline at the
// snapshot cut. Ops and step always traveled in the shard blob
// header; these are the worker counters that used to restart at zero
// on restore.
type shardBaseline struct {
	Batches   uint64 `json:"batches,omitempty"`
	LaneJumps uint64 `json:"lane_jumps,omitempty"`
	Folds     uint64 `json:"folds,omitempty"`
	Unfolds   uint64 `json:"unfolds,omitempty"`
}

// telemetryBaseline aggregates the restorable cumulative telemetry:
// per-shard worker counters plus the manager-level robustness
// counters.
type telemetryBaseline struct {
	Shards          []shardBaseline `json:"shards,omitempty"`
	ShedRequests    uint64          `json:"shed_requests,omitempty"`
	DeadlineOps     uint64          `json:"deadline_ops,omitempty"`
	DeadlineQueries uint64          `json:"deadline_queries,omitempty"`
}

func shardFileName(dir string, shard int, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf(shardFilePat, shard, id))
}

// Snapshot checkpoints every shard into dir (created if needed). The
// per-worker serialization runs through each shard's FIFO, so it
// observes every batch enqueued before the call (no separate Flush
// needed); under concurrent ingest the cut is per-shard-consistent,
// not globally aligned — quiesce producers for an exact global point.
// Returns ErrWarmingUp before the workers have started.
func (m *Manager) Snapshot(dir string) error {
	snapshotMu.Lock()
	defer snapshotMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: snapshot dir: %w", err)
	}
	m.mu.Lock()
	if m.warming {
		m.mu.Unlock()
		return ErrWarmingUp
	}
	// A warm-up replay in flight would make the manifest step claim a
	// prefix the shard cuts have only partially absorbed; wait it out
	// (queries keep flowing — only the snapshot waits).
	m.awaitReplay()
	man := manifest{
		Version:          manifestVersion,
		Dim:              m.cfg.Dim,
		Shards:           m.cfg.Shards,
		Step:             m.t,
		Alpha:            m.cfg.Alpha,
		QueueLen:         m.cfg.QueueLen,
		FlushOps:         m.cfg.FlushOps,
		TrackCandidates:  m.cfg.TrackCandidates,
		InvStd:           m.invStd,
		Engine:           m.spec,
		QueryConsistency: m.cfg.QueryConsistency,
		Admission:        m.cfg.Admission,
		FoldIdle:         m.cfg.FoldIdle,
		FoldIdleTicks:    m.cfg.FoldIdleTicks,
		FoldLevels:       m.cfg.FoldLevels,
		SnapshotFold:     m.cfg.SnapshotFold,
	}
	if m.spec.decaying() {
		man.Version = manifestVersionV2
	}
	m.mu.Unlock()
	man.SnapshotID = uint64(time.Now().UnixNano())
	man.Files = make([]shardFileInfo, m.cfg.Shards)
	bases := make([]shardBaseline, m.cfg.Shards)
	covers := make([]uint64, m.cfg.Shards)
	werrs := make([]error, m.cfg.Shards)
	// The snapshot cut must ride the ingest FIFO (fresh lane) so it
	// observes every batch enqueued before the call, whatever the
	// deployment's default query lane is.
	err := m.execAll(context.Background(), ConsistencyFresh, nil, func(w *worker) {
		// File IO runs on the worker goroutine: it owns the engine, and
		// stalling one shard's queue briefly is the price of a
		// lock-free hot path. Each closure writes its own slot.
		path := shardFileName(dir, w.id, man.SnapshotID)
		crc, size, err := w.writeSnapshot(path, m.cfg.SnapshotFold)
		werrs[w.id] = err
		man.Files[w.id] = shardFileInfo{Name: filepath.Base(path), Bytes: size, CRC32C: crc}
		bases[w.id] = shardBaseline{Batches: w.batches, LaneJumps: w.laneJumps, Folds: w.folds, Unfolds: w.unfolds}
		// The closure runs on the worker goroutine after every batch
		// enqueued before the cut, so walLast is exactly the highest log
		// sequence whose effect this blob contains.
		covers[w.id] = w.walLast
	})
	if err == nil {
		err = errors.Join(werrs...)
	}
	if err != nil {
		return err
	}
	man.Telemetry = &telemetryBaseline{
		Shards:          bases,
		ShedRequests:    m.shedRequests.Load(),
		DeadlineOps:     m.deadlineOps.Load(),
		DeadlineQueries: m.deadlineQueries.Load(),
	}
	var cutoff uint64
	if m.wlog != nil {
		cutoff = covers[0]
		for _, c := range covers[1:] {
			if c < cutoff {
				cutoff = c
			}
		}
		man.WAL = &walManifest{Seq: cutoff, Cover: covers}
	}
	if err := commitManifest(dir, man, m.faults); err != nil {
		return err
	}
	gcStaleBlobs(dir, man.SnapshotID)
	if m.wlog != nil {
		// The manifest is durable: log segments wholly at or below the
		// minimum coverage can never be needed again.
		m.wlog.log.TruncateThrough(cutoff)
	}
	var total uint64
	for _, f := range man.Files {
		total += uint64(f.Bytes)
	}
	m.lastSnapshotBytes.Store(total)
	m.snapshotsTotal.Add(1)
	return nil
}

// LastSnapshotBytes reports the byte total of this manager's most
// recent successful snapshot (0 before the first), and Snapshots the
// number of successful snapshots — the /metrics feed for snapshot
// size observability (pre-folded snapshots show up directly as a
// smaller byte total).
func (m *Manager) LastSnapshotBytes() uint64 { return m.lastSnapshotBytes.Load() }

// Snapshots reports the number of successful snapshots this manager
// has committed.
func (m *Manager) Snapshots() uint64 { return m.snapshotsTotal.Load() }

// commitManifest atomically replaces dir/manifest.json: the new
// snapshot becomes the recovery point only once its manifest rename
// lands, and the previous one stays valid until then. The temp file is
// fsynced before the rename and the directory after it, so a power
// loss cannot persist the rename ahead of the manifest's contents. The
// injector's torn-manifest fault commits a truncated JSON body through
// the same rename path — simulating exactly the on-disk state a
// non-atomic writer would leave, so restore's fail-closed behavior is
// testable.
func commitManifest(dir string, man manifest, in *faults.Injector) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		return err
	}
	body := buf.Bytes()
	if in.TornManifest() {
		body = body[:len(body)/2]
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// gcStaleBlobs removes shard blobs from superseded or aborted
// snapshots (best effort: leftovers cost disk, never correctness).
func gcStaleBlobs(dir string, keep uint64) {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
	if err != nil {
		return
	}
	suffix := fmt.Sprintf("-%016x.bin", keep)
	for _, path := range matches {
		if !strings.HasSuffix(path, suffix) {
			os.Remove(path)
		}
	}
}

// writeSnapshot serializes the worker's state to path and returns the
// CRC32C and byte length of the written file for the manifest. The
// checksum is computed over the exact bytes headed to disk (a tee on
// the buffered writer), so restore's re-hash of the file verifies the
// whole storage round trip. Injected write/fsync faults (chaos runs)
// surface as ordinary errors here, which abort the snapshot before the
// manifest commit — the previous recovery point stays intact.
//
// A positive fold level streams the engine's sketch pre-folded to
// that level (clamped per engine to its maximum) through the
// sketchapi.FoldedWriter facet: up to 2^level× fewer sketch bytes on
// disk, same header, same CRC discipline. Engines without the facet
// snapshot at live resolution.
func (w *worker) writeSnapshot(path string, fold int) (crc uint32, size int64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	bw := bufio.NewWriterSize(w.faults.SnapshotWriter(f), 1<<20)
	sum := crc32.New(castagnoli)
	cw := &countingWriter{w: io.MultiWriter(bw, sum)}
	hdr := make([]byte, 4+16)
	binary.LittleEndian.PutUint32(hdr[0:], shardMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(w.lastT))
	binary.LittleEndian.PutUint64(hdr[12:], w.ops)
	if _, err := cw.Write(hdr); err != nil {
		f.Close()
		return 0, 0, err
	}
	if fw, ok := w.eng.(sketchapi.FoldedWriter); ok && fold > 0 {
		_, err = fw.WriteToFolded(cw, fold)
	} else {
		_, err = w.eng.WriteTo(cw)
	}
	if err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := writeTracker(cw, w.track); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := w.faults.FsyncErr(); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, 0, err
	}
	return sum.Sum32(), cw.n, f.Close()
}

// countingWriter tallies bytes through a writer (the manifest's Bytes
// field, cross-checked against file size on restore).
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeTracker(w io.Writer, t *topk.Tracker) error {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(t.Len()))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	buf := make([]byte, 16)
	var werr error
	t.Each(func(key uint64, score float64) {
		if werr != nil {
			return
		}
		binary.LittleEndian.PutUint64(buf[0:], key)
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(score))
		if _, err := w.Write(buf); err != nil {
			werr = err
		}
	})
	return werr
}

// RestoreOverrides carries deployment knobs a restored daemon applies
// on top of the manifest: none of them change the serialized sketch
// state, only how the new process serves it.
type RestoreOverrides struct {
	// Admission, when non-empty, overrides the manifest's admission
	// policy (the manifest records what the snapshotting deployment
	// ran; the restoring one may differ).
	Admission AdmissionPolicy
	// WALDir, when non-empty, points at the restoring deployment's
	// write-ahead log: any tail past the manifest's coverage replays
	// before the manager serves, and the tee re-arms for new ingest.
	// Deployment state, never manifest state — the log lives where the
	// restoring process says it does. WALSync/WALSegmentBytes as in
	// Config.
	WALDir          string
	WALSync         string
	WALSegmentBytes int64
	// Faults wires the chaos injector into the restored manager.
	Faults *faults.Injector
}

// Restore rebuilds a Manager from a directory written by Snapshot and
// starts its workers; ingest resumes from the recorded step.
func Restore(dir string) (*Manager, error) {
	return RestoreWith(dir, RestoreOverrides{})
}

// RestoreWith is Restore with deployment overrides. It fails closed on
// integrity damage: a torn (truncated) manifest, or a shard blob whose
// size or CRC32C disagrees with a checksummed manifest, aborts with
// ErrSnapshotCorrupt before any state is served. Pre-checksum
// manifests (no files section) restore without verification.
func RestoreWith(dir string, o RestoreOverrides) (*Manager, error) {
	snapshotMu.Lock()
	defer snapshotMu.Unlock()
	mf, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: opening manifest: %w", err)
	}
	var man manifest
	err = json.NewDecoder(mf).Decode(&man)
	mf.Close()
	if err != nil {
		// Undecodable JSON at the committed name means the manifest did
		// not survive storage intact (torn write, truncation): integrity
		// damage, not a version problem.
		return nil, fmt.Errorf("shard: decoding manifest: %v: %w", err, ErrSnapshotCorrupt)
	}
	if man.Version != manifestVersion && man.Version != manifestVersionV2 {
		return nil, fmt.Errorf("shard: unsupported snapshot version %d", man.Version)
	}
	if man.Version == manifestVersionV2 && !man.Engine.decaying() {
		return nil, fmt.Errorf("shard: v2 snapshot manifest without decay state")
	}
	admission := man.Admission
	if o.Admission != "" {
		admission = o.Admission
	}
	cfg := Config{
		Dim:              man.Dim,
		Shards:           man.Shards,
		Engine:           man.Engine,
		Alpha:            man.Alpha,
		QueueLen:         man.QueueLen,
		FlushOps:         man.FlushOps,
		TrackCandidates:  man.TrackCandidates,
		InvStd:           man.InvStd,
		QueryConsistency: man.QueryConsistency,
		Admission:        admission,
		FoldIdle:         man.FoldIdle,
		FoldIdleTicks:    man.FoldIdleTicks,
		FoldLevels:       man.FoldLevels,
		SnapshotFold:     man.SnapshotFold,
		WALDir:           o.WALDir,
		WALSync:          o.WALSync,
		WALSegmentBytes:  o.WALSegmentBytes,
		Faults:           o.Faults,
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := cfg.Engine.validate(true); err != nil {
		return nil, err
	}
	// Integrity pre-pass: re-hash every blob against the manifest before
	// parsing any of it. Restore is rare; reading each file twice is a
	// fair price for never feeding a damaged byte to a deserializer.
	if len(man.Files) > 0 {
		if len(man.Files) != man.Shards {
			return nil, fmt.Errorf("shard: manifest lists %d files for %d shards: %w",
				len(man.Files), man.Shards, ErrSnapshotCorrupt)
		}
		for i, info := range man.Files {
			if err := verifyShardFile(filepath.Join(dir, info.Name), info); err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	m := &Manager{cfg: cfg, spec: cfg.Engine, invStd: cfg.InvStd, t: man.Step}
	m.replayCond = sync.NewCond(&m.mu)
	m.tels = make([]*obs.ShardTel, cfg.Shards)
	for i := range m.tels {
		m.tels[i] = &obs.ShardTel{}
	}
	m.opFree = make(chan *rowBatch, 4*cfg.Shards)
	m.bufFree = make(chan []*rowBatch, 8)
	m.initAdmission()
	workers := make([]*worker, cfg.Shards)
	for i := range workers {
		w, err := readShard(shardFileName(dir, i, man.SnapshotID), cfg.Engine.Kind, cfg.TrackCandidates)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		w.id = i
		w.ch = make(chan msg, cfg.QueueLen)
		w.qch = make(chan msg, cfg.QueueLen)
		w.lambda = cfg.Engine.Lambda
		w.free = m.opFree
		w.faults = m.faults
		// Seed the worker counters from the manifest baseline (absent in
		// pre-baseline manifests: those restart at zero as before) so the
		// cumulative telemetry stays monotonic across the restore; wiring
		// then publishes the restored ops/step/baselines so the first
		// scrape after Restore is not blank.
		if man.Telemetry != nil && i < len(man.Telemetry.Shards) {
			b := man.Telemetry.Shards[i]
			w.batches, w.laneJumps = b.Batches, b.LaneJumps
			w.folds, w.unfolds = b.Folds, b.Unfolds
		}
		w.foldSetup(cfg.FoldIdle, cfg.FoldIdleTicks, cfg.FoldLevels)
		w.wire(m.tels[i])
		workers[i] = w
		// Under concurrent ingest the manifest step is captured before
		// the per-shard cuts, so the serialized engines may already be
		// past it; resume from the furthest serialized step so freshly
		// assigned steps never collide with ones a sketch absorbed.
		if w.lastT > m.t {
			m.t = w.lastT
		}
	}
	if man.Telemetry != nil {
		m.shedRequests.Store(man.Telemetry.ShedRequests)
		m.deadlineOps.Store(man.Telemetry.DeadlineOps)
		m.deadlineQueries.Store(man.Telemetry.DeadlineQueries)
	}
	m.workers = workers
	m.workerWG.Add(len(workers))
	for _, w := range workers {
		go w.run(&m.workerWG)
	}
	if cfg.WALDir != "" {
		// Recovery tail: replay log records past the snapshot's per-shard
		// coverage through the live workers, then re-arm the tee. A
		// manifest without a WAL block restores against a non-empty log
		// only by failing closed (setupWAL enforces it).
		var cover []uint64
		if man.WAL != nil {
			if len(man.WAL.Cover) != cfg.Shards {
				return nil, fmt.Errorf("shard: manifest WAL coverage lists %d shards, want %d: %w",
					len(man.WAL.Cover), cfg.Shards, ErrSnapshotCorrupt)
			}
			cover = man.WAL.Cover
		}
		if err := m.setupWAL(cover, true); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

// verifyShardFile re-hashes one snapshot blob and checks it against the
// manifest record. Any disagreement — wrong length, wrong checksum —
// is ErrSnapshotCorrupt.
func verifyShardFile(path string, info shardFileInfo) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("opening %s: %v: %w", info.Name, err, ErrSnapshotCorrupt)
	}
	defer f.Close()
	sum := crc32.New(castagnoli)
	n, err := io.Copy(sum, f)
	if err != nil {
		return fmt.Errorf("reading %s: %v: %w", info.Name, err, ErrSnapshotCorrupt)
	}
	if n != info.Bytes {
		return fmt.Errorf("%s is %d bytes, manifest says %d: %w", info.Name, n, info.Bytes, ErrSnapshotCorrupt)
	}
	if got := sum.Sum32(); got != info.CRC32C {
		return fmt.Errorf("%s crc32c %08x, manifest says %08x: %w", info.Name, got, info.CRC32C, ErrSnapshotCorrupt)
	}
	return nil
}

func readShard(path string, kind Kind, trackCap int) (*worker, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, 4+16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("reading shard header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != shardMagic {
		return nil, fmt.Errorf("bad shard magic")
	}
	w := &worker{
		lastT: int(binary.LittleEndian.Uint64(hdr[4:])),
		ops:   binary.LittleEndian.Uint64(hdr[12:]),
	}
	var eng sketchapi.Snapshotter
	switch kind {
	case KindCS:
		eng, err = countsketch.ReadMeanSketchFrom(br)
	case KindASCS:
		eng, err = core.ReadEngineFrom(br)
	case KindASketch:
		eng, err = baselines.ReadASketchFrom(br)
	case KindColdFilter:
		eng, err = baselines.ReadColdFilterFrom(br)
	default:
		return nil, fmt.Errorf("unknown engine kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	w.eng = eng
	// Same fast-path detection as Manager.start: without it a restored
	// manager would silently fall back to per-op ingest (three hash
	// phases) for the rest of its life.
	if f, ok := eng.(sketchapi.OfferEstimator); ok {
		w.fast = f
	}
	if r, ok := eng.(sketchapi.RowOfferer); ok {
		w.row = r
	}
	w.track, err = readTracker(br, trackCap)
	if err != nil {
		return nil, err
	}
	return w, nil
}

func readTracker(r io.Reader, capacity int) (*topk.Tracker, error) {
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("reading tracker count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(cnt[:]))
	t := topk.NewTracker(capacity)
	buf := make([]byte, 16)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("reading tracker entry %d: %w", i, err)
		}
		t.Offer(binary.LittleEndian.Uint64(buf[0:]),
			math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])))
	}
	return t, nil
}
