package shard

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/obs"
	"repro/internal/sketchapi"
	"repro/internal/topk"
)

// Snapshot layout: a directory holding one self-describing binary blob
// per shard (engine state via the internal/core and internal/countsketch
// serializers, plus the candidate tracker) and a manifest.json. Each
// Snapshot call gets a fresh snapshot id; its shard blobs carry the id
// in their name, and the manifest — committed last via write-temp-then-
// rename, which is atomic — is the sole pointer to the id that counts.
// A crash mid-snapshot therefore leaves the previous manifest intact
// and pointing at the previous, complete blob set: periodic snapshots
// into one directory never destroy the last good recovery point.
// Blobs from superseded or aborted snapshots are garbage-collected on
// the next successful Snapshot.

const (
	manifestName = "manifest.json"
	shardFilePat = "shard-%04d-%016x.bin"
	// manifestVersion is the classic fixed-horizon layout;
	// manifestVersionV2 marks unbounded (decay-mode) deployments, whose
	// engine blobs carry decay state — pre-decay readers refuse them
	// instead of silently serving a decayed sketch with horizon
	// semantics. Fixed deployments keep writing v1.
	manifestVersion   = 1
	manifestVersionV2 = 2
	shardMagic        = uint32(0xA5C5DA7A)
)

// snapshotMu serializes every Snapshot and Restore in the process,
// across Manager instances: a restore swap hands the periodic
// snapshotter a new manager mid-flight, and two interleaved snapshots
// into one directory could otherwise commit a manifest whose blobs the
// competing snapshot's GC already removed (or GC blobs out from under
// a concurrent Restore). Snapshots are rare; a coarse process-wide
// lock is the simple correct choice. Cross-process exclusion is the
// operator's job (one daemon per snapshot directory).
var snapshotMu sync.Mutex

type manifest struct {
	Version         int        `json:"version"`
	SnapshotID      uint64     `json:"snapshot_id"`
	Dim             int        `json:"dim"`
	Shards          int        `json:"shards"`
	Step            int        `json:"step"`
	Alpha           float64    `json:"alpha"`
	QueueLen        int        `json:"queue_len"`
	FlushOps        int        `json:"flush_ops"`
	TrackCandidates int        `json:"track_candidates"`
	InvStd          []float64  `json:"inv_std,omitempty"`
	Engine          EngineSpec `json:"engine"`
	// QueryConsistency is the deployment's default query lane; absent
	// in pre-lane snapshots, which restore as "fresh" (the semantics
	// they were written under).
	QueryConsistency Consistency `json:"query_consistency,omitempty"`
}

func shardFileName(dir string, shard int, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf(shardFilePat, shard, id))
}

// Snapshot checkpoints every shard into dir (created if needed). The
// per-worker serialization runs through each shard's FIFO, so it
// observes every batch enqueued before the call (no separate Flush
// needed); under concurrent ingest the cut is per-shard-consistent,
// not globally aligned — quiesce producers for an exact global point.
// Returns ErrWarmingUp before the workers have started.
func (m *Manager) Snapshot(dir string) error {
	snapshotMu.Lock()
	defer snapshotMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: snapshot dir: %w", err)
	}
	m.mu.Lock()
	if m.warming {
		m.mu.Unlock()
		return ErrWarmingUp
	}
	// A warm-up replay in flight would make the manifest step claim a
	// prefix the shard cuts have only partially absorbed; wait it out
	// (queries keep flowing — only the snapshot waits).
	m.awaitReplay()
	man := manifest{
		Version:          manifestVersion,
		Dim:              m.cfg.Dim,
		Shards:           m.cfg.Shards,
		Step:             m.t,
		Alpha:            m.cfg.Alpha,
		QueueLen:         m.cfg.QueueLen,
		FlushOps:         m.cfg.FlushOps,
		TrackCandidates:  m.cfg.TrackCandidates,
		InvStd:           m.invStd,
		Engine:           m.spec,
		QueryConsistency: m.cfg.QueryConsistency,
	}
	if m.spec.decaying() {
		man.Version = manifestVersionV2
	}
	m.mu.Unlock()
	man.SnapshotID = uint64(time.Now().UnixNano())
	werrs := make([]error, m.cfg.Shards)
	// The snapshot cut must ride the ingest FIFO (fresh lane) so it
	// observes every batch enqueued before the call, whatever the
	// deployment's default query lane is.
	err := m.execAll(ConsistencyFresh, nil, func(w *worker) {
		// File IO runs on the worker goroutine: it owns the engine, and
		// stalling one shard's queue briefly is the price of a
		// lock-free hot path. Each closure writes its own slot.
		werrs[w.id] = w.writeSnapshot(shardFileName(dir, w.id, man.SnapshotID))
	})
	if err == nil {
		err = errors.Join(werrs...)
	}
	if err != nil {
		return err
	}
	if err := commitManifest(dir, man); err != nil {
		return err
	}
	gcStaleBlobs(dir, man.SnapshotID)
	return nil
}

// commitManifest atomically replaces dir/manifest.json: the new
// snapshot becomes the recovery point only once its manifest rename
// lands, and the previous one stays valid until then. The temp file is
// fsynced before the rename and the directory after it, so a power
// loss cannot persist the rename ahead of the manifest's contents.
func commitManifest(dir string, man manifest) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// gcStaleBlobs removes shard blobs from superseded or aborted
// snapshots (best effort: leftovers cost disk, never correctness).
func gcStaleBlobs(dir string, keep uint64) {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.bin"))
	if err != nil {
		return
	}
	suffix := fmt.Sprintf("-%016x.bin", keep)
	for _, path := range matches {
		if !strings.HasSuffix(path, suffix) {
			os.Remove(path)
		}
	}
}

func (w *worker) writeSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	hdr := make([]byte, 4+16)
	binary.LittleEndian.PutUint32(hdr[0:], shardMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(w.lastT))
	binary.LittleEndian.PutUint64(hdr[12:], w.ops)
	if _, err := bw.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if _, err := w.eng.WriteTo(bw); err != nil {
		f.Close()
		return err
	}
	if err := writeTracker(bw, w.track); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTracker(w io.Writer, t *topk.Tracker) error {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(t.Len()))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	buf := make([]byte, 16)
	var werr error
	t.Each(func(key uint64, score float64) {
		if werr != nil {
			return
		}
		binary.LittleEndian.PutUint64(buf[0:], key)
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(score))
		if _, err := w.Write(buf); err != nil {
			werr = err
		}
	})
	return werr
}

// Restore rebuilds a Manager from a directory written by Snapshot and
// starts its workers; ingest resumes from the recorded step.
func Restore(dir string) (*Manager, error) {
	snapshotMu.Lock()
	defer snapshotMu.Unlock()
	mf, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: opening manifest: %w", err)
	}
	var man manifest
	err = json.NewDecoder(mf).Decode(&man)
	mf.Close()
	if err != nil {
		return nil, fmt.Errorf("shard: decoding manifest: %w", err)
	}
	if man.Version != manifestVersion && man.Version != manifestVersionV2 {
		return nil, fmt.Errorf("shard: unsupported snapshot version %d", man.Version)
	}
	if man.Version == manifestVersionV2 && !man.Engine.decaying() {
		return nil, fmt.Errorf("shard: v2 snapshot manifest without decay state")
	}
	cfg := Config{
		Dim:              man.Dim,
		Shards:           man.Shards,
		Engine:           man.Engine,
		Alpha:            man.Alpha,
		QueueLen:         man.QueueLen,
		FlushOps:         man.FlushOps,
		TrackCandidates:  man.TrackCandidates,
		InvStd:           man.InvStd,
		QueryConsistency: man.QueryConsistency,
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := cfg.Engine.validate(true); err != nil {
		return nil, err
	}
	m := &Manager{cfg: cfg, spec: cfg.Engine, invStd: cfg.InvStd, t: man.Step}
	m.replayCond = sync.NewCond(&m.mu)
	m.tels = make([]*obs.ShardTel, cfg.Shards)
	for i := range m.tels {
		m.tels[i] = &obs.ShardTel{}
	}
	workers := make([]*worker, cfg.Shards)
	for i := range workers {
		w, err := readShard(shardFileName(dir, i, man.SnapshotID), cfg.Engine.Kind, cfg.TrackCandidates)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		w.id = i
		w.ch = make(chan msg, cfg.QueueLen)
		w.qch = make(chan msg, cfg.QueueLen)
		w.lambda = cfg.Engine.Lambda
		// Telemetry is not serialized: the counters restart at zero, but
		// wiring publishes the restored ops/step so the first scrape
		// after Restore is not blank.
		w.wire(m.tels[i])
		workers[i] = w
		// Under concurrent ingest the manifest step is captured before
		// the per-shard cuts, so the serialized engines may already be
		// past it; resume from the furthest serialized step so freshly
		// assigned steps never collide with ones a sketch absorbed.
		if w.lastT > m.t {
			m.t = w.lastT
		}
	}
	m.workers = workers
	m.workerWG.Add(len(workers))
	for _, w := range workers {
		go w.run(&m.workerWG)
	}
	return m, nil
}

func readShard(path string, kind Kind, trackCap int) (*worker, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, 4+16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("reading shard header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != shardMagic {
		return nil, fmt.Errorf("bad shard magic")
	}
	w := &worker{
		lastT: int(binary.LittleEndian.Uint64(hdr[4:])),
		ops:   binary.LittleEndian.Uint64(hdr[12:]),
	}
	var eng sketchapi.Snapshotter
	switch kind {
	case KindCS:
		eng, err = countsketch.ReadMeanSketchFrom(br)
	case KindASCS:
		eng, err = core.ReadEngineFrom(br)
	case KindASketch:
		eng, err = baselines.ReadASketchFrom(br)
	case KindColdFilter:
		eng, err = baselines.ReadColdFilterFrom(br)
	default:
		return nil, fmt.Errorf("unknown engine kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	w.eng = eng
	// Same fused-path detection as Manager.start: without it a restored
	// manager would silently fall back to per-op ingest (three hash
	// phases) for the rest of its life.
	if f, ok := eng.(sketchapi.OfferEstimator); ok {
		w.fast = f
	}
	w.track, err = readTracker(br, trackCap)
	if err != nil {
		return nil, err
	}
	return w, nil
}

func readTracker(r io.Reader, capacity int) (*topk.Tracker, error) {
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("reading tracker count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(cnt[:]))
	t := topk.NewTracker(capacity)
	buf := make([]byte, 16)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("reading tracker entry %d: %w", i, err)
		}
		t.Offer(binary.LittleEndian.Uint64(buf[0:]),
			math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])))
	}
	return t, nil
}
