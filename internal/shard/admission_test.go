package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/countsketch"
	"repro/internal/obs"
	"repro/internal/sketchapi"
)

// newAdmissionManager builds a 1-shard CS manager with a tiny ingest
// FIFO so admission bounds are reached with a handful of batches (each
// 1-sample Ingest emits one FIFO message: 3 ops < FlushOps).
func newAdmissionManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	cfg.Dim = 16
	cfg.Engine = EngineSpec{
		Kind:   KindCS,
		Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 11},
		T:      100_000,
	}
	cfg.FlushOps = 8
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// gateWorker parks shard 0's worker inside a control message and waits
// until it is actually parked, so the FIFO fill the test creates next
// is deterministic. The returned release func is idempotent.
func gateWorker(t *testing.T, m *Manager) func() {
	t.Helper()
	w := m.workers[0]
	entered := make(chan struct{})
	gate := make(chan struct{})
	w.ch <- msg{fn: func() { close(entered); <-gate }}
	<-entered
	released := false
	return func() {
		if !released {
			released = true
			close(gate)
		}
	}
}

func TestParseAdmission(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want AdmissionPolicy
		ok   bool
	}{
		{"", AdmitBlock, true},
		{"block", AdmitBlock, true},
		{"shed", AdmitShed, true},
		{"degrade", AdmitDegrade, true},
		{"bogus", "", false},
	} {
		got, err := ParseAdmission(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseAdmission(%q) = (%q, %v), want (%q, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestShedRefusesWholeRequest pins the shed contract: with a shard
// FIFO at the bound, ingest is refused whole — typed ErrQueueFull in
// the sketchapi overload class, no step consumed, counters bumped —
// and admission recovers as soon as the queue drains.
func TestShedRefusesWholeRequest(t *testing.T) {
	m := newAdmissionManager(t, Config{QueueLen: 4, Admission: AdmitShed})
	release := gateWorker(t, m)
	defer release()

	samples := laneSamples(m.cfg.Dim, 5)
	for i := 0; i < 4; i++ {
		if _, _, err := m.Ingest(samples[i : i+1]); err != nil {
			t.Fatalf("ingest %d below the bound: %v", i, err)
		}
	}
	stepBefore := m.Step()

	_, _, err := m.Ingest(samples[4:5])
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("ingest at the bound: got %v, want ErrQueueFull", err)
	}
	if !errors.Is(err, sketchapi.ErrOverload) {
		t.Fatalf("ErrQueueFull must wrap sketchapi.ErrOverload (got %v)", err)
	}
	if got := m.Step(); got != stepBefore {
		t.Fatalf("refused request consumed steps: %d -> %d", stepBefore, got)
	}
	st := m.AdmissionState()
	if st.ShedRequests != 1 {
		t.Fatalf("ShedRequests = %d, want 1", st.ShedRequests)
	}
	if got := m.tels[0].Snap.Value(obs.ShardAdmissionRejects); got != 1 {
		t.Fatalf("shard admission rejects counter = %v, want 1", got)
	}
	if ra := m.RetryAfter(); ra <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", ra)
	}

	release()
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Ingest(samples[4:5]); err != nil {
		t.Fatalf("ingest after drain still refused: %v", err)
	}
}

// TestIngestDeadlineAbandons pins the deadline contract on the ingest
// path: with the FIFO full under the block policy, an expired context
// terminates the request with ErrDeadline instead of blocking forever,
// and the abandoned ops are counted.
func TestIngestDeadlineAbandons(t *testing.T) {
	m := newAdmissionManager(t, Config{QueueLen: 2})
	release := gateWorker(t, m)
	defer release()

	samples := laneSamples(m.cfg.Dim, 3)
	for i := 0; i < 2; i++ {
		if _, _, err := m.Ingest(samples[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := m.IngestCtx(ctx, samples[2:3])
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDeadline) || !errors.Is(err, sketchapi.ErrDeadline) {
			t.Fatalf("full-queue ingest past deadline: got %v, want ErrDeadline", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ingest hung past its deadline")
	}
	if st := m.AdmissionState(); st.DeadlineOps == 0 {
		t.Fatal("abandoned ops not counted in DeadlineOps")
	}
}

// TestQueryDeadlineAbandons pins the deadline contract on the query
// path: a query stuck behind a stalled worker returns ErrDeadline at
// its deadline, the abandoned closure is claimed race-free (it must
// not touch the caller's result after return), and the worker serves
// normally once released.
func TestQueryDeadlineAbandons(t *testing.T) {
	m := newAdmissionManager(t, Config{QueueLen: 8})
	release := gateWorker(t, m)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := m.EstimateT(ctx, 0, 1, ConsistencyFresh, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("stalled query past deadline: got %v, want ErrDeadline", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query hung past its deadline")
	}
	if st := m.AdmissionState(); st.DeadlineQueries == 0 {
		t.Fatal("abandoned query not counted in DeadlineQueries")
	}

	release()
	if _, err := m.EstimateC(0, 1, ConsistencyFresh); err != nil {
		t.Fatalf("query after release: %v", err)
	}
}

// TestGovernorHysteresis drives the state machine through a pressure
// swing: it degrades at high, stays degraded in the gap, and recovers
// only at low — two transitions total.
func TestGovernorHysteresis(t *testing.T) {
	g := &governor{high: 0.8, low: 0.3}
	if g.degradeNow(0.5) {
		t.Fatal("degraded below high before ever tripping")
	}
	if !g.degradeNow(0.9) {
		t.Fatal("not degraded at pressure ≥ high")
	}
	if !g.degradeNow(0.5) {
		t.Fatal("recovered inside the hysteresis gap")
	}
	if g.degradeNow(0.2) {
		t.Fatal("still degraded at pressure ≤ low")
	}
	if got := g.transitions.Load(); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
	if g.degradedQueries.Load() != 2 {
		t.Fatalf("degradedQueries = %d, want 2", g.degradedQueries.Load())
	}
}

// TestDegradePolicyRoutesFreshToFast is the governor end to end: under
// queue pressure past DegradeHigh, the fresh lane is re-routed to the
// fast lane (served ahead of the backlog); after the queue drains the
// governor recovers and fresh queries ride the FIFO again.
func TestDegradePolicyRoutesFreshToFast(t *testing.T) {
	m := newAdmissionManager(t, Config{
		QueueLen: 4, Admission: AdmitDegrade,
		DegradeHigh: 0.5, DegradeLow: 0.26,
	})
	release := gateWorker(t, m)
	defer release()

	samples := laneSamples(m.cfg.Dim, 3)
	for i := 0; i < 3; i++ {
		if _, _, err := m.Ingest(samples[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	// Pressure 3/4 ≥ 0.5: fresh must be re-routed.
	if got := m.lane(ConsistencyFresh); got != ConsistencyFast {
		t.Fatalf("lane under pressure = %q, want fast", got)
	}
	st := m.AdmissionState()
	if !st.Degraded || st.DegradedQueries == 0 {
		t.Fatalf("governor state not reflected: %+v", st)
	}
	release()
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	// Pressure 0 ≤ 0.26: recovered.
	if got := m.lane(ConsistencyFresh); got != ConsistencyFresh {
		t.Fatalf("lane after drain = %q, want fresh", got)
	}
	if st := m.AdmissionState(); st.Degraded || st.DegradeTransitions != 2 {
		t.Fatalf("governor did not recover: %+v", st)
	}
}
