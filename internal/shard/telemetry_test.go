package shard

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/obs"
	"repro/internal/stream"
)

// telSamples builds n deterministic sparse samples of dimensionality d
// with 4 nonzeros each (6 pair ops per sample).
func telSamples(d, n int) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		a := i % (d - 3)
		out[i] = stream.Sample{Idx: []int{a, a + 1, a + 2, a + 3}, Val: []float64{1, -2, 3, 0.5}}
	}
	return out
}

// TestShardTelemetryPublish drives an ASCS deployment through its
// exploration window and checks the published atomic snapshots against
// the structured stats: the wait-free /metrics view and the /v1/stats
// view must be two reads of the same counters.
func TestShardTelemetryPublish(t *testing.T) {
	m, err := New(Config{
		Dim:    24,
		Shards: 4,
		Engine: EngineSpec{
			Kind:     KindASCS,
			Sketch:   countsketch.Config{Tables: 3, Range: 512, Seed: 11},
			T:        4096,
			Schedule: core.Hyperparams{T: 4096, T0: 32, Theta: 0.05, Tau0: 1e-5},
		},
		FlushOps: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const n = 512
	if _, _, err := m.Ingest(telSamples(24, n)); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}

	st, err := m.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := uint64(6 * n)
	if st.Ops != wantOps {
		t.Fatalf("Stats.Ops = %d, want %d", st.Ops, wantOps)
	}
	if st.AdmittedMass <= 0 {
		t.Fatalf("Stats.AdmittedMass = %v, want > 0", st.AdmittedMass)
	}

	// The atomic telemetry blocks must agree with the structured stats.
	var ops, batches, offered, admitted, expl uint64
	var admMass, rejMass float64
	for i := 0; i < m.NumShards(); i++ {
		s := &m.Tel(i).Snap
		ops += s.Load(obs.ShardOps)
		batches += s.Load(obs.ShardBatches)
		offered += s.Load(obs.ShardGateOffered)
		admitted += s.Load(obs.ShardGateAdmitted)
		expl += s.Load(obs.ShardExplorationInserts)
		admMass += s.LoadFloat(obs.ShardAdmittedMass)
		rejMass += s.LoadFloat(obs.ShardRejectedMass)
		if s.Load(obs.ShardStep) == 0 {
			t.Errorf("shard %d: published step is 0 after ingest", i)
		}
		if s.Load(obs.ShardQueueHighWater) == 0 {
			t.Errorf("shard %d: queue high-water never racked despite %d batches", i, s.Load(obs.ShardBatches))
		}
		if s.Load(obs.ShardEngineBytes) == 0 {
			t.Errorf("shard %d: engine bytes gauge is 0", i)
		}
	}
	if ops != wantOps {
		t.Errorf("published ops sum = %d, want %d", ops, wantOps)
	}
	if batches == 0 {
		t.Error("no batches published")
	}
	if expl == 0 {
		t.Error("no exploration inserts published after T0 window")
	}
	if offered == 0 || admitted == 0 {
		t.Errorf("gate counters (offered=%d admitted=%d) empty after sampling began", offered, admitted)
	}
	if admMass != st.AdmittedMass || rejMass != st.RejectedMass {
		t.Errorf("published mass (%v, %v) disagrees with Stats (%v, %v)",
			admMass, rejMass, st.AdmittedMass, st.RejectedMass)
	}
	// The per-shard health block mirrors the same counters.
	var hOps uint64
	for _, ps := range st.PerShard {
		hOps += ps.Health.GateOffered
		if ps.Health.Batches == 0 {
			t.Errorf("shard %d: health batches = 0", ps.Shard)
		}
	}
	if hOps != offered {
		t.Errorf("per-shard health gate offered sum = %d, published sum = %d", hOps, offered)
	}

	// Histograms: batch sizes and applies were observed.
	var hs obs.HistSnap
	var batchObs uint64
	for i := 0; i < m.NumShards(); i++ {
		m.Tel(i).BatchSize.Snapshot(&hs)
		batchObs += hs.Count
	}
	if batchObs != batches {
		t.Errorf("batch-size histogram count = %d, want %d (one observe per batch)", batchObs, batches)
	}
}

// TestShardTelemetryLaneJumpsAndTrace pins that fast-lane queries count
// as lane jumps, land in the fast-wait histogram, and that a traced
// top-k fills all three spans.
func TestShardTelemetryLaneJumpsAndTrace(t *testing.T) {
	m := newLaneManager(t, ConsistencyFresh)
	if _, _, err := m.Ingest(laneSamples(m.cfg.Dim, 64)); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}

	const fastQs = 5
	for i := 0; i < fastQs; i++ {
		if _, err := m.TopKC(3, ConsistencyFast); err != nil {
			t.Fatal(err)
		}
	}
	st, err := m.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var jumps uint64
	for _, ps := range st.PerShard {
		jumps += ps.Health.LaneJumps
	}
	// Stats itself rides the fresh lane; only the fast top-k queries jump.
	if jumps != fastQs {
		t.Errorf("lane jumps = %d, want %d", jumps, fastQs)
	}
	var hs obs.HistSnap
	m.Tel(0).FastWait.Snapshot(&hs)
	if hs.Count != fastQs {
		t.Errorf("fast-wait histogram count = %d, want %d", hs.Count, fastQs)
	}

	var tr QueryTrace
	if _, err := m.TopKT(context.Background(), 3, ConsistencyFresh, true, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.QueueWait <= 0 || tr.Apply <= 0 || tr.Merge <= 0 {
		t.Errorf("trace spans not all filled: wait=%v apply=%v merge=%v", tr.QueueWait, tr.Apply, tr.Merge)
	}

	var str QueryTrace
	if _, err := m.StatsT(context.Background(), "", &str); err != nil {
		t.Fatal(err)
	}
	if str.QueueWait <= 0 || str.Apply <= 0 {
		t.Errorf("stats trace spans not filled: wait=%v apply=%v", str.QueueWait, str.Apply)
	}
}
