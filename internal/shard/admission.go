package shard

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sketchapi"
)

// Failure-model sentinels. Each wraps its sketchapi class, so callers
// can match the specific condition (errors.Is(err, ErrQueueFull)) or
// the transport-level class (errors.Is(err, sketchapi.ErrOverload))
// without this package and the HTTP layer importing each other.
var (
	// ErrQueueFull rejects ingest at admission under the shed/degrade
	// policies: a shard FIFO has crossed the configured bound and the
	// request was refused whole — nothing was queued, no steps were
	// consumed, so a retry (after Manager.RetryAfter) replays cleanly.
	ErrQueueFull = fmt.Errorf("shard: ingest queue at bound: %w", sketchapi.ErrOverload)
	// ErrDeadline terminates a call whose context expired while its work
	// was still queued. For queries nothing ran; for ingest the batches
	// shipped before expiry were applied and the remainder abandoned
	// (counted in ascs_shard_deadline_abandons_total) — the one partial-
	// delivery case in the API, inherent to deadline-bounded fan-out.
	ErrDeadline = fmt.Errorf("shard: %w", sketchapi.ErrDeadline)
	// ErrSnapshotCorrupt fails a restore closed: a snapshot file or its
	// manifest did not survive integrity verification (checksum
	// mismatch, truncation, torn manifest JSON).
	ErrSnapshotCorrupt = fmt.Errorf("shard: snapshot: %w", sketchapi.ErrCorrupt)
)

// AdmissionPolicy selects what ingest does when a shard FIFO is at its
// bound: the classic backpressure of blocking on the channel, or
// fail-fast shedding so the caller can back off and retry.
type AdmissionPolicy string

const (
	// AdmitBlock is the classic policy: ingest blocks on the full shard
	// FIFO until the worker drains it (bounded by the caller's context
	// deadline, if any). Backpressure without failure — right for
	// trusted in-process producers and batch replays.
	AdmitBlock AdmissionPolicy = "block"
	// AdmitShed refuses the whole ingest request with ErrQueueFull when
	// any shard FIFO has reached the ShedHighWater bound, before any
	// step is assigned. Transports map it to HTTP 429 + Retry-After.
	AdmitShed AdmissionPolicy = "shed"
	// AdmitDegrade is AdmitShed plus the overload governor: while queue
	// pressure exceeds DegradeHigh, fresh-lane queries are auto-routed
	// down the fast lane (bounded staleness instead of queue waits),
	// recovering only when pressure falls below DegradeLow.
	AdmitDegrade AdmissionPolicy = "degrade"
)

// ParseAdmission maps the wire/flag form onto an AdmissionPolicy; the
// empty string means AdmitBlock (the historical behavior).
func ParseAdmission(s string) (AdmissionPolicy, error) {
	switch p := AdmissionPolicy(s); p {
	case "":
		return AdmitBlock, nil
	case AdmitBlock, AdmitShed, AdmitDegrade:
		return p, nil
	default:
		return "", fmt.Errorf("shard: unknown admission policy %q (want %q, %q or %q)",
			s, AdmitBlock, AdmitShed, AdmitDegrade)
	}
}

// governor is the hysteretic overload state machine of AdmitDegrade:
// degraded flips on when pressure (max shard FIFO fill fraction)
// crosses high, and off only once it falls to low — the gap prevents
// flapping at the threshold. All state is atomic; the check runs on
// query paths without locks.
type governor struct {
	high, low       float64
	degraded        atomic.Bool
	transitions     atomic.Uint64
	degradedQueries atomic.Uint64
}

// degradeNow folds one pressure observation into the state machine and
// reports whether the calling query should be degraded to the fast
// lane.
func (g *governor) degradeNow(p float64) bool {
	if g.degraded.Load() {
		if p <= g.low {
			if g.degraded.CompareAndSwap(true, false) {
				g.transitions.Add(1)
			}
			return false
		}
		g.degradedQueries.Add(1)
		return true
	}
	if p >= g.high {
		if g.degraded.CompareAndSwap(false, true) {
			g.transitions.Add(1)
		}
		g.degradedQueries.Add(1)
		return true
	}
	return false
}

// initAdmission derives the robustness runtime state from the filled
// config: the shed depth in batches, the governor (AdmitDegrade only),
// and the fault injector. Called from New and Restore before any
// worker starts.
func (m *Manager) initAdmission() {
	m.shedAt = int(math.Ceil(m.cfg.ShedHighWater * float64(m.cfg.QueueLen)))
	if m.shedAt < 1 {
		m.shedAt = 1
	}
	if m.cfg.Admission == AdmitDegrade {
		m.gov = &governor{high: m.cfg.DegradeHigh, low: m.cfg.DegradeLow}
	}
	m.faults = m.cfg.Faults
}

// Degraded reports whether the overload governor is currently routing
// fresh queries down the fast lane (AdmitDegrade deployments only).
// The HTTP layer uses it as the signal to degrade default-resolution
// reads onto the folded/cached path as well.
func (m *Manager) Degraded() bool { return m.gov != nil && m.gov.degraded.Load() }

// pressure returns the worst shard FIFO fill fraction (len/QueueLen):
// the governor's and Retry-After's load signal. Zero during warm-up.
func (m *Manager) pressure() float64 {
	m.mu.Lock()
	ws := m.workers
	m.mu.Unlock()
	depth := 0
	for _, w := range ws {
		if d := len(w.ch); d > depth {
			depth = d
		}
	}
	return float64(depth) / float64(m.cfg.QueueLen)
}

// overfullShard returns the first shard whose ingest FIFO has reached
// the admission bound, or -1. Called under mu with workers started; a
// handful of channel length reads, no allocation — the hot ingest path
// pays only this when shedding is enabled.
func (m *Manager) overfullShard() int {
	for i, w := range m.workers {
		if len(w.ch) >= m.shedAt {
			return i
		}
	}
	return -1
}

// RetryAfter estimates how long a shed producer should back off: the
// worst shard backlog (batches) times the observed mean batch apply
// time. Before any batch has been applied it falls back to a
// conservative default per queued batch. Transports ceil this to whole
// seconds for the Retry-After header.
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	ws := m.workers
	m.mu.Unlock()
	depth := 1
	for _, w := range ws {
		if d := len(w.ch); d > depth {
			depth = d
		}
	}
	var snap, merged obs.HistSnap
	for _, tel := range m.tels {
		tel.Apply.Snapshot(&snap)
		merged.Merge(&snap)
	}
	per := time.Duration(merged.Mean())
	if per <= 0 {
		per = 10 * time.Millisecond
	}
	return time.Duration(depth) * per
}

// AdmissionState is the robustness layer's observable state, exposed
// through /v1/stats and /metrics: how much work was refused, abandoned,
// or degraded, and what the governor currently thinks of the load.
type AdmissionState struct {
	Policy AdmissionPolicy `json:"policy"`
	// ShedRequests counts whole ingest requests refused with
	// ErrQueueFull. The chaos harness asserts this equals the HTTP
	// layer's 429 count.
	ShedRequests uint64 `json:"shed_requests"`
	// DeadlineOps counts routed pair increments abandoned because the
	// caller's deadline expired before their shard accepted them.
	DeadlineOps uint64 `json:"deadline_ops"`
	// DeadlineQueries counts query closures abandoned at their deadline
	// before running.
	DeadlineQueries uint64 `json:"deadline_queries"`
	// Degraded reports whether the governor is currently routing fresh
	// queries down the fast lane.
	Degraded bool `json:"degraded,omitempty"`
	// DegradeTransitions counts governor state flips (either direction).
	DegradeTransitions uint64 `json:"degrade_transitions,omitempty"`
	// DegradedQueries counts queries the governor re-routed.
	DegradedQueries uint64 `json:"degraded_queries,omitempty"`
	// RetryAfterSeconds is the current backoff estimate for shed
	// producers.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// AdmissionState reports the robustness counters. Safe at any time,
// including during warm-up.
func (m *Manager) AdmissionState() AdmissionState {
	st := AdmissionState{
		Policy:          m.cfg.Admission,
		ShedRequests:    m.shedRequests.Load(),
		DeadlineOps:     m.deadlineOps.Load(),
		DeadlineQueries: m.deadlineQueries.Load(),
	}
	if m.gov != nil {
		st.Degraded = m.gov.degraded.Load()
		st.DegradeTransitions = m.gov.transitions.Load()
		st.DegradedQueries = m.gov.degradedQueries.Load()
	}
	if m.cfg.Admission != AdmitBlock {
		st.RetryAfterSeconds = m.RetryAfter().Seconds()
	}
	return st
}
