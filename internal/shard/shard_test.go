package shard_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/covstream"
	"repro/internal/dataset"
	"repro/internal/pairs"
	"repro/internal/shard"
	"repro/internal/stream"
)

// spec2Engine builds the serial reference engine for an ASCS spec.
func spec2Engine(sp shard.EngineSpec) (*core.Engine, error) {
	return core.NewEngine(sp.Sketch, sp.Schedule, !sp.OneSided)
}

// samplesOf converts a materialized dataset into sparse samples.
func samplesOf(ds *dataset.Dataset) []stream.Sample {
	out := make([]stream.Sample, len(ds.Rows))
	for i, r := range ds.Rows {
		out[i] = stream.FromDense(r)
	}
	return out
}

// keySet extracts the pair keys of a retrieval.
func keySet(ps []shard.PairEstimate) map[uint64]bool {
	out := make(map[uint64]bool, len(ps))
	for _, p := range ps {
		out[p.Key] = true
	}
	return out
}

// TestShardedCSMatchesSerial drives the same deterministic stream
// through a 4-shard CS manager and a serial covstream estimator with an
// identical sketch configuration. Linearity makes the merged shard
// sketch equal the serial sketch exactly (up to float summation order),
// and shard-local estimates agree within collision-noise tolerance.
func TestShardedCSMatchesSerial(t *testing.T) {
	const (
		d      = 60
		n      = 1200
		shards = 4
	)
	ds := dataset.Simulation(d, n, 0.01, 7)
	samples := samplesOf(ds)
	skCfg := countsketch.Config{Tables: 5, Range: 8192, Seed: 11}

	eng, err := countsketch.NewMeanSketch(skCfg, n)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := covstream.New(covstream.Config{
		Dim: d, T: n, Engine: eng, Mode: covstream.SecondMoment, TrackCandidates: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := serial.Observe(s); err != nil {
			t.Fatal(err)
		}
	}

	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: shards,
		Engine:          shard.EngineSpec{Kind: shard.KindCS, Sketch: skCfg, T: n},
		TrackCandidates: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	for lo := 0; lo < len(samples); lo += 100 {
		hi := min(lo+100, len(samples))
		if _, _, err := mgr.Ingest(samples[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Step(); got != n {
		t.Fatalf("Step = %d, want %d", got, n)
	}

	// Exact fan-in: merged shard tables == serial table.
	merged, err := mgr.MergedSketch()
	if err != nil {
		t.Fatal(err)
	}
	p := pairs.Count(d)
	for key := uint64(0); key < uint64(p); key++ {
		if diff := math.Abs(merged.Estimate(key) - eng.Estimate(key)); diff > 1e-9 {
			t.Fatalf("merged estimate for key %d off by %g", key, diff)
		}
	}

	// Shard-local estimates see strictly less collision mass than the
	// serial sketch; both sit within noise of each other.
	worst := 0.0
	for key := uint64(0); key < uint64(p); key++ {
		local, err := mgr.EstimateKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(local - eng.Estimate(key)); diff > worst {
			worst = diff
		}
	}
	if worst > 0.1 {
		t.Fatalf("worst shard-local vs serial estimate gap %g > 0.1", worst)
	}

	// Fan-out/merge retrieval agrees with the serial ranking.
	got, err := mgr.TopKMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.TopMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	gotKeys := keySet(got)
	overlap := 0
	for _, w := range want {
		if gotKeys[w.Key] {
			overlap++
		}
	}
	if overlap < 8 {
		t.Fatalf("top-10 overlap with serial retrieval = %d, want ≥ 8", overlap)
	}
}

// TestShardedASCSMatchesSerial runs ASCS with one fixed solved schedule
// through an 8-shard manager and through serial covstream, asserting
// the retrieved heavy pairs agree and are genuine planted signals.
func TestShardedASCSMatchesSerial(t *testing.T) {
	const (
		d      = 80
		n      = 1600
		shards = 8
	)
	ds := dataset.Simulation(d, n, 0.01, 3)
	samples := samplesOf(ds)
	skCfg := countsketch.Config{Tables: 5, Range: 4096, Seed: 5}

	spec, err := shard.AutoSpec(samples[:200], d, 1, n, skCfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Schedule.T != n || spec.Schedule.T0 < 1 {
		t.Fatalf("implausible solved schedule %+v", spec.Schedule)
	}

	serialEng, err := spec2Engine(spec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := covstream.New(covstream.Config{
		Dim: d, T: n, Engine: serialEng, Mode: covstream.SecondMoment, TrackCandidates: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := serial.Observe(s); err != nil {
			t.Fatal(err)
		}
	}

	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: shards, Engine: spec, TrackCandidates: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, _, err := mgr.Ingest(samples); err != nil {
		t.Fatal(err)
	}

	got, err := mgr.TopKMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.TopMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	gotKeys := keySet(got)
	overlap := 0
	for _, w := range want {
		if gotKeys[w.Key] {
			overlap++
		}
	}
	if overlap < 6 {
		t.Fatalf("ASCS top-10 overlap sharded vs serial = %d, want ≥ 6", overlap)
	}
	// The retrieved pairs must be real module pairs: planted signal
	// correlations are ≥ 0.5, everything else is exactly 0.
	signals := 0
	for _, g := range got {
		truth, err := ds.CorrOf(int64(g.Key))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(truth) >= 0.5 {
			signals++
		}
	}
	if signals < 8 {
		t.Fatalf("only %d/10 retrieved pairs are planted signals", signals)
	}
}

// TestConcurrentIngestAndQueries hammers one manager from concurrent
// producers and queriers; run under -race this is the serving-layer
// concurrency proof. Estimates are not asserted (interleaving-defined);
// invariants are: no data race, no deadlock, all samples accounted for.
func TestConcurrentIngestAndQueries(t *testing.T) {
	const (
		d         = 40
		producers = 4
		perProd   = 400
		batch     = 20
	)
	n := producers * perProd
	ds := dataset.Simulation(d, n, 0.02, 9)
	samples := samplesOf(ds)
	skCfg := countsketch.Config{Tables: 4, Range: 2048, Seed: 17}

	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: 4,
		Engine:   shard.EngineSpec{Kind: shard.KindCS, Sketch: skCfg, T: n},
		QueueLen: 8, FlushOps: 256, TrackCandidates: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := samples[w*perProd : (w+1)*perProd]
			for lo := 0; lo < len(chunk); lo += batch {
				if _, _, err := mgr.Ingest(chunk[lo : lo+batch]); err != nil {
					t.Errorf("producer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := mgr.TopKMagnitude(5); err != nil {
					t.Errorf("querier %d topk: %v", q, err)
					return
				}
				if _, err := mgr.Estimate(q, q+1); err != nil {
					t.Errorf("querier %d estimate: %v", q, err)
					return
				}
				if _, err := mgr.Stats(); err != nil {
					t.Errorf("querier %d stats: %v", q, err)
					return
				}
			}
		}(q)
	}
	// Producers finish, then queriers are released and the manager
	// drains; all counts must reconcile.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Wait for producers by polling Step (bounded by the test timeout).
	for mgr.Step() < n {
		if _, err := mgr.TopKMagnitude(3); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != n {
		t.Fatalf("Stats.Step = %d, want %d", st.Step, n)
	}
	var wantOps uint64
	for _, s := range samples {
		m := uint64(s.NNZ())
		wantOps += m * (m - 1) / 2
	}
	if st.Ops != wantOps {
		t.Fatalf("Stats.Ops = %d, want %d", st.Ops, wantOps)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.Ingest(samples[:1]); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("Ingest after Close: %v, want ErrClosed", err)
	}
	if _, err := mgr.TopK(1); !errors.Is(err, shard.ErrClosed) {
		t.Fatalf("TopK after Close: %v, want ErrClosed", err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestManagerWarmingGates asserts query behaviour while the warm-up
// prefix is still buffering.
func TestManagerWarmingGates(t *testing.T) {
	const d, n = 30, 600
	ds := dataset.Simulation(d, n, 0.02, 21)
	samples := samplesOf(ds)
	skCfg := countsketch.Config{Tables: 4, Range: 2048, Seed: 13}
	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: 2, Warmup: 100, Standardize: true,
		Engine: shard.EngineSpec{Kind: shard.KindASCS, Sketch: skCfg, T: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if !mgr.Warming() {
		t.Fatal("manager should start warming")
	}
	if _, _, err := mgr.Ingest(samples[:50]); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.TopK(5); !errors.Is(err, shard.ErrWarmingUp) {
		t.Fatalf("TopK while warming: %v, want ErrWarmingUp", err)
	}
	if err := mgr.Snapshot(t.TempDir()); !errors.Is(err, shard.ErrWarmingUp) {
		t.Fatalf("Snapshot while warming: %v, want ErrWarmingUp", err)
	}
	st, err := mgr.Stats()
	if err != nil || !st.Warming || st.Step != 50 {
		t.Fatalf("warming stats = %+v, err %v", st, err)
	}
	if _, _, err := mgr.Ingest(samples[50:200]); err != nil {
		t.Fatal(err)
	}
	if mgr.Warming() {
		t.Fatal("manager should be live after the warm-up prefix")
	}
	if _, _, err := mgr.Ingest(samples[200:]); err != nil {
		t.Fatal(err)
	}
	top, err := mgr.TopKMagnitude(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("TopKMagnitude returned %d pairs", len(top))
	}
	// Horizon enforcement after the stream completes.
	if _, _, err := mgr.Ingest(samples[:1]); !errors.Is(err, shard.ErrHorizon) {
		t.Fatalf("Ingest past horizon: %v, want ErrHorizon", err)
	}
}
