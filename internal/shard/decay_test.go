package shard_test

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/pairs"
	"repro/internal/shard"
	"repro/internal/stream"
)

// TestDecayUnboundedIngest is the acceptance pin for unbounded serving:
// a decay-mode manager (auto-tuned ASCS, warm-up and all) accepts far
// more samples than its window without ErrHorizon, and reports window
// semantics instead of a fake horizon.
func TestDecayUnboundedIngest(t *testing.T) {
	const d, window = 30, 300
	ds := dataset.Simulation(d, 4*window, 0.02, 11)
	samples := samplesOf(ds)
	lambda := 1 - 1.0/window
	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: 2, Warmup: 100, Standardize: true,
		Engine: shard.EngineSpec{
			Kind:   shard.KindASCS,
			Sketch: countsketch.Config{Tables: 4, Range: 2048, Seed: 15},
			T:      window,
			Lambda: lambda,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if mgr.Horizon() != 0 {
		t.Fatalf("Horizon() = %d for an unbounded deployment, want 0", mgr.Horizon())
	}
	if mgr.Window() != window || !mgr.Unbounded() || mgr.DecayFactor() != lambda {
		t.Fatalf("window semantics wrong: Window=%d Unbounded=%v λ=%v", mgr.Window(), mgr.Unbounded(), mgr.DecayFactor())
	}
	// 4·window samples ≫ T: every batch must be accepted.
	for lo := 0; lo < len(samples); lo += 100 {
		hi := min(lo+100, len(samples))
		if _, _, err := mgr.Ingest(samples[lo:hi]); err != nil {
			t.Fatalf("ingest [%d,%d): %v", lo, hi, err)
		}
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Horizon != 0 || !st.Unbounded || st.Window != window || st.Lambda != lambda {
		t.Fatalf("stats lack window semantics: %+v", st)
	}
	if st.Step != len(samples) {
		t.Fatalf("step %d, want %d", st.Step, len(samples))
	}
	// N_eff saturates at the window (within 5% after 4 windows).
	if st.NEff < 0.95*float64(window) || st.NEff > float64(window) {
		t.Fatalf("N_eff = %v, want ≈ %d", st.NEff, window)
	}
	if _, err := mgr.TopKMagnitude(5); err != nil {
		t.Fatal(err)
	}
}

// decaySpecFor builds matching fixed/λ=1 specs for every engine kind.
func decaySpecFor(kind shard.Kind, T int, lambda float64) shard.EngineSpec {
	sp := shard.EngineSpec{
		Kind:   kind,
		Sketch: countsketch.Config{Tables: 5, Range: 2048, Seed: 27},
		T:      T,
		Lambda: lambda,
	}
	if kind == shard.KindASCS {
		sp.Schedule = core.Hyperparams{T0: 50, Theta: 0.05, Tau0: 1e-4, T: T}
	}
	return sp
}

// TestDecayLambda1BitIdenticalAllKinds drives the same stream through a
// fixed-horizon manager and a λ=1 decay-mode manager for each of the
// four engine kinds: every pair estimate and the ranked top-k must be
// bit-identical, and only the decay-mode manager may continue past T.
func TestDecayLambda1BitIdenticalAllKinds(t *testing.T) {
	const d, T = 40, 400
	ds := dataset.Simulation(d, T+50, 0.02, 23)
	samples := samplesOf(ds)
	for _, kind := range []shard.Kind{shard.KindCS, shard.KindASCS, shard.KindASketch, shard.KindColdFilter} {
		fixed, err := shard.New(shard.Config{Dim: d, Engine: decaySpecFor(kind, T, 0), TrackCandidates: 1 << 12})
		if err != nil {
			t.Fatalf("%s fixed: %v", kind, err)
		}
		dec, err := shard.New(shard.Config{Dim: d, Engine: decaySpecFor(kind, T, 1), TrackCandidates: 1 << 12})
		if err != nil {
			t.Fatalf("%s decayed: %v", kind, err)
		}
		for lo := 0; lo < T; lo += 100 {
			if _, _, err := fixed.Ingest(samples[lo : lo+100]); err != nil {
				t.Fatal(err)
			}
			if _, _, err := dec.Ingest(samples[lo : lo+100]); err != nil {
				t.Fatal(err)
			}
		}
		if err := fixed.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := dec.Flush(); err != nil {
			t.Fatal(err)
		}
		p := pairs.Count(d)
		for key := uint64(0); key < uint64(p); key++ {
			fe, err := fixed.EstimateKey(key)
			if err != nil {
				t.Fatal(err)
			}
			de, err := dec.EstimateKey(key)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(fe) != math.Float64bits(de) {
				t.Fatalf("%s key %d: fixed %v vs λ=1 %v", kind, key, fe, de)
			}
		}
		ft, err := fixed.TopKMagnitude(10)
		if err != nil {
			t.Fatal(err)
		}
		dt, err := dec.TopKMagnitude(10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ft {
			if ft[i] != dt[i] {
				t.Fatalf("%s top-k rank %d: %+v vs %+v", kind, i, ft[i], dt[i])
			}
		}
		// Past T: the fixed manager 409s, the unbounded one keeps going.
		if _, _, err := fixed.Ingest(samples[T : T+50]); !errors.Is(err, shard.ErrHorizon) {
			t.Fatalf("%s fixed past horizon: %v, want ErrHorizon", kind, err)
		}
		if _, _, err := dec.Ingest(samples[T : T+50]); err != nil {
			t.Fatalf("%s unbounded past T: %v", kind, err)
		}
		fixed.Close()
		dec.Close()
	}
}

// TestDecayAging is the aging acceptance pin: a heavy pair that stops
// arriving falls out of top-k within the configured window, displaced
// by the new heavy pair.
func TestDecayAging(t *testing.T) {
	const d, window = 12, 60
	lambda := 1 - 1.0/window
	mgr, err := shard.New(shard.Config{
		Dim: d,
		Engine: shard.EngineSpec{
			Kind:   shard.KindCS,
			Sketch: countsketch.Config{Tables: 5, Range: 4096, Seed: 33},
			T:      window,
			Lambda: lambda,
		},
		TrackCandidates: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	mkSample := func(a, b int, v float64) stream.Sample {
		row := make([]float64, d)
		row[a], row[b] = v, v
		return stream.FromDense(row)
	}
	// Phase 1: pair (0,1) is the only signal for two windows.
	for i := 0; i < 2*window; i++ {
		if _, _, err := mgr.Ingest([]stream.Sample{mkSample(0, 1, 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	top, err := mgr.TopKMagnitude(1)
	if err != nil {
		t.Fatal(err)
	}
	oldKey := pairs.Key(0, 1, d)
	if len(top) != 1 || top[0].Key != oldKey {
		t.Fatalf("phase 1 top-1 = %+v, want pair (0,1)", top)
	}
	phase1Est := top[0].Estimate

	// Phase 2: (0,1) goes silent; (2,3) takes over. Within a few windows
	// the old pair must decay out of the lead and out of the top-k.
	for i := 0; i < 5*window; i++ {
		if _, _, err := mgr.Ingest([]stream.Sample{mkSample(2, 3, 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	top, err = mgr.TopKMagnitude(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Key != pairs.Key(2, 3, d) {
		t.Fatalf("phase 2 top-1 = %+v, want pair (2,3)", top)
	}
	oldEst, err := mgr.EstimateKey(oldKey)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(oldEst) > 0.01*math.Abs(phase1Est) {
		t.Fatalf("silent pair estimate %v did not decay from %v within 5 windows", oldEst, phase1Est)
	}
}

// TestDecaySnapshotRestore round-trips an unbounded deployment through
// snapshot/restore: manifest v2, decay state preserved, and continued
// ingest stays bit-identical to the uninterrupted original.
func TestDecaySnapshotRestore(t *testing.T) {
	const d, window = 24, 200
	ds := dataset.Simulation(d, 3*window, 0.03, 41)
	samples := samplesOf(ds)
	lambda := 1 - 1.0/window
	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: 2,
		Engine: shard.EngineSpec{
			Kind:   shard.KindCS,
			Sketch: countsketch.Config{Tables: 4, Range: 2048, Seed: 51},
			T:      window,
			Lambda: lambda,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if _, _, err := mgr.Ingest(samples[:2*window]); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := mgr.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Version int `json:"version"`
		Engine  struct {
			Lambda float64 `json:"lambda"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if man.Version != 2 || man.Engine.Lambda != lambda {
		t.Fatalf("manifest version=%d lambda=%v, want v2 with λ=%v", man.Version, man.Engine.Lambda, lambda)
	}
	restored, err := shard.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if !restored.Unbounded() || restored.Window() != window {
		t.Fatalf("restored manager lost window semantics: unbounded=%v window=%d", restored.Unbounded(), restored.Window())
	}
	// Continue both past another window; they must stay in lockstep.
	rest := samples[2*window:]
	if _, _, err := mgr.Ingest(rest); err != nil {
		t.Fatal(err)
	}
	if _, _, err := restored.Ingest(rest); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := restored.Flush(); err != nil {
		t.Fatal(err)
	}
	p := pairs.Count(d)
	for key := uint64(0); key < uint64(p); key++ {
		oe, err := mgr.EstimateKey(key)
		if err != nil {
			t.Fatal(err)
		}
		re, err := restored.EstimateKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(oe) != math.Float64bits(re) {
			t.Fatalf("key %d diverged after restore+continue: %v vs %v", key, oe, re)
		}
	}
}

// TestWarmupReplayConcurrent hammers the warm-up-completing replay path
// with concurrent producers and queriers (under -race this is the proof
// that the chunked, mutex-released replay is sound): all samples are
// accounted for and queries never fail with anything but ErrWarmingUp.
func TestWarmupReplayConcurrent(t *testing.T) {
	const (
		d         = 30
		producers = 4
		perProd   = 300
		warmup    = 600
	)
	n := producers * perProd
	ds := dataset.Simulation(d, n, 0.02, 61)
	samples := samplesOf(ds)
	mgr, err := shard.New(shard.Config{
		Dim: d, Shards: 2, Warmup: warmup, Standardize: true,
		Engine: shard.EngineSpec{
			Kind:   shard.KindASCS,
			Sketch: countsketch.Config{Tables: 4, Range: 2048, Seed: 71},
			T:      n,
		},
		QueueLen: 4, FlushOps: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := samples[w*perProd : (w+1)*perProd]
			for lo := 0; lo < len(chunk); lo += 20 {
				if _, _, err := mgr.Ingest(chunk[lo : lo+20]); err != nil {
					t.Errorf("producer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := mgr.TopKMagnitude(3); err != nil && !errors.Is(err, shard.ErrWarmingUp) {
				t.Errorf("querier: %v", err)
				return
			}
		}
	}()
	done := make(chan struct{})
	go func() {
		for mgr.Step() < n {
		}
		close(done)
	}()
	<-done
	close(stop)
	wg.Wait()
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != n {
		t.Fatalf("step %d, want %d", st.Step, n)
	}
	var wantOps uint64
	for _, s := range samples {
		m := uint64(s.NNZ())
		wantOps += m * (m - 1) / 2
	}
	if st.Ops != wantOps {
		t.Fatalf("ops %d, want %d", st.Ops, wantOps)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
}
