// Package matrix provides the small dense linear-algebra substrate needed
// by the ASCS reproduction: packed symmetric matrices, Cholesky
// factorization (for sampling from a target covariance), and exact
// two-pass covariance/correlation of materialized datasets (ground truth
// for the paper's small-scale experiments).
package matrix

import (
	"fmt"
	"math"
)

// Sym is a symmetric d×d matrix stored packed (upper triangle including
// the diagonal, row-major), using d(d+1)/2 float64s.
type Sym struct {
	d    int
	data []float64
}

// NewSym returns a zero symmetric matrix of dimension d.
func NewSym(d int) *Sym {
	if d <= 0 {
		panic(fmt.Sprintf("matrix: dimension must be positive, got %d", d))
	}
	return &Sym{d: d, data: make([]float64, d*(d+1)/2)}
}

// Dim returns the dimension d.
func (s *Sym) Dim() int { return s.d }

// index maps (i, j) with i ≤ j to the packed offset.
func (s *Sym) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*s.d - i*(i-1)/2 + (j - i)
}

// At returns element (i, j).
func (s *Sym) At(i, j int) float64 { return s.data[s.index(i, j)] }

// Set assigns element (i, j) (and by symmetry (j, i)).
func (s *Sym) Set(i, j int, v float64) { s.data[s.index(i, j)] = v }

// Add increments element (i, j).
func (s *Sym) Add(i, j int, v float64) { s.data[s.index(i, j)] += v }

// Clone returns a deep copy.
func (s *Sym) Clone() *Sym {
	c := NewSym(s.d)
	copy(c.data, s.data)
	return c
}

// Diag returns a copy of the diagonal.
func (s *Sym) Diag() []float64 {
	out := make([]float64, s.d)
	for i := 0; i < s.d; i++ {
		out[i] = s.At(i, i)
	}
	return out
}

// OffDiagonal returns all d(d-1)/2 strictly-upper-triangular entries in
// row-major order: the vectorization X of the paper's problem statement.
func (s *Sym) OffDiagonal() []float64 {
	out := make([]float64, 0, s.d*(s.d-1)/2)
	for i := 0; i < s.d; i++ {
		for j := i + 1; j < s.d; j++ {
			out = append(out, s.At(i, j))
		}
	}
	return out
}

// ScaleToCorrelation converts a covariance matrix to the corresponding
// correlation matrix in place and returns it. Zero-variance coordinates
// produce zero correlations rather than NaN.
func (s *Sym) ScaleToCorrelation() *Sym {
	sd := make([]float64, s.d)
	for i := range sd {
		sd[i] = math.Sqrt(s.At(i, i))
	}
	for i := 0; i < s.d; i++ {
		for j := i; j < s.d; j++ {
			if sd[i] == 0 || sd[j] == 0 {
				s.Set(i, j, 0)
				continue
			}
			s.Set(i, j, s.At(i, j)/(sd[i]*sd[j]))
		}
	}
	return s
}

// Lower is a lower-triangular d×d matrix stored packed row-major
// (row i holds i+1 entries), produced by Cholesky.
type Lower struct {
	d    int
	data []float64
}

// Dim returns the dimension.
func (l *Lower) Dim() int { return l.d }

// At returns element (i, j) for j ≤ i; zero above the diagonal.
func (l *Lower) At(i, j int) float64 {
	if j > i {
		return 0
	}
	return l.data[i*(i+1)/2+j]
}

func (l *Lower) set(i, j int, v float64) { l.data[i*(i+1)/2+j] = v }

// MulVec computes y = L·x (length d each). It panics on length mismatch.
func (l *Lower) MulVec(x, y []float64) {
	if len(x) != l.d || len(y) != l.d {
		panic("matrix: MulVec dimension mismatch")
	}
	for i := 0; i < l.d; i++ {
		row := l.data[i*(i+1)/2 : i*(i+1)/2+i+1]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// Cholesky factors the symmetric positive-definite matrix a as L·Lᵀ and
// returns L. It returns an error when a is not (numerically) positive
// definite.
func Cholesky(a *Sym) (*Lower, error) {
	d := a.d
	l := &Lower{d: d, data: make([]float64, d*(d+1)/2)}
	for j := 0; j < d; j++ {
		sum := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			sum -= v * v
		}
		if sum <= 0 {
			return nil, fmt.Errorf("matrix: not positive definite at pivot %d (residual %g)", j, sum)
		}
		diag := math.Sqrt(sum)
		l.set(j, j, diag)
		for i := j + 1; i < d; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.set(i, j, s/diag)
		}
	}
	return l, nil
}

// IsPSD reports whether a is positive semi-definite, tested by attempting
// a Cholesky factorization of a + eps·I.
func IsPSD(a *Sym, eps float64) bool {
	c := a.Clone()
	for i := 0; i < c.d; i++ {
		c.Add(i, i, eps)
	}
	_, err := Cholesky(c)
	return err == nil
}
