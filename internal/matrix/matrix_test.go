package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSymSetGetSymmetry(t *testing.T) {
	s := NewSym(4)
	s.Set(1, 3, 2.5)
	if s.At(1, 3) != 2.5 || s.At(3, 1) != 2.5 {
		t.Errorf("symmetry broken: %v vs %v", s.At(1, 3), s.At(3, 1))
	}
	s.Set(3, 1, -1)
	if s.At(1, 3) != -1 {
		t.Errorf("Set with swapped indices failed: %v", s.At(1, 3))
	}
	s.Add(0, 0, 4)
	if s.At(0, 0) != 4 {
		t.Errorf("Add diag failed: %v", s.At(0, 0))
	}
	if s.Dim() != 4 {
		t.Errorf("Dim = %d", s.Dim())
	}
}

func TestSymPackedIndexBijective(t *testing.T) {
	const d = 17
	s := NewSym(d)
	seen := map[int]bool{}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			k := s.index(i, j)
			if k < 0 || k >= len(s.data) {
				t.Fatalf("index(%d,%d) = %d out of range", i, j, k)
			}
			if seen[k] {
				t.Fatalf("index(%d,%d) = %d collides", i, j, k)
			}
			seen[k] = true
		}
	}
	if len(seen) != d*(d+1)/2 {
		t.Fatalf("covered %d cells, want %d", len(seen), d*(d+1)/2)
	}
}

func TestNewSymPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSym(0)
}

func TestCloneIsDeep(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 1, 5)
	c := s.Clone()
	c.Set(0, 1, 9)
	if s.At(0, 1) != 5 {
		t.Error("Clone shares storage")
	}
}

func TestDiagAndOffDiagonal(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 0, 1)
	s.Set(1, 1, 2)
	s.Set(2, 2, 3)
	s.Set(0, 1, 4)
	s.Set(0, 2, 5)
	s.Set(1, 2, 6)
	d := s.Diag()
	if d[0] != 1 || d[1] != 2 || d[2] != 3 {
		t.Errorf("Diag = %v", d)
	}
	od := s.OffDiagonal()
	if len(od) != 3 || od[0] != 4 || od[1] != 5 || od[2] != 6 {
		t.Errorf("OffDiagonal = %v", od)
	}
}

func TestScaleToCorrelation(t *testing.T) {
	s := NewSym(2)
	s.Set(0, 0, 4)
	s.Set(1, 1, 9)
	s.Set(0, 1, 3)
	s.ScaleToCorrelation()
	if !almostEq(s.At(0, 0), 1, 1e-12) || !almostEq(s.At(1, 1), 1, 1e-12) {
		t.Errorf("diag not 1: %v %v", s.At(0, 0), s.At(1, 1))
	}
	if !almostEq(s.At(0, 1), 0.5, 1e-12) {
		t.Errorf("corr = %v, want 0.5", s.At(0, 1))
	}
	// Zero variance produces zero, not NaN.
	z := NewSym(2)
	z.Set(0, 0, 0)
	z.Set(1, 1, 1)
	z.Set(0, 1, 0.3)
	z.ScaleToCorrelation()
	if z.At(0, 1) != 0 {
		t.Errorf("zero-variance corr = %v, want 0", z.At(0, 1))
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := NewSym(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 1, 3)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.At(0, 0), 2, 1e-12) || !almostEq(l.At(1, 0), 1, 1e-12) ||
		!almostEq(l.At(1, 1), math.Sqrt2, 1e-12) || l.At(0, 1) != 0 {
		t.Errorf("L = [[%v,%v],[%v,%v]]", l.At(0, 0), l.At(0, 1), l.At(1, 0), l.At(1, 1))
	}
	if l.Dim() != 2 {
		t.Errorf("Dim = %d", l.Dim())
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	// Random PSD matrix A = B·Bᵀ + I; verify L·Lᵀ = A.
	rng := rand.New(rand.NewSource(5))
	const d = 25
	b := make([][]float64, d)
	for i := range b {
		b[i] = make([]float64, d)
		for j := range b[i] {
			b[i][j] = rng.NormFloat64()
		}
	}
	a := NewSym(d)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			s := 0.0
			for k := 0; k < d; k++ {
				s += b[i][k] * b[j][k]
			}
			if i == j {
				s += 1
			}
			a.Set(i, j, s)
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			s := 0.0
			for k := 0; k <= i; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if !almostEq(s, a.At(i, j), 1e-8) {
				t.Fatalf("LLᵀ[%d][%d] = %v, want %v", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewSym(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestIsPSD(t *testing.T) {
	a := NewSym(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	a.Set(0, 1, 0.5)
	if !IsPSD(a, 1e-9) {
		t.Error("valid correlation matrix reported not PSD")
	}
	a.Set(0, 1, 2)
	if IsPSD(a, 1e-9) {
		t.Error("indefinite matrix reported PSD")
	}
}

func TestLowerMulVec(t *testing.T) {
	a := NewSym(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 1, 3)
	l, _ := Cholesky(a)
	x := []float64{1, 1}
	y := make([]float64, 2)
	l.MulVec(x, y)
	if !almostEq(y[0], 2, 1e-12) || !almostEq(y[1], 1+math.Sqrt2, 1e-12) {
		t.Errorf("MulVec = %v", y)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	l.MulVec([]float64{1}, y)
}

func TestExactCovarianceSmall(t *testing.T) {
	rows := [][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	}
	cov, err := ExactCovariance(rows)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(cov.At(0, 0), 1, 1e-12) || !almostEq(cov.At(1, 1), 4, 1e-12) || !almostEq(cov.At(0, 1), 2, 1e-12) {
		t.Errorf("cov = %v %v %v", cov.At(0, 0), cov.At(1, 1), cov.At(0, 1))
	}
	corr, err := ExactCorrelation(rows)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(corr.At(0, 1), 1, 1e-12) {
		t.Errorf("corr = %v, want 1", corr.At(0, 1))
	}
}

func TestExactCovarianceErrors(t *testing.T) {
	if _, err := ExactCovariance([][]float64{{1, 2}}); err == nil {
		t.Error("expected error for single row")
	}
	if _, err := ExactCovariance([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected error for ragged rows")
	}
	if _, err := ExactCorrelation(nil); err == nil {
		t.Error("expected error for nil rows")
	}
}

func TestExactCovarianceMatchesCoMomentProperty(t *testing.T) {
	// Cross-validate the matrix path against an independent pairwise
	// formula on random data.
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		const d = 4
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		cov, err := ExactCovariance(rows)
		if err != nil {
			return false
		}
		for a := 0; a < d; a++ {
			for b := a; b < d; b++ {
				// direct two-pass formula
				ma, mb := 0.0, 0.0
				for _, r := range rows {
					ma += r[a]
					mb += r[b]
				}
				ma /= float64(n)
				mb /= float64(n)
				s := 0.0
				for _, r := range rows {
					s += (r[a] - ma) * (r[b] - mb)
				}
				s /= float64(n - 1)
				if !almostEq(s, cov.At(a, b), 1e-10) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFeatureMeansStds(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 10}}
	m := FeatureMeans(rows)
	if m[0] != 2 || m[1] != 10 {
		t.Errorf("means = %v", m)
	}
	s := FeatureStds(rows)
	if !almostEq(s[0], math.Sqrt2, 1e-12) || s[1] != 0 {
		t.Errorf("stds = %v", s)
	}
	if FeatureMeans(nil) != nil {
		t.Error("FeatureMeans(nil) should be nil")
	}
	if FeatureStds([][]float64{{1}}) != nil {
		t.Error("FeatureStds of one row should be nil")
	}
}
