package matrix

import (
	"fmt"
	"math"
)

// ExactCovariance computes the two-pass sample covariance matrix (n-1
// denominator) of rows, each a length-d observation. This is the ground
// truth used to evaluate sketch output on small datasets (§8.3).
func ExactCovariance(rows [][]float64) (*Sym, error) {
	n := len(rows)
	if n < 2 {
		return nil, fmt.Errorf("matrix: need at least 2 rows, got %d", n)
	}
	d := len(rows[0])
	mean := make([]float64, d)
	for _, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("matrix: ragged rows (%d vs %d)", len(r), d)
		}
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	cov := NewSym(d)
	centered := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			centered[j] = v - mean[j]
		}
		for i := 0; i < d; i++ {
			ci := centered[i]
			if ci == 0 {
				continue
			}
			base := cov.index(i, i)
			rowSlice := cov.data[base : base+d-i]
			for j := i; j < d; j++ {
				rowSlice[j-i] += ci * centered[j]
			}
		}
	}
	inv := 1 / float64(n-1)
	for k := range cov.data {
		cov.data[k] *= inv
	}
	return cov, nil
}

// ExactCorrelation computes the sample correlation matrix of rows.
func ExactCorrelation(rows [][]float64) (*Sym, error) {
	cov, err := ExactCovariance(rows)
	if err != nil {
		return nil, err
	}
	return cov.ScaleToCorrelation(), nil
}

// FeatureMeans returns the per-column means of rows.
func FeatureMeans(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	d := len(rows[0])
	mean := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(rows))
	}
	return mean
}

// FeatureStds returns the per-column sample standard deviations of rows.
func FeatureStds(rows [][]float64) []float64 {
	n := len(rows)
	if n < 2 {
		return nil
	}
	mean := FeatureMeans(rows)
	d := len(mean)
	vars := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			dv := v - mean[j]
			vars[j] += dv * dv
		}
	}
	for j := range vars {
		vars[j] /= float64(n - 1)
	}
	for j := range vars {
		if vars[j] <= 0 {
			vars[j] = 0
			continue
		}
		vars[j] = math.Sqrt(vars[j])
	}
	return vars
}
