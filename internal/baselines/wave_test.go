package baselines

import (
	"bytes"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/hashing"
	"repro/internal/sketchapi"
)

// waveBaselineStream mixes hot keys (which exercise the ASketch filter
// swaps and Cold Filter saturation) with a noise tail, repeating keys
// inside wave groups.
func waveBaselineStream(n int, seed uint64) (keys []uint64, xs []float64) {
	sm := hashing.NewSplitMix64(seed)
	keys = make([]uint64, n)
	xs = make([]float64, n)
	for i := range keys {
		r := sm.Next()
		if r%3 == 0 {
			keys[i] = r % 17
			xs[i] = 500 + float64(r%50)
		} else {
			keys[i] = 100 + r%900
			xs[i] = float64(int64(r%201)-100) / 7.0
		}
	}
	return keys, xs
}

// TestBaselineWaveMatchesScalar drives identical streams through wave
// and scalar OfferPairs for ASketch and ColdFilter — fixed-horizon and
// decayed — and requires bit-identical serialized state and per-offer
// estimates at several group sizes.
func TestBaselineWaveMatchesScalar(t *testing.T) {
	const T = 1 << 12
	l1 := countsketch.Config{Tables: 3, Range: 128, Seed: 4}
	l2 := countsketch.Config{Tables: 5, Range: 512, Seed: 5}
	builders := map[string]func(lambda float64) sketchapi.Snapshotter{
		"ASketch": func(lambda float64) sketchapi.Snapshotter {
			if lambda == 0 {
				a, err := NewASketch(l2, T, 6)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			a, err := NewASketchDecayed(l2, T, 6, lambda)
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"ColdFilter": func(lambda float64) sketchapi.Snapshotter {
			if lambda == 0 {
				c, err := NewColdFilter(l1, l2, T, 0.05)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			c, err := NewColdFilterDecayed(l1, l2, T, 0.05, lambda)
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
	}
	for name, build := range builders {
		for _, lambda := range []float64{0, 1, 0.998} {
			for _, g := range []int{2, 32} {
				scalar, wave := build(lambda), build(lambda)
				scalar.(sketchapi.WaveTuner).SetWaveGroup(1)
				wave.(sketchapi.WaveTuner).SetWaveGroup(g)
				so := scalar.(sketchapi.OfferEstimator)
				wo := wave.(sketchapi.OfferEstimator)
				keys, xs := waveBaselineStream(3000, 31)
				se := make([]float64, 100)
				we := make([]float64, 100)
				for step, lo := 1, 0; lo < len(keys); step, lo = step+1, lo+100 {
					so.BeginStep(step)
					wo.BeginStep(step)
					var sd, wd []float64
					if step%2 == 1 {
						sd, wd = se, we
					}
					so.OfferPairs(keys[lo:lo+100], xs[lo:lo+100], sd)
					wo.OfferPairs(keys[lo:lo+100], xs[lo:lo+100], wd)
					if sd != nil {
						for i := range sd {
							if sd[i] != wd[i] {
								t.Fatalf("%s λ=%v g=%d step %d: est[%d] scalar %v != wave %v",
									name, lambda, g, step, i, sd[i], wd[i])
							}
						}
					}
				}
				var bs, bw bytes.Buffer
				if _, err := scalar.WriteTo(&bs); err != nil {
					t.Fatal(err)
				}
				if _, err := wave.WriteTo(&bw); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bs.Bytes(), bw.Bytes()) {
					t.Fatalf("%s λ=%v g=%d: serialized state diverges", name, lambda, g)
				}
			}
		}
	}
}
