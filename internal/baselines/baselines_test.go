package baselines

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/hashing"
)

func cfg(r int) countsketch.Config {
	return countsketch.Config{Tables: 5, Range: r, Seed: 11, Hash: hashing.KindMix}
}

func TestNewASketchValidation(t *testing.T) {
	if _, err := NewASketch(cfg(64), 0, 4); err == nil {
		t.Error("expected error for zero samples")
	}
	if _, err := NewASketch(cfg(64), 10, 0); err == nil {
		t.Error("expected error for zero filter")
	}
	if _, err := NewASketch(countsketch.Config{}, 10, 4); err == nil {
		t.Error("expected error for bad sketch config")
	}
}

func TestASketchExactForHotKeys(t *testing.T) {
	// A single dominant key must end up in the filter with an exact value.
	a, err := NewASketch(cfg(1<<12), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 10; step++ {
		a.BeginStep(step)
		a.Offer(42, 3.0)
	}
	if got := a.Estimate(42); math.Abs(got-3) > 1e-12 {
		t.Errorf("hot key estimate = %v, want 3", got)
	}
	if a.FilterLen() == 0 {
		t.Error("hot key should be filtered")
	}
	if a.Name() != "ASketch" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestASketchMassConservation(t *testing.T) {
	// Filter + sketch must jointly conserve inserted mass: the estimate of
	// any key equals its true mean when there are no collisions (huge R),
	// regardless of promotions and evictions along the way.
	a, err := NewASketch(cfg(1<<14), 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	means := map[uint64]float64{1: 5, 2: 4, 3: 3, 4: 2, 5: 1, 6: 0.5}
	sums := map[uint64]float64{}
	for step := 1; step <= 100; step++ {
		a.BeginStep(step)
		// Shuffled key order exercises promotion churn.
		keys := []uint64{1, 2, 3, 4, 5, 6}
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			v := means[k]
			sums[k] += v
			a.Offer(k, v)
		}
	}
	for k, s := range sums {
		want := s / 100
		if got := a.Estimate(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("key %d estimate = %v, want %v", k, got, want)
		}
	}
}

func TestASketchEvictionUnderPressure(t *testing.T) {
	// With one filter slot and two alternating keys of growing magnitude,
	// the filter must always track the (strictly) larger one and total
	// mass must remain conserved.
	a, err := NewASketch(cfg(1<<14), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.BeginStep(1)
	a.Offer(1, 1.0) // promoted (filter empty)
	a.Offer(2, 5.0) // overtakes key 1
	if got := a.Estimate(1); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("estimate(1) = %v, want 0.1", got)
	}
	if got := a.Estimate(2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("estimate(2) = %v, want 0.5", got)
	}
	if a.FilterLen() != 1 {
		t.Errorf("FilterLen = %d, want 1", a.FilterLen())
	}
}

func TestASketchBytes(t *testing.T) {
	a, _ := NewASketch(cfg(64), 10, 8)
	want := 5*64*8 + 16*8
	if a.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", a.Bytes(), want)
	}
}

func TestASketchBeatsPlainCSOnHotKeys(t *testing.T) {
	// In a crowded sketch, the filtered hot keys' estimates should be
	// closer to truth than plain CS gives.
	const (
		p    = 2000
		T    = 400
		hotN = 8
		r    = 50
	)
	rng := rand.New(rand.NewSource(7))
	ask, err := NewASketch(cfg(r), T, hotN)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := countsketch.NewMeanSketch(cfg(r), T)
	if err != nil {
		t.Fatal(err)
	}
	mu := make([]float64, p)
	for i := 0; i < hotN; i++ {
		mu[i] = 2 + float64(i)
	}
	for step := 1; step <= T; step++ {
		ask.BeginStep(step)
		cs.BeginStep(step)
		for i := 0; i < p; i++ {
			x := mu[i] + rng.NormFloat64()
			ask.Offer(uint64(i), x)
			cs.Offer(uint64(i), x)
		}
	}
	var errASK, errCS float64
	for i := 0; i < hotN; i++ {
		errASK += math.Abs(ask.Estimate(uint64(i)) - mu[i])
		errCS += math.Abs(cs.Estimate(uint64(i)) - mu[i])
	}
	t.Logf("hot-key L1 error: ASketch=%.3f CS=%.3f", errASK, errCS)
	if errASK > errCS {
		t.Errorf("ASketch error %v exceeds plain CS %v", errASK, errCS)
	}
}

func TestNewColdFilterValidation(t *testing.T) {
	if _, err := NewColdFilter(cfg(16), cfg(64), 0, 0.1); err == nil {
		t.Error("expected error for zero samples")
	}
	if _, err := NewColdFilter(cfg(16), cfg(64), 10, 0); err == nil {
		t.Error("expected error for zero threshold")
	}
	if _, err := NewColdFilter(countsketch.Config{}, cfg(64), 10, 0.1); err == nil {
		t.Error("expected error for bad l1")
	}
	if _, err := NewColdFilter(cfg(16), countsketch.Config{}, 10, 0.1); err == nil {
		t.Error("expected error for bad l2")
	}
}

func TestColdFilterSplitsMass(t *testing.T) {
	// With no collisions, a hot key's total estimate equals its mean even
	// though its mass straddles the layers; a cold key stays in layer 1.
	cf, err := NewColdFilter(cfg(1<<12), cfg(1<<14), 10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 10; step++ {
		cf.BeginStep(step)
		cf.Offer(1, 1.0) // mean 1: saturates layer 1 at ~0.25 then overflows
		cf.Offer(2, 0.1) // mean 0.1: never saturates
	}
	// The hot key's estimate is exact up to the saturation overshoot
	// (at most one increment, 0.1 here).
	if got := cf.Estimate(1); math.Abs(got-1) > 0.1+1e-9 {
		t.Errorf("hot estimate = %v, want 1 ± overshoot", got)
	}
	if got := cf.Estimate(2); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("cold estimate = %v, want 0.1", got)
	}
	if got := cf.l2.Estimate(2); got != 0 {
		t.Errorf("cold key leaked into layer 2: %v", got)
	}
	if got := cf.l2.Estimate(1); got <= 0 {
		t.Errorf("hot key should overflow to layer 2, got %v", got)
	}
	if cf.Name() != "ColdFilter" {
		t.Errorf("Name = %q", cf.Name())
	}
	if cf.Bytes() != cf.l1.Bytes()+cf.l2.Bytes() {
		t.Error("Bytes should sum layers")
	}
}

func TestColdFilterShieldsLayer2(t *testing.T) {
	// Many cold keys and a few hot keys: layer 2's estimates for hot keys
	// should be less noisy than a single CS of the same *total* memory.
	const (
		p    = 5000
		T    = 300
		hotN = 5
	)
	rng := rand.New(rand.NewSource(9))
	// Cold filter: l1 256 buckets + l2 256 buckets vs CS with 512.
	cf, err := NewColdFilter(cfg(256), cfg(256), T, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := countsketch.NewMeanSketch(cfg(512), T)
	if err != nil {
		t.Fatal(err)
	}
	mu := make([]float64, p)
	for i := 0; i < hotN; i++ {
		mu[i] = 3
	}
	for step := 1; step <= T; step++ {
		cf.BeginStep(step)
		cs.BeginStep(step)
		for i := 0; i < p; i++ {
			x := mu[i] + rng.NormFloat64()
			cf.Offer(uint64(i), x)
			cs.Offer(uint64(i), x)
		}
	}
	var errCF, errCS float64
	for i := 0; i < hotN; i++ {
		errCF += math.Abs(cf.Estimate(uint64(i)) - 3)
		errCS += math.Abs(cs.Estimate(uint64(i)) - 3)
	}
	t.Logf("hot-key L1 error: ColdFilter=%.3f CS=%.3f", errCF, errCS)
	if errCF > 1.5*errCS {
		t.Errorf("ColdFilter error %v far exceeds CS %v", errCF, errCS)
	}
}

func TestEnginesRankHotKeysConsistently(t *testing.T) {
	// Sanity: both baselines rank a clear heavy hitter first.
	build := func() []interface {
		BeginStep(int)
		Offer(uint64, float64)
		Estimate(uint64) float64
	} {
		a, _ := NewASketch(cfg(128), 50, 4)
		c, _ := NewColdFilter(cfg(64), cfg(128), 50, 0.1)
		return []interface {
			BeginStep(int)
			Offer(uint64, float64)
			Estimate(uint64) float64
		}{a, c}
	}
	for _, eng := range build() {
		rng := rand.New(rand.NewSource(13))
		for step := 1; step <= 50; step++ {
			eng.BeginStep(step)
			for i := 0; i < 500; i++ {
				x := rng.NormFloat64() * 0.2
				if i == 77 {
					x += 5
				}
				eng.Offer(uint64(i), x)
			}
		}
		type kv struct {
			k uint64
			v float64
		}
		var all []kv
		for i := 0; i < 500; i++ {
			all = append(all, kv{uint64(i), eng.Estimate(uint64(i))})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
		if all[0].k != 77 {
			t.Errorf("heavy hitter not ranked first: got key %d", all[0].k)
		}
	}
}
