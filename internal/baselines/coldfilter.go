package baselines

import (
	"fmt"
	"math"

	"repro/internal/countsketch"
	"repro/internal/sketchapi"
)

// ColdFilter is the Cold Filter adaptation: a small layer-1 sketch
// absorbs updates for a key until that key's layer-1 estimate magnitude
// saturates at a threshold; subsequent updates overflow into the
// higher-fidelity layer-2 sketch. Cold (low-mean) keys thus never touch
// layer 2, whose buckets stay clean for the hot keys — the same
// noise-segregation idea as ASCS, but with a static two-layer split
// instead of an adaptive threshold schedule. Estimates sum both layers,
// since a key's mass may be split across them.
type ColdFilter struct {
	l1, l2 *countsketch.Sketch
	thresh float64
	invT   float64
	t      int

	// s1/s2 are the reusable slot scratches of the fused offer methods
	// (single-writer by the Ingestor contract; kept off the stack so
	// they do not escape through the hash-family interface call).
	s1, s2 [countsketch.MaxTables]countsketch.Slot
}

var _ sketchapi.OfferEstimator = (*ColdFilter)(nil)

// NewColdFilter builds the engine. l1cfg is typically much smaller than
// l2cfg; threshold is in final-mean units (like the ASCS τ), i.e. a key
// starts overflowing to layer 2 once its layer-1 estimate magnitude
// reaches threshold.
func NewColdFilter(l1cfg, l2cfg countsketch.Config, totalSamples int, threshold float64) (*ColdFilter, error) {
	if totalSamples <= 0 {
		return nil, fmt.Errorf("baselines: totalSamples must be positive, got %d", totalSamples)
	}
	if threshold <= 0 || math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return nil, fmt.Errorf("baselines: threshold must be positive and finite, got %v", threshold)
	}
	l1, err := countsketch.New(l1cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: layer 1: %w", err)
	}
	l2, err := countsketch.New(l2cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: layer 2: %w", err)
	}
	return &ColdFilter{l1: l1, l2: l2, thresh: threshold, invT: 1 / float64(totalSamples)}, nil
}

// BeginStep records the time step.
func (c *ColdFilter) BeginStep(t int) { c.t = t }

// Offer absorbs into layer 1 until the key saturates, then into layer 2.
// The layer-1 saturation test and a layer-1 insert share one Locate.
func (c *ColdFilter) Offer(key uint64, x float64) {
	v := x * c.invT
	c.l1.Locate(key, &c.s1)
	if math.Abs(c.l1.EstimateSlots(&c.s1)) < c.thresh {
		c.l1.AddSlots(&c.s1, v)
		return
	}
	c.l2.Add(key, v)
}

// OfferEstimate implements sketchapi.OfferEstimator: Offer plus the
// post-offer estimate, hashing the key once per layer touched instead of
// once per gate/insert/estimate phase.
func (c *ColdFilter) OfferEstimate(key uint64, x float64) (float64, bool) {
	v := x * c.invT
	c.l1.Locate(key, &c.s1)
	e1 := c.l1.EstimateSlots(&c.s1)
	var e2 float64
	if math.Abs(e1) < c.thresh {
		e1 = c.l1.AddSlotsWithEstimate(&c.s1, v, e1)
		e2 = c.l2.Estimate(key)
	} else {
		c.l2.Locate(key, &c.s2)
		c.l2.AddSlots(&c.s2, v)
		e2 = c.l2.EstimateSlots(&c.s2)
	}
	// Same clamped retrieval as Estimate (see that method's comment).
	if math.Abs(e1) > c.thresh {
		e1 = math.Copysign(c.thresh, e1)
	}
	return e1 + e2, true
}

// OfferPairs implements the batch fast path for one time step.
func (c *ColdFilter) OfferPairs(keys []uint64, xs []float64, ests []float64) {
	for i, key := range keys {
		if ests != nil {
			ests[i], _ = c.OfferEstimate(key, xs[i])
		} else {
			c.Offer(key, xs[i])
		}
	}
}

// Estimate reports the layer-1 estimate clamped at the saturation
// threshold plus the layer-2 estimate, mirroring the original Cold
// Filter's "threshold + second stage" retrieval. Clamping keeps noisy
// layer-1 buckets from polluting hot-key answers (error bounded by the
// single-update overshoot past the threshold); always adding layer 2
// keeps a hot key's overflowed mass visible even when collision noise
// later drags its layer-1 estimate back under the threshold. Layer 2 is
// sparsely populated (only overflowed keys), so the extra term adds
// little noise for genuinely cold keys.
func (c *ColdFilter) Estimate(key uint64) float64 {
	e1 := c.l1.Estimate(key)
	if math.Abs(e1) > c.thresh {
		e1 = math.Copysign(c.thresh, e1)
	}
	return e1 + c.l2.Estimate(key)
}

// Bytes sums both layers.
func (c *ColdFilter) Bytes() int { return c.l1.Bytes() + c.l2.Bytes() }

// Name identifies the engine.
func (c *ColdFilter) Name() string { return "ColdFilter" }
