package baselines

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/countsketch"
	"repro/internal/sketchapi"
)

// ColdFilter is the Cold Filter adaptation: a small layer-1 sketch
// absorbs updates for a key until that key's layer-1 estimate magnitude
// saturates at a threshold; subsequent updates overflow into the
// higher-fidelity layer-2 sketch. Cold (low-mean) keys thus never touch
// layer 2, whose buckets stay clean for the hot keys — the same
// noise-segregation idea as ASCS, but with a static two-layer split
// instead of an adaptive threshold schedule. Estimates sum both layers,
// since a key's mass may be split across them.
type ColdFilter struct {
	l1, l2 *countsketch.Sketch
	thresh float64
	invT   float64
	t      int

	// decay/lambda/neff implement sketchapi.Decayer: both layers age by
	// λ per step (lazily, via each sketch's scale accumulator). The
	// saturation threshold stays fixed — it is in mean units, which do
	// not decay.
	decay  bool
	lambda float64
	neff   float64

	// s1/s2 are the reusable slot scratches of the fused offer methods
	// (single-writer by the Ingestor contract; kept off the stack so
	// they do not escape through the hash-family interface call).
	s1, s2 [countsketch.MaxTables]countsketch.Slot

	// wave is the group-size state and lazily built scratch of the
	// wave-pipelined OfferPairs path over the layer-1 sketch
	// (sketchapi.WaveTuner). Layer 2 sees only the overflow trickle of
	// saturated keys, so it stays on per-key locates.
	wave countsketch.WaveTune

	// Health telemetry: the filter absorbs every offer (no rejection),
	// so all mass is admitted; waveGroups counts hash/touch-staged
	// groups over layer 1.
	inserts    uint64
	mass       float64
	waveGroups uint64
}

var (
	_ sketchapi.OfferEstimator = (*ColdFilter)(nil)
	_ sketchapi.RowOfferer     = (*ColdFilter)(nil)
	_ sketchapi.Decayer        = (*ColdFilter)(nil)
	_ sketchapi.Snapshotter    = (*ColdFilter)(nil)
	_ sketchapi.WaveTuner      = (*ColdFilter)(nil)
	_ sketchapi.HealthReporter = (*ColdFilter)(nil)
	_ sketchapi.Folder         = (*ColdFilter)(nil)
	_ sketchapi.FoldedWriter   = (*ColdFilter)(nil)
)

// NewColdFilter builds the engine. l1cfg is typically much smaller than
// l2cfg; threshold is in final-mean units (like the ASCS τ), i.e. a key
// starts overflowing to layer 2 once its layer-1 estimate magnitude
// reaches threshold.
func NewColdFilter(l1cfg, l2cfg countsketch.Config, totalSamples int, threshold float64) (*ColdFilter, error) {
	if totalSamples <= 0 {
		return nil, fmt.Errorf("baselines: totalSamples must be positive, got %d", totalSamples)
	}
	if threshold <= 0 || math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return nil, fmt.Errorf("baselines: threshold must be positive and finite, got %v", threshold)
	}
	l1, err := countsketch.New(l1cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: layer 1: %w", err)
	}
	l2, err := countsketch.New(l2cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: layer 2: %w", err)
	}
	return &ColdFilter{l1: l1, l2: l2, thresh: threshold, invT: 1 / float64(totalSamples), lambda: 1}, nil
}

// NewColdFilterDecayed builds the engine in exponential-decay
// (unbounded-stream) mode: window replaces the horizon as the insert
// normalizer and every step ages both layers by lambda. λ = 1 keeps the
// arithmetic bit-identical to NewColdFilter(l1, l2, window, threshold)
// while lifting the stream bound.
func NewColdFilterDecayed(l1cfg, l2cfg countsketch.Config, window int, threshold, lambda float64) (*ColdFilter, error) {
	if err := sketchapi.ValidateDecay(lambda); err != nil {
		return nil, err
	}
	c, err := NewColdFilter(l1cfg, l2cfg, window, threshold)
	if err != nil {
		return nil, err
	}
	c.decay = true
	c.lambda = lambda
	return c, nil
}

// BeginStep records the time step, applying the decay ticks of the
// steps advanced when in decay mode.
func (c *ColdFilter) BeginStep(t int) {
	if c.decay {
		if steps := t - c.t; steps > 0 {
			f := sketchapi.DecayPow(c.lambda, steps)
			c.l1.Decay(f)
			c.l2.Decay(f)
			c.neff = sketchapi.AdvanceEffective(c.neff, c.lambda, steps)
		}
	}
	c.t = t
}

// Decaying implements sketchapi.Decayer.
func (c *ColdFilter) Decaying() bool { return c.decay }

// DecayFactor implements sketchapi.Decayer.
func (c *ColdFilter) DecayFactor() float64 { return c.lambda }

// EffectiveSamples implements sketchapi.Decayer.
func (c *ColdFilter) EffectiveSamples() float64 {
	if c.decay {
		return c.neff
	}
	return float64(c.t)
}

// Offer absorbs into layer 1 until the key saturates, then into layer 2.
// The layer-1 saturation test and a layer-1 insert share one Locate.
func (c *ColdFilter) Offer(key uint64, x float64) {
	c.l1.Locate(key, &c.s1)
	c.offerWith(key, x, &c.s1)
}

// offerWith is Offer against layer-1 slots already located for key
// (the wave path pre-hashes whole groups).
func (c *ColdFilter) offerWith(key uint64, x float64, s1 *[countsketch.MaxTables]countsketch.Slot) {
	c.inserts++
	c.mass += math.Abs(x)
	v := x * c.invT
	if math.Abs(c.l1.EstimateSlots(s1)) < c.thresh {
		c.l1.AddSlots(s1, v)
		return
	}
	c.l2.Add(key, v)
}

// OfferEstimate implements sketchapi.OfferEstimator: Offer plus the
// post-offer estimate, hashing the key once per layer touched instead of
// once per gate/insert/estimate phase.
func (c *ColdFilter) OfferEstimate(key uint64, x float64) (float64, bool) {
	c.l1.Locate(key, &c.s1)
	return c.offerEstimateWith(key, x, &c.s1)
}

// offerEstimateWith is OfferEstimate against pre-located layer-1 slots.
func (c *ColdFilter) offerEstimateWith(key uint64, x float64, s1 *[countsketch.MaxTables]countsketch.Slot) (float64, bool) {
	c.inserts++
	c.mass += math.Abs(x)
	v := x * c.invT
	e1, raw1 := c.l1.EstimateSlotsWithRaw(s1)
	var e2 float64
	if math.Abs(e1) < c.thresh {
		e1 = c.l1.AddSlotsWithEstimateRaw(s1, v, raw1)
		e2 = c.l2.Estimate(key)
	} else {
		c.l2.Locate(key, &c.s2)
		c.l2.AddSlots(&c.s2, v)
		e2 = c.l2.EstimateSlots(&c.s2)
	}
	// Same clamped retrieval as Estimate (see that method's comment).
	if math.Abs(e1) > c.thresh {
		e1 = math.Copysign(c.thresh, e1)
	}
	return e1 + e2, true
}

// OfferPairs implements the batch fast path for one time step via the
// wave pipeline's hash/touch stages over layer 1: each group of G keys
// is hashed in one dispatch and its layer-1 cells touched so the
// saturation-test misses overlap, then the per-key saturate-or-overflow
// logic replays the exact scalar order on warm lines. Bit-identical to
// the scalar loop at any G.
func (c *ColdFilter) OfferPairs(keys []uint64, xs []float64, ests []float64) {
	w, g := c.wave.Scratch(c.l1.K())
	if g <= 1 {
		c.offerPairsScalar(keys, xs, ests)
		return
	}
	for lo := 0; lo < len(keys); lo += g {
		hi := lo + g
		if hi > len(keys) {
			hi = len(keys)
		}
		var sub []float64
		if ests != nil {
			sub = ests[lo:hi]
		}
		c.offerWave(w, keys[lo:hi], xs[lo:hi], sub)
	}
}

// offerWave processes one group of ≤ G pairs through the layer-1
// hash/touch stages, then replays the exact per-key saturate-or-
// overflow logic on warm lines — the shared wave group body of
// OfferPairs and the RowOfferer path.
func (c *ColdFilter) offerWave(w *countsketch.Wave, keys []uint64, xs []float64, ests []float64) {
	n := len(keys)
	c.waveGroups++
	slots := w.Slots(n)
	c.l1.LocateBatch(keys, slots)
	w.Sink += c.l1.TouchSlots(slots)
	for i := 0; i < n; i++ {
		sl := w.At(i)
		if ests != nil {
			ests[i], _ = c.offerEstimateWith(keys[i], xs[i], sl)
		} else {
			c.offerWith(keys[i], xs[i], sl)
		}
	}
}

// OfferRow implements sketchapi.RowOfferer: one row's pairs
// (rowBase+partners[j], x[j]) with key materialization amortized to one
// wrapping vector add per wave group, then the same group body as
// OfferPairs (layer-1 hash/touch staging + exact sequential replay).
// Bit-identical to OfferPairs over the materialized keys at any group
// size (scalar per-pair at g ≤ 1).
func (c *ColdFilter) OfferRow(rowBase uint64, partners []uint64, x []float64, ests []float64) {
	w, g := c.wave.Scratch(c.l1.K())
	if g <= 1 {
		for j, p := range partners {
			if ests == nil {
				c.Offer(rowBase+p, x[j])
			} else {
				ests[j], _ = c.OfferEstimate(rowBase+p, x[j])
			}
		}
		return
	}
	countsketch.WalkRowGroups(w, g, rowBase, partners, x, ests,
		func(keys []uint64, xs []float64, sub []float64) { c.offerWave(w, keys, xs, sub) })
}

// OfferRows implements sketchapi.RowOfferer: one sample's whole upper
// triangle in row-major order, groups packed across row boundaries.
func (c *ColdFilter) OfferRows(bases, ids []uint64, left, right []float64, ests []float64) {
	w, g := c.wave.Scratch(c.l1.K())
	if g <= 1 {
		p := 0
		for i := 0; i+1 < len(ids); i++ {
			base, li := bases[i], left[i]
			for j := i + 1; j < len(ids); j++ {
				if ests == nil {
					c.Offer(base+ids[j], li*right[j])
				} else {
					ests[p], _ = c.OfferEstimate(base+ids[j], li*right[j])
				}
				p++
			}
		}
		return
	}
	countsketch.WalkRowsGroups(w, g, bases, ids, left, right, ests,
		func(keys []uint64, xs []float64, sub []float64) { c.offerWave(w, keys, xs, sub) })
}

// offerPairsScalar is the pre-wave batch loop, kept as the wave path's
// differential reference (sketchapi.WaveTuner, g = 1).
func (c *ColdFilter) offerPairsScalar(keys []uint64, xs []float64, ests []float64) {
	for i, key := range keys {
		if ests != nil {
			ests[i], _ = c.OfferEstimate(key, xs[i])
		} else {
			c.Offer(key, xs[i])
		}
	}
}

// SetWaveGroup implements sketchapi.WaveTuner (g ≤ 1 = scalar loop).
// Not safe concurrently with offers.
func (c *ColdFilter) SetWaveGroup(g int) { c.wave.Set(g) }

// WaveGroup implements sketchapi.WaveTuner.
func (c *ColdFilter) WaveGroup() int { return c.wave.Group() }

// Estimate reports the layer-1 estimate clamped at the saturation
// threshold plus the layer-2 estimate, mirroring the original Cold
// Filter's "threshold + second stage" retrieval. Clamping keeps noisy
// layer-1 buckets from polluting hot-key answers (error bounded by the
// single-update overshoot past the threshold); always adding layer 2
// keeps a hot key's overflowed mass visible even when collision noise
// later drags its layer-1 estimate back under the threshold. Layer 2 is
// sparsely populated (only overflowed keys), so the extra term adds
// little noise for genuinely cold keys.
func (c *ColdFilter) Estimate(key uint64) float64 {
	e1 := c.l1.Estimate(key)
	if math.Abs(e1) > c.thresh {
		e1 = math.Copysign(c.thresh, e1)
	}
	return e1 + c.l2.Estimate(key)
}

// Health implements sketchapi.HealthReporter: the filter never rejects
// an offer, so every offer is admitted mass. Call from the owning
// goroutine.
func (c *ColdFilter) Health() sketchapi.Health {
	return sketchapi.Health{
		ExplorationInserts: c.inserts,
		AdmittedMass:       c.mass,
		DecayRenorms:       c.l1.Renorms() + c.l2.Renorms(),
		WaveGroups:         c.waveGroups,
	}
}

// Bytes sums both layers.
func (c *ColdFilter) Bytes() int { return c.l1.Bytes() + c.l2.Bytes() }

// Fold implements sketchapi.Folder by folding both layers together, so
// the saturation gate and the retrieval read matching resolutions. Both
// layers must support the target level (see MaxFoldLevels); validation
// runs before either layer mutates, so a failed Fold changes nothing.
func (c *ColdFilter) Fold(levels int) error {
	if levels <= 0 {
		return fmt.Errorf("baselines: fold levels must be positive, got %d", levels)
	}
	if target := c.l1.FoldLevel() + levels; target > c.MaxFoldLevels() {
		return fmt.Errorf("baselines: cannot fold cold filter to level %d: layers support at most %d levels", target, c.MaxFoldLevels())
	}
	if err := c.l1.Fold(levels); err != nil {
		return err
	}
	return c.l2.Fold(levels)
}

// Unfold implements sketchapi.Folder.
func (c *ColdFilter) Unfold() {
	c.l1.Unfold()
	c.l2.Unfold()
}

// FoldLevel implements sketchapi.Folder (the layers move together).
func (c *ColdFilter) FoldLevel() int { return c.l1.FoldLevel() }

// MaxFoldLevels implements sketchapi.Folder: the shallower of the two
// layers' limits, since the layers fold in lockstep.
func (c *ColdFilter) MaxFoldLevels() int {
	if m1, m2 := c.l1.MaxFoldLevels(), c.l2.MaxFoldLevels(); m1 < m2 {
		return m1
	} else {
		return m2
	}
}

// Name identifies the engine.
func (c *ColdFilter) Name() string { return "ColdFilter" }

const coldFilterMagic = uint32(0xA5C5CF01)

// WriteTo implements sketchapi.Snapshotter: normalizer, step position,
// saturation threshold, decay state, then both layer sketches.
func (c *ColdFilter) WriteTo(w io.Writer) (int64, error) {
	return c.writeTo(w, -1)
}

// WriteToFolded implements sketchapi.FoldedWriter: both layers stream
// pre-folded to the given level (each clamped to its own geometry).
func (c *ColdFilter) WriteToFolded(w io.Writer, level int) (int64, error) {
	return c.writeTo(w, level)
}

// writeTo serializes with both layers folded to level (< 0 writes the
// live resolution).
func (c *ColdFilter) writeTo(w io.Writer, level int) (int64, error) {
	hdr := make([]byte, 4+8*3+1+8*2)
	binary.LittleEndian.PutUint32(hdr[0:], coldFilterMagic)
	binary.LittleEndian.PutUint64(hdr[4:], math.Float64bits(c.invT))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(c.t))
	binary.LittleEndian.PutUint64(hdr[20:], math.Float64bits(c.thresh))
	if c.decay {
		hdr[28] = 1
	}
	binary.LittleEndian.PutUint64(hdr[29:], math.Float64bits(c.lambda))
	binary.LittleEndian.PutUint64(hdr[37:], math.Float64bits(c.neff))
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	writeSketch := func(sk *countsketch.Sketch, w io.Writer) (int64, error) {
		if level < 0 {
			return sk.WriteTo(w)
		}
		return sk.WriteToFolded(w, level)
	}
	sn, err := writeSketch(c.l1, w)
	total += sn
	if err != nil {
		return total, err
	}
	sn, err = writeSketch(c.l2, w)
	return total + sn, err
}

// ReadColdFilterFrom reconstructs a ColdFilter written by WriteTo.
func ReadColdFilterFrom(r io.Reader) (*ColdFilter, error) {
	hdr := make([]byte, 4+8*3+1+8*2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("baselines: reading cold-filter header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != coldFilterMagic {
		return nil, fmt.Errorf("baselines: bad cold-filter magic")
	}
	c := &ColdFilter{
		invT:   math.Float64frombits(binary.LittleEndian.Uint64(hdr[4:])),
		t:      int(binary.LittleEndian.Uint64(hdr[12:])),
		thresh: math.Float64frombits(binary.LittleEndian.Uint64(hdr[20:])),
		decay:  hdr[28] == 1,
		lambda: math.Float64frombits(binary.LittleEndian.Uint64(hdr[29:])),
		neff:   math.Float64frombits(binary.LittleEndian.Uint64(hdr[37:])),
	}
	if !(c.invT > 0) || math.IsInf(c.invT, 0) {
		return nil, fmt.Errorf("baselines: corrupt cold-filter normalizer %v", c.invT)
	}
	if !(c.thresh > 0) || math.IsInf(c.thresh, 0) {
		return nil, fmt.Errorf("baselines: corrupt cold-filter threshold %v", c.thresh)
	}
	if err := sketchapi.ValidateDecay(c.lambda); err != nil {
		return nil, fmt.Errorf("baselines: corrupt cold-filter decay factor: %w", err)
	}
	l1, err := countsketch.ReadFrom(r)
	if err != nil {
		return nil, fmt.Errorf("baselines: layer 1: %w", err)
	}
	l2, err := countsketch.ReadFrom(r)
	if err != nil {
		return nil, fmt.Errorf("baselines: layer 2: %w", err)
	}
	c.l1, c.l2 = l1, l2
	return c, nil
}
