// Package baselines implements the two sketch-augmentation baselines the
// paper compares against in §8.3: Augmented Sketch (Roy, Khan, Alonso,
// SIGMOD 2016) and Cold Filter (Zhou et al., SIGMOD 2018), both adapted
// from frequency counting to the signed real-valued mean-estimation
// setting of this paper.
package baselines

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/countsketch"
	"repro/internal/sketchapi"
)

// ASketch is the Augmented Sketch adaptation: a small exact filter holds
// the hottest keys outside the sketch; all other keys hit the backing
// count sketch. When a sketched key's estimate overtakes the smallest
// filter entry the two swap, moving the evicted entry's accumulated value
// back into the sketch and carving the promoted key's estimate out of it.
// Filtered keys therefore answer exactly, and the hottest keys stop
// polluting sketch buckets — the same collision-reduction goal ASCS
// pursues by gating insertions.
type ASketch struct {
	sk     *countsketch.Sketch
	filter map[uint64]float64 // raw values; logical value = raw · fscale
	cap    int
	invT   float64

	// cached (approximate) minimum |value| entry of the filter, in raw
	// units; verified by a scan before any swap, so staleness only
	// costs extra scans.
	minKey uint64
	minAbs float64
	t      int

	// decay/lambda/neff implement sketchapi.Decayer. The sketch ages
	// lazily through its scale accumulator, and the exact filter ages
	// the same lazy way: fscale is the filter's decay accumulator
	// (logical entry = raw · fscale, finv = 1/fscale applied on
	// writes), so a decay tick is O(1) instead of a map rewrite. Raw
	// values — and hence the raw minAbs cache — are untouched by decay.
	decay  bool
	lambda float64
	neff   float64
	fscale float64
	finv   float64

	// slots is the reusable slot scratch of the fused offer methods
	// (single-writer by the Ingestor contract; kept off the stack so it
	// does not escape through the hash-family interface call).
	slots [countsketch.MaxTables]countsketch.Slot

	// wave is the group-size state and lazily built scratch of the
	// wave-pipelined OfferPairs path (sketchapi.WaveTuner).
	wave countsketch.WaveTune

	// Health telemetry: ASketch absorbs every offer (no gate), so all
	// mass is admitted; waveGroups counts hash/touch-staged groups.
	inserts    uint64
	mass       float64
	waveGroups uint64
}

// asketchRenormFloor is the shared lazy-decay renormalization floor
// for the filter's lazy scale.
const asketchRenormFloor = sketchapi.RenormFloor

var (
	_ sketchapi.OfferEstimator = (*ASketch)(nil)
	_ sketchapi.RowOfferer     = (*ASketch)(nil)
	_ sketchapi.Decayer        = (*ASketch)(nil)
	_ sketchapi.Snapshotter    = (*ASketch)(nil)
	_ sketchapi.WaveTuner      = (*ASketch)(nil)
	_ sketchapi.HealthReporter = (*ASketch)(nil)
	_ sketchapi.Folder         = (*ASketch)(nil)
	_ sketchapi.FoldedWriter   = (*ASketch)(nil)
)

// NewASketch builds an Augmented Sketch engine. filterCap is the number
// of exact filter slots; totalSamples is the stream length T.
func NewASketch(cfg countsketch.Config, totalSamples, filterCap int) (*ASketch, error) {
	if totalSamples <= 0 {
		return nil, fmt.Errorf("baselines: totalSamples must be positive, got %d", totalSamples)
	}
	if filterCap < 1 {
		return nil, fmt.Errorf("baselines: filterCap must be ≥ 1, got %d", filterCap)
	}
	sk, err := countsketch.New(cfg)
	if err != nil {
		return nil, err
	}
	return &ASketch{
		sk:     sk,
		filter: make(map[uint64]float64, filterCap),
		cap:    filterCap,
		invT:   1 / float64(totalSamples),
		minAbs: math.Inf(1),
		lambda: 1,
		fscale: 1,
		finv:   1,
	}, nil
}

// NewASketchDecayed builds the engine in exponential-decay
// (unbounded-stream) mode: window replaces the horizon as the insert
// normalizer and every step ages the sketch and the exact filter by
// lambda. λ = 1 keeps the arithmetic bit-identical to
// NewASketch(cfg, window, filterCap) while lifting the stream bound.
func NewASketchDecayed(cfg countsketch.Config, window, filterCap int, lambda float64) (*ASketch, error) {
	if err := sketchapi.ValidateDecay(lambda); err != nil {
		return nil, err
	}
	a, err := NewASketch(cfg, window, filterCap)
	if err != nil {
		return nil, err
	}
	a.decay = true
	a.lambda = lambda
	return a, nil
}

// BeginStep records the time step, applying the decay ticks of the
// steps advanced when in decay mode.
func (a *ASketch) BeginStep(t int) {
	if a.decay {
		if steps := t - a.t; steps > 0 {
			f := sketchapi.DecayPow(a.lambda, steps)
			a.sk.Decay(f)
			if f != 1 {
				// Lazy O(1) filter aging; raw entries (and the raw
				// minAbs cache) are untouched.
				a.fscale *= f
				if a.fscale < asketchRenormFloor {
					for k, v := range a.filter {
						a.filter[k] = v * a.fscale
					}
					a.minAbs *= a.fscale
					a.fscale, a.finv = 1, 1
				} else {
					a.finv = 1 / a.fscale
				}
			}
			a.neff = sketchapi.AdvanceEffective(a.neff, a.lambda, steps)
		}
	}
	a.t = t
}

// Decaying implements sketchapi.Decayer.
func (a *ASketch) Decaying() bool { return a.decay }

// DecayFactor implements sketchapi.Decayer.
func (a *ASketch) DecayFactor() float64 { return a.lambda }

// EffectiveSamples implements sketchapi.Decayer.
func (a *ASketch) EffectiveSamples() float64 {
	if a.decay {
		return a.neff
	}
	return float64(a.t)
}

// Offer routes the observation to the filter when the key is hot,
// otherwise through the sketch with a promotion check. Sketched keys are
// hashed once: the insert, the promotion-check estimate, and a possible
// promotion carve-out all reuse one Locate.
func (a *ASketch) Offer(key uint64, x float64) {
	if cur, ok := a.filter[key]; ok {
		a.inserts++
		a.mass += math.Abs(x)
		a.bumpFilter(key, cur*a.fscale+x*a.invT)
		return
	}
	a.sk.Locate(key, &a.slots)
	a.offerWith(key, x, &a.slots)
}

// offerWith is Offer against slots already located for key (the wave
// path pre-hashes whole groups; filtered keys never read them).
func (a *ASketch) offerWith(key uint64, x float64, slots *[countsketch.MaxTables]countsketch.Slot) {
	a.inserts++
	a.mass += math.Abs(x)
	v := x * a.invT
	if cur, ok := a.filter[key]; ok {
		a.bumpFilter(key, cur*a.fscale+v)
		return
	}
	a.sk.AddSlots(slots, v)
	a.offerSketched(key, slots)
}

// OfferEstimate implements sketchapi.OfferEstimator: Offer plus the
// post-offer estimate off a single Locate of the key.
func (a *ASketch) OfferEstimate(key uint64, x float64) (float64, bool) {
	a.sk.Locate(key, &a.slots)
	return a.offerEstimateWith(key, x, &a.slots)
}

// offerEstimateWith is OfferEstimate against pre-located slots.
func (a *ASketch) offerEstimateWith(key uint64, x float64, slots *[countsketch.MaxTables]countsketch.Slot) (float64, bool) {
	a.inserts++
	a.mass += math.Abs(x)
	v := x * a.invT
	if cur, ok := a.filter[key]; ok {
		nv := cur*a.fscale + v
		a.bumpFilter(key, nv)
		return nv + a.sk.EstimateSlots(slots), true
	}
	a.sk.AddSlots(slots, v)
	est, promoted := a.offerSketched(key, slots)
	if promoted {
		// Filtered keys answer their exact value plus the sketch residual.
		return est + a.sk.EstimateSlots(slots), true
	}
	return est, true
}

// OfferPairs implements the batch fast path for one time step via the
// wave pipeline's hash/touch stages: each group of G keys is hashed in
// one dispatch and its sketch cells touched so the misses overlap, then
// the filter/promotion logic replays the exact per-key order on warm
// lines (the filter's swap decisions are inherently sequential, so
// there is no gather/scatter stage here). Bit-identical to the scalar
// loop at any G.
func (a *ASketch) OfferPairs(keys []uint64, xs []float64, ests []float64) {
	w, g := a.wave.Scratch(a.sk.K())
	if g <= 1 {
		a.offerPairsScalar(keys, xs, ests)
		return
	}
	for lo := 0; lo < len(keys); lo += g {
		hi := lo + g
		if hi > len(keys) {
			hi = len(keys)
		}
		var sub []float64
		if ests != nil {
			sub = ests[lo:hi]
		}
		a.offerWave(w, keys[lo:hi], xs[lo:hi], sub)
	}
}

// offerWave processes one group of ≤ G pairs through the hash/touch
// stages, then replays the exact per-key filter logic on warm lines —
// the shared wave group body of OfferPairs and the RowOfferer path.
func (a *ASketch) offerWave(w *countsketch.Wave, keys []uint64, xs []float64, ests []float64) {
	n := len(keys)
	a.waveGroups++
	slots := w.Slots(n)
	a.sk.LocateBatch(keys, slots)
	w.Sink += a.sk.TouchSlots(slots)
	for i := 0; i < n; i++ {
		sl := w.At(i)
		if ests != nil {
			ests[i], _ = a.offerEstimateWith(keys[i], xs[i], sl)
		} else {
			a.offerWith(keys[i], xs[i], sl)
		}
	}
}

// OfferRow implements sketchapi.RowOfferer: one row's pairs
// (rowBase+partners[j], x[j]) with key materialization amortized to one
// wrapping vector add per wave group, then the same group body as
// OfferPairs (hash/touch staging + exact sequential filter replay).
// Bit-identical to OfferPairs over the materialized keys at any group
// size (scalar per-pair at g ≤ 1).
func (a *ASketch) OfferRow(rowBase uint64, partners []uint64, x []float64, ests []float64) {
	w, g := a.wave.Scratch(a.sk.K())
	if g <= 1 {
		for j, p := range partners {
			if ests == nil {
				a.Offer(rowBase+p, x[j])
			} else {
				ests[j], _ = a.OfferEstimate(rowBase+p, x[j])
			}
		}
		return
	}
	countsketch.WalkRowGroups(w, g, rowBase, partners, x, ests,
		func(keys []uint64, xs []float64, sub []float64) { a.offerWave(w, keys, xs, sub) })
}

// OfferRows implements sketchapi.RowOfferer: one sample's whole upper
// triangle in row-major order, groups packed across row boundaries.
func (a *ASketch) OfferRows(bases, ids []uint64, left, right []float64, ests []float64) {
	w, g := a.wave.Scratch(a.sk.K())
	if g <= 1 {
		p := 0
		for i := 0; i+1 < len(ids); i++ {
			base, li := bases[i], left[i]
			for j := i + 1; j < len(ids); j++ {
				if ests == nil {
					a.Offer(base+ids[j], li*right[j])
				} else {
					ests[p], _ = a.OfferEstimate(base+ids[j], li*right[j])
				}
				p++
			}
		}
		return
	}
	countsketch.WalkRowsGroups(w, g, bases, ids, left, right, ests,
		func(keys []uint64, xs []float64, sub []float64) { a.offerWave(w, keys, xs, sub) })
}

// offerPairsScalar is the pre-wave batch loop, kept as the wave path's
// differential reference (sketchapi.WaveTuner, g = 1).
func (a *ASketch) offerPairsScalar(keys []uint64, xs []float64, ests []float64) {
	for i, key := range keys {
		if ests != nil {
			ests[i], _ = a.OfferEstimate(key, xs[i])
		} else {
			a.Offer(key, xs[i])
		}
	}
}

// SetWaveGroup implements sketchapi.WaveTuner (g ≤ 1 = scalar loop).
// Not safe concurrently with offers.
func (a *ASketch) SetWaveGroup(g int) { a.wave.Set(g) }

// WaveGroup implements sketchapi.WaveTuner.
func (a *ASketch) WaveGroup() int { return a.wave.Group() }

// bumpFilter updates a filtered key's value (nv in logical units),
// keeping the cached minimum honest when the minimum itself moved.
func (a *ASketch) bumpFilter(key uint64, nv float64) {
	raw := nv * a.finv
	a.filter[key] = raw
	if key == a.minKey {
		a.minAbs = math.Abs(raw)
	} else if math.Abs(raw) < a.minAbs {
		a.minKey, a.minAbs = key, math.Abs(raw)
	}
}

// offerSketched runs the promotion check after a sketch insert through
// slots, returning the post-insert estimate and whether key was
// promoted into the filter.
func (a *ASketch) offerSketched(key uint64, slots *[countsketch.MaxTables]countsketch.Slot) (est float64, promoted bool) {
	est = a.sk.EstimateSlots(slots)
	if len(a.filter) < a.cap {
		a.promote(key, est, slots)
		return est, true
	}
	// minAbs is raw; the sketch estimate is logical — compare on the
	// logical side (fscale = 1 keeps this the exact pre-decay test).
	if math.Abs(est) <= a.minAbs*a.fscale {
		return est, false
	}
	// Verify against the true minimum (the cache may be stale-low).
	minKey, minAbs := a.scanMin()
	a.minKey, a.minAbs = minKey, minAbs
	if math.Abs(est) <= minAbs*a.fscale {
		return est, false
	}
	// Swap: evicted entry's mass returns to the sketch; the promoted
	// key's estimated mass leaves it.
	evicted := a.filter[minKey] * a.fscale
	delete(a.filter, minKey)
	a.sk.Add(minKey, evicted)
	a.promote(key, est, slots)
	return est, true
}

// promote moves key into the filter with logical value est, removing
// est from the sketch so the mass is represented exactly once.
func (a *ASketch) promote(key uint64, est float64, slots *[countsketch.MaxTables]countsketch.Slot) {
	a.sk.AddSlots(slots, -est)
	raw := est * a.finv
	a.filter[key] = raw
	if math.Abs(raw) < a.minAbs || len(a.filter) == 1 {
		a.minKey, a.minAbs = key, math.Abs(raw)
	}
}

func (a *ASketch) scanMin() (uint64, float64) {
	minKey, minAbs := uint64(0), math.Inf(1)
	for k, v := range a.filter {
		av := math.Abs(v)
		// Tie-break on the key: map iteration order is randomized, and
		// an eviction choice depending on it would let identical offer
		// streams produce different filters — replays, restores, and
		// the wave/scalar differential tests (whose fuzzer caught this)
		// all rely on the engine being a deterministic function of its
		// offer sequence.
		if av < minAbs || (av == minAbs && k < minKey) {
			minKey, minAbs = k, av
		}
	}
	return minKey, minAbs
}

// Estimate answers exactly for filtered keys, with the residual sketch
// estimate added in case mass was left behind before promotion, and from
// the sketch otherwise.
func (a *ASketch) Estimate(key uint64) float64 {
	if v, ok := a.filter[key]; ok {
		return v*a.fscale + a.sk.Estimate(key)
	}
	return a.sk.Estimate(key)
}

// Health implements sketchapi.HealthReporter: the engine has no
// admission gate, so every offer is admitted mass. Call from the
// owning goroutine.
func (a *ASketch) Health() sketchapi.Health {
	return sketchapi.Health{
		ExplorationInserts: a.inserts,
		AdmittedMass:       a.mass,
		DecayRenorms:       a.sk.Renorms(),
		WaveGroups:         a.waveGroups,
	}
}

// FilterLen returns the current number of filtered keys.
func (a *ASketch) FilterLen() int { return len(a.filter) }

// Fold implements sketchapi.Folder by folding the backing sketch; the
// exact filter is width-independent and keeps answering exactly.
func (a *ASketch) Fold(levels int) error { return a.sk.Fold(levels) }

// Unfold implements sketchapi.Folder.
func (a *ASketch) Unfold() { a.sk.Unfold() }

// FoldLevel implements sketchapi.Folder.
func (a *ASketch) FoldLevel() int { return a.sk.FoldLevel() }

// MaxFoldLevels implements sketchapi.Folder.
func (a *ASketch) MaxFoldLevels() int { return a.sk.MaxFoldLevels() }

// Bytes accounts the sketch plus 16 bytes (key+value) per filter slot.
func (a *ASketch) Bytes() int { return a.sk.Bytes() + 16*a.cap }

// Name identifies the engine.
func (a *ASketch) Name() string { return "ASketch" }

const asketchMagic = uint32(0xA5C5A5E1)

// WriteTo implements sketchapi.Snapshotter: normalizer, step position,
// decay state (λ, N_eff, the filter's lazy scale), the exact filter
// contents (raw units — restore is bit-exact), and the backing sketch.
// The cached filter minimum is not serialized — it is a derived
// quantity recomputed on read.
func (a *ASketch) WriteTo(w io.Writer) (int64, error) {
	return a.writeTo(w, a.sk.WriteTo)
}

// WriteToFolded implements sketchapi.FoldedWriter: identical header and
// filter bytes, backing sketch streamed pre-folded to the given level.
func (a *ASketch) WriteToFolded(w io.Writer, level int) (int64, error) {
	return a.writeTo(w, func(w io.Writer) (int64, error) { return a.sk.WriteToFolded(w, level) })
}

func (a *ASketch) writeTo(w io.Writer, writeSketch func(io.Writer) (int64, error)) (int64, error) {
	hdr := make([]byte, 4+8*3+1+8*3+4)
	binary.LittleEndian.PutUint32(hdr[0:], asketchMagic)
	binary.LittleEndian.PutUint64(hdr[4:], math.Float64bits(a.invT))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(a.t))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(a.cap))
	if a.decay {
		hdr[28] = 1
	}
	binary.LittleEndian.PutUint64(hdr[29:], math.Float64bits(a.lambda))
	binary.LittleEndian.PutUint64(hdr[37:], math.Float64bits(a.neff))
	binary.LittleEndian.PutUint64(hdr[45:], math.Float64bits(a.fscale))
	binary.LittleEndian.PutUint32(hdr[53:], uint32(len(a.filter)))
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	// Canonical key order: identical engine states serialize to
	// identical bytes regardless of map iteration order.
	keys := make([]uint64, 0, len(a.filter))
	for k := range a.filter {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ent := make([]byte, 16)
	for _, k := range keys {
		binary.LittleEndian.PutUint64(ent[0:], k)
		binary.LittleEndian.PutUint64(ent[8:], math.Float64bits(a.filter[k]))
		n, err := w.Write(ent)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	sn, err := writeSketch(w)
	return total + sn, err
}

// ReadASketchFrom reconstructs an ASketch written by WriteTo.
func ReadASketchFrom(r io.Reader) (*ASketch, error) {
	hdr := make([]byte, 4+8*3+1+8*3+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("baselines: reading asketch header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != asketchMagic {
		return nil, fmt.Errorf("baselines: bad asketch magic")
	}
	a := &ASketch{
		invT:   math.Float64frombits(binary.LittleEndian.Uint64(hdr[4:])),
		t:      int(binary.LittleEndian.Uint64(hdr[12:])),
		cap:    int(binary.LittleEndian.Uint64(hdr[20:])),
		decay:  hdr[28] == 1,
		lambda: math.Float64frombits(binary.LittleEndian.Uint64(hdr[29:])),
		neff:   math.Float64frombits(binary.LittleEndian.Uint64(hdr[37:])),
		fscale: math.Float64frombits(binary.LittleEndian.Uint64(hdr[45:])),
	}
	if !(a.invT > 0) || math.IsInf(a.invT, 0) {
		return nil, fmt.Errorf("baselines: corrupt asketch normalizer %v", a.invT)
	}
	if a.cap < 1 {
		return nil, fmt.Errorf("baselines: corrupt asketch filter cap %d", a.cap)
	}
	if err := sketchapi.ValidateDecay(a.lambda); err != nil {
		return nil, fmt.Errorf("baselines: corrupt asketch decay factor: %w", err)
	}
	if !(a.fscale > 0) || math.IsInf(a.fscale, 0) {
		return nil, fmt.Errorf("baselines: corrupt asketch filter scale %v", a.fscale)
	}
	a.finv = 1 / a.fscale
	cnt := int(binary.LittleEndian.Uint32(hdr[53:]))
	if cnt > a.cap {
		return nil, fmt.Errorf("baselines: asketch filter count %d exceeds cap %d", cnt, a.cap)
	}
	a.filter = make(map[uint64]float64, a.cap)
	ent := make([]byte, 16)
	for i := 0; i < cnt; i++ {
		if _, err := io.ReadFull(r, ent); err != nil {
			return nil, fmt.Errorf("baselines: reading asketch filter entry %d: %w", i, err)
		}
		a.filter[binary.LittleEndian.Uint64(ent[0:])] = math.Float64frombits(binary.LittleEndian.Uint64(ent[8:]))
	}
	a.minKey, a.minAbs = a.scanMin()
	sk, err := countsketch.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	a.sk = sk
	return a, nil
}
