// Package baselines implements the two sketch-augmentation baselines the
// paper compares against in §8.3: Augmented Sketch (Roy, Khan, Alonso,
// SIGMOD 2016) and Cold Filter (Zhou et al., SIGMOD 2018), both adapted
// from frequency counting to the signed real-valued mean-estimation
// setting of this paper.
package baselines

import (
	"fmt"
	"math"

	"repro/internal/countsketch"
	"repro/internal/sketchapi"
)

// ASketch is the Augmented Sketch adaptation: a small exact filter holds
// the hottest keys outside the sketch; all other keys hit the backing
// count sketch. When a sketched key's estimate overtakes the smallest
// filter entry the two swap, moving the evicted entry's accumulated value
// back into the sketch and carving the promoted key's estimate out of it.
// Filtered keys therefore answer exactly, and the hottest keys stop
// polluting sketch buckets — the same collision-reduction goal ASCS
// pursues by gating insertions.
type ASketch struct {
	sk     *countsketch.Sketch
	filter map[uint64]float64
	cap    int
	invT   float64

	// cached (approximate) minimum |value| entry of the filter; verified
	// by a scan before any swap, so staleness only costs extra scans.
	minKey uint64
	minAbs float64
	t      int

	// slots is the reusable slot scratch of the fused offer methods
	// (single-writer by the Ingestor contract; kept off the stack so it
	// does not escape through the hash-family interface call).
	slots [countsketch.MaxTables]countsketch.Slot
}

var _ sketchapi.OfferEstimator = (*ASketch)(nil)

// NewASketch builds an Augmented Sketch engine. filterCap is the number
// of exact filter slots; totalSamples is the stream length T.
func NewASketch(cfg countsketch.Config, totalSamples, filterCap int) (*ASketch, error) {
	if totalSamples <= 0 {
		return nil, fmt.Errorf("baselines: totalSamples must be positive, got %d", totalSamples)
	}
	if filterCap < 1 {
		return nil, fmt.Errorf("baselines: filterCap must be ≥ 1, got %d", filterCap)
	}
	sk, err := countsketch.New(cfg)
	if err != nil {
		return nil, err
	}
	return &ASketch{
		sk:     sk,
		filter: make(map[uint64]float64, filterCap),
		cap:    filterCap,
		invT:   1 / float64(totalSamples),
		minAbs: math.Inf(1),
	}, nil
}

// BeginStep records the time step (unused beyond bookkeeping).
func (a *ASketch) BeginStep(t int) { a.t = t }

// Offer routes the observation to the filter when the key is hot,
// otherwise through the sketch with a promotion check. Sketched keys are
// hashed once: the insert, the promotion-check estimate, and a possible
// promotion carve-out all reuse one Locate.
func (a *ASketch) Offer(key uint64, x float64) {
	v := x * a.invT
	if cur, ok := a.filter[key]; ok {
		a.bumpFilter(key, cur+v)
		return
	}
	a.sk.Locate(key, &a.slots)
	a.sk.AddSlots(&a.slots, v)
	a.offerSketched(key, &a.slots)
}

// OfferEstimate implements sketchapi.OfferEstimator: Offer plus the
// post-offer estimate off a single Locate of the key.
func (a *ASketch) OfferEstimate(key uint64, x float64) (float64, bool) {
	v := x * a.invT
	if cur, ok := a.filter[key]; ok {
		nv := cur + v
		a.bumpFilter(key, nv)
		a.sk.Locate(key, &a.slots)
		return nv + a.sk.EstimateSlots(&a.slots), true
	}
	a.sk.Locate(key, &a.slots)
	a.sk.AddSlots(&a.slots, v)
	est, promoted := a.offerSketched(key, &a.slots)
	if promoted {
		// Filtered keys answer their exact value plus the sketch residual.
		return est + a.sk.EstimateSlots(&a.slots), true
	}
	return est, true
}

// OfferPairs implements the batch fast path for one time step.
func (a *ASketch) OfferPairs(keys []uint64, xs []float64, ests []float64) {
	for i, key := range keys {
		if ests != nil {
			ests[i], _ = a.OfferEstimate(key, xs[i])
		} else {
			a.Offer(key, xs[i])
		}
	}
}

// bumpFilter updates a filtered key's value, keeping the cached minimum
// honest when the minimum itself moved.
func (a *ASketch) bumpFilter(key uint64, nv float64) {
	a.filter[key] = nv
	if key == a.minKey {
		a.minAbs = math.Abs(nv)
	} else if math.Abs(nv) < a.minAbs {
		a.minKey, a.minAbs = key, math.Abs(nv)
	}
}

// offerSketched runs the promotion check after a sketch insert through
// slots, returning the post-insert estimate and whether key was
// promoted into the filter.
func (a *ASketch) offerSketched(key uint64, slots *[countsketch.MaxTables]countsketch.Slot) (est float64, promoted bool) {
	est = a.sk.EstimateSlots(slots)
	if len(a.filter) < a.cap {
		a.promote(key, est, slots)
		return est, true
	}
	if math.Abs(est) <= a.minAbs {
		return est, false
	}
	// Verify against the true minimum (the cache may be stale-low).
	minKey, minAbs := a.scanMin()
	a.minKey, a.minAbs = minKey, minAbs
	if math.Abs(est) <= minAbs {
		return est, false
	}
	// Swap: evicted entry's mass returns to the sketch; the promoted
	// key's estimated mass leaves it.
	evicted := a.filter[minKey]
	delete(a.filter, minKey)
	a.sk.Add(minKey, evicted)
	a.promote(key, est, slots)
	return est, true
}

// promote moves key into the filter with value est, removing est from
// the sketch so the mass is represented exactly once.
func (a *ASketch) promote(key uint64, est float64, slots *[countsketch.MaxTables]countsketch.Slot) {
	a.sk.AddSlots(slots, -est)
	a.filter[key] = est
	if math.Abs(est) < a.minAbs || len(a.filter) == 1 {
		a.minKey, a.minAbs = key, math.Abs(est)
	}
}

func (a *ASketch) scanMin() (uint64, float64) {
	minKey, minAbs := uint64(0), math.Inf(1)
	for k, v := range a.filter {
		if av := math.Abs(v); av < minAbs {
			minKey, minAbs = k, av
		}
	}
	return minKey, minAbs
}

// Estimate answers exactly for filtered keys, with the residual sketch
// estimate added in case mass was left behind before promotion, and from
// the sketch otherwise.
func (a *ASketch) Estimate(key uint64) float64 {
	if v, ok := a.filter[key]; ok {
		return v + a.sk.Estimate(key)
	}
	return a.sk.Estimate(key)
}

// FilterLen returns the current number of filtered keys.
func (a *ASketch) FilterLen() int { return len(a.filter) }

// Bytes accounts the sketch plus 16 bytes (key+value) per filter slot.
func (a *ASketch) Bytes() int { return a.sk.Bytes() + 16*a.cap }

// Name identifies the engine.
func (a *ASketch) Name() string { return "ASketch" }
