// Package baselines implements the two sketch-augmentation baselines the
// paper compares against in §8.3: Augmented Sketch (Roy, Khan, Alonso,
// SIGMOD 2016) and Cold Filter (Zhou et al., SIGMOD 2018), both adapted
// from frequency counting to the signed real-valued mean-estimation
// setting of this paper.
package baselines

import (
	"fmt"
	"math"

	"repro/internal/countsketch"
	"repro/internal/sketchapi"
)

// ASketch is the Augmented Sketch adaptation: a small exact filter holds
// the hottest keys outside the sketch; all other keys hit the backing
// count sketch. When a sketched key's estimate overtakes the smallest
// filter entry the two swap, moving the evicted entry's accumulated value
// back into the sketch and carving the promoted key's estimate out of it.
// Filtered keys therefore answer exactly, and the hottest keys stop
// polluting sketch buckets — the same collision-reduction goal ASCS
// pursues by gating insertions.
type ASketch struct {
	sk     *countsketch.Sketch
	filter map[uint64]float64
	cap    int
	invT   float64

	// cached (approximate) minimum |value| entry of the filter; verified
	// by a scan before any swap, so staleness only costs extra scans.
	minKey uint64
	minAbs float64
	t      int
}

var _ sketchapi.Ingestor = (*ASketch)(nil)

// NewASketch builds an Augmented Sketch engine. filterCap is the number
// of exact filter slots; totalSamples is the stream length T.
func NewASketch(cfg countsketch.Config, totalSamples, filterCap int) (*ASketch, error) {
	if totalSamples <= 0 {
		return nil, fmt.Errorf("baselines: totalSamples must be positive, got %d", totalSamples)
	}
	if filterCap < 1 {
		return nil, fmt.Errorf("baselines: filterCap must be ≥ 1, got %d", filterCap)
	}
	sk, err := countsketch.New(cfg)
	if err != nil {
		return nil, err
	}
	return &ASketch{
		sk:     sk,
		filter: make(map[uint64]float64, filterCap),
		cap:    filterCap,
		invT:   1 / float64(totalSamples),
		minAbs: math.Inf(1),
	}, nil
}

// BeginStep records the time step (unused beyond bookkeeping).
func (a *ASketch) BeginStep(t int) { a.t = t }

// Offer routes the observation to the filter when the key is hot,
// otherwise through the sketch with a promotion check.
func (a *ASketch) Offer(key uint64, x float64) {
	v := x * a.invT
	if cur, ok := a.filter[key]; ok {
		nv := cur + v
		a.filter[key] = nv
		// Keep the cached minimum honest when the minimum itself moved.
		if key == a.minKey {
			a.minAbs = math.Abs(nv)
		} else if math.Abs(nv) < a.minAbs {
			a.minKey, a.minAbs = key, math.Abs(nv)
		}
		return
	}
	a.sk.Add(key, v)
	if len(a.filter) < a.cap {
		est := a.sk.Estimate(key)
		a.promote(key, est)
		return
	}
	est := a.sk.Estimate(key)
	if math.Abs(est) <= a.minAbs {
		return
	}
	// Verify against the true minimum (the cache may be stale-low).
	minKey, minAbs := a.scanMin()
	a.minKey, a.minAbs = minKey, minAbs
	if math.Abs(est) <= minAbs {
		return
	}
	// Swap: evicted entry's mass returns to the sketch; the promoted
	// key's estimated mass leaves it.
	evicted := a.filter[minKey]
	delete(a.filter, minKey)
	a.sk.Add(minKey, evicted)
	a.promote(key, est)
}

// promote moves key into the filter with value est, removing est from
// the sketch so the mass is represented exactly once.
func (a *ASketch) promote(key uint64, est float64) {
	a.sk.Add(key, -est)
	a.filter[key] = est
	if math.Abs(est) < a.minAbs || len(a.filter) == 1 {
		a.minKey, a.minAbs = key, math.Abs(est)
	}
}

func (a *ASketch) scanMin() (uint64, float64) {
	minKey, minAbs := uint64(0), math.Inf(1)
	for k, v := range a.filter {
		if av := math.Abs(v); av < minAbs {
			minKey, minAbs = k, av
		}
	}
	return minKey, minAbs
}

// Estimate answers exactly for filtered keys, with the residual sketch
// estimate added in case mass was left behind before promotion, and from
// the sketch otherwise.
func (a *ASketch) Estimate(key uint64) float64 {
	if v, ok := a.filter[key]; ok {
		return v + a.sk.Estimate(key)
	}
	return a.sk.Estimate(key)
}

// FilterLen returns the current number of filtered keys.
func (a *ASketch) FilterLen() int { return len(a.filter) }

// Bytes accounts the sketch plus 16 bytes (key+value) per filter slot.
func (a *ASketch) Bytes() int { return a.sk.Bytes() + 16*a.cap }

// Name identifies the engine.
func (a *ASketch) Name() string { return "ASketch" }
