package baselines

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/sketchapi"
)

// driveLockstep offers an identical seeded stream to both engines,
// failing on any divergence in per-offer estimates.
func driveLockstep(t *testing.T, a, b sketchapi.OfferEstimator, steps, perStep int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for step := 1; step <= steps; step++ {
		a.BeginStep(step)
		b.BeginStep(step)
		for i := 0; i < perStep; i++ {
			k := rng.Uint64() % 4096
			v := rng.NormFloat64()
			if i == 0 {
				k, v = uint64(step%17), 1+rng.Float64() // recurring hot keys
			}
			ae, _ := a.OfferEstimate(k, v)
			be, _ := b.OfferEstimate(k, v)
			if math.Float64bits(ae) != math.Float64bits(be) {
				t.Fatalf("step %d key %d: estimates diverged: %v vs %v", step, k, ae, be)
			}
		}
	}
}

// assertSameEstimates compares point estimates over a key sweep, bitwise.
func assertSameEstimates(t *testing.T, a, b sketchapi.Ingestor, span uint64) {
	t.Helper()
	for k := uint64(0); k < span; k++ {
		if math.Float64bits(a.Estimate(k)) != math.Float64bits(b.Estimate(k)) {
			t.Fatalf("estimate for key %d diverged: %v vs %v", k, a.Estimate(k), b.Estimate(k))
		}
	}
}

// TestASketchDecayedLambda1Differential pins λ=1 decay mode to the
// fixed-horizon ASketch bit-for-bit, including the serialized form.
func TestASketchDecayedLambda1Differential(t *testing.T) {
	cfg := countsketch.Config{Tables: 5, Range: 512, Seed: 3}
	const T = 250
	fixed, err := NewASketch(cfg, T, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewASketchDecayed(cfg, T, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	driveLockstep(t, fixed, dec, T, 10, 51)
	assertSameEstimates(t, fixed, dec, 4096)
	var fb, db bytes.Buffer
	if _, err := fixed.WriteTo(&fb); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.WriteTo(&db); err != nil {
		t.Fatal(err)
	}
	// The engines share filter and table state; only the decay-mode flag
	// differs in the header (λ=1 must survive a restore).
	if bytes.Equal(fb.Bytes(), db.Bytes()) {
		t.Fatal("decay flag lost: serialized forms identical")
	}
	restored, err := ReadASketchFrom(&db)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Decaying() || restored.DecayFactor() != 1 {
		t.Fatalf("restored ASketch lost decay mode")
	}
	assertSameEstimates(t, dec, restored, 4096)
}

// TestColdFilterDecayedLambda1Differential is the same pin for the Cold
// Filter.
func TestColdFilterDecayedLambda1Differential(t *testing.T) {
	l1 := countsketch.Config{Tables: 3, Range: 128, Seed: 8}
	l2 := countsketch.Config{Tables: 5, Range: 512, Seed: 4}
	const T = 250
	fixed, err := NewColdFilter(l1, l2, T, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewColdFilterDecayed(l1, l2, T, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	driveLockstep(t, fixed, dec, T, 10, 53)
	assertSameEstimates(t, fixed, dec, 4096)
}

// TestASketchSnapshotRoundTrip serializes a live (actively decayed)
// ASketch mid-stream and continues original and restored in lockstep.
func TestASketchSnapshotRoundTrip(t *testing.T) {
	const window = 120
	lambda := 1 - 1.0/window
	orig, err := NewASketchDecayed(countsketch.Config{Tables: 4, Range: 256, Seed: 6}, window, 6, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	for step := 1; step <= 100; step++ {
		orig.BeginStep(step)
		for i := 0; i < 6; i++ {
			orig.Offer(rng.Uint64()%1024, rng.NormFloat64())
		}
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadASketchFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.FilterLen() != orig.FilterLen() {
		t.Fatalf("filter length diverged: %d vs %d", restored.FilterLen(), orig.FilterLen())
	}
	driveLockstep(t, orig, restored, 80, 6, 72)
	assertSameEstimates(t, orig, restored, 1024)
}

// TestColdFilterSnapshotRoundTrip is the same for the Cold Filter.
func TestColdFilterSnapshotRoundTrip(t *testing.T) {
	const window = 120
	lambda := 1 - 1.0/window
	l1 := countsketch.Config{Tables: 3, Range: 64, Seed: 5}
	l2 := countsketch.Config{Tables: 4, Range: 256, Seed: 9}
	orig, err := NewColdFilterDecayed(l1, l2, window, 0.02, lambda)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	for step := 1; step <= 100; step++ {
		orig.BeginStep(step)
		for i := 0; i < 6; i++ {
			orig.Offer(rng.Uint64()%1024, rng.NormFloat64())
		}
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadColdFilterFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.EffectiveSamples() != orig.EffectiveSamples() {
		t.Fatalf("N_eff diverged: %v vs %v", restored.EffectiveSamples(), orig.EffectiveSamples())
	}
	driveLockstep(t, orig, restored, 80, 6, 82)
	assertSameEstimates(t, orig, restored, 1024)
}

// TestBaselinesAgeOut checks the filters actually forget: a key that
// saturated the structures early decays away once it stops arriving.
func TestBaselinesAgeOut(t *testing.T) {
	const window = 40
	lambda := 1 - 1.0/window
	ask, err := NewASketchDecayed(countsketch.Config{Tables: 4, Range: 512, Seed: 2}, window, 4, lambda)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := NewColdFilterDecayed(
		countsketch.Config{Tables: 3, Range: 128, Seed: 7},
		countsketch.Config{Tables: 4, Range: 512, Seed: 1},
		window, 0.01, lambda)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []sketchapi.Decayer{ask, cf} {
		for step := 1; step <= window; step++ {
			eng.BeginStep(step)
			eng.Offer(42, 5)
		}
		peak := eng.Estimate(42)
		if peak <= 0 {
			t.Fatalf("%s: no mass accumulated", eng.Name())
		}
		eng.BeginStep(window * 8) // long silence
		if got := eng.Estimate(42); math.Abs(got) > math.Abs(peak)*0.01 {
			t.Fatalf("%s: estimate %v did not age out from peak %v", eng.Name(), got, peak)
		}
	}
}
