package baselines

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/sketchapi"
)

// sketchBytes serializes a raw count sketch for bit-level comparison.
func sketchBytes(t *testing.T, s *countsketch.Sketch) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// driveDifferential replays one seeded stream through engine a per-call
// (Offer then Estimate — the pre-fusion covstream sequence) and through
// engine b's OfferEstimate, requiring bit-identical estimates per offer.
// The key universe is small so the ASketch filter churns (promotions,
// swaps) and the Cold Filter saturates keys into layer 2.
func driveDifferential(t *testing.T, a, b sketchapi.OfferEstimator) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	const steps, offersPerStep = 300, 24
	for step := 1; step <= steps; step++ {
		a.BeginStep(step)
		b.BeginStep(step)
		for o := 0; o < offersPerStep; o++ {
			key := rng.Uint64() % 256
			x := rng.NormFloat64()
			if key < 8 {
				x += 5 // a few persistent heavy keys drive promotions/saturation
			}
			a.Offer(key, x)
			ea := a.Estimate(key)
			eb, admitted := b.OfferEstimate(key, x)
			if !admitted {
				t.Fatalf("%s: ungated engine reported a rejected offer", a.Name())
			}
			if math.Float64bits(ea) != math.Float64bits(eb) {
				t.Fatalf("%s step %d offer %d key %d: per-call est %v, fused est %v",
					a.Name(), step, o, key, ea, eb)
			}
		}
	}
}

func newTestASketch(t *testing.T) *ASketch {
	t.Helper()
	a, err := NewASketch(countsketch.Config{Tables: 5, Range: 256, Seed: 31}, 7200, 6)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestASketchOfferEstimateBitIdentical(t *testing.T) {
	a, b := newTestASketch(t), newTestASketch(t)
	driveDifferential(t, a, b)
	if !bytes.Equal(sketchBytes(t, a.sk), sketchBytes(t, b.sk)) {
		t.Fatal("ASketch backing sketches diverged between per-call and fused paths")
	}
	if len(a.filter) != len(b.filter) {
		t.Fatalf("filter sizes diverged: %d vs %d", len(a.filter), len(b.filter))
	}
	for k, v := range a.filter {
		if bv, ok := b.filter[k]; !ok || math.Float64bits(v) != math.Float64bits(bv) {
			t.Fatalf("filter entry %d diverged: %v vs %v (present=%v)", k, v, bv, ok)
		}
	}
}

func newTestColdFilter(t *testing.T) *ColdFilter {
	t.Helper()
	l1 := countsketch.Config{Tables: 5, Range: 64, Seed: 41}
	l2 := countsketch.Config{Tables: 5, Range: 256, Seed: 42}
	c, err := NewColdFilter(l1, l2, 7200, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColdFilterOfferEstimateBitIdentical(t *testing.T) {
	a, b := newTestColdFilter(t), newTestColdFilter(t)
	driveDifferential(t, a, b)
	if !bytes.Equal(sketchBytes(t, a.l1), sketchBytes(t, b.l1)) {
		t.Fatal("ColdFilter layer-1 sketches diverged between per-call and fused paths")
	}
	if !bytes.Equal(sketchBytes(t, a.l2), sketchBytes(t, b.l2)) {
		t.Fatal("ColdFilter layer-2 sketches diverged between per-call and fused paths")
	}
	if sum := a.l2.L2Norm(); sum == 0 {
		t.Fatal("layer 2 never saw an overflow; saturation branch untested")
	}
}

// TestBaselineOfferPairsMatchesPerCall replays the stream through the
// batch entry point in random chunks and compares the final sketch state
// and per-offer estimates against the per-call twin.
func TestBaselineOfferPairsMatchesPerCall(t *testing.T) {
	engines := []struct {
		name string
		a, b sketchapi.OfferEstimator
		tabs func(e sketchapi.OfferEstimator) []*countsketch.Sketch
	}{
		{
			name: "ASketch",
			a:    newTestASketch(t), b: newTestASketch(t),
			tabs: func(e sketchapi.OfferEstimator) []*countsketch.Sketch { return []*countsketch.Sketch{e.(*ASketch).sk} },
		},
		{
			name: "ColdFilter",
			a:    newTestColdFilter(t), b: newTestColdFilter(t),
			tabs: func(e sketchapi.OfferEstimator) []*countsketch.Sketch {
				cf := e.(*ColdFilter)
				return []*countsketch.Sketch{cf.l1, cf.l2}
			},
		},
	}
	for _, tc := range engines {
		rng := rand.New(rand.NewSource(23))
		chunkRng := rand.New(rand.NewSource(5))
		const steps, offersPerStep = 200, 24
		keys := make([]uint64, offersPerStep)
		xs := make([]float64, offersPerStep)
		want := make([]float64, offersPerStep)
		got := make([]float64, offersPerStep)
		for step := 1; step <= steps; step++ {
			tc.a.BeginStep(step)
			tc.b.BeginStep(step)
			for o := 0; o < offersPerStep; o++ {
				keys[o] = rng.Uint64() % 256
				xs[o] = rng.NormFloat64()
				if keys[o] < 8 {
					xs[o] += 5
				}
				want[o], _ = tc.a.OfferEstimate(keys[o], xs[o])
			}
			for lo := 0; lo < offersPerStep; {
				hi := lo + 1 + chunkRng.Intn(offersPerStep)
				if hi > offersPerStep {
					hi = offersPerStep
				}
				tc.b.OfferPairs(keys[lo:hi], xs[lo:hi], got[lo:hi])
				lo = hi
			}
			for o := 0; o < offersPerStep; o++ {
				if math.Float64bits(want[o]) != math.Float64bits(got[o]) {
					t.Fatalf("%s step %d offer %d: per-call est %v, batch est %v", tc.name, step, o, want[o], got[o])
				}
			}
		}
		ta, tb := tc.tabs(tc.a), tc.tabs(tc.b)
		for i := range ta {
			if !bytes.Equal(sketchBytes(t, ta[i]), sketchBytes(t, tb[i])) {
				t.Fatalf("%s table %d diverged between per-call and batch paths", tc.name, i)
			}
		}
	}
}
