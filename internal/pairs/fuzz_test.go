package pairs

import "testing"

// FuzzIndexDecode exercises the bijection across arbitrary dimensions
// and indices, including extremes near the int64 capacity.
func FuzzIndexDecode(f *testing.F) {
	f.Add(uint32(2), uint64(0))
	f.Add(uint32(1000), uint64(499499))
	f.Add(uint32(40_000_000), uint64(1)<<49)
	f.Fuzz(func(t *testing.T, rawD uint32, rawI uint64) {
		d := int(rawD%50_000_000) + 2
		p := Count(d)
		i := int64(rawI % uint64(p))
		a, b := Decode(i, d)
		if a < 0 || a >= b || b >= d {
			t.Fatalf("Decode(%d, %d) = (%d, %d) out of range", i, d, a, b)
		}
		if got := Index(a, b, d); got != i {
			t.Fatalf("round trip: Decode(%d,%d)=(%d,%d) but Index=%d", i, d, a, b, got)
		}
	})
}
