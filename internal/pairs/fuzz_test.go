package pairs

import "testing"

// FuzzIndexDecode exercises the bijection across arbitrary dimensions
// and indices, including extremes near the int64 capacity.
func FuzzIndexDecode(f *testing.F) {
	f.Add(uint32(2), uint64(0))
	f.Add(uint32(1000), uint64(499499))
	f.Add(uint32(40_000_000), uint64(1)<<49)
	f.Fuzz(func(t *testing.T, rawD uint32, rawI uint64) {
		d := int(rawD%50_000_000) + 2
		p := Count(d)
		i := int64(rawI % uint64(p))
		a, b := Decode(i, d)
		if a < 0 || a >= b || b >= d {
			t.Fatalf("Decode(%d, %d) = (%d, %d) out of range", i, d, a, b)
		}
		if got := Index(a, b, d); got != i {
			t.Fatalf("round trip: Decode(%d,%d)=(%d,%d) but Index=%d", i, d, a, b, got)
		}
	})
}

// FuzzRowBaseRoundTrip ties the three primitives together: for any
// dimension and in-range index, Decode must invert Index AND the
// hot-loop identity Index(a, b, d) = RowBase(a, d) + b must hold —
// both in int64 arithmetic and under the wrapping uint64 add the row
// ingest path uses (RowBase(0, d) is −1, i.e. an all-ones key base,
// so base+partner must wrap mod 2^64 back to the true key). A slice
// of the corpus is pinned to the 2^26 neighborhood, the dimension
// scale the trillion-pair covariance workloads target.
func FuzzRowBaseRoundTrip(f *testing.F) {
	f.Add(uint32(2), uint64(0))
	f.Add(uint32(1<<26), uint64(0))
	f.Add(uint32(1<<26-1), uint64(1)<<51)
	f.Add(uint32(1<<26+1), uint64(1)<<50)
	f.Add(uint32(67_108_863), ^uint64(0))
	f.Fuzz(func(t *testing.T, rawD uint32, rawI uint64) {
		d := int(rawD%(1<<27)) + 2
		if rawI%5 == 0 {
			// Bias a fifth of the corpus into d ≈ 2^26 so the quadratic
			// Decode guess is exercised where float64 rounding of
			// (2d−1)² − 8i is tightest relative to the row starts.
			d = 1<<26 - 64 + int(rawD%129)
		}
		p := Count(d)
		i := int64(rawI % uint64(p))
		a, b := Decode(i, d)
		if a < 0 || a >= b || b >= d {
			t.Fatalf("Decode(%d, %d) = (%d, %d) out of range", i, d, a, b)
		}
		if got := Index(a, b, d); got != i {
			t.Fatalf("Decode(%d,%d)=(%d,%d) but Index=%d", i, d, a, b, got)
		}
		base := RowBase(a, d)
		if got := base + int64(b); got != i {
			t.Fatalf("RowBase(%d,%d)+%d = %d, want %d", a, d, b, got, i)
		}
		if got := uint64(base) + uint64(b); got != uint64(i) {
			t.Fatalf("wrapping key base: uint64(RowBase(%d,%d))+%d = %d, want %d",
				a, d, b, got, uint64(i))
		}
	})
}
