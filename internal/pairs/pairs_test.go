package pairs

import (
	"testing"
	"testing/quick"
)

func TestCount(t *testing.T) {
	cases := []struct {
		d    int
		want int64
	}{
		{2, 1}, {3, 3}, {4, 6}, {1000, 499500}, {1 << 20, 549755289600},
	}
	for _, c := range cases {
		if got := Count(c.d); got != c.want {
			t.Errorf("Count(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestIndexSequential(t *testing.T) {
	// Indices must enumerate 0..p-1 in (a, then b) order.
	const d = 9
	want := int64(0)
	ForEach(d, func(a, b int, idx int64) bool {
		if idx != want {
			t.Fatalf("ForEach idx = %d, want %d", idx, want)
		}
		if got := Index(a, b, d); got != want {
			t.Fatalf("Index(%d,%d) = %d, want %d", a, b, got, want)
		}
		want++
		return true
	})
	if want != Count(d) {
		t.Fatalf("enumerated %d pairs, want %d", want, Count(d))
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	for _, d := range []int{2, 3, 10, 57, 1000} {
		for i := int64(0); i < Count(d); i++ {
			a, b := Decode(i, d)
			if a < 0 || a >= b || b >= d {
				t.Fatalf("Decode(%d, %d) = (%d,%d) invalid", i, d, a, b)
			}
			if got := Index(a, b, d); got != i {
				t.Fatalf("round trip failed: Decode(%d,%d)=(%d,%d), Index=%d", i, d, a, b, got)
			}
		}
	}
}

func TestDecodeRoundTripLargeD(t *testing.T) {
	// Spot-check huge dimensions where float rounding in Decode's initial
	// guess could bite.
	const d = 40_000_000
	idxs := []int64{0, 1, int64(d) - 2, Count(d) - 1, Count(d) / 2, 123456789012}
	for _, i := range idxs {
		a, b := Decode(i, d)
		if got := Index(a, b, d); got != i {
			t.Fatalf("d=%d: Decode(%d) = (%d,%d) -> Index %d", d, i, a, b, got)
		}
	}
}

func TestDecodeRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(rawD uint16, rawI uint64) bool {
		d := int(rawD)%5000 + 2
		i := int64(rawI % uint64(Count(d)))
		a, b := Decode(i, d)
		return Index(a, b, d) == i && a < b && b < d
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestIndexPanicsOnInvalid(t *testing.T) {
	for _, c := range [][3]int{{1, 1, 3}, {2, 1, 3}, {-1, 1, 3}, {0, 3, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%d,%d,%d) should panic", c[0], c[1], c[2])
				}
			}()
			Index(c[0], c[1], c[2])
		}()
	}
}

func TestDecodePanicsOutOfRange(t *testing.T) {
	for _, i := range []int64{-1, Count(5)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Decode(%d, 5) should panic", i)
				}
			}()
			Decode(i, 5)
		}()
	}
}

func TestKeyMatchesIndex(t *testing.T) {
	if Key(2, 5, 10) != uint64(Index(2, 5, 10)) {
		t.Error("Key should equal Index as uint64")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	n := 0
	ForEach(10, func(a, b int, idx int64) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("visited %d pairs, want 7", n)
	}
}

func BenchmarkIndex(b *testing.B) {
	const d = 1 << 20
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += Index(i%100, i%100+1+i%50, d)
	}
	_ = sink
}

func BenchmarkDecode(b *testing.B) {
	const d = 1 << 20
	p := Count(d)
	var sink int
	for i := 0; i < b.N; i++ {
		a, bb := Decode(int64(i)%p, d)
		sink += a + bb
	}
	_ = sink
}
