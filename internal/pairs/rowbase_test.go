package pairs

import (
	"math/rand"
	"testing"
)

// TestRowBaseMatchesIndex checks the hot-loop identity
// Index(a, b, d) = RowBase(a, d) + b over exhaustive small dimensions
// and random large ones.
func TestRowBaseMatchesIndex(t *testing.T) {
	for d := 2; d <= 40; d++ {
		for a := 0; a < d-1; a++ {
			base := RowBase(a, d)
			for b := a + 1; b < d; b++ {
				if got, want := base+int64(b), Index(a, b, d); got != want {
					t.Fatalf("d=%d (%d,%d): RowBase+b=%d, Index=%d", d, a, b, got, want)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		d := 2 + rng.Intn(50_000_000)
		a := rng.Intn(d - 1)
		b := a + 1 + rng.Intn(d-a-1)
		if got, want := RowBase(a, d)+int64(b), Index(a, b, d); got != want {
			t.Fatalf("d=%d (%d,%d): RowBase+b=%d, Index=%d", d, a, b, got, want)
		}
	}
}

// TestRowBasePanicsOnInvalidRow pins the precondition: a row must have
// at least one pair.
func TestRowBasePanicsOnInvalidRow(t *testing.T) {
	for _, tc := range []struct{ a, d int }{{-1, 10}, {9, 10}, {10, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RowBase(%d, %d) did not panic", tc.a, tc.d)
				}
			}()
			RowBase(tc.a, tc.d)
		}()
	}
}
