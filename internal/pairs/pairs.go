// Package pairs provides the canonical bijection between unordered
// feature pairs (a, b), 0 ≤ a < b < d, and linear indices
// i ∈ [0, d(d−1)/2). The linear index doubles as the uint64 key hashed by
// the sketches, so the mapping must be stable, collision-free, and fast
// in both directions even for d in the tens of millions (p up to ~10^14,
// comfortably inside int64).
package pairs

import (
	"fmt"
	"math"
)

// Count returns p = d(d−1)/2, the number of unordered pairs over d items.
func Count(d int) int64 {
	n := int64(d)
	return n * (n - 1) / 2
}

// Index returns the linear index of the pair (a, b) with a < b over d
// items: pairs are ordered row-major by their smaller element, i.e.
// (0,1), (0,2), …, (0,d−1), (1,2), …
// It panics when the arguments do not satisfy 0 ≤ a < b < d; callers
// enumerate pairs programmatically, so violations are programmer errors.
func Index(a, b, d int) int64 {
	if a < 0 || a >= b || b >= d {
		panic(fmt.Sprintf("pairs: invalid pair (%d,%d) for d=%d", a, b, d))
	}
	ai, bi, di := int64(a), int64(b), int64(d)
	// Pairs preceding row a: sum_{r<a} (d-1-r) = a(d-1) - a(a-1)/2.
	return ai*(di-1) - ai*(ai-1)/2 + (bi - ai - 1)
}

// Key returns Index(a, b, d) as the uint64 sketch key.
func Key(a, b, d int) uint64 { return uint64(Index(a, b, d)) }

// RowBase returns the row offset of a such that for every b with
// a < b < d, Index(a, b, d) = RowBase(a, d) + b. Pair indices are
// row-major, so enumerating the partners of a fixed a only needs this
// one base plus the partner index — the hot ingest loops use it to
// replace the per-pair Index multiply/divide with an add. Requires
// 0 ≤ a < d−1 (a row with at least one pair); the result may be −1
// (for a = 0), never less.
func RowBase(a, d int) int64 {
	if a < 0 || a >= d-1 {
		panic(fmt.Sprintf("pairs: invalid row %d for d=%d", a, d))
	}
	return rowStart(a, d) - int64(a) - 1
}

// Decode inverts Index: it returns the (a, b) with a < b whose linear
// index is i. It panics when i is out of range for d.
func Decode(i int64, d int) (a, b int) {
	p := Count(d)
	if i < 0 || i >= p {
		panic(fmt.Sprintf("pairs: index %d out of range for d=%d (p=%d)", i, d, p))
	}
	// Solve a(d-1) - a(a-1)/2 ≤ i for the largest a. Use the quadratic
	// formula for a first guess, then fix up (float error is at most ±1).
	di := float64(d)
	// offset(a) = a*d - a(a+1)/2; we want largest a with offset(a) ≤ i.
	guess := int(math.Floor((2*di - 1 - math.Sqrt((2*di-1)*(2*di-1)-8*float64(i))) / 2))
	if guess < 0 {
		guess = 0
	}
	if guess > d-2 {
		guess = d - 2
	}
	for guess > 0 && rowStart(guess, d) > i {
		guess--
	}
	for guess < d-2 && rowStart(guess+1, d) <= i {
		guess++
	}
	a = guess
	b = a + 1 + int(i-rowStart(a, d))
	return a, b
}

// rowStart returns the linear index of pair (a, a+1).
func rowStart(a, d int) int64 {
	ai, di := int64(a), int64(d)
	return ai*(di-1) - ai*(ai-1)/2
}

// ForEach invokes fn for every pair (a, b) with a < b over d items, in
// index order. fn returning false stops the iteration early.
func ForEach(d int, fn func(a, b int, idx int64) bool) {
	idx := int64(0)
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			if !fn(a, b, idx) {
				return
			}
			idx++
		}
	}
}
