package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/outersketch"
	"repro/internal/pairs"
	"repro/internal/topk"
)

// AblationPagh compares the two ways of count-sketching a covariance
// stream that the paper's §2 discusses, at equal memory on the dense
// epsilon-like dataset:
//
//   - explicit pair enumeration (the paper's path, O(nz²) per sample),
//     which supports ASCS's per-pair gating; and
//   - Pagh's compressed outer product (O(nz + R log R) per sample via
//     FFT), which is much faster on dense data but must ingest
//     everything — no active sampling is possible.
//
// Expected shape: comparable accuracy for plain CS vs Pagh (both are
// count sketches of the same signal), a large insertion-speed win for
// Pagh on dense samples, and ASCS ahead of both on accuracy.
func AblationPagh(opt Options, w io.Writer) (AblationResult, error) {
	res := AblationResult{Study: "pair enumeration vs Pagh outer-product (epsilon-like, top 0.1·αp mean corr)"}
	ds := dataset.EpsilonLike(opt.Scale, opt.Seed)
	samples, err := standardized(ds)
	if err != nil {
		return res, err
	}
	d := ds.Dim
	p := pairs.Count(d)
	// Power-of-two range near p/RDivisor for a fair memory match.
	r := 2
	for r*2 <= int(p)/opt.RDivisor {
		r *= 2
	}
	truth, err := trueCorrOf(ds)
	if err != nil {
		return res, err
	}
	topK := int(0.1 * ds.Alpha * float64(p))
	if topK < 1 {
		topK = 1
	}

	// Pair-enumeration engines: CS and ASCS.
	for _, build := range []struct {
		name string
		mk   func() (interface{}, error)
	}{
		{"CS-pairs", func() (interface{}, error) { return newCS(len(samples), opt.K, r, uint64(opt.Seed)) }},
		{"ASCS-pairs", func() (interface{}, error) {
			eng, _, err := engineSetup(samples, d, ds.Alpha, opt.K, r, uint64(opt.Seed))
			return eng, err
		}},
	} {
		engAny, err := build.mk()
		if err != nil {
			return res, err
		}
		eng := engAny.(interface {
			BeginStep(int)
			Offer(uint64, float64)
			Estimate(uint64) float64
			Bytes() int
			Name() string
		})
		est, dur, err := runEngine(samples, d, eng, 0)
		if err != nil {
			return res, err
		}
		ranked, err := est.RankedKeys()
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:     build.name,
			MeanTopCorr: eval.MeanTrueScore(ranked, topK, truth),
			Note:        fmt.Sprintf("insert %.3fs, %s", dur.Seconds(), fmtBytes(eng.Bytes())),
		})
	}

	// Pagh outer-product sketch at the same K×R memory.
	outer, err := outersketch.New(outersketch.Config{Tables: opt.K, Range: r, Seed: uint64(opt.Seed)})
	if err != nil {
		return res, err
	}
	invT := 1 / float64(len(samples))
	start := time.Now()
	for _, s := range samples {
		if err := outer.AddOuter(s, invT); err != nil {
			return res, err
		}
	}
	outerDur := time.Since(start)
	h := topk.NewHeap(int(p))
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			h.Push(pairs.Key(a, b, d), outer.Estimate(a, b))
		}
	}
	items := h.SortedDesc()
	ranked := make([]uint64, len(items))
	for i, it := range items {
		ranked[i] = it.Key
	}
	res.Rows = append(res.Rows, AblationRow{
		Variant:     "Pagh-outer",
		MeanTopCorr: eval.MeanTrueScore(ranked, topK, truth),
		Note:        fmt.Sprintf("insert %.3fs, %s (no gating possible)", outerDur.Seconds(), fmtBytes(outer.Bytes())),
	})
	res.print(w)
	return res, nil
}
