package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/pairs"
	"repro/internal/stream"
)

// theoremBench is the shared fixture for the theorem-validation
// experiments (Table 1) and the SNR experiment (Figure 5): a small
// dataset with known signal pairs, standardized samples, and the model
// parameters (u, σ, α) the §6 theory consumes.
type theoremBench struct {
	name       string
	d          int
	samples    []stream.Sample
	signalKeys []uint64
	params     core.Params // Delta/DeltaStar filled by the caller
}

// newTheoremBench builds the fixture for "simulation" or "gisette".
func newTheoremBench(which string, d, T int, seed int64) (*theoremBench, error) {
	var ds *dataset.Dataset
	if which == "gisette" {
		base := dataset.GisetteLike(dataset.Scale{Dim: d, Samples: T}, seed)
		ds = base
	} else {
		ds = dataset.Simulation(d, T, 0.005, seed)
	}
	samples, err := standardized(ds)
	if err != nil {
		return nil, err
	}
	corr, err := ds.Corr()
	if err != nil {
		return nil, err
	}
	// Signal set: pairs with |corr| ≥ 0.4; u is their minimum strength
	// (§7.2 relaxation 1: a lower bound on signal strength).
	var signalKeys []uint64
	u := math.Inf(1)
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			c := math.Abs(corr.At(a, b))
			if c >= 0.4 {
				signalKeys = append(signalKeys, pairs.Key(a, b, d))
				if c < u {
					u = c
				}
			}
		}
	}
	if len(signalKeys) == 0 {
		return nil, fmt.Errorf("experiments: %s bench has no signal pairs", which)
	}
	// σ²: §7.2 relaxation 2 uses the average Var(X_i) over all pairs. On
	// sparse data that average is dominated by pairs that are almost
	// always zero and badly understates the *signal* pairs' own sampling
	// variance — which is what Theorems 1–2 are protecting. The bench
	// therefore takes the conservative max of the two (larger σ ⇒ longer
	// exploration and gentler threshold, never the reverse).
	p := pairs.Count(d)
	prefix := 100
	if prefix > len(samples) {
		prefix = len(samples)
	}
	isSignal := map[uint64]bool{}
	for _, k := range signalKeys {
		isSignal[k] = true
	}
	sumX2, sigSumX2 := 0.0, 0.0
	for _, s := range samples[:prefix] {
		for i := 0; i < len(s.Idx); i++ {
			for j := i + 1; j < len(s.Idx); j++ {
				v := s.Val[i] * s.Val[j]
				sumX2 += v * v
				if isSignal[pairs.Key(s.Idx[i], s.Idx[j], d)] {
					sigSumX2 += v * v
				}
			}
		}
	}
	sigma := math.Sqrt(sumX2 / (float64(p) * float64(prefix)))
	sigSigma := math.Sqrt(sigSumX2 / (float64(len(signalKeys)) * float64(prefix)))
	if sigSigma > sigma {
		sigma = sigSigma
	}
	if sigma <= 0 {
		sigma = 1
	}
	alpha := float64(len(signalKeys)) / float64(p)
	r := int(p) / 20
	if r < 8 {
		r = 8
	}
	return &theoremBench{
		name:       which,
		d:          d,
		samples:    samples,
		signalKeys: signalKeys,
		params: core.Params{
			P: p, T: len(samples), K: 5, R: r,
			U: u, Sigma: sigma, Alpha: alpha,
			Tau0: 1e-4, Gamma: 30,
		},
	}, nil
}

// runSchedule replays the bench stream through an ASCS engine with the
// given schedule and reports, over the signal set: how many signals were
// rejected at the first sampling step (the Theorem 1 event, counted over
// all signals) and how many of the T0-survivors were rejected at some
// later step (the Theorem 2 event, counted over the I(i) = 0 signals —
// those colliding with no other signal in any table — exactly the
// population Theorem 2 bounds). totalLater is the size of that
// collision-free survivor population.
func (tb *theoremBench) runSchedule(hp core.Hyperparams, seed uint64) (missedAtT0, missedLater, total, totalLater int, err error) {
	eng, err := core.NewEngine(countsketch.Config{Tables: tb.params.K, Range: tb.params.R, Seed: seed}, hp, true)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	// I(i) = 0 detection: a signal is collision-free when no other
	// signal shares its bucket in any table.
	sk := eng.Sketch()
	collisionFree := map[uint64]bool{}
	for _, key := range tb.signalKeys {
		collisionFree[key] = true
	}
	for e := 0; e < sk.K(); e++ {
		occupied := map[int]uint64{}
		for _, key := range tb.signalKeys {
			b := sk.BucketOf(e, key)
			if other, ok := occupied[b]; ok {
				collisionFree[key] = false
				collisionFree[other] = false
				continue
			}
			occupied[b] = key
		}
	}

	survivors := map[uint64]bool{}
	dropped := map[uint64]bool{}
	d := tb.d
	for t := 1; t <= len(tb.samples); t++ {
		eng.BeginStep(t)
		if t == hp.T0+1 {
			for _, key := range tb.signalKeys {
				if eng.Admits(key) {
					if collisionFree[key] {
						survivors[key] = true
						totalLater++
					}
				} else {
					missedAtT0++
				}
			}
		} else if t > hp.T0+1 {
			for key := range survivors {
				if !dropped[key] && !eng.Admits(key) {
					dropped[key] = true
					missedLater++
				}
			}
		}
		s := tb.samples[t-1]
		for i := 0; i < len(s.Idx); i++ {
			for j := i + 1; j < len(s.Idx); j++ {
				eng.Offer(pairs.Key(s.Idx[i], s.Idx[j], d), s.Val[i]*s.Val[j])
			}
		}
	}
	return missedAtT0, missedLater, len(tb.signalKeys), totalLater, nil
}

// Table1Row is one validated bound.
type Table1Row struct {
	Dataset string
	// Kind is "delta" (Theorem 1, miss at T0) or "deltaStar-delta"
	// (Theorem 2, miss during sampling).
	Kind   string
	Target float64
	Real   float64
}

// Table1Result collects all rows.
type Table1Result struct {
	Rows []Table1Row
}

// table1DeltaGrid and table1Theta2Grid are the paper's Table 1 targets.
var (
	table1DeltaGrid = []float64{0.05, 0.06, 0.07, 0.08, 0.09, 0.10}
	table1T2Grid    = []float64{0.05, 0.07, 0.09, 0.11, 0.13, 0.15}
)

// Table1 reproduces Table 1: the observed probability of missing a
// signal at T0 stays below the Theorem 1 target δ, and the observed
// probability of dropping a signal during sampling stays below the
// Theorem 2 target δ*−δ, across a grid of targets.
func Table1(opt Options, w io.Writer) (Table1Result, error) {
	var res Table1Result
	reps := opt.Reps / 20
	if reps < 1 {
		reps = 1
	}
	d := 50
	T := opt.Scale.Samples
	if T > 1500 {
		T = 1500
	}
	for _, which := range []string{"simulation", "gisette"} {
		tb, err := newTheoremBench(which, d, T, opt.Seed)
		if err != nil {
			return res, err
		}
		// Theorem 1 sweep: vary δ, fixed θ budget 0.15.
		for _, delta := range table1DeltaGrid {
			p := tb.params
			p.Delta = delta
			p.DeltaStar = delta + 0.15
			hp, err := p.SolveConditional()
			if err != nil {
				return res, err
			}
			miss, tot := 0, 0
			for r := 0; r < reps; r++ {
				m, _, n, _, err := tb.runSchedule(hp, uint64(opt.Seed)+uint64(r)*101+uint64(delta*1000))
				if err != nil {
					return res, err
				}
				miss += m
				tot += n
			}
			res.Rows = append(res.Rows, Table1Row{
				Dataset: which, Kind: "delta",
				Target: delta, Real: float64(miss) / float64(tot),
			})
		}
		// Theorem 2 sweep: δ fixed at 0.05, vary the sampling budget.
		for _, budget := range table1T2Grid {
			p := tb.params
			p.Delta = 0.05
			p.DeltaStar = 0.05 + budget
			hp, err := p.SolveConditional()
			if err != nil {
				return res, err
			}
			missLater, tot := 0, 0
			for r := 0; r < reps; r++ {
				_, ml, _, nl, err := tb.runSchedule(hp, uint64(opt.Seed)+uint64(r)*131+uint64(budget*1000))
				if err != nil {
					return res, err
				}
				missLater += ml
				tot += nl
			}
			if tot == 0 {
				tot = 1 // every signal collided: report 0/1 rather than NaN
			}
			res.Rows = append(res.Rows, Table1Row{
				Dataset: which, Kind: "deltaStar-delta",
				Target: budget, Real: float64(missLater) / float64(tot),
			})
		}
	}
	fmt.Fprintln(w, "Table 1: theorem targets vs observed miss probabilities")
	for _, which := range []string{"simulation", "gisette"} {
		for _, kind := range []string{"delta", "deltaStar-delta"} {
			fmt.Fprintf(w, "%s target %-16s:", which, kind)
			for _, row := range res.Rows {
				if row.Dataset == which && row.Kind == kind {
					fmt.Fprintf(w, " %.2f", row.Target)
				}
			}
			fmt.Fprintf(w, "\n%s real   %-16s:", which, kind)
			for _, row := range res.Rows {
				if row.Dataset == which && row.Kind == kind {
					fmt.Fprintf(w, " %.3f", row.Real)
				}
			}
			fmt.Fprintln(w)
		}
	}
	return res, nil
}
